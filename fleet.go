package roboads

import (
	"roboads/internal/detect"
	"roboads/internal/fleet"
	"roboads/internal/store"
)

// Fleet session service (DESIGN.md §10): host many concurrent detectors
// behind one streaming ingest surface. Sessions are created from a
// FleetSpec, fed frames through Submit/Step, and closed explicitly or
// evicted after idling; a bounded worker pool shards the sessions and
// per-session queues apply explicit backpressure. Manager.Handler
// exposes the same surface over HTTP (`roboads serve`).
type (
	// Fleet is the session manager.
	Fleet = fleet.Manager
	// FleetConfig sizes the worker pool, queues, session cap, and idle
	// eviction, and wires the telemetry registry.
	FleetConfig = fleet.Config
	// FleetSpec describes the session to create (robot profile, workers).
	FleetSpec = fleet.Spec
	// FleetBuilder turns a spec into a hosted detector.
	FleetBuilder = fleet.Builder
	// FleetStepper is the hosted-detector interface a builder returns.
	FleetStepper = fleet.Stepper
	// FleetPending is an accepted frame's future report.
	FleetPending = fleet.Pending
	// SessionInfo identifies a session (ID, robot, sensor inventory, dt).
	SessionInfo = fleet.SessionInfo
	// SessionStatus is SessionInfo plus live queue depth and idle time.
	SessionStatus = fleet.SessionStatus
	// WireReport is the frame-report wire format; JSON float64 round-trips
	// exactly, so wire equality is bit-for-bit report equality.
	WireReport = fleet.WireReport
	// ReplyLine is one NDJSON reply on the streaming frames endpoint.
	ReplyLine = fleet.ReplyLine
	// SessionRequest is the POST /v1/sessions body.
	SessionRequest = fleet.CreateRequest
	// BackpressureError carries the retry-after hint of a rejected frame;
	// match it with errors.As after errors.Is(err, ErrBackpressure).
	BackpressureError = fleet.BackpressureError
	// FleetDurability enables checkpoint/WAL persistence for hosted
	// sessions (FleetConfig.Durability; DESIGN.md §11): every accepted
	// frame is WAL-logged before its reply, snapshots compact the log on a
	// cadence, and a restarted manager recovers each session bit-for-bit.
	FleetDurability = fleet.Durability
	// FleetStateStepper is the stepper durability requires: a Stepper
	// whose complete cross-iteration state exports and imports.
	FleetStateStepper = fleet.StateStepper
	// CheckpointInfo reports a forced checkpoint (frames applied,
	// snapshot bytes).
	CheckpointInfo = fleet.CheckpointInfo
)

// FleetOption mutates a FleetConfig before construction; see
// NewFleetWith.
type FleetOption func(*FleetConfig)

// WithBatching sets FleetConfig.Batching: the maximum number of
// same-profile sessions a shard worker coalesces into one blocked
// batched step per scheduling quantum (DESIGN.md §13). Per-session
// report streams are bit-for-bit unchanged — batching is purely a
// throughput knob. 0 or 1 disables coalescing.
func WithBatching(k int) FleetOption {
	return func(c *FleetConfig) { c.Batching = k }
}

// NewFleetWith is NewFleet over a base configuration modified by opts:
//
//	mgr, err := roboads.NewFleetWith(roboads.FleetConfig{
//		Build: roboads.DefaultFleetBuilder(),
//	}, roboads.WithBatching(16))
func NewFleetWith(cfg FleetConfig, opts ...FleetOption) (*Fleet, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return fleet.NewManager(cfg)
}

// Batched stepping (DESIGN.md §13): a DetectorBatch steps up to K
// same-profile detectors per call through one blocked engine pass,
// bit-for-bit identical per session to scalar stepping. The fleet uses
// this internally when FleetConfig.Batching > 1; library callers
// driving their own detector collections can use it directly.
type DetectorBatch = detect.DetectorBatch

// NewDetectorBatch builds a batch workspace shaped after a prototype
// detector with room for capacity sessions per Step call.
var NewDetectorBatch = detect.NewDetectorBatch

// Fleet constructors.
var (
	// NewFleet starts a session manager; Shutdown drains it.
	NewFleet = fleet.NewManager
	// FleetProfileBuilder builds sessions from named robot profiles under
	// a caller-supplied configuration.
	FleetProfileBuilder = fleet.ProfileBuilder
	// DefaultFleetBuilder is FleetProfileBuilder under the paper defaults.
	DefaultFleetBuilder = fleet.DefaultBuilder
	// NewWireReport converts a detector report to the wire format.
	NewWireReport = fleet.NewWireReport
)

// Typed error sentinels of the fleet surface. All are stable under
// errors.Is through arbitrary wrapping:
//
//   - ErrSessionNotFound: the session ID does not exist (never created,
//     already closed, or evicted). HTTP: 404.
//   - ErrBackpressure: the session's frame queue is full; the frame was
//     NOT accepted and may be retried. errors.As against a
//     *BackpressureError yields the RetryAfter hint. HTTP: 429.
//   - ErrClosed: the frame was accepted but the session (or the whole
//     manager) closed before it was stepped, or the manager is draining
//     and no longer accepts work. HTTP: 410.
//   - ErrTooManySessions: the MaxSessions cap is reached. HTTP: 503.
//   - ErrDurabilityDisabled: a checkpoint/restore was requested but the
//     manager has no state directory configured. HTTP: 501.
//   - ErrSessionLive: a restore named a session that is already running.
//     HTTP: 409.
var (
	ErrSessionNotFound    = fleet.ErrSessionNotFound
	ErrBackpressure       = fleet.ErrBackpressure
	ErrClosed             = fleet.ErrClosed
	ErrTooManySessions    = fleet.ErrTooManySessions
	ErrDurabilityDisabled = fleet.ErrDurabilityDisabled
	ErrSessionLive        = fleet.ErrSessionLive
)

// Fleet metric names registered on the telemetry registry passed in
// FleetConfig.Metrics (gauges and counters on /metrics).
const (
	MetricFleetSessionsLive   = fleet.MetricSessionsLive
	MetricFleetQueueDepth     = fleet.MetricQueueDepth
	MetricFleetSessionsOpened = fleet.MetricSessionsOpened
	MetricFleetEvictions      = fleet.MetricEvictions
	MetricFleetRejectedFrames = fleet.MetricRejectedFrames
	MetricFleetFrames         = fleet.MetricFrames
	MetricFleetFrameErrors    = fleet.MetricFrameErrors
	MetricFleetStepSeconds    = fleet.MetricStepSeconds
)

// Durability metric names registered by the session store when
// FleetConfig.Durability is enabled (DESIGN.md §11).
const (
	MetricStoreSnapshotBytes     = store.MetricSnapshotBytes
	MetricStoreSnapshotSeconds   = store.MetricSnapshotSeconds
	MetricStoreWALAppends        = store.MetricWALAppends
	MetricStoreWALFsyncs         = store.MetricWALFsyncs
	MetricStoreRecoveredSessions = store.MetricRecoveredSessions
	MetricStoreRecoveredFrames   = store.MetricRecoveredFrames
)
