package roboads_test

import (
	"bytes"
	"errors"
	"fmt"

	"roboads"
)

// ExampleNewKheperaSystem runs a full mission under IPS spoofing and
// reports the confirmed misbehavior.
func ExampleNewKheperaSystem() {
	system, err := roboads.NewKheperaSystem(roboads.IPSSpoofingScenario(), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	for {
		rec, report, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			fmt.Println(err)
			return
		}
		if report.Decision.SensorAlarm && !report.Decision.Condition.Clean() {
			fmt.Println("confirmed:", report.Decision.Condition)
			return
		}
		if rec.Done {
			break
		}
	}
	fmt.Println("no misbehavior")
	// Output: confirmed: S{ips}/A0
}

// ExampleObservable shows the §VI reference-observability check: a
// magnetometer alone cannot reconstruct the robot state, but grouped
// with a GPS it can.
func ExampleObservable() {
	model := roboads.NewKheperaModel(0.1)
	x0 := roboads.NewVec(1, 1, 0)
	u0 := model.WheelSpeeds(0.1, 0)

	mag := roboads.NewMagnetometer(3)
	fmt.Println("magnetometer alone:", roboads.Observable(model, mag, x0, u0))

	grouped, err := roboads.NewMode(
		[]roboads.Sensor{mag, roboads.NewGPS(3, 0.05)}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("magnetometer+GPS:", roboads.Observable(model, grouped.Reference, x0, u0))
	// Output:
	// magnetometer alone: false
	// magnetometer+GPS: true
}

// ExampleNUISE runs a single estimation step directly: the reference IPS
// explains the motion, and the actuator anomaly estimate recovers an
// injected wheel-speed bias.
func ExampleNUISE() {
	model := roboads.NewKheperaModel(0.1)
	plant := roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
	}
	ips := roboads.NewIPS(3)

	x := roboads.NewVec(1, 1, 0)
	u := model.WheelSpeeds(0.1, 0) // planned: drive straight
	bias := roboads.NewVec(-0.04, 0.04)

	// The robot actually executed u+bias; the IPS reads the true pose.
	xTrue := model.F(x, u.Add(bias))
	z2 := ips.H(xTrue) // noise-free for a deterministic example

	res, err := roboads.NUISE(plant, ips, nil, u, x, roboads.Diag(1e-6, 1e-6, 1e-6), nil, z2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("estimated anomaly: (%.3f, %.3f) m/s\n", res.Da[0], res.Da[1])
	// Output: estimated anomaly: (-0.040, 0.040) m/s
}

// ExampleReplayTrace records two iterations of monitor inputs and
// replays them offline.
func ExampleReplayTrace() {
	model := roboads.NewKheperaModel(0.1)
	suite := []roboads.Sensor{roboads.NewIPS(3), roboads.NewWheelEncoder(3)}
	x0 := roboads.NewVec(1, 1, 0)
	u := model.WheelSpeeds(0.1, 0)

	var buf bytes.Buffer
	recorder := roboads.NewTraceRecorder(&buf, roboads.TraceHeader{
		Robot: "khepera", Dt: 0.1, Sensors: []string{"ips", "wheel-encoder"},
	})
	x := x0.Clone()
	for k := 0; k < 2; k++ {
		x = model.F(x, u)
		readings := map[string]roboads.Vec{
			"ips":           suite[0].H(x),
			"wheel-encoder": suite[1].H(x),
		}
		if err := recorder.Record(k, u, readings); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := recorder.Flush(); err != nil {
		fmt.Println(err)
		return
	}

	modes, err := roboads.SingleReferenceModes(model, suite, x0, u, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	engine, err := roboads.NewEngine(roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
	}, modes, x0, roboads.Diag(1e-6, 1e-6, 1e-6), roboads.DefaultEngineConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	detector := roboads.NewDetector(engine, roboads.DefaultDetectorConfig())

	reports, err := roboads.ReplayTrace(&buf, detector)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("replayed iterations:", len(reports))
	fmt.Println("clean:", reports[1].Decision.Condition.Clean())
	// Output:
	// replayed iterations: 2
	// clean: true
}
