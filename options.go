package roboads

import (
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/eval"
)

// PipelineObserver is the union of the engine and decision observer
// hooks. A *Telemetry implements it; passing one to WithObserver wires
// instrumentation into both layers of the pipeline at once.
type PipelineObserver interface {
	core.Observer
	detect.Observer
}

// Option configures pipeline construction for NewPipeline and
// NewRobotDetector. Options are applied in order over the paper-default
// configuration (DefaultEngineConfig + DefaultDetectorConfig), so a
// later option overrides an earlier one; WithEngineConfig and
// WithDetectorConfig replace the respective layer wholesale and should
// therefore come before field-level options they are combined with.
type Option func(*buildConfig)

type buildConfig struct {
	ecfg core.EngineConfig
	dcfg detect.Config
}

func defaultBuild() buildConfig {
	return buildConfig{ecfg: core.DefaultEngineConfig(), dcfg: detect.DefaultConfig()}
}

// WithWorkers bounds the goroutines fanning the mode bank out each Step.
// 0 resolves to GOMAXPROCS; 1 or negative runs sequentially. Output is
// bit-for-bit independent of the worker count.
func WithWorkers(n int) Option {
	return func(b *buildConfig) { b.ecfg.Workers = n }
}

// WithEngineConfig replaces the engine configuration wholesale.
func WithEngineConfig(cfg EngineConfig) Option {
	return func(b *buildConfig) { b.ecfg = cfg }
}

// WithDetectorConfig replaces the decision parameters wholesale.
func WithDetectorConfig(cfg DetectorConfig) Option {
	return func(b *buildConfig) { b.dcfg = cfg }
}

// WithSensorAlpha sets the chi-square confidence level for the aggregate
// and per-sensor tests (paper optimum 0.005).
func WithSensorAlpha(alpha float64) Option {
	return func(b *buildConfig) { b.dcfg.SensorAlpha = alpha }
}

// WithActuatorAlpha sets the confidence level for the actuator test
// (paper optimum 0.05).
func WithActuatorAlpha(alpha float64) Option {
	return func(b *buildConfig) { b.dcfg.ActuatorAlpha = alpha }
}

// WithSensorWindow sets the c-of-w sliding-window parameters for sensor
// alarms (paper optimum 2 of 2).
func WithSensorWindow(criteria, window int) Option {
	return func(b *buildConfig) {
		b.dcfg.SensorCriteria, b.dcfg.SensorWindow = criteria, window
	}
}

// WithActuatorWindow sets the c-of-w sliding-window parameters for
// actuator alarms (paper optimum 3 of 6).
func WithActuatorWindow(criteria, window int) Option {
	return func(b *buildConfig) {
		b.dcfg.ActuatorCriteria, b.dcfg.ActuatorWindow = criteria, window
	}
}

// WithEpsilon sets the mode-weight floor of Algorithm 1 line 6.
func WithEpsilon(eps float64) Option {
	return func(b *buildConfig) { b.ecfg.Epsilon = eps }
}

// WithObserver wires one observer into both pipeline layers: the engine
// (per-step latency, mode switches, weight floor hits) and the decision
// maker (test statistics, alarm edges). Observation is read-only and
// cannot change detection output; nil disables instrumentation.
func WithObserver(o PipelineObserver) Option {
	return func(b *buildConfig) {
		b.ecfg.Observer = o
		b.dcfg.Observer = o
	}
}

// NewPipeline assembles the full RoboADS pipeline from its estimation
// ingredients — the plant, the hypothesis mode set, and the initial
// state belief (x0, p0) — under the paper-default configuration modified
// by opts. It is the options-based construction surface; the two-step
// NewEngine + NewDetector path remains for callers that need to hold
// the engine directly.
func NewPipeline(plant Plant, modes []*Mode, x0 Vec, p0 *Matrix, opts ...Option) (*Detector, error) {
	b := defaultBuild()
	for _, opt := range opts {
		opt(&b)
	}
	eng, err := core.NewEngine(plant, modes, x0, p0, b.ecfg)
	if err != nil {
		return nil, err
	}
	return detect.NewDetector(eng, b.dcfg), nil
}

// NewRobotDetector builds the standard detector for a named platform
// ("khepera" or "tamiya") with no simulator attached — the construction
// path of a hosted fleet session or an external robot streaming real
// frames. The profile matches what `roboads record` captures, so a
// recorded trace replays against this detector bit-for-bit:
//
//	det, err := roboads.NewRobotDetector("khepera",
//		roboads.WithWorkers(4),
//		roboads.WithSensorAlpha(0.005))
func NewRobotDetector(robot string, opts ...Option) (*Detector, error) {
	b := defaultBuild()
	for _, opt := range opts {
		opt(&b)
	}
	p, err := eval.RobotProfile(robot)
	if err != nil {
		return nil, err
	}
	return p.NewDetector(b.ecfg, b.dcfg)
}
