// Package benchquality defines the BENCH_quality.json leaderboard format
// — the detection-quality record `roboads scenario run` appends and
// `cmd/benchdiff -quality` gates. It is the adversarial counterpart of
// BENCH_serve.json: where that file tracks serving capacity, this one
// tracks how well the detector holds up against a scenario suite —
// per-scenario detection delay, false-positive/missed-detection rates,
// and alarm fractions — so every perf PR also proves it didn't regress
// detection quality.
package benchquality

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Version is the current BENCH_quality.json format version.
const Version = 1

// File is the on-disk leaderboard: one appended record per suite run.
type File struct {
	Version int       `json:"version"`
	Records []*Record `json:"records"`
}

// Record is one scenario-suite run: what was executed and what the
// detector did with it.
type Record struct {
	Label      string  `json:"label,omitempty"`
	RecordedAt string  `json:"recordedAt"`
	Config     Config  `json:"config"`
	Env        Env     `json:"environment"`
	Results    Results `json:"results"`
}

// Config identifies the exact workload. It is a comparable struct on
// purpose: benchdiff -quality only diffs records whose Config (and
// Label) are equal, and SuiteHash fingerprints the full DSL document, so
// a record from an edited or regenerated suite never masquerades as a
// baseline for another. Because suite execution is bit-for-bit
// reproducible from {seed, DSL}, two records with equal Config differ
// only by the code under test.
type Config struct {
	Suite     string `json:"suite"`
	SuiteHash string `json:"suiteHash"`
	Seed      int64  `json:"seed"`
	Trials    int    `json:"trials"`
	Scenarios int    `json:"scenarios"`
}

// Env captures the machine, for cross-run context (results are
// deterministic, so Env is informational rather than part of identity).
type Env struct {
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	NumCPU int    `json:"numcpu"`
}

// ScenarioRow is one scenario's aggregated outcome across its trials.
type ScenarioRow struct {
	Name   string `json:"name"`
	Class  string `json:"class,omitempty"`
	Robot  string `json:"robot"`
	Trials int    `json:"trials"`
	// Sensor/Actuator FPR and FNR use the paper's identification-aware
	// per-iteration accounting, merged across trials.
	SensorFPR   float64 `json:"sensorFPR"`
	SensorFNR   float64 `json:"sensorFNR"`
	ActuatorFPR float64 `json:"actuatorFPR"`
	ActuatorFNR float64 `json:"actuatorFNR"`
	// MeanDelaySec averages onset-to-confirmation delay over the
	// (target, trial) pairs that were detected; −1 when none were.
	MeanDelaySec float64 `json:"meanDelaySec"`
	// DelaySec maps each attacked target (sensor name or "actuator") to
	// its mean detected delay, −1 when missed in every trial.
	DelaySec map[string]float64 `json:"delaySec,omitempty"`
	// AlarmFraction maps each target to the mean fraction of post-onset
	// iterations with that target confirmed.
	AlarmFraction map[string]float64 `json:"alarmFraction,omitempty"`
	// Missed counts (target, trial) pairs never detected.
	Missed int `json:"missed"`
}

// Results are the suite-level measurements.
type Results struct {
	Scenarios []ScenarioRow `json:"scenarios"`
	// Aggregates merge every scenario's per-iteration confusion counts.
	AvgSensorFPR   float64 `json:"avgSensorFPR"`
	AvgSensorFNR   float64 `json:"avgSensorFNR"`
	AvgActuatorFPR float64 `json:"avgActuatorFPR"`
	AvgActuatorFNR float64 `json:"avgActuatorFNR"`
	// AvgDelaySec averages over all detected (target, trial) pairs in
	// the suite; −1 when none detected.
	AvgDelaySec float64 `json:"avgDelaySec"`
	// Missed totals the never-detected (target, trial) pairs.
	Missed int `json:"missed"`
	// WallSeconds is informational (not gated): how long the run took.
	WallSeconds float64 `json:"wallSeconds,omitempty"`
}

// Load reads and parses a leaderboard file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &f, nil
}

// Append adds r to the leaderboard at path, creating the file on first
// use.
func Append(path string, r *Record) error {
	var file File
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		file.Version = Version
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if file.Version == 0 {
			file.Version = Version
		}
	}
	file.Records = append(file.Records, r)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
