package sim

import (
	"errors"
	"math"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
	"roboads/internal/world"
)

func TestBasicWorkflowNoiseStatistics(t *testing.T) {
	ips := sensors.NewIPS(3)
	w := NewBasicWorkflow(ips, stat.NewRNG(1))
	x := mat.VecOf(1, 2, 0.3)
	const n = 20000
	var sum, sumSq float64
	for k := 0; k < n; k++ {
		z := w.Sense(k, x, nil)
		d := z[0] - 1
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 1e-4 {
		t.Fatalf("reading bias %v", mean)
	}
	if math.Abs(std-ips.SigmaPos) > 0.1*ips.SigmaPos {
		t.Fatalf("reading std %v, want ≈ %v", std, ips.SigmaPos)
	}
}

func TestBasicWorkflowAppliesAttack(t *testing.T) {
	ips := sensors.NewIPS(3)
	w := NewBasicWorkflow(ips, stat.NewRNG(2))
	w.Attach(&attack.Bias{Sensor: "ips", Offset: mat.VecOf(0.5, 0, 0), Win: attack.Window{Start: 10}})
	x := mat.VecOf(1, 2, 0.3)
	before := w.Sense(5, x, nil)
	after := w.Sense(10, x, nil)
	if math.Abs(before[0]-1) > 0.01 {
		t.Fatalf("pre-attack reading %v", before)
	}
	if math.Abs(after[0]-1.5) > 0.01 {
		t.Fatalf("post-attack reading %v", after)
	}
}

func TestEncoderWorkflowTickInjectionPersists(t *testing.T) {
	model := dynamics.NewKhepera(0.1)
	we := sensors.NewWheelEncoder(3)
	w := NewEncoderWorkflow(model, we, stat.NewRNG(3))
	w.Attach(&attack.EncoderTicks{Wheel: 0, Ticks: 100, Win: attack.Window{Start: 5}, Via: attack.Cyber})

	x := mat.VecOf(1, 1, 0) // facing +x
	pre := w.Sense(4, x, nil)
	if math.Abs(pre[0]-1) > 0.01 {
		t.Fatalf("pre-attack reading %v", pre)
	}
	// At onset, 100 injected ticks add 100·TickMeters of left-wheel
	// travel: forward half of it, and a clockwise heading offset of
	// travel/wheelbase (left wheel ahead turns the odometry estimate
	// right).
	travel := 100 * attack.TickMeters
	wantX := 1 + travel/2
	wantTheta := -travel / model.WheelBase
	onset := w.Sense(5, x, nil)
	if math.Abs(onset[0]-wantX) > 0.005 {
		t.Fatalf("onset x reading %v, want ≈ %v", onset[0], wantX)
	}
	if math.Abs(onset[2]-wantTheta) > 0.015 {
		t.Fatalf("onset θ reading %v, want ≈ %v", onset[2], wantTheta)
	}
	// The offset persists on later iterations (dead-reckoned).
	later := w.Sense(20, x, nil)
	if math.Abs(later[2]-wantTheta) > 0.015 {
		t.Fatalf("offset did not persist: %v", later)
	}
}

func TestSimulatorCleanMissionReachesGoal(t *testing.T) {
	clean := attack.CleanScenario()
	setup, err := NewKhepera(LabMission(), &clean, 1)
	if err != nil {
		t.Fatal(err)
	}
	records, err := setup.Sim.Run(1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	last := records[len(records)-1]
	if !last.Done {
		t.Fatalf("mission incomplete after %d iterations; final %v", len(records), last.XTrue)
	}
	goal := LabMission().Goal
	if d := math.Hypot(last.XTrue[0]-goal.X, last.XTrue[1]-goal.Y); d > 0.15 {
		t.Fatalf("finished %.3f m from goal", d)
	}
	// Mission stays collision-free.
	m := LabMission().Map
	for _, rec := range records {
		if !m.Free(world.Point{X: rec.XTrue[0], Y: rec.XTrue[1]}, 0.0) {
			t.Fatalf("k=%d: robot at %v left free space", rec.K, rec.XTrue)
		}
	}
}

func TestSimulatorDeterministicPerSeed(t *testing.T) {
	clean := attack.CleanScenario()
	run := func() []*StepRecord {
		setup, err := NewKhepera(LabMission(), &clean, 7)
		if err != nil {
			t.Fatal(err)
		}
		records, err := setup.Sim.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		return records
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].XTrue.Sub(r2[i].XTrue).MaxAbs() != 0 {
			t.Fatalf("step %d diverged", i)
		}
	}
}

func TestSimulatorActuatorAttackChangesTrajectory(t *testing.T) {
	scenarios := attack.KheperaScenarios()
	jam := scenarios[1] // #2 wheel jamming
	setup, err := NewKhepera(LabMission(), &jam, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sawDeviation bool
	for i := 0; i < 400; i++ {
		rec, err := setup.Sim.Step()
		if errors.Is(err, ErrMissionOver) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Truth.ActuatorCorrupted {
			if rec.UExecuted[0] != 0 {
				t.Fatalf("k=%d: jammed wheel still moving: %v", rec.K, rec.UExecuted)
			}
			if rec.UPlanned[0] != 0 {
				sawDeviation = true
			}
		}
		if rec.Done {
			break
		}
	}
	if !sawDeviation {
		t.Fatal("planned and executed commands never diverged under jam")
	}
}

func TestSimulatorSensorAttackOnlyAffectsTarget(t *testing.T) {
	scenarios := attack.KheperaScenarios()
	dos := scenarios[5] // #6 LiDAR DoS
	setup, err := NewKhepera(LabMission(), &dos, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec, err := setup.Sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Truth.CorruptedSensors["lidar"] {
			if rec.Readings["lidar"].MaxAbs() != 0 {
				t.Fatalf("k=%d: DoS'd lidar nonzero: %v", rec.K, rec.Readings["lidar"])
			}
			// Other sensors stay within plausible range of truth.
			if d := rec.Readings["ips"][0] - rec.XTrue[0]; math.Abs(d) > 0.01 {
				t.Fatalf("k=%d: ips corrupted too: %v", rec.K, d)
			}
			return // saw at least one corrupted iteration
		}
	}
	t.Fatal("attack never activated")
}

func TestSimulatorRejectsUnknownTarget(t *testing.T) {
	bad := attack.Scenario{
		ID:   999,
		Name: "bad",
		SensorAttacks: []attack.SensorAttack{
			&attack.Bias{Sensor: "nonexistent", Offset: mat.VecOf(1), Win: attack.Window{Start: 0}},
		},
	}
	if _, err := NewKhepera(LabMission(), &bad, 1); err == nil {
		t.Fatal("unknown workflow target accepted")
	}
}

func TestSimulatorStepAfterDone(t *testing.T) {
	clean := attack.CleanScenario()
	setup, err := NewKhepera(LabMission(), &clean, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Sim.Run(2000); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Sim.Step(); !errors.Is(err, ErrMissionOver) {
		t.Fatalf("err = %v, want ErrMissionOver", err)
	}
}

func TestTamiyaCleanMission(t *testing.T) {
	clean := attack.CleanScenario()
	setup, err := NewTamiya(LabMission(), &clean, 5)
	if err != nil {
		t.Fatal(err)
	}
	records, err := setup.Sim.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	last := records[len(records)-1]
	if !last.Done {
		t.Fatalf("Tamiya mission incomplete after %d iterations; final %v", len(records), last.XTrue)
	}
	if len(setup.Suite) != 3 {
		t.Fatalf("Tamiya suite = %d sensors", len(setup.Suite))
	}
	if _, ok := records[10].Readings["imu"]; !ok {
		t.Fatal("IMU reading missing")
	}
}

func TestKheperaIPSSpoofDeviatesMission(t *testing.T) {
	// Under IPS spoofing the planner is fooled: the true trajectory
	// shifts by roughly the spoof offset relative to the clean run —
	// the physical impact motivating detection.
	maxXFor := func(s attack.Scenario) float64 {
		setup, err := NewKhepera(LabMission(), &s, 6)
		if err != nil {
			t.Fatal(err)
		}
		records, err := setup.Sim.Run(1200)
		if err != nil {
			t.Fatal(err)
		}
		var maxX float64
		for _, rec := range records {
			if rec.XTrue[0] > maxX {
				maxX = rec.XTrue[0]
			}
		}
		return maxX
	}
	spoofed := maxXFor(attack.KheperaScenarios()[3]) // #4: -0.1 m on X
	clean := maxXFor(attack.CleanScenario())
	// The robot believes it is 0.1 m left of reality, so the true
	// trajectory overshoots right relative to the clean run.
	if spoofed < clean+0.05 {
		t.Fatalf("spoof did not shift the trajectory: spoofed maxX=%.3f clean maxX=%.3f", spoofed, clean)
	}
}

func TestWarehouseMission(t *testing.T) {
	mission := Mission{
		Map:          world.WarehouseArena(),
		Start:        world.Point{X: 0.6, Y: 0.6},
		StartHeading: 0.4,
		Goal:         world.Point{X: 7.2, Y: 5.4},
	}
	clean := attack.CleanScenario()
	setup, err := NewKhepera(mission, &clean, 21)
	if err != nil {
		t.Fatal(err)
	}
	records, err := setup.Sim.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	if !records[len(records)-1].Done {
		t.Fatalf("warehouse mission incomplete after %d iterations", len(records))
	}
	if got := setup.Sim.Collisions(); got != 0 {
		t.Fatalf("clean warehouse mission collided %d times", got)
	}
}

func TestCollisionFlagUnderAttack(t *testing.T) {
	// An aggressive uncompensated steering bias should eventually push
	// the robot into a wall or shelf; the collision flag must record it.
	scenario := attack.Scenario{
		ID:   900,
		Name: "violent takeover",
		ActuatorAttacks: []attack.ActuatorAttack{
			&attack.ActuatorBias{
				Offset: mat.VecOf(-0.2, 0.2),
				Win:    attack.Window{Start: 30},
				Via:    attack.Cyber,
			},
		},
	}
	setup, err := NewKhepera(LabMission(), &scenario, 8)
	if err != nil {
		t.Fatal(err)
	}
	records, err := setup.Sim.Run(700)
	if err != nil {
		t.Fatal(err)
	}
	collided := false
	for _, rec := range records {
		if rec.Collided {
			collided = true
			break
		}
	}
	if !collided || setup.Sim.Collisions() == 0 {
		t.Fatal("violent takeover never collided — collision flag inert?")
	}
}

func TestCollisionCheckDisabledByDefault(t *testing.T) {
	model := dynamics.NewKhepera(0.1)
	we := sensors.NewWheelEncoder(3)
	clean := attack.CleanScenario()
	tracker := stationaryTracker{}
	s, err := New(model, tracker, []SensingWorkflow{NewEncoderWorkflow(model, we, stat.NewRNG(1))},
		&clean, mat.VecOf(1e-4, 1e-4, 1e-4), mat.VecOf(-10, -10, 0), stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-arena position, but no arena registered → no collision flag.
	if rec.Collided || s.Collisions() != 0 {
		t.Fatal("collision flagged without an arena")
	}
}

// stationaryTracker commands zero wheel speeds forever.
type stationaryTracker struct{}

func (stationaryTracker) Control(x mat.Vec) (mat.Vec, bool) {
	return mat.VecOf(0, 0), false
}

func TestBasicWorkflowDecimation(t *testing.T) {
	ips := sensors.NewIPS(3)
	w := NewBasicWorkflow(ips, stat.NewRNG(5))
	w.Every = 3

	xA := mat.VecOf(1, 1, 0)
	xB := mat.VecOf(2, 2, 1)
	fresh := w.Sense(0, xA, nil)
	held1 := w.Sense(1, xB, nil) // robot moved, sensor holds
	held2 := w.Sense(2, xB, nil)
	if held1.Sub(fresh).MaxAbs() != 0 || held2.Sub(fresh).MaxAbs() != 0 {
		t.Fatal("zero-order hold violated")
	}
	next := w.Sense(3, xB, nil) // new sample reflects the move
	if next.Sub(fresh).MaxAbs() < 0.5 {
		t.Fatalf("decimated sensor never refreshed: %v", next)
	}
	// Mutating the returned reading must not corrupt the held copy.
	got := w.Sense(4, xA, nil)
	got[0] = 99
	if again := w.Sense(5, xA, nil); again[0] == 99 {
		t.Fatal("held reading aliased")
	}
}
