package sim

import (
	"errors"
	"fmt"

	"roboads/internal/attack"
	"roboads/internal/control"
	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/plan"
	"roboads/internal/sensors"
	"roboads/internal/stat"
	"roboads/internal/world"
)

// Mission describes the §V-A motion-planning task: steer from start to
// goal through the arena without collisions.
type Mission struct {
	// Map is the arena.
	Map *world.Map
	// Start is the launch position.
	Start world.Point
	// StartHeading is the initial heading in radians.
	StartHeading float64
	// Goal is the target location.
	Goal world.Point
}

// LabMission returns the default experiment mission across the lab arena.
func LabMission() Mission {
	return Mission{
		Map:          world.LabArena(),
		Start:        world.Point{X: 0.5, Y: 0.5},
		StartHeading: 0.6,
		Goal:         world.Point{X: 3.5, Y: 3.5},
	}
}

// StepRecord is one control iteration of the closed-loop simulation: the
// monitor's inputs (planned command, readings) plus ground truth for
// metric computation.
type StepRecord struct {
	// K is the control iteration index.
	K int
	// XTrue is the true state after this iteration's motion.
	XTrue mat.Vec
	// UPlanned is the planner's command (what the monitor receives).
	UPlanned mat.Vec
	// UExecuted is the command after actuator attacks (ground truth).
	UExecuted mat.Vec
	// Readings maps workflow names to their (possibly corrupted)
	// readings z_k.
	Readings map[string]mat.Vec
	// Truth is the scenario's ground-truth condition at this iteration.
	Truth attack.Truth
	// Collided reports that the true position left free space this
	// iteration (robot body overlapping a wall or obstacle) — the
	// physical damage the paper's attacks aim to cause.
	Collided bool
	// Done reports whether the mission completed at this step.
	Done bool
}

// Simulator advances the robot, its workflows, and the scenario one
// control iteration at a time.
type Simulator struct {
	model      dynamics.Model
	tracker    control.Tracker
	workflows  []SensingWorkflow
	scenario   *attack.Scenario
	processStd mat.Vec
	rng        *stat.RNG

	// arena and bodyRadius drive the collision flag; a nil arena
	// disables it.
	arena      *world.Map
	bodyRadius float64

	xTrue      mat.Vec
	ctrlEst    mat.Vec // the planner's own state belief (from readings)
	k          int
	done       bool
	collisions int
}

// ErrMissionOver indicates Step was called after mission completion.
var ErrMissionOver = errors.New("sim: mission already complete")

// New assembles a simulator from its parts. ctrlEst starts at x0.
func New(model dynamics.Model, tracker control.Tracker, workflows []SensingWorkflow,
	scenario *attack.Scenario, processStd mat.Vec, x0 mat.Vec, rng *stat.RNG) (*Simulator, error) {
	if len(x0) != model.StateDim() {
		return nil, fmt.Errorf("sim: x0 has dim %d, want %d", len(x0), model.StateDim())
	}
	if len(processStd) != model.StateDim() {
		return nil, fmt.Errorf("sim: processStd has dim %d, want %d", len(processStd), model.StateDim())
	}
	// Wire the scenario's sensor attacks into their target workflows.
	byName := make(map[string]SensingWorkflow, len(workflows))
	for _, w := range workflows {
		byName[w.Name()] = w
	}
	for _, a := range scenario.SensorAttacks {
		w, ok := byName[a.Target()]
		if !ok {
			return nil, fmt.Errorf("sim: scenario %v targets unknown workflow %q", scenario, a.Target())
		}
		w.Attach(a)
	}
	return &Simulator{
		model:      model,
		tracker:    tracker,
		workflows:  workflows,
		scenario:   scenario,
		processStd: processStd.Clone(),
		rng:        rng.Fork("sim"),
		xTrue:      x0.Clone(),
		ctrlEst:    x0.Clone(),
	}, nil
}

// TrueState returns the current ground-truth state.
func (s *Simulator) TrueState() mat.Vec { return s.xTrue.Clone() }

// Collisions returns the number of iterations spent in collision so far.
func (s *Simulator) Collisions() int { return s.collisions }

// EnableCollisionCheck turns on collision flagging against the arena
// with the given robot body radius.
func (s *Simulator) EnableCollisionCheck(arena *world.Map, bodyRadius float64) {
	s.arena = arena
	s.bodyRadius = bodyRadius
}

// Step runs one control iteration: plan → execute (with actuator attacks)
// → evolve truth with process noise → sense (with sensor attacks).
func (s *Simulator) Step() (*StepRecord, error) {
	if s.done {
		return nil, ErrMissionOver
	}
	k := s.k

	// Planner: closed-loop command from its own (sensor-driven) belief.
	uPlanned, done := s.tracker.Control(s.ctrlEst)

	// Actuation workflows: cyber/physical corruptions on the way to the
	// motors.
	uExec := uPlanned
	for _, a := range s.scenario.ActuatorAttacks {
		uExec = a.Apply(k, uExec)
	}

	// Physics: the state evolves under the executed command plus process
	// noise (equation (2)).
	s.xTrue = s.model.F(s.xTrue, uExec).Add(s.rng.GaussianVec(s.processStd))

	// Sensing workflows deliver the new readings.
	readings := make(map[string]mat.Vec, len(s.workflows))
	for _, w := range s.workflows {
		readings[w.Name()] = w.Sense(k, s.xTrue, uExec)
	}
	s.updateControllerBelief(readings)

	collided := false
	if s.arena != nil {
		collided = !s.arena.Free(world.Point{X: s.xTrue[0], Y: s.xTrue[1]}, s.bodyRadius)
		if collided {
			s.collisions++
		}
	}

	rec := &StepRecord{
		K:         k,
		XTrue:     s.xTrue.Clone(),
		UPlanned:  uPlanned,
		UExecuted: uExec,
		Readings:  readings,
		Truth:     s.scenario.TruthAt(k),
		Collided:  collided,
		Done:      done,
	}
	s.k++
	s.done = done
	return rec, nil
}

// updateControllerBelief feeds the planner's own state belief from the
// sensor readings, the way the paper's missions use "real-time positioning
// data from the IPS" (§V-A). A spoofed IPS therefore misleads the mission
// exactly as it would on the physical robot.
func (s *Simulator) updateControllerBelief(readings map[string]mat.Vec) {
	if ips, ok := readings["ips"]; ok && ips.Len() >= 3 {
		s.ctrlEst[0], s.ctrlEst[1], s.ctrlEst[2] = ips[0], ips[1], ips[2]
	}
	if s.model.StateDim() >= 4 {
		if imu, ok := readings["imu"]; ok && imu.Len() >= 2 {
			s.ctrlEst[3] = imu[1]
		}
	}
}

// Run advances the simulation until mission completion or maxIterations,
// returning every step record.
func (s *Simulator) Run(maxIterations int) ([]*StepRecord, error) {
	records := make([]*StepRecord, 0, maxIterations)
	for i := 0; i < maxIterations; i++ {
		rec, err := s.Step()
		if err != nil {
			if errors.Is(err, ErrMissionOver) {
				break
			}
			return records, err
		}
		records = append(records, rec)
		if rec.Done {
			break
		}
	}
	return records, nil
}

// KheperaSetup bundles the assembled Khepera simulator with the pieces
// the detector needs (plant dimensions, sensor suite).
type KheperaSetup struct {
	// Sim is the ready-to-run simulator.
	Sim *Simulator
	// Model is the drive model shared with the detector.
	Model *dynamics.DifferentialDrive
	// Suite is the sensor suite in canonical order (IPS, encoder, LiDAR).
	Suite []sensors.Sensor
	// ProcessStd is the per-state process noise standard deviation.
	ProcessStd mat.Vec
	// X0 is the initial state.
	X0 mat.Vec
	// Path is the planned waypoint path.
	Path []world.Point
}

// KheperaDt is the Khepera control iteration period in seconds (10 Hz).
const KheperaDt = 0.1

// KheperaProcessStd returns the Khepera per-state process noise levels.
func KheperaProcessStd() mat.Vec { return mat.VecOf(5e-4, 5e-4, 1e-3) }

// NewKhepera plans the mission with RRT* and assembles the full Khepera
// simulator for the given scenario and seed (§V-A configuration: IPS,
// wheel encoder, LiDAR).
func NewKhepera(mission Mission, scenario *attack.Scenario, seed int64) (*KheperaSetup, error) {
	rng := stat.NewRNG(seed)
	model := dynamics.NewKhepera(KheperaDt)

	path, err := planToGoal(mission, rng.Fork("planner"))
	if err != nil {
		return nil, fmt.Errorf("khepera mission: %w", err)
	}
	path = plan.Resample(path, 0.1)
	tracker, err := control.NewDiffDriveTracker(model, path)
	if err != nil {
		return nil, fmt.Errorf("khepera tracker: %w", err)
	}

	ips := sensors.NewIPS(3)
	we := sensors.NewWheelEncoder(3)
	lidar := sensors.NewLidar(mission.Map, 3)
	workflows := []SensingWorkflow{
		NewBasicWorkflow(ips, rng),
		NewEncoderWorkflow(model, we, rng),
		NewBasicWorkflow(lidar, rng),
	}

	x0 := mat.VecOf(mission.Start.X, mission.Start.Y, mission.StartHeading)
	simulator, err := New(model, tracker, workflows, scenario, KheperaProcessStd(), x0, rng)
	if err != nil {
		return nil, err
	}
	simulator.EnableCollisionCheck(mission.Map, 0.0)
	return &KheperaSetup{
		Sim:        simulator,
		Model:      model,
		Suite:      []sensors.Sensor{ips, we, lidar},
		ProcessStd: KheperaProcessStd(),
		X0:         x0,
		Path:       path,
	}, nil
}

// planToGoal runs RRT* and extends the path from the goal-region entry to
// the exact goal point when the final hop is collision-free, so missions
// terminate at the goal rather than anywhere in the goal region.
func planToGoal(mission Mission, rng *stat.RNG) ([]world.Point, error) {
	cfg := plan.DefaultConfig()
	path, err := plan.Plan(mission.Map, mission.Start, mission.Goal, cfg, rng)
	if err != nil {
		return nil, err
	}
	last := path[len(path)-1]
	if last.Dist(mission.Goal) > 1e-9 &&
		mission.Map.SegmentFree(world.Segment{A: last, B: mission.Goal}, cfg.Margin, 0) {
		path = append(path, mission.Goal)
	}
	return path, nil
}

// TamiyaSetup bundles the assembled Tamiya simulator for §V-D.
type TamiyaSetup struct {
	// Sim is the ready-to-run simulator.
	Sim *Simulator
	// Model is the bicycle model shared with the detector.
	Model *dynamics.Bicycle
	// Suite is the sensor suite in canonical order (IPS, LiDAR, IMU).
	Suite []sensors.Sensor
	// ProcessStd is the per-state process noise standard deviation.
	ProcessStd mat.Vec
	// X0 is the initial state.
	X0 mat.Vec
	// Path is the planned waypoint path.
	Path []world.Point
}

// TamiyaDt is the Tamiya control iteration period in seconds.
const TamiyaDt = 0.1

// TamiyaProcessStd returns the Tamiya per-state process noise levels.
func TamiyaProcessStd() mat.Vec { return mat.VecOf(5e-4, 5e-4, 1e-3, 2e-3) }

// NewTamiya plans the mission and assembles the RC car simulator for the
// given scenario and seed (§V-D configuration: IPS, LiDAR, IMU).
func NewTamiya(mission Mission, scenario *attack.Scenario, seed int64) (*TamiyaSetup, error) {
	rng := stat.NewRNG(seed)
	model := dynamics.NewTamiya(TamiyaDt)

	path, err := planToGoal(mission, rng.Fork("planner"))
	if err != nil {
		return nil, fmt.Errorf("tamiya mission: %w", err)
	}
	path = plan.Resample(path, 0.15)
	tracker, err := control.NewBicycleTracker(model, path)
	if err != nil {
		return nil, fmt.Errorf("tamiya tracker: %w", err)
	}

	ips := sensors.NewIPS(4)
	lidar := sensors.NewLidar(mission.Map, 4)
	imu := sensors.NewIMU()
	workflows := []SensingWorkflow{
		NewBasicWorkflow(ips, rng),
		NewBasicWorkflow(lidar, rng),
		NewBasicWorkflow(imu, rng),
	}

	x0 := mat.VecOf(mission.Start.X, mission.Start.Y, mission.StartHeading, 0)
	simulator, err := New(model, tracker, workflows, scenario, TamiyaProcessStd(), x0, rng)
	if err != nil {
		return nil, err
	}
	simulator.EnableCollisionCheck(mission.Map, 0.0)
	return &TamiyaSetup{
		Sim:        simulator,
		Model:      model,
		Suite:      []sensors.Sensor{ips, lidar, imu},
		ProcessStd: TamiyaProcessStd(),
		X0:         x0,
		Path:       path,
	}, nil
}
