// Package sim implements the closed-loop robot simulator that substitutes
// for the paper's physical testbeds (Khepera III and Tamiya TT02): truth
// integration of the kinematic model under Gaussian process noise, the
// sensing and actuation workflows of Fig. 1 with attack-injection hooks at
// their physical and cyber stages, and the RRT*+PID mission of §V-A.
package sim

import (
	"math"

	"roboads/internal/attack"
	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
)

// SensingWorkflow is one isolated sensing pipeline of Fig. 1: it captures
// the physical signal at the true state, processes it into a reading, and
// exposes injection points for attacks (Fig. 2a).
type SensingWorkflow interface {
	// Name is the workflow's sensor name.
	Name() string
	// Sense produces the (noisy, possibly corrupted) reading for
	// iteration k given the true state and the executed command.
	Sense(k int, xTrue, uExec mat.Vec) mat.Vec
	// Attach installs an attack on this workflow.
	Attach(a attack.SensorAttack)
}

// BasicWorkflow wraps a memoryless sensor: reading = h(x_true) + ξ, then
// any attached corruptions (IPS, LiDAR, GPS, IMU, magnetometer).
//
// Every > 1 decimates the workflow to every Nth control iteration with a
// zero-order hold in between, modeling a sensor slower than the control
// loop (e.g. a 5 Hz LiDAR under a 10 Hz controller). Note the estimator's
// measurement model assumes fresh readings; with decimated sensors run
// the detector at the slowest sensor rate or accept slightly correlated
// innovations on the held iterations.
type BasicWorkflow struct {
	sensor  sensors.Sensor
	rng     *stat.RNG
	stds    mat.Vec
	attacks []attack.SensorAttack

	// Every publishes a fresh reading every Nth iteration (0 and 1 mean
	// every iteration).
	Every int

	held mat.Vec
}

var _ SensingWorkflow = (*BasicWorkflow)(nil)

// NewBasicWorkflow returns a workflow for the given sensor with its own
// noise stream.
func NewBasicWorkflow(s sensors.Sensor, rng *stat.RNG) *BasicWorkflow {
	r := s.R()
	stds := make(mat.Vec, s.Dim())
	for i := range stds {
		stds[i] = math.Sqrt(r.At(i, i))
	}
	return &BasicWorkflow{sensor: s, rng: rng.Fork("workflow/" + s.Name()), stds: stds}
}

// Name implements SensingWorkflow.
func (w *BasicWorkflow) Name() string { return w.sensor.Name() }

// Sense implements SensingWorkflow.
func (w *BasicWorkflow) Sense(k int, xTrue, _ mat.Vec) mat.Vec {
	if w.Every > 1 && k%w.Every != 0 && w.held != nil {
		return w.held.Clone() // zero-order hold between samples
	}
	reading := w.sensor.H(xTrue).Add(w.rng.GaussianVec(w.stds))
	for _, a := range w.attacks {
		reading = a.Apply(k, reading)
	}
	w.held = reading.Clone()
	return reading
}

// Attach implements SensingWorkflow.
func (w *BasicWorkflow) Attach(a attack.SensorAttack) {
	w.attacks = append(w.attacks, a)
}

// EncoderWorkflow models the wheel-encoder odometry pipeline: per-wheel
// encoder ticks are integrated by dead reckoning into a pose reading.
// Tick-level attacks (attack.EncoderTicks) are applied before integration,
// so a one-shot tick injection becomes a persistent pose deviation — the
// physically correct effect of scenario #5's logic bomb.
//
// Clean readings follow the estimator's measurement model (true pose plus
// white noise): genuine odometry drift over a mission of this length is
// inside the modeled noise floor, and simulating it as white noise keeps
// the clean run consistent with equation (1), as the paper assumes.
type EncoderWorkflow struct {
	model   *dynamics.DifferentialDrive
	sensor  *sensors.WheelEncoder
	rng     *stat.RNG
	stds    mat.Vec
	attacks []attack.SensorAttack
	// offset is the accumulated pose-space deviation produced by
	// corrupted ticks (dead-reckoned at the heading where they were
	// injected).
	offset mat.Vec
}

var _ SensingWorkflow = (*EncoderWorkflow)(nil)

// NewEncoderWorkflow returns an odometry workflow for the given drive
// model.
func NewEncoderWorkflow(model *dynamics.DifferentialDrive, s *sensors.WheelEncoder, rng *stat.RNG) *EncoderWorkflow {
	r := s.R()
	stds := make(mat.Vec, s.Dim())
	for i := range stds {
		stds[i] = math.Sqrt(r.At(i, i))
	}
	return &EncoderWorkflow{
		model:  model,
		sensor: s,
		rng:    rng.Fork("workflow/wheel-encoder"),
		stds:   stds,
		offset: mat.NewVec(3),
	}
}

// Name implements SensingWorkflow.
func (w *EncoderWorkflow) Name() string { return w.sensor.Name() }

// Sense implements SensingWorkflow.
func (w *EncoderWorkflow) Sense(k int, xTrue, _ mat.Vec) mat.Vec {
	// Apply tick-level corruptions: injected ticks become wheel-travel
	// deltas, dead-reckoned into the persistent pose offset.
	for _, a := range w.attacks {
		if tick, ok := a.(*attack.EncoderTicks); ok {
			dl, dr := tick.CorruptTicks(k)
			if dl != 0 || dr != 0 {
				w.integrateTravel(dl*attack.TickMeters, dr*attack.TickMeters, xTrue[2])
			}
		}
	}
	reading := w.sensor.H(xTrue).Add(w.offset).Add(w.rng.GaussianVec(w.stds))
	reading[2] = dynamics.NormalizeAngle(reading[2])
	for _, a := range w.attacks {
		if _, ok := a.(*attack.EncoderTicks); ok {
			continue // already applied at tick level
		}
		reading = a.Apply(k, reading)
	}
	return reading
}

// integrateTravel dead-reckons extra per-wheel travel (meters) into the
// pose offset using the differential drive kinematics at heading theta.
func (w *EncoderWorkflow) integrateTravel(dl, dr, theta float64) {
	mid := (dl + dr) / 2
	w.offset[0] += mid * math.Cos(theta)
	w.offset[1] += mid * math.Sin(theta)
	w.offset[2] += (dr - dl) / w.model.WheelBase
}

// Attach implements SensingWorkflow.
func (w *EncoderWorkflow) Attach(a attack.SensorAttack) {
	w.attacks = append(w.attacks, a)
}
