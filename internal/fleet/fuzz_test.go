package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"roboads/internal/trace"
)

// FuzzWireDecode drives the fleet HTTP wire decoders (CreateRequest and
// ReplyLine, the two bodies clients and servers parse) with arbitrary
// bytes: malformed input must error, never panic, and accepted values
// must survive a re-encode/re-decode cycle.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"robot":"khepera","workers":2}`))
	f.Add([]byte(`{"restore":"s-000001"}`))
	f.Add([]byte(`{"k":3,"report":{"k":3,"mode":"nominal","x":[1,2,3],"weights":[0.5,0.5]}}`))
	f.Add([]byte(`{"k":1,"error":"fleet: closed","closed":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req CreateRequest
		if err := json.Unmarshal(data, &req); err == nil {
			out, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted CreateRequest failed to re-encode: %v", err)
			}
			var req2 CreateRequest
			if err := json.Unmarshal(out, &req2); err != nil || req2 != req {
				t.Fatalf("CreateRequest changed across round trip: %+v vs %+v", req2, req)
			}
		}
		var line ReplyLine
		if err := json.Unmarshal(data, &line); err == nil {
			out, err := json.Marshal(line)
			if err != nil {
				t.Fatalf("accepted ReplyLine failed to re-encode: %v", err)
			}
			var line2 ReplyLine
			if err := json.Unmarshal(out, &line2); err != nil {
				t.Fatalf("re-encoded ReplyLine failed to decode: %v", err)
			}
			again, err := json.Marshal(line2)
			if err != nil || !bytes.Equal(out, again) {
				t.Fatalf("ReplyLine encoding not stable: %s vs %s (err %v)", out, again, err)
			}
		}
	})
}

// FuzzFrameBatch drives the batch-submit wire decoder — the greedy
// reader behind POST /v1/sessions/{id}/frames — with arbitrary bytes in
// both wire formats: it must never panic, never return nil frames,
// never exceed the batch cap, and must make progress (terminate) on any
// input.
func FuzzFrameBatch(f *testing.F) {
	sample := trace.Frame{K: 3, U: []float64{0.1, -0.2}, Readings: map[string][]float64{"gps": {1.5, 2.5}}}
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for i := 0; i < 3; i++ {
		enc.Encode(sample)
	}
	var binary []byte
	for i := 0; i < 3; i++ {
		binary = trace.AppendFrameRecord(binary, &sample)
	}
	f.Add(ndjson.Bytes(), false)
	f.Add(append(ndjson.Bytes(), []byte("{garbage\n")...), false)
	f.Add([]byte("\n\n\n"), false)
	f.Add(binary, true)
	f.Add(binary[:len(binary)-4], true)
	f.Add([]byte{0x02, 0xff, 0xff, 0xff, 0x7f}, true)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, data []byte, bin bool) {
		fbr := &frameBatchReader{br: bufio.NewReaderSize(bytes.NewReader(data), 1<<16), binary: bin, max: 4}
		total := 0
		for {
			frames, _, err := fbr.next()
			if len(frames) > fbr.max {
				t.Fatalf("batch of %d exceeds cap %d", len(frames), fbr.max)
			}
			total += len(frames)
			if total > len(data)+1 {
				t.Fatalf("decoded %d frames from %d bytes", total, len(data))
			}
			if err != nil {
				return
			}
			if len(frames) == 0 {
				// No progress and no error would loop forever.
				t.Fatal("empty batch with nil error")
			}
		}
	})
}
