package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWireDecode drives the fleet HTTP wire decoders (CreateRequest and
// ReplyLine, the two bodies clients and servers parse) with arbitrary
// bytes: malformed input must error, never panic, and accepted values
// must survive a re-encode/re-decode cycle.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"robot":"khepera","workers":2}`))
	f.Add([]byte(`{"restore":"s-000001"}`))
	f.Add([]byte(`{"k":3,"report":{"k":3,"mode":"nominal","x":[1,2,3],"weights":[0.5,0.5]}}`))
	f.Add([]byte(`{"k":1,"error":"fleet: closed","closed":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req CreateRequest
		if err := json.Unmarshal(data, &req); err == nil {
			out, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted CreateRequest failed to re-encode: %v", err)
			}
			var req2 CreateRequest
			if err := json.Unmarshal(out, &req2); err != nil || req2 != req {
				t.Fatalf("CreateRequest changed across round trip: %+v vs %+v", req2, req)
			}
		}
		var line ReplyLine
		if err := json.Unmarshal(data, &line); err == nil {
			out, err := json.Marshal(line)
			if err != nil {
				t.Fatalf("accepted ReplyLine failed to re-encode: %v", err)
			}
			var line2 ReplyLine
			if err := json.Unmarshal(out, &line2); err != nil {
				t.Fatalf("re-encoded ReplyLine failed to decode: %v", err)
			}
			again, err := json.Marshal(line2)
			if err != nil || !bytes.Equal(out, again) {
				t.Fatalf("ReplyLine encoding not stable: %s vs %s (err %v)", out, again, err)
			}
		}
	})
}
