package fleet

import "roboads/internal/detect"

// ContentTypeBinaryFrames selects the binary frame wire on
// POST /v1/sessions/{id}/frames: the request body is a stream of
// trace binary frame records (no stream prologue, no header record —
// exactly the record envelope trace.ReadFrameRecord consumes). Any
// other Content-Type means trace.Frame NDJSON. Replies are ReplyLine
// NDJSON either way.
const ContentTypeBinaryFrames = "application/x-roboads-frames"

// WireReport is the serialized form of one frame's detector report — the
// decision-relevant subset of detect.Report, flat and JSON-stable.
// Floats cross the wire through encoding/json, whose shortest-round-trip
// rendering is exact for float64, so two WireReports are equal if and
// only if the underlying reports agree bit-for-bit on every included
// quantity; the remote-replay equivalence tests compare them directly.
type WireReport struct {
	// K is the control iteration index.
	K int `json:"k"`
	// Mode is the selected hypothesis mode's name.
	Mode string `json:"mode"`
	// Condition is the confirmed misbehavior condition, e.g. "S{ips}/A0".
	Condition string `json:"condition"`
	// SensorStat/SensorThreshold are the aggregate sensor test statistic
	// and its chi-square threshold; SensorAlarm is the window-confirmed
	// alarm.
	SensorStat      float64 `json:"sensorStat"`
	SensorThreshold float64 `json:"sensorThreshold"`
	SensorAlarm     bool    `json:"sensorAlarm,omitempty"`
	// ActuatorStat/ActuatorThreshold/ActuatorAlarm are the actuator-side
	// counterparts.
	ActuatorStat      float64 `json:"actuatorStat"`
	ActuatorThreshold float64 `json:"actuatorThreshold"`
	ActuatorAlarm     bool    `json:"actuatorAlarm,omitempty"`
	// X is the fused state estimate x̂_{k|k}.
	X []float64 `json:"x"`
	// Weights are the normalized mode weights μ_k.
	Weights []float64 `json:"weights"`
	// Da is the actuator anomaly estimate; omitted when the actuator
	// anomaly was unobservable this iteration (DaValid false).
	Da      []float64 `json:"da,omitempty"`
	DaValid bool      `json:"daValid,omitempty"`
}

// NewWireReport flattens a detector report for the wire.
func NewWireReport(rep *detect.Report) WireReport {
	w := WireReport{
		K:                 rep.Decision.Iteration,
		Mode:              rep.Decision.Mode,
		Condition:         rep.Decision.Condition.String(),
		SensorStat:        rep.Decision.SensorStat,
		SensorThreshold:   rep.Decision.SensorThreshold,
		SensorAlarm:       rep.Decision.SensorAlarm,
		ActuatorStat:      rep.Decision.ActuatorStat,
		ActuatorThreshold: rep.Decision.ActuatorThreshold,
		ActuatorAlarm:     rep.Decision.ActuatorAlarm,
		X:                 rep.Engine.Result.X,
		Weights:           rep.Engine.Weights,
		DaValid:           rep.Engine.Result.DaValid,
	}
	if w.DaValid {
		w.Da = rep.Engine.Result.Da
	}
	return w
}

// CreateRequest is the body of POST /v1/sessions.
type CreateRequest struct {
	// Robot names the platform profile to host.
	Robot string `json:"robot"`
	// Workers optionally overrides the session's mode-bank worker count
	// (see Spec.Workers).
	Workers int `json:"workers,omitempty"`
	// Restore, when set, revives the named persisted session (e.g. one
	// that was idle-evicted) under its original ID instead of creating
	// a new one; Robot and Workers are then ignored — the session's
	// recorded profile wins. Requires a durable manager.
	Restore string `json:"restore,omitempty"`
}

// ReplyLine is one NDJSON line streamed back per submitted frame, and
// the body of a single-frame /step response. Exactly one of Report and
// Error is set.
type ReplyLine struct {
	// K echoes the frame's iteration index.
	K int `json:"k"`
	// Report is the frame's detector report.
	Report *WireReport `json:"report,omitempty"`
	// Error describes why the frame produced no report.
	Error string `json:"error,omitempty"`
	// Closed marks errors that end the session (closed, evicted, or
	// unknown); the client must stop streaming.
	Closed bool `json:"closed,omitempty"`
	// RetryAfterMs is the backpressure retry hint of a rejected frame
	// (single-frame /step only; the streaming endpoint retries
	// server-side).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}
