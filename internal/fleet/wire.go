package fleet

import (
	"roboads/internal/api"
	"roboads/internal/detect"
)

// The /v1 wire contract lives in internal/api so the router and the
// typed client speak the same structs without importing the fleet. The
// aliases below keep the fleet-side names that the rest of the codebase
// (and its tests) use.

// ContentTypeBinaryFrames selects the binary frame wire on
// POST /v1/sessions/{id}/frames. See api.ContentTypeBinaryFrames.
const ContentTypeBinaryFrames = api.ContentTypeBinaryFrames

// WireReport is the serialized form of one frame's detector report.
type WireReport = api.WireReport

// CreateRequest is the body of POST /v1/sessions.
type CreateRequest = api.CreateRequest

// ReplyLine is one NDJSON line streamed back per submitted frame.
type ReplyLine = api.ReplyLine

// SessionInfo identifies a live session.
type SessionInfo = api.SessionInfo

// SessionStatus is SessionInfo plus live occupancy.
type SessionStatus = api.SessionStatus

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo = api.CheckpointInfo

// NewWireReport flattens a detector report for the wire. Floats cross
// the wire through encoding/json, whose shortest-round-trip rendering
// is exact for float64, so two WireReports are equal if and only if the
// underlying reports agree bit-for-bit on every included quantity; the
// remote-replay equivalence tests compare them directly.
func NewWireReport(rep *detect.Report) WireReport {
	w := WireReport{
		K:                 rep.Decision.Iteration,
		Mode:              rep.Decision.Mode,
		Condition:         rep.Decision.Condition.String(),
		SensorStat:        rep.Decision.SensorStat,
		SensorThreshold:   rep.Decision.SensorThreshold,
		SensorAlarm:       rep.Decision.SensorAlarm,
		ActuatorStat:      rep.Decision.ActuatorStat,
		ActuatorThreshold: rep.Decision.ActuatorThreshold,
		ActuatorAlarm:     rep.Decision.ActuatorAlarm,
		X:                 rep.Engine.Result.X,
		Weights:           rep.Engine.Weights,
		DaValid:           rep.Engine.Result.DaValid,
	}
	if w.DaValid {
		w.Da = rep.Engine.Result.Da
	}
	return w
}
