package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/store"
	"roboads/internal/trace"
)

// Durability configures the optional persistence layer of a Manager.
// When Dir is set, every session checkpoints its detector state to
// <Dir>/<session>/ and write-ahead-logs each accepted frame, so a crash
// or redeploy loses nothing: NewManager recovers persisted sessions
// (newest snapshot + WAL-tail replay) under their original IDs, and the
// recovered report stream is bit-for-bit the stream the uninterrupted
// process would have produced.
type Durability struct {
	// Dir is the state root; empty disables durability entirely (the
	// hot path then carries no persistence work at all).
	Dir string
	// SnapshotEvery is the automatic checkpoint cadence in frames: a
	// session whose WAL reaches this length is snapshotted and the WAL
	// rotated. 0 defaults to 256; negative disables automatic
	// checkpoints (the WAL still grows, and Checkpoint still works).
	SnapshotEvery int
	// FsyncEvery is the WAL fsync policy (store.Options.FsyncEvery):
	// 0 and 1 fsync every frame — a replied frame is on stable storage;
	// n > 1 batches; negative never fsyncs.
	FsyncEvery int
	// CommitWindow > 0 enables cross-session group commit
	// (store.Options.CommitWindow): WAL appends skip the inline fsync
	// and a batch is acknowledged only after a fleet-level group fsync
	// covering it, amortizing one fsync per window over every session.
	// Reply-after-fsync is preserved; FsyncEvery is ignored.
	CommitWindow time.Duration
}

// StateStepper is the stepper extension durability requires: a session
// can only be persisted if its pipeline state can be exported and
// re-imported. *detect.Detector implements it; Create returns an error
// for a durable manager whose Builder yields a bare Stepper.
type StateStepper interface {
	Stepper
	ExportState() *detect.State
	ImportState(*detect.State) error
}

// Checkpoint forces a snapshot of one live session right now, rotating
// its WAL. It runs under the session's step lock: the snapshot captures
// a frame boundary, never a mid-step state, and the session cannot be
// evicted or closed while the serialization is in progress.
func (m *Manager) Checkpoint(id string) (CheckpointInfo, error) {
	if m.store == nil {
		return CheckpointInfo{}, ErrDurabilityDisabled
	}
	s, err := m.lookup(id)
	if err != nil {
		return CheckpointInfo{}, err
	}
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if s.isClosed() || s.ds == nil {
		return CheckpointInfo{}, fmt.Errorf("%w: session %s", ErrClosed, id)
	}
	n, err := m.persistSnapshot(s)
	if err != nil {
		return CheckpointInfo{}, err
	}
	return CheckpointInfo{SessionID: id, FramesApplied: s.ds.Applied(), SnapshotBytes: n}, nil
}

// Restore revives a persisted session — typically one that was idle-
// evicted, whose on-disk state eviction deliberately keeps — under its
// original ID. The detector is rebuilt from the session's profile, the
// newest snapshot imported, and the WAL tail replayed, so the next
// frame continues the report stream exactly where it left off.
func (m *Manager) Restore(id string) (SessionInfo, error) {
	if m.store == nil {
		return SessionInfo{}, ErrDurabilityDisabled
	}
	m.gate.RLock()
	running := m.state.Load() == stateRunning
	m.gate.RUnlock()
	if !running {
		return SessionInfo{}, ErrClosed
	}
	m.mu.Lock()
	if _, live := m.sessions[id]; live {
		m.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("%w: %s", ErrSessionLive, id)
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return SessionInfo{}, ErrTooManySessions
	}
	closing := m.closing[id]
	m.sessions[id] = nil // reserved
	m.mu.Unlock()
	if closing != nil {
		// The session was just evicted or deleted and its teardown
		// (final snapshot, WAL handle close) is still running; reading
		// or reopening its files now could strand appends on a segment
		// teardown is about to compact away. Wait it out.
		<-closing
	}

	s, _, err := m.rebuildSession(id)
	if err != nil {
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		if errors.Is(err, store.ErrNoSnapshot) || errors.Is(err, os.ErrNotExist) {
			return SessionInfo{}, fmt.Errorf("%w: no persisted state for %s", ErrSessionNotFound, id)
		}
		return SessionInfo{}, err
	}
	m.mu.Lock()
	if m.state.Load() != stateRunning {
		delete(m.sessions, id)
		m.mu.Unlock()
		s.ds.Close()
		s.stepper.Close()
		return SessionInfo{}, ErrClosed
	}
	m.sessions[id] = s
	live := len(m.sessions)
	m.mu.Unlock()
	m.mLive.Set(float64(live))
	return s.info, nil
}

// initDurable makes a freshly built session durable before it becomes
// visible: its store directory is created and an initial snapshot made
// stable, so from the instant Create returns, a crash recovers the
// session. Called from Create with the stepper not yet shared.
func (m *Manager) initDurable(id string, spec Spec, stepper Stepper, info SessionInfo) (*store.SessionStore, error) {
	ss, ok := stepper.(StateStepper)
	if !ok {
		return nil, fmt.Errorf("fleet: durability requires a StateStepper, Builder returned %T", stepper)
	}
	ds, err := m.store.Create(id)
	if err != nil {
		return nil, err
	}
	snap := &store.Snapshot{Robot: info.Robot, Workers: spec.Workers, Sensors: info.Sensors, Dt: info.Dt, State: ss.ExportState()}
	if _, err := ds.WriteSnapshot(snap); err != nil {
		ds.Close()
		m.store.Remove(id)
		return nil, err
	}
	return ds, nil
}

// persistSnapshot checkpoints s. The caller holds s.stepMu.
func (m *Manager) persistSnapshot(s *session) (int, error) {
	ss, ok := s.stepper.(StateStepper)
	if !ok {
		return 0, fmt.Errorf("fleet: session %s stepper %T cannot export state", s.info.ID, s.stepper)
	}
	snap := &store.Snapshot{Robot: s.info.Robot, Workers: s.spec.Workers, Sensors: s.info.Sensors, Dt: s.info.Dt, State: ss.ExportState()}
	return s.ds.WriteSnapshot(snap)
}

// logFrame write-ahead-logs one successfully stepped frame. The caller
// holds s.stepMu and replies only after logFrame — and, under group
// commit, the covering SessionStore.Commit — returns, so a replied
// frame is on stable storage. An append error is surfaced to the client
// in place of the report: the frame was applied in memory but its
// durability is unknown, and claiming success would break the recovery
// contract. Checkpoint cadence lives in process(), after the commit
// barrier, so WAL rotation never discards un-fsynced appends.
func (m *Manager) logFrame(s *session, fr BatchFrame, rep *detect.Report) error {
	frame := &trace.Frame{K: rep.Decision.Iteration, U: []float64(fr.U), Readings: make(map[string][]float64, len(fr.Readings))}
	for name, z := range fr.Readings {
		frame.Readings[name] = []float64(z)
	}
	if err := s.ds.Append(frame); err != nil {
		return fmt.Errorf("fleet: persist frame: %w", err)
	}
	return nil
}

// rebuildSession reconstructs one persisted session: newest snapshot,
// detector rebuilt from the recorded profile, state imported, WAL tail
// replayed. The returned session is not yet registered. The second
// return is the number of frames replayed.
func (m *Manager) rebuildSession(id string) (*session, int, error) {
	ds, snap, frames, err := m.store.Recover(id)
	if err != nil {
		return nil, 0, err
	}
	s, err := m.buildFromState(id, snap, frames)
	if err != nil {
		ds.Close()
		return nil, 0, err
	}
	s.ds = ds
	return s, len(frames), nil
}

// buildFromState rebuilds a detector session from a decoded snapshot
// plus a frame tail: build from the recorded profile, cross-check
// identity, import the state, replay the tail. Shared by disk recovery
// (rebuildSession) and migration import on a non-durable node. The
// returned session has no SessionStore attached and is not registered.
func (m *Manager) buildFromState(id string, snap *store.Snapshot, frames []*trace.Frame) (*session, error) {
	fail := func(err error) (*session, error) {
		return nil, fmt.Errorf("fleet: restore session %s: %w", id, err)
	}
	spec := Spec{Robot: snap.Robot, Workers: snap.Workers}
	stepper, info, err := m.cfg.Build(spec)
	if err != nil {
		return fail(err)
	}
	ss, ok := stepper.(StateStepper)
	if !ok {
		stepper.Close()
		return fail(fmt.Errorf("builder returned %T, which cannot import state", stepper))
	}
	if err := validateIdentity(info, snap); err != nil {
		stepper.Close()
		return fail(err)
	}
	if err := ss.ImportState(snap.State); err != nil {
		stepper.Close()
		return fail(err)
	}
	for i, fr := range frames {
		readings := make(map[string]mat.Vec, len(fr.Readings))
		for name, z := range fr.Readings {
			readings[name] = mat.Vec(z)
		}
		if _, err := stepper.StepContext(context.Background(), mat.Vec(fr.U), readings); err != nil {
			stepper.Close()
			return fail(fmt.Errorf("replay WAL frame %d/%d: %w", i+1, len(frames), err))
		}
	}
	info.ID = id
	s := &session{info: info, spec: spec, stepper: stepper, frames: make(chan frameJob, m.cfg.QueueDepth)}
	s.applied.Store(int64(snap.FramesApplied + len(frames)))
	s.touch(m.now())
	return s, nil
}

// validateIdentity cross-checks the freshly built detector's wire
// contract against the snapshot's recorded one. A disagreement means
// the binary's profile diverged from the one that wrote the state;
// importing would silently change what the session computes.
func validateIdentity(info SessionInfo, snap *store.Snapshot) error {
	if info.Robot != snap.Robot {
		return fmt.Errorf("profile robot %q, snapshot %q", info.Robot, snap.Robot)
	}
	if info.Dt != snap.Dt {
		return fmt.Errorf("profile dt %v, snapshot %v", info.Dt, snap.Dt)
	}
	if len(info.Sensors) != len(snap.Sensors) {
		return fmt.Errorf("profile has %d sensors, snapshot %d", len(info.Sensors), len(snap.Sensors))
	}
	for i := range info.Sensors {
		if info.Sensors[i] != snap.Sensors[i] {
			return fmt.Errorf("sensor %d is %q, snapshot %q", i, info.Sensors[i], snap.Sensors[i])
		}
	}
	return nil
}

// recoverSessions loads every persisted session at startup. A directory
// without a valid snapshot is the artifact of a crash mid-Create — the
// session was never durable — and is silently removed. Any other
// failure aborts the manager: durable state that exists but cannot be
// restored is an operator problem, not something to drop silently.
// Called from NewManager before the shard workers start.
func (m *Manager) recoverSessions() error {
	ids, err := m.store.Sessions()
	if err != nil {
		return err
	}
	var recovered []*session
	abort := func(err error) error {
		for _, s := range recovered {
			s.ds.Close()
			s.stepper.Close()
			delete(m.sessions, s.info.ID)
		}
		return err
	}
	replayed := 0
	for _, id := range ids {
		s, n, err := m.rebuildSession(id)
		if errors.Is(err, store.ErrNoSnapshot) {
			m.store.Remove(id)
			continue
		}
		if err != nil {
			return abort(err)
		}
		m.sessions[id] = s
		recovered = append(recovered, s)
		replayed += n
		if num, ok := sessionNum(id); ok && num > m.nextID {
			m.nextID = num
		}
	}
	m.store.SetRecovered(len(recovered))
	m.store.CountReplayed(replayed)
	m.mLive.Set(float64(len(recovered)))
	return nil
}

// sessionNum parses the numeric suffix of a manager-assigned session ID
// so recovery can continue the ID sequence without collisions.
func sessionNum(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "s-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
