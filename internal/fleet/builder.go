package fleet

import (
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/eval"
)

// ProfileBuilder returns the standard session Builder: Spec.Robot
// selects an eval.RobotProfile (the same standalone construction path
// `roboads replay` uses, lab-mission geometry), so a trace recorded from
// the simulator replays against a hosted session bit-for-bit.
// Spec.Workers, when non-zero, overrides the engine worker count of that
// session only.
func ProfileBuilder(ecfg core.EngineConfig, dcfg detect.Config) Builder {
	return func(spec Spec) (Stepper, SessionInfo, error) {
		p, err := eval.RobotProfile(spec.Robot)
		if err != nil {
			return nil, SessionInfo{}, err
		}
		cfg := ecfg
		if spec.Workers != 0 {
			cfg.Workers = spec.Workers
		}
		det, err := p.NewDetector(cfg, dcfg)
		if err != nil {
			return nil, SessionInfo{}, err
		}
		return det, SessionInfo{Robot: p.Robot, Sensors: p.SensorNames(), Dt: p.Dt}, nil
	}
}

// DefaultBuilder is ProfileBuilder with the paper-default engine and
// decision parameters and sequential per-session mode banks: a fleet
// gets its parallelism from the shard workers, one frame per session at
// a time, so fanning each session's bank out as well would oversubscribe
// the host. Mode-bank output is bit-for-bit independent of the worker
// count, so this is purely a scheduling choice.
func DefaultBuilder() Builder {
	ecfg := core.DefaultEngineConfig()
	ecfg.Workers = -1
	return ProfileBuilder(ecfg, detect.DefaultConfig())
}
