package fleet

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"roboads/internal/attack"
	"roboads/internal/mat"
	"roboads/internal/sim"
	"roboads/internal/trace"
)

// tamiyaFrames is kheperaFrames for the bicycle platform — the
// heterogeneous profile of the batched-scheduling tests.
func tamiyaFrames(t *testing.T, seed int64, n int) []trace.Frame {
	t.Helper()
	setup, err := sim.NewTamiya(sim.LabMission(), &attack.Scenario{}, seed)
	if err != nil {
		t.Fatalf("tamiya setup: %v", err)
	}
	frames := make([]trace.Frame, 0, n)
	for len(frames) < n {
		rec, err := setup.Sim.Step()
		if err != nil {
			break
		}
		frame := trace.Frame{K: rec.K, U: rec.UPlanned, Readings: make(map[string][]float64, len(rec.Readings))}
		for name, z := range rec.Readings {
			frame.Readings[name] = z
		}
		frames = append(frames, frame)
		if rec.Done {
			break
		}
	}
	if len(frames) == 0 {
		t.Fatal("no frames generated")
	}
	return frames
}

// TestFleetBatchedSessionsMatchScalar is the batched-scheduling
// determinism acceptance test: a mixed fleet — six Khepera sessions the
// scheduler may coalesce, two Tamiya sessions it must route scalar —
// ingesting concurrently through a batching-enabled shard pool with
// durability on produces, per session, bit-for-bit the report stream of
// a lone in-process detector. Submission chunk sizes differ per session
// so coalesced lockstep rounds include sessions dropping out mid-job,
// and the shard pool is smaller than the session count so quanta
// genuinely interleave. Run under -race in CI (the fleet-batch job).
func TestFleetBatchedSessionsMatchScalar(t *testing.T) {
	const kheperaSessions, tamiyaSessions = 6, 2
	kFrames := kheperaFrames(t, 21, 36)
	tFrames := tamiyaFrames(t, 22, 36)
	build := DefaultBuilder()
	wantK := localReports(t, build, Spec{Robot: "khepera"}, kFrames)
	wantT := localReports(t, build, Spec{Robot: "tamiya"}, tFrames)

	m, err := NewManager(Config{
		Workers:    3,
		QueueDepth: 8,
		MaxBatch:   8,
		Batching:   4,
		Build:      build,
		Durability: Durability{Dir: t.TempDir(), FsyncEvery: -1, SnapshotEvery: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())

	type sessionRun struct {
		id     string
		frames []trace.Frame
		want   []WireReport
	}
	runs := make([]sessionRun, 0, kheperaSessions+tamiyaSessions)
	for i := 0; i < kheperaSessions; i++ {
		info, err := m.Create(Spec{Robot: "khepera"})
		if err != nil {
			t.Fatalf("create khepera session %d: %v", i, err)
		}
		runs = append(runs, sessionRun{id: info.ID, frames: kFrames, want: wantK})
	}
	for i := 0; i < tamiyaSessions; i++ {
		info, err := m.Create(Spec{Robot: "tamiya"})
		if err != nil {
			t.Fatalf("create tamiya session %d: %v", i, err)
		}
		runs = append(runs, sessionRun{id: info.ID, frames: tFrames, want: wantT})
	}

	var wg sync.WaitGroup
	got := make([][]WireReport, len(runs))
	errs := make([]error, len(runs))
	for i, run := range runs {
		wg.Add(1)
		go func(i int, run sessionRun) {
			defer wg.Done()
			chunk := 1 + i%4 // per-session batch depth: lockstep drop-out coverage
			for off := 0; off < len(run.frames); off += chunk {
				end := off + chunk
				if end > len(run.frames) {
					end = len(run.frames)
				}
				batch := make([]BatchFrame, 0, end-off)
				for _, frame := range run.frames[off:end] {
					frame := frame
					batch = append(batch, BatchFrame{U: mat.Vec(frame.U), Readings: frameReadings(&frame)})
				}
				var pending *PendingBatch
				for {
					var err error
					pending, err = m.SubmitBatch(run.id, batch)
					if errors.Is(err, ErrBackpressure) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						errs[i] = err
						return
					}
					break
				}
				results, err := pending.Wait(context.Background())
				if err != nil {
					errs[i] = err
					return
				}
				for _, res := range results {
					if res.Err != nil {
						errs[i] = res.Err
						return
					}
					got[i] = append(got[i], NewWireReport(res.Report))
				}
			}
		}(i, run)
	}
	wg.Wait()
	for i, run := range runs {
		if errs[i] != nil {
			t.Fatalf("session %d (%s): %v", i, run.id, errs[i])
		}
		if !reflect.DeepEqual(got[i], run.want) {
			t.Fatalf("session %d (%s) reports diverged from scalar reference", i, run.id)
		}
	}
}

// TestFleetBatchingDisabledUntouched pins the nil-batch guarantee: with
// Batching unset the manager allocates no batch machinery and serves
// through the scalar quantum verbatim.
func TestFleetBatchingDisabledUntouched(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, Build: DefaultBuilder()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	if m.batches != nil {
		t.Fatal("batch workspace cache allocated with Batching disabled")
	}
}
