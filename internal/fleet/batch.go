package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/telemetry"
)

// Frame coalescing (Config.Batching > 1): a shard worker serving a
// session drains other runnable sessions with the same batch
// fingerprint from the run queue in the same scheduling quantum and
// steps their frames in lockstep through one blocked
// detect.DetectorBatch pass. Everything a scalar quantum guarantees per
// session is preserved — the step mutex is held for every coalesced
// session, frames of one submission step strictly in order, the WAL
// reply-after-fsync ordering and the group-commit barrier run
// per session, and each session reschedules itself afterwards — so the
// report streams are bit-for-bit the scalar streams (the batched
// engine's own contract), just produced with fewer passes over the
// shared mode-bank algebra.

// batchSpace is the cached blocked workspace for one batch fingerprint.
// mu serializes use: the workspace holds per-slot staging buffers, so
// two workers coalescing the same profile concurrently must not share
// it — the loser of TryLock falls back to scalar processing instead of
// waiting, keeping the quantum non-blocking.
type batchSpace struct {
	mu     sync.Mutex
	db     *detect.DetectorBatch
	failed bool // workspace construction failed; stay scalar for this key
}

// batchItem is one coalesced session with its dequeued job.
type batchItem struct {
	s   *session
	job frameJob
	det *detect.Detector
}

// batchDetector reports the session's batchable detector, or nil when
// the stepper is not a *detect.Detector (test doubles, custom builders).
func batchDetector(s *session) *detect.Detector {
	det, _ := s.stepper.(*detect.Detector)
	return det
}

// serveBatched is serve with coalescing: after dequeuing the lead
// session's job it steals up to Batching−1 more runnable sessions,
// keeps the ones sharing the lead's fingerprint, and requeues the rest
// untouched. The lead's run-queue token is held by this worker and each
// stolen token is either consumed (the session is served here) or put
// back, so the ≤1-entry-per-session invariant survives.
func (m *Manager) serveBatched(lead *session) {
	job, ok := m.pop(lead)
	if !ok {
		lead.scheduled.Store(false)
		if len(lead.frames) > 0 {
			m.schedule(lead)
		}
		return
	}
	leadDet := batchDetector(lead)
	if leadDet == nil {
		m.finish(batchItem{s: lead, job: job})
		return
	}

	key := leadDet.BatchKey()
	group := []batchItem{{s: lead, job: job, det: leadDet}}
	var requeue []*session
	for len(group) < m.cfg.Batching {
		var p *session
		select {
		case p, ok = <-m.runq:
		default:
			ok = false
		}
		if !ok || p == nil {
			break
		}
		det := batchDetector(p)
		if det == nil || det.BatchKey() != key {
			// Different profile: hand the token back after the steal
			// loop (not inside it, or we would steal it right back).
			requeue = append(requeue, p)
			continue
		}
		pj, pok := m.pop(p)
		if !pok {
			p.scheduled.Store(false)
			if len(p.frames) > 0 {
				m.schedule(p)
			}
			continue
		}
		group = append(group, batchItem{s: p, job: pj, det: det})
	}
	// Safe even during shutdown: this worker still holds accepted frames
	// (inflight > 0), so Shutdown cannot have closed runq yet.
	for _, p := range requeue {
		m.runq <- p
	}

	if len(group) == 1 {
		m.finish(group[0])
		return
	}
	ws := m.batchSpaceFor(key, leadDet)
	if ws == nil || !ws.mu.TryLock() {
		// No workspace (construction failed) or another worker is mid-pass
		// on this profile: serve everyone scalar rather than wait.
		for _, it := range group {
			m.finish(it)
		}
		return
	}
	m.processBatch(ws.db, group)
	ws.mu.Unlock()
}

// batchSpaceFor returns the cached workspace for key, creating it from
// proto on first use. A failed construction is remembered so the
// profile stays on the scalar path instead of re-failing every quantum.
func (m *Manager) batchSpaceFor(key uint64, proto *detect.Detector) *batchSpace {
	m.batchMu.Lock()
	defer m.batchMu.Unlock()
	ws, ok := m.batches[key]
	if !ok {
		ws = &batchSpace{}
		db, err := detect.NewDetectorBatch(proto, m.cfg.Batching)
		if err != nil {
			ws.failed = true
		} else {
			ws.db = db
		}
		m.batches[key] = ws
	}
	if ws.failed {
		return nil
	}
	return ws
}

// finish serves one session scalar — process plus the scheduling tail
// serve would have run.
func (m *Manager) finish(it batchItem) {
	m.process(it.s, it.job)
	it.s.scheduled.Store(false)
	if len(it.s.frames) > 0 {
		m.schedule(it.s)
	}
}

// processBatch steps the group's jobs in frame lockstep: frame j of
// every session steps in one blocked pass, sessions whose jobs are
// shorter drop out of later rounds, and a lone remaining session takes
// the scalar path (a batch of one buys nothing). The caller holds the
// workspace lock for the whole pass (the workspace stages per-slot
// state). Per-session semantics mirror process exactly — see the
// step-mutex, durability, and reply handling there.
func (m *Manager) processBatch(db *detect.DetectorBatch, items []batchItem) {
	k := len(items)
	results := make([][]FrameResult, k)
	appended := make([]int, k)
	active := make([]bool, k)
	maxFrames := 0
	for idx, it := range items {
		results[idx] = make([]FrameResult, len(it.job.frames))
		it.s.stepMu.Lock()
		if it.s.isClosed() {
			err := fmt.Errorf("%w: session %s", ErrClosed, it.s.info.ID)
			for i := range results[idx] {
				results[idx][i].Err = err
			}
			continue
		}
		active[idx] = true
		if len(it.job.frames) > maxFrames {
			maxFrames = len(it.job.frames)
		}
	}

	dets := make([]*detect.Detector, 0, k)
	us := make([]mat.Vec, 0, k)
	readings := make([]map[string]mat.Vec, 0, k)
	slots := make([]int, 0, k)
	for j := 0; j < maxFrames; j++ {
		dets, us, readings, slots = dets[:0], us[:0], readings[:0], slots[:0]
		for idx, it := range items {
			if !active[idx] || j >= len(it.job.frames) {
				continue
			}
			slots = append(slots, idx)
			dets = append(dets, it.det)
			us = append(us, it.job.frames[j].U)
			readings = append(readings, it.job.frames[j].Readings)
			// Coalesce stage: steal-loop time plus the rounds this frame
			// waited for its predecessors to clear the blocked pass.
			it.job.frames[j].Span.Lap(telemetry.StageCoalesce)
		}
		if len(slots) == 0 {
			break
		}
		start := time.Now()
		var reps []*detect.Report
		var errs []error
		if len(slots) == 1 {
			rep, err := items[slots[0]].det.StepContext(context.Background(), us[0], readings[0])
			reps, errs = []*detect.Report{rep}, []error{err}
		} else {
			reps, errs = db.Step(dets, us, readings)
		}
		// One blocked pass stepped every slot; its wall time is the shared
		// cost of the whole round (same attribution the engine observer
		// sees — DESIGN.md §13).
		elapsed := time.Since(start).Seconds()
		for i, idx := range slots {
			it := items[idx]
			fr := it.job.frames[j]
			// The blocked pass (plus earlier slots' WAL work this round)
			// is the frame's step stage — the same shared-cost
			// attribution elapsed carries below.
			fr.Span.Lap(telemetry.StageStep)
			rep, err := reps[i], errs[i]
			m.mFrames.Inc()
			if err == nil && it.s.ds != nil {
				if derr := m.logFrame(it.s, fr, rep); derr != nil {
					rep, err = nil, derr
				} else {
					appended[idx]++
					fr.Span.Lap(telemetry.StageWALAppend)
					fr.Span.Shift(telemetry.StageWALAppend, telemetry.StageFsync, it.s.ds.LastSyncNanos())
				}
			}
			if err != nil {
				m.mErrors.Inc()
			} else {
				it.s.applied.Add(1)
			}
			m.mStepSeconds.Observe(elapsed)
			results[idx][j] = FrameResult{Report: rep, Err: err}
		}
	}

	for idx := range items {
		if appended[idx] > 0 {
			// Wake the replication stream before the commit barriers so
			// the follower's fsync overlaps the group's.
			m.replNotify()
			break
		}
	}
	for idx, it := range items {
		s := it.s
		if active[idx] && s.ds != nil && appended[idx] > 0 {
			if cerr := s.ds.Commit(appended[idx]); cerr != nil {
				cerr = fmt.Errorf("fleet: commit frames: %w", cerr)
				for i := range results[idx] {
					if results[idx][i].Err == nil {
						results[idx][i] = FrameResult{Err: cerr}
					}
				}
			} else {
				if m.cfg.Trace != nil {
					for i := range it.job.frames {
						if results[idx][i].Err == nil {
							it.job.frames[i].Span.Lap(telemetry.StageFsync)
						}
					}
				}
				if m.snapshotEvery > 0 && s.ds.SinceSnapshot() >= m.snapshotEvery {
					m.persistSnapshot(s)
				}
				if werr := m.waitFollowerAck(s); werr != nil {
					for i := range results[idx] {
						if results[idx][i].Err == nil {
							results[idx][i] = FrameResult{Err: werr}
						}
					}
				}
			}
		}
		s.stepMu.Unlock()
		s.touch(m.now())
		it.job.reply <- results[idx]
		m.inflight.Done()
		s.scheduled.Store(false)
		if len(s.frames) > 0 {
			m.schedule(s)
		}
	}
}
