package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roboads/internal/api"
)

// The API contract tests pin the /v1 error surface: every fleet
// sentinel's HTTP status, machine-readable code, and envelope extras
// (retry hints, redirect locations). Clients — the typed client, the
// router, loadgen — dispatch on exactly these, so a drifted mapping is
// a silent cross-version break. Change a case here only together with a
// documented wire-contract change.

// doJSON issues one request with an optional JSON body and returns the
// response.
func doJSON(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wantEnvelope asserts one error response: status, code, and that the
// body is the api.Error envelope (never a bare string or ad-hoc map).
// It returns the decoded envelope for extra assertions.
func wantEnvelope(t *testing.T, resp *http.Response, status int, code string) api.Error {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	if e.Code != code {
		t.Fatalf("code = %q (%s), want %q", e.Code, e.Message, code)
	}
	if e.Message == "" {
		t.Fatal("error envelope has no message")
	}
	return e
}

// TestContractLookupAndCreate pins the request-shaped failures on a
// plain (non-durable) node: bad requests, unknown sessions, proposed-ID
// collisions, and the durability-off sentinel.
func TestContractLookupAndCreate(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	frame := kheperaFrames(t, 7, 1)[0]

	// ErrSessionNotFound → 404 not_found on every lookup-shaped route.
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/sessions/nope"},
		{http.MethodPost, "/v1/sessions/nope/step"},
		{http.MethodPost, "/v1/sessions/nope/frames"},
		{http.MethodDelete, "/v1/sessions/nope"},
		{http.MethodPost, "/v1/sessions/nope/migrate"},
	} {
		var body any
		switch {
		case strings.HasSuffix(c.path, "/step"):
			body = frame
		case strings.HasSuffix(c.path, "/migrate"):
			body = api.MigrateRequest{Target: "http://127.0.0.1:1"}
		}
		resp := doJSON(t, c.method, srv.URL+c.path, body)
		wantEnvelope(t, resp, http.StatusNotFound, api.CodeNotFound)
	}

	// Malformed or invalid requests → 400 bad_request.
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Robot: "no-such-robot"})
	wantEnvelope(t, resp, http.StatusBadRequest, api.CodeBadRequest)
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Robot: "khepera", ID: "bad/id"})
	wantEnvelope(t, resp, http.StatusBadRequest, api.CodeBadRequest)
	info := createSession(t, srv.URL, "khepera")
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/migrate", api.MigrateRequest{})
	wantEnvelope(t, resp, http.StatusBadRequest, api.CodeBadRequest)

	// ErrSessionLive → 409 session_live on a proposed-ID collision.
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Robot: "khepera", ID: info.ID})
	wantEnvelope(t, resp, http.StatusConflict, api.CodeSessionLive)

	// ErrDurabilityDisabled → 501 durability_disabled without -state-dir.
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/checkpoint", nil)
	wantEnvelope(t, resp, http.StatusNotImplemented, api.CodeDurabilityDisabled)
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Restore: "gone"})
	wantEnvelope(t, resp, http.StatusNotImplemented, api.CodeDurabilityDisabled)
}

// TestContractDurableRestore pins restore-path errors on a durable node:
// restoring a session with no persisted state is 404 not_found.
func TestContractDurableRestore(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, Durability: Durability{Dir: t.TempDir()}})
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Restore: "never-existed"})
	wantEnvelope(t, resp, http.StatusNotFound, api.CodeNotFound)
}

// TestContractSessionCap pins ErrTooManySessions → 503 session_cap with
// a Retry-After header.
func TestContractSessionCap(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, MaxSessions: 1})
	createSession(t, srv.URL, "khepera")
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Robot: "khepera"})
	wantEnvelope(t, resp, http.StatusServiceUnavailable, api.CodeSessionCap)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("session_cap response has no Retry-After header")
	}
}

// TestContractBackpressure pins the /step 429: a full queue answers a
// ReplyLine (not a bare envelope — the reply carries the frame's k)
// with code backpressure, the exact millisecond retry hint, and a
// whole-second Retry-After header for generic clients.
func TestContractBackpressure(t *testing.T) {
	st := newScriptedStepper()
	m, srv := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 40 * time.Millisecond,
		Build: scriptedBuilder(st),
	})
	info := mustCreate(t, m, Spec{Robot: "fake"})

	p1, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-st.started // worker mid-step, queue empty
	p2, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/step",
		map[string]any{"k": 3, "u": []float64{0}, "readings": map[string][]float64{"fake": {0}}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("step status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	var line ReplyLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	if line.Code != api.CodeBackpressure || line.RetryAfterMs != 40 || line.K != 3 {
		t.Fatalf("backpressure reply = %+v", line)
	}

	st.release <- struct{}{}
	<-st.started
	st.release <- struct{}{}
	for _, p := range []*Pending{p1, p2} {
		if _, err := p.Wait(t.Context()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestContractMigratingAndClosed pins the mid-lifecycle sentinels, all
// made deterministic by a scripted stepper holding a frame in-step:
//
//   - step while the session drains for migration → 503 migrating with
//     the fixed 50ms retry hint;
//   - a concurrent migrate of the same session → 409 migrating;
//   - a failed migration (the scripted stepper cannot export state)
//     → 5xx with code internal, and the session keeps serving;
//   - a queued frame answered by DELETE → 410 closed;
//   - create after shutdown → 503 closed with Retry-After.
func TestContractMigratingAndClosed(t *testing.T) {
	st := newScriptedStepper()
	m, srv := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Build: scriptedBuilder(st)})
	info := mustCreate(t, m, Spec{Robot: "fake"})
	stepBody := map[string]any{"k": 1, "u": []float64{0}, "readings": map[string][]float64{"fake": {0}}}

	// Hold a frame in-step so Migrate's drain loop spins with the
	// migrating flag up, and pre-fill the single queue slot: the polled
	// HTTP steps below must always be rejected outright (429 before the
	// migrating flag flips, 503 after) — one slipping into the queue
	// would block its handler on a reply the held worker can never send,
	// deadlocking the drain.
	p1, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-st.started
	p2, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	migrateDone := make(chan *http.Response, 1)
	go func() {
		migrateDone <- doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/migrate",
			api.MigrateRequest{Target: "http://127.0.0.1:1"})
	}()
	// Poll until the drain has begun: a step rejected with migrating.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/step", stepBody)
		if resp.StatusCode == http.StatusServiceUnavailable {
			e := wantEnvelope(t, resp, http.StatusServiceUnavailable, api.CodeMigrating)
			if e.RetryAfterMs != 50 {
				t.Fatalf("migrating retryAfterMs = %d, want 50", e.RetryAfterMs)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("step was never rejected with migrating")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ErrMigrating → 409 on a concurrent migrate of the same session.
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/migrate",
		api.MigrateRequest{Target: "http://127.0.0.1:1"})
	wantEnvelope(t, resp, http.StatusConflict, api.CodeMigrating)

	// Release the held frame and the queued one behind it: the drain
	// completes, the export fails (scripted steppers hold no exportable
	// state), the migration aborts server-side with an internal-class
	// envelope, and the session is serving again.
	st.release <- struct{}{}
	<-st.started // the queued frame reaches the worker
	st.release <- struct{}{}
	for _, p := range []*Pending{p1, p2} {
		if _, err := p.Wait(t.Context()); err != nil {
			t.Fatal(err)
		}
	}
	mresp := <-migrateDone
	defer mresp.Body.Close()
	if mresp.StatusCode < 500 {
		t.Fatalf("failed migration status = %d, want 5xx", mresp.StatusCode)
	}
	var e api.Error
	if err := json.NewDecoder(mresp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeInternal {
		t.Fatalf("failed migration code = %q, want internal", e.Code)
	}

	// ErrClosed → 410 closed for a queued frame orphaned by DELETE. The
	// worker holds frame A in-step; frame B waits in the queue; DELETE
	// answers B with ErrClosed without stepping it.
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}
	<-st.started
	stepDone := make(chan *http.Response, 1)
	go func() {
		stepDone <- doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+info.ID+"/step", stepBody)
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if stat, err := m.Status(info.ID); err == nil && stat.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued frame never showed up")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := doJSON(t, http.MethodDelete, srv.URL+"/v1/sessions/"+info.ID, nil)
		resp.Body.Close()
	}()
	wantEnvelope(t, <-stepDone, http.StatusGone, api.CodeClosed)
	st.release <- struct{}{} // let the in-step frame finish so DELETE returns
	wg.Wait()

	// ErrClosed → 503 closed for create on a draining manager.
	if err := m.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Robot: "fake"})
	wantEnvelope(t, resp, http.StatusServiceUnavailable, api.CodeClosed)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("closed create response has no Retry-After header")
	}
}

// TestContractMoved pins the tombstone redirect left by a completed
// migration: every route on the old node answers 410 with code moved
// and the target's base URL in the envelope's location.
func TestContractMoved(t *testing.T) {
	_, src := newTestServer(t, Config{Workers: 2})
	_, dst := newTestServer(t, Config{Workers: 2})
	info := createSession(t, src.URL, "khepera")
	frames := kheperaFrames(t, 7, 3)
	for i := range frames {
		resp := doJSON(t, http.MethodPost, src.URL+"/v1/sessions/"+info.ID+"/step", frames[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp := doJSON(t, http.MethodPost, src.URL+"/v1/sessions/"+info.ID+"/migrate",
		api.MigrateRequest{Target: dst.URL})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status = %d", resp.StatusCode)
	}
	var mr api.MigrateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.FramesApplied != len(frames) || mr.Target != dst.URL {
		t.Fatalf("migrate response = %+v", mr)
	}

	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/sessions/" + info.ID},
		{http.MethodPost, "/v1/sessions/" + info.ID + "/step"},
		{http.MethodPost, "/v1/sessions/" + info.ID + "/frames"},
		{http.MethodPost, "/v1/sessions/" + info.ID + "/migrate"},
	} {
		var body any
		switch {
		case strings.HasSuffix(c.path, "/step"):
			body = frames[0]
		case strings.HasSuffix(c.path, "/migrate"):
			body = api.MigrateRequest{Target: dst.URL}
		}
		e := wantEnvelope(t, doJSON(t, c.method, src.URL+c.path, body), http.StatusGone, api.CodeMoved)
		if e.Location != dst.URL {
			t.Fatalf("%s %s: location = %q, want %q", c.method, c.path, e.Location, dst.URL)
		}
	}
}

// TestContractNotReady pins the readiness gate: an unready node answers
// 503 not_ready (with the 1s retry hint) on every /v1 route except the
// internal replication surface, which must stay open so a follower can
// keep syncing while unready.
func TestContractNotReady(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, Build: DefaultBuilder()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(t.Context())
	srv := httptest.NewServer(GatedHandler(m.Handler(), func() bool { return false }))
	defer srv.Close()

	e := wantEnvelope(t, doJSON(t, http.MethodGet, srv.URL+"/v1/sessions", nil),
		http.StatusServiceUnavailable, api.CodeNotReady)
	if e.RetryAfterMs != 1000 {
		t.Fatalf("not_ready retryAfterMs = %d, want 1000", e.RetryAfterMs)
	}
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Robot: "khepera"})
	wantEnvelope(t, resp, http.StatusServiceUnavailable, api.CodeNotReady)

	// The internal surface passes the gate (it fails on its own terms —
	// a garbage import is a 400, not a 503).
	resp = doJSON(t, http.MethodPost, srv.URL+"/v1/internal/sessions/import", api.ImportRequest{Snapshot: []byte("junk")})
	wantEnvelope(t, resp, http.StatusBadRequest, api.CodeBadRequest)
}

// TestContractErrorCodeTable pins errorCode's sentinel→code vocabulary
// exhaustively, including wrapped errors — the single mapping every
// envelope and reply line is built from.
func TestContractErrorCodeTable(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{nil, ""},
		{ErrBackpressure, api.CodeBackpressure},
		{&BackpressureError{SessionID: "s", RetryAfter: time.Millisecond}, api.CodeBackpressure},
		{ErrMoved, api.CodeMoved},
		{&MovedError{SessionID: "s", Target: "http://x"}, api.CodeMoved},
		{ErrMigrating, api.CodeMigrating},
		{ErrSessionNotFound, api.CodeNotFound},
		{ErrClosed, api.CodeClosed},
		{ErrTooManySessions, api.CodeSessionCap},
		{ErrSessionLive, api.CodeSessionLive},
		{ErrDurabilityDisabled, api.CodeDurabilityDisabled},
		{errors.New("anything else"), api.CodeBadRequest},
	}
	for _, c := range cases {
		if got := errorCode(c.err); got != c.code {
			t.Errorf("errorCode(%v) = %q, want %q", c.err, got, c.code)
		}
		if c.err != nil {
			wrapped := fmt.Errorf("outer: %w", c.err)
			if got := errorCode(wrapped); got != c.code {
				t.Errorf("errorCode(wrapped %v) = %q, want %q", c.err, got, c.code)
			}
		}
	}
	// Per-frame replies map unknown errors to internal, not bad_request:
	// the request was fine, the detector failed.
	if got := replyCode(errors.New("detector exploded")); got != api.CodeInternal {
		t.Errorf("replyCode(unknown) = %q, want internal", got)
	}
	if got := replyCode(ErrBackpressure); got != api.CodeBackpressure {
		t.Errorf("replyCode(backpressure) = %q", got)
	}
}
