package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"roboads/internal/mat"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
)

// stepAll steps frames through one fleet session in order, absorbing
// backpressure, and returns the wire view of each report.
func stepAll(t *testing.T, m *Manager, id string, frames []trace.Frame) []WireReport {
	t.Helper()
	out := make([]WireReport, 0, len(frames))
	for _, frame := range frames {
		for {
			rep, err := m.Step(context.Background(), id, mat.Vec(frame.U), frameReadings(&frame))
			if errors.Is(err, ErrBackpressure) {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Fatalf("step k=%d: %v", frame.K, err)
			}
			out = append(out, NewWireReport(rep))
			break
		}
	}
	return out
}

// TestFleetDurableRecoveryMatchesUninterrupted is the recovery
// determinism pin at the manager level: a session stepped partway,
// persisted by shutdown, and recovered by a fresh manager produces —
// over the remaining frames — reports bit-for-bit identical to an
// uninterrupted in-process detector over the whole stream.
func TestFleetDurableRecoveryMatchesUninterrupted(t *testing.T) {
	frames := kheperaFrames(t, 21, 60)
	build := DefaultBuilder()
	want := localReports(t, build, Spec{Robot: "khepera"}, frames)
	cut := len(frames) * 2 / 3
	dir := t.TempDir()

	m1, err := NewManager(Config{
		Workers: 2, Build: build,
		Durability: Durability{Dir: dir, SnapshotEvery: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	info := mustCreate(t, m1, Spec{Robot: "khepera"})
	got := stepAll(t, m1, info.ID, frames[:cut])
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	reg := telemetry.NewRegistry()
	m2, err := NewManager(Config{
		Workers: 2, Build: build, Metrics: reg,
		Durability: Durability{Dir: dir, SnapshotEvery: 16},
	})
	if err != nil {
		t.Fatalf("recovering manager: %v", err)
	}
	defer m2.Shutdown(context.Background())
	if reg.GaugeValue("roboads_store_recovered_sessions") != 1 {
		t.Fatalf("recovery gauge = %g, want 1", reg.GaugeValue("roboads_store_recovered_sessions"))
	}
	ri, err := m2.Info(info.ID)
	if err != nil {
		t.Fatalf("recovered session not live: %v", err)
	}
	if ri.Robot != "khepera" || !reflect.DeepEqual(ri.Sensors, info.Sensors) {
		t.Fatalf("recovered identity changed: %+v", ri)
	}
	got = append(got, stepAll(t, m2, info.ID, frames[cut:])...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered report stream diverged from uninterrupted reference")
	}

	// A fresh session created after recovery must not collide with the
	// recovered ID.
	fresh := mustCreate(t, m2, Spec{Robot: "khepera"})
	if fresh.ID == info.ID {
		t.Fatalf("recovered and fresh sessions share ID %s", fresh.ID)
	}
}

// TestFleetRecoveryReplaysTornWAL simulates the crash artifact directly:
// the manager is abandoned without shutdown (as kill -9 would) and the
// WAL's final record torn mid-line. Recovery must resume at the last
// complete frame, and resubmitting from there reproduces the reference
// stream exactly.
func TestFleetRecoveryReplaysTornWAL(t *testing.T) {
	frames := kheperaFrames(t, 22, 50)
	build := DefaultBuilder()
	want := localReports(t, build, Spec{Robot: "khepera"}, frames)
	dir := t.TempDir()

	m1, err := NewManager(Config{
		Workers: 1, Build: build,
		Durability: Durability{Dir: dir, SnapshotEvery: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	info := mustCreate(t, m1, Spec{Robot: "khepera"})
	const applied = 38 // snapshot-32 + WAL records 33..38
	stepAll(t, m1, info.ID, frames[:applied])
	// No shutdown: m1 is simply abandoned, like a killed process. Its
	// WAL is complete on disk (FsyncEvery defaults to 1); tear the last
	// record by hand to model a crash mid-append.
	walPath := filepath.Join(dir, info.ID, "wal-32.ndjson")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-13], 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(Config{
		Workers: 1, Build: build,
		Durability: Durability{Dir: dir, SnapshotEvery: 16},
	})
	if err != nil {
		t.Fatalf("recovering manager: %v", err)
	}
	defer m2.Shutdown(context.Background())
	// Frame 38 was torn, so recovery holds 37 applied frames; the
	// client resubmits from frame index 37 and the stream must continue
	// bit-for-bit.
	got := stepAll(t, m2, info.ID, frames[applied-1:])
	if !reflect.DeepEqual(got, want[applied-1:]) {
		t.Fatalf("post-tear report stream diverged from reference")
	}
}

// TestFleetEvictionPersistsAndRestores pins the eviction/restore
// contract: an idle-evicted durable session keeps its on-disk state,
// and Restore revives it under its original ID with the report stream
// continuing exactly where it stopped.
func TestFleetEvictionPersistsAndRestores(t *testing.T) {
	frames := kheperaFrames(t, 23, 40)
	build := DefaultBuilder()
	want := localReports(t, build, Spec{Robot: "khepera"}, frames)
	dir := t.TempDir()

	m, err := NewManager(Config{
		Workers: 1, IdleTimeout: time.Hour, Build: build,
		Durability: Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	clock := time.Now()
	m.now = func() time.Time { return clock }

	info := mustCreate(t, m, Spec{Robot: "khepera"})
	got := stepAll(t, m, info.ID, frames[:25])

	clock = clock.Add(2 * time.Hour)
	m.evictIdle()
	if _, err := m.Info(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("evicted session Info = %v, want ErrSessionNotFound", err)
	}

	ri, err := m.Restore(info.ID)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if ri.ID != info.ID {
		t.Fatalf("restored under %s, want %s", ri.ID, info.ID)
	}
	got = append(got, stepAll(t, m, info.ID, frames[25:])...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored report stream diverged from reference")
	}

	// Restoring a live session is refused.
	if _, err := m.Restore(info.ID); !errors.Is(err, ErrSessionLive) {
		t.Fatalf("restore of live session = %v, want ErrSessionLive", err)
	}
	// Explicit deletion purges state: nothing left to restore.
	if err := m.Close(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("restore after delete = %v, want ErrSessionNotFound", err)
	}
}

// TestFleetCheckpointEvictionRace is the regression test for the
// janitor-vs-checkpoint race: concurrent Checkpoint, eviction, Close,
// and Restore on the same session must never evict or double-close the
// session mid-serialization. Run under -race; correctness here is "no
// race, no panic, and every call returns a defined error".
func TestFleetCheckpointEvictionRace(t *testing.T) {
	build := DefaultBuilder()
	m, err := NewManager(Config{
		Workers: 2, IdleTimeout: time.Hour, Build: build,
		Durability: Durability{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	var clockMu sync.Mutex
	clock := time.Now()
	m.now = func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock }

	info := mustCreate(t, m, Spec{Robot: "khepera"})
	id := info.ID
	frames := kheperaFrames(t, 24, 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	defined := func(err error) bool {
		return err == nil ||
			errors.Is(err, ErrSessionNotFound) ||
			errors.Is(err, ErrClosed) ||
			errors.Is(err, ErrSessionLive) ||
			errors.Is(err, ErrBackpressure)
	}
	wg.Add(4)
	go func() { // checkpoint hammer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Checkpoint(id); !defined(err) {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() { // janitor, fast-forwarded
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clockMu.Lock()
			clock = clock.Add(2 * time.Hour)
			clockMu.Unlock()
			m.evictIdle()
		}
	}()
	go func() { // restorer keeps bringing the session back
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Restore(id); !defined(err) {
				t.Errorf("restore: %v", err)
				return
			}
		}
	}()
	go func() { // traffic keeps the detector state moving
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			frame := frames[i%len(frames)]
			i++
			_, err := m.Step(context.Background(), id, mat.Vec(frame.U), frameReadings(&frame))
			if !defined(err) {
				t.Errorf("step: %v", err)
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestFleetDurabilityRequiresStateStepper pins the Create-time check:
// a durable manager refuses a Builder whose stepper cannot export state.
func TestFleetDurabilityRequiresStateStepper(t *testing.T) {
	st := newScriptedStepper()
	m, err := NewManager(Config{
		Workers: 1, Build: scriptedBuilder(st),
		Durability: Durability{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	if _, err := m.Create(Spec{Robot: "fake"}); err == nil {
		t.Fatal("durable Create with a stateless stepper succeeded")
	}
	if st.closes.Load() != 1 {
		t.Fatalf("rejected stepper closed %d times, want 1", st.closes.Load())
	}
}

// TestFleetDurabilityDisabledErrors pins the sentinels on a manager
// running without a state directory.
func TestFleetDurabilityDisabledErrors(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, Build: DefaultBuilder()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	info := mustCreate(t, m, Spec{Robot: "khepera"})
	if _, err := m.Checkpoint(info.ID); !errors.Is(err, ErrDurabilityDisabled) {
		t.Fatalf("checkpoint = %v, want ErrDurabilityDisabled", err)
	}
	if _, err := m.Restore("s-000099"); !errors.Is(err, ErrDurabilityDisabled) {
		t.Fatalf("restore = %v, want ErrDurabilityDisabled", err)
	}
}

// TestFleetCheckpointManual pins Manager.Checkpoint: it compacts the
// session to a fresh snapshot (empty WAL) and reports the frame count.
func TestFleetCheckpointManual(t *testing.T) {
	frames := kheperaFrames(t, 25, 20)
	build := DefaultBuilder()
	dir := t.TempDir()
	m, err := NewManager(Config{
		Workers: 1, Build: build,
		Durability: Durability{Dir: dir, SnapshotEvery: -1}, // manual only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	info := mustCreate(t, m, Spec{Robot: "khepera"})
	stepAll(t, m, info.ID, frames)
	ci, err := m.Checkpoint(info.ID)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ci.SessionID != info.ID || ci.FramesApplied != len(frames) || ci.SnapshotBytes <= 0 {
		t.Fatalf("checkpoint info %+v", ci)
	}
	// The snapshot file for exactly this frame count exists and the old
	// generation was compacted away.
	if _, err := os.Stat(filepath.Join(dir, info.ID, "snapshot-20")); err != nil {
		t.Fatalf("snapshot-20 missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID, "snapshot-0")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot-0 survived compaction: %v", err)
	}
}
