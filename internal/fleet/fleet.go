// Package fleet hosts many concurrent RoboADS detectors behind one
// session manager — the §II-A deployment where the monitor runs remotely
// from its robots, serving a whole fleet from one process. Each session
// owns a private detector pipeline; frames submitted to a session are
// queued in a bounded per-session buffer and stepped in order by a fixed
// pool of shard workers, one frame per scheduling quantum, so a noisy
// session cannot starve the rest. A full queue rejects the frame with an
// explicit retry hint (ErrBackpressure) rather than buffering without
// bound; idle sessions are evicted; shutdown drains every accepted frame
// before closing a single detector.
//
// Determinism carries over from the engine: a session's report stream is
// bit-for-bit the stream an in-process Detector would produce for the
// same frames, regardless of how many sessions share the shard pool,
// because each session's frames are serialized and detectors share no
// state.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/store"
	"roboads/internal/telemetry"
)

// Metric names registered by a Manager (nil-safe: a private registry is
// created when Config.Metrics is nil, so the names only surface when the
// caller wires a shared registry, e.g. `roboads serve`).
const (
	// MetricSessionsLive gauges the number of live sessions.
	MetricSessionsLive = "roboads_fleet_sessions_live"
	// MetricQueueDepth gauges the total frames queued across sessions.
	MetricQueueDepth = "roboads_fleet_queue_depth"
	// MetricSessionsOpened counts sessions ever created.
	MetricSessionsOpened = "roboads_fleet_sessions_opened_total"
	// MetricEvictions counts idle-evicted sessions.
	MetricEvictions = "roboads_fleet_evictions_total"
	// MetricRejectedFrames counts frames rejected with backpressure.
	MetricRejectedFrames = "roboads_fleet_rejected_frames_total"
	// MetricRejects is the cause-labeled reject family
	// (roboads_fleet_rejects_total{cause="..."}): queue_full counts
	// frames bounced off a full session queue (the same events as
	// MetricRejectedFrames, kept for compat), session_closed counts
	// frames aimed at a closing session, shutting_down counts frames
	// refused because the manager is draining, and session_cap counts
	// Create calls refused at MaxSessions.
	MetricRejects = "roboads_fleet_rejects_total"
	// RejectCauseQueueFull .. RejectCauseMigrating are the cause label
	// values of MetricRejects. migrating counts frames bounced off a
	// session that is draining for live migration.
	RejectCauseQueueFull     = "queue_full"
	RejectCauseSessionClosed = "session_closed"
	RejectCauseShuttingDown  = "shutting_down"
	RejectCauseSessionCap    = "session_cap"
	RejectCauseMigrating     = "migrating"
	// MetricFrames counts frames stepped through a detector.
	MetricFrames = "roboads_fleet_frames_total"
	// MetricFrameErrors counts frames whose detector step failed.
	MetricFrameErrors = "roboads_fleet_frame_errors_total"
	// MetricStepSeconds is the per-frame detector step latency histogram.
	MetricStepSeconds = "roboads_fleet_frame_step_seconds"
)

// Stepper is the per-session detector contract: exactly the stepping
// surface of *detect.Detector, abstracted so tests can inject slow or
// failing pipelines. The Manager serializes all Stepper use per session.
type Stepper interface {
	StepContext(ctx context.Context, u mat.Vec, readings map[string]mat.Vec) (*detect.Report, error)
	Close()
}

// Spec describes the session a client wants: which robot profile to
// host and, optionally, how wide that session's own mode bank fans out.
type Spec struct {
	// Robot names the platform profile ("khepera", "tamiya").
	Robot string `json:"robot"`
	// Workers overrides the session engine's mode-bank worker count.
	// 0 keeps the builder's default (sequential — fleet concurrency
	// comes from the shard pool, not from intra-session fan-out).
	// Mode-bank output is bit-for-bit independent of this knob.
	Workers int `json:"workers,omitempty"`
	// ID optionally proposes the session identifier (the router places
	// sessions by consistent hash of the ID, so it names them up front).
	// Empty lets the manager assign "s-NNNNNN". A proposed ID that is
	// already live fails with ErrSessionLive.
	ID string `json:"id,omitempty"`
}

// SessionInfo and SessionStatus are defined in internal/api (aliased in
// wire.go): they are wire structs shared with the router and the typed
// client.

// Builder constructs the detector pipeline behind one session. The
// returned SessionInfo needs Robot/Sensors/Dt only; the manager assigns
// the ID.
type Builder func(spec Spec) (Stepper, SessionInfo, error)

// Config parameterizes a Manager. The zero value of every field has a
// usable default except Build, which is required.
type Config struct {
	// Workers is the shard worker count — the number of frames the
	// whole fleet steps concurrently. 0 resolves to GOMAXPROCS.
	Workers int
	// QueueDepth bounds each session's frame backlog; a frame arriving
	// at a full queue is rejected with ErrBackpressure. Default 32.
	QueueDepth int
	// MaxBatch caps the frames one batch submission may carry — a batch
	// is one queue admission and one scheduling quantum, so the cap
	// bounds how long a deep batch can hold a shard worker. Default 64.
	MaxBatch int
	// MaxSessions caps live sessions; Create beyond it returns
	// ErrTooManySessions. Default 1024.
	MaxSessions int
	// Batching sets the frame-coalescing width: a shard worker serving a
	// session additionally drains up to Batching−1 other runnable
	// sessions with the same batch fingerprint (detect.Detector.BatchKey)
	// from the run queue and steps their frames in lockstep through one
	// blocked detect.DetectorBatch pass. Per-session report streams are
	// bit-for-bit unchanged — batching is purely a throughput knob.
	// 0 or 1 disables coalescing (the default); sessions whose steppers
	// are not *detect.Detector, or whose profiles differ, always take the
	// scalar path.
	Batching int
	// IdleTimeout evicts sessions with no frame activity for this long.
	// 0 disables eviction.
	IdleTimeout time.Duration
	// RetryAfter is the hint carried by BackpressureError. Default 25ms.
	RetryAfter time.Duration
	// Build constructs each session's pipeline. Required.
	Build Builder
	// Metrics receives the fleet gauges and counters; nil uses a
	// private registry (metrics still maintained, just not exported).
	Metrics *telemetry.Registry
	// Trace, when non-nil, enables frame-lifecycle tracing: spans
	// arriving on BatchFrame.Span get queue-wait, coalesce, step, WAL,
	// and fsync laps as the frame moves through the shard pool. Nil
	// (the default) disables tracing; the frame hot path then performs
	// no span work at all — no clock reads, no allocations.
	Trace *telemetry.Tracer
	// Durability, when its Dir is set, persists every session (snapshot
	// + frame WAL) and recovers persisted sessions at startup. The zero
	// value disables persistence; the frame hot path is then untouched.
	Durability Durability
	// AckPolicy chooses the durability bar a frame must clear before its
	// reply: AckPrimary (the default) replies after the local WAL
	// fsync/commit barrier; AckFollower additionally waits for a
	// connected follower's replication ack (its own group-commit fsync),
	// so a SIGKILL of this node loses zero acked frames. Requires
	// durability; ignored without it.
	AckPolicy string
	// AckTimeout bounds the AckFollower wait; a frame whose follower ack
	// does not arrive in time is answered with an error (it is NOT
	// acked, so the at-most-acked-loss contract holds). Default 5s.
	AckTimeout time.Duration
}

// AckPolicy values.
const (
	// AckPrimary: reply after the local durability barrier.
	AckPrimary = "primary"
	// AckFollower: reply after the follower's replication ack too.
	AckFollower = "follower"
)

// Manager is the fleet session service. All methods are safe for
// concurrent use. Shutdown may be called once; every other method
// returns ErrClosed afterwards.
type Manager struct {
	cfg  Config
	runq chan *session // capacity MaxSessions; ≤1 entry per session, so sends never block
	wg   sync.WaitGroup

	// gate orders frame acceptance against the shutdown state flip:
	// Submit registers the frame in inflight under the read lock, and
	// Shutdown flips state under the write lock, so by the time
	// Shutdown's drain wait starts, every accepted frame is counted.
	gate     sync.RWMutex
	state    atomic.Int32
	inflight sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*session
	// closing marks sessions removed from the map whose teardown (final
	// snapshot, WAL close) is still running; Restore waits on the entry
	// so it never reads or reopens files mid-teardown.
	closing map[string]chan struct{}
	// tombstones maps migrated-away session IDs to the base URL of the
	// node that took them; lookups answer ErrMoved with the target until
	// this node restarts.
	tombstones map[string]string
	nextID     int64

	janitorStop chan struct{}
	janitorDone chan struct{}
	now         func() time.Time

	// store is the durability layer; nil when Config.Durability is off.
	store         *store.Store
	snapshotEvery int
	// repl is the primary-side replication hub (non-nil exactly when
	// durability is on): it wakes the /v1/internal/replicate stream after
	// WAL appends and tracks follower acks for AckFollower waits.
	repl *replHub

	// batches caches one blocked step workspace per batch fingerprint;
	// nil when Config.Batching ≤ 1 (coalescing off).
	batchMu sync.Mutex
	batches map[uint64]*batchSpace

	queued atomic.Int64

	mLive, mQueue                *telemetry.Gauge
	mOpened, mEvicted, mRejected *telemetry.Counter
	mFrames, mErrors             *telemetry.Counter
	mStepSeconds                 *telemetry.Histogram
	// Cause-split reject counters (MetricRejects family).
	mRejQueueFull, mRejSessionClosed *telemetry.Counter
	mRejShuttingDown, mRejSessionCap *telemetry.Counter
	mRejMigrating                    *telemetry.Counter
}

const (
	stateRunning int32 = iota
	stateDraining
	stateClosed
)

// NewManager starts a fleet manager: its shard workers immediately and,
// when Config.IdleTimeout is set, the eviction janitor.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Build == nil {
		return nil, errors.New("fleet: Config.Build is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 25 * time.Millisecond
	}
	switch cfg.AckPolicy {
	case "", AckPrimary, AckFollower:
	default:
		return nil, fmt.Errorf("fleet: unknown AckPolicy %q", cfg.AckPolicy)
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Manager{
		cfg:        cfg,
		runq:       make(chan *session, cfg.MaxSessions),
		sessions:   make(map[string]*session),
		closing:    make(map[string]chan struct{}),
		tombstones: make(map[string]string),
		now:        time.Now,

		mLive:        reg.Gauge(MetricSessionsLive, "Live fleet sessions."),
		mQueue:       reg.Gauge(MetricQueueDepth, "Frames queued across all sessions."),
		mOpened:      reg.Counter(MetricSessionsOpened, "Sessions ever created."),
		mEvicted:     reg.Counter(MetricEvictions, "Sessions evicted for idleness."),
		mRejected:    reg.Counter(MetricRejectedFrames, "Frames rejected with backpressure."),
		mFrames:      reg.Counter(MetricFrames, "Frames stepped through a session detector."),
		mErrors:      reg.Counter(MetricFrameErrors, "Frames whose detector step returned an error."),
		mStepSeconds: reg.Histogram(MetricStepSeconds, "Per-frame detector step latency in seconds.", telemetry.LatencyBuckets()),

		mRejQueueFull:     reg.Counter(MetricRejects+`{cause="`+RejectCauseQueueFull+`"}`, "Rejections by cause."),
		mRejSessionClosed: reg.Counter(MetricRejects+`{cause="`+RejectCauseSessionClosed+`"}`, "Rejections by cause."),
		mRejShuttingDown:  reg.Counter(MetricRejects+`{cause="`+RejectCauseShuttingDown+`"}`, "Rejections by cause."),
		mRejSessionCap:    reg.Counter(MetricRejects+`{cause="`+RejectCauseSessionCap+`"}`, "Rejections by cause."),
		mRejMigrating:     reg.Counter(MetricRejects+`{cause="`+RejectCauseMigrating+`"}`, "Rejections by cause."),
	}
	if cfg.Batching > 1 {
		m.batches = make(map[uint64]*batchSpace)
	}
	if cfg.Durability.Dir != "" {
		m.snapshotEvery = cfg.Durability.SnapshotEvery
		if m.snapshotEvery == 0 {
			m.snapshotEvery = 256
		}
		st, err := store.Open(cfg.Durability.Dir, store.Options{
			FsyncEvery:   cfg.Durability.FsyncEvery,
			CommitWindow: cfg.Durability.CommitWindow,
			Metrics:      reg,
		})
		if err != nil {
			return nil, err
		}
		m.store = st
		m.repl = newReplHub(reg)
		// Recover persisted sessions before any worker or client can
		// observe the manager, so recovered IDs are live from the start
		// and freshly assigned IDs never collide with them.
		if err := m.recoverSessions(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if cfg.IdleTimeout > 0 {
		m.janitorStop = make(chan struct{})
		m.janitorDone = make(chan struct{})
		interval := cfg.IdleTimeout / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		go m.janitor(interval)
	}
	return m, nil
}

// Create builds a new session from spec and returns its identity.
func (m *Manager) Create(spec Spec) (SessionInfo, error) {
	m.gate.RLock()
	running := m.state.Load() == stateRunning
	m.gate.RUnlock()
	if !running {
		return SessionInfo{}, ErrClosed
	}
	// Reserve the slot and the ID before the comparatively slow
	// detector build, so concurrent Creates respect MaxSessions without
	// serializing their builds.
	m.mu.Lock()
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.mRejSessionCap.Inc()
		return SessionInfo{}, ErrTooManySessions
	}
	id := spec.ID
	var closing chan struct{}
	if id != "" {
		if err := validateProposedID(id); err != nil {
			m.mu.Unlock()
			return SessionInfo{}, err
		}
		if _, live := m.sessions[id]; live {
			m.mu.Unlock()
			return SessionInfo{}, fmt.Errorf("%w: %s", ErrSessionLive, id)
		}
		closing = m.closing[id]
		// A fresh create supersedes any old migration redirect.
		delete(m.tombstones, id)
	} else {
		m.nextID++
		id = fmt.Sprintf("s-%06d", m.nextID)
	}
	m.sessions[id] = nil // reserved: counts toward the cap, not yet steppable
	m.mu.Unlock()
	if closing != nil {
		// A prior holder of this ID is mid-teardown; its persisted files
		// must not be touched until the teardown finishes.
		<-closing
	}

	stepper, info, err := m.cfg.Build(spec)
	if err != nil {
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		return SessionInfo{}, err
	}
	info.ID = id
	s := &session{info: info, spec: spec, stepper: stepper, frames: make(chan frameJob, m.cfg.QueueDepth)}
	if m.store != nil {
		// The initial snapshot becomes durable before the session is
		// visible: once Create returns, a crash recovers the session.
		ds, err := m.initDurable(id, spec, stepper, info)
		if err != nil {
			m.mu.Lock()
			delete(m.sessions, id)
			m.mu.Unlock()
			stepper.Close()
			return SessionInfo{}, err
		}
		s.ds = ds
	}
	s.touch(m.now())

	m.mu.Lock()
	if m.state.Load() != stateRunning {
		// Shutdown won the race while the detector was building; it has
		// already collected the session map, so close this one here.
		delete(m.sessions, id)
		m.mu.Unlock()
		if s.ds != nil {
			s.ds.Close()
		}
		stepper.Close()
		return SessionInfo{}, ErrClosed
	}
	m.sessions[id] = s
	live := len(m.sessions)
	m.mu.Unlock()
	m.mOpened.Inc()
	m.mLive.Set(float64(live))
	return info, nil
}

// Info returns the identity of a live session.
func (m *Manager) Info(id string) (SessionInfo, error) {
	s, err := m.lookup(id)
	if err != nil {
		return SessionInfo{}, err
	}
	return s.info, nil
}

// Sessions lists live sessions with their queue occupancy, sorted by ID.
func (m *Manager) Sessions() []SessionStatus {
	now := m.now()
	m.mu.Lock()
	out := make([]SessionStatus, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s == nil {
			continue
		}
		out = append(out, SessionStatus{
			SessionInfo:   s.info,
			QueueDepth:    len(s.frames),
			IdleSeconds:   now.Sub(time.Unix(0, s.lastActive.Load())).Seconds(),
			FramesApplied: int(s.applied.Load()),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status reports one live session's occupancy. A migrated session
// answers ErrMoved (as a *MovedError carrying the target node).
func (m *Manager) Status(id string) (SessionStatus, error) {
	s, err := m.lookup(id)
	if err != nil {
		return SessionStatus{}, err
	}
	return SessionStatus{
		SessionInfo:   s.info,
		QueueDepth:    len(s.frames),
		IdleSeconds:   m.now().Sub(time.Unix(0, s.lastActive.Load())).Seconds(),
		FramesApplied: int(s.applied.Load()),
	}, nil
}

// Ready reports whether the manager accepts work (recovery done, not
// draining). The /readyz endpoint composes this with the serve-level
// readiness gate.
func (m *Manager) Ready() bool {
	return m.state.Load() == stateRunning
}

// Submit queues one frame on a session without waiting for its report.
// On success the frame is accepted: it will be stepped (or, if the
// session or manager closes first, answered with ErrClosed) and the
// returned Pending resolves exactly once. On failure the frame was not
// accepted; ErrBackpressure means the queue was full and the caller
// should retry after the hinted delay.
func (m *Manager) Submit(id string, u mat.Vec, readings map[string]mat.Vec) (*Pending, error) {
	b, err := m.SubmitBatch(id, []BatchFrame{{U: u, Readings: readings}})
	if err != nil {
		return nil, err
	}
	return &Pending{b: b}, nil
}

// SubmitBatch queues up to Config.MaxBatch frames on a session as one
// unit: one queue admission, one scheduling quantum, one reply. The
// frames step strictly in order and each gets its own FrameResult, so
// the report stream is bit-for-bit what len(frames) sequential Submit
// calls would produce. Acceptance is all-or-nothing: on any error
// (including ErrBackpressure for a full queue) no frame of the batch
// was accepted. With durability enabled, the batch is acknowledged only
// after the WAL write covering every appended frame — and, under group
// commit, the group fsync covering them — completes.
func (m *Manager) SubmitBatch(id string, frames []BatchFrame) (*PendingBatch, error) {
	if len(frames) == 0 {
		return nil, errors.New("fleet: empty batch")
	}
	if len(frames) > m.cfg.MaxBatch {
		return nil, fmt.Errorf("fleet: batch of %d frames exceeds MaxBatch %d", len(frames), m.cfg.MaxBatch)
	}
	m.gate.RLock()
	if m.state.Load() != stateRunning {
		m.gate.RUnlock()
		m.mRejShuttingDown.Add(int64(len(frames)))
		return nil, ErrClosed
	}
	s, err := m.lookup(id)
	if err != nil {
		m.gate.RUnlock()
		return nil, err
	}
	job := frameJob{frames: frames, reply: make(chan []FrameResult, 1)}
	m.inflight.Add(1)
	m.gate.RUnlock()

	if err := s.push(job, m.cfg.RetryAfter); err != nil {
		m.inflight.Done()
		if errors.Is(err, ErrBackpressure) {
			m.mRejected.Add(int64(len(frames)))
			m.mRejQueueFull.Add(int64(len(frames)))
		} else if errors.Is(err, ErrClosed) {
			m.mRejSessionClosed.Add(int64(len(frames)))
		} else if errors.Is(err, ErrMigrating) {
			m.mRejMigrating.Add(int64(len(frames)))
		}
		return nil, err
	}
	if m.cfg.Trace != nil {
		// The admit lap closes here — it absorbs submit-path work and,
		// on the streaming path, any backpressure-retry wait the caller
		// spent between decode and this successful push.
		for i := range frames {
			frames[i].Span.Lap(telemetry.StageAdmit)
		}
	}
	s.touch(m.now())
	m.mQueue.Set(float64(m.queued.Add(int64(len(frames)))))
	m.schedule(s)
	return &PendingBatch{reply: job.reply, n: len(frames)}, nil
}

// Step submits one frame and waits for its report. A ctx expiry abandons
// the wait only: the frame was accepted and still steps (the session
// stays consistent); its report is discarded.
func (m *Manager) Step(ctx context.Context, id string, u mat.Vec, readings map[string]mat.Vec) (*detect.Report, error) {
	p, err := m.Submit(id, u, readings)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// Close tears one session down. Frames already queued are answered with
// ErrClosed; the frame a shard worker is currently stepping completes
// first.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok || s == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	delete(m.sessions, id)
	ch := m.markClosing(id)
	live := len(m.sessions)
	m.mu.Unlock()
	m.mLive.Set(float64(live))
	// Explicit deletion discards persisted state too: the client said
	// the session is finished, so nothing remains to restore.
	m.closeSession(s, false)
	if m.store != nil {
		m.store.Remove(id)
	}
	m.doneClosing(id, ch)
	return nil
}

// markClosing registers an in-flight teardown for id. Caller holds m.mu.
func (m *Manager) markClosing(id string) chan struct{} {
	ch := make(chan struct{})
	m.closing[id] = ch
	return ch
}

// doneClosing publishes that id's teardown finished.
func (m *Manager) doneClosing(id string, ch chan struct{}) {
	m.mu.Lock()
	delete(m.closing, id)
	m.mu.Unlock()
	close(ch)
}

// Shutdown drains and stops the manager: new sessions and frames are
// rejected with ErrClosed immediately, every already-accepted frame is
// stepped and answered, then all session detectors and shard workers are
// closed. If ctx expires before the drain completes, remaining queued
// frames are answered with ErrClosed instead of being stepped and
// ctx.Err() is returned. Calling Shutdown more than once returns
// ErrClosed.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.gate.Lock()
	flipped := m.state.CompareAndSwap(stateRunning, stateDraining)
	m.gate.Unlock()
	if !flipped {
		return ErrClosed
	}
	if m.janitorStop != nil {
		close(m.janitorStop)
		<-m.janitorDone
	}

	var drainErr error
	drained := make(chan struct{})
	go func() { m.inflight.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}

	m.mu.Lock()
	victims := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			victims = append(victims, s)
		}
	}
	m.sessions = make(map[string]*session)
	m.mu.Unlock()
	for _, s := range victims {
		m.closeSession(s, true)
	}
	// Now finite even on a timed-out drain: queued frames were answered
	// by closeSession, and each worker finishes at most one step.
	m.inflight.Wait()
	m.state.Store(stateClosed)
	close(m.runq)
	m.wg.Wait()
	m.mLive.Set(0)
	return drainErr
}

func (m *Manager) lookup(id string) (*session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	target, moved := m.tombstones[id]
	m.mu.Unlock()
	if s == nil {
		if moved {
			return nil, &MovedError{SessionID: id, Target: target}
		}
		return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	return s, nil
}

// validateProposedID gates client-proposed session IDs to names that
// are safe as state-directory entries and unambiguous in URLs.
func validateProposedID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("fleet: invalid session id %q", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("fleet: invalid session id %q", id)
		}
	}
	if id[0] == '.' {
		return fmt.Errorf("fleet: invalid session id %q", id)
	}
	return nil
}

// schedule puts a session on the run queue unless it is already there.
// The CAS keeps the invariant of at most one queue entry per session,
// which in turn keeps runq (capacity MaxSessions) send-nonblocking.
func (m *Manager) schedule(s *session) {
	if s.scheduled.CompareAndSwap(false, true) {
		m.runq <- s
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for s := range m.runq {
		m.serve(s)
	}
}

// serve steps at most one queued job — a single frame or one bounded
// batch, the scheduling quantum that keeps a deep-backlog session from
// starving the others — then reschedules the session if its queue is
// still non-empty. The Store(false)-then-recheck order closes the
// missed-wakeup race with a concurrent Submit: any push that misses
// this worker's recheck sees scheduled == false and wins the schedule
// CAS itself.
func (m *Manager) serve(s *session) {
	if m.batches != nil {
		m.serveBatched(s)
		return
	}
	if job, ok := m.pop(s); ok {
		m.process(s, job)
	}
	s.scheduled.Store(false)
	if len(s.frames) > 0 {
		m.schedule(s)
	}
}

// pop dequeues the session's next job without blocking, keeping the
// queue-depth gauge in step.
func (m *Manager) pop(s *session) (frameJob, bool) {
	select {
	case job := <-s.frames:
		m.mQueue.Set(float64(m.queued.Add(-int64(len(job.frames)))))
		if m.cfg.Trace != nil {
			for i := range job.frames {
				job.frames[i].Span.Lap(telemetry.StageQueueWait)
			}
		}
		return job, true
	default:
		return frameJob{}, false
	}
}

// process steps one job's frames, in order, through the session
// detector. The steps run under the session's step mutex, which
// Close/Shutdown also take before closing the detector, so a stepper is
// never closed mid-step. Each frame gets its own result (a failed frame
// does not fail its batch neighbors — exactly the sequential-submission
// semantics); the whole job is answered with one reply send after the
// durability barrier covering every appended frame.
func (m *Manager) process(s *session, job frameJob) {
	results := make([]FrameResult, len(job.frames))
	s.stepMu.Lock()
	if s.isClosed() {
		err := fmt.Errorf("%w: session %s", ErrClosed, s.info.ID)
		for i := range results {
			results[i].Err = err
		}
	} else {
		appended := 0
		for i, fr := range job.frames {
			// A frame deep in the job waited for its predecessors since
			// the queue-wait lap; that batch-position wait is the
			// coalesce stage.
			fr.Span.Lap(telemetry.StageCoalesce)
			start := time.Now()
			rep, err := s.stepper.StepContext(context.Background(), fr.U, fr.Readings)
			fr.Span.Lap(telemetry.StageStep)
			m.mFrames.Inc()
			if err == nil && s.ds != nil {
				// Reply-after-fsync ordering: the frame is in the WAL
				// (and, with FsyncEvery ≤ 1, on stable storage) before
				// the client hears success, so a replied frame survives
				// any crash. Under group commit the inline fsync is
				// skipped; the Commit barrier below supplies it.
				if derr := m.logFrame(s, fr, rep); derr != nil {
					rep, err = nil, derr
				} else {
					appended++
					fr.Span.Lap(telemetry.StageWALAppend)
					// An inline fsync (FsyncEvery policy) ran inside the
					// append; reattribute its share so fsync cost never
					// hides in the append stage.
					fr.Span.Shift(telemetry.StageWALAppend, telemetry.StageFsync, s.ds.LastSyncNanos())
				}
			}
			if err != nil {
				m.mErrors.Inc()
			} else {
				s.applied.Add(1)
			}
			m.mStepSeconds.Observe(time.Since(start).Seconds())
			results[i] = FrameResult{Report: rep, Err: err}
		}
		if appended > 0 {
			// Wake the replication stream before the local commit
			// barrier: the follower's fsync overlaps ours.
			m.replNotify()
		}
		if s.ds != nil && appended > 0 {
			if cerr := s.ds.Commit(appended); cerr != nil {
				// The group fsync failed: durability of every frame in
				// the batch is unknown, and a success reply would break
				// the replied ⇒ durable contract.
				cerr = fmt.Errorf("fleet: commit frames: %w", cerr)
				for i := range results {
					if results[i].Err == nil {
						results[i] = FrameResult{Err: cerr}
					}
				}
			} else {
				if m.cfg.Trace != nil {
					// Group-commit window attribution: time between a
					// frame's WAL append and the commit barrier covering
					// it — for early frames of a deep job that includes
					// the batch mates stepped before the shared fsync,
					// which is exactly the latency group commit trades
					// for throughput.
					for i := range job.frames {
						if results[i].Err == nil {
							job.frames[i].Span.Lap(telemetry.StageFsync)
						}
					}
				}
				if m.snapshotEvery > 0 && s.ds.SinceSnapshot() >= m.snapshotEvery {
					// Checkpoint cadence runs after the commit barrier so
					// WAL rotation never discards un-fsynced appends. The
					// frames are already durable; a failed checkpoint only
					// postpones compaction, so it does not fail the batch.
					m.persistSnapshot(s)
				}
				if werr := m.waitFollowerAck(s); werr != nil {
					// AckFollower: the follower never confirmed its own
					// fsync of these frames, so a success reply would
					// overstate durability — fail them like a commit error.
					for i := range results {
						if results[i].Err == nil {
							results[i] = FrameResult{Err: werr}
						}
					}
				}
			}
		}
	}
	s.stepMu.Unlock()
	s.touch(m.now())
	job.reply <- results
	m.inflight.Done()
}

// closeSession marks the session closed (rejecting new pushes), answers
// every queued frame with ErrClosed, and closes the detector once any
// in-flight step (or in-flight Checkpoint — both hold stepMu) finishes.
// With persist, a final snapshot is written first so eviction and
// shutdown leave the session restorable at its exact frame boundary.
func (m *Manager) closeSession(s *session, persist bool) {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	for drained := false; !drained; {
		select {
		case job := <-s.frames:
			m.mQueue.Set(float64(m.queued.Add(-int64(len(job.frames)))))
			results := make([]FrameResult, len(job.frames))
			err := fmt.Errorf("%w: session %s", ErrClosed, s.info.ID)
			for i := range results {
				results[i].Err = err
			}
			job.reply <- results
			m.inflight.Done()
		default:
			drained = true
		}
	}
	s.stepMu.Lock()
	if s.ds != nil {
		if persist && s.ds.SinceSnapshot() > 0 {
			// Best-effort: the WAL already makes every frame durable,
			// so a failed final snapshot only means recovery replays a
			// longer tail.
			m.persistSnapshot(s)
		}
		s.ds.Close()
		s.ds = nil
	}
	s.stepper.Close()
	s.stepMu.Unlock()
}

func (m *Manager) janitor(interval time.Duration) {
	defer close(m.janitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.evictIdle()
		}
	}
}

// evictIdle closes sessions whose last activity predates IdleTimeout.
// Sessions with queued or in-flight frames are never evicted.
func (m *Manager) evictIdle() {
	cutoff := m.now().Add(-m.cfg.IdleTimeout).UnixNano()
	m.mu.Lock()
	var victims []*session
	var chans []chan struct{}
	for id, s := range m.sessions {
		if s == nil {
			continue
		}
		if s.lastActive.Load() <= cutoff && len(s.frames) == 0 && !s.scheduled.Load() {
			delete(m.sessions, id)
			victims = append(victims, s)
			chans = append(chans, m.markClosing(id))
		}
	}
	live := len(m.sessions)
	m.mu.Unlock()
	if len(victims) == 0 {
		return
	}
	for i, s := range victims {
		// Eviction keeps persisted state: the session disappears from
		// the live map (clients see ErrSessionNotFound) but Restore can
		// revive it from its final snapshot.
		m.closeSession(s, true)
		m.doneClosing(s.info.ID, chans[i])
		m.mEvicted.Inc()
	}
	m.mLive.Set(float64(live))
}

// BatchFrame is one frame of a batch submission: the control input and
// the sensor readings for a single detector step.
type BatchFrame struct {
	U        mat.Vec
	Readings map[string]mat.Vec
	// Span, when frame tracing is on, carries the frame's lifecycle
	// record; the shard pool laps queue-wait, coalesce, step, WAL, and
	// fsync stages on it. Nil (the default, and always when
	// Config.Trace is nil) traces nothing. The submitter retains
	// ownership: the fleet never finishes or drops a span.
	Span *telemetry.Span
}

// FrameResult is the outcome of one frame of a batch: a report or an
// error, exactly what the matching sequential Step call would return.
type FrameResult struct {
	Report *detect.Report
	Err    error
}

// Pending is an accepted frame's pending report.
type Pending struct {
	b *PendingBatch
}

// Wait blocks until the frame's report is ready or ctx expires. The
// frame steps either way; expiry only abandons the wait.
func (p *Pending) Wait(ctx context.Context) (*detect.Report, error) {
	res, err := p.b.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res[0].Report, res[0].Err
}

// PendingBatch is an accepted batch's pending results.
type PendingBatch struct {
	reply chan []FrameResult
	n     int
}

// Wait blocks until the batch's results are ready or ctx expires. The
// results slice has one entry per submitted frame, in submission order.
// The frames step either way; expiry only abandons the wait.
func (b *PendingBatch) Wait(ctx context.Context) ([]FrameResult, error) {
	select {
	case res := <-b.reply:
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type frameJob struct {
	frames []BatchFrame
	reply  chan []FrameResult // buffered (cap 1): the worker's reply never blocks on an abandoned waiter
}

// session is one hosted detector. closeMu orders frame pushes against
// the closed flag; stepMu serializes detector use (one shard worker at a
// time, and never concurrently with Stepper.Close).
type session struct {
	info       SessionInfo
	spec       Spec // the build spec, recorded for snapshot identity
	stepper    Stepper
	ds         *store.SessionStore // nil when durability is off; guarded by stepMu
	frames     chan frameJob
	scheduled  atomic.Bool
	lastActive atomic.Int64 // UnixNano of last accepted or finished frame
	// applied counts frames folded into the detector state — the index
	// the next frame continues from. It equals ds.Applied() for durable
	// sessions and is what migration exports at.
	applied atomic.Int64
	// migrating rejects new pushes (ErrMigrating) while the session
	// drains for live migration; cleared if the migration aborts.
	migrating atomic.Bool
	closeMu   sync.RWMutex
	closed    bool
	stepMu    sync.Mutex
}

func (s *session) isClosed() bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	return s.closed
}

func (s *session) touch(t time.Time) { s.lastActive.Store(t.UnixNano()) }

func (s *session) push(job frameJob, retryAfter time.Duration) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return fmt.Errorf("%w: session %s", ErrClosed, s.info.ID)
	}
	if s.migrating.Load() {
		return fmt.Errorf("%w: session %s", ErrMigrating, s.info.ID)
	}
	select {
	case s.frames <- job:
		return nil
	default:
		return &BackpressureError{SessionID: s.info.ID, RetryAfter: retryAfter}
	}
}
