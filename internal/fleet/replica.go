package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"roboads/internal/api"
	"roboads/internal/telemetry"
)

// Primary-side WAL replication: a follower node opens one long-lived
// POST /v1/internal/replicate stream, announcing its per-session durable
// cursors in a hello line; the primary ships snapshot and frame records
// as sessions appear and WALs grow, and reads ack lines (the follower's
// own group-commit fsync confirmations) back off the request body. With
// Config.AckPolicy == AckFollower, a frame's reply additionally waits
// for that ack, so a SIGKILL of the primary loses zero acked frames.

// Replication metric names.
const (
	// MetricReplFollowers gauges connected replication followers (0 or 1;
	// a newer connection supersedes an older one).
	MetricReplFollowers = "roboads_fleet_repl_followers"
	// MetricReplShipped counts frame records shipped to followers.
	MetricReplShipped = "roboads_fleet_repl_shipped_total"
	// MetricReplDegraded counts AckFollower frames acked on local
	// durability alone because no follower was connected.
	MetricReplDegraded = "roboads_fleet_repl_degraded_total"
	// MetricReplAckWait is the AckFollower wait latency histogram.
	MetricReplAckWait = "roboads_fleet_repl_ack_wait_seconds"
)

// replWaiter is one frame batch blocked on a follower ack.
type replWaiter struct {
	session string
	seq     int
	ch      chan struct{}
}

// replHub coordinates the primary side of replication: the shipper
// stream wakes on notify after WAL appends, and AckFollower commits wait
// on acked high-water marks per session.
type replHub struct {
	notify chan struct{} // cap 1: coalesced wakeups for the shipper

	mu        sync.Mutex
	gen       int            // bumped per follower connection; stale streams exit
	connected bool           // a follower stream is currently attached
	acked     map[string]int // per-session highest follower-acked frame seq
	waiters   []replWaiter

	mFollowers *telemetry.Gauge
	mShipped   *telemetry.Counter
	mDegraded  *telemetry.Counter
	mAckWait   *telemetry.Histogram
}

func newReplHub(reg *telemetry.Registry) *replHub {
	return &replHub{
		notify:     make(chan struct{}, 1),
		acked:      make(map[string]int),
		mFollowers: reg.Gauge(MetricReplFollowers, "Connected replication followers."),
		mShipped:   reg.Counter(MetricReplShipped, "Frame records shipped to followers."),
		mDegraded:  reg.Counter(MetricReplDegraded, "AckFollower frames acked without a follower connected."),
		mAckWait:   reg.Histogram(MetricReplAckWait, "AckFollower wait latency in seconds.", telemetry.LatencyBuckets()),
	}
}

// wake nudges the shipper stream; safe from the frame hot path (one
// non-blocking channel send, coalesced).
func (h *replHub) wake() {
	select {
	case h.notify <- struct{}{}:
	default:
	}
}

// connect registers a new follower stream, superseding any previous one,
// and returns the stream's generation token. The ack marks reset: the
// new follower confirms durability from its own cursors forward.
func (h *replHub) connect() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gen++
	h.connected = true
	h.acked = make(map[string]int)
	h.mFollowers.Set(1)
	return h.gen
}

// disconnect retires a follower stream. Stale generations (already
// superseded) are ignored. Waiters are woken so AckFollower commits
// re-check and degrade instead of sitting out their full timeout.
func (h *replHub) disconnect(gen int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if gen != h.gen {
		return
	}
	h.connected = false
	h.mFollowers.Set(0)
	for _, w := range h.waiters {
		close(w.ch)
	}
	h.waiters = nil
}

// current reports whether gen is still the live stream.
func (h *replHub) current(gen int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return gen == h.gen
}

// ack records the follower's durable high-water mark for one session and
// releases every waiter it covers.
func (h *replHub) ack(session string, seq int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if seq <= h.acked[session] {
		return
	}
	h.acked[session] = seq
	kept := h.waiters[:0]
	for _, w := range h.waiters {
		if w.session == session && w.seq <= seq {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	h.waiters = kept
}

// waitAcked blocks until the follower acks session up to seq, the
// follower disconnects (degraded: local durability stands alone, nil),
// or timeout expires (error: the frame must NOT be acked). Called with
// the session's stepMu held — replication progress never needs it.
func (h *replHub) waitAcked(session string, seq int, timeout time.Duration) error {
	h.mu.Lock()
	if !h.connected {
		h.mu.Unlock()
		h.mDegraded.Inc()
		return nil
	}
	if h.acked[session] >= seq {
		h.mu.Unlock()
		return nil
	}
	w := replWaiter{session: session, seq: seq, ch: make(chan struct{})}
	h.waiters = append(h.waiters, w)
	h.mu.Unlock()

	start := time.Now()
	// The commit that precedes this wait flushed the WAL; make sure the
	// shipper is awake to read the tail it is about to confirm.
	h.wake()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ch:
		h.mAckWait.Observe(time.Since(start).Seconds())
		h.mu.Lock()
		connected := h.connected
		acked := h.acked[session] >= seq
		h.mu.Unlock()
		if !acked && !connected {
			h.mDegraded.Inc()
		}
		return nil
	case <-t.C:
		h.mu.Lock()
		kept := h.waiters[:0]
		for _, o := range h.waiters {
			if o.ch != w.ch {
				kept = append(kept, o)
			}
		}
		h.waiters = kept
		h.mu.Unlock()
		return fmt.Errorf("fleet: follower ack timeout after %v (session %s, frame %d)", timeout, session, seq)
	}
}

// replNotify wakes the replication shipper after WAL appends. Called on
// the frame path before the local commit barrier so the follower's fsync
// overlaps the primary's.
func (m *Manager) replNotify() {
	if m.repl != nil {
		m.repl.wake()
	}
}

// waitFollowerAck enforces Config.AckPolicy after a successful local
// commit: under AckFollower it blocks until the connected follower
// confirms its own fsync of every frame this session has appended. The
// caller holds s.stepMu; a non-nil error means the frames must be
// answered as failed (not acked).
func (m *Manager) waitFollowerAck(s *session) error {
	if m.cfg.AckPolicy != AckFollower || m.repl == nil || s.ds == nil {
		return nil
	}
	return m.repl.waitAcked(s.info.ID, s.ds.Applied(), m.cfg.AckTimeout)
}

// handleReplicate serves POST /v1/internal/replicate: the follower's
// hello line opens the stream, ack lines follow on the same request
// body, and the response streams NDJSON ReplRecords until the follower
// drops, a newer follower supersedes this one, or the server stops.
func (m *Manager) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if m.store == nil {
		httpError(w, http.StatusNotImplemented, ErrDurabilityDisabled)
		return
	}
	body := bufio.NewReader(r.Body)
	helloLine, err := body.ReadBytes('\n')
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: replicate hello: %w", err))
		return
	}
	var hello api.ReplHello
	if err := json.Unmarshal(helloLine, &hello); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: replicate hello: %w", err))
		return
	}
	flusher, _ := w.(http.Flusher)
	// Ack lines arrive on the request body for as long as records flow
	// out; without full duplex the HTTP/1 server stops body reads at the
	// first response write and every ack would be lost.
	http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", api.ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)

	gen := m.repl.connect()
	defer m.repl.disconnect(gen)

	// Ack lines ride the request body for the stream's lifetime.
	go func() {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		for sc.Scan() {
			var ack api.ReplAck
			if json.Unmarshal(sc.Bytes(), &ack) == nil && ack.Session != "" {
				m.repl.ack(ack.Session, ack.Seq)
			}
		}
	}()

	enc := json.NewEncoder(w)
	// cursors tracks what this stream has shipped per session (absolute
	// frame seq; missing = nothing). Seeded from the follower's hello so
	// an already-synced follower gets the tail only.
	cursors := make(map[string]int)
	for id, seq := range hello.Cursors {
		cursors[id] = seq
	}
	var lastSessions string
	idle := time.NewTicker(250 * time.Millisecond)
	defer idle.Stop()
	lastSend := time.Now()
	for {
		if !m.repl.current(gen) || m.state.Load() != stateRunning {
			return
		}
		ids, err := m.store.Sessions()
		if err != nil {
			return
		}
		sent := false
		// A changed session listing is shipped first so the follower can
		// prune sessions deleted or migrated away on the primary.
		if key := fmt.Sprint(ids); key != lastSessions {
			if enc.Encode(api.ReplRecord{Type: "sessions", Sessions: ids}) != nil {
				return
			}
			lastSessions = key
			sent = true
		}
		for _, id := range ids {
			cur, known := cursors[id]
			if !known {
				cur = -1
			}
			batch, err := m.store.ReplicaRead(id, cur)
			if err != nil {
				// Mid-create, mid-remove, or torn view: skip this round,
				// the next wakeup sees a settled directory.
				continue
			}
			if batch.Snapshot != nil {
				if enc.Encode(api.ReplRecord{Type: "snapshot", Session: id, Seq: batch.Base, Snapshot: batch.Snapshot}) != nil {
					return
				}
				cursors[id] = batch.Base
				sent = true
			}
			for i, fr := range batch.Frames {
				if enc.Encode(api.ReplRecord{Type: "frame", Session: id, Seq: batch.FirstSeq + i, Frame: fr}) != nil {
					return
				}
				cursors[id] = batch.FirstSeq + i
				m.repl.mShipped.Inc()
				sent = true
			}
		}
		if sent {
			lastSend = time.Now()
		} else if time.Since(lastSend) >= 250*time.Millisecond {
			// Heartbeat: the follower's promotion timer keys off stream
			// records, so an idle primary must still say it is alive.
			if enc.Encode(api.ReplRecord{Type: "ping"}) != nil {
				return
			}
			lastSend = time.Now()
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-m.repl.notify:
		case <-idle.C:
		case <-r.Context().Done():
			return
		}
	}
}
