package fleet

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sim"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
)

// kheperaFrames runs a clean simulated Khepera mission and returns its
// first n monitor-input frames — the same frames `roboads record` would
// write for this seed.
func kheperaFrames(t *testing.T, seed int64, n int) []trace.Frame {
	t.Helper()
	setup, err := sim.NewKhepera(sim.LabMission(), &attack.Scenario{}, seed)
	if err != nil {
		t.Fatalf("khepera setup: %v", err)
	}
	frames := make([]trace.Frame, 0, n)
	for len(frames) < n {
		rec, err := setup.Sim.Step()
		if err != nil {
			break
		}
		frame := trace.Frame{K: rec.K, U: rec.UPlanned, Readings: make(map[string][]float64, len(rec.Readings))}
		for name, z := range rec.Readings {
			frame.Readings[name] = z
		}
		frames = append(frames, frame)
		if rec.Done {
			break
		}
	}
	if len(frames) == 0 {
		t.Fatal("no frames generated")
	}
	return frames
}

// localReports steps frames through an in-process detector built by the
// same Builder the fleet uses, and returns the wire view of each report.
func localReports(t *testing.T, build Builder, spec Spec, frames []trace.Frame) []WireReport {
	t.Helper()
	stepper, _, err := build(spec)
	if err != nil {
		t.Fatalf("build local detector: %v", err)
	}
	defer stepper.Close()
	out := make([]WireReport, 0, len(frames))
	for _, frame := range frames {
		rep, err := stepper.StepContext(context.Background(), mat.Vec(frame.U), frameReadings(&frame))
		if err != nil {
			t.Fatalf("local step k=%d: %v", frame.K, err)
		}
		out = append(out, NewWireReport(rep))
	}
	return out
}

// TestFleetConcurrentSessionsMatchSequential is the determinism
// acceptance test: N sessions stepping interleaved frame streams through
// a shared shard pool produce bit-for-bit the reports of N sequential
// in-process detectors.
func TestFleetConcurrentSessionsMatchSequential(t *testing.T) {
	const sessions = 8
	seeds := []int64{11, 12, 13, 14}
	frameSets := make([][]trace.Frame, len(seeds))
	for i, seed := range seeds {
		frameSets[i] = kheperaFrames(t, seed, 40)
	}
	build := DefaultBuilder()
	want := make([][]WireReport, len(seeds))
	for i := range seeds {
		want[i] = localReports(t, build, Spec{Robot: "khepera"}, frameSets[i])
	}

	m, err := NewManager(Config{Workers: 4, QueueDepth: 4, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())

	var wg sync.WaitGroup
	got := make([][]WireReport, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		info, err := m.Create(Spec{Robot: "khepera"})
		if err != nil {
			t.Fatalf("create session %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			frames := frameSets[i%len(seeds)]
			for _, frame := range frames {
				var rep *detect.Report
				// Absorb backpressure like a well-behaved client.
				for {
					var err error
					rep, err = m.Step(context.Background(), id, mat.Vec(frame.U), frameReadings(&frame))
					if errors.Is(err, ErrBackpressure) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						errs[i] = err
						return
					}
					break
				}
				got[i] = append(got[i], NewWireReport(rep))
			}
		}(i, info.ID)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i%len(seeds)]) {
			t.Fatalf("session %d reports diverged from sequential reference", i)
		}
	}
}

// scriptedStepper is a fake session pipeline whose steps block until
// released, making queue occupancy deterministic in tests.
type scriptedStepper struct {
	started chan struct{} // one receive per step entering
	release chan struct{} // one send per step allowed to finish
	steps   atomic.Int32
	closes  atomic.Int32
}

func newScriptedStepper() *scriptedStepper {
	return &scriptedStepper{started: make(chan struct{}, 64), release: make(chan struct{}, 64)}
}

func (s *scriptedStepper) StepContext(ctx context.Context, u mat.Vec, readings map[string]mat.Vec) (*detect.Report, error) {
	s.started <- struct{}{}
	<-s.release
	s.steps.Add(1)
	return &detect.Report{Decision: &detect.Decision{Iteration: int(s.steps.Load())}}, nil
}

func (s *scriptedStepper) Close() { s.closes.Add(1) }

func scriptedBuilder(st *scriptedStepper) Builder {
	return func(spec Spec) (Stepper, SessionInfo, error) {
		return st, SessionInfo{Robot: spec.Robot, Sensors: []string{"fake"}, Dt: 0.1}, nil
	}
}

func mustCreate(t *testing.T, m *Manager, spec Spec) SessionInfo {
	t.Helper()
	info, err := m.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	return info
}

func submitDummy(t *testing.T, m *Manager, id string) (*Pending, error) {
	t.Helper()
	return m.Submit(id, mat.VecOf(0, 0), map[string]mat.Vec{"fake": mat.VecOf(0)})
}

// TestFleetBackpressure pins the bounded-queue contract: a frame
// arriving at a full session queue is rejected with ErrBackpressure and
// a retry hint, counted, and not silently buffered.
func TestFleetBackpressure(t *testing.T) {
	st := newScriptedStepper()
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 40 * time.Millisecond,
		Build: scriptedBuilder(st), Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := mustCreate(t, m, Spec{Robot: "fake"})

	// Frame 1: picked up by the lone worker, blocks inside the step.
	p1, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-st.started // worker is now mid-step, queue empty

	// Frame 2 occupies the queue's one slot; frame 3 must be rejected.
	p2, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	_, err = submitDummy(t, m, info.ID)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("submit 3 = %v, want ErrBackpressure", err)
	}
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("submit 3 error %T does not unwrap to *BackpressureError", err)
	}
	if bp.SessionID != info.ID || bp.RetryAfter != 40*time.Millisecond {
		t.Fatalf("backpressure hint = %+v", bp)
	}
	if got := reg.CounterValue(MetricRejectedFrames); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := reg.GaugeValue(MetricQueueDepth); got != 1 {
		t.Fatalf("queue depth gauge = %g, want 1", got)
	}

	// Releasing the steps drains both accepted frames.
	st.release <- struct{}{}
	<-st.started
	st.release <- struct{}{}
	for i, p := range []*Pending{p1, p2} {
		if _, err := p.Wait(context.Background()); err != nil {
			t.Fatalf("pending %d: %v", i+1, err)
		}
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := reg.CounterValue(MetricFrames); got != 2 {
		t.Fatalf("frames counter = %d, want 2", got)
	}
}

// TestFleetIdleEviction pins the janitor policy: only sessions that are
// idle past the timeout with nothing queued or running are evicted.
func TestFleetIdleEviction(t *testing.T) {
	st := newScriptedStepper()
	reg := telemetry.NewRegistry()
	// IdleTimeout configured but huge, so the real janitor never fires
	// during the test; the policy is exercised by calling evictIdle with
	// a manual clock.
	m, err := NewManager(Config{
		Workers: 1, QueueDepth: 2, IdleTimeout: time.Hour,
		Build: scriptedBuilder(st), Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())

	clock := time.Now()
	m.now = func() time.Time { return clock }

	idle := mustCreate(t, m, Spec{Robot: "fake"})
	busy := mustCreate(t, m, Spec{Robot: "fake"})
	p, err := submitDummy(t, m, busy.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-st.started // busy session is mid-step

	clock = clock.Add(2 * time.Hour)
	m.evictIdle()

	if _, err := m.Info(idle.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("idle session Info = %v, want ErrSessionNotFound", err)
	}
	if _, err := m.Info(busy.ID); err != nil {
		t.Fatalf("busy session evicted: %v", err)
	}
	if got := reg.CounterValue(MetricEvictions); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := reg.GaugeValue(MetricSessionsLive); got != 1 {
		t.Fatalf("live gauge = %g, want 1", got)
	}

	// Finishing the step re-stamps activity; only a further idle period
	// evicts the now-quiet session.
	st.release <- struct{}{}
	if _, err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.evictIdle()
	if _, err := m.Info(busy.ID); err != nil {
		t.Fatalf("just-active session evicted: %v", err)
	}
	clock = clock.Add(2 * time.Hour)
	m.evictIdle()
	if _, err := m.Info(busy.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("idle session survived: %v", err)
	}
}

// TestFleetCloseAnswersQueuedFrames pins the session-close contract:
// the in-flight frame completes, queued frames are answered with
// ErrClosed, and the detector is closed exactly once.
func TestFleetCloseAnswersQueuedFrames(t *testing.T) {
	st := newScriptedStepper()
	m, err := NewManager(Config{Workers: 1, QueueDepth: 4, Build: scriptedBuilder(st)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	info := mustCreate(t, m, Spec{Robot: "fake"})

	inflight, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-st.started
	queued, err := submitDummy(t, m, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- m.Close(info.ID) }()

	// The queued frame is answered while the in-flight one still runs.
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued frame err = %v, want ErrClosed", err)
	}
	st.release <- struct{}{}
	if _, err := inflight.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight frame err = %v, want nil", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := st.closes.Load(); got != 1 {
		t.Fatalf("stepper closed %d times, want 1", got)
	}
	if err := m.Close(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("second close = %v, want ErrSessionNotFound", err)
	}
	if _, err := submitDummy(t, m, info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("submit after close = %v, want ErrSessionNotFound", err)
	}
}

// TestFleetShutdownDrains pins graceful drain: every frame accepted
// before Shutdown is stepped and answered; everything after is rejected
// with ErrClosed.
func TestFleetShutdownDrains(t *testing.T) {
	st := newScriptedStepper()
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{Workers: 2, QueueDepth: 8, Build: scriptedBuilder(st), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	a := mustCreate(t, m, Spec{Robot: "fake"})
	b := mustCreate(t, m, Spec{Robot: "fake"})

	const perSession = 5
	var pendings []*Pending
	for i := 0; i < perSession; i++ {
		for _, id := range []string{a.ID, b.ID} {
			p, err := submitDummy(t, m, id)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			pendings = append(pendings, p)
		}
	}
	// Let every queued step through.
	for i := 0; i < 2*perSession; i++ {
		st.release <- struct{}{}
	}
	done := make(chan error, 1)
	go func() { done <- m.Shutdown(context.Background()) }()

	for i, p := range pendings {
		if _, err := p.Wait(context.Background()); err != nil {
			t.Fatalf("accepted frame %d lost in drain: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := reg.CounterValue(MetricFrames); got != 2*perSession {
		t.Fatalf("frames stepped = %d, want %d", got, 2*perSession)
	}
	if got := st.closes.Load(); got != 2 {
		t.Fatalf("steppers closed %d times, want 2", got)
	}
	if _, err := m.Create(Spec{Robot: "fake"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after shutdown = %v, want ErrClosed", err)
	}
	if _, err := submitDummy(t, m, a.ID); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown = %v, want ErrClosed", err)
	}
	if err := m.Shutdown(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("second shutdown = %v, want ErrClosed", err)
	}
}

// TestFleetSessionCap pins MaxSessions: creation beyond the cap is
// rejected with ErrTooManySessions until a slot frees up.
func TestFleetSessionCap(t *testing.T) {
	st := newScriptedStepper()
	m, err := NewManager(Config{Workers: 1, MaxSessions: 2, Build: scriptedBuilder(st)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	first := mustCreate(t, m, Spec{Robot: "fake"})
	mustCreate(t, m, Spec{Robot: "fake"})
	if _, err := m.Create(Spec{Robot: "fake"}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("create over cap = %v, want ErrTooManySessions", err)
	}
	if err := m.Close(first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Spec{Robot: "fake"}); err != nil {
		t.Fatalf("create after close = %v, want nil", err)
	}
}

// TestFleetUnknownRobot pins builder errors surfacing through Create
// without leaking the reserved slot.
func TestFleetUnknownRobot(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, MaxSessions: 1, Build: DefaultBuilder()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	if _, err := m.Create(Spec{Robot: "roomba"}); err == nil {
		t.Fatal("create with unknown robot succeeded")
	}
	if _, err := m.Create(Spec{Robot: "khepera"}); err != nil {
		t.Fatalf("slot leaked by failed create: %v", err)
	}
}
