package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"roboads/client"
	"roboads/internal/api"
	"roboads/internal/mat"
	"roboads/internal/trace"
)

// Follower tails a primary node's replication stream into a local
// Manager: snapshots install whole sessions, frame records step through
// the local detectors and WAL (so the follower's durable state tracks
// the primary's bit-for-bit), and each application is acked back after
// the local group-commit fsync — the ack AckFollower primaries wait on.
// When the primary goes silent past PromoteAfter, Run returns nil: the
// follower's Manager holds every acked frame and the caller promotes it
// to serving.
type Follower struct {
	// Manager is the local manager replicated into. It must be durable
	// and should run AckPrimary (its own acks gate nothing downstream).
	Manager *Manager
	// Primary is the primary node's base URL.
	Primary string
	// PromoteAfter is how long the primary may be silent (no records, no
	// pings, no reconnect) before the follower promotes. Default 2s.
	PromoteAfter time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (f *Follower) logf(format string, args ...any) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

// Run replicates until ctx ends (returning ctx.Err()) or the primary is
// presumed dead (returning nil — promote). Reconnects are automatic;
// every reconnect re-announces the follower's durable cursors, so no
// record is ever applied twice and no gap survives.
func (f *Follower) Run(ctx context.Context) error {
	promoteAfter := f.PromoteAfter
	if promoteAfter <= 0 {
		promoteAfter = 2 * time.Second
	}
	// A reconnect attempt that wedges against a half-dead primary (TCP
	// connects, headers never come) must fail within the promotion
	// window, or the silence check below would never run again.
	c := client.New(f.Primary, client.WithHeaderTimeout(promoteAfter))
	lastContact := time.Now()
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(lastContact) > promoteAfter {
			f.logf("follower: primary %s silent for %v, promoting", f.Primary, promoteAfter)
			return nil
		}
		stream, err := c.Replicate(ctx, f.cursors())
		if err != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		lastContact = time.Now()
		err = f.consume(ctx, stream, promoteAfter, &lastContact)
		stream.Close()
		if err != nil && ctx.Err() == nil {
			f.logf("follower: stream from %s ended: %v", f.Primary, err)
		}
	}
}

// cursors reports the follower's durable position per live session —
// the hello of the next replication stream.
func (f *Follower) cursors() map[string]int {
	out := make(map[string]int)
	for _, st := range f.Manager.Sessions() {
		out[st.ID] = st.FramesApplied
	}
	return out
}

// consume applies one stream's records until it breaks or goes silent.
// A nil return means silence (promotion candidate — the caller's timer
// decides); any apply error tears the stream down for a clean reconnect
// from true durable cursors.
func (f *Follower) consume(ctx context.Context, stream *client.ReplStream, promoteAfter time.Duration, lastContact *time.Time) error {
	type recvResult struct {
		rec api.ReplRecord
		err error
	}
	recv := make(chan recvResult, 64)
	go func() {
		for {
			rec, err := stream.Recv()
			recv <- recvResult{rec, err}
			if err != nil {
				return
			}
		}
	}()
	var pending *api.ReplRecord
	for {
		var rec api.ReplRecord
		if pending != nil {
			rec, pending = *pending, nil
		} else {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case r := <-recv:
				if r.err != nil {
					if errors.Is(r.err, io.EOF) {
						return nil
					}
					return r.err
				}
				rec = r.rec
			case <-time.After(promoteAfter):
				return nil
			}
		}
		*lastContact = time.Now()
		switch rec.Type {
		case "ping":
		case "sessions":
			f.prune(rec.Sessions)
		case "snapshot":
			if _, err := f.Manager.replaceSession(rec.Snapshot, nil); err != nil {
				return fmt.Errorf("apply snapshot %s@%d: %w", rec.Session, rec.Seq, err)
			}
			stream.Ack(rec.Session, rec.Seq)
		case "frame":
			// Greedily coalesce already-received frame records of the same
			// session into one batch: one queue admission, one group
			// commit, one ack.
			frames := []*trace.Frame{rec.Frame}
			last := rec.Seq
			var streamErr error
			for len(frames) < f.Manager.cfg.MaxBatch && streamErr == nil {
				var r recvResult
				select {
				case r = <-recv:
				default:
					r.err = errNoBuffered
				}
				if errors.Is(r.err, errNoBuffered) {
					break
				}
				if r.err != nil {
					// Apply what we have, then surface the break below.
					streamErr = r.err
					break
				}
				if r.rec.Type != "frame" || r.rec.Session != rec.Session || r.rec.Seq != last+1 {
					pending = &r.rec
					break
				}
				frames = append(frames, r.rec.Frame)
				last = r.rec.Seq
			}
			if err := f.apply(ctx, rec.Session, frames); err != nil {
				return fmt.Errorf("apply frames %s@%d..%d: %w", rec.Session, rec.Seq, last, err)
			}
			stream.Ack(rec.Session, last)
			if streamErr != nil {
				if errors.Is(streamErr, io.EOF) {
					return nil
				}
				return streamErr
			}
		}
	}
}

var errNoBuffered = errors.New("no buffered record")

// apply steps a run of replicated frames through the local session. The
// batch reply arrives only after the local WAL commit barrier
// (reply-after-fsync), so a sent ack certifies durability. Backpressure
// is waited out — replication must not drop frames.
func (f *Follower) apply(ctx context.Context, id string, frames []*trace.Frame) error {
	batch := make([]BatchFrame, len(frames))
	for i, fr := range frames {
		readings := make(map[string]mat.Vec, len(fr.Readings))
		for name, z := range fr.Readings {
			readings[name] = mat.Vec(z)
		}
		batch[i] = BatchFrame{U: mat.Vec(fr.U), Readings: readings}
	}
	for {
		b, err := f.Manager.SubmitBatch(id, batch)
		if err != nil {
			var bp *BackpressureError
			if errors.As(err, &bp) {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(bp.RetryAfter):
				}
				continue
			}
			return err
		}
		results, err := b.Wait(ctx)
		if err != nil {
			return err
		}
		for i, res := range results {
			if res.Err != nil {
				return fmt.Errorf("frame %d: %w", frames[i].K, res.Err)
			}
		}
		return nil
	}
}

// prune closes local sessions the primary no longer has (deleted or
// migrated away), discarding their local state.
func (f *Follower) prune(primary []string) {
	keep := make(map[string]bool, len(primary))
	for _, id := range primary {
		keep[id] = true
	}
	for _, st := range f.Manager.Sessions() {
		if !keep[st.ID] {
			f.logf("follower: pruning session %s (gone on primary)", st.ID)
			f.Manager.Close(st.ID)
		}
	}
}
