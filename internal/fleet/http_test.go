package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"roboads/internal/mat"
	"roboads/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = DefaultBuilder()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m, srv
}

func createSession(t *testing.T, base, robot string) SessionInfo {
	t.Helper()
	body, _ := json.Marshal(CreateRequest{Robot: robot})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// streamFrames posts frames as one NDJSON body to the streaming ingest
// and decodes the per-frame reply lines.
func streamFrames(t *testing.T, base, id string, frames []trace.Frame) []ReplyLine {
	t.Helper()
	var body strings.Builder
	enc := json.NewEncoder(&body)
	for _, frame := range frames {
		if err := enc.Encode(frame); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/frames", base, id),
		"application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frames status = %d", resp.StatusCode)
	}
	var lines []ReplyLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line ReplyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decode reply line: %v", err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestHTTPSessionLifecycle exercises create → list → step → delete and
// the error statuses around them.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	info := createSession(t, srv.URL, "khepera")
	if info.Robot != "khepera" || len(info.Sensors) == 0 || info.Dt <= 0 {
		t.Fatalf("session info = %+v", info)
	}

	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("session list = %+v", list)
	}

	frame := kheperaFrames(t, 7, 1)[0]
	body, _ := json.Marshal(frame)
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/step", srv.URL, info.ID),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var line ReplyLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || line.Report == nil || line.Error != "" {
		t.Fatalf("step reply status=%d line=%+v", resp.StatusCode, line)
	}
	if line.Report.K != frame.K || len(line.Report.X) == 0 {
		t.Fatalf("step report = %+v", line.Report)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%s", srv.URL, info.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d", resp.StatusCode)
	}

	// Creating an unknown robot is a client error.
	body, _ = json.Marshal(CreateRequest{Robot: "roomba"})
	resp, err = http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown robot status = %d", resp.StatusCode)
	}
}

// TestHTTPStreamingMatchesLocal is the wire-equivalence test: frames
// streamed over HTTP produce reply lines whose reports are bit-for-bit
// the wire view of an in-process detector run on the same frames.
func TestHTTPStreamingMatchesLocal(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	frames := kheperaFrames(t, 21, 40)
	want := localReports(t, DefaultBuilder(), Spec{Robot: "khepera"}, frames)

	info := createSession(t, srv.URL, "khepera")
	lines := streamFrames(t, srv.URL, info.ID, frames)
	if len(lines) != len(frames) {
		t.Fatalf("got %d reply lines for %d frames", len(lines), len(frames))
	}
	got := make([]WireReport, len(lines))
	for i, line := range lines {
		if line.Error != "" || line.Report == nil {
			t.Fatalf("line %d: %+v", i, line)
		}
		got[i] = *line.Report
	}
	// The reference reports crossed encoding/json exactly once too, so
	// round-trip them for a same-representation comparison.
	var wantWire []WireReport
	buf, _ := json.Marshal(want)
	if err := json.Unmarshal(buf, &wantWire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantWire) {
		for i := range got {
			if !reflect.DeepEqual(got[i], wantWire[i]) {
				t.Fatalf("report %d diverged:\nremote %+v\nlocal  %+v", i, got[i], wantWire[i])
			}
		}
		t.Fatal("reports diverged")
	}
}

// streamBinaryFrames posts frames as one binary frame-record body to
// the streaming ingest and decodes the per-frame reply lines.
func streamBinaryFrames(t *testing.T, base, id string, frames []trace.Frame) []ReplyLine {
	t.Helper()
	var body []byte
	for i := range frames {
		body = trace.AppendFrameRecord(body, &frames[i])
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/frames", base, id),
		ContentTypeBinaryFrames, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frames status = %d", resp.StatusCode)
	}
	var lines []ReplyLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line ReplyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decode reply line: %v", err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestHTTPBatchBinaryMatchesPerFrameJSON is the batching determinism
// test: the same frames submitted three ways — one per-frame JSON /step
// request each, one NDJSON /frames body (batched server-side), and one
// binary /frames body — must produce bit-for-bit identical reports.
// Batching and the wire encoding change scheduling and I/O, never what
// is computed.
func TestHTTPBatchBinaryMatchesPerFrameJSON(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, MaxBatch: 7})
	frames := kheperaFrames(t, 33, 40)

	// Reference: per-frame JSON /step (sequential submission).
	stepInfo := createSession(t, srv.URL, "khepera")
	want := make([]WireReport, 0, len(frames))
	for i := range frames {
		body, _ := json.Marshal(frames[i])
		resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/step", srv.URL, stepInfo.ID),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var line ReplyLine
		if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if line.Error != "" || line.Report == nil {
			t.Fatalf("step %d: %+v", i, line)
		}
		want = append(want, *line.Report)
	}

	for name, stream := range map[string]func(*testing.T, string, string, []trace.Frame) []ReplyLine{
		"ndjson-batched": streamFrames,
		"binary-batched": streamBinaryFrames,
	} {
		info := createSession(t, srv.URL, "khepera")
		lines := stream(t, srv.URL, info.ID, frames)
		if len(lines) != len(frames) {
			t.Fatalf("%s: got %d reply lines for %d frames", name, len(lines), len(frames))
		}
		got := make([]WireReport, len(lines))
		for i, line := range lines {
			if line.Error != "" || line.Report == nil {
				t.Fatalf("%s line %d: %+v", name, i, line)
			}
			got[i] = *line.Report
		}
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%s report %d diverged:\nbatched   %+v\nper-frame %+v", name, i, got[i], want[i])
				}
			}
			t.Fatalf("%s reports diverged", name)
		}
	}
}

// TestHTTPStepRetryAfterUnits pins the two backpressure hints a 429
// carries: the Retry-After header only speaks whole seconds, so the
// default 25ms hint ceils to "1" there — clients honoring the header
// wait 40x too long — while the body's retryAfterMs carries the exact
// value. The header stays (generic HTTP clients need something), but
// RetryAfterMs is the one to prefer.
func TestHTTPStepRetryAfterUnits(t *testing.T) {
	st := newScriptedStepper()
	m, srv := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Build: scriptedBuilder(st)})
	info := mustCreate(t, m, Spec{Robot: "fake"})

	// Occupy the worker and fill the one-slot queue.
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}
	<-st.started
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(trace.Frame{K: 9, U: []float64{0}, Readings: map[string][]float64{"fake": {0}}})
	resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/step", srv.URL, info.ID),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var line ReplyLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header = %q, want the coarse whole-second %q", got, "1")
	}
	if line.RetryAfterMs != 25 {
		t.Fatalf("retryAfterMs = %d, want the exact default hint 25", line.RetryAfterMs)
	}

	st.release <- struct{}{}
	st.release <- struct{}{}
}

// TestSubmitBatchRetryingBackpressure drives the streaming endpoint's
// retry loop under sustained backpressure — a one-slot queue, every
// admission contested — and requires every batch to complete. It then
// pins the prompt-bailout contract: a retry loop spinning against a
// full queue must return as soon as its session closes, not keep
// retrying forever.
func TestSubmitBatchRetryingBackpressure(t *testing.T) {
	st := newScriptedStepper()
	m, err := NewManager(Config{Workers: 1, QueueDepth: 1, RetryAfter: time.Millisecond, Build: scriptedBuilder(st)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	info := mustCreate(t, m, Spec{Robot: "fake"})

	// Release every step as it starts: the queue drains, slowly.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-st.started:
				st.release <- struct{}{}
			case <-stop:
				return
			}
		}
	}()

	const writers, batches = 4, 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			frames := []BatchFrame{{U: mat.VecOf(0), Readings: map[string]mat.Vec{"fake": mat.VecOf(0)}}}
			for i := 0; i < batches; i++ {
				results, err := m.submitBatchRetrying(context.Background(), info.ID, frames)
				if err != nil {
					errs[w] = err
					return
				}
				for _, res := range results {
					if res.Err != nil {
						errs[w] = res.Err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d under backpressure: %v", w, err)
		}
	}

	// Prompt bailout: wedge the worker and the queue, start a retry loop,
	// close the session mid-retry.
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}
	<-st.started
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.submitBatchRetrying(context.Background(), info.ID,
			[]BatchFrame{{U: mat.VecOf(0), Readings: map[string]mat.Vec{"fake": mat.VecOf(0)}}})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it enter the retry loop
	go func() {
		// Close drains the queued frame; the in-flight step needs its
		// release to finish.
		st.release <- struct{}{}
		m.Close(info.ID)
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrSessionNotFound) {
			t.Fatalf("retry loop returned %v, want closed/not-found", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop kept spinning after the session closed")
	}
}

// TestHTTPStreamToUnknownSession pins the 404 on a bad stream target.
func TestHTTPStreamToUnknownSession(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/sessions/s-999999/frames", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPSessionCap pins the 503 + Retry-After on the session limit.
func TestHTTPSessionCap(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, MaxSessions: 1})
	createSession(t, srv.URL, "khepera")
	body, _ := json.Marshal(CreateRequest{Robot: "khepera"})
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
}
