package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"roboads/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = DefaultBuilder()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m, srv
}

func createSession(t *testing.T, base, robot string) SessionInfo {
	t.Helper()
	body, _ := json.Marshal(CreateRequest{Robot: robot})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// streamFrames posts frames as one NDJSON body to the streaming ingest
// and decodes the per-frame reply lines.
func streamFrames(t *testing.T, base, id string, frames []trace.Frame) []ReplyLine {
	t.Helper()
	var body strings.Builder
	enc := json.NewEncoder(&body)
	for _, frame := range frames {
		if err := enc.Encode(frame); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/frames", base, id),
		"application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frames status = %d", resp.StatusCode)
	}
	var lines []ReplyLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line ReplyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decode reply line: %v", err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestHTTPSessionLifecycle exercises create → list → step → delete and
// the error statuses around them.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	info := createSession(t, srv.URL, "khepera")
	if info.Robot != "khepera" || len(info.Sensors) == 0 || info.Dt <= 0 {
		t.Fatalf("session info = %+v", info)
	}

	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("session list = %+v", list)
	}

	frame := kheperaFrames(t, 7, 1)[0]
	body, _ := json.Marshal(frame)
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/step", srv.URL, info.ID),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var line ReplyLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || line.Report == nil || line.Error != "" {
		t.Fatalf("step reply status=%d line=%+v", resp.StatusCode, line)
	}
	if line.Report.K != frame.K || len(line.Report.X) == 0 {
		t.Fatalf("step report = %+v", line.Report)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%s", srv.URL, info.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d", resp.StatusCode)
	}

	// Creating an unknown robot is a client error.
	body, _ = json.Marshal(CreateRequest{Robot: "roomba"})
	resp, err = http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown robot status = %d", resp.StatusCode)
	}
}

// TestHTTPStreamingMatchesLocal is the wire-equivalence test: frames
// streamed over HTTP produce reply lines whose reports are bit-for-bit
// the wire view of an in-process detector run on the same frames.
func TestHTTPStreamingMatchesLocal(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	frames := kheperaFrames(t, 21, 40)
	want := localReports(t, DefaultBuilder(), Spec{Robot: "khepera"}, frames)

	info := createSession(t, srv.URL, "khepera")
	lines := streamFrames(t, srv.URL, info.ID, frames)
	if len(lines) != len(frames) {
		t.Fatalf("got %d reply lines for %d frames", len(lines), len(frames))
	}
	got := make([]WireReport, len(lines))
	for i, line := range lines {
		if line.Error != "" || line.Report == nil {
			t.Fatalf("line %d: %+v", i, line)
		}
		got[i] = *line.Report
	}
	// The reference reports crossed encoding/json exactly once too, so
	// round-trip them for a same-representation comparison.
	var wantWire []WireReport
	buf, _ := json.Marshal(want)
	if err := json.Unmarshal(buf, &wantWire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantWire) {
		for i := range got {
			if !reflect.DeepEqual(got[i], wantWire[i]) {
				t.Fatalf("report %d diverged:\nremote %+v\nlocal  %+v", i, got[i], wantWire[i])
			}
		}
		t.Fatal("reports diverged")
	}
}

// TestHTTPStreamToUnknownSession pins the 404 on a bad stream target.
func TestHTTPStreamToUnknownSession(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/sessions/s-999999/frames", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPSessionCap pins the 503 + Retry-After on the session limit.
func TestHTTPSessionCap(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, MaxSessions: 1})
	createSession(t, srv.URL, "khepera")
	body, _ := json.Marshal(CreateRequest{Robot: "khepera"})
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
}
