package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"roboads/client"
	"roboads/internal/api"
	"roboads/internal/store"
	"roboads/internal/trace"
)

// Live session migration: Migrate drains one session, exports its exact
// durable state (the raw on-disk snapshot plus the WAL tail, so the
// target recovers it bit-for-bit through the ordinary recovery path),
// ships it to the target node's import endpoint, and leaves a tombstone
// redirect behind. ImportSession is the receiving side.

// Migrate moves a live session to the node at target (a base URL). The
// session stops accepting frames (ErrMigrating) while it drains; on
// success it is gone from this node and lookups answer ErrMoved with the
// target until this process restarts. On any failure before cutover the
// session resumes serving locally, unharmed.
func (m *Manager) Migrate(ctx context.Context, id, target string) (api.MigrateResponse, error) {
	none := api.MigrateResponse{}
	s, err := m.lookup(id)
	if err != nil {
		return none, err
	}
	if !s.migrating.CompareAndSwap(false, true) {
		return none, fmt.Errorf("%w: session %s", ErrMigrating, id)
	}
	abort := func(err error) (api.MigrateResponse, error) {
		s.migrating.Store(false)
		return none, err
	}

	// Drain: new pushes are already rejected; wait for the queue to empty
	// and the in-flight scheduling quantum to finish.
	for {
		if s.isClosed() {
			return abort(fmt.Errorf("%w: session %s", ErrClosed, id))
		}
		if len(s.frames) == 0 && !s.scheduled.Load() {
			break
		}
		select {
		case <-ctx.Done():
			return abort(ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}

	// stepMu held from export through ship: nothing can advance the
	// session state behind the copy (Checkpoint, eviction, and close all
	// take it too).
	s.stepMu.Lock()
	if s.isClosed() {
		s.stepMu.Unlock()
		return abort(fmt.Errorf("%w: session %s", ErrClosed, id))
	}
	snapshot, frames, applied, err := m.exportSession(s)
	if err != nil {
		s.stepMu.Unlock()
		return abort(fmt.Errorf("fleet: export session %s: %w", id, err))
	}
	if _, err := client.New(target).Import(ctx, snapshot, frames); err != nil {
		s.stepMu.Unlock()
		return abort(fmt.Errorf("fleet: import on %s: %w", target, err))
	}
	s.stepMu.Unlock()

	// Cutover: the target owns the session now. Local state is torn down
	// without a final persist (the authoritative copy just shipped) and
	// the on-disk directory removed; the tombstone redirects stragglers.
	m.mu.Lock()
	delete(m.sessions, id)
	m.tombstones[id] = target
	ch := m.markClosing(id)
	live := len(m.sessions)
	m.mu.Unlock()
	m.mLive.Set(float64(live))
	m.closeSession(s, false)
	if m.store != nil {
		m.store.Remove(id)
	}
	m.doneClosing(id, ch)
	return api.MigrateResponse{SessionID: id, Target: target, FramesApplied: applied}, nil
}

// exportSession captures a drained session's complete state. Durable
// sessions export their raw on-disk snapshot and actual WAL tail — the
// bytes the target materializes verbatim, so its recovery is bit-for-bit
// this node's. Non-durable sessions export a fresh snapshot of the live
// detector state. The caller holds s.stepMu.
func (m *Manager) exportSession(s *session) (snapshot []byte, frames []*trace.Frame, applied int, err error) {
	id := s.info.ID
	if s.ds != nil {
		batch, err := m.store.ReplicaRead(id, -1)
		if err != nil {
			return nil, nil, 0, err
		}
		return batch.Snapshot, batch.Frames, s.ds.Applied(), nil
	}
	ss, ok := s.stepper.(StateStepper)
	if !ok {
		return nil, nil, 0, fmt.Errorf("stepper %T cannot export state", s.stepper)
	}
	snap := &store.Snapshot{
		SessionID:     id,
		Robot:         s.info.Robot,
		Workers:       s.spec.Workers,
		Sensors:       s.info.Sensors,
		Dt:            s.info.Dt,
		FramesApplied: int(s.applied.Load()),
		State:         ss.ExportState(),
	}
	raw, err := store.EncodeSnapshot(snap)
	if err != nil {
		return nil, nil, 0, err
	}
	return raw, nil, snap.FramesApplied, nil
}

// ImportSession installs a shipped session under its recorded ID. On a
// durable node the snapshot and frames are materialized on disk first
// and the session rebuilt through the ordinary recovery path, so the
// import is durable (and bit-for-bit) before it returns; a non-durable
// node rebuilds the detector in memory. A live ID collides with
// ErrSessionLive.
func (m *Manager) ImportSession(snapshot []byte, frames []*trace.Frame) (SessionInfo, error) {
	snap, err := store.DecodeSnapshot(snapshot)
	if err != nil {
		return SessionInfo{}, fmt.Errorf("fleet: import: %w", err)
	}
	id := snap.SessionID
	if err := validateProposedID(id); err != nil {
		return SessionInfo{}, err
	}
	m.gate.RLock()
	running := m.state.Load() == stateRunning
	m.gate.RUnlock()
	if !running {
		return SessionInfo{}, ErrClosed
	}
	m.mu.Lock()
	if _, live := m.sessions[id]; live {
		m.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("%w: %s", ErrSessionLive, id)
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.mRejSessionCap.Inc()
		return SessionInfo{}, ErrTooManySessions
	}
	closing := m.closing[id]
	// The session arriving here supersedes any old redirect away.
	delete(m.tombstones, id)
	m.sessions[id] = nil // reserved
	m.mu.Unlock()
	if closing != nil {
		<-closing
	}

	var s *session
	if m.store != nil {
		err = m.store.Materialize(id, snapshot, frames)
		if err == nil {
			s, _, err = m.rebuildSession(id)
			if err != nil {
				m.store.Remove(id)
			}
		}
		if err != nil {
			err = fmt.Errorf("fleet: import session %s: %w", id, err)
		}
	} else {
		s, err = m.buildFromState(id, snap, frames)
	}
	if err != nil {
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		return SessionInfo{}, err
	}

	m.mu.Lock()
	if m.state.Load() != stateRunning {
		delete(m.sessions, id)
		m.mu.Unlock()
		if s.ds != nil {
			s.ds.Close()
		}
		s.stepper.Close()
		return SessionInfo{}, ErrClosed
	}
	m.sessions[id] = s
	if num, ok := sessionNum(id); ok && num > m.nextID {
		m.nextID = num
	}
	live := len(m.sessions)
	m.mu.Unlock()
	m.mOpened.Inc()
	m.mLive.Set(float64(live))
	return s.info, nil
}

// replaceSession is ImportSession with replace semantics for the
// replication follower: a live local copy of the session is closed
// (local disk state discarded) before the shipped state installs.
func (m *Manager) replaceSession(snapshot []byte, frames []*trace.Frame) (SessionInfo, error) {
	snap, err := store.DecodeSnapshot(snapshot)
	if err != nil {
		return SessionInfo{}, fmt.Errorf("fleet: replace: %w", err)
	}
	if err := m.Close(snap.SessionID); err != nil && !errors.Is(err, ErrSessionNotFound) {
		return SessionInfo{}, err
	}
	return m.ImportSession(snapshot, frames)
}
