package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"roboads/internal/mat"
	"roboads/internal/telemetry"
)

// getTrace fetches and decodes /v1/debug/trace from a fleet server.
func getTrace(t *testing.T, base string) telemetry.TraceSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var snap telemetry.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestTraceThroughFleetHTTP drives real frames through both ingest
// paths of a durable, traced fleet server and pins the span contract
// end to end: every frame is traced, every exemplar's stage laps sum
// exactly to its total, and the expected lifecycle stages appear.
func TestTraceThroughFleetHTTP(t *testing.T) {
	tracer := telemetry.NewTracer(nil)
	_, srv := newTestServer(t, Config{
		Workers:    2,
		Trace:      tracer,
		Durability: Durability{Dir: t.TempDir()},
	})
	info := createSession(t, srv.URL, "khepera")
	frames := kheperaFrames(t, 11, 8)

	// Half over the streaming endpoint, half over per-frame /step.
	lines := streamFrames(t, srv.URL, info.ID, frames[:4])
	if len(lines) != 4 {
		t.Fatalf("%d reply lines, want 4", len(lines))
	}
	for _, frame := range frames[4:] {
		body, _ := json.Marshal(frame)
		resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/step", srv.URL, info.ID),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step status = %d", resp.StatusCode)
		}
	}

	snap := getTrace(t, srv.URL)
	if !snap.Enabled {
		t.Fatal("trace endpoint reports disabled")
	}
	if snap.Frames != int64(len(frames)) {
		t.Fatalf("traced %d frames, want %d", snap.Frames, len(frames))
	}
	for _, stage := range []string{"decode", "admit", "queue_wait", "step", "wal_append", "reply"} {
		if _, ok := snap.Stages[stage]; !ok {
			t.Errorf("stage %q missing from %v", stage, snap.Stages)
		}
	}
	if len(snap.Exemplars) != len(frames) {
		t.Fatalf("%d exemplars, want %d", len(snap.Exemplars), len(frames))
	}
	for _, ex := range snap.Exemplars {
		if ex.Session != info.ID {
			t.Errorf("exemplar session %q, want %q", ex.Session, info.ID)
		}
		var sum int64
		for _, n := range ex.StageNanos {
			sum += n
		}
		if sum != ex.TotalNanos || sum <= 0 {
			t.Errorf("frame %d: stage sum %d != total %d (%v)", ex.K, sum, ex.TotalNanos, ex.StageNanos)
		}
	}
	if snap.StageSumP50Seconds <= 0 {
		t.Error("stage p50 sum is zero")
	}
}

// TestTraceDisabledEndpoint pins that a fleet without tracing still
// serves /v1/debug/trace — as {"enabled": false}, via the nil-receiver
// ServeTrace.
func TestTraceDisabledEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	snap := getTrace(t, srv.URL)
	if snap.Enabled || snap.Frames != 0 {
		t.Fatalf("untraced fleet served %+v", snap)
	}
}

// TestRejectCauseCounters pins the cause-split backpressure counters:
// each refusal path increments its cause, and the pre-split total keeps
// counting queue-full rejects for compatibility.
func TestRejectCauseCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := newScriptedStepper()
	m, err := NewManager(Config{
		Workers: 1, QueueDepth: 1, MaxSessions: 1,
		RetryAfter: time.Millisecond,
		Build:      scriptedBuilder(st), Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := func(cause string) int64 {
		return reg.Counter(MetricRejects+`{cause="`+cause+`"}`, "").Value()
	}
	info := mustCreate(t, m, Spec{Robot: "fake"})

	// Session cap.
	if _, err := m.Create(Spec{Robot: "fake"}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("second create: %v", err)
	}
	if n := counter(RejectCauseSessionCap); n != 1 {
		t.Fatalf("session_cap = %d, want 1", n)
	}

	// Queue full: wedge the worker on the first frame, fill the
	// depth-1 queue with the second, get rejected on the third.
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}
	<-st.started
	if _, err := submitDummy(t, m, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := submitDummy(t, m, info.ID); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overfull queue: %v", err)
	}
	if n := counter(RejectCauseQueueFull); n != 1 {
		t.Fatalf("queue_full = %d, want 1", n)
	}
	if n := reg.Counter(MetricRejectedFrames, "").Value(); n != 1 {
		t.Fatalf("legacy rejected total = %d, want 1", n)
	}
	st.release <- struct{}{}
	st.release <- struct{}{}

	// Shutting down.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = m.SubmitBatch(info.ID, []BatchFrame{
		{U: mat.VecOf(0), Readings: map[string]mat.Vec{"fake": mat.VecOf(0)}},
	})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown submit: %v", err)
	}
	if n := counter(RejectCauseShuttingDown); n != 1 {
		t.Fatalf("shutting_down = %d, want 1", n)
	}
}
