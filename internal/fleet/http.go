package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
)

// Handler returns the fleet's HTTP API:
//
//	POST   /v1/sessions                  create a session (CreateRequest → SessionInfo),
//	                                     or restore a persisted one (CreateRequest.Restore)
//	GET    /v1/sessions                  list sessions ([]SessionStatus)
//	POST   /v1/sessions/{id}/step        step one trace.Frame (→ ReplyLine)
//	POST   /v1/sessions/{id}/frames      stream trace.Frame NDJSON (or binary frame
//	                                     records, Content-Type ContentTypeBinaryFrames)
//	                                     in, ReplyLine NDJSON out, batched greedily
//	POST   /v1/sessions/{id}/checkpoint  snapshot the session now (→ CheckpointInfo)
//	DELETE /v1/sessions/{id}             close a session (and discard its persisted state)
//	GET    /v1/debug/trace               frame-lifecycle trace snapshot (telemetry.TraceSnapshot);
//	                                     {"enabled": false} when Config.Trace is nil
//
// Frames use the trace wire format (trace.Frame, no header line), so a
// recorded trace body replays against a live session verbatim. The
// streaming endpoint steps frames strictly in order, one report line per
// frame, and absorbs backpressure server-side; the single-frame /step
// endpoint surfaces backpressure as 429 with a Retry-After header.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/step", m.handleStep)
	mux.HandleFunc("POST /v1/sessions/{id}/frames", m.handleFrames)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", m.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.handleDelete)
	// ServeTrace and Snapshot are nil-receiver-safe, so a traceless
	// manager still answers (with {"enabled": false}).
	mux.HandleFunc("GET /v1/debug/trace", m.cfg.Trace.ServeTrace)
	return mux
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode create request: %w", err))
		return
	}
	var info SessionInfo
	var err error
	if req.Restore != "" {
		info, err = m.Restore(req.Restore)
	} else {
		info, err = m.Create(Spec{Robot: req.Robot, Workers: req.Workers})
	}
	switch {
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrSessionNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrSessionLive):
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrDurabilityDisabled):
		httpError(w, http.StatusNotImplemented, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(info)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.Sessions())
}

// handleCheckpoint snapshots a live session on demand, rotating its
// WAL. 501 means the server runs without a state directory.
func (m *Manager) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := m.Checkpoint(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrDurabilityDisabled):
		httpError(w, http.StatusNotImplemented, err)
		return
	case errors.Is(err, ErrSessionNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	err := m.Close(r.PathValue("id"))
	if errors.Is(err, ErrSessionNotFound) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStep steps exactly one frame. Backpressure is the caller's to
// handle: a full queue answers 429 with a Retry-After header and the
// frame must be resubmitted.
func (m *Manager) handleStep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	var frame trace.Frame
	if err := json.NewDecoder(r.Body).Decode(&frame); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode frame: %w", err))
		return
	}
	sp := m.cfg.Trace.Begin(id, start)
	sp.SetK(frame.K)
	sp.Lap(telemetry.StageDecode)
	rep, err := m.stepSpanned(r.Context(), id, &frame, &sp)
	defer func() {
		// The span survives exactly when the frame stepped and we hold
		// its reply; the final lap covers encode + write-out.
		sp.Lap(telemetry.StageReply)
		sp.Finish()
	}()
	if err != nil {
		var bp *BackpressureError
		switch {
		case errors.As(err, &bp):
			ms := bp.RetryAfter.Milliseconds()
			// Retry-After only speaks whole seconds, so the hint (default
			// 25ms) ceils to "1" — a coarse fallback for generic HTTP
			// clients. Callers that can parse the body should prefer
			// ReplyLine.RetryAfterMs, which carries the exact hint.
			w.Header().Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ReplyLine{K: frame.K, Error: err.Error(), RetryAfterMs: ms})
		case errors.Is(err, ErrSessionNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusGone, err)
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(ReplyLine{K: frame.K, Error: err.Error()})
		}
		return
	}
	wire := NewWireReport(rep)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ReplyLine{K: wire.K, Report: &wire})
}

// stepSpanned is Step with the frame's span attached. Span ownership
// follows the frame: a rejected frame's span is dropped (rejections
// have no lifecycle to record) and an abandoned wait leaves the span
// with the still-stepping frame — both cases nil *sp so the caller
// cannot touch a span it no longer owns.
func (m *Manager) stepSpanned(ctx context.Context, id string, frame *trace.Frame, sp **telemetry.Span) (*detect.Report, error) {
	b, err := m.SubmitBatch(id, []BatchFrame{{U: mat.Vec(frame.U), Readings: frameReadings(frame), Span: *sp}})
	if err != nil {
		(*sp).Drop()
		*sp = nil
		return nil, err
	}
	res, err := b.Wait(ctx)
	if err != nil {
		*sp = nil
		return nil, err
	}
	return res[0].Report, res[0].Err
}

// handleFrames is the streaming ingest: trace.Frame NDJSON (or, with
// Content-Type ContentTypeBinaryFrames, binary frame records) in, one
// ReplyLine out per frame, flushed once per batch. Frames step strictly
// in submission order and the reply stream is bit-for-bit what
// per-frame /step calls would produce — batching changes when fsyncs
// and flushes happen, never what is computed. Full duplex lets a client
// stream frames and read reports concurrently over HTTP/1.1.
//
// Batching is greedy but never waits for more input: the reader blocks
// for the first frame of a batch, then drains only frames already fully
// buffered (up to Config.MaxBatch). A lockstep client that sends one
// frame and waits for its reply therefore gets batch size 1 and is
// never deadlocked; a pipelining client gets amortized queue admission,
// fsync, and flush for free.
func (m *Manager) handleFrames(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := m.Info(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() // best-effort; serial clients work regardless
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	fbr := &frameBatchReader{
		br:      bufio.NewReaderSize(r.Body, 1<<16),
		binary:  r.Header.Get("Content-Type") == ContentTypeBinaryFrames,
		max:     m.cfg.MaxBatch,
		tr:      m.cfg.Trace,
		session: id,
	}
	enc := json.NewEncoder(w)
	for {
		frames, spans, readErr := fbr.next()
		if len(frames) > 0 {
			batch := make([]BatchFrame, len(frames))
			for i := range frames {
				batch[i] = BatchFrame{U: mat.Vec(frames[i].U), Readings: frameReadings(&frames[i])}
				if spans != nil {
					batch[i].Span = spans[i]
				}
			}
			results, err := m.submitBatchRetrying(r.Context(), id, batch)
			if err != nil {
				// The whole batch failed before stepping (closed session,
				// canceled request): one terminal line, like the
				// sequential path's first failing frame. Span ownership
				// was settled inside submitBatchRetrying.
				enc.Encode(ReplyLine{K: frames[0].K, Error: err.Error(), Closed: errors.Is(err, ErrClosed) || errors.Is(err, ErrSessionNotFound)})
				rc.Flush()
				return
			}
			closed := false
			for i, res := range results {
				line := ReplyLine{K: frames[i].K}
				if res.Err != nil {
					line.Error = res.Err.Error()
					line.Closed = errors.Is(res.Err, ErrClosed) || errors.Is(res.Err, ErrSessionNotFound)
				} else {
					wire := NewWireReport(res.Report)
					line.K = wire.K
					line.Report = &wire
				}
				if encErr := enc.Encode(line); encErr != nil {
					finishSpans(spans) // client went away mid-reply
					return
				}
				closed = closed || line.Closed
			}
			rc.Flush()
			finishSpans(spans)
			if closed {
				return
			}
		}
		if readErr != nil {
			if !errors.Is(readErr, io.EOF) {
				enc.Encode(ReplyLine{Error: "decode frame: " + readErr.Error(), Closed: true})
				rc.Flush()
			}
			return
		}
	}
}

// frameBatchReader reads ingest frames in greedy batches from either
// wire format. next blocks for one frame, then takes whatever is
// already buffered; it never blocks to grow a batch. With tr set, each
// frame also gets a span whose decode lap covers only time spent on
// bytes already received — a lap clock started before a blocking read
// would bill the client's think time to the server.
type frameBatchReader struct {
	br      *bufio.Reader
	binary  bool
	max     int
	tr      *telemetry.Tracer
	session string
}

// next returns the next batch. Frames decoded before a malformed one
// are returned alongside the error so no accepted input is dropped;
// err is io.EOF exactly when the stream ended cleanly. spans is nil
// when tracing is off, else index-aligned with frames.
func (f *frameBatchReader) next() ([]trace.Frame, []*telemetry.Span, error) {
	var frames []trace.Frame
	var spans []*telemetry.Span
	for len(frames) < f.max {
		// Only the first frame of a batch may block on the client.
		if len(frames) > 0 && !f.buffered() {
			break
		}
		var start time.Time
		timed := false
		if f.tr != nil {
			// Anchor before the read only when it cannot block — then
			// the decode lap measures real decode work.
			if timed = len(frames) > 0 || f.buffered(); timed {
				start = time.Now()
			}
		}
		frame, err := f.readFrame()
		if err != nil {
			return frames, spans, err
		}
		if frame == nil {
			continue // blank NDJSON line
		}
		if f.tr != nil {
			if !timed {
				// The read blocked on the wire: start the span now and
				// let its decode stage read ~0 rather than charging the
				// wait to the server.
				start = time.Now()
			}
			sp := f.tr.Begin(f.session, start)
			sp.SetK(frame.K)
			sp.Lap(telemetry.StageDecode)
			spans = append(spans, sp)
		}
		frames = append(frames, *frame)
	}
	return frames, spans, nil
}

// finishSpans closes a batch's spans after its replies are written:
// one reply-stage lap each, then the terminal observe.
func finishSpans(spans []*telemetry.Span) {
	for _, sp := range spans {
		sp.Lap(telemetry.StageReply)
		sp.Finish()
	}
}

// buffered reports whether a complete frame is already in the read
// buffer and can be decoded without touching the connection.
func (f *frameBatchReader) buffered() bool {
	if f.binary {
		return trace.FrameRecordBuffered(f.br)
	}
	n := f.br.Buffered()
	if n == 0 {
		return false
	}
	peek, err := f.br.Peek(n)
	return err == nil && bytes.IndexByte(peek, '\n') >= 0
}

// readFrame decodes one frame, blocking as needed. A nil frame with nil
// error is a blank NDJSON line (skipped by the caller).
func (f *frameBatchReader) readFrame() (*trace.Frame, error) {
	if f.binary {
		return trace.ReadFrameRecord(f.br)
	}
	line, err := f.br.ReadBytes('\n')
	if len(bytes.TrimSpace(line)) == 0 {
		// Blank line, or a clean/torn end of stream.
		if err == nil {
			return nil, nil
		}
		return nil, err
	}
	// An unterminated final line is still one complete frame.
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	var frame trace.Frame
	if jerr := json.Unmarshal(line, &frame); jerr != nil {
		return nil, jerr
	}
	return &frame, nil
}

// submitBatchRetrying submits one batch, absorbing backpressure with
// the hinted delay: the streaming endpoint promises in-order per-frame
// replies, so a full queue (other writers sharing the session) is
// waited out rather than surfaced. One timer is reused across retries —
// a session under sustained backpressure costs a Reset per attempt, not
// a fresh timer allocation — and any non-backpressure error (the
// session closing mid-retry, the request context ending) returns
// immediately.
func (m *Manager) submitBatchRetrying(ctx context.Context, id string, frames []BatchFrame) ([]FrameResult, error) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		b, err := m.SubmitBatch(id, frames)
		if err == nil {
			// On a ctx expiry here the frames (and their spans) are
			// still in flight; the spans are simply never finished.
			return b.Wait(ctx)
		}
		var bp *BackpressureError
		if !errors.As(err, &bp) {
			// Terminal rejection: nothing was accepted, so the spans
			// come back to us — drop them unobserved.
			for i := range frames {
				frames[i].Span.Drop()
			}
			return nil, err
		}
		if timer == nil {
			timer = time.NewTimer(bp.RetryAfter)
		} else {
			timer.Reset(bp.RetryAfter)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

func frameReadings(frame *trace.Frame) map[string]mat.Vec {
	readings := make(map[string]mat.Vec, len(frame.Readings))
	for name, z := range frame.Readings {
		readings[name] = mat.Vec(z)
	}
	return readings
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
