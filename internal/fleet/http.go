package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"roboads/internal/api"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
)

// Handler returns the fleet's HTTP API:
//
//	POST   /v1/sessions                  create a session (CreateRequest → SessionInfo),
//	                                     or restore a persisted one (CreateRequest.Restore)
//	GET    /v1/sessions                  list sessions ([]SessionStatus)
//	GET    /v1/sessions/{id}             one session's status (SessionStatus)
//	POST   /v1/sessions/{id}/step        step one trace.Frame (→ ReplyLine)
//	POST   /v1/sessions/{id}/frames      stream trace.Frame NDJSON (or binary frame
//	                                     records, Content-Type ContentTypeBinaryFrames)
//	                                     in, ReplyLine NDJSON out, batched greedily
//	POST   /v1/sessions/{id}/checkpoint  snapshot the session now (→ CheckpointInfo)
//	POST   /v1/sessions/{id}/migrate     live-migrate the session to another node
//	                                     (MigrateRequest → MigrateResponse)
//	DELETE /v1/sessions/{id}             close a session (and discard its persisted state)
//	GET    /v1/debug/trace               frame-lifecycle trace snapshot (telemetry.TraceSnapshot);
//	                                     {"enabled": false} when Config.Trace is nil
//	POST   /v1/internal/sessions/import  receive a migrating session (ImportRequest)
//	POST   /v1/internal/replicate        full-duplex primary→follower WAL stream
//
// Frames use the trace wire format (trace.Frame, no header line), so a
// recorded trace body replays against a live session verbatim. The
// streaming endpoint steps frames strictly in order, one report line per
// frame, and absorbs backpressure server-side; the single-frame /step
// endpoint surfaces backpressure as 429 with a Retry-After header.
//
// Every non-2xx response body is the machine-readable api.Error
// envelope; the sentinel→status→code mapping is pinned by the API
// contract test.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", m.handleStatus)
	mux.HandleFunc("POST /v1/sessions/{id}/step", m.handleStep)
	mux.HandleFunc("POST /v1/sessions/{id}/frames", m.handleFrames)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", m.handleCheckpoint)
	mux.HandleFunc("POST /v1/sessions/{id}/migrate", m.handleMigrate)
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.handleDelete)
	mux.HandleFunc("POST /v1/internal/sessions/import", m.handleImport)
	mux.HandleFunc("POST /v1/internal/replicate", m.handleReplicate)
	// ServeTrace and Snapshot are nil-receiver-safe, so a traceless
	// manager still answers (with {"enabled": false}).
	mux.HandleFunc("GET /v1/debug/trace", m.cfg.Trace.ServeTrace)
	return mux
}

// GatedHandler wraps a /v1 handler behind a readiness gate: while ready
// returns false, every request except the internal replication/import
// endpoints answers 503 not_ready. A follower serves nothing until it
// promotes; a node that has begun draining stops accepting new work.
func GatedHandler(h http.Handler, ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready() && !strings.HasPrefix(r.URL.Path, "/v1/internal/") {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				api.Error{Message: "fleet: node not ready", Code: api.CodeNotReady, RetryAfterMs: 1000})
			return
		}
		h.ServeHTTP(w, r)
	})
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode create request: %w", err))
		return
	}
	var info SessionInfo
	var err error
	if req.Restore != "" {
		info, err = m.Restore(req.Restore)
	} else {
		info, err = m.Create(Spec{Robot: req.Robot, Workers: req.Workers, ID: req.ID})
	}
	switch {
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrSessionNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrSessionLive):
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrDurabilityDisabled):
		httpError(w, http.StatusNotImplemented, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(info)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.Sessions())
}

// handleStatus answers one session's live status. 410 with code "moved"
// (and a location) means the session migrated to another node.
func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := m.Status(r.PathValue("id"))
	if err != nil {
		httpError(w, lookupStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMigrate drains, exports, and ships one live session to the
// requested target node, leaving a tombstone redirect behind.
func (m *Manager) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req api.MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode migrate request: %w", err))
		return
	}
	if req.Target == "" {
		httpError(w, http.StatusBadRequest, errors.New("migrate: missing target"))
		return
	}
	resp, err := m.Migrate(r.Context(), r.PathValue("id"), req.Target)
	switch {
	case errors.Is(err, ErrSessionNotFound), errors.Is(err, ErrMoved):
		httpError(w, lookupStatus(err), err)
		return
	case errors.Is(err, ErrMigrating):
		// A concurrent migration of the same session is already running.
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		// The export or the ship to the target failed; the session is
		// still live here and still serving.
		httpError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleImport is the receiving half of a live migration: a snapshot
// envelope plus the WAL tail becomes a live session, bit-for-bit equal
// to the exported one.
func (m *Manager) handleImport(w http.ResponseWriter, r *http.Request) {
	var req api.ImportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode import request: %w", err))
		return
	}
	info, err := m.ImportSession(req.Snapshot, req.Frames)
	switch {
	case errors.Is(err, ErrSessionLive):
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleCheckpoint snapshots a live session on demand, rotating its
// WAL. 501 means the server runs without a state directory.
func (m *Manager) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := m.Checkpoint(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrDurabilityDisabled):
		httpError(w, http.StatusNotImplemented, err)
		return
	case errors.Is(err, ErrSessionNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	err := m.Close(r.PathValue("id"))
	if errors.Is(err, ErrSessionNotFound) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStep steps exactly one frame. Backpressure is the caller's to
// handle: a full queue answers 429 with a Retry-After header and the
// frame must be resubmitted.
func (m *Manager) handleStep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	var frame trace.Frame
	if err := json.NewDecoder(r.Body).Decode(&frame); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode frame: %w", err))
		return
	}
	sp := m.cfg.Trace.Begin(id, start)
	sp.SetK(frame.K)
	sp.Lap(telemetry.StageDecode)
	rep, err := m.stepSpanned(r.Context(), id, &frame, &sp)
	defer func() {
		// The span survives exactly when the frame stepped and we hold
		// its reply; the final lap covers encode + write-out.
		sp.Lap(telemetry.StageReply)
		sp.Finish()
	}()
	if err != nil {
		var bp *BackpressureError
		switch {
		case errors.As(err, &bp):
			ms := bp.RetryAfter.Milliseconds()
			// Retry-After only speaks whole seconds, so the hint (default
			// 25ms) ceils to "1" — a coarse fallback for generic HTTP
			// clients. Callers that can parse the body should prefer
			// ReplyLine.RetryAfterMs, which carries the exact hint.
			w.Header().Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ReplyLine{K: frame.K, Error: err.Error(), Code: api.CodeBackpressure, RetryAfterMs: ms})
		case errors.Is(err, ErrSessionNotFound), errors.Is(err, ErrMoved):
			httpError(w, lookupStatus(err), err)
		case errors.Is(err, ErrMigrating):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusGone, err)
		default:
			// A frame-level step error: the request was fine, the
			// detector failed on this frame. 200 with an error line,
			// matching the streaming endpoint's per-frame error replies.
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(ReplyLine{K: frame.K, Error: err.Error(), Code: replyCode(err)})
		}
		return
	}
	wire := NewWireReport(rep)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ReplyLine{K: wire.K, Report: &wire})
}

// stepSpanned is Step with the frame's span attached. Span ownership
// follows the frame: a rejected frame's span is dropped (rejections
// have no lifecycle to record) and an abandoned wait leaves the span
// with the still-stepping frame — both cases nil *sp so the caller
// cannot touch a span it no longer owns.
func (m *Manager) stepSpanned(ctx context.Context, id string, frame *trace.Frame, sp **telemetry.Span) (*detect.Report, error) {
	b, err := m.SubmitBatch(id, []BatchFrame{{U: mat.Vec(frame.U), Readings: frameReadings(frame), Span: *sp}})
	if err != nil {
		(*sp).Drop()
		*sp = nil
		return nil, err
	}
	res, err := b.Wait(ctx)
	if err != nil {
		*sp = nil
		return nil, err
	}
	return res[0].Report, res[0].Err
}

// handleFrames is the streaming ingest: trace.Frame NDJSON (or, with
// Content-Type ContentTypeBinaryFrames, binary frame records) in, one
// ReplyLine out per frame, flushed once per batch. Frames step strictly
// in submission order and the reply stream is bit-for-bit what
// per-frame /step calls would produce — batching changes when fsyncs
// and flushes happen, never what is computed. Full duplex lets a client
// stream frames and read reports concurrently over HTTP/1.1.
//
// Batching is greedy but never waits for more input: the reader blocks
// for the first frame of a batch, then drains only frames already fully
// buffered (up to Config.MaxBatch). A lockstep client that sends one
// frame and waits for its reply therefore gets batch size 1 and is
// never deadlocked; a pipelining client gets amortized queue admission,
// fsync, and flush for free.
func (m *Manager) handleFrames(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := m.Info(id); err != nil {
		httpError(w, lookupStatus(err), err)
		return
	}
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() // best-effort; serial clients work regardless
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	fbr := &frameBatchReader{
		br:      bufio.NewReaderSize(r.Body, 1<<16),
		binary:  r.Header.Get("Content-Type") == ContentTypeBinaryFrames,
		max:     m.cfg.MaxBatch,
		tr:      m.cfg.Trace,
		session: id,
	}
	enc := json.NewEncoder(w)
	for {
		frames, spans, readErr := fbr.next()
		if len(frames) > 0 {
			batch := make([]BatchFrame, len(frames))
			for i := range frames {
				batch[i] = BatchFrame{U: mat.Vec(frames[i].U), Readings: frameReadings(&frames[i])}
				if spans != nil {
					batch[i].Span = spans[i]
				}
			}
			results, err := m.submitBatchRetrying(r.Context(), id, batch)
			if err != nil {
				// The whole batch failed before stepping (closed session,
				// canceled request): one terminal line, like the
				// sequential path's first failing frame. Span ownership
				// was settled inside submitBatchRetrying.
				enc.Encode(ReplyLine{K: frames[0].K, Error: err.Error(), Code: replyCode(err), Closed: terminalErr(err)})
				rc.Flush()
				return
			}
			closed := false
			for i, res := range results {
				line := ReplyLine{K: frames[i].K}
				if res.Err != nil {
					line.Error = res.Err.Error()
					line.Code = replyCode(res.Err)
					line.Closed = terminalErr(res.Err)
				} else {
					wire := NewWireReport(res.Report)
					line.K = wire.K
					line.Report = &wire
				}
				if encErr := enc.Encode(line); encErr != nil {
					finishSpans(spans) // client went away mid-reply
					return
				}
				closed = closed || line.Closed
			}
			rc.Flush()
			finishSpans(spans)
			if closed {
				return
			}
		}
		if readErr != nil {
			if !errors.Is(readErr, io.EOF) {
				enc.Encode(ReplyLine{Error: "decode frame: " + readErr.Error(), Closed: true})
				rc.Flush()
			}
			return
		}
	}
}

// frameBatchReader reads ingest frames in greedy batches from either
// wire format. next blocks for one frame, then takes whatever is
// already buffered; it never blocks to grow a batch. With tr set, each
// frame also gets a span whose decode lap covers only time spent on
// bytes already received — a lap clock started before a blocking read
// would bill the client's think time to the server.
type frameBatchReader struct {
	br      *bufio.Reader
	binary  bool
	max     int
	tr      *telemetry.Tracer
	session string
}

// next returns the next batch. Frames decoded before a malformed one
// are returned alongside the error so no accepted input is dropped;
// err is io.EOF exactly when the stream ended cleanly. spans is nil
// when tracing is off, else index-aligned with frames.
func (f *frameBatchReader) next() ([]trace.Frame, []*telemetry.Span, error) {
	var frames []trace.Frame
	var spans []*telemetry.Span
	for len(frames) < f.max {
		// Only the first frame of a batch may block on the client.
		if len(frames) > 0 && !f.buffered() {
			break
		}
		var start time.Time
		timed := false
		if f.tr != nil {
			// Anchor before the read only when it cannot block — then
			// the decode lap measures real decode work.
			if timed = len(frames) > 0 || f.buffered(); timed {
				start = time.Now()
			}
		}
		frame, err := f.readFrame()
		if err != nil {
			return frames, spans, err
		}
		if frame == nil {
			continue // blank NDJSON line
		}
		if f.tr != nil {
			if !timed {
				// The read blocked on the wire: start the span now and
				// let its decode stage read ~0 rather than charging the
				// wait to the server.
				start = time.Now()
			}
			sp := f.tr.Begin(f.session, start)
			sp.SetK(frame.K)
			sp.Lap(telemetry.StageDecode)
			spans = append(spans, sp)
		}
		frames = append(frames, *frame)
	}
	return frames, spans, nil
}

// finishSpans closes a batch's spans after its replies are written:
// one reply-stage lap each, then the terminal observe.
func finishSpans(spans []*telemetry.Span) {
	for _, sp := range spans {
		sp.Lap(telemetry.StageReply)
		sp.Finish()
	}
}

// buffered reports whether a complete frame is already in the read
// buffer and can be decoded without touching the connection.
func (f *frameBatchReader) buffered() bool {
	if f.binary {
		return trace.FrameRecordBuffered(f.br)
	}
	n := f.br.Buffered()
	if n == 0 {
		return false
	}
	peek, err := f.br.Peek(n)
	return err == nil && bytes.IndexByte(peek, '\n') >= 0
}

// readFrame decodes one frame, blocking as needed. A nil frame with nil
// error is a blank NDJSON line (skipped by the caller).
func (f *frameBatchReader) readFrame() (*trace.Frame, error) {
	if f.binary {
		return trace.ReadFrameRecord(f.br)
	}
	line, err := f.br.ReadBytes('\n')
	if len(bytes.TrimSpace(line)) == 0 {
		// Blank line, or a clean/torn end of stream.
		if err == nil {
			return nil, nil
		}
		return nil, err
	}
	// An unterminated final line is still one complete frame.
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	var frame trace.Frame
	if jerr := json.Unmarshal(line, &frame); jerr != nil {
		return nil, jerr
	}
	return &frame, nil
}

// submitBatchRetrying submits one batch, absorbing backpressure with
// the hinted delay: the streaming endpoint promises in-order per-frame
// replies, so a full queue (other writers sharing the session) is
// waited out rather than surfaced. One timer is reused across retries —
// a session under sustained backpressure costs a Reset per attempt, not
// a fresh timer allocation — and any non-backpressure error (the
// session closing mid-retry, the request context ending) returns
// immediately.
func (m *Manager) submitBatchRetrying(ctx context.Context, id string, frames []BatchFrame) ([]FrameResult, error) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		b, err := m.SubmitBatch(id, frames)
		if err == nil {
			// On a ctx expiry here the frames (and their spans) are
			// still in flight; the spans are simply never finished.
			return b.Wait(ctx)
		}
		var bp *BackpressureError
		if !errors.As(err, &bp) {
			// Terminal rejection: nothing was accepted, so the spans
			// come back to us — drop them unobserved.
			for i := range frames {
				frames[i].Span.Drop()
			}
			return nil, err
		}
		if timer == nil {
			timer = time.NewTimer(bp.RetryAfter)
		} else {
			timer.Reset(bp.RetryAfter)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

func frameReadings(frame *trace.Frame) map[string]mat.Vec {
	readings := make(map[string]mat.Vec, len(frame.Readings))
	for name, z := range frame.Readings {
		readings[name] = mat.Vec(z)
	}
	return readings
}

// errorCode maps a fleet error to its machine-readable api code. The
// vocabulary (and the status each sentinel travels with, per endpoint)
// is pinned by the API contract test; clients dispatch on the code
// instead of string-matching messages.
func errorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBackpressure):
		return api.CodeBackpressure
	case errors.Is(err, ErrMoved):
		return api.CodeMoved
	case errors.Is(err, ErrMigrating):
		return api.CodeMigrating
	case errors.Is(err, ErrSessionNotFound):
		return api.CodeNotFound
	case errors.Is(err, ErrClosed):
		return api.CodeClosed
	case errors.Is(err, ErrTooManySessions):
		return api.CodeSessionCap
	case errors.Is(err, ErrSessionLive):
		return api.CodeSessionLive
	case errors.Is(err, ErrDurabilityDisabled):
		return api.CodeDurabilityDisabled
	default:
		return api.CodeBadRequest
	}
}

// replyCode is errorCode for per-frame ReplyLine errors, where an
// unrecognized error is a detector-side failure, not a bad request.
func replyCode(err error) string {
	if code := errorCode(err); code != api.CodeBadRequest {
		return code
	}
	return api.CodeInternal
}

// terminalErr reports whether a streaming-ingest error ends the session
// from this node's point of view (ReplyLine.Closed).
func terminalErr(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, ErrSessionNotFound) || errors.Is(err, ErrMoved)
}

// lookupStatus is the HTTP status of a failed session lookup: 410 with
// a redirect envelope when the session migrated away, else 404.
func lookupStatus(err error) int {
	if errors.Is(err, ErrMoved) {
		return http.StatusGone
	}
	return http.StatusNotFound
}

// envelope renders err as the shared machine-readable error envelope,
// attaching the retry hint (backpressure, migrating) and the redirect
// location (moved) when the concrete error carries one.
func envelope(err error) api.Error {
	e := api.Error{Message: err.Error(), Code: errorCode(err)}
	var bp *BackpressureError
	if errors.As(err, &bp) {
		e.RetryAfterMs = bp.RetryAfter.Milliseconds()
	}
	if e.Code == api.CodeMigrating {
		// The drain+export+ship of a small session takes milliseconds;
		// a retrying client should come back quickly and be prepared to
		// chase a "moved" redirect.
		e.RetryAfterMs = 50
	}
	var mv *MovedError
	if errors.As(err, &mv) {
		e.Location = mv.Target
	}
	return e
}

func httpError(w http.ResponseWriter, status int, err error) {
	e := envelope(err)
	if status >= http.StatusInternalServerError && e.Code == api.CodeBadRequest {
		e.Code = api.CodeInternal
	}
	writeJSON(w, status, e)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
