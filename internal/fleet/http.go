package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/trace"
)

// Handler returns the fleet's HTTP API:
//
//	POST   /v1/sessions                  create a session (CreateRequest → SessionInfo),
//	                                     or restore a persisted one (CreateRequest.Restore)
//	GET    /v1/sessions                  list sessions ([]SessionStatus)
//	POST   /v1/sessions/{id}/step        step one trace.Frame (→ ReplyLine)
//	POST   /v1/sessions/{id}/frames      stream trace.Frame NDJSON in, ReplyLine NDJSON out
//	POST   /v1/sessions/{id}/checkpoint  snapshot the session now (→ CheckpointInfo)
//	DELETE /v1/sessions/{id}             close a session (and discard its persisted state)
//
// Frames use the trace wire format (trace.Frame, no header line), so a
// recorded trace body replays against a live session verbatim. The
// streaming endpoint steps frames strictly in order, one report line per
// frame, and absorbs backpressure server-side; the single-frame /step
// endpoint surfaces backpressure as 429 with a Retry-After header.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/step", m.handleStep)
	mux.HandleFunc("POST /v1/sessions/{id}/frames", m.handleFrames)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", m.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.handleDelete)
	return mux
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode create request: %w", err))
		return
	}
	var info SessionInfo
	var err error
	if req.Restore != "" {
		info, err = m.Restore(req.Restore)
	} else {
		info, err = m.Create(Spec{Robot: req.Robot, Workers: req.Workers})
	}
	switch {
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrSessionNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrSessionLive):
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrDurabilityDisabled):
		httpError(w, http.StatusNotImplemented, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(info)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.Sessions())
}

// handleCheckpoint snapshots a live session on demand, rotating its
// WAL. 501 means the server runs without a state directory.
func (m *Manager) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := m.Checkpoint(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrDurabilityDisabled):
		httpError(w, http.StatusNotImplemented, err)
		return
	case errors.Is(err, ErrSessionNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	err := m.Close(r.PathValue("id"))
	if errors.Is(err, ErrSessionNotFound) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStep steps exactly one frame. Backpressure is the caller's to
// handle: a full queue answers 429 with a Retry-After header and the
// frame must be resubmitted.
func (m *Manager) handleStep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var frame trace.Frame
	if err := json.NewDecoder(r.Body).Decode(&frame); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode frame: %w", err))
		return
	}
	rep, err := m.Step(r.Context(), id, mat.Vec(frame.U), frameReadings(&frame))
	if err != nil {
		var bp *BackpressureError
		switch {
		case errors.As(err, &bp):
			ms := bp.RetryAfter.Milliseconds()
			w.Header().Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ReplyLine{K: frame.K, Error: err.Error(), RetryAfterMs: ms})
		case errors.Is(err, ErrSessionNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusGone, err)
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(ReplyLine{K: frame.K, Error: err.Error()})
		}
		return
	}
	wire := NewWireReport(rep)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ReplyLine{K: wire.K, Report: &wire})
}

// handleFrames is the streaming ingest: trace.Frame NDJSON in, one
// ReplyLine out per frame, flushed as produced. Frames step strictly in
// submission order. Full duplex lets a client stream frames and read
// reports concurrently over HTTP/1.1.
func (m *Manager) handleFrames(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := m.Info(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() // best-effort; serial clients work regardless
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	dec := json.NewDecoder(r.Body)
	enc := json.NewEncoder(w)
	for {
		var frame trace.Frame
		if err := dec.Decode(&frame); err != nil {
			if !errors.Is(err, io.EOF) {
				enc.Encode(ReplyLine{Error: "decode frame: " + err.Error(), Closed: true})
				rc.Flush()
			}
			return
		}
		rep, err := m.stepRetrying(r.Context(), id, &frame)
		line := ReplyLine{K: frame.K}
		if err != nil {
			line.Error = err.Error()
			line.Closed = errors.Is(err, ErrClosed) || errors.Is(err, ErrSessionNotFound)
		} else {
			wire := NewWireReport(rep)
			line.K = wire.K
			line.Report = &wire
		}
		if encErr := enc.Encode(line); encErr != nil {
			return // client went away
		}
		rc.Flush()
		if line.Closed || errors.Is(err, context.Canceled) {
			return
		}
	}
}

// stepRetrying steps one frame, absorbing backpressure with the hinted
// delay: the streaming endpoint promises in-order per-frame replies, so
// a full queue (other writers sharing the session) is waited out rather
// than surfaced.
func (m *Manager) stepRetrying(ctx context.Context, id string, frame *trace.Frame) (*detect.Report, error) {
	u := mat.Vec(frame.U)
	readings := frameReadings(frame)
	for {
		p, err := m.Submit(id, u, readings)
		if err == nil {
			return p.Wait(ctx)
		}
		var bp *BackpressureError
		if !errors.As(err, &bp) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(bp.RetryAfter):
		}
	}
}

func frameReadings(frame *trace.Frame) map[string]mat.Vec {
	readings := make(map[string]mat.Vec, len(frame.Readings))
	for name, z := range frame.Readings {
		readings[name] = mat.Vec(z)
	}
	return readings
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
