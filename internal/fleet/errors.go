package fleet

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the fleet API. Callers match them with errors.Is;
// every error returned by Manager wraps exactly one of these (or is a
// build error from the session Builder, returned verbatim by Create).
var (
	// ErrSessionNotFound reports an unknown, closed, or evicted session
	// ID. A client holding a session that was idle-evicted sees this on
	// its next frame and must create a new session.
	ErrSessionNotFound = errors.New("fleet: session not found")
	// ErrBackpressure reports a full per-session frame queue. The
	// concrete error is a *BackpressureError carrying a retry hint; the
	// frame was NOT accepted and the caller must resubmit it.
	ErrBackpressure = errors.New("fleet: frame queue full")
	// ErrClosed reports a manager that is draining or shut down, or a
	// session closed while frames were still queued behind it.
	ErrClosed = errors.New("fleet: closed")
	// ErrTooManySessions reports the MaxSessions cap; the client should
	// retry creation later or close sessions it no longer needs.
	ErrTooManySessions = errors.New("fleet: session limit reached")
	// ErrDurabilityDisabled reports a checkpoint or restore request on a
	// manager running without Config.Durability.
	ErrDurabilityDisabled = errors.New("fleet: durability not enabled")
	// ErrSessionLive reports a restore request for a session that is
	// already live; there is nothing to restore.
	ErrSessionLive = errors.New("fleet: session already live")
	// ErrMigrating reports a frame or control call that raced a live
	// migration: the session is draining for export. The frame was NOT
	// accepted; retry shortly and be prepared for ErrMoved.
	ErrMigrating = errors.New("fleet: session migrating")
	// ErrMoved reports a session that migrated to another node. The
	// concrete error is a *MovedError carrying the target's base URL;
	// errors.As recovers it.
	ErrMoved = errors.New("fleet: session moved")
)

// BackpressureError is the concrete rejection returned when a session's
// frame queue is full. errors.Is(err, ErrBackpressure) matches it;
// errors.As recovers the retry hint.
type BackpressureError struct {
	// SessionID is the session whose queue overflowed.
	SessionID string
	// RetryAfter is the suggested wait before resubmitting the frame
	// (Config.RetryAfter). The HTTP layer maps it to a Retry-After
	// header on a 429 response.
	RetryAfter time.Duration
}

// Error implements error.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("fleet: session %s frame queue full (retry after %v)", e.SessionID, e.RetryAfter)
}

// Is makes errors.Is(err, ErrBackpressure) true for any BackpressureError.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// MovedError is the concrete rejection for a session that live-migrated
// off this node. The tombstone it reads from survives until the node
// restarts; the router chases the redirect transparently, and direct
// clients should re-resolve placement at Target.
type MovedError struct {
	// SessionID is the migrated session.
	SessionID string
	// Target is the base URL of the node now hosting it.
	Target string
}

// Error implements error.
func (e *MovedError) Error() string {
	return fmt.Sprintf("fleet: session %s moved to %s", e.SessionID, e.Target)
}

// Is makes errors.Is(err, ErrMoved) true for any MovedError.
func (e *MovedError) Is(target error) bool { return target == ErrMoved }
