package baseline

import (
	"errors"
	"fmt"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/stat"
)

// LearningBased is the §II-C learning-based comparator class
// ([34]–[36]): it builds a statistical norm model over cross-sensor
// consistency features from clean operation data and flags Mahalanobis
// outliers. Per the paper's critique it uses no dynamic model, so it
// (1) cannot relate commands to motion — actuator misbehaviors are
// invisible to it — and (2) cannot attribute an inconsistency to a
// specific workflow; it only raises an undifferentiated alarm.
type LearningBased struct {
	// Alpha is the chi-square confidence level for the outlier test.
	Alpha float64

	mean      mat.Vec
	covInv    *mat.Mat
	dof       int
	threshold float64
	trained   bool
}

// ErrNotTrained indicates Score was called before Train.
var ErrNotTrained = errors.New("baseline: learning model not trained")

// ErrDegenerateTraining indicates the training features had a singular
// covariance.
var ErrDegenerateTraining = errors.New("baseline: degenerate training covariance")

// NewLearningBased returns an untrained norm model.
func NewLearningBased(alpha float64) *LearningBased {
	return &LearningBased{Alpha: alpha}
}

// ConsistencyFeatures derives the cross-sensor consistency vector the
// model scores: the pose disagreement between the IPS and wheel-encoder
// workflows (x, y, θ) and the heading disagreement between IPS and
// LiDAR. These are exactly the "correlations between sensing data" the
// learning-based literature exploits — without any kinematic model.
func ConsistencyFeatures(readings map[string]mat.Vec) (mat.Vec, error) {
	ips, ok := readings["ips"]
	if !ok || ips.Len() < 3 {
		return nil, errors.New("baseline: missing ips reading")
	}
	we, ok := readings["wheel-encoder"]
	if !ok || we.Len() < 3 {
		return nil, errors.New("baseline: missing wheel-encoder reading")
	}
	lidar, ok := readings["lidar"]
	if !ok || lidar.Len() < 1 {
		return nil, errors.New("baseline: missing lidar reading")
	}
	lidarTheta := lidar[lidar.Len()-1]
	return mat.VecOf(
		ips[0]-we[0],
		ips[1]-we[1],
		dynamics.AngleDiff(ips[2], we[2]),
		dynamics.AngleDiff(ips[2], lidarTheta),
	), nil
}

// Train fits the norm model (feature mean and covariance) on clean
// feature samples.
func (l *LearningBased) Train(samples []mat.Vec) error {
	if len(samples) < 10 {
		return fmt.Errorf("baseline: need ≥10 training samples, got %d", len(samples))
	}
	d := samples[0].Len()
	mean := mat.NewVec(d)
	for _, s := range samples {
		mean = mean.Add(s)
	}
	mean = mean.Scale(1 / float64(len(samples)))

	cov := mat.New(d, d)
	for _, s := range samples {
		diff := s.Sub(mean)
		cov = cov.Add(diff.Outer(diff))
	}
	cov = cov.Scale(1 / float64(len(samples)-1)).Symmetrize()

	covInv, err := cov.Inverse()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDegenerateTraining, err)
	}
	threshold, err := stat.ChiSquareQuantile(l.Alpha, d)
	if err != nil {
		return err
	}
	l.mean, l.covInv, l.dof, l.threshold = mean, covInv, d, threshold
	l.trained = true
	return nil
}

// Trained reports whether the model has been fit.
func (l *LearningBased) Trained() bool { return l.trained }

// Score returns the Mahalanobis-squared statistic of a feature vector
// and whether it exceeds the learned threshold.
func (l *LearningBased) Score(features mat.Vec) (statistic float64, anomalous bool, err error) {
	if !l.trained {
		return 0, false, ErrNotTrained
	}
	if features.Len() != l.dof {
		return 0, false, fmt.Errorf("baseline: feature dim %d, trained on %d", features.Len(), l.dof)
	}
	diff := features.Sub(l.mean)
	statistic = l.covInv.QuadForm(diff)
	return statistic, statistic > l.threshold, nil
}

// Threshold returns the learned alarm threshold.
func (l *LearningBased) Threshold() float64 { return l.threshold }
