package baseline

import (
	"math"
	"testing"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/world"
)

func TestFrozenModelExactAtLinearizationPoint(t *testing.T) {
	m := dynamics.NewKhepera(0.1)
	x0 := mat.VecOf(1, 1, 0.4)
	u0 := m.WheelSpeeds(0.12, 0.2)
	frozen := FreezeModel(m, x0, u0)
	if got, want := frozen.F(x0, u0), m.F(x0, u0); got.Sub(want).MaxAbs() > 1e-12 {
		t.Fatalf("frozen F at x0 = %v, want %v", got, want)
	}
	if frozen.StateDim() != 3 || frozen.ControlDim() != 2 {
		t.Fatal("dims wrong")
	}
	if frozen.Name() != "differential-drive-frozen" {
		t.Fatalf("name = %q", frozen.Name())
	}
}

func TestFrozenModelConstantJacobians(t *testing.T) {
	m := dynamics.NewKhepera(0.1)
	x0 := mat.VecOf(1, 1, 0.4)
	u0 := m.WheelSpeeds(0.12, 0.2)
	frozen := FreezeModel(m, x0, u0)

	far := mat.VecOf(3, 2, -2.0)
	uFar := m.WheelSpeeds(0.3, -1)
	if !frozen.A(far, uFar).Equal(m.A(x0, u0), 0) {
		t.Fatal("A not frozen")
	}
	if !frozen.G(far, uFar).Equal(m.G(x0, u0), 0) {
		t.Fatal("G not frozen")
	}
	// The true Jacobian at `far` differs — the whole point of §V-G.
	if frozen.A(far, uFar).Equal(m.A(far, uFar), 1e-9) {
		t.Fatal("test is vacuous: Jacobians agree at far point")
	}
}

func TestFrozenModelErrorGrowsWithHeading(t *testing.T) {
	m := dynamics.NewKhepera(0.1)
	x0 := mat.VecOf(1, 1, 0)
	u := m.WheelSpeeds(0.15, 0)
	frozen := FreezeModel(m, x0, u)

	errAt := func(theta float64) float64 {
		x := mat.VecOf(1, 1, theta)
		return frozen.F(x, u).Sub(m.F(x, u)).MaxAbs()
	}
	if errAt(0) > 1e-12 {
		t.Fatal("error at linearization heading should vanish")
	}
	if !(errAt(1.5) > errAt(0.5) && errAt(0.5) > errAt(0.1)) {
		t.Fatalf("linearization error not growing: %v %v %v", errAt(0.1), errAt(0.5), errAt(1.5))
	}
}

func TestFrozenSensorLinearAndExactAtPoint(t *testing.T) {
	arena := world.NewArena(4, 4)
	lidar := sensors.NewLidar(arena, 3)
	x0 := mat.VecOf(2, 2, 0.3)
	frozen := FreezeSensor(lidar, x0)

	if got, want := frozen.H(x0), lidar.H(x0); got.Sub(want).MaxAbs() > 1e-12 {
		t.Fatalf("frozen H at x0 = %v, want %v", got, want)
	}
	if frozen.Name() != "lidar" {
		t.Fatalf("frozen sensor renamed to %q", frozen.Name())
	}
	// Far from x0 the frozen prediction deviates from the nonlinear one.
	far := mat.VecOf(1, 3, -1.2)
	if frozen.H(far).Sub(lidar.H(far)).MaxAbs() < 1e-3 {
		t.Fatal("frozen lidar suspiciously accurate far from x0")
	}
	// Frozen C is constant.
	if !frozen.C(far).Equal(lidar.C(x0), 0) {
		t.Fatal("C not frozen")
	}
	if got := frozen.AngleIndices(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("AngleIndices = %v", got)
	}
}

func TestFreezeSuite(t *testing.T) {
	arena := world.NewArena(4, 4)
	suite := []sensors.Sensor{sensors.NewIPS(3), sensors.NewLidar(arena, 3)}
	x0 := mat.VecOf(2, 2, 0)
	frozen := FreezeSuite(suite, x0)
	if len(frozen) != 2 {
		t.Fatalf("frozen suite size %d", len(frozen))
	}
	if frozen[0].Name() != "ips" || frozen[1].Name() != "lidar" {
		t.Fatal("suite order or names wrong")
	}
	// A linear pose sensor is unchanged by freezing.
	x := mat.VecOf(0.3, 1.7, 0.9)
	if frozen[0].H(x).Sub(suite[0].H(x)).MaxAbs() > 1e-12 {
		t.Fatal("freezing changed an already-linear sensor")
	}
}

func TestFrozenModelDriftsOnCurvedPath(t *testing.T) {
	// Integrating the frozen model along a turning trajectory diverges
	// from the true kinematics — the mechanism behind the 61.68% FPR.
	m := dynamics.NewKhepera(0.1)
	x0 := mat.VecOf(1, 1, 0)
	u := m.WheelSpeeds(0.15, 0.5)
	frozen := FreezeModel(m, x0, u)

	xTrue, xLin := x0.Clone(), x0.Clone()
	for k := 0; k < 60; k++ {
		xTrue = m.F(xTrue, u)
		xLin = frozen.F(xLin, u)
	}
	gap := math.Hypot(xTrue[0]-xLin[0], xTrue[1]-xLin[1])
	if gap < 0.05 {
		t.Fatalf("frozen model tracked a curved path too well: gap %.3f m", gap)
	}
}
