package baseline

import (
	"errors"
	"math"
	"strings"
	"testing"

	"roboads/internal/mat"
	"roboads/internal/stat"
)

func TestTimeBasedIgnoresContentCorruption(t *testing.T) {
	monitor := NewTimeBased()
	published := map[string]bool{"ips": true, "lidar": true}
	for k := 0; k < 50; k++ {
		// Readings arrive on cadence regardless of their content.
		if flagged := monitor.Observe(k, published); len(flagged) != 0 {
			t.Fatalf("k=%d: flagged %v with intact periodicity", k, flagged)
		}
	}
}

func TestTimeBasedFlagsMissingPackets(t *testing.T) {
	monitor := NewTimeBased()
	all := map[string]bool{"ips": true, "lidar": true}
	ipsOnly := map[string]bool{"ips": true}
	for k := 0; k < 5; k++ {
		monitor.Observe(k, all)
	}
	// LiDAR stops publishing.
	monitor.Observe(5, ipsOnly)
	monitor.Observe(6, ipsOnly)
	flagged := monitor.Observe(7, ipsOnly)
	if len(flagged) != 1 || flagged[0] != "lidar" {
		t.Fatalf("flagged = %v, want [lidar]", flagged)
	}
	if !strings.Contains(monitor.String(), "time-based") {
		t.Fatalf("String = %q", monitor.String())
	}
}

func TestTimeBasedNoAlarmBeforeFirstObservation(t *testing.T) {
	monitor := NewTimeBased()
	if flagged := monitor.Observe(0, map[string]bool{}); len(flagged) != 0 {
		t.Fatalf("flagged %v before any traffic", flagged)
	}
}

func trainSamples(rng *stat.RNG, n int) []mat.Vec {
	samples := make([]mat.Vec, n)
	for i := range samples {
		samples[i] = mat.VecOf(
			rng.Gaussian(0, 0.002),
			rng.Gaussian(0, 0.002),
			rng.Gaussian(0, 0.004),
			rng.Gaussian(0, 0.01),
		)
	}
	return samples
}

func TestLearningBasedTrainAndScore(t *testing.T) {
	rng := stat.NewRNG(1)
	model := NewLearningBased(0.005)
	if _, _, err := model.Score(mat.VecOf(0, 0, 0, 0)); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if err := model.Train(trainSamples(rng, 500)); err != nil {
		t.Fatal(err)
	}
	if !model.Trained() || model.Threshold() <= 0 {
		t.Fatal("model not trained")
	}

	// Clean features pass; a 0.07 m inconsistency (scenario #3 scale)
	// is flagged.
	if _, anomalous, err := model.Score(mat.VecOf(0.001, -0.001, 0.002, 0.005)); err != nil || anomalous {
		t.Fatalf("clean sample flagged (err %v)", err)
	}
	statVal, anomalous, err := model.Score(mat.VecOf(0.07, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !anomalous {
		t.Fatalf("0.07 m inconsistency not flagged (stat %.1f, threshold %.1f)", statVal, model.Threshold())
	}
}

func TestLearningBasedFalsePositiveRateMatchesAlpha(t *testing.T) {
	rng := stat.NewRNG(2)
	model := NewLearningBased(0.05)
	if err := model.Train(trainSamples(rng, 2000)); err != nil {
		t.Fatal(err)
	}
	flagged := 0
	const n = 5000
	for i := 0; i < n; i++ {
		sample := trainSamples(rng, 1)[0]
		if _, anomalous, _ := model.Score(sample); anomalous {
			flagged++
		}
	}
	rate := float64(flagged) / n
	if math.Abs(rate-0.05) > 0.02 {
		t.Fatalf("clean flag rate %.3f, want ≈ alpha 0.05", rate)
	}
}

func TestLearningBasedTrainingValidation(t *testing.T) {
	model := NewLearningBased(0.05)
	if err := model.Train(trainSamples(stat.NewRNG(3), 5)); err == nil {
		t.Fatal("accepted too few samples")
	}
	// Constant samples → singular covariance.
	constant := make([]mat.Vec, 20)
	for i := range constant {
		constant[i] = mat.VecOf(1, 2, 3, 4)
	}
	if err := model.Train(constant); !errors.Is(err, ErrDegenerateTraining) {
		t.Fatalf("err = %v, want ErrDegenerateTraining", err)
	}
}

func TestLearningBasedDimensionMismatch(t *testing.T) {
	model := NewLearningBased(0.05)
	if err := model.Train(trainSamples(stat.NewRNG(4), 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := model.Score(mat.VecOf(1, 2)); err == nil {
		t.Fatal("accepted wrong feature dimension")
	}
}

func TestConsistencyFeatures(t *testing.T) {
	readings := map[string]mat.Vec{
		"ips":           mat.VecOf(1.0, 2.0, 0.5),
		"wheel-encoder": mat.VecOf(1.01, 1.98, 0.48),
		"lidar":         mat.VecOf(2, 3, 1, 0.52),
	}
	f, err := ConsistencyFeatures(readings)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.VecOf(-0.01, 0.02, 0.02, -0.02)
	if f.Sub(want).MaxAbs() > 1e-9 {
		t.Fatalf("features = %v, want %v", f, want)
	}
	// Heading difference must wrap.
	readings["ips"][2] = 3.1
	readings["lidar"][3] = -3.1
	f, err = ConsistencyFeatures(readings)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f[3]+0.083) > 0.001 {
		t.Fatalf("wrapped heading feature = %v", f[3])
	}
	// Missing sensors error.
	if _, err := ConsistencyFeatures(map[string]mat.Vec{"ips": mat.VecOf(1, 2, 3)}); err == nil {
		t.Fatal("accepted missing sensors")
	}
}
