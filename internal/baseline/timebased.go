package baseline

import (
	"fmt"
	"sort"
)

// TimeBased is the §II-C time-based comparator class ([29]–[31]): it
// monitors the *periodicity* of each sensing workflow's packets on the
// communication bus and alarms on missing or aperiodically injected
// packets. It is content-agnostic by construction — a workflow that
// keeps its cadence while emitting corrupted data (every Table II
// scenario) is invisible to it, which is the weakness the paper calls
// out.
type TimeBased struct {
	// ExpectedPeriod is the nominal packet period in iterations
	// (1 = every control iteration).
	ExpectedPeriod int
	// Tolerance is the allowed deviation in iterations before a
	// workflow is flagged.
	Tolerance int

	lastSeen map[string]int
	started  bool
}

// NewTimeBased returns a monitor for workflows publishing every
// iteration.
func NewTimeBased() *TimeBased {
	return &TimeBased{ExpectedPeriod: 1, Tolerance: 1, lastSeen: make(map[string]int)}
}

// Observe records which workflows published at iteration k (the key set
// of the readings map) and returns the names flagged for periodicity
// violations, sorted.
func (t *TimeBased) Observe(k int, published map[string]bool) []string {
	var flagged []string
	if t.started {
		for name, last := range t.lastSeen {
			gap := k - last
			if !published[name] && gap > t.ExpectedPeriod+t.Tolerance {
				flagged = append(flagged, name)
			}
		}
	}
	for name := range published {
		t.lastSeen[name] = k
	}
	t.started = true
	sort.Strings(flagged)
	return flagged
}

// String implements fmt.Stringer.
func (t *TimeBased) String() string {
	return fmt.Sprintf("time-based monitor (period %d ± %d iterations)", t.ExpectedPeriod, t.Tolerance)
}
