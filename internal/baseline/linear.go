// Package baseline implements the §V-G comparison system: a
// representative linear-system approach (the paper benchmarks against
// [20]) built from the same multi-mode unknown-input architecture, but
// with the robot dynamics and measurement models linearized exactly once
// at mission start instead of at every control iteration. On a nonlinear
// robot, the frozen model's error grows as the robot turns away from the
// linearization point, driving the estimates — and the false positive
// rate — upward, which is the paper's benchmark result (61.68% FPR).
package baseline

import (
	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
)

// FrozenModel is a dynamics.Model linearized once at (x0, u0):
//
//	f_lin(x, u) = f(x0, u0) + A0·(x − x0) + G0·(u − u0)
//
// with constant Jacobians A0, G0.
type FrozenModel struct {
	inner  dynamics.Model
	x0, u0 mat.Vec
	f0     mat.Vec
	a0, g0 *mat.Mat
}

var _ dynamics.Model = (*FrozenModel)(nil)

// FreezeModel linearizes the model at the given operating point.
func FreezeModel(m dynamics.Model, x0, u0 mat.Vec) *FrozenModel {
	return &FrozenModel{
		inner: m,
		x0:    x0.Clone(),
		u0:    u0.Clone(),
		f0:    m.F(x0, u0),
		a0:    m.A(x0, u0),
		g0:    m.G(x0, u0),
	}
}

// Name implements dynamics.Model.
func (m *FrozenModel) Name() string { return m.inner.Name() + "-frozen" }

// StateDim implements dynamics.Model.
func (m *FrozenModel) StateDim() int { return m.inner.StateDim() }

// ControlDim implements dynamics.Model.
func (m *FrozenModel) ControlDim() int { return m.inner.ControlDim() }

// F implements dynamics.Model with the frozen linearization.
func (m *FrozenModel) F(x, u mat.Vec) mat.Vec {
	dx := m.a0.MulVec(x.Sub(m.x0))
	du := m.g0.MulVec(u.Sub(m.u0))
	return m.f0.Add(dx).Add(du)
}

// A implements dynamics.Model: constant.
func (m *FrozenModel) A(_, _ mat.Vec) *mat.Mat { return m.a0.Clone() }

// G implements dynamics.Model: constant.
func (m *FrozenModel) G(_, _ mat.Vec) *mat.Mat { return m.g0.Clone() }

// FrozenSensor is a sensors.Sensor linearized once at x0:
//
//	h_lin(x) = h(x0) + C0·(x − x0)
type FrozenSensor struct {
	inner sensors.Sensor
	x0    mat.Vec
	h0    mat.Vec
	c0    *mat.Mat
}

var _ sensors.Sensor = (*FrozenSensor)(nil)

// FreezeSensor linearizes the sensor at the given state.
func FreezeSensor(s sensors.Sensor, x0 mat.Vec) *FrozenSensor {
	return &FrozenSensor{
		inner: s,
		x0:    x0.Clone(),
		h0:    s.H(x0),
		c0:    s.C(x0),
	}
}

// Name implements sensors.Sensor, keeping the inner name so readings map
// onto the same workflow keys.
func (s *FrozenSensor) Name() string { return s.inner.Name() }

// Dim implements sensors.Sensor.
func (s *FrozenSensor) Dim() int { return s.inner.Dim() }

// H implements sensors.Sensor with the frozen linearization.
func (s *FrozenSensor) H(x mat.Vec) mat.Vec {
	return s.h0.Add(s.c0.MulVec(x.Sub(s.x0)))
}

// C implements sensors.Sensor: constant.
func (s *FrozenSensor) C(_ mat.Vec) *mat.Mat { return s.c0.Clone() }

// R implements sensors.Sensor.
func (s *FrozenSensor) R() *mat.Mat { return s.inner.R() }

// AngleIndices implements sensors.Sensor.
func (s *FrozenSensor) AngleIndices() []int { return s.inner.AngleIndices() }

// FreezeSuite linearizes every sensor in a suite at x0, preserving order.
func FreezeSuite(suite []sensors.Sensor, x0 mat.Vec) []sensors.Sensor {
	out := make([]sensors.Sensor, len(suite))
	for i, s := range suite {
		out[i] = FreezeSensor(s, x0)
	}
	return out
}
