// Package forensics implements the paper's §VII future-work directions:
// once RoboADS confirms a misbehavior, (1) characterize it for incident
// response — onset time, persistence, magnitude statistics, and a
// corruption-shape classification — and (2) respond by excluding the
// corrupted workflow from the hypothesis set so the mission can continue
// on the remaining clean sensors.
//
// The paper's decision maker already quantifies anomaly vectors "for
// forensics purposes" (§III-C); this package turns those per-iteration
// estimates into incident records.
package forensics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"roboads/internal/detect"
	"roboads/internal/mat"
)

// Shape classifies the time profile of a confirmed anomaly.
type Shape int

// Shape values.
const (
	// ShapeUnknown is reported while too few samples are available.
	ShapeUnknown Shape = iota
	// ShapeBias is a constant offset (logic bombs, spoofing): stable
	// mean, small relative spread.
	ShapeBias
	// ShapeDrift is a growing deviation (integrated corruption): the
	// second-half mean magnitude dominates the first-half mean.
	ShapeDrift
	// ShapeErratic is a large, unstable corruption (DoS, blocking,
	// jamming): spread comparable to or above the mean magnitude.
	ShapeErratic
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeBias:
		return "bias"
	case ShapeDrift:
		return "drift"
	case ShapeErratic:
		return "erratic"
	default:
		return "unknown"
	}
}

// Incident is a forensic record of one confirmed misbehavior on one
// workflow ("actuator" for actuator misbehaviors).
type Incident struct {
	// Workflow is the affected sensing workflow name, or "actuator".
	Workflow string
	// OnsetIteration is the first confirmed iteration.
	OnsetIteration int
	// LastIteration is the most recent confirmed iteration.
	LastIteration int
	// Samples is the number of confirmed iterations accumulated.
	Samples int
	// Mean is the running mean anomaly vector.
	Mean mat.Vec
	// Std is the running per-component standard deviation.
	Std mat.Vec
	// PeakNorm is the largest anomaly magnitude observed.
	PeakNorm float64
	// Shape is the corruption-profile classification.
	Shape Shape

	// Welford accumulators and a magnitude history for shape analysis.
	m2        mat.Vec
	normHist  []float64
	dimension int
}

// update folds one anomaly estimate into the incident record.
func (in *Incident) update(k int, anomaly mat.Vec) {
	if in.Samples == 0 {
		in.OnsetIteration = k
		in.dimension = anomaly.Len()
		in.Mean = mat.NewVec(in.dimension)
		in.Std = mat.NewVec(in.dimension)
		in.m2 = mat.NewVec(in.dimension)
	}
	if anomaly.Len() != in.dimension {
		return // dimension changed (mode switch); ignore the sample
	}
	in.Samples++
	in.LastIteration = k
	for i, v := range anomaly {
		delta := v - in.Mean[i]
		in.Mean[i] += delta / float64(in.Samples)
		in.m2[i] += delta * (v - in.Mean[i])
		if in.Samples > 1 {
			in.Std[i] = math.Sqrt(in.m2[i] / float64(in.Samples-1))
		}
	}
	norm := anomaly.Norm()
	if norm > in.PeakNorm {
		in.PeakNorm = norm
	}
	in.normHist = append(in.normHist, norm)
	in.Shape = in.classify()
}

// classify derives the corruption shape from the magnitude history.
func (in *Incident) classify() Shape {
	const minSamples = 8
	if len(in.normHist) < minSamples {
		return ShapeUnknown
	}
	mean := meanOf(in.normHist)
	if mean == 0 {
		return ShapeUnknown
	}
	spread := stdOf(in.normHist, mean)
	half := len(in.normHist) / 2
	firstHalf := meanOf(in.normHist[:half])
	secondHalf := meanOf(in.normHist[half:])

	switch {
	// A drift also has a large spread, so the monotone-growth check
	// comes first.
	case firstHalf > 0 && secondHalf > 1.5*firstHalf:
		return ShapeDrift
	case spread/mean > 0.5:
		return ShapeErratic
	default:
		return ShapeBias
	}
}

// DurationIterations returns the incident's confirmed span.
func (in *Incident) DurationIterations() int {
	if in.Samples == 0 {
		return 0
	}
	return in.LastIteration - in.OnsetIteration + 1
}

// Summary renders a one-line incident description.
func (in *Incident) Summary(dt float64) string {
	return fmt.Sprintf("%s: %s anomaly from t=%.1fs (%d samples), mean %v, peak |d|=%.4f",
		in.Workflow, in.Shape, float64(in.OnsetIteration)*dt, in.Samples, in.Mean, in.PeakNorm)
}

// Analyzer accumulates detector decisions into per-workflow incidents.
type Analyzer struct {
	incidents map[string]*Incident
}

// NewAnalyzer returns an empty forensic analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{incidents: make(map[string]*Incident)}
}

// Observe folds one control iteration's decision into the incident
// records: confirmed sensors contribute their anomaly estimates, and a
// confirmed actuator alarm contributes d̂a.
func (a *Analyzer) Observe(dec *detect.Decision) {
	confirmed := make(map[string]bool, len(dec.Condition.Sensors))
	for _, s := range dec.Condition.Sensors {
		confirmed[s] = true
	}
	for _, sa := range dec.SensorAnomalies {
		if !confirmed[sa.Sensor] {
			continue
		}
		in, ok := a.incidents[sa.Sensor]
		if !ok {
			in = &Incident{Workflow: sa.Sensor}
			a.incidents[sa.Sensor] = in
		}
		in.update(dec.Iteration, sa.Ds)
	}
	if dec.ActuatorAlarm {
		in, ok := a.incidents["actuator"]
		if !ok {
			in = &Incident{Workflow: "actuator"}
			a.incidents["actuator"] = in
		}
		in.update(dec.Iteration, dec.Da)
	}
}

// Incidents returns the accumulated incidents sorted by onset.
func (a *Analyzer) Incidents() []*Incident {
	out := make([]*Incident, 0, len(a.incidents))
	for _, in := range a.incidents {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].OnsetIteration != out[j].OnsetIteration {
			return out[i].OnsetIteration < out[j].OnsetIteration
		}
		return out[i].Workflow < out[j].Workflow
	})
	return out
}

// Incident returns the record for one workflow, or nil.
func (a *Analyzer) Incident(workflow string) *Incident {
	return a.incidents[workflow]
}

// Report renders a multi-line incident report.
func (a *Analyzer) Report(dt float64) string {
	incidents := a.Incidents()
	if len(incidents) == 0 {
		return "no incidents"
	}
	lines := make([]string, 0, len(incidents))
	for _, in := range incidents {
		lines = append(lines, in.Summary(dt))
	}
	return strings.Join(lines, "\n")
}
