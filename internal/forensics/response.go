package forensics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sensors"
)

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func stdOf(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// ErrNoCleanSensors indicates a response cannot exclude the confirmed
// sensors because no observable reference would remain.
var ErrNoCleanSensors = errors.New("forensics: no clean observable sensor suite remains")

// Responder implements the §VII response direction: when misbehaving
// sensors are confirmed persistently, rebuild the detector with the
// corrupted workflows excluded so the mission continues on the clean
// suite. The excluded sensor keeps being monitored as a testing sensor
// only, never as a reference.
type Responder struct {
	plant     core.Plant
	suite     []sensors.Sensor
	x0        mat.Vec
	u0        mat.Vec
	detectCfg detect.Config
	engineCfg core.EngineConfig

	// ConfirmIterations is how many confirmed incident samples a sensor
	// needs before it is quarantined.
	ConfirmIterations int

	quarantined map[string]bool
}

// NewResponder builds a responder for a sensor suite. x0/u0 are the
// observability-check operating point.
func NewResponder(plant core.Plant, suite []sensors.Sensor, x0, u0 mat.Vec,
	engineCfg core.EngineConfig, detectCfg detect.Config) *Responder {
	return &Responder{
		plant:             plant,
		suite:             append([]sensors.Sensor(nil), suite...),
		x0:                x0.Clone(),
		u0:                u0.Clone(),
		detectCfg:         detectCfg,
		engineCfg:         engineCfg,
		ConfirmIterations: 10,
		quarantined:       make(map[string]bool),
	}
}

// Quarantined lists the currently excluded workflows, sorted.
func (r *Responder) Quarantined() []string {
	out := make([]string, 0, len(r.quarantined))
	for name := range r.quarantined {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ShouldQuarantine reports the sensors whose incidents have crossed the
// confirmation threshold but are not quarantined yet.
func (r *Responder) ShouldQuarantine(a *Analyzer) []string {
	var out []string
	for _, in := range a.Incidents() {
		if in.Workflow == "actuator" {
			continue // actuators cannot be excluded; operators must stop
		}
		if in.Samples >= r.ConfirmIterations && !r.quarantined[in.Workflow] {
			out = append(out, in.Workflow)
		}
	}
	sort.Strings(out)
	return out
}

// Quarantine excludes the named sensors and rebuilds the detector on the
// remaining clean suite, seeded with the current state belief. The
// quarantined sensors remain testing sensors in every mode, so their
// anomaly estimates stay available for forensics and a later operator
// decision to reinstate them.
func (r *Responder) Quarantine(names []string, x mat.Vec, px *mat.Mat) (*detect.Detector, error) {
	for _, n := range names {
		r.quarantined[n] = true
	}
	var clean, excluded []sensors.Sensor
	for _, s := range r.suite {
		if r.quarantined[s.Name()] {
			excluded = append(excluded, s)
		} else {
			clean = append(clean, s)
		}
	}
	if len(clean) == 0 {
		return nil, ErrNoCleanSensors
	}

	// Hypothesis set over the clean suite; quarantined sensors are
	// appended to every mode's testing block.
	var modes []*core.Mode
	for i, ref := range clean {
		if !sensors.Observable(r.plant.Model, ref, r.x0, r.u0) {
			continue
		}
		testing := make([]sensors.Sensor, 0, len(r.suite)-1)
		for j, s := range clean {
			if j != i {
				testing = append(testing, s)
			}
		}
		testing = append(testing, excluded...)
		m, err := core.NewMode([]sensors.Sensor{ref}, testing)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		return nil, ErrNoCleanSensors
	}
	engine, err := core.NewEngine(r.plant, modes, x, px, r.engineCfg)
	if err != nil {
		return nil, fmt.Errorf("forensics: rebuild engine: %w", err)
	}
	return detect.NewDetector(engine, r.detectCfg), nil
}
