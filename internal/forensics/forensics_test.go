package forensics

import (
	"errors"
	"math"
	"strings"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/sim"
	"roboads/internal/stat"
)

// decision fabricates a confirmed-sensor decision for unit tests.
func decision(k int, sensor string, ds mat.Vec) *detect.Decision {
	return &detect.Decision{
		Iteration:   k,
		SensorAlarm: true,
		Condition:   detect.Condition{Sensors: []string{sensor}},
		SensorAnomalies: []core.SensorAnomaly{
			{Sensor: sensor, Ds: ds, Ps: mat.Identity(ds.Len())},
		},
		Da: mat.NewVec(2),
	}
}

func TestIncidentBiasClassification(t *testing.T) {
	a := NewAnalyzer()
	rng := stat.NewRNG(1)
	for k := 10; k < 40; k++ {
		ds := mat.VecOf(0.07+rng.Gaussian(0, 0.001), rng.Gaussian(0, 0.001), 0)
		a.Observe(decision(k, "ips", ds))
	}
	in := a.Incident("ips")
	if in == nil {
		t.Fatal("no incident recorded")
	}
	if in.OnsetIteration != 10 || in.LastIteration != 39 || in.Samples != 30 {
		t.Fatalf("incident bookkeeping: %+v", in)
	}
	if in.Shape != ShapeBias {
		t.Fatalf("shape = %v, want bias", in.Shape)
	}
	if math.Abs(in.Mean[0]-0.07) > 0.002 {
		t.Fatalf("mean = %v", in.Mean)
	}
	if in.Std[0] > 0.01 {
		t.Fatalf("std = %v", in.Std)
	}
	if in.DurationIterations() != 30 {
		t.Fatalf("duration = %d", in.DurationIterations())
	}
	if !strings.Contains(in.Summary(0.1), "bias") {
		t.Fatalf("summary = %q", in.Summary(0.1))
	}
}

func TestIncidentDriftClassification(t *testing.T) {
	a := NewAnalyzer()
	for k := 0; k < 30; k++ {
		ds := mat.VecOf(0.002 * float64(k+1))
		a.Observe(decision(k, "wheel-encoder", ds))
	}
	if got := a.Incident("wheel-encoder").Shape; got != ShapeDrift {
		t.Fatalf("shape = %v, want drift", got)
	}
}

func TestIncidentErraticClassification(t *testing.T) {
	a := NewAnalyzer()
	rng := stat.NewRNG(2)
	for k := 0; k < 30; k++ {
		// DoS-like: magnitude jumps wildly.
		ds := mat.VecOf(rng.Gaussian(0.5, 0.4))
		a.Observe(decision(k, "lidar", ds))
	}
	if got := a.Incident("lidar").Shape; got != ShapeErratic {
		t.Fatalf("shape = %v, want erratic", got)
	}
}

func TestIncidentUnknownWhileYoung(t *testing.T) {
	a := NewAnalyzer()
	a.Observe(decision(1, "ips", mat.VecOf(0.07)))
	if got := a.Incident("ips").Shape; got != ShapeUnknown {
		t.Fatalf("shape after one sample = %v", got)
	}
}

func TestAnalyzerActuatorIncident(t *testing.T) {
	a := NewAnalyzer()
	for k := 5; k < 25; k++ {
		a.Observe(&detect.Decision{
			Iteration:     k,
			ActuatorAlarm: true,
			Da:            mat.VecOf(-0.04, 0.04),
		})
	}
	in := a.Incident("actuator")
	if in == nil {
		t.Fatal("actuator incident missing")
	}
	if math.Abs(in.Mean[0]+0.04) > 1e-9 {
		t.Fatalf("mean = %v", in.Mean)
	}
	if in.Shape != ShapeBias {
		t.Fatalf("shape = %v", in.Shape)
	}
}

func TestAnalyzerIgnoresUnconfirmedSensors(t *testing.T) {
	a := NewAnalyzer()
	dec := &detect.Decision{
		Iteration:   3,
		SensorAlarm: true,
		Condition:   detect.Condition{Sensors: []string{"ips"}},
		SensorAnomalies: []core.SensorAnomaly{
			{Sensor: "ips", Ds: mat.VecOf(0.07), Ps: mat.Identity(1)},
			{Sensor: "lidar", Ds: mat.VecOf(9.9), Ps: mat.Identity(1)},
		},
		Da: mat.NewVec(2),
	}
	a.Observe(dec)
	if a.Incident("lidar") != nil {
		t.Fatal("unconfirmed sensor got an incident")
	}
	if a.Incident("ips") == nil {
		t.Fatal("confirmed sensor missing an incident")
	}
}

func TestAnalyzerReportAndOrdering(t *testing.T) {
	a := NewAnalyzer()
	if a.Report(0.1) != "no incidents" {
		t.Fatalf("empty report = %q", a.Report(0.1))
	}
	for k := 20; k < 30; k++ {
		a.Observe(decision(k, "lidar", mat.VecOf(1)))
	}
	for k := 5; k < 15; k++ {
		a.Observe(decision(k, "ips", mat.VecOf(0.07)))
	}
	incidents := a.Incidents()
	if len(incidents) != 2 || incidents[0].Workflow != "ips" {
		t.Fatalf("ordering: %v, %v", incidents[0].Workflow, incidents[1].Workflow)
	}
	report := a.Report(0.1)
	if !strings.Contains(report, "ips") || !strings.Contains(report, "lidar") {
		t.Fatalf("report = %q", report)
	}
}

func TestShapeStrings(t *testing.T) {
	cases := map[Shape]string{
		ShapeUnknown: "unknown",
		ShapeBias:    "bias",
		ShapeDrift:   "drift",
		ShapeErratic: "erratic",
	}
	for shape, want := range cases {
		if shape.String() != want {
			t.Fatalf("%d → %q, want %q", shape, shape.String(), want)
		}
	}
}

// --- response ---------------------------------------------------------------

func kheperaResponder(t *testing.T) (*Responder, []sensors.Sensor, core.Plant, mat.Vec) {
	t.Helper()
	setup, err := sim.NewKhepera(sim.LabMission(), &attack.Scenario{ID: 0, Name: "clean"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	plant := core.Plant{
		Model:       setup.Model,
		Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
	}
	u0 := setup.Model.WheelSpeeds(0.1, 0)
	r := NewResponder(plant, setup.Suite, setup.X0, u0, core.DefaultEngineConfig(), detect.DefaultConfig())
	return r, setup.Suite, plant, setup.X0
}

func TestResponderShouldQuarantine(t *testing.T) {
	r, _, _, _ := kheperaResponder(t)
	a := NewAnalyzer()
	for k := 0; k < 5; k++ {
		a.Observe(decision(k, "ips", mat.VecOf(0.07, 0, 0)))
	}
	if got := r.ShouldQuarantine(a); len(got) != 0 {
		t.Fatalf("quarantine before threshold: %v", got)
	}
	for k := 5; k < 15; k++ {
		a.Observe(decision(k, "ips", mat.VecOf(0.07, 0, 0)))
	}
	got := r.ShouldQuarantine(a)
	if len(got) != 1 || got[0] != "ips" {
		t.Fatalf("quarantine list = %v", got)
	}
}

func TestResponderActuatorNotQuarantinable(t *testing.T) {
	r, _, _, _ := kheperaResponder(t)
	a := NewAnalyzer()
	for k := 0; k < 30; k++ {
		a.Observe(&detect.Decision{Iteration: k, ActuatorAlarm: true, Da: mat.VecOf(0.1, 0)})
	}
	if got := r.ShouldQuarantine(a); len(got) != 0 {
		t.Fatalf("actuator quarantined: %v", got)
	}
}

func TestResponderQuarantineRebuildsDetector(t *testing.T) {
	r, suite, _, x0 := kheperaResponder(t)
	det, err := r.Quarantine([]string{"ips"}, x0, mat.Diag(1e-6, 1e-6, 1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Quarantined(); len(got) != 1 || got[0] != "ips" {
		t.Fatalf("quarantined = %v", got)
	}

	// The rebuilt detector accepts full readings (the excluded IPS is
	// still monitored as testing) and never uses IPS as a reference.
	model := r.plant.Model
	rng := stat.NewRNG(9)
	xTrue := x0.Clone()
	u := model.(interface {
		WheelSpeeds(v, omega float64) mat.Vec
	}).WheelSpeeds(0.12, 0.1)
	for k := 0; k < 30; k++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
		readings := map[string]mat.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		// Keep the quarantined IPS corrupted: must not disturb anything.
		readings["ips"] = readings["ips"].Add(mat.VecOf(0.2, 0, 0))
		rep, err := det.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for _, name := range rep.Engine.SelectedMode.ReferenceNames {
			if name == "ips" {
				t.Fatal("quarantined sensor used as reference")
			}
		}
	}
	x, _ := det.State()
	if d := x.Sub(xTrue); math.Hypot(d[0], d[1]) > 0.02 {
		t.Fatalf("post-quarantine estimate drifted: %v vs %v", x, xTrue)
	}
}

func TestResponderNoCleanSensors(t *testing.T) {
	r, suite, _, x0 := kheperaResponder(t)
	names := make([]string, len(suite))
	for i, s := range suite {
		names[i] = s.Name()
	}
	_, err := r.Quarantine(names, x0, mat.Diag(1e-6, 1e-6, 1e-6))
	if !errors.Is(err, ErrNoCleanSensors) {
		t.Fatalf("err = %v, want ErrNoCleanSensors", err)
	}
}

// End-to-end: detect an IPS attack on a mission, quarantine the IPS, and
// verify the incident report plus continued clean operation.
func TestForensicsEndToEnd(t *testing.T) {
	scenario := attack.KheperaScenarios()[3] // IPS spoofing
	setup, err := sim.NewKhepera(sim.LabMission(), &scenario, 11)
	if err != nil {
		t.Fatal(err)
	}
	plant := core.Plant{
		Model:       setup.Model,
		Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        mat.VecOf(0.8, 0.8),
	}
	u0 := setup.Model.WheelSpeeds(0.1, 0)
	modes, err := core.SingleReferenceModes(setup.Model, setup.Suite, setup.X0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(plant, modes, setup.X0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	det := detect.NewDetector(engine, detect.DefaultConfig())
	analyzer := NewAnalyzer()
	responder := NewResponder(plant, setup.Suite, setup.X0, u0, core.DefaultEngineConfig(), detect.DefaultConfig())

	quarantinedAt := -1
	for k := 0; k < 400; k++ {
		rec, err := setup.Sim.Step()
		if err != nil {
			break
		}
		rep, err := det.Step(rec.UPlanned, rec.Readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		analyzer.Observe(rep.Decision)
		if quarantinedAt < 0 {
			if names := responder.ShouldQuarantine(analyzer); len(names) > 0 {
				x, px := det.State()
				det, err = responder.Quarantine(names, x, px)
				if err != nil {
					t.Fatal(err)
				}
				quarantinedAt = k
			}
		}
		if rec.Done {
			break
		}
	}
	if quarantinedAt < 60 || quarantinedAt > 100 {
		t.Fatalf("quarantine at k=%d, want shortly after onset k=60", quarantinedAt)
	}
	in := analyzer.Incident("ips")
	if in == nil {
		t.Fatal("no IPS incident")
	}
	if in.Shape != ShapeBias {
		t.Fatalf("incident shape = %v, want bias", in.Shape)
	}
	if math.Abs(in.Mean[0]+0.1) > 0.02 {
		t.Fatalf("incident mean = %v, want x ≈ −0.1", in.Mean)
	}
}
