package sensors

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/stat"
	"roboads/internal/world"
)

func TestIPSReadsPose(t *testing.T) {
	s := NewIPS(3)
	x := mat.VecOf(1, 2, 0.5)
	if got := s.H(x); got[0] != 1 || got[1] != 2 || got[2] != 0.5 {
		t.Fatalf("H = %v", got)
	}
	if s.Dim() != 3 || s.Name() != "ips" {
		t.Fatal("metadata wrong")
	}
	c := s.C(x)
	if c.Rows() != 3 || c.Cols() != 3 || c.At(2, 2) != 1 {
		t.Fatalf("C =\n%v", c)
	}
	if got := s.AngleIndices(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("AngleIndices = %v", got)
	}
}

func TestIPSJacobianWiderState(t *testing.T) {
	s := NewIPS(4)
	c := s.C(mat.VecOf(0, 0, 0, 1))
	if c.Cols() != 4 || c.At(0, 3) != 0 {
		t.Fatalf("C =\n%v", c)
	}
}

func TestWheelEncoderNoisierThanIPS(t *testing.T) {
	ips, we := NewIPS(3), NewWheelEncoder(3)
	if we.R().At(0, 0) <= ips.R().At(0, 0) {
		t.Fatal("wheel encoder should be noisier than IPS")
	}
}

func TestGPSAndMagnetometer(t *testing.T) {
	g := NewGPS(3, 0.05)
	if got := g.H(mat.VecOf(3, 4, 1)); got.Len() != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("GPS H = %v", got)
	}
	if g.AngleIndices() != nil {
		t.Fatal("GPS should have no angle components")
	}
	m := NewMagnetometer(3)
	if got := m.H(mat.VecOf(3, 4, 1)); got.Len() != 1 || got[0] != 1 {
		t.Fatalf("Magnetometer H = %v", got)
	}
}

func TestIMUReadsHeadingAndSpeed(t *testing.T) {
	s := NewIMU()
	got := s.H(mat.VecOf(1, 2, 0.3, 0.9))
	if got.Len() != 2 || got[0] != 0.3 || got[1] != 0.9 {
		t.Fatalf("IMU H = %v", got)
	}
}

func TestLidarRangesInArena(t *testing.T) {
	m := world.NewArena(4, 4)
	s := NewLidar(m, 3)
	// Facing east at the center: left beam → north wall (2 m),
	// front → east wall (2 m), right → south wall (2 m).
	z := s.H(mat.VecOf(2, 2, 0))
	for i := 0; i < 3; i++ {
		if math.Abs(z[i]-2) > 1e-9 {
			t.Fatalf("beam %d = %v, want 2", i, z[i])
		}
	}
	if z[3] != 0 {
		t.Fatalf("heading component = %v", z[3])
	}
}

func TestLidarHeadingRotatesBeams(t *testing.T) {
	m := world.NewArena(4, 4)
	s := NewLidar(m, 3)
	// Facing north at (1, 2): front beam hits north wall at 2 m,
	// left beam hits west wall at 1 m.
	z := s.H(mat.VecOf(1, 2, math.Pi/2))
	if math.Abs(z[1]-2) > 1e-9 {
		t.Fatalf("front beam = %v, want 2", z[1])
	}
	if math.Abs(z[0]-1) > 1e-9 {
		t.Fatalf("left beam = %v, want 1", z[0])
	}
}

func TestLidarJacobianMatchesDifferences(t *testing.T) {
	m := world.LabArena()
	s := NewLidar(m, 3)
	x := mat.VecOf(0.7, 0.6, 0.4)
	c := s.C(x)
	// Column 0 ≈ ∂h/∂px by explicit forward difference.
	const h = 1e-6
	xp := mat.VecOf(x[0]+h, x[1], x[2])
	num := s.H(xp).Sub(s.H(x)).Scale(1 / h)
	for i := 0; i < s.Dim(); i++ {
		if math.Abs(c.At(i, 0)-num[i]) > 1e-3 {
			t.Fatalf("C[%d,0] = %v, numeric %v", i, c.At(i, 0), num[i])
		}
	}
}

func TestStackedComposition(t *testing.T) {
	ips := NewIPS(3)
	gps := NewGPS(3, 0.05)
	s, err := NewStacked(ips, gps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 5 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	if s.Name() != "ips+gps" {
		t.Fatalf("Name = %q", s.Name())
	}
	x := mat.VecOf(1, 2, 0.3)
	z := s.H(x)
	if z.Len() != 5 || z[3] != 1 || z[4] != 2 {
		t.Fatalf("H = %v", z)
	}
	r := s.R()
	if r.Rows() != 5 || r.At(0, 0) != ips.R().At(0, 0) || r.At(3, 3) != gps.R().At(0, 0) {
		t.Fatalf("R =\n%v", r)
	}
	if r.At(0, 3) != 0 {
		t.Fatal("cross-block covariance should be zero")
	}
	c := s.C(x)
	if c.Rows() != 5 || c.Cols() != 3 {
		t.Fatalf("C shape %dx%d", c.Rows(), c.Cols())
	}
	if got := s.AngleIndices(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("AngleIndices = %v", got)
	}
	if got := s.Offsets(); got[0] != 0 || got[1] != 3 {
		t.Fatalf("Offsets = %v", got)
	}
}

func TestStackedEmpty(t *testing.T) {
	if _, err := NewStacked(); !errors.Is(err, ErrEmptyStack) {
		t.Fatalf("err = %v", err)
	}
}

func TestWrapResidual(t *testing.T) {
	r := mat.VecOf(0.5, 2*math.Pi+0.1)
	got := WrapResidual(r, []int{1})
	if math.Abs(got[1]-0.1) > 1e-12 || got[0] != 0.5 {
		t.Fatalf("WrapResidual = %v", got)
	}
}

func TestObservability(t *testing.T) {
	model := dynamics.NewKhepera(0.1)
	x := mat.VecOf(1, 1, 0.3)
	u := mat.VecOf(0.1, 0.12)

	if !Observable(model, NewIPS(3), x, u) {
		t.Fatal("IPS should observe the full diff-drive state")
	}
	if Observable(model, NewMagnetometer(3), x, u) {
		t.Fatal("magnetometer alone must NOT be observable (§VI)")
	}
	// Grouping the magnetometer with GPS restores observability — the
	// paper's §VI remedy.
	grouped, err := NewStacked(NewMagnetometer(3), NewGPS(3, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !Observable(model, grouped, x, u) {
		t.Fatal("magnetometer+GPS group should be observable")
	}
}

func TestObservabilityBicycleIMU(t *testing.T) {
	model := dynamics.NewTamiya(0.1)
	x := mat.VecOf(1, 1, 0.3, 0.5)
	u := mat.VecOf(0.1, 0.05)
	if Observable(model, NewIMU(), x, u) {
		t.Fatal("IMU alone must not observe bicycle position")
	}
	if !Observable(model, NewIPS(4), x, u) {
		// IPS reads pose; speed is reconstructible through the dynamics.
		t.Fatal("IPS should observe the full bicycle state")
	}
}

// Lidar ranges must always be positive and bounded by MaxRange inside the
// arena, and the heading passthrough must be exact.
func TestPropertyLidarRangesValid(t *testing.T) {
	m := world.LabArena()
	s := NewLidar(m, 3)
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		x := mat.VecOf(0.2+3.6*r.Float64(), 0.2+3.6*r.Float64(), (r.Float64()-0.5)*2*math.Pi)
		if !m.Free(world.Point{X: x[0], Y: x[1]}, 0.01) {
			return true
		}
		z := s.H(x)
		for i := 0; i < len(s.BeamAngles); i++ {
			if z[i] <= 0 || z[i] > s.MaxRange {
				return false
			}
		}
		return z[len(z)-1] == x[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Stacked H must equal the concatenation of the parts' H at any state.
func TestPropertyStackedConsistency(t *testing.T) {
	m := world.LabArena()
	parts := []Sensor{NewIPS(3), NewWheelEncoder(3), NewLidar(m, 3)}
	s, err := NewStacked(parts...)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		x := mat.VecOf(0.3+3.4*r.Float64(), 0.3+3.4*r.Float64(), (r.Float64()-0.5)*2*math.Pi)
		want := parts[0].H(x).Concat(parts[1].H(x)).Concat(parts[2].H(x))
		got := s.H(x)
		return got.Sub(want).MaxAbs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSensorGetterCoverage(t *testing.T) {
	m := world.NewArena(4, 4)
	lidar := NewLidar(m, 3)
	if lidar.R().Rows() != 4 {
		t.Fatal("lidar R shape")
	}
	if got := lidar.AngleIndices(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("lidar AngleIndices = %v", got)
	}
	we := NewWheelEncoder(4)
	if c := we.C(mat.VecOf(0, 0, 0, 0)); c.Cols() != 4 {
		t.Fatal("wheel encoder C shape")
	}
	if got := we.AngleIndices(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("wheel encoder AngleIndices = %v", got)
	}
	mag := NewMagnetometer(3)
	if mag.R().At(0, 0) <= 0 {
		t.Fatal("magnetometer R")
	}
	if got := mag.AngleIndices(); len(got) != 1 {
		t.Fatalf("magnetometer AngleIndices = %v", got)
	}
	imu := NewIMU()
	if imu.R().Rows() != 2 || imu.Name() != "imu" {
		t.Fatal("imu metadata")
	}
}
