package sensors

import (
	"math"

	"roboads/internal/mat"
	"roboads/internal/world"
)

// Lidar models the laser range finder's processed output (§V-A): the raw
// 240° scan is reduced by the sensing workflow to the distances to the
// surrounding walls along a few body-fixed beam directions, plus the
// scan-matched heading. z = (r_1, …, r_B, θ).
//
// The measurement function ray-casts each beam from the robot pose
// against the known *walls* of the arena (the paper's workflow extracts
// distances from the surrounding walls out of the 240° scan; obstacle
// returns are rejected during scan processing). Ranging against the
// convex arena boundary keeps h continuous in the pose while remaining
// nonlinear — the second nonlinearity (besides the kinematics)
// exercising the paper's per-iteration relinearization. The Jacobian is
// evaluated in closed form against the wall each beam terminates on:
// the range to a fixed wall line is smooth in the pose, and only the
// beam→wall assignment is piecewise (where no consistent derivative
// exists anyway).
type Lidar struct {
	// Map is the known arena the beams range against.
	Map *world.Map
	// BeamAngles are the body-frame beam directions in radians.
	BeamAngles []float64
	// MaxRange truncates each beam, in meters.
	MaxRange float64
	// SigmaRange is the per-beam range noise standard deviation in meters.
	SigmaRange float64
	// SigmaTheta is the scan-matched heading noise standard deviation.
	SigmaTheta float64
	// NStates is the robot state dimension.
	NStates int

	consts sensorConsts
}

var _ Sensor = (*Lidar)(nil)

// NewLidar returns the default three-beam LiDAR (left, front, right) used
// in the Khepera experiments, ranging against m.
func NewLidar(m *world.Map, nStates int) *Lidar {
	return &Lidar{
		Map:        m,
		BeamAngles: []float64{math.Pi / 2, 0, -math.Pi / 2},
		MaxRange:   10,
		SigmaRange: 0.005,
		SigmaTheta: 0.01,
		NStates:    nStates,
	}
}

// Name implements Sensor.
func (s *Lidar) Name() string { return "lidar" }

// Dim implements Sensor: one range per beam plus heading.
func (s *Lidar) Dim() int { return len(s.BeamAngles) + 1 }

// H implements Sensor.
func (s *Lidar) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 3)
	origin := world.Point{X: x[0], Y: x[1]}
	out := make(mat.Vec, 0, s.Dim())
	for _, beam := range s.BeamAngles {
		d, _ := s.Map.RaycastWalls(origin, x[2]+beam, s.MaxRange)
		out = append(out, d)
	}
	return append(out, x[2])
}

// HInto implements HIntoer: the same ray casts as H, written into dst.
func (s *Lidar) HInto(dst mat.Vec, x mat.Vec) {
	mustStateLen(s.Name(), x, 3)
	origin := world.Point{X: x[0], Y: x[1]}
	for i, beam := range s.BeamAngles {
		d, _ := s.Map.RaycastWalls(origin, x[2]+beam, s.MaxRange)
		dst[i] = d
	}
	dst[s.Dim()-1] = x[2]
}

// CInto implements CIntoer: C's closed-form per-beam derivative written
// into dst (cleared first — clipped or degenerate beams contribute zero
// rows, matching C's freshly zeroed allocation).
func (s *Lidar) CInto(dst *mat.Mat, x mat.Vec) {
	mustStateLen(s.Name(), x, 3)
	dst.Zero()
	origin := world.Point{X: x[0], Y: x[1]}
	for i, beam := range s.BeamAngles {
		phi := x[2] + beam
		t, wall, ok := s.Map.RaycastWallsSeg(origin, phi, s.MaxRange)
		if !ok {
			continue
		}
		sin, cos := math.Sincos(phi)
		ex, ey := wall.B.X-wall.A.X, wall.B.Y-wall.A.Y
		den := cos*ey - sin*ex
		if den == 0 {
			continue
		}
		dst.Set(i, 0, -ey/den)
		dst.Set(i, 1, ex/den)
		dst.Set(i, 2, -t*(-sin*ey-cos*ex)/den)
	}
	dst.Set(s.Dim()-1, 2, 1)
}

// C implements Sensor, differentiating each beam's range against the
// wall it terminates on. With the beam direction û = (cos φ, sin φ),
// φ = θ + beam, and the hit wall's edge vector e, the raycast solves
// t = ((A − o) × e) / (û × e) for the origin o — so
//
//	∂t/∂o = (−e_y, e_x) / (û × e),   ∂t/∂θ = −t·(û' × e)/(û × e),
//
// with û' = dû/dφ = (−sin φ, cos φ). One raycast per beam replaces the
// historical central differences (seven full H evaluations, 21
// raycasts); the values agree to O(h²) ≈ 1e-10 away from beam→wall
// reassignment boundaries, where no derivative is meaningful. A beam
// clipped at MaxRange is locally constant and contributes a zero row.
func (s *Lidar) C(x mat.Vec) *mat.Mat {
	mustStateLen(s.Name(), x, 3)
	out := mat.New(s.Dim(), s.NStates)
	origin := world.Point{X: x[0], Y: x[1]}
	for i, beam := range s.BeamAngles {
		phi := x[2] + beam
		t, wall, ok := s.Map.RaycastWallsSeg(origin, phi, s.MaxRange)
		if !ok {
			continue
		}
		sin, cos := math.Sincos(phi)
		ex, ey := wall.B.X-wall.A.X, wall.B.Y-wall.A.Y
		den := cos*ey - sin*ex
		if den == 0 {
			continue
		}
		out.Set(i, 0, -ey/den)
		out.Set(i, 1, ex/den)
		out.Set(i, 2, -t*(-sin*ey-cos*ex)/den)
	}
	out.Set(s.Dim()-1, 2, 1)
	return out
}

// R implements Sensor.
func (s *Lidar) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	d := make([]float64, s.Dim())
	for i := range s.BeamAngles {
		d[i] = s.SigmaRange * s.SigmaRange
	}
	d[len(d)-1] = s.SigmaTheta * s.SigmaTheta
	return cacheMat(&s.consts.r, mat.Diag(d...))
}

// AngleIndices implements Sensor: the trailing heading component.
func (s *Lidar) AngleIndices() []int {
	if v := s.consts.angles.Load(); v != nil {
		return *v
	}
	return cacheInts(&s.consts.angles, []int{s.Dim() - 1})
}
