package sensors

import (
	"math"

	"roboads/internal/mat"
	"roboads/internal/world"
)

// Lidar models the laser range finder's processed output (§V-A): the raw
// 240° scan is reduced by the sensing workflow to the distances to the
// surrounding walls along a few body-fixed beam directions, plus the
// scan-matched heading. z = (r_1, …, r_B, θ).
//
// The measurement function ray-casts each beam from the robot pose
// against the known *walls* of the arena (the paper's workflow extracts
// distances from the surrounding walls out of the 240° scan; obstacle
// returns are rejected during scan processing). Ranging against the
// convex arena boundary keeps h continuous in the pose while remaining
// nonlinear — the second nonlinearity (besides the kinematics)
// exercising the paper's per-iteration relinearization. The Jacobian is
// computed numerically: the beam/wall assignment makes h piecewise, with
// no useful closed form.
type Lidar struct {
	// Map is the known arena the beams range against.
	Map *world.Map
	// BeamAngles are the body-frame beam directions in radians.
	BeamAngles []float64
	// MaxRange truncates each beam, in meters.
	MaxRange float64
	// SigmaRange is the per-beam range noise standard deviation in meters.
	SigmaRange float64
	// SigmaTheta is the scan-matched heading noise standard deviation.
	SigmaTheta float64
	// NStates is the robot state dimension.
	NStates int
}

var _ Sensor = (*Lidar)(nil)

// NewLidar returns the default three-beam LiDAR (left, front, right) used
// in the Khepera experiments, ranging against m.
func NewLidar(m *world.Map, nStates int) *Lidar {
	return &Lidar{
		Map:        m,
		BeamAngles: []float64{math.Pi / 2, 0, -math.Pi / 2},
		MaxRange:   10,
		SigmaRange: 0.005,
		SigmaTheta: 0.01,
		NStates:    nStates,
	}
}

// Name implements Sensor.
func (s *Lidar) Name() string { return "lidar" }

// Dim implements Sensor: one range per beam plus heading.
func (s *Lidar) Dim() int { return len(s.BeamAngles) + 1 }

// H implements Sensor.
func (s *Lidar) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 3)
	origin := world.Point{X: x[0], Y: x[1]}
	out := make(mat.Vec, 0, s.Dim())
	for _, beam := range s.BeamAngles {
		d, _ := s.Map.RaycastWalls(origin, x[2]+beam, s.MaxRange)
		out = append(out, d)
	}
	return append(out, x[2])
}

// C implements Sensor via central differences on H.
func (s *Lidar) C(x mat.Vec) *mat.Mat {
	const h = 1e-5
	out := mat.New(s.Dim(), s.NStates)
	base := s.H(x)
	for j := 0; j < s.NStates && j < len(x); j++ {
		xp, xm := x.Clone(), x.Clone()
		xp[j] += h
		xm[j] -= h
		fp, fm := s.H(xp), s.H(xm)
		for i := range base {
			out.Set(i, j, (fp[i]-fm[i])/(2*h))
		}
	}
	return out
}

// R implements Sensor.
func (s *Lidar) R() *mat.Mat {
	d := make([]float64, s.Dim())
	for i := range s.BeamAngles {
		d[i] = s.SigmaRange * s.SigmaRange
	}
	d[len(d)-1] = s.SigmaTheta * s.SigmaTheta
	return mat.Diag(d...)
}

// AngleIndices implements Sensor: the trailing heading component.
func (s *Lidar) AngleIndices() []int { return []int{s.Dim() - 1} }
