// Package sensors implements the measurement models z = h(x) + ξ of
// equation (1) for the sensing workflows the paper evaluates: the Vicon
// indoor positioning system (IPS), wheel-encoder odometry, a wall-ranging
// LiDAR, an IMU, plus GPS and magnetometer models used for the sensor
// grouping discussion of §VI.
//
// Each sensor exposes its measurement function, Jacobian, and noise
// covariance; Stacked composes several sensors into the z1 (testing) and
// z2 (reference) blocks the NUISE estimator consumes.
package sensors

import (
	"errors"
	"fmt"
	"sync/atomic"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
)

// Sensor describes one sensing workflow's measurement model.
type Sensor interface {
	// Name identifies the sensing workflow (used in mode and alarm
	// reporting).
	Name() string

	// Dim returns the dimension of the sensor's reading vector.
	Dim() int

	// H evaluates the measurement function h(x).
	H(x mat.Vec) mat.Vec

	// C returns the Jacobian ∂h/∂x evaluated at x. Implementations whose
	// Jacobian is state-independent may return a shared cached matrix;
	// callers must treat the result as read-only.
	C(x mat.Vec) *mat.Mat

	// R returns the measurement noise covariance (constant per sensor).
	// Implementations may return a shared cached matrix; callers must
	// treat the result as read-only.
	R() *mat.Mat

	// AngleIndices lists the components of the reading that are angles;
	// residuals at these indices must be wrapped to (−π, π]. The result
	// may be shared and must be treated as read-only.
	AngleIndices() []int
}

// sensorConsts caches a sensor's constant outputs — the noise covariance
// R, a state-independent Jacobian C, and the angle index list — so the
// estimator hot loop does not rebuild the same small objects every step.
// The first call freezes the value: configure a sensor fully before its
// first use. Caching is safe under concurrent first use (the engine's
// parallel mode bank shares sensors across goroutines): racing builders
// converge on the first stored pointer, and the stable pointer identity
// is what lets the engine's CholCache reuse covariance factors.
type sensorConsts struct {
	r, c   atomic.Pointer[mat.Mat]
	angles atomic.Pointer[[]int]
}

// cacheMat publishes m as the frozen value of p, returning the winner
// when another goroutine got there first.
func cacheMat(p *atomic.Pointer[mat.Mat], m *mat.Mat) *mat.Mat {
	if p.CompareAndSwap(nil, m) {
		return m
	}
	return p.Load()
}

// cacheInts publishes v as the frozen value of p, returning the winner
// when another goroutine got there first.
func cacheInts(p *atomic.Pointer[[]int], v []int) []int {
	if p.CompareAndSwap(nil, &v) {
		return v
	}
	return *p.Load()
}

// ErrEmptyStack indicates an attempt to stack zero sensors.
var ErrEmptyStack = errors.New("sensors: empty sensor stack")

// HIntoer is an optional Sensor fast path: HInto writes h(x) into dst
// (length Dim()) without allocating. Implementations must produce
// values bit-identical to H — the batched engine leans on this to stay
// bit-for-bit reproducible against the scalar path.
type HIntoer interface {
	HInto(dst mat.Vec, x mat.Vec)
}

// CIntoer is an optional Sensor fast path: CInto writes the Jacobian
// ∂h/∂x at x into dst (Dim()×len(x)), overwriting every entry, without
// allocating. Values must be bit-identical to C.
type CIntoer interface {
	CInto(dst *mat.Mat, x mat.Vec)
}

// EvalHInto evaluates h(x) into dst through the sensor's fast path when
// it has one, copying H's freshly allocated result otherwise. Either
// way dst holds exactly H(x)'s values.
func EvalHInto(s Sensor, dst mat.Vec, x mat.Vec) mat.Vec {
	if f, ok := s.(HIntoer); ok {
		f.HInto(dst, x)
		return dst
	}
	copy(dst, s.H(x))
	return dst
}

// EvalCInto evaluates the Jacobian at x into dst through the sensor's
// fast path when it has one, copying C's result otherwise (free of
// surprises for constant-Jacobian sensors, which return a cached
// matrix).
func EvalCInto(s Sensor, dst *mat.Mat, x mat.Vec) *mat.Mat {
	if f, ok := s.(CIntoer); ok {
		f.CInto(dst, x)
		return dst
	}
	return mat.CopyInto(dst, s.C(x))
}

// WrapResidual wraps the listed angle components of a residual in place
// and returns it.
func WrapResidual(r mat.Vec, angleIdx []int) mat.Vec {
	for _, i := range angleIdx {
		r[i] = dynamics.NormalizeAngle(r[i])
	}
	return r
}

// Stacked composes several sensors into one combined measurement model:
// readings are concatenated and noise covariances are block-diagonal
// (workflows run in isolation, so their noises are independent —
// §II-A).
type Stacked struct {
	parts  []Sensor
	dim    int
	name   string
	consts sensorConsts
}

var _ Sensor = (*Stacked)(nil)

// NewStacked returns the composition of the given sensors in order.
func NewStacked(parts ...Sensor) (*Stacked, error) {
	if len(parts) == 0 {
		return nil, ErrEmptyStack
	}
	s := &Stacked{parts: make([]Sensor, len(parts))}
	copy(s.parts, parts)
	for i, p := range s.parts {
		s.dim += p.Dim()
		if i > 0 {
			s.name += "+"
		}
		s.name += p.Name()
	}
	return s, nil
}

// Name implements Sensor.
func (s *Stacked) Name() string { return s.name }

// Dim implements Sensor.
func (s *Stacked) Dim() int { return s.dim }

// Parts returns the component sensors in stacking order.
func (s *Stacked) Parts() []Sensor {
	out := make([]Sensor, len(s.parts))
	copy(out, s.parts)
	return out
}

// Offsets returns the starting index of each component within the stacked
// reading vector.
func (s *Stacked) Offsets() []int {
	out := make([]int, len(s.parts))
	off := 0
	for i, p := range s.parts {
		out[i] = off
		off += p.Dim()
	}
	return out
}

// H implements Sensor.
func (s *Stacked) H(x mat.Vec) mat.Vec {
	out := make(mat.Vec, 0, s.dim)
	for _, p := range s.parts {
		out = append(out, p.H(x)...)
	}
	return out
}

// HInto implements HIntoer: each part evaluates into its slice of dst.
func (s *Stacked) HInto(dst mat.Vec, x mat.Vec) {
	off := 0
	for _, p := range s.parts {
		EvalHInto(p, dst[off:off+p.Dim()], x)
		off += p.Dim()
	}
}

// CInto implements CIntoer: each part's Jacobian lands in its row band
// of dst — through the part's own fast path when it has one, by copy
// otherwise. Every row of dst is overwritten either way.
func (s *Stacked) CInto(dst *mat.Mat, x mat.Vec) {
	if len(s.parts) == 1 {
		// Mirrors C's single-part delegation, and skips the row-band
		// view header a one-part span would allocate.
		EvalCInto(s.parts[0], dst, x)
		return
	}
	row := 0
	for _, p := range s.parts {
		if f, ok := p.(CIntoer); ok {
			f.CInto(dst.RowSpan(row, row+p.Dim()), x)
		} else {
			dst.SetSubmatrix(row, 0, p.C(x))
		}
		row += p.Dim()
	}
}

// C implements Sensor.
func (s *Stacked) C(x mat.Vec) *mat.Mat {
	if len(s.parts) == 1 {
		return s.parts[0].C(x)
	}
	n := len(x)
	out := mat.New(s.dim, n)
	row := 0
	for _, p := range s.parts {
		out.SetSubmatrix(row, 0, p.C(x))
		row += p.Dim()
	}
	return out
}

// R implements Sensor with a block-diagonal covariance, assembled once
// and cached (the parts are fixed at construction).
func (s *Stacked) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	out := mat.New(s.dim, s.dim)
	off := 0
	for _, p := range s.parts {
		out.SetSubmatrix(off, off, p.R())
		off += p.Dim()
	}
	return cacheMat(&s.consts.r, out)
}

// AngleIndices implements Sensor, offsetting each component's indices;
// the combined list is assembled once and cached.
func (s *Stacked) AngleIndices() []int {
	if v := s.consts.angles.Load(); v != nil {
		return *v
	}
	var out []int
	off := 0
	for _, p := range s.parts {
		for _, i := range p.AngleIndices() {
			out = append(out, off+i)
		}
		off += p.Dim()
	}
	return cacheInts(&s.consts.angles, out)
}

// Observable reports whether the state is reconstructible from the given
// sensor alone, by checking the rank of the linearized observability
// matrix [C; CA; CA²; …; CA^{n−1}] at the operating point (x, u). The
// paper's §VI requires every reference sensor (group) of a mode to pass
// this check; a magnetometer alone, for instance, fails it.
func Observable(model dynamics.Model, s Sensor, x, u mat.Vec) bool {
	n := model.StateDim()
	a := model.A(x, u)
	c := s.C(x)
	obs := c.Clone()
	power := a.Clone()
	for i := 1; i < n; i++ {
		obs = obs.VStack(c.Mul(power))
		power = power.Mul(a)
	}
	return obs.Rank(0) == n
}

func mustStateLen(name string, x mat.Vec, want int) {
	if len(x) < want {
		panic(fmt.Errorf("%w: %s needs state of dim ≥ %d, got %d",
			mat.ErrDimension, name, want, len(x)))
	}
}
