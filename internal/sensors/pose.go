package sensors

import (
	"roboads/internal/mat"
)

// Pose-family sensors all read some subset of (px, py, θ), which occupy
// state indices 0, 1, 2 in both robot models.

// IPS is the indoor positioning system (Vicon motion capture, Fig. 5(b)):
// a full pose sensor with small noise. z = (px, py, θ).
type IPS struct {
	// SigmaPos is the position noise standard deviation in meters.
	SigmaPos float64
	// SigmaTheta is the heading noise standard deviation in radians.
	SigmaTheta float64
	// NStates is the robot state dimension (3 for diff drive, 4 for
	// bicycle); the Jacobian needs it.
	NStates int

	consts sensorConsts
}

var _ Sensor = (*IPS)(nil)

// NewIPS returns an IPS with Vicon-class noise for the given state
// dimension.
func NewIPS(nStates int) *IPS {
	return &IPS{SigmaPos: 0.0005, SigmaTheta: 0.002, NStates: nStates}
}

// Name implements Sensor.
func (s *IPS) Name() string { return "ips" }

// Dim implements Sensor.
func (s *IPS) Dim() int { return 3 }

// H implements Sensor.
func (s *IPS) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 3)
	return mat.VecOf(x[0], x[1], x[2])
}

// HInto implements HIntoer.
func (s *IPS) HInto(dst mat.Vec, x mat.Vec) {
	mustStateLen(s.Name(), x, 3)
	dst[0], dst[1], dst[2] = x[0], x[1], x[2]
}

// C implements Sensor. The Jacobian is state-independent and cached.
func (s *IPS) C(x mat.Vec) *mat.Mat {
	if m := s.consts.c.Load(); m != nil {
		return m
	}
	c := mat.New(3, s.NStates)
	c.Set(0, 0, 1)
	c.Set(1, 1, 1)
	c.Set(2, 2, 1)
	return cacheMat(&s.consts.c, c)
}

// R implements Sensor.
func (s *IPS) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	return cacheMat(&s.consts.r, mat.Diag(s.SigmaPos*s.SigmaPos, s.SigmaPos*s.SigmaPos, s.SigmaTheta*s.SigmaTheta))
}

// AngleIndices implements Sensor.
func (s *IPS) AngleIndices() []int {
	if v := s.consts.angles.Load(); v != nil {
		return *v
	}
	return cacheInts(&s.consts.angles, []int{2})
}

// WheelEncoder models the wheel-encoder odometry workflow: the sensing
// workflow integrates per-wheel encoder ticks into a dead-reckoned pose,
// which reaches the planner as a pose reading z = (px, py, θ). Encoder
// quantization and slip make it noisier than the IPS. (The tick-level
// integration — where the paper's "+100 steps" logic bomb is injected —
// lives in the simulator's sensing workflow; this type is the measurement
// model the estimator uses.)
type WheelEncoder struct {
	// SigmaPos is the equivalent position noise in meters.
	SigmaPos float64
	// SigmaTheta is the equivalent heading noise in radians.
	SigmaTheta float64
	// NStates is the robot state dimension.
	NStates int

	consts sensorConsts
}

var _ Sensor = (*WheelEncoder)(nil)

// NewWheelEncoder returns a wheel-encoder odometry model for the given
// state dimension.
func NewWheelEncoder(nStates int) *WheelEncoder {
	return &WheelEncoder{SigmaPos: 0.001, SigmaTheta: 0.003, NStates: nStates}
}

// Name implements Sensor.
func (s *WheelEncoder) Name() string { return "wheel-encoder" }

// Dim implements Sensor.
func (s *WheelEncoder) Dim() int { return 3 }

// H implements Sensor.
func (s *WheelEncoder) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 3)
	return mat.VecOf(x[0], x[1], x[2])
}

// HInto implements HIntoer.
func (s *WheelEncoder) HInto(dst mat.Vec, x mat.Vec) {
	mustStateLen(s.Name(), x, 3)
	dst[0], dst[1], dst[2] = x[0], x[1], x[2]
}

// C implements Sensor. The Jacobian is state-independent and cached.
func (s *WheelEncoder) C(x mat.Vec) *mat.Mat {
	if m := s.consts.c.Load(); m != nil {
		return m
	}
	c := mat.New(3, s.NStates)
	c.Set(0, 0, 1)
	c.Set(1, 1, 1)
	c.Set(2, 2, 1)
	return cacheMat(&s.consts.c, c)
}

// R implements Sensor.
func (s *WheelEncoder) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	return cacheMat(&s.consts.r, mat.Diag(s.SigmaPos*s.SigmaPos, s.SigmaPos*s.SigmaPos, s.SigmaTheta*s.SigmaTheta))
}

// AngleIndices implements Sensor.
func (s *WheelEncoder) AngleIndices() []int {
	if v := s.consts.angles.Load(); v != nil {
		return *v
	}
	return cacheInts(&s.consts.angles, []int{2})
}

// GPS reads position only: z = (px, py). Used in the §VI grouping
// discussion and the examples.
type GPS struct {
	// Sigma is the position noise standard deviation in meters.
	Sigma float64
	// NStates is the robot state dimension.
	NStates int

	consts sensorConsts
}

var _ Sensor = (*GPS)(nil)

// NewGPS returns a GPS with the given noise for the given state dimension.
func NewGPS(nStates int, sigma float64) *GPS {
	return &GPS{Sigma: sigma, NStates: nStates}
}

// Name implements Sensor.
func (s *GPS) Name() string { return "gps" }

// Dim implements Sensor.
func (s *GPS) Dim() int { return 2 }

// H implements Sensor.
func (s *GPS) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 2)
	return mat.VecOf(x[0], x[1])
}

// HInto implements HIntoer.
func (s *GPS) HInto(dst mat.Vec, x mat.Vec) {
	mustStateLen(s.Name(), x, 2)
	dst[0], dst[1] = x[0], x[1]
}

// C implements Sensor. The Jacobian is state-independent and cached.
func (s *GPS) C(x mat.Vec) *mat.Mat {
	if m := s.consts.c.Load(); m != nil {
		return m
	}
	c := mat.New(2, s.NStates)
	c.Set(0, 0, 1)
	c.Set(1, 1, 1)
	return cacheMat(&s.consts.c, c)
}

// R implements Sensor.
func (s *GPS) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	return cacheMat(&s.consts.r, mat.Diag(s.Sigma*s.Sigma, s.Sigma*s.Sigma))
}

// AngleIndices implements Sensor.
func (s *GPS) AngleIndices() []int { return nil }

// Magnetometer reads heading only: z = (θ). On its own it cannot
// reconstruct the state (position is unobservable) — the paper's §VI
// example of a sensor that must be grouped to serve as a reference.
type Magnetometer struct {
	// Sigma is the heading noise standard deviation in radians.
	Sigma float64
	// NStates is the robot state dimension.
	NStates int

	consts sensorConsts
}

var _ Sensor = (*Magnetometer)(nil)

// NewMagnetometer returns a magnetometer for the given state dimension.
func NewMagnetometer(nStates int) *Magnetometer {
	return &Magnetometer{Sigma: 0.01, NStates: nStates}
}

// Name implements Sensor.
func (s *Magnetometer) Name() string { return "magnetometer" }

// Dim implements Sensor.
func (s *Magnetometer) Dim() int { return 1 }

// H implements Sensor.
func (s *Magnetometer) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 3)
	return mat.VecOf(x[2])
}

// HInto implements HIntoer.
func (s *Magnetometer) HInto(dst mat.Vec, x mat.Vec) {
	mustStateLen(s.Name(), x, 3)
	dst[0] = x[2]
}

// C implements Sensor. The Jacobian is state-independent and cached.
func (s *Magnetometer) C(x mat.Vec) *mat.Mat {
	if m := s.consts.c.Load(); m != nil {
		return m
	}
	c := mat.New(1, s.NStates)
	c.Set(0, 2, 1)
	return cacheMat(&s.consts.c, c)
}

// R implements Sensor.
func (s *Magnetometer) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	return cacheMat(&s.consts.r, mat.Diag(s.Sigma*s.Sigma))
}

// AngleIndices implements Sensor.
func (s *Magnetometer) AngleIndices() []int {
	if v := s.consts.angles.Load(); v != nil {
		return *v
	}
	return cacheInts(&s.consts.angles, []int{0})
}

// IMU models the Tamiya's inertial unit as processed by its navigation
// workflow: heading and longitudinal speed, z = (θ, v). It requires the
// bicycle state layout (v at index 3). Alone it cannot observe position —
// used to exercise the §VI observability check.
type IMU struct {
	// SigmaTheta is the heading noise standard deviation in radians.
	SigmaTheta float64
	// SigmaV is the speed noise standard deviation in m/s.
	SigmaV float64
	// NStates is the robot state dimension (must be ≥ 4).
	NStates int

	consts sensorConsts
}

var _ Sensor = (*IMU)(nil)

// NewIMU returns an IMU for the bicycle model.
func NewIMU() *IMU {
	return &IMU{SigmaTheta: 0.004, SigmaV: 0.008, NStates: 4}
}

// Name implements Sensor.
func (s *IMU) Name() string { return "imu" }

// Dim implements Sensor.
func (s *IMU) Dim() int { return 2 }

// H implements Sensor.
func (s *IMU) H(x mat.Vec) mat.Vec {
	mustStateLen(s.Name(), x, 4)
	return mat.VecOf(x[2], x[3])
}

// HInto implements HIntoer.
func (s *IMU) HInto(dst mat.Vec, x mat.Vec) {
	mustStateLen(s.Name(), x, 4)
	dst[0], dst[1] = x[2], x[3]
}

// C implements Sensor. The Jacobian is state-independent and cached.
func (s *IMU) C(x mat.Vec) *mat.Mat {
	if m := s.consts.c.Load(); m != nil {
		return m
	}
	c := mat.New(2, s.NStates)
	c.Set(0, 2, 1)
	c.Set(1, 3, 1)
	return cacheMat(&s.consts.c, c)
}

// R implements Sensor.
func (s *IMU) R() *mat.Mat {
	if m := s.consts.r.Load(); m != nil {
		return m
	}
	return cacheMat(&s.consts.r, mat.Diag(s.SigmaTheta*s.SigmaTheta, s.SigmaV*s.SigmaV))
}

// AngleIndices implements Sensor.
func (s *IMU) AngleIndices() []int {
	if v := s.consts.angles.Load(); v != nil {
		return *v
	}
	return cacheInts(&s.consts.angles, []int{0})
}
