package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/metrics"
	"roboads/internal/sim"
)

// Table2Row is one scenario's aggregated detection results (Table II,
// right half).
type Table2Row struct {
	// ID and Name identify the scenario.
	ID   int
	Name string
	// Description is the attack summary (left half of Table II).
	Description string
	// SensorResult is the confirmed sensor-condition transition
	// sequence, e.g. "S0→2→4".
	SensorResult string
	// ActuatorResult is the actuator transition sequence, e.g. "A0→1".
	ActuatorResult string
	// DelaySeconds maps each attacked workflow ("actuator" for actuator
	// attacks) to the mean detection delay in seconds (−1 = missed).
	DelaySeconds map[string]float64
	// SensorFPR/FNR and ActuatorFPR/FNR aggregate the per-iteration
	// confusions over all trials.
	SensorFPR, SensorFNR     float64
	ActuatorFPR, ActuatorFNR float64
	// Trials is the number of missions aggregated.
	Trials int
}

// Table2Result is the complete reproduction of Table II.
type Table2Result struct {
	// Rows holds one entry per scenario, ordered by ID.
	Rows []Table2Row
	// AvgSensorFPR etc. are the cross-scenario averages quoted in §V-C
	// (paper: 0.86% / 0.97% average FPR/FNR, delays 0.35s sensor,
	// 0.61s actuator).
	AvgFPR, AvgFNR                         float64
	AvgSensorDelaySec, AvgActuatorDelaySec float64
}

// Table2 reproduces Table II: every Khepera scenario is run `trials`
// times and the detection results aggregated.
func Table2(trials int, baseSeed int64) (*Table2Result, error) {
	return table2With(trials, baseSeed, KheperaDetector)
}

func table2With(trials int, baseSeed int64,
	build func(*sim.KheperaSetup, detect.Config) (*detect.Detector, error)) (*Table2Result, error) {
	if trials < 1 {
		trials = 1
	}
	cfg := detect.DefaultConfig()
	out := &Table2Result{}
	var totalS, totalA metrics.Confusion
	var sensorDelays, actuatorDelays []metrics.Delay

	for _, scenario := range attack.KheperaScenarios() {
		row := Table2Row{
			ID:           scenario.ID,
			Name:         scenario.Name,
			Description:  scenario.Description,
			DelaySeconds: make(map[string]float64),
			Trials:       trials,
		}
		var sc, ac metrics.Confusion
		delayAcc := make(map[string][]metrics.Delay)
		var sensorSeq, actuatorSeq string

		for trial := 0; trial < trials; trial++ {
			run, err := RunKheperaScenario(scenario, baseSeed+int64(trial), cfg, build)
			if err != nil {
				return nil, err
			}
			sc.Merge(run.SensorConfusion())
			ac.Merge(run.ActuatorConfusion())
			for target, d := range run.SensorDelays() {
				delayAcc[target] = append(delayAcc[target], d)
				sensorDelays = append(sensorDelays, d)
			}
			if d, ok := run.ActuatorDelay(); ok {
				delayAcc["actuator"] = append(delayAcc["actuator"], d)
				actuatorDelays = append(actuatorDelays, d)
			}
			if trial == 0 {
				sensorSeq = arrowJoin(run.SensorCodeSequence(3))
				actuatorSeq = arrowJoin(run.ActuatorCodeSequence(3))
			}
		}

		row.SensorResult = sensorSeq
		row.ActuatorResult = actuatorSeq
		row.SensorFPR, row.SensorFNR = sc.FPR(), sc.FNR()
		row.ActuatorFPR, row.ActuatorFNR = ac.FPR(), ac.FNR()
		for target, ds := range delayAcc {
			row.DelaySeconds[target] = metrics.MeanDelaySeconds(ds, sim.KheperaDt)
		}
		out.Rows = append(out.Rows, row)
		totalS.Merge(sc)
		totalA.Merge(ac)
	}
	var merged metrics.Confusion
	merged.Merge(totalS)
	merged.Merge(totalA)
	out.AvgFPR = merged.FPR()
	out.AvgFNR = merged.FNR()
	out.AvgSensorDelaySec = metrics.MeanDelaySeconds(sensorDelays, sim.KheperaDt)
	out.AvgActuatorDelaySec = metrics.MeanDelaySeconds(actuatorDelays, sim.KheperaDt)
	return out, nil
}

// arrowJoin renders ["S0","S2","S4"] as "S0→2→4" (the paper's notation).
func arrowJoin(codes []string) string {
	if len(codes) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(codes[0])
	for _, c := range codes[1:] {
		sb.WriteString("→")
		// Strip the leading letter for the paper's compact form.
		sb.WriteString(strings.TrimLeft(c, "SA"))
	}
	return sb.String()
}

// Write renders the table in the paper's layout.
func (t *Table2Result) Write(w io.Writer) {
	fmt.Fprintf(w, "%-3s %-38s %-14s %-22s %-28s %s\n",
		"#", "Scenario", "Result", "Delay (s)", "Sensor FPR/FNR", "Actuator FPR/FNR")
	for _, row := range t.Rows {
		result := row.SensorResult
		if row.ActuatorResult != "" && row.ActuatorResult != "A0" {
			if result != "" && result != "S0" {
				result += " " + row.ActuatorResult
			} else {
				result = row.ActuatorResult
			}
		}
		fmt.Fprintf(w, "%-3d %-38s %-14s %-22s %-28s %s\n",
			row.ID, truncate(row.Name, 38), result,
			formatDelays(row.DelaySeconds),
			fmt.Sprintf("%.2f%% / %.2f%%", 100*row.SensorFPR, 100*row.SensorFNR),
			fmt.Sprintf("%.2f%% / %.2f%%", 100*row.ActuatorFPR, 100*row.ActuatorFNR))
	}
	fmt.Fprintf(w, "\naverage FPR %.2f%%  average FNR %.2f%%  (paper: 0.86%% / 0.97%%)\n",
		100*t.AvgFPR, 100*t.AvgFNR)
	fmt.Fprintf(w, "average delay: sensor %.2fs, actuator %.2fs  (paper: 0.35s / 0.61s)\n",
		t.AvgSensorDelaySec, t.AvgActuatorDelaySec)
}

func formatDelays(delays map[string]float64) string {
	keys := make([]string, 0, len(delays))
	for k := range delays {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%.2f", shortName(k), delays[k]))
	}
	return strings.Join(parts, " ")
}

func shortName(workflow string) string {
	switch workflow {
	case detect.SensorIPS:
		return "I"
	case detect.SensorWheelEncoder:
		return "W"
	case detect.SensorLidar:
		return "L"
	case "actuator":
		return "A"
	default:
		return workflow
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
