package eval

import (
	"fmt"
	"reflect"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sim"
)

// batchWidths is the K sweep of the batched-vs-scalar property test.
// Scenarios rotate through it so the suite collectively covers a batch
// of one (the degenerate width), small widths, and a width past any
// plausible coalescing cap, while each scenario stays affordable.
var batchWidths = [4]int{1, 2, 7, 64}

// runBatchScenario asserts the batched stepping correctness bar for one
// scenario: K same-profile detectors stepped in lockstep through one
// DetectorBatch must each produce, at every frame, observations
// bit-for-bit identical to a lone scalar detector fed the same frames —
// decisions (and through them the Table II condition codes), selected
// estimates, anomaly vectors, and mode weights (the normalized
// likelihoods). Frames are identical across slots, so any cross-session
// leakage inside the blocked kernels would still surface as divergence
// against the scalar reference.
func runBatchScenario(t *testing.T, frames []checkpointFrame, build func() *detect.Detector, k int) {
	t.Helper()
	if len(frames) == 0 {
		t.Fatal("no frames recorded")
	}
	ref := stepObs(t, build(), frames, 0, len(frames))

	dets := make([]*detect.Detector, k)
	for s := range dets {
		dets[s] = build()
	}
	db, err := detect.NewDetectorBatch(dets[0], k)
	if err != nil {
		t.Fatalf("batch workspace: %v", err)
	}
	if got := db.Capacity(); got != k {
		t.Fatalf("capacity = %d, want %d", got, k)
	}
	for s := 1; s < k; s++ {
		if dets[s].BatchKey() != db.Key() {
			t.Fatalf("slot %d batch key %x differs from prototype %x", s, dets[s].BatchKey(), db.Key())
		}
	}

	us := make([]mat.Vec, k)
	readings := make([]map[string]mat.Vec, k)
	for f, frame := range frames {
		for s := 0; s < k; s++ {
			us[s] = frame.u
			readings[s] = frame.readings
		}
		reps, errs := db.Step(dets, us, readings)
		for s := 0; s < k; s++ {
			if errs[s] != nil {
				t.Fatalf("frame %d slot %d: %v", f, s, errs[s])
			}
			if got := obsOf(reps[s]); !reflect.DeepEqual(got, ref[f]) {
				t.Fatalf("frame %d slot %d diverged from scalar (decision %+v vs %+v)",
					f, s, got.Decision, ref[f].Decision)
			}
		}
	}
}

// batchFrameBudget bounds the widest sweeps: K=64 multiplies every
// frame by 64 detector steps, so it runs on a truncated mission while
// the narrow widths cover the full one (attack windows included).
func batchFrameBudget(frames []checkpointFrame, k int) []checkpointFrame {
	if k >= 64 && len(frames) > 250 {
		return frames[:250]
	}
	return frames
}

// TestBatchedStepKheperaScenarios sweeps every Table II scenario (plus
// the clean mission) through batched-vs-scalar stepping. The batch
// width rotates across K ∈ {1, 2, 7, 64} per scenario so the sweep
// covers every width without multiplying every mission by every K.
func TestBatchedStepKheperaScenarios(t *testing.T) {
	scenarios := append([]attack.Scenario{attack.CleanScenario()}, attack.KheperaScenarios()...)
	for i, scenario := range scenarios {
		scenario := scenario
		k := batchWidths[i%len(batchWidths)]
		t.Run(fmt.Sprintf("s%02d_%s_k%d", scenario.ID, scenario.Name, k), func(t *testing.T) {
			t.Parallel()
			seed := int64(1200 + i)
			frames := batchFrameBudget(recordKheperaFrames(t, scenario, seed), k)
			build := func() *detect.Detector {
				setup, err := sim.NewKhepera(sim.LabMission(), &scenario, seed)
				if err != nil {
					t.Fatal(err)
				}
				det, err := KheperaDetector(setup, detect.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return det
			}
			runBatchScenario(t, frames, build, k)
		})
	}
}

// TestBatchedStepTamiyaScenarios is the bicycle-model counterpart: the
// grouped-reference mode set, the standstill EKF degrade (DaValid), and
// the state-dependent Jacobians must all batch bit-for-bit too.
func TestBatchedStepTamiyaScenarios(t *testing.T) {
	for i, scenario := range attack.TamiyaScenarios() {
		scenario := scenario
		k := batchWidths[i%len(batchWidths)]
		t.Run(fmt.Sprintf("s%03d_%s_k%d", scenario.ID, scenario.Name, k), func(t *testing.T) {
			t.Parallel()
			seed := int64(1250 + i)
			frames := batchFrameBudget(recordTamiyaFrames(t, scenario, seed), k)
			build := func() *detect.Detector {
				setup, err := sim.NewTamiya(sim.LabMission(), &scenario, seed)
				if err != nil {
					t.Fatal(err)
				}
				det, err := TamiyaDetector(setup, detect.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return det
			}
			runBatchScenario(t, frames, build, k)
		})
	}
}

// TestBatchedStepMixedProfiles pins the heterogeneous-slot fallback: a
// batch shaped for the Khepera profile fed one Khepera and one Tamiya
// detector must route the mismatched slot through its own scalar path,
// leaving both report streams bit-for-bit intact.
func TestBatchedStepMixedProfiles(t *testing.T) {
	clean := attack.CleanScenario()
	kFrames := recordKheperaFrames(t, clean, 77)[:60]
	tFrames := recordTamiyaFrames(t, clean, 77)[:60]

	buildK := func() *detect.Detector {
		setup, err := sim.NewKhepera(sim.LabMission(), &clean, 77)
		if err != nil {
			t.Fatal(err)
		}
		det, err := KheperaDetector(setup, detect.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	buildT := func() *detect.Detector {
		setup, err := sim.NewTamiya(sim.LabMission(), &clean, 77)
		if err != nil {
			t.Fatal(err)
		}
		det, err := TamiyaDetector(setup, detect.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	refK := stepObs(t, buildK(), kFrames, 0, len(kFrames))
	refT := stepObs(t, buildT(), tFrames, 0, len(tFrames))

	kd, td := buildK(), buildT()
	if kd.BatchKey() == td.BatchKey() {
		t.Fatal("khepera and tamiya detectors share a batch key")
	}
	db, err := detect.NewDetectorBatch(kd, 2)
	if err != nil {
		t.Fatalf("batch workspace: %v", err)
	}
	for f := range kFrames {
		reps, errs := db.Step(
			[]*detect.Detector{kd, td},
			[]mat.Vec{kFrames[f].u, tFrames[f].u},
			[]map[string]mat.Vec{kFrames[f].readings, tFrames[f].readings})
		for s, err := range errs {
			if err != nil {
				t.Fatalf("frame %d slot %d: %v", f, s, err)
			}
		}
		if got := obsOf(reps[0]); !reflect.DeepEqual(got, refK[f]) {
			t.Fatalf("frame %d: batched khepera slot diverged", f)
		}
		if got := obsOf(reps[1]); !reflect.DeepEqual(got, refT[f]) {
			t.Fatalf("frame %d: scalar-fallback tamiya slot diverged", f)
		}
	}
}
