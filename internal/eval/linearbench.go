package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/metrics"
)

// LinearBenchResult reproduces §V-G: the Table II scenario suite run
// under the representative linear-system approach [20], where the robot
// model and measurement functions are linearized once at mission start.
// The frozen model's error grows as the robot maneuvers, so the baseline
// floods with false positives (paper: 61.68% FPR, no false negatives)
// while RoboADS's per-iteration relinearization stays accurate.
type LinearBenchResult struct {
	// LinearSensorFPR/FNR aggregate the baseline's sensor-side confusion
	// over all scenarios and trials.
	LinearSensorFPR, LinearSensorFNR float64
	// LinearActuatorFPR/FNR are the actuator-side rates.
	LinearActuatorFPR, LinearActuatorFNR float64
	// RoboADSSensorFPR etc. are the same workload under RoboADS for
	// comparison.
	RoboADSSensorFPR, RoboADSSensorFNR     float64
	RoboADSActuatorFPR, RoboADSActuatorFNR float64
}

// LinearBench runs the Table II workload under both detectors.
func LinearBench(trials int, baseSeed int64) (*LinearBenchResult, error) {
	if trials < 1 {
		trials = 1
	}
	cfg := detect.DefaultConfig()
	scenarios := append([]attack.Scenario{attack.CleanScenario()}, attack.KheperaScenarios()...)

	var linS, linA, adsS, adsA metrics.Confusion
	for trial := 0; trial < trials; trial++ {
		seed := baseSeed + int64(trial)
		for _, sc := range scenarios {
			linRun, err := RunKheperaScenario(sc, seed, cfg, LinearKheperaDetector)
			if err != nil {
				return nil, fmt.Errorf("linear baseline: %w", err)
			}
			linS.Merge(linRun.SensorConfusion())
			linA.Merge(linRun.ActuatorConfusion())

			adsRun, err := RunKheperaScenario(sc, seed, cfg, KheperaDetector)
			if err != nil {
				return nil, err
			}
			adsS.Merge(adsRun.SensorConfusion())
			adsA.Merge(adsRun.ActuatorConfusion())
		}
	}
	return &LinearBenchResult{
		LinearSensorFPR:    linS.FPR(),
		LinearSensorFNR:    linS.FNR(),
		LinearActuatorFPR:  linA.FPR(),
		LinearActuatorFNR:  linA.FNR(),
		RoboADSSensorFPR:   adsS.FPR(),
		RoboADSSensorFNR:   adsS.FNR(),
		RoboADSActuatorFPR: adsA.FPR(),
		RoboADSActuatorFNR: adsA.FNR(),
	}, nil
}

// Write renders the comparison.
func (l *LinearBenchResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Benchmark against the once-linearized approach [20] (§V-G)")
	fmt.Fprintf(w, "%-22s %-18s %-18s %-18s %s\n",
		"detector", "sensor FPR", "sensor FNR", "actuator FPR", "actuator FNR")
	fmt.Fprintf(w, "%-22s %-18s %-18s %-18s %s\n", "linear [20]",
		pct(l.LinearSensorFPR), pct(l.LinearSensorFNR),
		pct(l.LinearActuatorFPR), pct(l.LinearActuatorFNR))
	fmt.Fprintf(w, "%-22s %-18s %-18s %-18s %s\n", "RoboADS",
		pct(l.RoboADSSensorFPR), pct(l.RoboADSSensorFNR),
		pct(l.RoboADSActuatorFPR), pct(l.RoboADSActuatorFNR))
	fmt.Fprintln(w, "\npaper: linear approach 61.68% FPR with no false negatives")
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
