package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/sim"
)

// Table4Row is one sensor setting's actuator anomaly estimate variance
// (Table IV).
type Table4Row struct {
	// Setting names the reference sensor set ("IPS", "Wheel encoder",
	// "LiDAR", "All 3 sensors").
	Setting string
	// VarVl and VarVr are the mean estimation variances of the actuator
	// anomaly components (left/right wheel), averaged over the mission.
	VarVl, VarVr float64
}

// Table4Result reproduces Table IV: actuator anomaly vector variance
// under different sensor settings. The paper's ordering — IPS < wheel
// encoder ≪ LiDAR, and all-three below every single sensor — follows
// from the sensor noise floors and the fusion variance reduction of
// §V-E.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 runs a clean mission and measures the analytic covariance Pa of
// the actuator anomaly estimate for each reference setting.
func Table4(seed int64) (*Table4Result, error) {
	clean := attack.CleanScenario()
	setup, err := sim.NewKhepera(sim.LabMission(), &clean, seed)
	if err != nil {
		return nil, err
	}
	records, err := setup.Sim.Run(MaxIterations)
	if err != nil {
		return nil, err
	}

	ips, we, lidar := setup.Suite[0], setup.Suite[1], setup.Suite[2]
	settings := []struct {
		name string
		refs []sensors.Sensor
	}{
		{"IPS", []sensors.Sensor{ips}},
		{"Wheel encoder", []sensors.Sensor{we}},
		{"LiDAR", []sensors.Sensor{lidar}},
		{"All 3 sensors", []sensors.Sensor{ips, we, lidar}},
	}

	plant := core.Plant{
		Model:       setup.Model,
		Q:           diagFromStd(setup.ProcessStd),
		AngleStates: []int{2},
		UMax:        KheperaUMax(),
	}

	out := &Table4Result{}
	for _, setting := range settings {
		mode, err := core.NewMode(setting.refs, nil)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(setting.refs))
		for i, s := range setting.refs {
			names[i] = s.Name()
		}

		x := setup.X0.Clone()
		px := initialP(3)
		var sumVl, sumVr float64
		n := 0
		for _, rec := range records {
			var z2 mat.Vec
			for _, name := range names {
				z2 = append(z2, rec.Readings[name]...)
			}
			res, err := core.NUISE(plant, mode.Reference, nil, rec.UPlanned, x, px, nil, z2)
			if err != nil {
				return nil, fmt.Errorf("table4 %s k=%d: %w", setting.name, rec.K, err)
			}
			x, px = res.X, res.Px
			// Skip the initial covariance transient.
			if rec.K >= 20 {
				sumVl += res.Pa.At(0, 0)
				sumVr += res.Pa.At(1, 1)
				n++
			}
		}
		out.Rows = append(out.Rows, Table4Row{
			Setting: setting.name,
			VarVl:   sumVl / float64(n),
			VarVr:   sumVr / float64(n),
		})
	}
	return out, nil
}

// Write renders the table in the paper's layout.
func (t *Table4Result) Write(w io.Writer) {
	fmt.Fprintf(w, "%-16s %-18s %s\n", "Sensor setting", "Var on Vl (m/s)²", "Var on Vr (m/s)²")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-16s %-18.3g %.3g\n", row.Setting, row.VarVl, row.VarVr)
	}
	fmt.Fprintln(w, "\npaper (×10⁻⁵, speed-unit scale): IPS 2.39/1.94, encoder 2.76/2.04, LiDAR 21.7/20.3, all-3 2.32/1.88")
	fmt.Fprintln(w, "expected shape: LiDAR ≫ encoder > IPS, and all-3 < every single sensor")
}

// Shape checks the paper's qualitative claims; it returns nil when the
// ordering holds.
func (t *Table4Result) Shape() error {
	byName := make(map[string]Table4Row, len(t.Rows))
	for _, r := range t.Rows {
		byName[r.Setting] = r
	}
	ips, we, lidar, all := byName["IPS"], byName["Wheel encoder"], byName["LiDAR"], byName["All 3 sensors"]
	if !(lidar.VarVl > we.VarVl && we.VarVl > ips.VarVl) {
		return fmt.Errorf("table4: single-sensor ordering violated: lidar %.3g, we %.3g, ips %.3g",
			lidar.VarVl, we.VarVl, ips.VarVl)
	}
	if !(all.VarVl < ips.VarVl && all.VarVl < we.VarVl && all.VarVl < lidar.VarVl) {
		return fmt.Errorf("table4: fusion variance %.3g not below singles", all.VarVl)
	}
	if !(all.VarVr < ips.VarVr && all.VarVr < we.VarVr && all.VarVr < lidar.VarVr) {
		return fmt.Errorf("table4: fusion Vr variance %.3g not below singles", all.VarVr)
	}
	return nil
}
