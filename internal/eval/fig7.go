package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/metrics"
	"roboads/internal/stat"
)

// Fig7WindowSettings are the c/w pairs plotted in Fig. 7(a,b).
var Fig7WindowSettings = []struct{ C, W int }{
	{1, 1}, {3, 3}, {6, 6},
}

// Fig7Alphas is the confidence-level sweep of §V-F
// (α = 0.0005 ∼ 0.995).
var Fig7Alphas = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2,
	0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.995,
}

// Fig7Curve is one c/w setting's ROC curve.
type Fig7Curve struct {
	// C and W are the window criteria and size.
	C, W int
	// Points are the (α, FPR, TPR) operating points, sorted by FPR.
	Points []metrics.ROCPoint
	// AUC is the area under the curve.
	AUC float64
}

// Fig7ROCResult reproduces Fig. 7(a) or (b).
type Fig7ROCResult struct {
	// Side is "sensor" or "actuator".
	Side string
	// Curves holds one ROC per window setting.
	Curves []Fig7Curve
}

// Fig7F1Point is one (w, c) operating point of Fig. 7(c,d).
type Fig7F1Point struct {
	W, C int
	F1   float64
}

// Fig7F1Result reproduces Fig. 7(c) or (d).
type Fig7F1Result struct {
	// Side is "sensor" or "actuator".
	Side string
	// Alpha is the fixed confidence level.
	Alpha float64
	// Points cover the w/c grid.
	Points []Fig7F1Point
}

// Fig7Workload runs the mixed scenario workload once per seed and caches
// the traces: all eleven Table II scenarios plus a clean mission. The
// decision-parameter sweeps then re-threshold and re-window these traces
// offline, which is exact because the estimation engine does not depend
// on the decision parameters.
func Fig7Workload(trials int, baseSeed int64) ([]*Run, error) {
	scenarios := append([]attack.Scenario{attack.CleanScenario()}, attack.KheperaScenarios()...)
	cfg := detect.DefaultConfig()
	var runs []*Run
	for trial := 0; trial < trials; trial++ {
		for _, sc := range scenarios {
			run, err := RunKheperaScenario(sc, baseSeed+int64(trial), cfg, KheperaDetector)
			if err != nil {
				return nil, err
			}
			runs = append(runs, run)
		}
	}
	return runs, nil
}

// reEvaluate computes the binary detection confusion over the cached
// traces at decision parameters (alpha, w, c). sensorSide selects the
// sensor or actuator statistic.
func reEvaluate(runs []*Run, alpha float64, w, c int, sensorSide bool) (metrics.Confusion, error) {
	var conf metrics.Confusion
	quantiles := make(map[int]float64)
	threshold := func(dof int) (float64, error) {
		if t, ok := quantiles[dof]; ok {
			return t, nil
		}
		t, err := stat.ChiSquareQuantile(alpha, dof)
		if err != nil {
			return 0, err
		}
		quantiles[dof] = t
		return t, nil
	}

	for _, run := range runs {
		window := detect.NewSlidingWindow(w, c)
		for _, tr := range run.Trace {
			var statVal float64
			var dof int
			var truthPos bool
			if sensorSide {
				statVal, dof = tr.Decision.SensorStat, tr.SensorDof
				truthPos = len(tr.Truth.CorruptedSensors) > 0
			} else {
				if !tr.DaValid {
					continue // detector abstained; no decision to score
				}
				statVal, dof = tr.Decision.ActuatorStat, tr.ActuatorDof
				truthPos = tr.Truth.ActuatorCorrupted
			}
			raw := false
			if dof > 0 {
				t, err := threshold(dof)
				if err != nil {
					return conf, err
				}
				raw = statVal > t
			}
			alarm := window.Push(raw)
			conf.Add(truthPos, alarm, true)
		}
	}
	return conf, nil
}

// Fig7ROC reproduces Fig. 7(a) (sensorSide=true) or 7(b): the ROC of
// misbehavior detection across the confidence-level sweep for each
// window setting.
func Fig7ROC(runs []*Run, sensorSide bool) (*Fig7ROCResult, error) {
	out := &Fig7ROCResult{Side: sideName(sensorSide)}
	for _, setting := range Fig7WindowSettings {
		curve := Fig7Curve{C: setting.C, W: setting.W}
		for _, alpha := range Fig7Alphas {
			conf, err := reEvaluate(runs, alpha, setting.W, setting.C, sensorSide)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, metrics.ROCPoint{
				Alpha: alpha,
				FPR:   conf.FPR(),
				TPR:   conf.TPR(),
			})
		}
		curve.Points = metrics.SortROC(curve.Points)
		curve.AUC = metrics.AUC(curve.Points)
		out.Curves = append(out.Curves, curve)
	}
	return out, nil
}

// Fig7F1 reproduces Fig. 7(c) (sensor, α=0.005, w,c = 1..6) or 7(d)
// (actuator, α=0.05, w,c = 1..7).
func Fig7F1(runs []*Run, sensorSide bool) (*Fig7F1Result, error) {
	alpha, maxW := 0.005, 6
	if !sensorSide {
		alpha, maxW = 0.05, 7
	}
	out := &Fig7F1Result{Side: sideName(sensorSide), Alpha: alpha}
	for w := 1; w <= maxW; w++ {
		for c := 1; c <= w; c++ {
			conf, err := reEvaluate(runs, alpha, w, c, sensorSide)
			if err != nil {
				return nil, err
			}
			out.Points = append(out.Points, Fig7F1Point{W: w, C: c, F1: conf.F1()})
		}
	}
	return out, nil
}

func sideName(sensorSide bool) string {
	if sensorSide {
		return "sensor"
	}
	return "actuator"
}

// Write renders the ROC curves as aligned columns.
func (f *Fig7ROCResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig 7 ROC — %s misbehavior detection\n", f.Side)
	for _, curve := range f.Curves {
		fmt.Fprintf(w, "c/w = %d/%d  (AUC %.4f)\n", curve.C, curve.W, curve.AUC)
		fmt.Fprintf(w, "  %-8s %-8s %s\n", "alpha", "FPR", "TPR")
		for _, p := range curve.Points {
			fmt.Fprintf(w, "  %-8.4g %-8.4f %.4f\n", p.Alpha, p.FPR, p.TPR)
		}
	}
}

// Write renders the F1 grid.
func (f *Fig7F1Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig 7 F1 — %s misbehavior detection (alpha=%.3g)\n", f.Side, f.Alpha)
	fmt.Fprintf(w, "  %-4s %-4s %s\n", "w", "c", "F1")
	for _, p := range f.Points {
		fmt.Fprintf(w, "  %-4d %-4d %.4f\n", p.W, p.C, p.F1)
	}
}

// Best returns the (w, c) with the highest F1.
func (f *Fig7F1Result) Best() Fig7F1Point {
	best := Fig7F1Point{F1: -1}
	for _, p := range f.Points {
		if p.F1 > best.F1 {
			best = p
		}
	}
	return best
}
