package eval

import (
	"roboads/internal/robot"
	"roboads/internal/sim"
)

// Profile is the per-platform detector construction surface; it now
// lives in internal/robot so the scenario engine can build detectors
// without importing the evaluation harness. The alias (and the thin
// wrappers below) keep every historical eval.Profile call site — fleet
// session construction, the CLI, the facade — compiling unchanged.
type Profile = robot.Profile

// KheperaProfile is the differential-drive platform of §V-A as assembled
// by a simulator setup. See robot.Khepera.
func KheperaProfile(setup *sim.KheperaSetup) Profile { return robot.Khepera(setup) }

// TamiyaProfile is the RC-car platform of §V-D as assembled by a
// simulator setup. See robot.Tamiya.
func TamiyaProfile(setup *sim.TamiyaSetup) Profile { return robot.Tamiya(setup) }

// RobotProfile builds a standalone profile for a named platform with no
// simulator attached. See robot.Named.
func RobotProfile(name string) (Profile, error) { return robot.Named(name) }
