package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/mat"
)

// expectedTable2 lists the paper's Table II identification sequences.
var expectedTable2 = map[int]struct {
	sensor   string
	actuator string
}{
	1:  {"S0", "A0→1"},
	2:  {"S0", "A0→1"},
	3:  {"S0→1", "A0"},
	4:  {"S0→1", "A0"},
	5:  {"S0→2", "A0"},
	6:  {"S0→3", "A0"},
	7:  {"S0→3", "A0"},
	8:  {"S0→1", "A0→1"},
	9:  {"S0→2→4", "A0"},
	10: {"S0→3→5→1", "A0"},
	11: {"S0→2→6", "A0"},
}

func TestTable2ReproducesPaper(t *testing.T) {
	result, err := Table2(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 11 {
		t.Fatalf("rows = %d", len(result.Rows))
	}
	for _, row := range result.Rows {
		want := expectedTable2[row.ID]
		// The transition sequence must land on the paper's final
		// condition; transient inserts are tolerated but the paper
		// sequence should be reproduced on this seed.
		if row.SensorResult != want.sensor {
			t.Errorf("#%d sensor sequence = %q, want %q", row.ID, row.SensorResult, want.sensor)
		}
		wantActuator := want.actuator
		if wantActuator == "A0" {
			// Brief actuator false alarms may extend the sequence; only
			// require that no persistent A1 is reported.
			if strings.HasSuffix(row.ActuatorResult, "→1") && row.ActuatorFPR > 0.1 {
				t.Errorf("#%d actuator sequence = %q with FPR %.1f%%", row.ID, row.ActuatorResult, 100*row.ActuatorFPR)
			}
		} else if row.ActuatorResult != wantActuator {
			t.Errorf("#%d actuator sequence = %q, want %q", row.ID, row.ActuatorResult, wantActuator)
		}
		if row.SensorFPR > 0.10 {
			t.Errorf("#%d sensor FPR %.2f%% exceeds 10%%", row.ID, 100*row.SensorFPR)
		}
		if row.SensorFNR > 0.05 {
			t.Errorf("#%d sensor FNR %.2f%% exceeds 5%%", row.ID, 100*row.SensorFNR)
		}
		if row.ActuatorFNR > 0.05 {
			t.Errorf("#%d actuator FNR %.2f%% exceeds 5%%", row.ID, 100*row.ActuatorFNR)
		}
		for target, delay := range row.DelaySeconds {
			if delay < 0 || delay > 2.0 {
				t.Errorf("#%d delay[%s] = %.2fs", row.ID, target, delay)
			}
		}
	}
	// §V-C headline numbers: <3% FPR, <1% FNR on average (we allow a
	// small margin for the simulated substrate).
	if result.AvgFPR > 0.03 {
		t.Errorf("average FPR %.2f%% exceeds 3%%", 100*result.AvgFPR)
	}
	if result.AvgFNR > 0.02 {
		t.Errorf("average FNR %.2f%% exceeds 2%%", 100*result.AvgFNR)
	}
	if result.AvgSensorDelaySec > 1.0 || result.AvgActuatorDelaySec > 1.0 {
		t.Errorf("average delays %.2fs / %.2fs exceed 1s",
			result.AvgSensorDelaySec, result.AvgActuatorDelaySec)
	}
}

func TestTable4Shape(t *testing.T) {
	result, err := Table4(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := result.Shape(); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Series(t *testing.T) {
	result, err := Fig6(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Points) < 100 {
		t.Fatalf("series too short: %d points", len(result.Points))
	}
	// After the IPS attack onset (6 s) the IPS anomaly estimate's
	// x-component should hover near +0.07 m (the paper's ±0.002 band on
	// a real robot; we allow the simulated noise floor).
	var sum float64
	n := 0
	for _, p := range result.Points {
		if p.TimeSec > 8 && p.TimeSec < 11 {
			sum += p.DsIPS[0]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no points in the post-onset window")
	}
	if mean := sum / float64(n); math.Abs(mean-0.07) > 0.015 {
		t.Fatalf("mean d̂s(ips).x = %.4f, want ≈ 0.07", mean)
	}
	// After the actuator onset (12 s) the wheel anomaly estimates
	// should average near ∓0.04 m/s.
	var sumL, sumR float64
	n = 0
	for _, p := range result.Points {
		if p.TimeSec > 14 {
			sumL += p.Da[0]
			sumR += p.Da[1]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no points after actuator onset")
	}
	if meanL, meanR := sumL/float64(n), sumR/float64(n); math.Abs(meanL+0.04) > 0.02 || math.Abs(meanR-0.04) > 0.02 {
		t.Fatalf("mean d̂a = (%.4f, %.4f), want ≈ (−0.04, +0.04)", meanL, meanR)
	}
	// Modes: S1 (IPS) should dominate after the sensor onset, actuator
	// mode 1 after the actuator onset.
	s1, a1, post := 0, 0, 0
	for _, p := range result.Points {
		if p.TimeSec > 13 {
			post++
			if p.SensorMode == 1 {
				s1++
			}
			if p.ActuatorMode == 1 {
				a1++
			}
		}
	}
	if float64(s1)/float64(post) < 0.9 {
		t.Errorf("S1 fraction after both onsets = %.2f", float64(s1)/float64(post))
	}
	if float64(a1)/float64(post) < 0.9 {
		t.Errorf("A1 fraction after both onsets = %.2f", float64(a1)/float64(post))
	}
}

func TestFig7Sweeps(t *testing.T) {
	runs, err := Fig7Workload(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sensorSide := range []bool{true, false} {
		roc, err := Fig7ROC(runs, sensorSide)
		if err != nil {
			t.Fatal(err)
		}
		if len(roc.Curves) != len(Fig7WindowSettings) {
			t.Fatalf("curves = %d", len(roc.Curves))
		}
		for _, curve := range roc.Curves {
			if curve.AUC < 0.90 {
				t.Errorf("%s c/w=%d/%d AUC = %.3f, want ≥ 0.90 (paper's inset shows near-perfect ROC)",
					roc.Side, curve.C, curve.W, curve.AUC)
			}
			// TPR must be non-decreasing along the sorted curve within
			// tolerance (ROC sanity).
			for i := 1; i < len(curve.Points); i++ {
				if curve.Points[i].TPR < curve.Points[i-1].TPR-0.2 {
					t.Errorf("%s ROC not roughly monotone at %d", roc.Side, i)
				}
			}
		}
		f1, err := Fig7F1(runs, sensorSide)
		if err != nil {
			t.Fatal(err)
		}
		best := f1.Best()
		if best.F1 < 0.9 {
			t.Errorf("%s best F1 = %.3f at w=%d c=%d", f1.Side, best.F1, best.W, best.C)
		}
	}
}

func TestEvasiveThresholds(t *testing.T) {
	result, err := Evasive(3)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: stealthy IPS shifts stay under 0.02 m; ours should be of
	// the same order (noise floors differ).
	if result.MaxStealthyIPSMeters <= 0 || result.MaxStealthyIPSMeters > 0.02 {
		t.Errorf("max stealthy IPS shift = %.4f m, want in (0, 0.02]", result.MaxStealthyIPSMeters)
	}
	// Paper: stealthy actuator bias stays under 900 units.
	if result.MaxStealthyActuatorUnits <= 0 || result.MaxStealthyActuatorUnits > 900 {
		t.Errorf("max stealthy actuator bias = %.0f units, want in (0, 900]", result.MaxStealthyActuatorUnits)
	}
	// Large attacks must always be detected quickly.
	for _, p := range result.IPSSweep {
		if p.Magnitude >= 0.02 && !p.Detected {
			t.Errorf("IPS shift %.3f m undetected", p.Magnitude)
		}
	}
	for _, p := range result.ActuatorSweep {
		if p.Magnitude >= 900 && !p.Detected {
			t.Errorf("actuator bias %.0f units undetected", p.Magnitude)
		}
	}
}

func TestLinearBenchShape(t *testing.T) {
	result, err := LinearBench(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// §V-G: the once-linearized baseline floods with sensor false
	// positives (paper 61.68%) while detecting everything (FNR ≈ 0);
	// RoboADS stays accurate.
	if result.LinearSensorFPR < 0.3 {
		t.Errorf("linear baseline sensor FPR = %.2f%%, expected a flood", 100*result.LinearSensorFPR)
	}
	if result.LinearSensorFNR > 0.05 {
		t.Errorf("linear baseline sensor FNR = %.2f%%", 100*result.LinearSensorFNR)
	}
	if result.RoboADSSensorFPR > 0.05 {
		t.Errorf("RoboADS sensor FPR = %.2f%%", 100*result.RoboADSSensorFPR)
	}
	if result.LinearSensorFPR < 5*result.RoboADSSensorFPR {
		t.Errorf("baseline FPR %.2f%% not dominating RoboADS %.2f%%",
			100*result.LinearSensorFPR, 100*result.RoboADSSensorFPR)
	}
}

func TestTamiyaSuite(t *testing.T) {
	result, err := Tamiya(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 5 {
		t.Fatalf("rows = %d", len(result.Rows))
	}
	// Paper §V-D: 2.77% / 0.83% FPR/FNR, 0.33 s delay. The simulated
	// bicycle with leave-one-out modes gets the same order.
	if result.AvgFPR > 0.08 {
		t.Errorf("Tamiya average FPR %.2f%%", 100*result.AvgFPR)
	}
	if result.AvgFNR > 0.15 {
		t.Errorf("Tamiya average FNR %.2f%%", 100*result.AvgFNR)
	}
	if result.AvgDelaySec < 0 || result.AvgDelaySec > 1.0 {
		t.Errorf("Tamiya average delay %.2fs", result.AvgDelaySec)
	}
	// Sensor-side scenarios must identify their targets.
	for _, row := range result.Rows {
		if row.ID >= 103 && row.DelaySec < 0 {
			t.Errorf("#%d never detected", row.ID)
		}
	}
}

func TestRunnerHelpers(t *testing.T) {
	truth := attack.Truth{CorruptedSensors: map[string]bool{"ips": true}}
	if !TruthSensorsEqual(truth, []string{"ips"}) {
		t.Fatal("equal sets reported unequal")
	}
	if TruthSensorsEqual(truth, []string{"lidar"}) {
		t.Fatal("different sets reported equal")
	}
	if TruthSensorsEqual(truth, []string{"ips", "lidar"}) {
		t.Fatal("superset reported equal")
	}
	names := SortedSensorNames(map[string]bool{"z": true, "a": true})
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("SortedSensorNames = %v", names)
	}
}

func TestRunConfusionDefinitions(t *testing.T) {
	// A wrong identification while truth is positive must count FP, not
	// TP — the paper's strict definition.
	scenario := attack.KheperaScenarios()[2] // IPS logic bomb
	run, err := RunKheperaScenario(scenario, 42, detect.DefaultConfig(), KheperaDetector)
	if err != nil {
		t.Fatal(err)
	}
	c := run.SensorConfusion()
	if c.TP == 0 {
		t.Fatal("no true positives on a detectable scenario")
	}
	if c.TP+c.FP+c.FN+c.TN != len(run.Trace) {
		t.Fatal("confusion does not partition the trace")
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	result, err := RelatedWork(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("rows = %d", len(result.Rows))
	}
	byName := make(map[string]RelatedWorkRow, len(result.Rows))
	for _, row := range result.Rows {
		byName[row.Approach] = row
	}
	ads := byName["RoboADS"]
	lin := byName["linear model-based [20]"]
	learn := byName["learning-based [34-36]"]
	timeBased := byName["time-based [29-31]"]

	// RoboADS: high TPR on both sides, low FPR, identifies workflows.
	if ads.SensorTPR < 0.95 || ads.ActuatorTPR < 0.95 || ads.SensorFPR > 0.02 || !ads.Identifies {
		t.Errorf("RoboADS row: %+v", ads)
	}
	// Linear baseline floods with false positives (§V-G).
	if lin.SensorFPR < 0.3 {
		t.Errorf("linear baseline FPR = %.2f%%, expected a flood", 100*lin.SensorFPR)
	}
	// Learning-based sees sensor inconsistencies but no actuators and
	// cannot identify (§II-C critique).
	if learn.SensorTPR < 0.5 || learn.ActuatorTPR != 0 || learn.Identifies {
		t.Errorf("learning-based row: %+v", learn)
	}
	// Time-based is blind to content corruptions entirely.
	if timeBased.SensorTPR != 0 || timeBased.ActuatorTPR != 0 || timeBased.SensorFPR != 0 {
		t.Errorf("time-based row: %+v", timeBased)
	}
}

func TestTireBlowoutDetected(t *testing.T) {
	run, err := RunKheperaScenario(attack.TireBlowoutScenario(), 42, detect.DefaultConfig(), KheperaDetector)
	if err != nil {
		t.Fatal(err)
	}
	ac := run.ActuatorConfusion()
	if ac.TPR() < 0.9 {
		t.Fatalf("tire blowout actuator TPR = %.2f", ac.TPR())
	}
	if d, ok := run.ActuatorDelay(); !ok || d.Seconds(run.Dt) > 1.0 {
		t.Fatalf("tire blowout delay = %+v", d)
	}
}

func TestWriters(t *testing.T) {
	// Renderers must produce the key landmarks of each artifact.
	var buf strings.Builder

	t2, err := Table2(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	t2.Write(&buf)
	for _, want := range []string{"Wheel jamming", "S0→2→6", "average FPR"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table2 output missing %q", want)
		}
	}

	buf.Reset()
	t4, err := Table4(1)
	if err != nil {
		t.Fatal(err)
	}
	t4.Write(&buf)
	if !strings.Contains(buf.String(), "All 3 sensors") {
		t.Fatal("table4 output missing fusion row")
	}

	buf.Reset()
	f6, err := Fig6(42)
	if err != nil {
		t.Fatal(err)
	}
	f6.Write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(f6.Points)+1 {
		t.Fatalf("fig6 TSV rows = %d, want %d", len(lines), len(f6.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "time\tds_ips_x") {
		t.Fatalf("fig6 header = %q", lines[0])
	}

	buf.Reset()
	runs, err := Fig7Workload(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	roc, err := Fig7ROC(runs, true)
	if err != nil {
		t.Fatal(err)
	}
	roc.Write(&buf)
	if !strings.Contains(buf.String(), "AUC") {
		t.Fatal("fig7 ROC output missing AUC")
	}
	buf.Reset()
	f1, err := Fig7F1(runs, false)
	if err != nil {
		t.Fatal(err)
	}
	f1.Write(&buf)
	if !strings.Contains(buf.String(), "actuator") {
		t.Fatal("fig7 F1 output missing side")
	}

	buf.Reset()
	ev, err := Evasive(3)
	if err != nil {
		t.Fatal(err)
	}
	ev.Write(&buf)
	if !strings.Contains(buf.String(), "stealthy") {
		t.Fatal("evasive output missing summary")
	}

	buf.Reset()
	tm, err := Tamiya(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	tm.Write(&buf)
	if !strings.Contains(buf.String(), "Tamiya") {
		t.Fatal("tamiya output missing title")
	}

	buf.Reset()
	lb, err := LinearBench(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	lb.Write(&buf)
	if !strings.Contains(buf.String(), "61.68%") {
		t.Fatal("linear output missing paper reference")
	}

	buf.Reset()
	rel, err := RelatedWork(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	rel.Write(&buf)
	if !strings.Contains(buf.String(), "time-based") {
		t.Fatal("related output missing row")
	}
}

func TestReportMarkdown(t *testing.T) {
	var buf strings.Builder
	if err := Report(&buf, 1, 42); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# RoboADS reproduction report",
		"## Table II",
		"## Table IV",
		"## Fig. 7",
		"## §V-D",
		"## §V-G",
		"## §V-H",
		"## §II-C",
		"Shape check (LiDAR ≫ encoder > IPS, fusion below all): reproduced.",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestCalibrateRecoversPaperParameters(t *testing.T) {
	runs, err := Fig7Workload(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(runs)
	if err != nil {
		t.Fatal(err)
	}
	if cal.SensorF1 < 0.95 || cal.ActuatorF1 < 0.9 {
		t.Fatalf("calibration F1 = %.3f / %.3f", cal.SensorF1, cal.ActuatorF1)
	}
	// The calibrated configuration must actually be usable.
	run, err := RunKheperaScenario(attack.KheperaScenarios()[2], 99, cal.Config, KheperaDetector)
	if err != nil {
		t.Fatal(err)
	}
	if run.SensorConfusion().TPR() < 0.9 {
		t.Fatalf("calibrated config TPR = %.2f", run.SensorConfusion().TPR())
	}
	// Sanity on the selected windows.
	cfg := cal.Config
	if cfg.SensorWindow < 1 || cfg.SensorCriteria > cfg.SensorWindow ||
		cfg.ActuatorWindow < 1 || cfg.ActuatorCriteria > cfg.ActuatorWindow {
		t.Fatalf("calibrated config invalid: %+v", cfg)
	}
	if _, err := Calibrate(nil); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestSensorQualitySweep(t *testing.T) {
	result, err := SensorQuality(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Points) != len(QualityScales) {
		t.Fatalf("points = %d", len(result.Points))
	}
	if err := result.Shape(); err != nil {
		t.Fatal(err)
	}
	// Quadratic-ish scaling: 4× noise should give ≳4× variance.
	first, last := result.Points[1], result.Points[3] // scales 1 and 4
	if last.VarVl < 4*first.VarVl {
		t.Fatalf("variance scaling too weak: ×1 → %.3g, ×4 → %.3g", first.VarVl, last.VarVl)
	}
	var buf strings.Builder
	result.Write(&buf)
	if !strings.Contains(buf.String(), "Sensor quality sweep") {
		t.Fatal("quality output missing title")
	}
}

// The §V-H adaptive attacker: a slow ramp buys stealth time but the
// magnitude at first detection stays inside the same envelope regardless
// of ramp rate — the attacker cannot trade patience for impact.
func TestStealthRampBoundedImpact(t *testing.T) {
	rates := []float64{0.0005, 0.001, 0.002} // m per iteration on IPS x
	var magnitudes []float64
	for _, rate := range rates {
		ramp := &attack.RampBias{
			Sensor:           detect.SensorIPS,
			RatePerIteration: mat.VecOf(rate, 0, 0),
			Win:              attack.Window{Start: 60},
			Via:              attack.Physical,
		}
		scenario := attack.Scenario{
			ID:            300,
			Name:          "stealth ramp",
			SensorAttacks: []attack.SensorAttack{ramp},
		}
		run, err := RunKheperaScenario(scenario, 42, detect.DefaultConfig(), KheperaDetector)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := run.SensorDelays()[detect.SensorIPS]
		if !ok || d.Detected < 0 {
			t.Fatalf("rate %v never detected", rate)
		}
		magnitude := ramp.OffsetAt(d.Detected)[0]
		magnitudes = append(magnitudes, magnitude)
		// Detection must fire before the ramp does scenario-scale damage.
		if magnitude > 0.05 {
			t.Fatalf("rate %v: ramp reached %.3f m before detection", rate, magnitude)
		}
	}
	// Magnitude-at-detection is an envelope property, not a rate
	// property: the values stay within a small factor of each other.
	minMag, maxMag := magnitudes[0], magnitudes[0]
	for _, m := range magnitudes {
		if m < minMag {
			minMag = m
		}
		if m > maxMag {
			maxMag = m
		}
	}
	if maxMag > 4*minMag {
		t.Fatalf("detection magnitudes vary too much with rate: %v", magnitudes)
	}
}

// Property: for a randomly chosen identifiable attack combination (at
// most two corrupted sensors, bias magnitudes well above the §V-H
// envelope), the detector's steady-state identification matches the
// ground truth.
func TestPropertyRandomScenarioIdentification(t *testing.T) {
	if testing.Short() {
		t.Skip("mission fuzz in -short mode")
	}
	sensorsAvailable := []string{detect.SensorIPS, detect.SensorWheelEncoder}
	for trial := 0; trial < 6; trial++ {
		seed := int64(500 + trial)
		rng := newFuzzRNG(seed)

		// Pick 1–2 distinct targets from {ips, wheel-encoder}; LiDAR is
		// kept clean so the fuzz stays within the identifiable regime.
		nTargets := 1 + rng.IntN(2)
		perm := rng.Perm(len(sensorsAvailable))
		targets := make([]string, 0, nTargets)
		for _, idx := range perm[:nTargets] {
			targets = append(targets, sensorsAvailable[idx])
		}

		scenario := attack.Scenario{ID: 400, Name: "fuzz"}
		for i, target := range targets {
			offset := mat.NewVec(3)
			offset[rng.IntN(2)] = 0.05 + 0.1*rng.Float64() // 5–15 cm on x or y
			scenario.SensorAttacks = append(scenario.SensorAttacks, &attack.Bias{
				Sensor: target,
				Offset: offset,
				Win:    attack.Window{Start: 60 + 40*i},
				Via:    attack.Cyber,
			})
		}

		run, err := RunKheperaScenario(scenario, seed, detect.DefaultConfig(), KheperaDetector)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Steady state: last 50 iterations must identify the full set
		// most of the time.
		correct, total := 0, 0
		for i := len(run.Trace) - 50; i < len(run.Trace); i++ {
			tr := run.Trace[i]
			total++
			if TruthSensorsEqual(tr.Truth, tr.Decision.Condition.Sensors) {
				correct++
			}
		}
		if rate := float64(correct) / float64(total); rate < 0.85 {
			t.Errorf("trial %d (targets %v): steady-state identification rate %.2f", trial, targets, rate)
		}
	}
}

// newFuzzRNG adapts stat.RNG with a Perm helper for the fuzz test.
type fuzzRNG struct {
	inner *rand.Rand
}

func newFuzzRNG(seed int64) *fuzzRNG {
	return &fuzzRNG{inner: rand.New(rand.NewSource(seed))}
}

func (f *fuzzRNG) IntN(n int) int   { return f.inner.Intn(n) }
func (f *fuzzRNG) Float64() float64 { return f.inner.Float64() }
func (f *fuzzRNG) Perm(n int) []int { return f.inner.Perm(n) }
