package eval

import (
	"fmt"
	"io"
	"math"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/sim"
	"roboads/internal/stat"
)

// QualityPoint is one sensor-noise scaling of the §V-E quality sweep.
type QualityPoint struct {
	// NoiseScale multiplies the IPS noise standard deviations.
	NoiseScale float64
	// VarVl is the actuator anomaly estimate variance with the scaled
	// IPS as the single reference.
	VarVl float64
	// MinDetectableBias is the 3σ actuator bias the scaled setting can
	// distinguish per iteration, in m/s — the §V-E/§V-H link between
	// sensor quality and the stealthy-attack envelope.
	MinDetectableBias float64
}

// QualityResult quantifies §V-E's claim that sensor quality directly
// sets anomaly-quantification accuracy: scaling the reference sensor's
// noise scales the estimation variance, and with it the smallest
// detectable attack.
type QualityResult struct {
	Points []QualityPoint
}

// QualityScales is the swept IPS noise multipliers.
var QualityScales = []float64{0.5, 1, 2, 4}

// SensorQuality runs the sweep: a clean mission re-estimated with the
// IPS noise scaled by each factor.
func SensorQuality(seed int64) (*QualityResult, error) {
	clean := attack.CleanScenario()
	setup, err := sim.NewKhepera(sim.LabMission(), &clean, seed)
	if err != nil {
		return nil, err
	}
	records, err := setup.Sim.Run(MaxIterations)
	if err != nil {
		return nil, err
	}

	out := &QualityResult{}
	for _, scale := range QualityScales {
		scaled := sensors.NewIPS(3)
		scaled.SigmaPos *= scale
		scaled.SigmaTheta *= scale

		plant := core.Plant{
			Model:       setup.Model,
			Q:           diagFromStd(setup.ProcessStd),
			AngleStates: []int{2},
		}
		mode, err := core.NewMode([]sensors.Sensor{scaled}, nil)
		if err != nil {
			return nil, err
		}

		// Re-noise the IPS stream at the scaled level so readings match
		// the scaled measurement model.
		rng := stat.NewRNG(seed).Fork(fmt.Sprintf("quality-%.2f", scale))
		x := setup.X0.Clone()
		px := initialP(3)
		var sumVar float64
		n := 0
		for _, rec := range records {
			z2 := scaled.H(rec.XTrue).Add(rng.GaussianVec(mat.VecOf(
				scaled.SigmaPos, scaled.SigmaPos, scaled.SigmaTheta)))
			res, err := core.NUISE(plant, mode.Reference, nil, rec.UPlanned, x, px, nil, z2)
			if err != nil {
				return nil, fmt.Errorf("quality scale %.2f k=%d: %w", scale, rec.K, err)
			}
			x, px = res.X, res.Px
			if rec.K >= 20 {
				sumVar += res.Pa.At(0, 0)
				n++
			}
		}
		meanVar := sumVar / float64(n)
		out.Points = append(out.Points, QualityPoint{
			NoiseScale:        scale,
			VarVl:             meanVar,
			MinDetectableBias: 3 * math.Sqrt(meanVar),
		})
	}
	return out, nil
}

// Shape verifies the §V-E monotonicity: better sensors (smaller scale)
// give strictly smaller estimation variance.
func (q *QualityResult) Shape() error {
	for i := 1; i < len(q.Points); i++ {
		if q.Points[i].VarVl <= q.Points[i-1].VarVl {
			return fmt.Errorf("eval: variance not increasing with noise: scale %.2f → %.3g, scale %.2f → %.3g",
				q.Points[i-1].NoiseScale, q.Points[i-1].VarVl,
				q.Points[i].NoiseScale, q.Points[i].VarVl)
		}
	}
	return nil
}

// Write renders the sweep.
func (q *QualityResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Sensor quality sweep (§V-E): IPS noise scale vs estimation accuracy")
	fmt.Fprintf(w, "%-12s %-18s %s\n", "noise ×", "Var on Vl (m/s)²", "3σ detectable bias (m/s)")
	for _, p := range q.Points {
		fmt.Fprintf(w, "%-12.2f %-18.3g %.4f\n", p.NoiseScale, p.VarVl, p.MinDetectableBias)
	}
	fmt.Fprintln(w, "\nbetter (smaller-noise) sensors shrink both the quantification variance")
	fmt.Fprintln(w, "and the stealthy-attack envelope (§V-H)")
}
