package eval

import (
	"errors"
	"fmt"

	"roboads/internal/detect"
)

// Calibration is a selected set of decision parameters with the
// validation scores that chose them.
type Calibration struct {
	// Config is the selected decision configuration.
	Config detect.Config
	// SensorF1 and ActuatorF1 are the validation F1 scores at the
	// selected operating points.
	SensorF1, ActuatorF1 float64
}

// ErrNoOperatingPoint indicates the sweep found no configuration with a
// usable F1 (e.g. a workload without positives).
var ErrNoOperatingPoint = errors.New("eval: no usable operating point")

// calibrationAlphas is the confidence-level grid searched per side.
var calibrationAlphas = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1}

// Calibrate automates §V-F: given a validation workload of recorded runs
// (typically Fig7Workload on held-out seeds), it sweeps the confidence
// level α and the sliding-window parameters (w, c) for each misbehavior
// class offline and returns the F1-optimal decision configuration. This
// is the paper's manual Fig. 7 procedure packaged as a library call, so
// a deployment can re-tune after changing sensors or noise floors.
func Calibrate(runs []*Run) (*Calibration, error) {
	if len(runs) == 0 {
		return nil, errors.New("eval: empty validation workload")
	}
	out := &Calibration{}
	selectSide := func(sensorSide bool, maxW int) (alpha float64, w, c int, f1 float64, err error) {
		best := -1.0
		for _, a := range calibrationAlphas {
			for ww := 1; ww <= maxW; ww++ {
				for cc := 1; cc <= ww; cc++ {
					conf, err := reEvaluate(runs, a, ww, cc, sensorSide)
					if err != nil {
						return 0, 0, 0, 0, err
					}
					if score := conf.F1(); score > best {
						best = score
						alpha, w, c = a, ww, cc
					}
				}
			}
		}
		if best <= 0 {
			return 0, 0, 0, 0, fmt.Errorf("%w (%s side)", ErrNoOperatingPoint, sideName(sensorSide))
		}
		return alpha, w, c, best, nil
	}

	sa, sw, sc, sf1, err := selectSide(true, 6)
	if err != nil {
		return nil, err
	}
	aa, aw, ac, af1, err := selectSide(false, 7)
	if err != nil {
		return nil, err
	}
	out.Config = detect.Config{
		SensorAlpha:      sa,
		SensorWindow:     sw,
		SensorCriteria:   sc,
		ActuatorAlpha:    aa,
		ActuatorWindow:   aw,
		ActuatorCriteria: ac,
	}
	out.SensorF1, out.ActuatorF1 = sf1, af1
	return out, nil
}
