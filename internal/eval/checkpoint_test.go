package eval

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sim"
	"roboads/internal/store"
)

// checkpointObs is the flattened per-iteration observation compared
// bit-for-bit across a checkpoint cut. It covers the full decision (so
// Table II confirm/identify sequences are pinned transitively) plus the
// selected mode's estimates and the mode weights — everything a consumer
// of a Report can see, without the engine-internal pointers (SelectedMode,
// SPD cache) that are identity- rather than value-comparable.
type checkpointObs struct {
	Decision detect.Decision
	X        mat.Vec
	Da       mat.Vec
	Ds       mat.Vec
	DaValid  bool
	Weights  []float64
}

func obsOf(rep *detect.Report) checkpointObs {
	return checkpointObs{
		Decision: *rep.Decision,
		X:        rep.Engine.Result.X,
		Da:       rep.Engine.Result.Da,
		Ds:       rep.Engine.Result.Ds,
		DaValid:  rep.Engine.Result.DaValid,
		Weights:  rep.Engine.Weights,
	}
}

// checkpointFrame is one recorded control iteration: the detector's
// complete input. The simulators are open loop (the mission does not
// react to the detector), so frames recorded once replay identically
// into any number of detectors.
type checkpointFrame struct {
	u        mat.Vec
	readings map[string]mat.Vec
}

func recordKheperaFrames(t *testing.T, scenario attack.Scenario, seed int64) []checkpointFrame {
	t.Helper()
	setup, err := sim.NewKhepera(sim.LabMission(), &scenario, seed)
	if err != nil {
		t.Fatalf("scenario %d: %v", scenario.ID, err)
	}
	var frames []checkpointFrame
	for i := 0; i < MaxIterations; i++ {
		rec, err := setup.Sim.Step()
		if err != nil {
			break
		}
		frames = append(frames, checkpointFrame{u: rec.UPlanned, readings: rec.Readings})
		if rec.Done {
			break
		}
	}
	return frames
}

func recordTamiyaFrames(t *testing.T, scenario attack.Scenario, seed int64) []checkpointFrame {
	t.Helper()
	setup, err := sim.NewTamiya(sim.LabMission(), &scenario, seed)
	if err != nil {
		t.Fatalf("scenario %d: %v", scenario.ID, err)
	}
	var frames []checkpointFrame
	for i := 0; i < MaxIterations; i++ {
		rec, err := setup.Sim.Step()
		if err != nil {
			break
		}
		frames = append(frames, checkpointFrame{u: rec.UPlanned, readings: rec.Readings})
		if rec.Done {
			break
		}
	}
	return frames
}

func sensorNames(f checkpointFrame) []string {
	out := make([]string, 0, len(f.readings))
	for name := range f.readings {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// stepObs feeds frames[from:to] into det and returns one observation per
// frame.
func stepObs(t *testing.T, det *detect.Detector, frames []checkpointFrame, from, to int) []checkpointObs {
	t.Helper()
	out := make([]checkpointObs, 0, to-from)
	for f := from; f < to; f++ {
		rep, err := det.Step(frames[f].u, frames[f].readings)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		out = append(out, obsOf(rep))
	}
	return out
}

// roundTripState pushes the detector's exported state through the real
// persistence codec — EncodeSnapshot to bytes, DecodeSnapshot back — so
// the test covers exactly what a crash recovery replays, not just the
// in-memory Export/Import pair.
func roundTripState(t *testing.T, robot string, dt float64, det *detect.Detector, frames []checkpointFrame, applied int) *detect.State {
	t.Helper()
	blob, err := store.EncodeSnapshot(&store.Snapshot{
		SessionID:     fmt.Sprintf("eval-%s", robot),
		Robot:         robot,
		Sensors:       sensorNames(frames[0]),
		Dt:            dt,
		FramesApplied: applied,
		State:         det.ExportState(),
	})
	if err != nil {
		t.Fatalf("encode snapshot: %v", err)
	}
	snap, err := store.DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if snap.FramesApplied != applied {
		t.Fatalf("snapshot applied = %d, want %d", snap.FramesApplied, applied)
	}
	return snap.State
}

// runCheckpointScenario asserts the durability correctness bar for one
// scenario: a detector checkpointed at iteration k (through the snapshot
// codec) and restored into a freshly built detector produces, over the
// remaining frames, observations bit-for-bit identical to the
// uninterrupted reference run. Decision equality implies the Table II
// confirm/identify code sequences are unchanged by the cut.
func runCheckpointScenario(t *testing.T, robot string, dt float64, frames []checkpointFrame,
	build func() *detect.Detector, cuts []int) {
	t.Helper()
	if len(frames) == 0 {
		t.Fatal("no frames recorded")
	}
	ref := stepObs(t, build(), frames, 0, len(frames))

	for _, k := range cuts {
		if k <= 0 || k >= len(frames) {
			continue
		}
		detA := build()
		head := stepObs(t, detA, frames, 0, k)
		if !reflect.DeepEqual(head, ref[:k]) {
			t.Fatalf("cut %d: pre-checkpoint run diverged from reference", k)
		}
		state := roundTripState(t, robot, dt, detA, frames, k)
		detB := build()
		if err := detB.ImportState(state); err != nil {
			t.Fatalf("cut %d: import: %v", k, err)
		}
		tail := stepObs(t, detB, frames, k, len(frames))
		for f := range tail {
			if !reflect.DeepEqual(tail[f], ref[k+f]) {
				t.Fatalf("cut %d: restored run diverged at frame %d (decision %+v vs %+v)",
					k, k+f, tail[f].Decision, ref[k+f].Decision)
			}
		}
	}
}

// TestCheckpointRestoreKheperaScenarios sweeps every Table II scenario
// (plus the clean mission): export → snapshot codec → import at mid-run
// cut points must leave the remaining report stream — decisions, selected
// estimates, mode weights — bit-for-bit unchanged. The cut points rotate
// across quarter positions per scenario so the sweep collectively covers
// early, middle, and late cuts, including cuts inside attack windows and
// confirmation holds.
func TestCheckpointRestoreKheperaScenarios(t *testing.T) {
	scenarios := append([]attack.Scenario{attack.CleanScenario()}, attack.KheperaScenarios()...)
	for i, scenario := range scenarios {
		scenario := scenario
		t.Run(fmt.Sprintf("s%02d_%s", scenario.ID, scenario.Name), func(t *testing.T) {
			t.Parallel()
			seed := int64(900 + i)
			frames := recordKheperaFrames(t, scenario, seed)
			build := func() *detect.Detector {
				setup, err := sim.NewKhepera(sim.LabMission(), &scenario, seed)
				if err != nil {
					t.Fatal(err)
				}
				det, err := KheperaDetector(setup, detect.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return det
			}
			n := len(frames)
			// One rotating quarter cut per scenario bounds runtime; the
			// clean scenario gets the full {N/4, N/2, 3N/4} sweep.
			cuts := []int{n * (1 + i%3) / 4}
			if scenario.ID == 0 {
				cuts = []int{n / 4, n / 2, 3 * n / 4}
			}
			runCheckpointScenario(t, "khepera", sim.KheperaDt, frames, build, cuts)
		})
	}
}

// TestCheckpointRestoreTamiyaScenarios is the bicycle-model counterpart:
// the grouped-reference mode set and the standstill actuator abstention
// (DaValid) must also survive a snapshot round trip unchanged.
func TestCheckpointRestoreTamiyaScenarios(t *testing.T) {
	for i, scenario := range attack.TamiyaScenarios() {
		scenario := scenario
		t.Run(fmt.Sprintf("s%03d_%s", scenario.ID, scenario.Name), func(t *testing.T) {
			t.Parallel()
			seed := int64(950 + i)
			frames := recordTamiyaFrames(t, scenario, seed)
			build := func() *detect.Detector {
				setup, err := sim.NewTamiya(sim.LabMission(), &scenario, seed)
				if err != nil {
					t.Fatal(err)
				}
				det, err := TamiyaDetector(setup, detect.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return det
			}
			n := len(frames)
			runCheckpointScenario(t, "tamiya", sim.TamiyaDt, frames, build, []int{n * (1 + i%3) / 4})
		})
	}
}
