package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/metrics"
	"roboads/internal/sim"
)

// TamiyaRow is one RC-car scenario's aggregate result (§V-D).
type TamiyaRow struct {
	ID                       int
	Name                     string
	SensorFPR, SensorFNR     float64
	ActuatorFPR, ActuatorFNR float64
	// DelaySec is the mean detection delay across the scenario's
	// attacks, −1 when nothing was detected.
	DelaySec float64
}

// TamiyaResult reproduces §V-D: the same detector on a robot with a
// distinct dynamic model (kinematic bicycle) and sensor suite (IPS,
// LiDAR, IMU). The paper reports 2.77%/0.83% average FPR/FNR and 0.33 s
// average delay.
type TamiyaResult struct {
	Rows           []TamiyaRow
	AvgFPR, AvgFNR float64
	AvgDelaySec    float64
}

// Tamiya runs the §V-D scenario suite.
func Tamiya(trials int, baseSeed int64) (*TamiyaResult, error) {
	if trials < 1 {
		trials = 1
	}
	cfg := detect.DefaultConfig()
	out := &TamiyaResult{}
	var totalS, totalA metrics.Confusion
	var allDelays []metrics.Delay

	for _, scenario := range attack.TamiyaScenarios() {
		var sc, ac metrics.Confusion
		var delays []metrics.Delay
		for trial := 0; trial < trials; trial++ {
			run, err := RunTamiyaScenario(scenario, baseSeed+int64(trial), cfg)
			if err != nil {
				return nil, err
			}
			sc.Merge(run.SensorConfusion())
			ac.Merge(run.ActuatorConfusion())
			for _, d := range run.SensorDelays() {
				delays = append(delays, d)
			}
			if d, ok := run.ActuatorDelay(); ok {
				delays = append(delays, d)
			}
		}
		row := TamiyaRow{
			ID:          scenario.ID,
			Name:        scenario.Name,
			SensorFPR:   sc.FPR(),
			SensorFNR:   sc.FNR(),
			ActuatorFPR: ac.FPR(),
			ActuatorFNR: ac.FNR(),
			DelaySec:    metrics.MeanDelaySeconds(delays, sim.TamiyaDt),
		}
		out.Rows = append(out.Rows, row)
		allDelays = append(allDelays, delays...)
		totalS.Merge(sc)
		totalA.Merge(ac)
	}
	var merged metrics.Confusion
	merged.Merge(totalS)
	merged.Merge(totalA)
	out.AvgFPR = merged.FPR()
	out.AvgFNR = merged.FNR()
	out.AvgDelaySec = metrics.MeanDelaySeconds(allDelays, sim.TamiyaDt)
	return out, nil
}

// Write renders the suite results.
func (t *TamiyaResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Tamiya RC car (§V-D, bicycle model; sensors IPS/LiDAR/IMU)")
	fmt.Fprintf(w, "%-5s %-26s %-22s %-22s %s\n", "#", "Scenario", "Sensor FPR/FNR", "Actuator FPR/FNR", "Delay (s)")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-5d %-26s %-22s %-22s %.2f\n",
			row.ID, truncate(row.Name, 26),
			fmt.Sprintf("%.2f%% / %.2f%%", 100*row.SensorFPR, 100*row.SensorFNR),
			fmt.Sprintf("%.2f%% / %.2f%%", 100*row.ActuatorFPR, 100*row.ActuatorFNR),
			row.DelaySec)
	}
	fmt.Fprintf(w, "\naverage FPR %.2f%%  FNR %.2f%%  delay %.2fs  (paper: 2.77%% / 0.83%% / 0.33s)\n",
		100*t.AvgFPR, 100*t.AvgFNR, t.AvgDelaySec)
}
