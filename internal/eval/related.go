package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/baseline"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/metrics"
	"roboads/internal/sim"
)

// RelatedWorkResult compares the detector families of §II-C on the
// Table II workload: RoboADS, the once-linearized model-based approach
// [20], a time-based periodicity monitor [29]–[31], and a
// learning-based cross-sensor norm model [34]–[36]. Sensor detection is
// binary (alarm while any sensor is corrupted); Identifies reports
// whether the approach can attribute the misbehavior to a workflow.
type RelatedWorkResult struct {
	Rows []RelatedWorkRow
}

// RelatedWorkRow is one approach's aggregate performance.
type RelatedWorkRow struct {
	// Approach names the detector family.
	Approach string
	// SensorTPR/FPR are binary sensor-misbehavior detection rates.
	SensorTPR, SensorFPR float64
	// ActuatorTPR is the binary actuator-misbehavior detection rate.
	ActuatorTPR float64
	// Identifies reports workflow-level attribution capability.
	Identifies bool
}

// RelatedWork runs the comparison. The learning-based model is trained
// on a clean mission with a disjoint seed, mirroring its "collect a
// large amount of robot operation data" methodology.
func RelatedWork(trials int, baseSeed int64) (*RelatedWorkResult, error) {
	if trials < 1 {
		trials = 1
	}
	cfg := detect.DefaultConfig()

	// Train the learning model on clean data.
	learner := baseline.NewLearningBased(0.005)
	trainScenario := attack.CleanScenario()
	trainSetup, err := sim.NewKhepera(sim.LabMission(), &trainScenario, baseSeed+1000)
	if err != nil {
		return nil, err
	}
	trainRecords, err := trainSetup.Sim.Run(MaxIterations)
	if err != nil {
		return nil, err
	}
	var trainFeatures []mat.Vec
	for _, rec := range trainRecords {
		f, err := baseline.ConsistencyFeatures(rec.Readings)
		if err != nil {
			return nil, err
		}
		trainFeatures = append(trainFeatures, f)
	}
	if err := learner.Train(trainFeatures); err != nil {
		return nil, err
	}

	scenarios := append([]attack.Scenario{attack.CleanScenario()}, attack.KheperaScenarios()...)
	var adsS, adsA, linS, linA, timeS, learnS metrics.Confusion
	timeA, learnA := metrics.Confusion{}, metrics.Confusion{}

	for trial := 0; trial < trials; trial++ {
		seed := baseSeed + int64(trial)
		for _, sc := range scenarios {
			// RoboADS and the linear baseline reuse the full pipeline.
			adsRun, err := RunKheperaScenario(sc, seed, cfg, KheperaDetector)
			if err != nil {
				return nil, err
			}
			accumulateBinary(&adsS, &adsA, adsRun)

			linRun, err := RunKheperaScenario(sc, seed, cfg, LinearKheperaDetector)
			if err != nil {
				return nil, err
			}
			accumulateBinary(&linS, &linA, linRun)

			// Time-based and learning-based run on the raw reading
			// stream (same seed → identical simulation).
			setup, err := sim.NewKhepera(sim.LabMission(), &sc, seed)
			if err != nil {
				return nil, err
			}
			records, err := setup.Sim.Run(MaxIterations)
			if err != nil {
				return nil, err
			}
			timeMonitor := baseline.NewTimeBased()
			for _, rec := range records {
				truthSensor := len(rec.Truth.CorruptedSensors) > 0
				truthActuator := rec.Truth.ActuatorCorrupted

				published := make(map[string]bool, len(rec.Readings))
				for name := range rec.Readings {
					published[name] = true
				}
				flagged := timeMonitor.Observe(rec.K, published)
				timeS.Add(truthSensor, len(flagged) > 0, true)
				timeA.Add(truthActuator, false, true) // content-agnostic

				features, err := baseline.ConsistencyFeatures(rec.Readings)
				if err != nil {
					return nil, err
				}
				_, anomalous, err := learner.Score(features)
				if err != nil {
					return nil, err
				}
				learnS.Add(truthSensor, anomalous, true)
				learnA.Add(truthActuator, false, true) // no command model
			}
		}
	}

	return &RelatedWorkResult{Rows: []RelatedWorkRow{
		{Approach: "RoboADS", SensorTPR: adsS.TPR(), SensorFPR: adsS.FPR(), ActuatorTPR: adsA.TPR(), Identifies: true},
		{Approach: "linear model-based [20]", SensorTPR: linS.TPR(), SensorFPR: linS.FPR(), ActuatorTPR: linA.TPR(), Identifies: true},
		{Approach: "learning-based [34-36]", SensorTPR: learnS.TPR(), SensorFPR: learnS.FPR(), ActuatorTPR: learnA.TPR(), Identifies: false},
		{Approach: "time-based [29-31]", SensorTPR: timeS.TPR(), SensorFPR: timeS.FPR(), ActuatorTPR: timeA.TPR(), Identifies: false},
	}}, nil
}

// accumulateBinary folds a run into binary sensor/actuator confusions.
func accumulateBinary(sensor, actuator *metrics.Confusion, run *Run) {
	for _, tr := range run.Trace {
		sensor.Add(len(tr.Truth.CorruptedSensors) > 0, tr.Decision.SensorAlarm, true)
		if tr.DaValid {
			actuator.Add(tr.Truth.ActuatorCorrupted, tr.Decision.ActuatorAlarm, true)
		}
	}
}

// Write renders the comparison table.
func (r *RelatedWorkResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Related-work comparison on the Table II workload (§II-C families)")
	fmt.Fprintf(w, "%-26s %-12s %-12s %-14s %s\n",
		"approach", "sensor TPR", "sensor FPR", "actuator TPR", "identifies workflow")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-26s %-12s %-12s %-14s %v\n",
			row.Approach, pct(row.SensorTPR), pct(row.SensorFPR), pct(row.ActuatorTPR), row.Identifies)
	}
	fmt.Fprintln(w, "\ntime-based monitors never see content corruptions (periodicity intact);")
	fmt.Fprintln(w, "learning-based models catch cross-sensor inconsistencies but cannot attribute")
	fmt.Fprintln(w, "them or see actuator misbehaviors (no command/motion model).")
}
