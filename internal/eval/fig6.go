package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/mat"
)

// Fig6Point is one control iteration of the Fig. 6 raw-output time
// series for scenario #8.
type Fig6Point struct {
	// TimeSec is the mission time.
	TimeSec float64
	// DsIPS, DsWE (x, y, θ) and DsLidar (3 ranges + θ) are the
	// per-sensor anomaly estimates (zero when the sensor is the
	// selected mode's reference — it is hypothesized clean).
	DsIPS, DsWE, DsLidar mat.Vec
	// Da is the actuator anomaly estimate (vL, vR).
	Da mat.Vec
	// SensorStat and SensorThreshold are plot 5.
	SensorStat, SensorThreshold float64
	// SensorMode is the confirmed sensor condition code index (0–6,
	// plot 6).
	SensorMode int
	// ActuatorStat and ActuatorThreshold are plot 7.
	ActuatorStat, ActuatorThreshold float64
	// ActuatorMode is 0/1 (plot 8).
	ActuatorMode int
}

// Fig6Result is the full scenario #8 series.
type Fig6Result struct {
	// Dt is the control period.
	Dt float64
	// Points holds one entry per iteration.
	Points []Fig6Point
}

// Fig6 runs scenario #8 (wheel controller & IPS logic bomb) once and
// extracts the eight raw-output series of Fig. 6.
func Fig6(seed int64) (*Fig6Result, error) {
	scenario := attack.KheperaScenarios()[7] // #8
	run, err := RunKheperaScenario(scenario, seed, detect.DefaultConfig(), KheperaDetector)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{Dt: run.Dt}
	for _, tr := range run.Trace {
		p := Fig6Point{
			TimeSec:           float64(tr.K) * run.Dt,
			DsIPS:             mat.NewVec(3),
			DsWE:              mat.NewVec(3),
			DsLidar:           mat.NewVec(4),
			Da:                tr.Decision.Da,
			SensorStat:        tr.Decision.SensorStat,
			SensorThreshold:   tr.Decision.SensorThreshold,
			ActuatorStat:      tr.Decision.ActuatorStat,
			ActuatorThreshold: tr.Decision.ActuatorThreshold,
		}
		for _, sa := range tr.Decision.SensorAnomalies {
			switch sa.Sensor {
			case detect.SensorIPS:
				p.DsIPS = sa.Ds
			case detect.SensorWheelEncoder:
				p.DsWE = sa.Ds
			case detect.SensorLidar:
				p.DsLidar = sa.Ds
			}
		}
		p.SensorMode = sensorModeIndex(detect.KheperaSensorCode(tr.Decision.Condition))
		if tr.Decision.Condition.Actuator {
			p.ActuatorMode = 1
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

func sensorModeIndex(code string) int {
	if len(code) == 2 && code[0] == 'S' && code[1] >= '0' && code[1] <= '6' {
		return int(code[1] - '0')
	}
	return -1
}

// Write emits the series as TSV, one row per iteration, ready for any
// plotting tool.
func (f *Fig6Result) Write(w io.Writer) {
	fmt.Fprintln(w, "time\tds_ips_x\tds_ips_y\tds_ips_t\tds_we_x\tds_we_y\tds_we_t\t"+
		"ds_l_1\tds_l_2\tds_l_3\tds_l_t\tda_l\tda_r\t"+
		"s_stat\ts_thresh\ts_mode\ta_stat\ta_thresh\ta_mode")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%.2f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.3f\t%.3f\t%d\t%.3f\t%.3f\t%d\n",
			p.TimeSec,
			p.DsIPS[0], p.DsIPS[1], p.DsIPS[2],
			p.DsWE[0], p.DsWE[1], p.DsWE[2],
			p.DsLidar[0], p.DsLidar[1], p.DsLidar[2], p.DsLidar[3],
			p.Da[0], p.Da[1],
			p.SensorStat, p.SensorThreshold, p.SensorMode,
			p.ActuatorStat, p.ActuatorThreshold, p.ActuatorMode)
	}
}
