package eval

import (
	"fmt"
	"io"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/scenario"
)

// EvasivePoint is one magnitude of the §V-H stealthy-attack sweep.
type EvasivePoint struct {
	// Magnitude is the attack vector size (meters for the IPS bias,
	// speed units for the wheel-controller bias).
	Magnitude float64
	// AlarmFraction is the fraction of post-onset iterations with the
	// relevant alarm confirmed.
	AlarmFraction float64
	// Detected reports a sustained detection: AlarmFraction above the
	// sustained threshold (an isolated false alarm does not count).
	Detected bool
	// DelaySec is the detection delay, or −1 when undetected.
	DelaySec float64
}

// sustainedFraction is the post-onset alarm fraction that distinguishes
// a genuine detection from background false alarms (which run at a few
// percent).
const sustainedFraction = 0.2

// EvasiveResult reproduces §V-H: sweeping the attack vector down to find
// the largest magnitude that stays below the alarm threshold. The paper
// finds ≈0.02 m for stealthy IPS spoofing and ≈900 speed units
// (0.006 m/s) for a stealthy wheel-controller logic bomb.
type EvasiveResult struct {
	// IPSSweep covers IPS spoofing magnitudes in meters.
	IPSSweep []EvasivePoint
	// ActuatorSweep covers wheel-controller bias magnitudes in speed
	// units.
	ActuatorSweep []EvasivePoint
	// MaxStealthyIPSMeters is the largest undetected IPS shift.
	MaxStealthyIPSMeters float64
	// MaxStealthyActuatorUnits is the largest undetected speed-unit
	// bias.
	MaxStealthyActuatorUnits float64
}

// EvasiveIPSMagnitudes is the swept IPS spoof sizes in meters.
var EvasiveIPSMagnitudes = []float64{0.001, 0.002, 0.003, 0.005, 0.0075, 0.01, 0.02, 0.04, 0.07, 0.1}

// EvasiveActuatorUnits is the swept wheel-controller bias sizes in
// Khepera speed units.
var EvasiveActuatorUnits = []float64{150, 300, 600, 900, 1500, 2250, 3000, 4500, 6000}

// Evasive runs the §V-H sweeps. Each sweep point is a one-scenario DSL
// suite driven through the scenario runner — the same mission loop,
// detector construction, and post-onset accounting as every leaderboard
// scenario — rather than a bespoke evaluation loop. The runner's
// per-target alarm fraction and delay replicate this file's historical
// definitions exactly, so the sweep output is bit-for-bit unchanged.
func Evasive(seed int64) (*EvasiveResult, error) {
	out := &EvasiveResult{}

	for _, magnitude := range EvasiveIPSMagnitudes {
		sc := scenario.Scenario{
			Name:  fmt.Sprintf("stealthy IPS spoof %.3fm", magnitude),
			Class: "stealthy",
			Robot: "khepera",
			Attacks: []scenario.Attack{{
				Kind:     "bias",
				Sensor:   detect.SensorIPS,
				Offset:   []float64{magnitude, 0, 0},
				Via:      "physical",
				Envelope: scenario.Envelope{Start: 60},
			}},
		}
		res, err := scenario.RunOne(sc, seed, scenario.RunConfig{})
		if err != nil {
			return nil, err
		}
		target := res.Targets[detect.SensorIPS]
		point := EvasivePoint{Magnitude: magnitude, DelaySec: -1, AlarmFraction: target.AlarmFraction}
		if point.AlarmFraction >= sustainedFraction {
			point.Detected = true
			point.DelaySec = target.DelaySec
		}
		if !point.Detected && magnitude > out.MaxStealthyIPSMeters {
			out.MaxStealthyIPSMeters = magnitude
		}
		out.IPSSweep = append(out.IPSSweep, point)
	}

	for _, units := range EvasiveActuatorUnits {
		offset := units * attack.SpeedUnit
		sc := scenario.Scenario{
			Name:  fmt.Sprintf("stealthy wheel bias %.0f units", units),
			Class: "stealthy",
			Robot: "khepera",
			Attacks: []scenario.Attack{{
				Kind:     "actuator-bias",
				Offset:   []float64{-offset, offset},
				Via:      "cyber",
				Envelope: scenario.Envelope{Start: 60},
			}},
		}
		res, err := scenario.RunOne(sc, seed, scenario.RunConfig{})
		if err != nil {
			return nil, err
		}
		target := res.Targets["actuator"]
		point := EvasivePoint{Magnitude: units, DelaySec: -1, AlarmFraction: target.AlarmFraction}
		if point.AlarmFraction >= sustainedFraction {
			point.Detected = true
			point.DelaySec = target.DelaySec
		}
		if !point.Detected && units > out.MaxStealthyActuatorUnits {
			out.MaxStealthyActuatorUnits = units
		}
		out.ActuatorSweep = append(out.ActuatorSweep, point)
	}
	return out, nil
}

// Write renders both sweeps.
func (e *EvasiveResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Evasive attacks (§V-H)")
	fmt.Fprintf(w, "%-22s %-10s %s\n", "IPS spoof (m)", "detected", "delay (s)")
	for _, p := range e.IPSSweep {
		fmt.Fprintf(w, "%-22.4f %-10v %.2f\n", p.Magnitude, p.Detected, p.DelaySec)
	}
	fmt.Fprintf(w, "largest stealthy IPS shift: %.3f m (paper: <0.02 m)\n\n", e.MaxStealthyIPSMeters)
	fmt.Fprintf(w, "%-22s %-10s %s\n", "wheel bias (units)", "detected", "delay (s)")
	for _, p := range e.ActuatorSweep {
		fmt.Fprintf(w, "%-22.0f %-10v %.2f\n", p.Magnitude, p.Detected, p.DelaySec)
	}
	fmt.Fprintf(w, "largest stealthy wheel bias: %.0f units (paper: <900 units = 0.006 m/s)\n",
		e.MaxStealthyActuatorUnits)
}
