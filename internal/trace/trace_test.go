package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sim"
)

func sampleHeader() Header {
	return Header{Robot: "khepera", Dt: 0.1, Sensors: []string{"ips", "lidar"}}
}

func TestRecordReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sampleHeader())
	for k := 0; k < 5; k++ {
		readings := map[string]mat.Vec{
			"ips":   mat.VecOf(float64(k), 2, 3),
			"lidar": mat.VecOf(1, 2, 3, 0.5),
		}
		if err := rec.Record(k, mat.VecOf(0.1, 0.2), readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := reader.Header(); h.Robot != "khepera" || h.Dt != 0.1 || h.Version != FormatVersion {
		t.Fatalf("header = %+v", h)
	}
	for k := 0; k < 5; k++ {
		frame, err := reader.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
		if frame.K != k || frame.U[0] != 0.1 || frame.Readings["ips"][0] != float64(k) {
			t.Fatalf("frame = %+v", frame)
		}
	}
	if _, err := reader.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewReader(strings.NewReader("not json\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("garbage: %v", err)
	}
	if _, err := NewReader(strings.NewReader(`{"version":99}` + "\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("version: %v", err)
	}
}

func TestReaderRejectsMismatchedFrame(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sampleHeader())
	// Frame missing the lidar reading promised in the header.
	if err := rec.Record(0, mat.VecOf(0.1, 0.2), map[string]mat.Vec{"ips": mat.VecOf(1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Next(); !errors.Is(err, ErrFrameMismatch) {
		t.Fatalf("err = %v, want ErrFrameMismatch", err)
	}
}

// Record a mission under attack, replay it offline through a fresh
// detector, and verify the offline verdict matches the live one.
func TestReplayMatchesLiveDetection(t *testing.T) {
	scenario := attack.KheperaScenarios()[2] // IPS logic bomb
	setup, err := sim.NewKhepera(sim.LabMission(), &scenario, 17)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(setup.Suite))
	for i, s := range setup.Suite {
		names[i] = s.Name()
	}

	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Robot: "khepera", Dt: sim.KheperaDt, Sensors: names})

	liveDet := buildDetector(t, setup)
	var liveConfirmed int
	for i := 0; i < 300; i++ {
		step, err := setup.Sim.Step()
		if err != nil {
			break
		}
		if err := rec.Record(step.K, step.UPlanned, step.Readings); err != nil {
			t.Fatal(err)
		}
		rep, err := liveDet.Step(step.UPlanned, step.Readings)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Decision.SensorAlarm && len(rep.Decision.Condition.Sensors) > 0 {
			liveConfirmed++
		}
		if step.Done {
			break
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if liveConfirmed == 0 {
		t.Fatal("live detector never confirmed the attack")
	}

	// Offline replay with an identically configured detector.
	replayDet := buildDetector(t, setup)
	reports, err := Replay(&buf, replayDet)
	if err != nil {
		t.Fatal(err)
	}
	var replayConfirmed int
	for _, rep := range reports {
		if rep.Decision.SensorAlarm && len(rep.Decision.Condition.Sensors) > 0 {
			replayConfirmed++
		}
	}
	if replayConfirmed != liveConfirmed {
		t.Fatalf("replay confirmed %d iterations, live %d", replayConfirmed, liveConfirmed)
	}
}

func buildDetector(t *testing.T, setup *sim.KheperaSetup) *detect.Detector {
	t.Helper()
	plant := core.Plant{
		Model:       setup.Model,
		Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        mat.VecOf(0.8, 0.8),
	}
	u0 := setup.Model.WheelSpeeds(0.1, 0)
	modes, err := core.SingleReferenceModes(setup.Model, setup.Suite, setup.X0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(plant, modes, setup.X0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return detect.NewDetector(eng, detect.DefaultConfig())
}
