package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/sim"
)

func sampleHeader() Header {
	return Header{Robot: "khepera", Dt: 0.1, Sensors: []string{"ips", "lidar"}}
}

func TestRecordReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sampleHeader())
	for k := 0; k < 5; k++ {
		readings := map[string]mat.Vec{
			"ips":   mat.VecOf(float64(k), 2, 3),
			"lidar": mat.VecOf(1, 2, 3, 0.5),
		}
		if err := rec.Record(k, mat.VecOf(0.1, 0.2), readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := reader.Header(); h.Robot != "khepera" || h.Dt != 0.1 || h.Version != FormatVersion {
		t.Fatalf("header = %+v", h)
	}
	for k := 0; k < 5; k++ {
		frame, err := reader.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
		if frame.K != k || frame.U[0] != 0.1 || frame.Readings["ips"][0] != float64(k) {
			t.Fatalf("frame = %+v", frame)
		}
	}
	if _, err := reader.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewReader(strings.NewReader("not json\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("garbage: %v", err)
	}
	if _, err := NewReader(strings.NewReader(`{"version":99}` + "\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("version: %v", err)
	}
}

func TestReaderRejectsMismatchedFrame(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sampleHeader())
	// Frame missing the lidar reading promised in the header.
	if err := rec.Record(0, mat.VecOf(0.1, 0.2), map[string]mat.Vec{"ips": mat.VecOf(1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Next(); !errors.Is(err, ErrFrameMismatch) {
		t.Fatalf("err = %v, want ErrFrameMismatch", err)
	}
}

// Record a mission under attack, replay it offline through a fresh
// detector, and verify the offline verdict matches the live one.
func TestReplayMatchesLiveDetection(t *testing.T) {
	scenario := attack.KheperaScenarios()[2] // IPS logic bomb
	setup, err := sim.NewKhepera(sim.LabMission(), &scenario, 17)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(setup.Suite))
	for i, s := range setup.Suite {
		names[i] = s.Name()
	}

	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Robot: "khepera", Dt: sim.KheperaDt, Sensors: names})

	liveDet := buildDetector(t, setup)
	var liveConfirmed int
	for i := 0; i < 300; i++ {
		step, err := setup.Sim.Step()
		if err != nil {
			break
		}
		if err := rec.Record(step.K, step.UPlanned, step.Readings); err != nil {
			t.Fatal(err)
		}
		rep, err := liveDet.Step(step.UPlanned, step.Readings)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Decision.SensorAlarm && len(rep.Decision.Condition.Sensors) > 0 {
			liveConfirmed++
		}
		if step.Done {
			break
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if liveConfirmed == 0 {
		t.Fatal("live detector never confirmed the attack")
	}

	// Offline replay with an identically configured detector.
	replayDet := buildDetector(t, setup)
	reports, err := Replay(&buf, replayDet)
	if err != nil {
		t.Fatal(err)
	}
	var replayConfirmed int
	for _, rep := range reports {
		if rep.Decision.SensorAlarm && len(rep.Decision.Condition.Sensors) > 0 {
			replayConfirmed++
		}
	}
	if replayConfirmed != liveConfirmed {
		t.Fatalf("replay confirmed %d iterations, live %d", replayConfirmed, liveConfirmed)
	}
}

func buildDetector(t *testing.T, setup *sim.KheperaSetup) *detect.Detector {
	t.Helper()
	plant := core.Plant{
		Model:       setup.Model,
		Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        mat.VecOf(0.8, 0.8),
	}
	u0 := setup.Model.WheelSpeeds(0.1, 0)
	modes, err := core.SingleReferenceModes(setup.Model, setup.Suite, setup.X0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(plant, modes, setup.X0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return detect.NewDetector(eng, detect.DefaultConfig())
}

// An empty mission — Flush (or Close) without a single Record — must
// still produce a valid zero-frame trace, not an empty file that fails
// replay with ErrBadHeader.
func TestEmptyMissionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sampleHeader())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("zero-frame trace failed to open: %v", err)
	}
	if h := reader.Header(); h.Robot != "khepera" || h.Version != FormatVersion {
		t.Fatalf("header = %+v", h)
	}
	if _, err := reader.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}

	// And through the full Replay path: zero reports, nil error.
	var buf2 bytes.Buffer
	rec2 := NewRecorder(&buf2, sampleHeader())
	if err := rec2.Flush(); err != nil {
		t.Fatal(err)
	}
	setup := cleanSetup(t, 1)
	reports, err := Replay(&buf2, buildDetector(t, setup))
	if err != nil {
		t.Fatalf("replay of empty mission: %v", err)
	}
	if len(reports) != 0 {
		t.Fatalf("got %d reports from empty mission", len(reports))
	}
}

func TestRecordAtRoundTripsTimestamps(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sampleHeader())
	readings := map[string]mat.Vec{
		"ips":   mat.VecOf(1, 2, 3),
		"lidar": mat.VecOf(1, 2, 3, 0.5),
	}
	for k := 0; k < 3; k++ {
		if err := rec.RecordAt(k, int64(k)*100_000_000, mat.VecOf(0.1, 0.2), readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		frame, err := reader.Next()
		if err != nil {
			t.Fatal(err)
		}
		if frame.TNanos != int64(k)*100_000_000 {
			t.Fatalf("frame %d TNanos = %d", k, frame.TNanos)
		}
	}
}

// A frame that fails detector.Step mid-stream must surface the reports
// accumulated before the failure alongside the error.
func TestReplayMidStreamStepFailure(t *testing.T) {
	setup := cleanSetup(t, 7)
	var buf bytes.Buffer
	// Header promises no sensors, so the reader's frame check passes
	// even for the final empty frame; the detector still fails it
	// because every mode loses its reference readings.
	rec := NewRecorder(&buf, Header{Robot: "khepera", Dt: sim.KheperaDt})
	const good = 5
	for i := 0; i < good; i++ {
		step, err := setup.Sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Record(step.K, step.UPlanned, step.Readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Record(good, mat.VecOf(0.1, 0.2), map[string]mat.Vec{}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	reports, err := Replay(&buf, buildDetector(t, setup))
	if err == nil {
		t.Fatal("want mid-stream error, got nil")
	}
	if !errors.Is(err, core.ErrAllModesFailed) {
		t.Fatalf("err = %v, want ErrAllModesFailed", err)
	}
	if len(reports) != good {
		t.Fatalf("got %d accumulated reports, want %d", len(reports), good)
	}
}

// A trace whose final JSON line is truncated (e.g. the recording process
// died mid-write) must surface a decode error, not a silent clean EOF.
func TestReplayTruncatedFinalLine(t *testing.T) {
	setup := cleanSetup(t, 7)
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Robot: "khepera", Dt: sim.KheperaDt})
	for i := 0; i < 3; i++ {
		step, err := setup.Sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Record(step.K, step.UPlanned, step.Readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"k":3,"u":[0.1,0.2],"readings":{"ips":[1.0,`)

	reports, err := Replay(&buf, buildDetector(t, setup))
	if err == nil {
		t.Fatal("want decode error for truncated final line, got nil")
	}
	if !strings.Contains(err.Error(), "decode frame") {
		t.Fatalf("err = %v, want frame decode error", err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d accumulated reports, want 3", len(reports))
	}
}

// ReplayObserve hands every decoded frame to the hook before stepping it.
func TestReplayObserveSeesFrames(t *testing.T) {
	setup := cleanSetup(t, 7)
	names := make([]string, len(setup.Suite))
	for i, s := range setup.Suite {
		names[i] = s.Name()
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Robot: "khepera", Dt: sim.KheperaDt, Sensors: names})
	const n = 4
	for i := 0; i < n; i++ {
		step, err := setup.Sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.RecordAt(step.K, int64(step.K)*int64(sim.KheperaDt*1e9), step.UPlanned, step.Readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	var ks []int
	var stamps []int64
	reports, err := ReplayObserve(&buf, buildDetector(t, setup), func(f *Frame) {
		ks = append(ks, f.K)
		stamps = append(stamps, f.TNanos)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != n || len(ks) != n {
		t.Fatalf("reports = %d, observed = %d, want %d", len(reports), len(ks), n)
	}
	for i := 1; i < n; i++ {
		if stamps[i] <= stamps[i-1] {
			t.Fatalf("timestamps not increasing: %v", stamps)
		}
	}
}

func cleanSetup(t *testing.T, seed int64) *sim.KheperaSetup {
	t.Helper()
	clean := attack.CleanScenario()
	setup, err := sim.NewKhepera(sim.LabMission(), &clean, seed)
	if err != nil {
		t.Fatal(err)
	}
	return setup
}
