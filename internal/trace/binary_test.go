package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"roboads/internal/mat"
)

// recordSample writes n frames with distinctive payloads through rec.
func recordSample(t *testing.T, rec *Recorder, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		readings := map[string]mat.Vec{
			"ips":   mat.VecOf(float64(k), -2.5, 3),
			"lidar": mat.VecOf(1, 2, 3, 0.5+float64(k)),
		}
		if err := rec.RecordAt(k, int64(k)*100_000_000, mat.VecOf(0.1, 0.2), readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRecordReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewBinaryRecorder(&buf, sampleHeader())
	recordSample(t, rec, 5)

	reader, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := reader.Header(); h.Robot != "khepera" || h.Dt != 0.1 || h.Version != FormatVersion {
		t.Fatalf("header = %+v", h)
	}
	for k := 0; k < 5; k++ {
		frame, err := reader.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
		if frame.K != k || frame.TNanos != int64(k)*100_000_000 {
			t.Fatalf("frame = %+v", frame)
		}
		if frame.U[0] != 0.1 || frame.Readings["ips"][0] != float64(k) || frame.Readings["lidar"][3] != 0.5+float64(k) {
			t.Fatalf("frame payload = %+v", frame)
		}
	}
	if _, err := reader.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// TestBinaryMatchesJSONFrames replays the same mission through both
// recorders and requires identical decoded frames — the two wire
// formats are views of one logical stream.
func TestBinaryMatchesJSONFrames(t *testing.T) {
	var jsonBuf, binBuf bytes.Buffer
	recordSample(t, NewRecorder(&jsonBuf, sampleHeader()), 7)
	recordSample(t, NewBinaryRecorder(&binBuf, sampleHeader()), 7)

	// With full-precision readings (the realistic sensor case — JSON
	// spends ~17 digits per float64) the binary frame must be smaller.
	dense := map[string]mat.Vec{"ips": mat.VecOf(1.0/3, 2.0/7, -1.0/9), "lidar": mat.VecOf(1.0/11, 1.0/13, 1.0/17, 1.0/19)}
	var jsonDense, binDense bytes.Buffer
	jrec, brec := NewRecorder(&jsonDense, sampleHeader()), NewBinaryRecorder(&binDense, sampleHeader())
	for k := 0; k < 8; k++ {
		if err := jrec.Record(k, mat.VecOf(1.0/23, 1.0/29), dense); err != nil {
			t.Fatal(err)
		}
		if err := brec.Record(k, mat.VecOf(1.0/23, 1.0/29), dense); err != nil {
			t.Fatal(err)
		}
	}
	jrec.Close()
	brec.Close()
	if binDense.Len() >= jsonDense.Len() {
		t.Fatalf("binary (%d bytes) not smaller than JSON (%d bytes)", binDense.Len(), jsonDense.Len())
	}

	jr, err := NewReader(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewReader(&binBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jr.Header(), br.Header()) {
		t.Fatalf("headers differ: %+v vs %+v", jr.Header(), br.Header())
	}
	for {
		jf, jerr := jr.Next()
		bf, berr := br.Next()
		if errors.Is(jerr, io.EOF) {
			if !errors.Is(berr, io.EOF) {
				t.Fatalf("binary stream longer than JSON: %v", berr)
			}
			return
		}
		if jerr != nil || berr != nil {
			t.Fatalf("errs: json %v, binary %v", jerr, berr)
		}
		if !reflect.DeepEqual(jf, bf) {
			t.Fatalf("frame mismatch:\njson   %+v\nbinary %+v", jf, bf)
		}
	}
}

// TestFrameBinarySpecialFloats pins that the codec is bit-exact for
// payload values JSON cannot carry losslessly or at all in future
// revisions: negative zero, denormals, and large magnitudes.
func TestFrameBinarySpecialFloats(t *testing.T) {
	in := &Frame{
		K:      -3,
		TNanos: -1,
		U:      []float64{math.Copysign(0, -1), math.SmallestNonzeroFloat64, math.MaxFloat64},
		Readings: map[string][]float64{
			"":  nil,
			"z": {1e-300},
		},
	}
	out, err := DecodeFrameBinary(AppendFrameBinary(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.K != -3 || out.TNanos != -1 {
		t.Fatalf("out = %+v", out)
	}
	if math.Float64bits(out.U[0]) != math.Float64bits(in.U[0]) {
		t.Fatalf("negative zero not preserved: %v", out.U[0])
	}
	if out.U[1] != in.U[1] || out.U[2] != in.U[2] {
		t.Fatalf("U = %v", out.U)
	}
	if z, ok := out.Readings[""]; !ok || len(z) != 0 {
		t.Fatalf("empty-name reading = %v, %v", z, ok)
	}
}

func TestReadFrameRecordRejectsCorruption(t *testing.T) {
	valid := AppendFrameRecord(nil, &Frame{K: 1, U: []float64{1, 2}, Readings: map[string][]float64{"a": {3}}})

	cases := map[string][]byte{
		"torn length":   valid[:3],
		"torn payload":  valid[:len(valid)-6],
		"torn checksum": valid[:len(valid)-2],
		"bad kind":      append([]byte{0x7f}, valid[1:]...),
		"length bomb":   {recFrame, 0xff, 0xff, 0xff, 0xff},
		"flipped payload bit": func() []byte {
			b := bytes.Clone(valid)
			b[7] ^= 0x40
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := ReadFrameRecord(bufio.NewReader(bytes.NewReader(data))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	if f, err := ReadFrameRecord(bufio.NewReader(bytes.NewReader(valid))); err != nil || f.K != 1 {
		t.Fatalf("valid record: %+v, %v", f, err)
	}
	if _, err := ReadFrameRecord(bufio.NewReader(bytes.NewReader(nil))); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: want io.EOF")
	}
}

func TestBinaryReaderRejectsVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	rec := NewBinaryRecorder(&buf, sampleHeader())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6] = 0x7f // corrupt the binary format version
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

// TestBinaryEncodingDeterministic pins that encoding is a pure function
// of the frame: map iteration order must not leak into the bytes, since
// WAL checksums and dedup rely on stable encodings.
func TestBinaryEncodingDeterministic(t *testing.T) {
	frame := &Frame{K: 9, U: []float64{1}, Readings: map[string][]float64{}}
	for _, name := range []string{"g", "a", "m", "c", "x", "b"} {
		frame.Readings[name] = []float64{float64(len(name))}
	}
	first := AppendFrameRecord(nil, frame)
	for i := 0; i < 16; i++ {
		if got := AppendFrameRecord(nil, frame); !bytes.Equal(got, first) {
			t.Fatalf("encoding varies across calls")
		}
	}
}
