package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Binary trace wire format.
//
// A binary stream opens with a fixed magic plus a format version, then
// carries length-prefixed records, each integrity-checked independently:
//
//	stream  = magic[6] ("RBTRAC") | version uint16 LE | record...
//	record  = kind byte | payloadLen uint32 LE | payload | crc32(payload) uint32 LE
//
// Record kinds: recHeader (payload is the JSON-encoded Header — written
// exactly once, first) and recFrame (payload is the fixed binary frame
// layout below). The CRC is computed over the payload bytes only, so a
// torn or bit-flipped record is detected without trusting its neighbors.
//
// Frame payload layout (all integers and float64s little-endian):
//
//	k int64 | tNanos int64 | len(u) uint32 | u []float64
//	| nReadings uint32 | nReadings × (nameLen uint16 | name | zLen uint32 | z []float64)
//
// Readings are encoded in ascending name order, so encoding is a pure
// function of the frame: the same frame always produces the same bytes,
// which keeps WAL checksums and replay comparisons deterministic.
const (
	// BinaryFormatVersion is the current binary trace format version,
	// independent of the JSON FormatVersion carried inside the header.
	BinaryFormatVersion = 1

	recHeader byte = 0x01
	recFrame  byte = 0x02

	// maxBinaryRecord bounds a record payload so a hostile or corrupt
	// length prefix cannot force a giant allocation (mirrors the
	// snapshot envelope's bound).
	maxBinaryRecord = 64 << 20
)

// binaryMagic identifies a binary trace stream. The first byte can never
// open a JSON header line ('{'), so readers can sniff the format from
// the stream prefix alone.
var binaryMagic = [6]byte{'R', 'B', 'T', 'R', 'A', 'C'}

// ErrCorrupt reports a structurally invalid binary record: torn,
// bit-flipped, length-bombed, or checksum-mismatched input.
var ErrCorrupt = errors.New("trace: corrupt binary record")

// AppendFrameBinary appends the binary payload encoding of f (no record
// envelope) to dst and returns the extended slice. Readings are encoded
// in sorted name order so the encoding is deterministic.
func AppendFrameBinary(dst []byte, f *Frame) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.K))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.TNanos))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.U)))
	for _, v := range f.U {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Readings)))
	names := make([]string, 0, len(f.Readings))
	for name := range f.Readings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
		dst = append(dst, name...)
		z := f.Readings[name]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(z)))
		for _, v := range z {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// DecodeFrameBinary parses one binary frame payload produced by
// AppendFrameBinary. Truncated or trailing-garbage input returns an
// error wrapping ErrCorrupt; no input panics.
func DecodeFrameBinary(payload []byte) (*Frame, error) {
	cur := payload
	u64 := func() (uint64, bool) {
		if len(cur) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(cur)
		cur = cur[8:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(cur) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(cur)
		cur = cur[4:]
		return v, true
	}
	k, ok1 := u64()
	t, ok2 := u64()
	uLen, ok3 := u32()
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("%w: truncated frame prologue", ErrCorrupt)
	}
	if uint64(uLen)*8 > uint64(len(cur)) {
		return nil, fmt.Errorf("%w: command length %d exceeds payload", ErrCorrupt, uLen)
	}
	frame := &Frame{K: int(int64(k)), TNanos: int64(t)}
	if uLen > 0 {
		frame.U = make([]float64, uLen)
		for i := range frame.U {
			frame.U[i] = math.Float64frombits(binary.LittleEndian.Uint64(cur[8*i:]))
		}
		cur = cur[8*uLen:]
	}
	nReadings, ok := u32()
	if !ok {
		return nil, fmt.Errorf("%w: truncated reading count", ErrCorrupt)
	}
	// Each reading costs at least 6 header bytes; bound the map size by
	// what the remaining payload could possibly hold.
	if uint64(nReadings)*6 > uint64(len(cur)) {
		return nil, fmt.Errorf("%w: reading count %d exceeds payload", ErrCorrupt, nReadings)
	}
	frame.Readings = make(map[string][]float64, nReadings)
	for i := uint32(0); i < nReadings; i++ {
		if len(cur) < 2 {
			return nil, fmt.Errorf("%w: truncated reading name length", ErrCorrupt)
		}
		nameLen := int(binary.LittleEndian.Uint16(cur))
		cur = cur[2:]
		if len(cur) < nameLen {
			return nil, fmt.Errorf("%w: truncated reading name", ErrCorrupt)
		}
		name := string(cur[:nameLen])
		cur = cur[nameLen:]
		zLen, ok := u32()
		if !ok {
			return nil, fmt.Errorf("%w: truncated reading length", ErrCorrupt)
		}
		if uint64(zLen)*8 > uint64(len(cur)) {
			return nil, fmt.Errorf("%w: reading %q length %d exceeds payload", ErrCorrupt, name, zLen)
		}
		z := make([]float64, zLen)
		for j := range z {
			z[j] = math.Float64frombits(binary.LittleEndian.Uint64(cur[8*j:]))
		}
		cur = cur[8*zLen:]
		frame.Readings[name] = z
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(cur))
	}
	return frame, nil
}

// appendRecordEnvelope appends a complete record — kind, length prefix,
// payload, CRC trailer — to dst.
func appendRecordEnvelope(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// AppendFrameRecord appends one complete frame record (kind + length +
// binary payload + CRC) to dst and returns the extended slice. This is
// the unit of the binary streaming wire: a sequence of frame records
// with no stream header is the batch-ingest HTTP body, and the same
// records follow the magic+header in a recorded binary trace.
func AppendFrameRecord(dst []byte, f *Frame) []byte {
	// Reserve the envelope prologue, encode the payload in place, then
	// backfill the length so encoding makes a single pass over dst.
	dst = append(dst, recFrame, 0, 0, 0, 0)
	lenAt := len(dst) - 4
	payloadAt := len(dst)
	dst = AppendFrameBinary(dst, f)
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// readRecordEnvelope reads one record from br. A clean EOF before the
// kind byte returns io.EOF; EOF anywhere inside a record is a torn
// record and returns ErrCorrupt.
func readRecordEnvelope(br *bufio.Reader) (kind byte, payload []byte, err error) {
	kind, err = br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	var prologue [4]byte
	if _, err := io.ReadFull(br, prologue[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: torn record length", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(prologue[:]))
	if n > maxBinaryRecord {
		return 0, nil, fmt.Errorf("%w: record length %d exceeds %d", ErrCorrupt, n, maxBinaryRecord)
	}
	// Read the payload in bounded chunks rather than allocating the
	// declared length up front: a corrupt or hostile length prefix backed
	// by a short stream then costs only the bytes actually present.
	payload = make([]byte, 0, min(n, 64<<10))
	for len(payload) < n {
		chunk := min(n-len(payload), 64<<10)
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, payload[start:]); err != nil {
			return 0, nil, fmt.Errorf("%w: torn record payload", ErrCorrupt)
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: torn record checksum", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(trailer[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, fmt.Errorf("%w: checksum %08x (want %08x)", ErrCorrupt, got, want)
	}
	return kind, payload, nil
}

// ReadFrameRecord reads one frame record from br — the inverse of
// AppendFrameRecord. It returns io.EOF at a clean end of stream and an
// error wrapping ErrCorrupt for torn, checksum-failed, or non-frame
// records.
func ReadFrameRecord(br *bufio.Reader) (*Frame, error) {
	kind, payload, err := readRecordEnvelope(br)
	if err != nil {
		return nil, err
	}
	if kind != recFrame {
		return nil, fmt.Errorf("%w: record kind 0x%02x (want frame)", ErrCorrupt, kind)
	}
	return DecodeFrameBinary(payload)
}

// NewBinaryRecorder returns a recorder that writes the binary trace
// format: the same frames as NewRecorder, ~3x smaller and with no
// per-frame JSON marshal on the hot path. NewReader transparently
// replays either format.
func NewBinaryRecorder(w io.Writer, header Header) *Recorder {
	header.Version = FormatVersion
	return &Recorder{w: bufio.NewWriter(w), header: header, binary: true}
}

// writeBinaryHeader emits the stream magic, version, and header record.
func (r *Recorder) writeBinaryHeader() error {
	if r.wrote {
		return nil
	}
	var prologue [8]byte
	copy(prologue[:6], binaryMagic[:])
	binary.LittleEndian.PutUint16(prologue[6:], BinaryFormatVersion)
	if _, err := r.w.Write(prologue[:]); err != nil {
		return err
	}
	payload, err := json.Marshal(r.header)
	if err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	r.buf = appendRecordEnvelope(r.buf[:0], recHeader, payload)
	if _, err := r.w.Write(r.buf); err != nil {
		return err
	}
	r.wrote = true
	return nil
}

// recordBinary appends one frame record, reusing the recorder's scratch
// buffer so steady-state recording does not allocate.
func (r *Recorder) recordBinary(frame *Frame) error {
	if err := r.writeBinaryHeader(); err != nil {
		return err
	}
	r.buf = AppendFrameRecord(r.buf[:0], frame)
	_, err := r.w.Write(r.buf)
	return err
}

// binaryReader is the Reader backend for binary streams.
type binaryReader struct {
	br *bufio.Reader
}

// newBinaryReader consumes the stream prologue (magic already peeked by
// NewReader) and the header record.
func newBinaryReader(br *bufio.Reader) (*binaryReader, Header, error) {
	var prologue [8]byte
	if _, err := io.ReadFull(br, prologue[:]); err != nil {
		return nil, Header{}, ErrBadHeader
	}
	if version := binary.LittleEndian.Uint16(prologue[6:]); version != BinaryFormatVersion {
		return nil, Header{}, fmt.Errorf("%w: binary version %d (want %d)", ErrBadHeader, version, BinaryFormatVersion)
	}
	kind, payload, err := readRecordEnvelope(br)
	if err != nil || kind != recHeader {
		return nil, Header{}, fmt.Errorf("%w: missing header record", ErrBadHeader)
	}
	var header Header
	if err := json.Unmarshal(payload, &header); err != nil {
		return nil, Header{}, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if header.Version != FormatVersion {
		return nil, Header{}, fmt.Errorf("%w: version %d (want %d)", ErrBadHeader, header.Version, FormatVersion)
	}
	return &binaryReader{br: br}, header, nil
}

// next returns the next frame record, or io.EOF at a clean end.
func (b *binaryReader) next() (*Frame, error) {
	return ReadFrameRecord(b.br)
}

// FrameRecordBuffered reports whether br already holds one complete
// frame record (or enough of a corrupt one to fail without further
// reads), so a streaming consumer can greedily drain records that have
// arrived without blocking on the network for the next one.
func FrameRecordBuffered(br *bufio.Reader) bool {
	n := br.Buffered()
	if n < 1+4+4 {
		return false
	}
	hdr, err := br.Peek(5)
	if err != nil {
		return false
	}
	plen := int(binary.LittleEndian.Uint32(hdr[1:5]))
	if plen > maxBinaryRecord {
		return true // ReadFrameRecord rejects the length without blocking
	}
	return n >= 1+4+plen+4
}
