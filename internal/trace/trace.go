// Package trace records and replays the RoboADS monitor inputs — the
// planned command u_{k-1} and the sensor readings z_k of every control
// iteration — as a JSON-lines or binary record stream (readers negotiate
// the format from the stream prefix). A recorded mission can be replayed
// through any detector configuration offline, supporting the §II-A
// deployment where the RoboADS module runs remotely from the robot, and
// post-incident forensics on archived missions.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"roboads/internal/detect"
	"roboads/internal/mat"
)

// Frame is one control iteration's monitor input.
type Frame struct {
	// K is the control iteration index.
	K int `json:"k"`
	// TNanos is the frame's capture timestamp in nanoseconds on the
	// recorder's clock (mission time for simulated recordings, wall
	// time for live ones). Zero means the recorder supplied no
	// timestamp — pre-timestamp traces decode with TNanos == 0, so the
	// format version is unchanged. Replay uses consecutive timestamps
	// to reproduce the recorded arrival cadence in the telemetry
	// latency histograms.
	TNanos int64 `json:"tNanos,omitempty"`
	// U is the planned control command u_{k-1}.
	U []float64 `json:"u"`
	// Readings maps sensing workflow names to their readings z_k.
	Readings map[string][]float64 `json:"readings"`
}

// Header identifies a trace stream.
type Header struct {
	// Version is the trace format version.
	Version int `json:"version"`
	// Robot names the platform (e.g. "khepera", "tamiya").
	Robot string `json:"robot"`
	// Dt is the control period in seconds.
	Dt float64 `json:"dtSeconds"`
	// Sensors lists the expected workflow names.
	Sensors []string `json:"sensors"`
}

// FormatVersion is the current trace format version.
const FormatVersion = 1

// Trace format errors.
var (
	// ErrBadHeader indicates a missing or incompatible header line.
	ErrBadHeader = errors.New("trace: bad or missing header")
	// ErrFrameMismatch indicates a frame whose sensors disagree with
	// the header.
	ErrFrameMismatch = errors.New("trace: frame does not match header")
)

// Recorder writes a trace stream, in either the JSON-lines format
// (NewRecorder) or the binary record format (NewBinaryRecorder).
type Recorder struct {
	w      *bufio.Writer
	header Header
	wrote  bool
	binary bool
	buf    []byte // scratch for binary record encoding, reused per frame
}

// NewRecorder returns a recorder that writes to w with the given header.
func NewRecorder(w io.Writer, header Header) *Recorder {
	header.Version = FormatVersion
	return &Recorder{w: bufio.NewWriter(w), header: header}
}

// writeHeader emits the header line once.
func (r *Recorder) writeHeader() error {
	if r.wrote {
		return nil
	}
	line, err := json.Marshal(r.header)
	if err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		return err
	}
	r.wrote = true
	return nil
}

// Record appends one iteration with no timestamp.
func (r *Recorder) Record(k int, u mat.Vec, readings map[string]mat.Vec) error {
	return r.RecordAt(k, 0, u, readings)
}

// RecordAt appends one iteration stamped with the capture time tNanos
// (nanoseconds on the recorder's clock; see Frame.TNanos). Pass 0 to
// record without a timestamp.
func (r *Recorder) RecordAt(k int, tNanos int64, u mat.Vec, readings map[string]mat.Vec) error {
	frame := Frame{K: k, TNanos: tNanos, U: u, Readings: make(map[string][]float64, len(readings))}
	for name, z := range readings {
		frame.Readings[name] = z
	}
	if r.binary {
		return r.recordBinary(&frame)
	}
	if err := r.writeHeader(); err != nil {
		return err
	}
	line, err := json.Marshal(frame)
	if err != nil {
		return fmt.Errorf("trace: encode frame %d: %w", k, err)
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return nil
}

// Flush writes the header if no frame has been recorded yet and flushes
// buffered output to the underlying writer. Emitting the header here
// makes an empty mission a valid zero-frame trace rather than an empty
// file that fails replay with ErrBadHeader.
func (r *Recorder) Flush() error {
	writeHeader := r.writeHeader
	if r.binary {
		writeHeader = r.writeBinaryHeader
	}
	if err := writeHeader(); err != nil {
		return err
	}
	return r.w.Flush()
}

// Close finalizes the stream. It is Flush under a name that reads
// naturally in defer position; the underlying writer is not closed.
func (r *Recorder) Close() error { return r.Flush() }

// Reader consumes a trace stream in either wire format. The format is
// sniffed from the stream prefix: the binary magic can never open a
// JSON header line, so no out-of-band signal is needed.
type Reader struct {
	scanner *bufio.Scanner // JSON-lines backend (nil for binary streams)
	bin     *binaryReader  // binary backend (nil for JSON streams)
	header  Header
}

// NewReader parses the header and returns a frame reader. Both trace
// formats are accepted: JSON-lines streams (NewRecorder) and binary
// streams (NewBinaryRecorder) decode through the same Reader.
func NewReader(src io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	prefix, err := br.Peek(len(binaryMagic))
	if err == nil && [6]byte(prefix) == binaryMagic {
		bin, header, err := newBinaryReader(br)
		if err != nil {
			return nil, err
		}
		return &Reader{bin: bin, header: header}, nil
	}
	scanner := bufio.NewScanner(br)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !scanner.Scan() {
		return nil, ErrBadHeader
	}
	var header Header
	if err := json.Unmarshal(scanner.Bytes(), &header); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if header.Version != FormatVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadHeader, header.Version, FormatVersion)
	}
	return &Reader{scanner: scanner, header: header}, nil
}

// Header returns the stream header.
func (r *Reader) Header() Header { return r.header }

// Next returns the next frame, or io.EOF at end of stream.
func (r *Reader) Next() (*Frame, error) {
	frame, err := r.nextFrame()
	if err != nil {
		return nil, err
	}
	for _, name := range r.header.Sensors {
		if _, ok := frame.Readings[name]; !ok {
			return nil, fmt.Errorf("%w: frame %d missing %q", ErrFrameMismatch, frame.K, name)
		}
	}
	return frame, nil
}

// nextFrame decodes the next frame from whichever backend the stream
// negotiated, before header validation.
func (r *Reader) nextFrame() (*Frame, error) {
	if r.bin != nil {
		return r.bin.next()
	}
	if !r.scanner.Scan() {
		if err := r.scanner.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	var frame Frame
	if err := json.Unmarshal(r.scanner.Bytes(), &frame); err != nil {
		return nil, fmt.Errorf("trace: decode frame: %w", err)
	}
	return &frame, nil
}

// Replay feeds every frame of a trace through a detector and returns the
// per-iteration reports — offline detection over a recorded mission.
// When an error occurs mid-stream the reports accumulated so far are
// returned alongside it.
func Replay(src io.Reader, detector *detect.Detector) ([]*detect.Report, error) {
	return ReplayObserve(src, detector, nil)
}

// ReplayObserve is Replay with a per-frame hook: observe (if non-nil) is
// called with each decoded frame before it is stepped through the
// detector, letting callers derive inter-frame timing (Frame.TNanos
// gaps) or progress without re-reading the stream.
func ReplayObserve(src io.Reader, detector *detect.Detector, observe func(*Frame)) ([]*detect.Report, error) {
	reader, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	var reports []*detect.Report
	for {
		frame, err := reader.Next()
		if errors.Is(err, io.EOF) {
			return reports, nil
		}
		if err != nil {
			return reports, err
		}
		if observe != nil {
			observe(frame)
		}
		readings := make(map[string]mat.Vec, len(frame.Readings))
		for name, z := range frame.Readings {
			readings[name] = mat.Vec(z)
		}
		report, err := detector.Step(mat.Vec(frame.U), readings)
		if err != nil {
			return reports, fmt.Errorf("trace: replay frame %d: %w", frame.K, err)
		}
		reports = append(reports, report)
	}
}
