package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"roboads/internal/mat"
)

// FuzzTraceReader drives the trace wire decoder with arbitrary bytes:
// truncated, bit-flipped, or version-skewed streams must surface as
// errors — never as panics — and valid frames must satisfy the header's
// sensor contract.
func FuzzTraceReader(f *testing.F) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Robot: "khepera", Sensors: []string{"gps", "imu"}, Dt: 0.02})
	for k := 0; k < 3; k++ {
		if err := rec.RecordAt(k, int64(k)*20_000_000, mat.VecOf(0.1, -0.2),
			map[string]mat.Vec{"gps": mat.VecOf(1, 2), "imu": mat.VecOf(3)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":99}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})

	// Binary streams negotiate through the same NewReader: seed the
	// corpus with a valid binary trace and truncations of it so the
	// fuzzer explores both decoders.
	var binBuf bytes.Buffer
	binRec := NewBinaryRecorder(&binBuf, Header{Robot: "khepera", Sensors: []string{"gps", "imu"}, Dt: 0.02})
	for k := 0; k < 3; k++ {
		if err := binRec.RecordAt(k, int64(k)*20_000_000, mat.VecOf(0.1, -0.2),
			map[string]mat.Vec{"gps": mat.VecOf(1, 2), "imu": mat.VecOf(3)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := binRec.Close(); err != nil {
		f.Fatal(err)
	}
	binValid := binBuf.Bytes()
	f.Add(binValid)
	f.Add(binValid[:len(binValid)/2])
	f.Add(binValid[:7])
	f.Add(binaryMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1024; i++ {
			frame, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			for _, name := range r.Header().Sensors {
				if _, ok := frame.Readings[name]; !ok {
					t.Fatalf("accepted frame %d missing sensor %q", frame.K, name)
				}
			}
		}
	})
}

// FuzzFrameRecord drives the standalone binary frame-record decoder —
// the unit of both binary traces and the batch-ingest HTTP wire — with
// arbitrary bytes: corrupt records must error (never panic), and any
// record that decodes must re-encode to a decodable record describing
// the same frame.
func FuzzFrameRecord(f *testing.F) {
	f.Add(AppendFrameRecord(nil, &Frame{K: 1, TNanos: 42, U: []float64{0.1, -0.2},
		Readings: map[string][]float64{"gps": {1, 2}, "imu": {3}}}))
	f.Add(AppendFrameRecord(nil, &Frame{}))
	f.Add([]byte{0x02, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		frame, err := ReadFrameRecord(br)
		if err != nil {
			return
		}
		reenc := AppendFrameRecord(nil, frame)
		again, err := ReadFrameRecord(bufio.NewReader(bytes.NewReader(reenc)))
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if frame.K != again.K || frame.TNanos != again.TNanos ||
			len(frame.U) != len(again.U) || len(frame.Readings) != len(again.Readings) {
			t.Fatalf("round trip changed frame: %+v vs %+v", frame, again)
		}
	})
}
