package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"roboads/internal/mat"
)

// FuzzTraceReader drives the trace wire decoder with arbitrary bytes:
// truncated, bit-flipped, or version-skewed streams must surface as
// errors — never as panics — and valid frames must satisfy the header's
// sensor contract.
func FuzzTraceReader(f *testing.F) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Robot: "khepera", Sensors: []string{"gps", "imu"}, Dt: 0.02})
	for k := 0; k < 3; k++ {
		if err := rec.RecordAt(k, int64(k)*20_000_000, mat.VecOf(0.1, -0.2),
			map[string]mat.Vec{"gps": mat.VecOf(1, 2), "imu": mat.VecOf(3)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":99}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1024; i++ {
			frame, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			for _, name := range r.Header().Sensors {
				if _, ok := frame.Readings[name]; !ok {
					t.Fatalf("accepted frame %d missing sensor %q", frame.K, name)
				}
			}
		}
	})
}
