package dynamics

import (
	"math"
	"testing"
	"testing/quick"

	"roboads/internal/mat"
	"roboads/internal/stat"
)

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("AngleDiff = %v", got)
	}
	// Wrap across ±π.
	if got := AngleDiff(math.Pi-0.05, -math.Pi+0.05); math.Abs(got+0.1) > 1e-12 {
		t.Fatalf("AngleDiff across wrap = %v", got)
	}
}

func TestDiffDriveStraightLine(t *testing.T) {
	d := NewKhepera(0.1)
	x := mat.VecOf(0, 0, 0)
	u := mat.VecOf(0.2, 0.2) // equal wheel speeds → straight along +x
	for i := 0; i < 10; i++ {
		x = d.F(x, u)
	}
	if math.Abs(x[0]-0.2) > 1e-12 || math.Abs(x[1]) > 1e-12 || math.Abs(x[2]) > 1e-12 {
		t.Fatalf("straight line ended at %v", x)
	}
}

func TestDiffDriveTurnInPlace(t *testing.T) {
	d := NewKhepera(0.1)
	x := mat.VecOf(1, 2, 0)
	u := d.WheelSpeeds(0, 1.0) // pure rotation at 1 rad/s
	x = d.F(x, u)
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("turn in place moved the robot: %v", x)
	}
	if math.Abs(x[2]-0.1) > 1e-12 {
		t.Fatalf("θ = %v, want 0.1", x[2])
	}
}

func TestDiffDriveVOmegaRoundTrip(t *testing.T) {
	d := NewKhepera(0.1)
	u := d.WheelSpeeds(0.15, -0.8)
	v, omega := d.VOmega(u)
	if math.Abs(v-0.15) > 1e-12 || math.Abs(omega+0.8) > 1e-12 {
		t.Fatalf("round trip gave v=%v ω=%v", v, omega)
	}
}

func TestDiffDriveAngleStaysNormalized(t *testing.T) {
	d := NewKhepera(0.1)
	x := mat.VecOf(0, 0, 3.0)
	u := d.WheelSpeeds(0, 3.0)
	for i := 0; i < 100; i++ {
		x = d.F(x, u)
		if x[2] > math.Pi || x[2] <= -math.Pi {
			t.Fatalf("θ escaped normalization: %v", x[2])
		}
	}
}

func TestBicycleStraightAndAccelerate(t *testing.T) {
	b := NewTamiya(0.1)
	x := mat.VecOf(0, 0, 0, 1) // moving at 1 m/s
	u := mat.VecOf(0.5, 0)     // accelerate, no steering
	x = b.F(x, u)
	if math.Abs(x[0]-0.1) > 1e-12 || math.Abs(x[3]-1.05) > 1e-12 {
		t.Fatalf("state = %v", x)
	}
}

func TestBicycleSteeringTurns(t *testing.T) {
	b := NewTamiya(0.05)
	x := mat.VecOf(0, 0, 0, 1)
	u := mat.VecOf(0, 0.2)
	x = b.F(x, u)
	wantDTheta := 1.0 / b.WheelBase * math.Tan(0.2) * 0.05
	if math.Abs(x[2]-wantDTheta) > 1e-12 {
		t.Fatalf("θ = %v, want %v", x[2], wantDTheta)
	}
}

func TestBicycleSteeringSaturation(t *testing.T) {
	b := NewTamiya(0.1)
	x := mat.VecOf(0, 0, 0, 1)
	extreme := b.F(x, mat.VecOf(0, 2.0))
	atLimit := b.F(x, mat.VecOf(0, b.MaxSteer))
	if math.Abs(extreme[2]-atLimit[2]) > 1e-12 {
		t.Fatalf("saturation not applied: %v vs %v", extreme[2], atLimit[2])
	}
}

// analytic Jacobians must match central differences at random operating
// points — this is the property the whole estimator correctness rests on.
func TestPropertyDiffDriveJacobians(t *testing.T) {
	d := NewKhepera(0.1)
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		x := mat.VecOf(r.Gaussian(0, 2), r.Gaussian(0, 2), r.Gaussian(0, 1.5))
		u := mat.VecOf(r.Gaussian(0, 0.3), r.Gaussian(0, 0.3))
		numA := NumericJacobianX(d.F, x, u, 1e-6)
		numG := NumericJacobianU(d.F, x, u, 1e-6)
		return d.A(x, u).Equal(numA, 1e-6) && d.G(x, u).Equal(numG, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBicycleJacobians(t *testing.T) {
	b := NewTamiya(0.1)
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		x := mat.VecOf(r.Gaussian(0, 2), r.Gaussian(0, 2), r.Gaussian(0, 1.5), r.Gaussian(0.5, 0.3))
		// Keep steering inside the saturation band: the clamp makes the
		// analytic Jacobian intentionally differ outside it.
		u := mat.VecOf(r.Gaussian(0, 0.5), r.Gaussian(0, 0.1))
		numA := NumericJacobianX(b.F, x, u, 1e-6)
		numG := NumericJacobianU(b.F, x, u, 1e-6)
		return b.A(x, u).Equal(numA, 1e-5) && b.G(x, u).Equal(numG, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// θ must never leave (−π, π] regardless of inputs.
func TestPropertyAngleNormalization(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		// Limit magnitude so Mod stays exact enough.
		theta := math.Mod(raw, 1e6)
		n := NormalizeAngle(theta)
		return n > -math.Pi-1e-9 && n <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumericJacobianOnLinearFunction(t *testing.T) {
	// f(x,u) = M·x + N·u has exact Jacobians M and N.
	m := mat.FromRows([]float64{1, 2}, []float64{3, 4})
	n := mat.FromRows([]float64{5}, []float64{6})
	f := func(x, u mat.Vec) mat.Vec { return m.MulVec(x).Add(n.MulVec(u)) }
	x, u := mat.VecOf(0.3, -0.7), mat.VecOf(1.1)
	if !NumericJacobianX(f, x, u, 0).Equal(m, 1e-7) {
		t.Fatal("∂f/∂x mismatch")
	}
	if !NumericJacobianU(f, x, u, 0).Equal(n, 1e-7) {
		t.Fatal("∂f/∂u mismatch")
	}
}

func TestModelNames(t *testing.T) {
	if NewKhepera(0.1).Name() != "differential-drive" {
		t.Fatal("khepera name")
	}
	if NewTamiya(0.1).Name() != "bicycle" {
		t.Fatal("tamiya name")
	}
}
