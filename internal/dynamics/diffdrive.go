package dynamics

import (
	"math"

	"roboads/internal/mat"
)

// DifferentialDrive is the two-wheel differential drive model of the
// Khepera III robot (§V-A). State x = (px, py, θ) in meters and radians;
// control u = (vL, vR), the left and right wheel surface speeds in m/s.
//
// With v = (vL+vR)/2 and ω = (vR−vL)/b (b the wheel separation), one
// control iteration of length Dt advances
//
//	px' = px + v·cos(θ)·Dt
//	py' = py + v·sin(θ)·Dt
//	θ'  = θ  + ω·Dt
//
// which is nonlinear in θ — the nonlinearity the paper's per-iteration
// relinearization exists to handle.
type DifferentialDrive struct {
	// WheelBase is the distance between the two wheels in meters.
	WheelBase float64
	// Dt is the control iteration period in seconds.
	Dt float64
}

var _ Model = (*DifferentialDrive)(nil)

// NewKhepera returns the differential drive model with the Khepera III
// geometry (0.0885 m wheel separation) at the given control period.
func NewKhepera(dt float64) *DifferentialDrive {
	return &DifferentialDrive{WheelBase: 0.0885, Dt: dt}
}

// Name implements Model.
func (d *DifferentialDrive) Name() string { return "differential-drive" }

// StateDim implements Model: (px, py, θ).
func (d *DifferentialDrive) StateDim() int { return 3 }

// ControlDim implements Model: (vL, vR).
func (d *DifferentialDrive) ControlDim() int { return 2 }

// F implements Model.
func (d *DifferentialDrive) F(x, u mat.Vec) mat.Vec {
	mustDims(d, x, u)
	v := (u[0] + u[1]) / 2
	omega := (u[1] - u[0]) / d.WheelBase
	theta := x[2]
	return mat.VecOf(
		x[0]+v*math.Cos(theta)*d.Dt,
		x[1]+v*math.Sin(theta)*d.Dt,
		NormalizeAngle(theta+omega*d.Dt),
	)
}

// FInto implements FIntoer: F's expressions written into dst.
func (d *DifferentialDrive) FInto(dst mat.Vec, x, u mat.Vec) {
	mustDims(d, x, u)
	v := (u[0] + u[1]) / 2
	omega := (u[1] - u[0]) / d.WheelBase
	theta := x[2]
	dst[0] = x[0] + v*math.Cos(theta)*d.Dt
	dst[1] = x[1] + v*math.Sin(theta)*d.Dt
	dst[2] = NormalizeAngle(theta + omega*d.Dt)
}

// AInto implements AIntoer: A's expressions written into dst.
func (d *DifferentialDrive) AInto(dst *mat.Mat, x, u mat.Vec) {
	mustDims(d, x, u)
	v := (u[0] + u[1]) / 2
	theta := x[2]
	dst.Set(0, 0, 1)
	dst.Set(0, 1, 0)
	dst.Set(0, 2, -v*math.Sin(theta)*d.Dt)
	dst.Set(1, 0, 0)
	dst.Set(1, 1, 1)
	dst.Set(1, 2, v*math.Cos(theta)*d.Dt)
	dst.Set(2, 0, 0)
	dst.Set(2, 1, 0)
	dst.Set(2, 2, 1)
}

// GInto implements GIntoer: G's expressions written into dst.
func (d *DifferentialDrive) GInto(dst *mat.Mat, x, u mat.Vec) {
	mustDims(d, x, u)
	theta := x[2]
	halfDt := d.Dt / 2
	dst.Set(0, 0, halfDt*math.Cos(theta))
	dst.Set(0, 1, halfDt*math.Cos(theta))
	dst.Set(1, 0, halfDt*math.Sin(theta))
	dst.Set(1, 1, halfDt*math.Sin(theta))
	dst.Set(2, 0, -d.Dt/d.WheelBase)
	dst.Set(2, 1, d.Dt/d.WheelBase)
}

// A implements Model with the closed-form state Jacobian.
func (d *DifferentialDrive) A(x, u mat.Vec) *mat.Mat {
	mustDims(d, x, u)
	v := (u[0] + u[1]) / 2
	theta := x[2]
	return mat.FromRows(
		[]float64{1, 0, -v * math.Sin(theta) * d.Dt},
		[]float64{0, 1, v * math.Cos(theta) * d.Dt},
		[]float64{0, 0, 1},
	)
}

// G implements Model with the closed-form control Jacobian.
func (d *DifferentialDrive) G(x, u mat.Vec) *mat.Mat {
	mustDims(d, x, u)
	theta := x[2]
	halfDt := d.Dt / 2
	return mat.FromRows(
		[]float64{halfDt * math.Cos(theta), halfDt * math.Cos(theta)},
		[]float64{halfDt * math.Sin(theta), halfDt * math.Sin(theta)},
		[]float64{-d.Dt / d.WheelBase, d.Dt / d.WheelBase},
	)
}

// VOmega converts wheel speeds (vL, vR) into body velocities (v, ω).
func (d *DifferentialDrive) VOmega(u mat.Vec) (v, omega float64) {
	return (u[0] + u[1]) / 2, (u[1] - u[0]) / d.WheelBase
}

// WheelSpeeds converts body velocities (v, ω) into wheel speeds (vL, vR).
func (d *DifferentialDrive) WheelSpeeds(v, omega float64) mat.Vec {
	half := omega * d.WheelBase / 2
	return mat.VecOf(v-half, v+half)
}
