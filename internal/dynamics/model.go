// Package dynamics defines the kinematic models of the mobile robots from
// the paper: the robot state-transition function x_k = f(x_{k-1}, u_{k-1})
// of equation (1), together with the Jacobians the NUISE estimator
// linearizes against at every control iteration.
//
// Two concrete models match the paper's two testbeds: DifferentialDrive
// (the Khepera III robot of §V-A) and Bicycle (the Tamiya RC car of §V-D).
package dynamics

import (
	"fmt"
	"math"

	"roboads/internal/mat"
)

// Model describes a discrete-time kinematic model x_k = f(x_{k-1}, u_{k-1}).
//
// Implementations must be pure: F must not mutate its arguments and must be
// deterministic so that the estimator and the simulator agree on the model.
type Model interface {
	// Name identifies the model in logs and experiment output.
	Name() string

	// StateDim returns the dimension of the state vector x.
	StateDim() int

	// ControlDim returns the dimension of the control vector u.
	ControlDim() int

	// F evaluates the kinematic function f(x, u).
	F(x, u mat.Vec) mat.Vec

	// A returns the state Jacobian ∂f/∂x evaluated at (x, u).
	A(x, u mat.Vec) *mat.Mat

	// G returns the control Jacobian ∂f/∂u evaluated at (x, u).
	G(x, u mat.Vec) *mat.Mat
}

// FIntoer is an optional Model fast path: FInto writes f(x, u) into dst
// (length StateDim()) without allocating. Implementations must produce
// values bit-identical to F — the batched engine leans on this to stay
// bit-for-bit reproducible against the scalar path.
type FIntoer interface {
	FInto(dst mat.Vec, x, u mat.Vec)
}

// AIntoer is an optional Model fast path: AInto writes ∂f/∂x at (x, u)
// into dst, overwriting every entry. Values must be bit-identical to A.
type AIntoer interface {
	AInto(dst *mat.Mat, x, u mat.Vec)
}

// GIntoer is an optional Model fast path: GInto writes ∂f/∂u at (x, u)
// into dst, overwriting every entry. Values must be bit-identical to G.
type GIntoer interface {
	GInto(dst *mat.Mat, x, u mat.Vec)
}

// EvalFInto evaluates f(x, u) into dst through the model's fast path
// when it has one, copying F's freshly allocated result otherwise.
func EvalFInto(m Model, dst mat.Vec, x, u mat.Vec) mat.Vec {
	if f, ok := m.(FIntoer); ok {
		f.FInto(dst, x, u)
		return dst
	}
	copy(dst, m.F(x, u))
	return dst
}

// EvalAInto evaluates ∂f/∂x into dst through the model's fast path when
// it has one, copying A's result otherwise.
func EvalAInto(m Model, dst *mat.Mat, x, u mat.Vec) *mat.Mat {
	if f, ok := m.(AIntoer); ok {
		f.AInto(dst, x, u)
		return dst
	}
	return mat.CopyInto(dst, m.A(x, u))
}

// EvalGInto evaluates ∂f/∂u into dst through the model's fast path when
// it has one, copying G's result otherwise.
func EvalGInto(m Model, dst *mat.Mat, x, u mat.Vec) *mat.Mat {
	if f, ok := m.(GIntoer); ok {
		f.GInto(dst, x, u)
		return dst
	}
	return mat.CopyInto(dst, m.G(x, u))
}

// NormalizeAngle wraps an angle to (−π, π].
func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	switch {
	case theta > math.Pi:
		theta -= 2 * math.Pi
	case theta <= -math.Pi:
		theta += 2 * math.Pi
	}
	return theta
}

// AngleDiff returns the smallest signed difference a−b wrapped to (−π, π].
func AngleDiff(a, b float64) float64 {
	return NormalizeAngle(a - b)
}

// NumericJacobianX approximates ∂f/∂x at (x, u) by central differences.
// It backs analytic Jacobians in tests and serves as the default for
// models that do not provide closed forms.
func NumericJacobianX(f func(x, u mat.Vec) mat.Vec, x, u mat.Vec, h float64) *mat.Mat {
	if h <= 0 {
		h = 1e-6
	}
	out := mat.New(len(f(x, u)), len(x))
	for j := range x {
		xp, xm := x.Clone(), x.Clone()
		xp[j] += h
		xm[j] -= h
		fp, fm := f(xp, u), f(xm, u)
		for i := range fp {
			out.Set(i, j, (fp[i]-fm[i])/(2*h))
		}
	}
	return out
}

// NumericJacobianU approximates ∂f/∂u at (x, u) by central differences.
func NumericJacobianU(f func(x, u mat.Vec) mat.Vec, x, u mat.Vec, h float64) *mat.Mat {
	if h <= 0 {
		h = 1e-6
	}
	out := mat.New(len(f(x, u)), len(u))
	for j := range u {
		up, um := u.Clone(), u.Clone()
		up[j] += h
		um[j] -= h
		fp, fm := f(x, up), f(x, um)
		for i := range fp {
			out.Set(i, j, (fp[i]-fm[i])/(2*h))
		}
	}
	return out
}

func mustDims(m Model, x, u mat.Vec) {
	if len(x) != m.StateDim() || len(u) != m.ControlDim() {
		panic(fmt.Errorf("%w: %s expects state %d / control %d, got %d / %d",
			mat.ErrDimension, m.Name(), m.StateDim(), m.ControlDim(), len(x), len(u)))
	}
}
