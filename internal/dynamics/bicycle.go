package dynamics

import (
	"math"

	"roboads/internal/mat"
)

// Bicycle is the kinematic bicycle model of the Tamiya TT02 RC car
// (§V-D). State x = (px, py, θ, v): pose plus longitudinal speed.
// Control u = (a, δ): commanded acceleration in m/s² and front steering
// angle in radians.
//
//	px' = px + v·cos(θ)·Dt
//	py' = py + v·sin(θ)·Dt
//	θ'  = θ  + (v/L)·tan(δ)·Dt
//	v'  = v  + a·Dt
//
// The tan(δ) and v·cos(θ) couplings make both Jacobians state- and
// control-dependent, giving the detector a dynamic model genuinely
// distinct from the differential drive, as the paper requires for its
// generalizability claim.
type Bicycle struct {
	// WheelBase is the front-to-rear axle distance in meters.
	WheelBase float64
	// Dt is the control iteration period in seconds.
	Dt float64
	// MaxSteer saturates |δ| to keep tan(δ) well conditioned.
	MaxSteer float64
}

var _ Model = (*Bicycle)(nil)

// NewTamiya returns the bicycle model with TT02 geometry (0.257 m
// wheelbase, ±30° steering) at the given control period.
func NewTamiya(dt float64) *Bicycle {
	return &Bicycle{WheelBase: 0.257, Dt: dt, MaxSteer: 30 * math.Pi / 180}
}

// Name implements Model.
func (b *Bicycle) Name() string { return "bicycle" }

// StateDim implements Model: (px, py, θ, v).
func (b *Bicycle) StateDim() int { return 4 }

// ControlDim implements Model: (a, δ).
func (b *Bicycle) ControlDim() int { return 2 }

func (b *Bicycle) clampSteer(delta float64) float64 {
	if b.MaxSteer <= 0 {
		return delta
	}
	return math.Max(-b.MaxSteer, math.Min(b.MaxSteer, delta))
}

// F implements Model.
func (b *Bicycle) F(x, u mat.Vec) mat.Vec {
	mustDims(b, x, u)
	theta, v := x[2], x[3]
	accel, delta := u[0], b.clampSteer(u[1])
	return mat.VecOf(
		x[0]+v*math.Cos(theta)*b.Dt,
		x[1]+v*math.Sin(theta)*b.Dt,
		NormalizeAngle(theta+v/b.WheelBase*math.Tan(delta)*b.Dt),
		v+accel*b.Dt,
	)
}

// FInto implements FIntoer: F's expressions written into dst.
func (b *Bicycle) FInto(dst mat.Vec, x, u mat.Vec) {
	mustDims(b, x, u)
	theta, v := x[2], x[3]
	accel, delta := u[0], b.clampSteer(u[1])
	dst[0] = x[0] + v*math.Cos(theta)*b.Dt
	dst[1] = x[1] + v*math.Sin(theta)*b.Dt
	dst[2] = NormalizeAngle(theta + v/b.WheelBase*math.Tan(delta)*b.Dt)
	dst[3] = v + accel*b.Dt
}

// AInto implements AIntoer: A's expressions written into dst.
func (b *Bicycle) AInto(dst *mat.Mat, x, u mat.Vec) {
	mustDims(b, x, u)
	theta, v := x[2], x[3]
	delta := b.clampSteer(u[1])
	dst.Zero()
	dst.Set(0, 0, 1)
	dst.Set(0, 2, -v*math.Sin(theta)*b.Dt)
	dst.Set(0, 3, math.Cos(theta)*b.Dt)
	dst.Set(1, 1, 1)
	dst.Set(1, 2, v*math.Cos(theta)*b.Dt)
	dst.Set(1, 3, math.Sin(theta)*b.Dt)
	dst.Set(2, 2, 1)
	dst.Set(2, 3, math.Tan(delta)/b.WheelBase*b.Dt)
	dst.Set(3, 3, 1)
}

// GInto implements GIntoer: G's expressions written into dst.
func (b *Bicycle) GInto(dst *mat.Mat, x, u mat.Vec) {
	mustDims(b, x, u)
	v := x[3]
	delta := b.clampSteer(u[1])
	sec := 1 / math.Cos(delta)
	dst.Zero()
	dst.Set(2, 1, v/b.WheelBase*sec*sec*b.Dt)
	dst.Set(3, 0, b.Dt)
}

// A implements Model with the closed-form state Jacobian.
func (b *Bicycle) A(x, u mat.Vec) *mat.Mat {
	mustDims(b, x, u)
	theta, v := x[2], x[3]
	delta := b.clampSteer(u[1])
	return mat.FromRows(
		[]float64{1, 0, -v * math.Sin(theta) * b.Dt, math.Cos(theta) * b.Dt},
		[]float64{0, 1, v * math.Cos(theta) * b.Dt, math.Sin(theta) * b.Dt},
		[]float64{0, 0, 1, math.Tan(delta) / b.WheelBase * b.Dt},
		[]float64{0, 0, 0, 1},
	)
}

// G implements Model with the closed-form control Jacobian. Inside the
// steering saturation band it is the derivative of F; at the saturation
// boundary the clamp is treated as inactive, matching the numeric
// Jacobian the estimator would otherwise fall back to.
func (b *Bicycle) G(x, u mat.Vec) *mat.Mat {
	mustDims(b, x, u)
	v := x[3]
	delta := b.clampSteer(u[1])
	sec := 1 / math.Cos(delta)
	return mat.FromRows(
		[]float64{0, 0},
		[]float64{0, 0},
		[]float64{0, v / b.WheelBase * sec * sec * b.Dt},
		[]float64{b.Dt, 0},
	)
}
