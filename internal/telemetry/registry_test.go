package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	// Get-or-create returns the same instance.
	if reg.Counter("test_total", "help") != c {
		t.Fatal("counter not deduplicated")
	}
	if got := reg.CounterValue("test_total"); got != 5 {
		t.Fatalf("CounterValue = %d", got)
	}
	if got := reg.CounterValue("absent_total"); got != 0 {
		t.Fatalf("absent CounterValue = %d", got)
	}

	g := reg.Gauge("test_gauge", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
	if reg.Gauge("test_gauge", "help") != g {
		t.Fatal("gauge not deduplicated")
	}
	if got := reg.GaugeValue("test_gauge"); got != 2.5 {
		t.Fatalf("GaugeValue = %v", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "help", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 0.5555 {
		t.Fatalf("sum = %v", got)
	}
	snap := h.snapshot()
	if snap.Count != 4 || snap.Max != 0.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.P50 <= 0 || snap.P99 < snap.P50 {
		t.Fatalf("quantiles: %+v", snap)
	}
}

func TestHistogramRingWrap(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("wrap_seconds", "help", []float64{1})
	for i := 0; i < 3*ringSize; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != int64(3*ringSize) {
		t.Fatalf("count = %d", got)
	}
	// The ring only retains the most recent observations, so the P50 of
	// the snapshot reflects the tail of the stream, not its start.
	snap := h.snapshot()
	if snap.P50 < float64(2*ringSize) {
		t.Fatalf("ring P50 = %v, want tail of the stream", snap.P50)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("roboads_steps_total", "Steps.").Add(7)
	reg.Counter(`roboads_dropped_total{sensor="ips"}`, "Drops.").Inc()
	reg.Counter(`roboads_dropped_total{sensor="lidar"}`, "Drops.").Add(2)
	reg.Gauge("roboads_weight", "Weight.").Set(0.75)
	h := reg.Histogram("roboads_lat_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE roboads_steps_total counter",
		"roboads_steps_total 7",
		`roboads_dropped_total{sensor="ips"} 1`,
		`roboads_dropped_total{sensor="lidar"} 2`,
		"# TYPE roboads_weight gauge",
		"roboads_weight 0.75",
		"# TYPE roboads_lat_seconds histogram",
		`roboads_lat_seconds_bucket{le="0.01"} 1`,
		`roboads_lat_seconds_bucket{le="0.1"} 2`,
		`roboads_lat_seconds_bucket{le="+Inf"} 3`,
		"roboads_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Labeled series share one TYPE line per base name.
	if n := strings.Count(out, "# TYPE roboads_dropped_total counter"); n != 1 {
		t.Fatalf("got %d TYPE lines for labeled counter, want 1\n%s", n, out)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "h").Add(3)
	reg.Gauge("b", "h").Set(1.5)
	reg.Histogram("c_seconds", "h", []float64{1}).Observe(0.5)
	snap := reg.Snapshot()
	counters := snap["counters"].(map[string]int64)
	if counters["a_total"] != 3 {
		t.Fatalf("a_total = %v", counters["a_total"])
	}
	gauges := snap["gauges"].(map[string]float64)
	if gauges["b"] != 1.5 {
		t.Fatalf("b = %v", gauges["b"])
	}
	hists := snap["histograms"].(map[string]HistogramSnapshot)
	if hists["c_seconds"].Count != 1 {
		t.Fatalf("c_seconds = %+v", hists["c_seconds"])
	}
}

// The registry and all instrument types must be safe under concurrent
// mixed use (run with -race).
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("conc_total", "h").Inc()
				reg.Gauge("conc_gauge", "h").Set(float64(i))
				reg.Histogram("conc_seconds", "h", LatencyBuckets()).Observe(float64(i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if got := reg.CounterValue("conc_total"); got != 8*500 {
		t.Fatalf("counter = %d", got)
	}
	if got := reg.HistogramCount("conc_seconds"); got != 8*500 {
		t.Fatalf("histogram count = %d", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
}
