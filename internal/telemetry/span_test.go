package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestSpanLapsSumToTotal pins the span self-validation invariant: the
// per-stage laps partition the span, so every exemplar's TotalNanos is
// exactly the sum of its StageNanos — including after a Shift.
func TestSpanLapsSumToTotal(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Begin("sess-1", time.Now())
	sp.SetK(7)
	sp.Lap(StageDecode)
	time.Sleep(time.Millisecond)
	sp.Lap(StageQueueWait)
	sp.Lap(StageStep)
	time.Sleep(time.Millisecond)
	sp.Lap(StageWALAppend)
	// Shift half the WAL lap into fsync, the inline-fsync attribution
	// move the store performs.
	sp.Shift(StageWALAppend, StageFsync, 500_000)
	sp.Lap(StageReply)
	sp.Finish()

	snap := tr.Snapshot()
	if !snap.Enabled || snap.Frames != 1 {
		t.Fatalf("snapshot: enabled=%v frames=%d", snap.Enabled, snap.Frames)
	}
	if len(snap.Exemplars) != 1 {
		t.Fatalf("%d exemplars, want 1", len(snap.Exemplars))
	}
	ex := snap.Exemplars[0]
	if ex.Session != "sess-1" || ex.K != 7 {
		t.Errorf("exemplar identity: %+v", ex)
	}
	var sum int64
	for _, n := range ex.StageNanos {
		sum += n
	}
	if sum != ex.TotalNanos || sum <= 0 {
		t.Errorf("stage sum %d != total %d", sum, ex.TotalNanos)
	}
	if ex.StageNanos["queue_wait"] < int64(time.Millisecond) {
		t.Errorf("queue_wait lap lost the sleep: %v", ex.StageNanos)
	}
	if ex.StageNanos["fsync"] == 0 {
		t.Errorf("shift moved nothing into fsync: %v", ex.StageNanos)
	}
}

// TestSpanShiftClamps pins the Shift contract: the move is bounded by
// the source stage's attribution and never changes the stage sum.
func TestSpanShiftClamps(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Begin("s", time.Now())
	sp.marks[StageWALAppend] = 100
	sp.Shift(StageWALAppend, StageFsync, 1_000_000) // far more than lapped
	if sp.marks[StageWALAppend] != 0 || sp.marks[StageFsync] != 100 {
		t.Errorf("clamped shift: wal=%d fsync=%d, want 0/100", sp.marks[StageWALAppend], sp.marks[StageFsync])
	}
	sp.Shift(StageFsync, StageWALAppend, -5) // non-positive: no-op
	if sp.marks[StageFsync] != 100 {
		t.Errorf("negative shift moved time: %d", sp.marks[StageFsync])
	}
	sp.Drop()
}

// TestNilSpanZeroAllocs pins the disabled-tracing contract: a nil
// tracer and its nil spans allocate nothing on the full per-frame call
// sequence.
func TestNilSpanZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Begin("session", time.Time{})
		sp.SetK(3)
		sp.Lap(StageDecode)
		sp.Lap(StageAdmit)
		sp.Lap(StageQueueWait)
		sp.Lap(StageStep)
		sp.Shift(StageWALAppend, StageFsync, 10)
		sp.Lap(StageReply)
		sp.Finish()
		sp.Drop()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f per frame, want 0", allocs)
	}
	if snap := tr.Snapshot(); snap.Enabled {
		t.Fatal("nil tracer reports Enabled")
	}
}

// TestEnabledSpanReusesPool pins that the steady-state enabled path
// recycles spans instead of allocating one per frame.
func TestEnabledSpanReusesPool(t *testing.T) {
	tr := NewTracer(nil)
	// Warm the pool and the reservoir's growth phase.
	for i := 0; i < exemplarCap+8; i++ {
		sp := tr.Begin("warm", time.Now())
		sp.Lap(StageStep)
		sp.Finish()
	}
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Begin("steady", time.Now())
		sp.Lap(StageStep)
		sp.Finish()
	})
	// One frame may still allocate inside histogram ring rotation; the
	// span itself must come from the pool. Allow a small slack rather
	// than 0 to keep the pin about span storage, not histogram internals.
	if allocs > 1 {
		t.Fatalf("enabled tracing allocated %.1f per frame, want <= 1", allocs)
	}
}

// TestReservoirCapsAndCounts pins the reservoir: it never exceeds
// exemplarCap while Frames keeps counting every finished span.
func TestReservoirCapsAndCounts(t *testing.T) {
	tr := NewTracer(nil)
	const n = 10 * exemplarCap
	for i := 0; i < n; i++ {
		sp := tr.Begin(fmt.Sprintf("s%d", i), time.Now())
		sp.SetK(i)
		sp.Lap(StageStep)
		sp.Finish()
	}
	snap := tr.Snapshot()
	if snap.Frames != n {
		t.Errorf("frames = %d, want %d", snap.Frames, n)
	}
	if len(snap.Exemplars) != exemplarCap {
		t.Errorf("%d exemplars, want %d", len(snap.Exemplars), exemplarCap)
	}
	// Algorithm R keeps an unbiased sample: with 640 spans the reservoir
	// should not be the first 64 verbatim.
	replaced := false
	for _, ex := range snap.Exemplars {
		if ex.K >= exemplarCap {
			replaced = true
			break
		}
	}
	if !replaced {
		t.Error("reservoir never replaced an early span across 10x cap finishes")
	}
}

// TestServeTrace pins the /v1/debug/trace payload, enabled and
// disabled.
func TestServeTrace(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Begin("sess", time.Now())
	sp.Lap(StageStep)
	sp.Finish()

	rec := httptest.NewRecorder()
	tr.ServeTrace(rec, httptest.NewRequest(http.MethodGet, "/v1/debug/trace", nil))
	var snap TraceSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Frames != 1 || len(snap.Exemplars) != 1 {
		t.Fatalf("enabled trace payload: %+v", snap)
	}
	if _, ok := snap.Stages["step"]; !ok {
		t.Fatalf("step stage missing: %v", snap.Stages)
	}

	var disabled *Tracer
	rec = httptest.NewRecorder()
	disabled.ServeTrace(rec, httptest.NewRequest(http.MethodGet, "/v1/debug/trace", nil))
	snap = TraceSnapshot{Enabled: true}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Enabled {
		t.Fatal("disabled tracer served Enabled true")
	}
}

// TestTraceHTTPRace hammers the telemetry HTTP surface (/metrics,
// /snapshot, /v1/debug/trace) while other goroutines register labeled
// counters, observe histograms, and finish spans against the same
// registry — the scrape-under-load interleaving the race detector must
// bless (`make race` runs this package with -race).
func TestTraceHTTPRace(t *testing.T) {
	tel := New(Options{})
	tr := NewTracer(tel.Registry())
	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.HandleFunc("GET /v1/debug/trace", tr.ServeTrace)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const writers, scrapes, frames = 4, 20, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reg := tel.Registry()
			for i := 0; i < frames; i++ {
				// New labeled series mid-scrape: the get-or-create path.
				reg.Counter(fmt.Sprintf(`race_total{writer="%d",i="%d"}`, w, i%17), "").Inc()
				reg.Histogram(fmt.Sprintf(`race_seconds{writer="%d"}`, w), "", LatencyBuckets()).Observe(1e-6)
				sp := tr.Begin(fmt.Sprintf("w%d", w), time.Now())
				sp.SetK(i)
				sp.Lap(StageDecode)
				sp.Lap(StageStep)
				sp.Shift(StageStep, StageFsync, 10)
				sp.Lap(StageReply)
				sp.Finish()
			}
		}(w)
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/metrics", "/snapshot", "/v1/debug/trace"}
			for i := 0; i < scrapes; i++ {
				resp, err := http.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", paths[i%len(paths)], resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := tr.Snapshot()
	if snap.Frames != writers*frames {
		t.Fatalf("frames = %d, want %d", snap.Frames, writers*frames)
	}
	for _, ex := range snap.Exemplars {
		var sum int64
		for _, n := range ex.StageNanos {
			sum += n
		}
		if sum != ex.TotalNanos {
			t.Fatalf("exemplar sum %d != total %d after concurrent run", sum, ex.TotalNanos)
		}
	}
}
