package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/eval"
)

// Run the clean Table II scenario (S0) with telemetry attached and check
// the core metric inventory: per-step series accumulate, the decision
// counters track the trace length, and — the PR-2 regression sentinel —
// the Jacobi fallback counter stays at zero across a healthy mission.
func TestCleanScenarioMetrics(t *testing.T) {
	tel := New(Options{})
	ecfg := core.DefaultEngineConfig()
	ecfg.Observer = tel
	cfg := detect.DefaultConfig()
	cfg.Observer = tel

	run, err := eval.RunKheperaScenario(attack.CleanScenario(), 3, cfg, eval.KheperaDetectorWith(ecfg))
	if err != nil {
		t.Fatal(err)
	}
	steps := int64(len(run.Trace))
	if steps == 0 {
		t.Fatal("empty run")
	}

	reg := tel.Registry()
	if got := reg.CounterValue(MetricStepsTotal); got != steps {
		t.Fatalf("steps_total = %d, want %d", got, steps)
	}
	if got := reg.CounterValue(MetricDecisionsTotal); got != steps {
		t.Fatalf("decisions_total = %d, want %d", got, steps)
	}
	if got := reg.HistogramCount(MetricStepSeconds); got != steps {
		t.Fatalf("step_seconds count = %d, want %d", got, steps)
	}
	// Three single-reference modes run per step.
	if got := reg.HistogramCount(MetricModeSeconds); got != 3*steps {
		t.Fatalf("mode_step_seconds count = %d, want %d", got, 3*steps)
	}
	// A clean run on the SPD fast path must never hit the Jacobi
	// fallback; a nonzero reading here is a numerical regression.
	if got := reg.CounterValue(MetricJacobiFallbacks); got != 0 {
		t.Fatalf("jacobi_fallbacks_total = %d on a clean run", got)
	}
	// Nothing was dropped and the mode never failed.
	if got := reg.CounterValue(MetricModeFailures); got != 0 {
		t.Fatalf("mode_failures_total = %d", got)
	}
	if got := reg.GaugeValue(MetricTopWeight); got <= 0 || got > 1 {
		t.Fatalf("top_weight = %v", got)
	}

	snap := tel.Snapshot()
	if snap.Iteration == 0 || snap.SelectedMode == "" || len(snap.Weights) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LastDecision == nil || snap.LastDecision.Condition == "" {
		t.Fatalf("snapshot lastDecision = %+v", snap.LastDecision)
	}
}

func TestDroppedReadingCounter(t *testing.T) {
	tel := New(Options{})
	tel.DroppedReading("ips")
	tel.DroppedReading("ips")
	tel.DroppedReading("lidar")
	reg := tel.Registry()
	if got := reg.CounterValue(MetricDroppedReadings + `{sensor="ips"}`); got != 2 {
		t.Fatalf("ips drops = %d", got)
	}
	if got := reg.CounterValue(MetricDroppedReadings + `{sensor="lidar"}`); got != 1 {
		t.Fatalf("lidar drops = %d", got)
	}
}

func TestAlarmEdgeCounters(t *testing.T) {
	tel := New(Options{})
	dec := func(iter int, sensor, actuator bool) *detect.DecisionStats {
		return &detect.DecisionStats{Iteration: iter, Mode: "m", Condition: "S0/A0",
			SensorAlarm: sensor, ActuatorAlarm: actuator}
	}
	tel.Decision(dec(0, false, false)) // baseline
	tel.Decision(dec(1, true, false))  // sensor rising
	tel.Decision(dec(2, true, true))   // actuator rising
	tel.Decision(dec(3, false, true))  // sensor falling
	tel.Decision(dec(4, false, false)) // actuator falling
	reg := tel.Registry()
	for name, want := range map[string]int64{
		MetricAlarmEdges + `{kind="sensor",to="on"}`:    1,
		MetricAlarmEdges + `{kind="sensor",to="off"}`:   1,
		MetricAlarmEdges + `{kind="actuator",to="on"}`:  1,
		MetricAlarmEdges + `{kind="actuator",to="off"}`: 1,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestFrameGapIgnoresNegative(t *testing.T) {
	tel := New(Options{})
	tel.FrameGap(-5)
	tel.FrameGap(100_000_000)
	if got := tel.Registry().HistogramCount(MetricFrameGapSeconds); got != 1 {
		t.Fatalf("frame gap count = %d", got)
	}
}

// Per-level sampling: with Debug sampled 1-in-10, 100 steps log 10
// compact records while Info-level mode-switch records stay unsampled.
func TestLogSampling(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tel := New(Options{Logger: logger, SampleEvery: map[slog.Level]int{slog.LevelDebug: 10}})

	stats := core.StepStats{SelectedName: "m", Weights: []float64{0.9, 0.1}}
	for k := 0; k < 100; k++ {
		stats.Iteration = k
		stats.Switched = k == 50
		tel.EngineStep(&stats)
	}

	var debugs, infos int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Level string `json:"level"`
			Msg   string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		switch rec.Msg {
		case "step":
			debugs++
		case "mode switch":
			infos++
		}
	}
	if debugs != 10 {
		t.Fatalf("debug records = %d, want 10", debugs)
	}
	if infos != 1 {
		t.Fatalf("mode switch records = %d, want 1", infos)
	}
}

// A logger whose handler is above the record level costs nothing and
// emits nothing.
func TestLogDisabledLevel(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	tel := New(Options{Logger: logger})
	stats := core.StepStats{SelectedName: "m", Switched: true, Weights: []float64{1}}
	tel.EngineStep(&stats)
	if buf.Len() != 0 {
		t.Fatalf("unexpected log output: %s", buf.String())
	}
}

func TestTopTwo(t *testing.T) {
	top, second := topTwo([]float64{0.2, 0.7, 0.1})
	if top != 0.7 || second != 0.2 {
		t.Fatalf("topTwo = %v, %v", top, second)
	}
	top, second = topTwo(nil)
	if top != 0 || second != 0 {
		t.Fatalf("topTwo(nil) = %v, %v", top, second)
	}
}

func TestHTTPSurface(t *testing.T) {
	tel := New(Options{})
	stats := core.StepStats{Iteration: 4, SelectedName: "enc", Weights: []float64{0.8, 0.2}}
	tel.EngineStep(&stats)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, MetricStepsTotal+" 1") {
		t.Fatalf("/metrics code=%d body=%s", code, body)
	}
	code, body = get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot code=%d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Iteration != 4 || snap.SelectedMode != "enc" {
		t.Fatalf("/snapshot = %+v", snap)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"roboads"`) {
		t.Fatalf("/debug/vars code=%d", code)
	}
	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	tel := New(Options{})
	srv, addr, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
