package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarTarget is the registry the process-wide /debug/vars "roboads"
// variable reads from. expvar.Publish is global and panics on duplicate
// names, so the publication happens once per process and always follows
// the most recently served Telemetry instance.
var (
	expvarOnce   sync.Once
	expvarTarget atomic.Pointer[Registry]
)

func publishExpvar(reg *Registry) {
	expvarTarget.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("roboads", expvar.Func(func() any {
			if r := expvarTarget.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// Handler returns the telemetry HTTP surface:
//
//	/metrics      Prometheus text exposition of the registry
//	/snapshot     JSON dump of current weights, window states, last decision
//	/debug/vars   expvar (includes the registry under "roboads")
//	/debug/pprof  the standard pprof index and profiles
func (t *Telemetry) Handler() http.Handler {
	publishExpvar(t.reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry HTTP server on addr (e.g. ":8080" or
// "127.0.0.1:0") in a background goroutine and returns the server and
// its bound address. The caller shuts it down with srv.Close or
// srv.Shutdown.
func (t *Telemetry) Serve(addr string) (*http.Server, net.Addr, error) {
	return t.ServeWith(addr, nil)
}

// ServeWith is Serve with additional handlers mounted beside the
// telemetry surface on the same server — e.g. the fleet session API
// under "/v1/". Patterns follow http.ServeMux semantics; the telemetry
// surface is the fallback for everything unmatched.
func (t *Telemetry) ServeWith(addr string, mounts map[string]http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	handler := t.Handler()
	if len(mounts) > 0 {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		for pattern, h := range mounts {
			mux.Handle(pattern, h)
		}
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
