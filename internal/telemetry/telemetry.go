package telemetry

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"

	"roboads/internal/core"
	"roboads/internal/detect"
)

// Metric names exported by a Telemetry instance. DESIGN.md §9 carries
// the full inventory with semantics.
const (
	MetricStepSeconds      = "roboads_engine_step_seconds"
	MetricModeSeconds      = "roboads_engine_mode_step_seconds"
	MetricPoolWaitSeconds  = "roboads_engine_pool_wait_seconds"
	MetricFrameGapSeconds  = "roboads_trace_frame_gap_seconds"
	MetricStepsTotal       = "roboads_engine_steps_total"
	MetricModeSwitches     = "roboads_engine_mode_switches_total"
	MetricFloorHits        = "roboads_engine_weight_floor_hits_total"
	MetricModeFailures     = "roboads_engine_mode_failures_total"
	MetricJacobiFallbacks  = "roboads_nuise_jacobi_fallbacks_total"
	MetricDroppedReadings  = "roboads_engine_dropped_readings_total" // + {sensor="..."}
	MetricDecisionsTotal   = "roboads_decider_decisions_total"
	MetricConditionChanges = "roboads_decider_condition_changes_total"
	MetricAlarmEdges       = "roboads_decider_alarm_transitions_total" // + {kind,to}
	MetricTopWeight        = "roboads_engine_top_weight"
	MetricSecondWeight     = "roboads_engine_second_weight"
	MetricSensorStat       = "roboads_decider_sensor_stat"
	MetricActuatorStat     = "roboads_decider_actuator_stat"
	MetricSensorWindow     = "roboads_decider_sensor_window_fill"
	MetricActuatorWindow   = "roboads_decider_actuator_window_fill"
)

// Options configures a Telemetry instance.
type Options struct {
	// Logger receives the structured event stream. Nil disables event
	// logging entirely (metrics still accumulate).
	Logger *slog.Logger
	// SampleEvery maps a log level to a sampling period: a record at
	// that level is emitted once per N occurrences. Levels absent from
	// the map (or mapped to values < 2) are emitted unsampled. The
	// compact per-Step record logs at Debug, so a typical production
	// setting samples Debug (e.g. every 100th step) and leaves Info —
	// mode switches, alarm edges — unsampled.
	SampleEvery map[slog.Level]int
}

// Telemetry is the runtime observability hub: it implements both
// core.Observer and detect.Observer, accumulates metrics in a Registry,
// emits structured events, and keeps the state the /snapshot endpoint
// serves. All observer methods are safe for concurrent use.
type Telemetry struct {
	reg *Registry
	log *slog.Logger

	// sampleEvery / sampleN implement per-level log sampling. The four
	// slots cover slog's standard levels (Debug, Info, Warn, Error).
	sampleEvery [4]int
	sampleN     [4]atomic.Int64

	stepSeconds     *Histogram
	modeSeconds     *Histogram
	poolWaitSeconds *Histogram
	frameGapSeconds *Histogram

	stepsTotal       *Counter
	modeSwitches     *Counter
	floorHits        *Counter
	modeFailures     *Counter
	jacobiFallbacks  *Counter
	decisionsTotal   *Counter
	conditionChanges *Counter

	topWeight      *Gauge
	secondWeight   *Gauge
	sensorStat     *Gauge
	actuatorStat   *Gauge
	sensorWindow   *Gauge
	actuatorWindow *Gauge

	// droppedMu guards the per-sensor dropped-reading counter cache;
	// drops are rare, so the lock is off the common path.
	droppedMu sync.Mutex
	dropped   map[string]*Counter
	alarmEdge map[string]*Counter

	// snapMu guards the /snapshot state. Weights are copied into a
	// reused buffer so steady-state snapshot upkeep does not allocate.
	snapMu sync.Mutex
	snap   snapshotState
}

// snapshotState is the mutable last-seen detector state behind
// /snapshot.
type snapshotState struct {
	iteration     int
	selected      int
	selectedName  string
	weights       []float64
	pValue        float64
	likelihood    float64
	lastDecision  DecisionSnapshot
	haveDecision  bool
	prevSensor    bool
	prevActuator  bool
	everDecided   bool
	perSensorStat map[string]float64
}

// New returns a Telemetry instance with a fresh registry.
func New(opts Options) *Telemetry {
	t := &Telemetry{
		reg:       NewRegistry(),
		log:       opts.Logger,
		dropped:   make(map[string]*Counter),
		alarmEdge: make(map[string]*Counter),
	}
	for level, every := range opts.SampleEvery {
		if i := levelSlot(level); i >= 0 {
			t.sampleEvery[i] = every
		}
	}

	lat := LatencyBuckets()
	t.stepSeconds = t.reg.Histogram(MetricStepSeconds, "Engine.Step wall time in seconds.", lat)
	t.modeSeconds = t.reg.Histogram(MetricModeSeconds, "Per-mode NUISE latency in seconds.", lat)
	t.poolWaitSeconds = t.reg.Histogram(MetricPoolWaitSeconds, "Mode-bank submit-to-start queue wait in seconds.", lat)
	t.frameGapSeconds = t.reg.Histogram(MetricFrameGapSeconds, "Inter-frame gap of a replayed trace in seconds.", lat)

	t.stepsTotal = t.reg.Counter(MetricStepsTotal, "Engine control iterations completed.")
	t.modeSwitches = t.reg.Counter(MetricModeSwitches, "Selected-mode changes between consecutive iterations.")
	t.floorHits = t.reg.Counter(MetricFloorHits, "Mode weights pinned at the epsilon floor.")
	t.modeFailures = t.reg.Counter(MetricModeFailures, "Modes that produced no result in an iteration.")
	t.jacobiFallbacks = t.reg.Counter(MetricJacobiFallbacks, "NUISE steps that took the Jacobi pseudo-inverse fallback; nonzero on a clean run is a perf regression.")
	t.decisionsTotal = t.reg.Counter(MetricDecisionsTotal, "Decision-maker iterations completed.")
	t.conditionChanges = t.reg.Counter(MetricConditionChanges, "Confirmed-condition transitions.")

	t.topWeight = t.reg.Gauge(MetricTopWeight, "Normalized weight of the selected mode.")
	t.secondWeight = t.reg.Gauge(MetricSecondWeight, "Second-highest normalized mode weight.")
	t.sensorStat = t.reg.Gauge(MetricSensorStat, "Aggregate sensor chi-square statistic of the last decision.")
	t.actuatorStat = t.reg.Gauge(MetricActuatorStat, "Actuator chi-square statistic of the last decision.")
	t.sensorWindow = t.reg.Gauge(MetricSensorWindow, "Aggregate sensor c-of-w window fill level (0..1).")
	t.actuatorWindow = t.reg.Gauge(MetricActuatorWindow, "Actuator c-of-w window fill level (0..1).")
	return t
}

// Registry exposes the underlying metrics registry (for extra
// application metrics or direct reads in tests).
func (t *Telemetry) Registry() *Registry { return t.reg }

func levelSlot(l slog.Level) int {
	switch {
	case l < slog.LevelInfo:
		return 0
	case l < slog.LevelWarn:
		return 1
	case l < slog.LevelError:
		return 2
	default:
		return 3
	}
}

// sampled reports whether a record at the given level should be
// emitted under the per-level sampling policy.
func (t *Telemetry) sampled(level slog.Level) bool {
	if t.log == nil || !t.log.Enabled(context.Background(), level) {
		return false
	}
	i := levelSlot(level)
	every := t.sampleEvery[i]
	if every < 2 {
		return true
	}
	return t.sampleN[i].Add(1)%int64(every) == 1
}

// --- core.Observer ---------------------------------------------------------

// EngineStep implements core.Observer.
func (t *Telemetry) EngineStep(s *core.StepStats) {
	t.stepsTotal.Inc()
	t.stepSeconds.Observe(float64(s.WallNanos) * 1e-9)
	if s.Switched {
		t.modeSwitches.Inc()
	}
	if s.FloorHits > 0 {
		t.floorHits.Add(int64(s.FloorHits))
	}
	if s.ModesFailed > 0 {
		t.modeFailures.Add(int64(s.ModesFailed))
	}
	if s.JacobiFallbacks > 0 {
		t.jacobiFallbacks.Add(s.JacobiFallbacks)
	}
	top, second := topTwo(s.Weights)
	t.topWeight.Set(top)
	t.secondWeight.Set(second)

	t.snapMu.Lock()
	t.snap.iteration = s.Iteration
	t.snap.selected = s.Selected
	t.snap.selectedName = s.SelectedName
	if cap(t.snap.weights) < len(s.Weights) {
		t.snap.weights = make([]float64, len(s.Weights))
	}
	t.snap.weights = t.snap.weights[:len(s.Weights)]
	copy(t.snap.weights, s.Weights)
	t.snap.pValue = s.PValue
	t.snap.likelihood = s.Likelihood
	t.snapMu.Unlock()

	if s.Switched && t.sampled(slog.LevelInfo) {
		t.log.Info("mode switch",
			"k", s.Iteration, "mode", s.SelectedName, "selected", s.Selected,
			"top", top, "second", second, "pvalue", s.PValue)
	}
	if t.sampled(slog.LevelDebug) {
		t.log.Debug("step",
			"k", s.Iteration, "mode", s.SelectedName,
			"top", top, "second", second,
			"pvalue", s.PValue, "likelihood", s.Likelihood,
			"wall_ns", s.WallNanos, "floor_hits", s.FloorHits)
	}
}

// ModeStep implements core.Observer.
func (t *Telemetry) ModeStep(mode int, name string, nanos int64, ok bool) {
	t.modeSeconds.Observe(float64(nanos) * 1e-9)
}

// PoolWait implements core.Observer.
func (t *Telemetry) PoolWait(nanos int64) {
	t.poolWaitSeconds.Observe(float64(nanos) * 1e-9)
}

// DroppedReading implements core.Observer.
func (t *Telemetry) DroppedReading(sensor string) {
	t.droppedMu.Lock()
	c, ok := t.dropped[sensor]
	if !ok {
		c = t.reg.Counter(MetricDroppedReadings+`{sensor="`+sensor+`"}`,
			"Iterations a sensing workflow's reading was missing from the input map.")
		t.dropped[sensor] = c
	}
	t.droppedMu.Unlock()
	c.Inc()
	if t.sampled(slog.LevelWarn) {
		t.log.Warn("dropped reading", "sensor", sensor)
	}
}

// FrameGap records the inter-frame gap of a replayed trace, so offline
// replay reproduces the arrival-cadence histogram of the recorded
// mission (see trace.Frame.TNanos).
func (t *Telemetry) FrameGap(nanos int64) {
	if nanos < 0 {
		return
	}
	t.frameGapSeconds.Observe(float64(nanos) * 1e-9)
}

// --- detect.Observer -------------------------------------------------------

// Decision implements detect.Observer.
func (t *Telemetry) Decision(s *detect.DecisionStats) {
	t.decisionsTotal.Inc()
	t.sensorStat.Set(s.SensorStat)
	if !s.ActuatorHeld {
		t.actuatorStat.Set(s.ActuatorStat)
	}
	t.sensorWindow.Set(s.SensorWindowFill)
	t.actuatorWindow.Set(s.ActuatorWindowFill)
	if s.ConditionChanged {
		t.conditionChanges.Inc()
	}

	t.snapMu.Lock()
	prevSensor, prevActuator, ever := t.snap.prevSensor, t.snap.prevActuator, t.snap.everDecided
	t.snap.prevSensor, t.snap.prevActuator, t.snap.everDecided = s.SensorAlarm, s.ActuatorAlarm, true
	t.snap.lastDecision = DecisionSnapshot{
		Iteration:          s.Iteration,
		Mode:               s.Mode,
		Condition:          s.Condition,
		SensorStat:         s.SensorStat,
		SensorThreshold:    s.SensorThreshold,
		SensorAlarm:        s.SensorAlarm,
		ActuatorStat:       s.ActuatorStat,
		ActuatorThreshold:  s.ActuatorThreshold,
		ActuatorAlarm:      s.ActuatorAlarm,
		ActuatorHeld:       s.ActuatorHeld,
		SensorWindowFill:   s.SensorWindowFill,
		ActuatorWindowFill: s.ActuatorWindowFill,
	}
	t.snap.haveDecision = true
	if t.snap.perSensorStat == nil {
		t.snap.perSensorStat = make(map[string]float64, len(s.PerSensor))
	}
	clear(t.snap.perSensorStat)
	for k, v := range s.PerSensor {
		t.snap.perSensorStat[k] = v
	}
	t.snapMu.Unlock()

	// Alarm edges: one counter per (kind, direction), plus a detailed
	// record carrying the condition code.
	if ever || s.SensorAlarm || s.ActuatorAlarm {
		if s.SensorAlarm != prevSensor {
			t.alarmEdgeCounter("sensor", s.SensorAlarm).Inc()
			t.logAlarmEdge("sensor", s)
		}
		if s.ActuatorAlarm != prevActuator {
			t.alarmEdgeCounter("actuator", s.ActuatorAlarm).Inc()
			t.logAlarmEdge("actuator", s)
		}
	}
	if s.ConditionChanged && t.sampled(slog.LevelInfo) {
		t.log.Info("condition change",
			"k", s.Iteration, "condition", s.Condition, "mode", s.Mode,
			"sensor_stat", s.SensorStat, "sensor_threshold", s.SensorThreshold,
			"actuator_stat", s.ActuatorStat, "actuator_threshold", s.ActuatorThreshold)
	}
}

func (t *Telemetry) alarmEdgeCounter(kind string, rising bool) *Counter {
	to := "off"
	if rising {
		to = "on"
	}
	key := kind + "/" + to
	t.droppedMu.Lock()
	defer t.droppedMu.Unlock()
	c, ok := t.alarmEdge[key]
	if !ok {
		c = t.reg.Counter(MetricAlarmEdges+`{kind="`+kind+`",to="`+to+`"}`,
			"Confirmed alarm state transitions by kind and direction.")
		t.alarmEdge[key] = c
	}
	return c
}

func (t *Telemetry) logAlarmEdge(kind string, s *detect.DecisionStats) {
	if !t.sampled(slog.LevelInfo) {
		return
	}
	t.log.Info("alarm edge",
		"k", s.Iteration, "kind", kind, "condition", s.Condition,
		"sensor_alarm", s.SensorAlarm, "actuator_alarm", s.ActuatorAlarm,
		"sensor_stat", s.SensorStat, "actuator_stat", s.ActuatorStat)
}

// topTwo returns the largest and second-largest entries of w.
func topTwo(w []float64) (top, second float64) {
	for _, v := range w {
		if v > top {
			top, second = v, top
		} else if v > second {
			second = v
		}
	}
	return top, second
}

// --- snapshot --------------------------------------------------------------

// DecisionSnapshot is the /snapshot view of the last decision.
type DecisionSnapshot struct {
	Iteration          int     `json:"iteration"`
	Mode               string  `json:"mode"`
	Condition          string  `json:"condition"`
	SensorStat         float64 `json:"sensorStat"`
	SensorThreshold    float64 `json:"sensorThreshold"`
	SensorAlarm        bool    `json:"sensorAlarm"`
	ActuatorStat       float64 `json:"actuatorStat"`
	ActuatorThreshold  float64 `json:"actuatorThreshold"`
	ActuatorAlarm      bool    `json:"actuatorAlarm"`
	ActuatorHeld       bool    `json:"actuatorHeld"`
	SensorWindowFill   float64 `json:"sensorWindowFill"`
	ActuatorWindowFill float64 `json:"actuatorWindowFill"`
}

// Snapshot is the /snapshot response: the detector's last-seen state
// plus a full metrics dump.
type Snapshot struct {
	Iteration    int                `json:"iteration"`
	Selected     int                `json:"selected"`
	SelectedMode string             `json:"selectedMode"`
	Weights      []float64          `json:"weights"`
	PValue       float64            `json:"pValue"`
	Likelihood   float64            `json:"likelihood"`
	PerSensor    map[string]float64 `json:"perSensorStats,omitempty"`
	LastDecision *DecisionSnapshot  `json:"lastDecision,omitempty"`
	Metrics      map[string]any     `json:"metrics"`
}

// Snapshot returns a copy of the current state, safe to marshal and
// retain.
func (t *Telemetry) Snapshot() Snapshot {
	t.snapMu.Lock()
	s := Snapshot{
		Iteration:    t.snap.iteration,
		Selected:     t.snap.selected,
		SelectedMode: t.snap.selectedName,
		Weights:      append([]float64(nil), t.snap.weights...),
		PValue:       t.snap.pValue,
		Likelihood:   t.snap.likelihood,
	}
	if len(t.snap.perSensorStat) > 0 {
		s.PerSensor = make(map[string]float64, len(t.snap.perSensorStat))
		for k, v := range t.snap.perSensorStat {
			s.PerSensor[k] = v
		}
	}
	if t.snap.haveDecision {
		d := t.snap.lastDecision
		s.LastDecision = &d
	}
	t.snapMu.Unlock()
	s.Metrics = t.reg.Snapshot()
	return s
}

// Interface conformance.
var (
	_ core.Observer   = (*Telemetry)(nil)
	_ detect.Observer = (*Telemetry)(nil)
)
