package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Frame-lifecycle tracing (DESIGN.md §14): every frame accepted by the
// fleet can carry a Span — a record of monotonic stage timestamps from
// HTTP decode through reply flush. Stages are contiguous laps, so per-
// stage attribution sums exactly to the span's end-to-end wall time:
// the spans are self-validating, and a stage histogram whose p50s do
// not roughly sum to the end-to-end p50 indicates a measurement bug,
// not a serving anomaly.
//
// The whole layer is contractually free when disabled: a nil *Tracer
// begets nil *Span values, every Span method is a nil-receiver no-op
// (one pointer compare, no clock read, no allocation), and the fleet
// allocates nothing span-related on the disabled path — pinned by the
// benchoverhead allocs gate on BenchmarkFleetStep.

// Stage indexes one contiguous segment of a frame's server-side
// lifecycle. The segments partition decode-to-flush wall time.
type Stage uint8

const (
	// StageDecode is wire read + frame decode (for streamed frames,
	// only time spent on bytes already buffered — client think time
	// between frames is not part of any span).
	StageDecode Stage = iota
	// StageAdmit is submit-path work up to queue admission, including
	// any server-side backpressure retry wait on the streaming path.
	StageAdmit
	// StageQueueWait is queued-to-dequeued: time the frame sat in the
	// session's bounded queue before a shard worker picked its job up.
	StageQueueWait
	// StageCoalesce is dequeue-to-step-start: batch position wait (a
	// frame deep in a batch steps after its predecessors) plus any
	// coalesced-quantum staging.
	StageCoalesce
	// StageStep is the detector step itself.
	StageStep
	// StageWALAppend is WAL encode + write, excluding any inline fsync
	// (shifted into StageFsync so fsync policy changes move time
	// between stages instead of hiding inside the append).
	StageWALAppend
	// StageFsync is durability wait: an inline per-frame fsync, or the
	// group-commit barrier — for a frame early in a batch this includes
	// the time its batch-mates spent stepping before the shared fsync,
	// which is exactly the latency cost group commit trades for
	// throughput.
	StageFsync
	// StageReply is step-done-to-flushed: reply scheduling, encode, and
	// the flush to the client socket.
	StageReply
	// StageCount sizes per-stage arrays.
	StageCount
)

// stageNames are the wire/metric names, index-aligned with the Stage
// constants.
var stageNames = [StageCount]string{
	"decode", "admit", "queue_wait", "coalesce",
	"step", "wal_append", "fsync", "reply",
}

// String returns the stage's wire name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Frame-tracing metric names. Each stage gets its own histogram family
// (the registry's histograms are label-free), plus the end-to-end
// family their laps sum to.
const (
	// MetricFrameE2ESeconds is the decode-to-flush wall time histogram.
	MetricFrameE2ESeconds = "roboads_frame_e2e_seconds"
	// metricFrameStageFmt shapes the per-stage histogram names:
	// roboads_frame_stage_<stage>_seconds.
	metricFrameStagePrefix = "roboads_frame_stage_"
	metricFrameStageSuffix = "_seconds"
)

// MetricFrameStageSeconds returns the histogram name for one stage.
func MetricFrameStageSeconds(s Stage) string {
	return metricFrameStagePrefix + s.String() + metricFrameStageSuffix
}

// exemplarCap is the reservoir size for sampled whole-span exemplars.
const exemplarCap = 64

// Span is one frame's lifecycle record. Obtain it from Tracer.Begin;
// a nil Span (disabled tracing) accepts every method as a no-op.
// A Span is owned by one goroutine at a time and handed off with the
// frame it annotates; it is not safe for concurrent use.
type Span struct {
	tr      *Tracer
	session string
	k       int
	start   time.Time
	last    time.Time
	marks   [StageCount]int64 // nanoseconds per stage
}

// SetK records the frame's iteration index for the exemplar.
func (sp *Span) SetK(k int) {
	if sp == nil {
		return
	}
	sp.k = k
}

// Lap attributes the time since the previous lap (or Begin) to stage
// and advances the lap clock. Laps are cumulative: lapping the same
// stage twice adds.
func (sp *Span) Lap(stage Stage) {
	if sp == nil {
		return
	}
	now := time.Now()
	sp.marks[stage] += now.Sub(sp.last).Nanoseconds()
	sp.last = now
}

// Shift moves nanos of already-lapped attribution from one stage to
// another — e.g. the inline WAL fsync measured inside the append lap.
// The move is clamped so no stage goes negative; the stage sum (and
// therefore the end-to-end total) is unchanged.
func (sp *Span) Shift(from, to Stage, nanos int64) {
	if sp == nil || nanos <= 0 {
		return
	}
	if nanos > sp.marks[from] {
		nanos = sp.marks[from]
	}
	sp.marks[from] -= nanos
	sp.marks[to] += nanos
}

// Finish closes the span: end-to-end and per-stage latencies are
// observed into the tracer's histograms, the span may be reservoir-
// sampled as an exemplar, and its storage returns to the pool. The
// span must not be touched afterwards.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	sp.tr.finish(sp)
}

// Drop abandons the span without observing it (frame rejected before
// it had a lifecycle worth recording), returning its storage to the
// pool.
func (sp *Span) Drop() {
	if sp == nil {
		return
	}
	sp.tr.pool.Put(sp)
}

// Exemplar is one reservoir-sampled whole span, as served by
// /v1/debug/trace.
type Exemplar struct {
	// Session and K identify the frame.
	Session string `json:"session"`
	K       int    `json:"k"`
	// StartUnixNanos is the span's wall-clock start.
	StartUnixNanos int64 `json:"startUnixNanos"`
	// TotalNanos is decode-to-flush wall time — always exactly the sum
	// of StageNanos (the laps partition it).
	TotalNanos int64 `json:"totalNanos"`
	// StageNanos maps stage name to attributed nanoseconds; zero stages
	// are omitted.
	StageNanos map[string]int64 `json:"stageNanos"`
}

// exemplar is the allocation-light internal form; the JSON map is
// materialized only at snapshot time.
type exemplar struct {
	session    string
	k          int
	startUnix  int64
	totalNanos int64
	marks      [StageCount]int64
}

// Tracer owns the frame-lifecycle instrumentation: per-stage and
// end-to-end histograms in a Registry, a span pool, and a reservoir of
// sampled exemplars. A nil *Tracer is the disabled state — Begin
// returns nil and Snapshot reports Enabled false.
type Tracer struct {
	reg   *Registry
	e2e   *Histogram
	stage [StageCount]*Histogram
	pool  sync.Pool

	mu        sync.Mutex
	reservoir []exemplar
	seen      int64
	rng       uint64
}

// NewTracer registers the frame-tracing histograms in reg (nil: a
// private registry) and returns an enabled tracer.
func NewTracer(reg *Registry) *Tracer {
	if reg == nil {
		reg = NewRegistry()
	}
	t := &Tracer{
		reg:       reg,
		reservoir: make([]exemplar, 0, exemplarCap),
		rng:       0x9E3779B97F4A7C15,
	}
	bounds := traceLatencyBuckets()
	t.e2e = reg.Histogram(MetricFrameE2ESeconds, "Frame decode-to-flush wall time in seconds.", bounds)
	for s := Stage(0); s < StageCount; s++ {
		t.stage[s] = reg.Histogram(MetricFrameStageSeconds(s),
			"Frame lifecycle stage '"+s.String()+"' latency in seconds.", bounds)
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// traceLatencyBuckets extends the standard latency layout down to
// 100ns: queue and coalesce waits of an unloaded fleet sit well below
// the engine step's microseconds.
func traceLatencyBuckets() []float64 {
	return append([]float64{1e-7, 2e-7, 5e-7}, LatencyBuckets()...)
}

// Begin opens a span for one frame of a session, with the lap clock
// anchored at start (the instant the frame's bytes began decoding).
// Returns nil — the universal no-op span — on a nil tracer.
func (t *Tracer) Begin(session string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.tr = t
	sp.session = session
	sp.k = 0
	sp.start = start
	sp.last = start
	clear(sp.marks[:])
	return sp
}

func (t *Tracer) finish(sp *Span) {
	var total int64
	for s := Stage(0); s < StageCount; s++ {
		m := sp.marks[s]
		if m <= 0 {
			continue
		}
		total += m
		t.stage[s].Observe(float64(m) * 1e-9)
	}
	t.e2e.Observe(float64(total) * 1e-9)
	t.sample(sp, total)
	t.pool.Put(sp)
}

// sample reservoir-samples the finished span (algorithm R: the first
// exemplarCap spans always enter; afterwards span n replaces a random
// slot with probability cap/n), so the exemplar set stays an unbiased
// sample of the whole run, not just its tail.
func (t *Tracer) sample(sp *Span, total int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	var slot int
	if len(t.reservoir) < exemplarCap {
		t.reservoir = append(t.reservoir, exemplar{})
		slot = len(t.reservoir) - 1
	} else {
		// xorshift64: cheap, deterministic, and plenty uniform for
		// sampling decisions.
		t.rng ^= t.rng << 13
		t.rng ^= t.rng >> 7
		t.rng ^= t.rng << 17
		j := int64(t.rng % uint64(t.seen))
		if j >= exemplarCap {
			return
		}
		slot = int(j)
	}
	t.reservoir[slot] = exemplar{
		session:    sp.session,
		k:          sp.k,
		startUnix:  sp.start.UnixNano(),
		totalNanos: total,
		marks:      sp.marks,
	}
}

// TraceSnapshot is the /v1/debug/trace response: per-stage and
// end-to-end latency summaries plus the sampled exemplars.
type TraceSnapshot struct {
	// Enabled is false when the server runs without frame tracing; all
	// other fields are then zero.
	Enabled bool `json:"enabled"`
	// Frames is the number of finished spans.
	Frames int64 `json:"frames"`
	// E2E summarizes decode-to-flush wall time.
	E2E HistogramSnapshot `json:"e2e"`
	// Stages maps stage name to its latency summary; stages never
	// exercised (e.g. fsync without durability) are omitted.
	Stages map[string]HistogramSnapshot `json:"stages"`
	// StageSumP50Seconds is the sum of the per-stage p50s — the
	// self-validation figure that must land within measurement noise of
	// E2E.P50 (sums of quantiles are not quantiles of sums, so the two
	// agree only approximately; a gross mismatch means broken laps).
	StageSumP50Seconds float64 `json:"stageSumP50Seconds"`
	// Exemplars are the reservoir-sampled whole spans.
	Exemplars []Exemplar `json:"exemplars"`
}

// Snapshot returns the current trace state. Nil-safe: a nil tracer
// reports Enabled false.
func (t *Tracer) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	snap := TraceSnapshot{
		Enabled: true,
		Frames:  t.e2e.Count(),
		E2E:     t.e2e.snapshot(),
		Stages:  make(map[string]HistogramSnapshot, StageCount),
	}
	for s := Stage(0); s < StageCount; s++ {
		if t.stage[s].Count() == 0 {
			continue
		}
		hs := t.stage[s].snapshot()
		snap.Stages[s.String()] = hs
		snap.StageSumP50Seconds += hs.P50
	}
	t.mu.Lock()
	snap.Exemplars = make([]Exemplar, 0, len(t.reservoir))
	for _, e := range t.reservoir {
		ex := Exemplar{
			Session:        e.session,
			K:              e.k,
			StartUnixNanos: e.startUnix,
			TotalNanos:     e.totalNanos,
			StageNanos:     make(map[string]int64, StageCount),
		}
		for s := Stage(0); s < StageCount; s++ {
			if e.marks[s] > 0 {
				ex.StageNanos[s.String()] = e.marks[s]
			}
		}
		snap.Exemplars = append(snap.Exemplars, ex)
	}
	t.mu.Unlock()
	return snap
}

// ServeTrace writes the trace snapshot as indented JSON — the body of
// GET /v1/debug/trace. Nil-safe: a disabled tracer serves
// {"enabled": false}.
func (t *Tracer) ServeTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.Snapshot())
}
