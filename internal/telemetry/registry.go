// Package telemetry is the runtime observability layer of the RoboADS
// monitor: a metrics registry (atomic counters, gauges, and fixed-bucket
// histograms — no locks and no allocations on the observation path), a
// structured event log built on log/slog with per-level sampling, and an
// HTTP surface exposing Prometheus text exposition, pprof, expvar, and a
// JSON state snapshot.
//
// The package is wired into the engine and the decision maker through
// the Observer hook interfaces those packages define (core.Observer,
// detect.Observer); a Telemetry value implements both. With no observer
// attached the instrumented code paths reduce to a single nil check, so
// the detector pays nothing when monitoring is off.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ringSize is the per-histogram capacity of the recent-sample ring used
// for snapshot quantile estimates. A power of two keeps the index math a
// mask.
const ringSize = 256

// Histogram is a lock-free fixed-bucket histogram. Bucket bounds are
// chosen at registration and never change, so Observe is a linear scan
// over ~20 float64 compares plus three atomic adds — no locks, no
// allocations. A small ring buffer of recent raw samples rides along so
// the JSON snapshot can report approximate quantiles without the
// information loss of bucket interpolation.
type Histogram struct {
	bounds  []float64 // upper bucket bounds, ascending; +Inf bucket implicit
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
	ring    [ringSize]atomic.Uint64
	ringPos atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one sample. Safe for concurrent use from any
// goroutine; never allocates.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	p := h.ringPos.Add(1) - 1
	h.ring[p&(ringSize-1)].Store(math.Float64bits(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// recent returns a sorted copy of the ring-buffer samples (at most
// ringSize, at most Count()).
func (h *Histogram) recent() []float64 {
	n := h.total.Load()
	if n > ringSize {
		n = ringSize
	}
	out := make([]float64, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, math.Float64frombits(h.ring[i].Load()))
	}
	sort.Float64s(out)
	return out
}

// HistogramSnapshot is the JSON form of a histogram: totals plus
// quantile estimates over the recent-sample ring.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	r := h.recent()
	if len(r) == 0 {
		return s
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(r)-1))
		return r[i]
	}
	s.P50, s.P90, s.P95, s.P99, s.Max = q(0.50), q(0.90), q(0.95), q(0.99), r[len(r)-1]
	return s
}

// LatencyBuckets returns the fixed bucket layout used for every latency
// histogram in this package: roughly logarithmic from 1µs to 10s, in
// seconds.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2e-6, 5e-6,
		1e-5, 2e-5, 5e-5,
		1e-4, 2e-4, 5e-4,
		1e-3, 2e-3, 5e-3,
		1e-2, 2e-2, 5e-2,
		1e-1, 2e-1, 5e-1,
		1, 2, 5, 10,
	}
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration (get-or-create) takes a lock;
// observation on the returned handles is lock-free, so hot paths
// register once up front and hold the pointers.
//
// Metric names follow Prometheus conventions; a name may carry a fixed
// label set inline, e.g. `roboads_dropped_readings_total{sensor="ips"}`.
// Histograms must be label-free (their exposition synthesizes the `le`
// label).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // by base name (labels stripped)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// baseName strips an inline label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	r.setHelp(name, help)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	r.setHelp(name, help)
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed. The bounds of an existing
// histogram are kept.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	r.setHelp(name, help)
	return h
}

func (r *Registry) setHelp(name, help string) {
	base := baseName(name)
	if _, ok := r.help[base]; !ok && help != "" {
		r.help[base] = help
	}
}

// CounterValue returns the value of the named counter, or 0 if it was
// never registered. Intended for tests and snapshots, not hot paths.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// GaugeValue returns the value of the named gauge, or 0 if absent.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if g, ok := r.gauges[name]; ok {
		return g.Value()
	}
	return 0
}

// HistogramCount returns the observation count of the named histogram,
// or 0 if absent.
func (r *Registry) HistogramCount(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if h, ok := r.hists[name]; ok {
		return h.Count()
	}
	return 0
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	// TYPE/HELP lines must appear once per base name, before the first
	// sample of that family; group the labeled variants.
	counterNames := sortedKeysC(r.counters)
	gaugeNames := sortedKeysG(r.gauges)
	histNames := sortedKeysH(r.hists)

	seenType := make(map[string]bool)
	header := func(base, kind string) string {
		if seenType[base] {
			return ""
		}
		seenType[base] = true
		var b strings.Builder
		if help := r.help[base]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		return b.String()
	}

	for _, name := range counterNames {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", header(baseName(name), "counter"), name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range gaugeNames {
		if _, err := fmt.Fprintf(w, "%s%s %g\n", header(baseName(name), "gauge"), name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range histNames {
		h := r.hists[name]
		if _, err := io.WriteString(w, header(name, "histogram")); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a JSON-marshalable view of every metric.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.snapshot()
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}

func sortedKeysC(m map[string]*Counter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysG(m map[string]*Gauge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysH(m map[string]*Histogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
