package mat

import (
	"math"
	"testing"
	"testing/quick"
)

// randomSPD builds a well-conditioned SPD matrix Gᵀ·G + I·n from the
// deterministic quick RNG.
func randomSPD(rng func() float64, n int) *Mat {
	g := randomMat(rng, n, n)
	m := TMulInto(New(n, n), g, g)
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+float64(n))
	}
	return m
}

func maxAbsDiff(a, b *Mat) float64 {
	return a.Sub(b).MaxAbs()
}

// CholFactorInto must agree bit-for-bit with the allocating Cholesky():
// both accumulate in the same element order.
func TestPropertyCholFactorMatchesCholesky(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for n := 1; n <= 12; n++ {
			m := randomSPD(rng, n)
			l := New(n, n)
			if !CholFactorInto(l, m) {
				return false
			}
			want, err := m.Cholesky()
			if err != nil {
				return false
			}
			if !bitEqual(l, want) {
				return false
			}
			// In-place: dst aliasing m must produce the same factor.
			alias := m.Clone()
			if !CholFactorInto(alias, alias) || !bitEqual(alias, l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The factor must reconstruct the input: L·Lᵀ = M to relative precision,
// with a zeroed strict upper triangle.
func TestPropertyCholFactorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for n := 1; n <= 12; n++ {
			m := randomSPD(rng, n)
			l := New(n, n)
			if !CholFactorInto(l, m) {
				return false
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if l.At(i, j) != 0 {
						return false
					}
				}
			}
			if maxAbsDiff(MulTInto(New(n, n), l, l), m) > 1e-9*math.Max(1, m.MaxAbs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Solves against the factor must satisfy the original system, match the
// LU solve to tight tolerance, and support dst aliasing b.
func TestPropertyCholSolveResiduals(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for n := 1; n <= 12; n++ {
			m := randomSPD(rng, n)
			l := New(n, n)
			if !CholFactorInto(l, m) {
				return false
			}
			scale := math.Max(1, m.MaxAbs())

			b := make(Vec, n)
			for i := range b {
				b[i] = rng()
			}
			x := CholSolveVecInto(make(Vec, n), l, b)
			res := m.MulVec(x).Sub(b)
			if res.MaxAbs() > 1e-9*scale {
				return false
			}
			// Aliasing dst == b.
			ba := b.Clone()
			CholSolveVecInto(ba, l, ba)
			for i := range x {
				if x[i] != ba[i] {
					return false
				}
			}

			bm := randomMat(rng, n, n+1)
			xm := CholSolveMatInto(New(n, n+1), l, bm)
			if maxAbsDiff(m.Mul(xm), bm) > 1e-9*scale*math.Max(1, bm.MaxAbs()) {
				return false
			}
			// Aliasing dst == b, and column-consistency with the vector solve.
			bma := bm.Clone()
			CholSolveMatInto(bma, l, bma)
			if !bitEqual(bma, xm) {
				return false
			}
			lu, err := m.SolveMat(bm)
			if err != nil || maxAbsDiff(lu, xm) > 1e-9*math.Max(1, lu.MaxAbs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The one-substitution Mahalanobis statistic must match the explicit
// LU-based InvQuadForm and never go negative; the log-determinant must
// match the LU determinant.
func TestPropertyCholQuadFormAndLogDet(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for n := 1; n <= 12; n++ {
			m := randomSPD(rng, n)
			l := New(n, n)
			if !CholFactorInto(l, m) {
				return false
			}
			v := make(Vec, n)
			for i := range v {
				v[i] = rng()
			}
			got := CholInvQuadForm(l, v, make(Vec, n))
			if got < 0 {
				return false
			}
			want, err := m.InvQuadForm(v)
			if err != nil || math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				return false
			}
			// nil work buffer allocates but must agree exactly.
			if CholInvQuadForm(l, v, nil) != got {
				return false
			}
			logDet := math.Log(m.Det())
			if math.Abs(CholLogDet(l)-logDet) > 1e-9*math.Max(1, math.Abs(logDet)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Non-PD inputs must be rejected, not silently factored: indefinite,
// rank-deficient, zero, and NaN-contaminated matrices.
func TestCholFactorRejectsNonPD(t *testing.T) {
	indefinite := Diag(1, -1, 2)
	if CholFactorInto(New(3, 3), indefinite) {
		t.Error("factored an indefinite matrix")
	}
	// Rank-1 PSD: outer product of a single vector.
	v := VecOf(1, 2, 3)
	rankDef := v.Outer(v)
	if CholFactorInto(New(3, 3), rankDef) {
		t.Error("factored a rank-deficient matrix")
	}
	if CholFactorInto(New(2, 2), New(2, 2)) {
		t.Error("factored the zero matrix")
	}
	nan := Diag(1, 1)
	nan.Set(1, 1, math.NaN())
	if CholFactorInto(New(2, 2), nan) {
		t.Error("factored a NaN-contaminated matrix")
	}
	// Near-singular relative to its own scale: pivots below
	// cholPivotTol·maxDiag must fail even when strictly positive.
	tiny := Diag(1, 1e-14)
	if CholFactorInto(New(2, 2), tiny) {
		t.Error("factored a matrix with a pivot below the relative floor")
	}
}

// RangeComplementInto must produce an orthonormal basis of the
// orthogonal complement of range(m), and reject rank-deficient m.
func TestPropertyRangeComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for p := 2; p <= 12; p++ {
			for q := 1; q < p; q++ {
				m := randomMat(rng, p, q)
				z := New(p, p-q)
				if !RangeComplementInto(z, m, New(p, q)) {
					return false
				}
				// Zᵀ·Z = I.
				ztz := TMulInto(New(p-q, p-q), z, z)
				if maxAbsDiff(ztz, Identity(p-q)) > 1e-12 {
					return false
				}
				// Zᵀ·m = 0.
				if TMulInto(New(p-q, q), z, m).MaxAbs() > 1e-12*math.Max(1, m.MaxAbs()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeComplementRejectsRankDeficient(t *testing.T) {
	// Two proportional columns: rank 1 < 2.
	m := New(4, 2)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, float64(i+1))
		m.Set(i, 1, 2*float64(i+1))
	}
	if RangeComplementInto(New(4, 2), m, New(4, 2)) {
		t.Error("accepted a rank-deficient input")
	}
	if RangeComplementInto(New(3, 2), New(3, 1), New(3, 1)) {
		t.Error("accepted a zero input")
	}
}

// RangeBasisInto must produce an orthonormal basis that spans range(m)
// exactly (U·Uᵀ·m = m), support dst aliasing m, and reject
// rank-deficient inputs.
func TestPropertyRangeBasis(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for p := 2; p <= 12; p++ {
			for q := 1; q <= p; q++ {
				m := randomMat(rng, p, q)
				u := New(p, q)
				if !RangeBasisInto(u, m, New(p, q)) {
					return false
				}
				// Uᵀ·U = I.
				utu := TMulInto(New(q, q), u, u)
				if maxAbsDiff(utu, Identity(q)) > 1e-12 {
					return false
				}
				// Projecting m onto range(U) is the identity: range(U) ⊇ range(m).
				proj := u.Mul(TMulInto(New(q, q), u, m))
				if maxAbsDiff(proj, m) > 1e-12*math.Max(1, m.MaxAbs()) {
					return false
				}
				// Aliasing dst == m must produce the same basis.
				alias := m.Clone()
				if !RangeBasisInto(alias, alias, New(p, q)) || !bitEqual(alias, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	// Rank-deficient: proportional columns.
	m := New(4, 2)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, float64(i+1))
		m.Set(i, 1, -3*float64(i+1))
	}
	if RangeBasisInto(New(4, 2), m, New(4, 2)) {
		t.Error("accepted a rank-deficient input")
	}
}

// The deflation identity behind the NUISE fast path, on matrices with
// the step's actual structure M = R* − B·F⁻¹·Bᵀ (F = Bᵀ·(R*)⁻¹·B): the
// null space of M is (R*)⁻¹·range(B), so its range is R*·range(Z) for Z
// the orthonormal complement of range(B). With U = orth(R*·Z),
// U·(Uᵀ·M·U)⁻¹·Uᵀ equals the Moore–Penrose pseudo-inverse and
// det(Uᵀ·M·U) the pseudo-determinant. The basis choice is load-bearing:
// deflating with Z itself preserves the quad form on range(M) but
// under-counts the determinant by det(Zᵀ·U)² ≤ 1 — asserted below as a
// strict inequality check against the U-based value.
func TestPropertyDeflatedPseudoInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		for p := 3; p <= 8; p++ {
			q := 1 + p%2 // alternate q = 1, 2
			r := p - q
			b := randomMat(rng, p, q)
			rStar := randomSPD(rng, p)
			// M = R* − B·F⁻¹·Bᵀ with F = Bᵀ·(R*)⁻¹·B.
			rsInvB, err := rStar.SolveMat(b)
			if err != nil {
				return false
			}
			f := TMulInto(New(q, q), b, rsInvB)
			fInvBt, err := f.SolveMat(b.T())
			if err != nil {
				return false
			}
			m := rStar.Sub(b.Mul(fInvBt))
			m = SymmetrizeInto(m, m)

			z := New(p, r)
			if !RangeComplementInto(z, b, New(p, q)) {
				return false
			}
			u := New(p, r)
			if !RangeBasisInto(u, rStar.Mul(z), New(p, r)) {
				return false
			}
			ru := TMulInto(New(r, r), u, m.Mul(u))
			rul := New(r, r)
			if !CholFactorInto(rul, ru) {
				return false
			}
			inv := CholSolveMatInto(New(r, r), rul, Identity(r))
			deflated := MulTInto(New(p, p), MulInto(New(p, r), u, inv), u)

			pinv, rank, pdet, err := m.PseudoInverseSym(0)
			if err != nil || rank != r {
				return false
			}
			scale := math.Max(1, pinv.MaxAbs())
			if maxAbsDiff(deflated, pinv) > 1e-9*scale {
				return false
			}
			logPdet := math.Log(pdet)
			if math.Abs(CholLogDet(rul)-logPdet) > 1e-9*math.Max(1, math.Abs(logPdet)) {
				return false
			}
			// The Z-deflated determinant must under-count: det(Zᵀ·M·Z) ≤ pdet.
			rz := TMulInto(New(r, r), z, m.Mul(z))
			rzl := New(r, r)
			if !CholFactorInto(rzl, rz) {
				return false
			}
			if CholLogDet(rzl) > logPdet+1e-9*math.Max(1, math.Abs(logPdet)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCholCache(t *testing.T) {
	c := NewCholCache()
	m := Diag(4, 9)
	l1, ok := c.Factor(m)
	if !ok || l1 == nil {
		t.Fatal("SPD matrix failed to factor")
	}
	if l1.At(0, 0) != 2 || l1.At(1, 1) != 3 {
		t.Errorf("factor = %v", l1)
	}
	l2, ok := c.Factor(m)
	if !ok || l2 != l1 {
		t.Error("second Factor call did not return the cached factor")
	}
	quad, err := c.InvQuadForm(m, VecOf(2, 3))
	if err != nil || math.Abs(quad-2) > 1e-12 {
		t.Errorf("InvQuadForm = %v, %v; want 2", quad, err)
	}

	// A non-PD matrix caches its failure and falls back to LU semantics.
	sing := Diag(1, 0)
	if _, ok := c.Factor(sing); ok {
		t.Error("singular matrix factored")
	}
	if _, err := c.InvQuadForm(sing, VecOf(1, 1)); err == nil {
		t.Error("singular InvQuadForm did not error")
	}
	// Indefinite but invertible: the LU fallback must still answer.
	indef := Diag(1, -1)
	quad, err = c.InvQuadForm(indef, VecOf(1, 1))
	if err != nil || math.Abs(quad-0) > 1e-12 {
		t.Errorf("LU fallback quad = %v, %v; want 0", quad, err)
	}

	// Reset must force recomputation (storage may be recycled, so the
	// check is by value: mutate the key matrix and verify the factor
	// follows it).
	c.Reset()
	m.Set(0, 0, 16)
	l3, ok := c.Factor(m)
	if !ok || l3.At(0, 0) != 4 || l3.At(1, 1) != 3 {
		t.Errorf("Reset did not drop the cached factor: %v", l3)
	}
}

// The vector Into helpers must match their allocating counterparts
// bit-for-bit, including when dst aliases an operand.
func TestVecIntoVariantsMatchAllocating(t *testing.T) {
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		a := Vec{rng(), rng(), rng(), rng()}
		b := Vec{rng(), rng(), rng(), rng()}
		sum, diff := a.Add(b), a.Sub(b)
		got := AddVecInto(make(Vec, 4), a, b)
		for i := range sum {
			if got[i] != sum[i] {
				return false
			}
		}
		got = SubVecInto(make(Vec, 4), a, b)
		for i := range diff {
			if got[i] != diff[i] {
				return false
			}
		}
		aa := a.Clone()
		AddVecInto(aa, aa, b)
		for i := range sum {
			if aa[i] != sum[i] {
				return false
			}
		}
		ab := a.Clone()
		SubVecInto(ab, ab, b)
		for i := range diff {
			if ab[i] != diff[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
