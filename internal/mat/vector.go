// Package mat provides the dense linear algebra used by the RoboADS
// estimators: small vectors and matrices with solvers, factorizations,
// pseudo-inverses and pseudo-determinants.
//
// Every state, reading, and covariance in the system is only a handful of
// dimensions (2–12), so the package optimizes for clarity and numerical
// robustness rather than asymptotic speed. All operations allocate their
// results; nothing aliases its inputs unless documented.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// VecOf returns a vector holding a copy of the given values.
func VecOf(values ...float64) Vec {
	v := make(Vec, len(values))
	copy(v, values)
	return v
}

// Len returns the number of elements.
func (v Vec) Len() int { return len(v) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	mustSameLen(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w.
func (v Vec) Sub(w Vec) Vec {
	mustSameLen(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s·v.
func (v Vec) Scale(s float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Dot returns the inner product vᵀw.
func (v Vec) Dot(w Vec) float64 {
	mustSameLen(v, w)
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// MaxAbs returns the largest absolute element, or 0 for an empty vector.
func (v Vec) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Concat returns the concatenation of v followed by w.
func (v Vec) Concat(w Vec) Vec {
	out := make(Vec, 0, len(v)+len(w))
	out = append(out, v...)
	out = append(out, w...)
	return out
}

// Slice returns a copy of v[lo:hi].
func (v Vec) Slice(lo, hi int) Vec {
	out := make(Vec, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// AsColumn returns v as an n×1 matrix.
func (v Vec) AsColumn() *Mat {
	m := New(len(v), 1)
	copy(m.data, v)
	return m
}

// AsRow returns v as a 1×n matrix.
func (v Vec) AsRow() *Mat {
	m := New(1, len(v))
	copy(m.data, v)
	return m
}

// Outer returns the outer product v·wᵀ.
func (v Vec) Outer(w Vec) *Mat {
	out := New(len(v), len(w))
	for i, vi := range v {
		for j, wj := range w {
			out.Set(i, j, vi*wj)
		}
	}
	return out
}

// String renders the vector for debugging.
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.6g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// HasNaN reports whether any element is NaN or ±Inf.
func (v Vec) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// ErrDimension indicates an operation on incompatibly sized operands.
// Dimension errors are programming errors, so the package reports them via
// panic with this sentinel wrapped inside; tests assert on it.
var ErrDimension = errors.New("mat: dimension mismatch")

func mustSameLen(v, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Errorf("%w: vector lengths %d and %d", ErrDimension, len(v), len(w)))
	}
}
