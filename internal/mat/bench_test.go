package mat

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the linear algebra hot path (matrix sizes match
// the estimator's: states 3–4, readings 3–10).

func benchMatrix(n int, seed int64) *Mat {
	rng := rand.New(rand.NewSource(seed))
	m := randomSymmetric(rng, n)
	return m.Mul(m.T()).Add(Identity(n)) // well-conditioned SPD
}

func BenchmarkMul4x4(b *testing.B) {
	a := benchMatrix(4, 1)
	c := benchMatrix(4, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkMul10x10(b *testing.B) {
	a := benchMatrix(10, 1)
	c := benchMatrix(10, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkInverse4x4(b *testing.B) {
	a := benchMatrix(4, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve4(b *testing.B) {
	a := benchMatrix(4, 4)
	v := VecOf(1, 2, 3, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Solve(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym4x4(b *testing.B) {
	a := benchMatrix(4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.EigenSym(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPseudoInverse7x7(b *testing.B) {
	a := benchMatrix(7, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := a.PseudoInverseSym(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky4x4(b *testing.B) {
	a := benchMatrix(4, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Cholesky(); err != nil {
			b.Fatal(err)
		}
	}
}
