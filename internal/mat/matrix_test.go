package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	v := VecOf(1, 2, 3)
	w := VecOf(4, 5, 6)

	if got := v.Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := VecOf(3, 4).Norm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := VecOf(-7, 2).MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestVecCloneIsIndependent(t *testing.T) {
	v := VecOf(1, 2)
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestVecConcatSlice(t *testing.T) {
	v := VecOf(1, 2).Concat(VecOf(3))
	if v.Len() != 3 || v[2] != 3 {
		t.Fatalf("Concat = %v", v)
	}
	s := v.Slice(1, 3)
	if s.Len() != 2 || s[0] != 2 || s[1] != 3 {
		t.Fatalf("Slice = %v", s)
	}
	s[0] = 42
	if v[1] != 2 {
		t.Fatal("Slice aliases the original")
	}
}

func TestVecOuter(t *testing.T) {
	m := VecOf(1, 2).Outer(VecOf(3, 4, 5))
	want := FromRows([]float64{3, 4, 5}, []float64{6, 8, 10})
	if !m.Equal(want, 0) {
		t.Fatalf("Outer =\n%v", m)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrDimension) {
			t.Fatalf("panic %v does not wrap ErrDimension", r)
		}
	}()
	VecOf(1).Add(VecOf(1, 2))
}

func TestMatMulIdentity(t *testing.T) {
	a := FromRows([]float64{1, 2}, []float64{3, 4})
	if got := a.Mul(Identity(2)); !got.Equal(a, 0) {
		t.Fatalf("A·I =\n%v", got)
	}
	if got := Identity(2).Mul(a); !got.Equal(a, 0) {
		t.Fatalf("I·A =\n%v", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([]float64{1, 2, 3}, []float64{4, 5, 6})
	b := FromRows([]float64{7, 8}, []float64{9, 10}, []float64{11, 12})
	got := a.Mul(b)
	want := FromRows([]float64{58, 64}, []float64{139, 154})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul =\n%v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([]float64{1, 2}, []float64{3, 4})
	got := a.MulVec(VecOf(5, 6))
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([]float64{1, 2, 3}, []float64{4, 5, 6})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 {
		t.Fatalf("T =\n%v", at)
	}
	if !at.T().Equal(a, 0) {
		t.Fatal("double transpose differs")
	}
}

func TestSubmatrixAndSetSubmatrix(t *testing.T) {
	a := FromRows([]float64{1, 2, 3}, []float64{4, 5, 6}, []float64{7, 8, 9})
	sub := a.Submatrix(1, 3, 0, 2)
	want := FromRows([]float64{4, 5}, []float64{7, 8})
	if !sub.Equal(want, 0) {
		t.Fatalf("Submatrix =\n%v", sub)
	}
	b := New(3, 3)
	b.SetSubmatrix(1, 1, FromRows([]float64{1, 2}, []float64{3, 4}))
	if b.At(1, 1) != 1 || b.At(2, 2) != 4 || b.At(0, 0) != 0 {
		t.Fatalf("SetSubmatrix =\n%v", b)
	}
}

func TestVStack(t *testing.T) {
	a := FromRows([]float64{1, 2})
	b := FromRows([]float64{3, 4}, []float64{5, 6})
	got := a.VStack(b)
	if got.Rows() != 3 || got.At(2, 1) != 6 {
		t.Fatalf("VStack =\n%v", got)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([]float64{2, 1}, []float64{1, 3})
	x, err := a.Solve(VecOf(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 → x=4/5, y=7/5
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([]float64{1, 2}, []float64{2, 4})
	if _, err := a.Solve(VecOf(1, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Inverse err = %v, want ErrSingular", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := randomWellConditioned(rng, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !a.Mul(inv).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: A·A⁻¹ ≠ I\n%v", trial, a.Mul(inv))
		}
	}
}

func TestDet(t *testing.T) {
	a := FromRows([]float64{3, 0}, []float64{0, 2})
	if got := a.Det(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("Det = %v, want 6", got)
	}
	b := FromRows([]float64{0, 1}, []float64{1, 0})
	if got := b.Det(); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Det = %v, want -1", got)
	}
	c := FromRows([]float64{1, 2}, []float64{2, 4})
	if got := c.Det(); got != 0 {
		t.Fatalf("Det of singular = %v, want 0", got)
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([]float64{4, 2}, []float64{2, 3})
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	if !l.Mul(l.T()).Equal(a, 1e-12) {
		t.Fatalf("L·Lᵀ =\n%v", l.Mul(l.T()))
	}
	if l.At(0, 1) != 0 {
		t.Fatal("Cholesky factor is not lower triangular")
	}
	if _, err := FromRows([]float64{1, 2}, []float64{2, 1}).Cholesky(); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		a := randomSymmetric(rng, n)
		eig, v, err := a.EigenSym()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		recon := v.Mul(Diag(eig...)).Mul(v.T())
		if !recon.Equal(a, 1e-8) {
			t.Fatalf("trial %d: V·Λ·Vᵀ ≠ A", trial)
		}
		// Eigenvector matrix must be orthogonal.
		if !v.Mul(v.T()).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: V not orthogonal", trial)
		}
	}
}

func TestPseudoInverseFullRank(t *testing.T) {
	a := FromRows([]float64{2, 0}, []float64{0, 5})
	pinv, rank, pdet, err := a.PseudoInverseSym(0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 2 {
		t.Fatalf("rank = %d", rank)
	}
	if math.Abs(pdet-10) > 1e-9 {
		t.Fatalf("pseudoDet = %v, want 10", pdet)
	}
	if !pinv.Equal(FromRows([]float64{0.5, 0}, []float64{0, 0.2}), 1e-12) {
		t.Fatalf("pinv =\n%v", pinv)
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// Rank-1 projector scaled by 3: eigenvalues {3, 0}.
	a := FromRows([]float64{1.5, 1.5}, []float64{1.5, 1.5})
	pinv, rank, pdet, err := a.PseudoInverseSym(0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Fatalf("rank = %d, want 1", rank)
	}
	if math.Abs(pdet-3) > 1e-9 {
		t.Fatalf("pseudoDet = %v, want 3", pdet)
	}
	// Moore–Penrose: A·A†·A = A.
	if !a.Mul(pinv).Mul(a).Equal(a, 1e-9) {
		t.Fatal("A·A†·A ≠ A")
	}
}

func TestPseudoInverseZeroMatrix(t *testing.T) {
	_, rank, _, err := New(3, 3).PseudoInverseSym(0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 0 {
		t.Fatalf("rank = %d, want 0", rank)
	}
}

func TestRank(t *testing.T) {
	if got := Identity(4).Rank(0); got != 4 {
		t.Fatalf("rank(I4) = %d", got)
	}
	a := FromRows([]float64{1, 2}, []float64{2, 4}, []float64{3, 6})
	if got := a.Rank(0); got != 1 {
		t.Fatalf("rank = %d, want 1", got)
	}
	if got := New(2, 2).Rank(0); got != 0 {
		t.Fatalf("rank(0) = %d, want 0", got)
	}
}

func TestIsPositiveSemiDefinite(t *testing.T) {
	if !Diag(1, 2, 0).IsPositiveSemiDefinite(0) {
		t.Fatal("PSD diag rejected")
	}
	if Diag(1, -1).IsPositiveSemiDefinite(0) {
		t.Fatal("indefinite accepted")
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([]float64{1, 2}, []float64{4, 1})
	s := a.Symmetrize()
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Fatalf("Symmetrize =\n%v", s)
	}
}

func TestQuadForm(t *testing.T) {
	a := Diag(2, 3)
	if got := a.QuadForm(VecOf(1, 2)); got != 14 {
		t.Fatalf("QuadForm = %v, want 14", got)
	}
}

func TestHasNaN(t *testing.T) {
	v := VecOf(1, math.NaN())
	if !v.HasNaN() {
		t.Fatal("vector NaN missed")
	}
	m := Diag(1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("matrix Inf missed")
	}
	if Identity(2).HasNaN() {
		t.Fatal("clean matrix flagged")
	}
}

// --- property-based tests -------------------------------------------------

// boundedVec produces small vectors with entries in [-10, 10] to keep
// floating-point comparisons meaningful.
func boundedVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.Float64()*20 - 10
	}
	return v
}

func randomSymmetric(rng *rand.Rand, n int) *Mat {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			x := rng.NormFloat64()
			a.Set(i, j, x)
			a.Set(j, i, x)
		}
	}
	return a
}

// randomWellConditioned returns I·n + small random symmetric noise, which is
// comfortably invertible.
func randomWellConditioned(rng *rand.Rand, n int) *Mat {
	a := randomSymmetric(rng, n).Scale(0.3)
	return a.Add(Identity(n).Scale(float64(n) + 1))
}

func TestPropertyDotSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		v, w := boundedVec(rng, n), boundedVec(rng, n)
		return math.Abs(v.Dot(w)-w.Dot(v)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		v, w := boundedVec(rng, n), boundedVec(rng, n)
		a, b := v.Add(w), w.Add(v)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulAssociativeWithVec(t *testing.T) {
	// (A·B)·v == A·(B·v)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomSymmetric(rng, n)
		b := randomSymmetric(rng, n)
		v := boundedVec(rng, n)
		left := a.Mul(b).MulVec(v)
		right := a.MulVec(b.MulVec(v))
		return left.Sub(right).MaxAbs() < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeOfProduct(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomSymmetric(rng, n)
		b := randomSymmetric(rng, n)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySolveMatchesInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomWellConditioned(rng, n)
		b := boundedVec(rng, n)
		x, err := a.Solve(b)
		if err != nil {
			return false
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return x.Sub(inv.MulVec(b)).MaxAbs() < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCholeskyReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		// B·Bᵀ + I is symmetric positive definite.
		b := randomSymmetric(rng, n)
		a := b.Mul(b.T()).Add(Identity(n))
		l, err := a.Cholesky()
		if err != nil {
			return false
		}
		return l.Mul(l.T()).Equal(a, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPseudoInversePenroseAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		// Build a possibly rank-deficient PSD matrix: Gᵀ·G with G of
		// random row count.
		rows := 1 + rng.Intn(n+1)
		g := New(rows, n)
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, rng.NormFloat64())
			}
		}
		a := g.T().Mul(g)
		pinv, _, _, err := a.PseudoInverseSym(0)
		if err != nil {
			return false
		}
		// Penrose axioms 1 and 2 for symmetric A, at tolerances relative
		// to each side's scale: near-singular draws keep eigenvalues just
		// above the rank cutoff, whose reciprocals make pinv (and the
		// axiom residuals) arbitrarily large in absolute terms.
		ax1 := a.Mul(pinv).Mul(a).Equal(a, 1e-7*math.Max(1, a.MaxAbs()))
		ax2 := pinv.Mul(a).Mul(pinv).Equal(pinv, 1e-7*math.Max(1, pinv.MaxAbs()))
		return ax1 && ax2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
