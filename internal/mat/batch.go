package mat

import "fmt"

// Batch is a bank of K same-shape matrices laid out for one-pass blocked
// kernels. Two flavors share the type:
//
//   - NewBatch allocates one contiguous backing array and carves the K
//     blocks out of it back-to-back (structure-of-arrays layout: a kernel
//     sweeping the bank walks memory linearly), and
//   - NewViewBatch allocates only the K headers; each block is bound to
//     an externally owned matrix with SetBlock. This is how per-session
//     state (x̂ₘ, Pˣₘ) and shared constants (R, Q) enter a batched NUISE
//     stage without being copied.
//
// Block(i) returns a *Mat header without allocating, so every scalar
// mat routine applies unchanged to a batch element. The batched kernels
// below (MulBatchInto, CholFactorBatchInto, …) are defined as exactly
// that: the scalar kernel applied block-by-block in one sweep. Each
// block therefore sees the identical operation — same loop structure,
// same summation order, same pivot tolerances — as the scalar path,
// which is what makes the batched engine bit-for-bit reproducible per
// session.
type Batch struct {
	rows, cols int
	blocks     []Mat
}

// NewBatch returns a batch of k zero matrices of the given shape backed
// by one contiguous allocation.
func NewBatch(k, rows, cols int) *Batch {
	if k < 0 || rows < 0 || cols < 0 {
		panic(fmt.Errorf("%w: batch %d of %dx%d", ErrDimension, k, rows, cols))
	}
	b := &Batch{rows: rows, cols: cols, blocks: make([]Mat, k)}
	backing := make([]float64, k*rows*cols)
	stride := rows * cols
	for i := range b.blocks {
		b.blocks[i] = Mat{rows: rows, cols: cols, data: backing[i*stride : (i+1)*stride : (i+1)*stride]}
	}
	return b
}

// NewViewBatch returns a batch of k unbound headers of the given shape.
// Every block must be bound with SetBlock before use.
func NewViewBatch(k, rows, cols int) *Batch {
	if k < 0 || rows < 0 || cols < 0 {
		panic(fmt.Errorf("%w: batch %d of %dx%d", ErrDimension, k, rows, cols))
	}
	return &Batch{rows: rows, cols: cols, blocks: make([]Mat, k)}
}

// Len returns the number of blocks.
func (b *Batch) Len() int { return len(b.blocks) }

// Rows returns the per-block row count.
func (b *Batch) Rows() int { return b.rows }

// Cols returns the per-block column count.
func (b *Batch) Cols() int { return b.cols }

// Block returns the i-th block as an ordinary matrix header, without
// allocating. The header stays valid for the life of the batch.
func (b *Batch) Block(i int) *Mat { return &b.blocks[i] }

// SetBlock binds block i to an externally owned matrix. The matrix must
// match the batch shape.
func (b *Batch) SetBlock(i int, m *Mat) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Errorf("%w: block %dx%d into batch of %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols))
	}
	b.blocks[i] = *m
}

// VecBatch is a bank of K same-length vectors, the vector counterpart of
// Batch: one contiguous backing (NewVecBatch) or externally bound views
// (NewViewVecBatch).
type VecBatch struct {
	n      int
	blocks []Vec
}

// NewVecBatch returns a batch of k zero vectors of length n backed by
// one contiguous allocation.
func NewVecBatch(k, n int) *VecBatch {
	if k < 0 || n < 0 {
		panic(fmt.Errorf("%w: vec batch %d of %d", ErrDimension, k, n))
	}
	b := &VecBatch{n: n, blocks: make([]Vec, k)}
	backing := make([]float64, k*n)
	for i := range b.blocks {
		b.blocks[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return b
}

// NewViewVecBatch returns a batch of k unbound vector views of length n.
func NewViewVecBatch(k, n int) *VecBatch {
	if k < 0 || n < 0 {
		panic(fmt.Errorf("%w: vec batch %d of %d", ErrDimension, k, n))
	}
	return &VecBatch{n: n, blocks: make([]Vec, k)}
}

// Len returns the number of blocks.
func (b *VecBatch) Len() int { return len(b.blocks) }

// Dim returns the per-block length.
func (b *VecBatch) Dim() int { return b.n }

// Block returns the i-th vector. The slice aliases batch storage.
func (b *VecBatch) Block(i int) Vec { return b.blocks[i] }

// SetBlock binds block i to an externally owned vector of length n.
func (b *VecBatch) SetBlock(i int, v Vec) {
	if len(v) != b.n {
		panic(fmt.Errorf("%w: vector %d into vec batch of %d", ErrDimension, len(v), b.n))
	}
	b.blocks[i] = v
}

// skip reports whether block i is masked out. A nil mask means every
// block is active.
func skip(active []bool, i int) bool { return active != nil && !active[i] }

// The batched kernels below validate shapes once per call — every block
// of a Batch has the batch shape by construction (NewBatch carving,
// SetBlock's check) — and then sweep the scalar kernels' raw loop
// bodies block by block. One shared body per operation keeps the
// summation order, zero-skip branches, and pivot tolerances identical
// to the scalar path, which is what makes per-block results
// bit-identical. Unlike the scalar Into kernels, no per-block aliasing
// check runs: destination batches must not share storage with operand
// batches.

func mustBatchShape(dst *Batch, rows, cols int) {
	if dst.rows != rows || dst.cols != cols {
		panic(fmt.Errorf("%w: destination batch is %dx%d, want %dx%d", ErrDimension, dst.rows, dst.cols, rows, cols))
	}
}

// MulBatchInto computes dst[i] = a[i]·b[i] for every active block and
// returns dst.
func MulBatchInto(dst, a, b *Batch, active []bool) *Batch {
	if a.cols != b.rows {
		panic(fmt.Errorf("%w: batch %dx%d times %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustBatchShape(dst, a.rows, b.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		mulRaw(dst.blocks[i].data, a.blocks[i].data, b.blocks[i].data, a.rows, a.cols, b.cols)
	}
	return dst
}

// MulTBatchInto computes dst[i] = a[i]·b[i]ᵀ for every active block.
func MulTBatchInto(dst, a, b *Batch, active []bool) *Batch {
	if a.cols != b.cols {
		panic(fmt.Errorf("%w: batch %dx%d times transpose of %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustBatchShape(dst, a.rows, b.rows)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		mulTRaw(dst.blocks[i].data, a.blocks[i].data, b.blocks[i].data, a.rows, a.cols, b.rows)
	}
	return dst
}

// TMulBatchInto computes dst[i] = a[i]ᵀ·b[i] for every active block.
func TMulBatchInto(dst, a, b *Batch, active []bool) *Batch {
	if a.rows != b.rows {
		panic(fmt.Errorf("%w: batch transpose of %dx%d times %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustBatchShape(dst, a.cols, b.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		tMulRaw(dst.blocks[i].data, a.blocks[i].data, b.blocks[i].data, a.rows, a.cols, b.cols)
	}
	return dst
}

// TBatchInto computes dst[i] = m[i]ᵀ for every active block.
func TBatchInto(dst, m *Batch, active []bool) *Batch {
	mustBatchShape(dst, m.cols, m.rows)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		tRaw(dst.blocks[i].data, m.blocks[i].data, m.rows, m.cols)
	}
	return dst
}

// AddBatchInto computes dst[i] = a[i] + b[i] for every active block.
// dst may be a or b.
func AddBatchInto(dst, a, b *Batch, active []bool) *Batch {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Errorf("%w: batch %dx%d plus %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustBatchShape(dst, a.rows, a.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		dd, ad, bd := dst.blocks[i].data, a.blocks[i].data, b.blocks[i].data
		for j := range dd {
			dd[j] = ad[j] + bd[j]
		}
	}
	return dst
}

// SubBatchInto computes dst[i] = a[i] − b[i] for every active block.
// dst may be a or b.
func SubBatchInto(dst, a, b *Batch, active []bool) *Batch {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Errorf("%w: batch %dx%d minus %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustBatchShape(dst, a.rows, a.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		dd, ad, bd := dst.blocks[i].data, a.blocks[i].data, b.blocks[i].data
		for j := range dd {
			dd[j] = ad[j] - bd[j]
		}
	}
	return dst
}

// ScaleBatchInto computes dst[i] = s·m[i] for every active block. dst
// may be m.
func ScaleBatchInto(dst *Batch, s float64, m *Batch, active []bool) *Batch {
	mustBatchShape(dst, m.rows, m.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		dd, md := dst.blocks[i].data, m.blocks[i].data
		for j := range dd {
			dd[j] = s * md[j]
		}
	}
	return dst
}

// SymmetrizeBatchInto computes dst[i] = (m[i] + m[i]ᵀ)/2 for every
// active block. dst may be m.
func SymmetrizeBatchInto(dst, m *Batch, active []bool) *Batch {
	if m.rows != m.cols {
		panic(fmt.Errorf("%w: symmetrize batch of %dx%d", ErrDimension, m.rows, m.cols))
	}
	mustBatchShape(dst, m.rows, m.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		symRaw(dst.blocks[i].data, m.blocks[i].data, m.rows)
	}
	return dst
}

// IdentityBatchInto sets every active block of dst to the identity.
func IdentityBatchInto(dst *Batch, active []bool) *Batch {
	if dst.rows != dst.cols {
		panic(fmt.Errorf("%w: identity batch of %dx%d", ErrDimension, dst.rows, dst.cols))
	}
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		idRaw(dst.blocks[i].data, dst.rows)
	}
	return dst
}

// MulVecBatchInto computes dst[i] = m[i]·v[i] for every active block.
func MulVecBatchInto(dst *VecBatch, m *Batch, v *VecBatch, active []bool) *VecBatch {
	if m.cols != v.n || dst.n != m.rows {
		panic(fmt.Errorf("%w: batch %dx%d times vec batch of %d into %d", ErrDimension, m.rows, m.cols, v.n, dst.n))
	}
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		mulVecRaw(dst.blocks[i], m.blocks[i].data, v.blocks[i], m.rows, m.cols)
	}
	return dst
}

// AddVecBatchInto computes dst[i] = a[i] + b[i] for every active block.
func AddVecBatchInto(dst, a, b *VecBatch, active []bool) *VecBatch {
	if a.n != b.n || dst.n != a.n {
		panic(fmt.Errorf("%w: vec batch add %d + %d into %d", ErrDimension, a.n, b.n, dst.n))
	}
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		dd, ad, bd := dst.blocks[i], a.blocks[i], b.blocks[i]
		for j := range dd {
			dd[j] = ad[j] + bd[j]
		}
	}
	return dst
}

// SubVecBatchInto computes dst[i] = a[i] − b[i] for every active block.
func SubVecBatchInto(dst, a, b *VecBatch, active []bool) *VecBatch {
	if a.n != b.n || dst.n != a.n {
		panic(fmt.Errorf("%w: vec batch sub %d - %d into %d", ErrDimension, a.n, b.n, dst.n))
	}
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		dd, ad, bd := dst.blocks[i], a.blocks[i], b.blocks[i]
		for j := range dd {
			dd[j] = ad[j] - bd[j]
		}
	}
	return dst
}

// CholFactorBatchInto factors every active block of m into dst and
// records per-block success in ok: ok[i] is the scalar CholFactorInto
// verdict for block i. Blocks that fail keep whatever CholFactorInto
// left in dst[i]; callers mask them out of later stages. Masked-out
// blocks keep their previous ok value untouched.
func CholFactorBatchInto(dst, m *Batch, active []bool, ok []bool) {
	if m.rows != m.cols {
		panic(fmt.Errorf("%w: chol batch of %dx%d", ErrDimension, m.rows, m.cols))
	}
	mustBatchShape(dst, m.rows, m.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		ok[i] = cholFactorRaw(dst.blocks[i].data, m.blocks[i].data, m.rows)
	}
}

// CholSolveVecBatchInto solves l[i]·l[i]ᵀ·dst[i] = b[i] for every
// active block, given the lower factors in l.
func CholSolveVecBatchInto(dst *VecBatch, l *Batch, b *VecBatch, active []bool) *VecBatch {
	if b.n != l.rows || dst.n != l.rows {
		panic(fmt.Errorf("%w: chol batch solve %dx%d against b of %d into %d", ErrDimension, l.rows, l.cols, b.n, dst.n))
	}
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		cholSolveVecRaw(dst.blocks[i], l.blocks[i].data, b.blocks[i], l.rows)
	}
	return dst
}

// CholSolveMatBatchInto solves l[i]·l[i]ᵀ·dst[i] = b[i] columnwise for
// every active block, given the lower factors in l. dst must not be l.
func CholSolveMatBatchInto(dst, l, b *Batch, active []bool) *Batch {
	if b.rows != l.rows {
		panic(fmt.Errorf("%w: chol batch solve %dx%d against %dx%d", ErrDimension, l.rows, l.cols, b.rows, b.cols))
	}
	mustBatchShape(dst, l.rows, b.cols)
	for i := range dst.blocks {
		if skip(active, i) {
			continue
		}
		dd, bd := dst.blocks[i].data, b.blocks[i].data
		if &dd[0] != &bd[0] {
			copy(dd, bd)
		}
		cholSolveMatRaw(dd, l.blocks[i].data, l.rows, b.cols)
	}
	return dst
}
