package mat

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFromRowsEmptyAndMismatch(t *testing.T) {
	m := FromRows()
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows(), m.Cols())
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([]float64{1, 2}, []float64{3})
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrDimension) {
			t.Fatalf("panic = %v", r)
		}
	}()
	New(-1, 2)
}

func TestRowColDiagVec(t *testing.T) {
	m := FromRows([]float64{1, 2, 3}, []float64{4, 5, 6})
	if r := m.Row(1); r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row = %v", r)
	}
	if c := m.Col(2); c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col = %v", c)
	}
	if d := m.DiagVec(); d.Len() != 2 || d[0] != 1 || d[1] != 5 {
		t.Fatalf("DiagVec = %v", d)
	}
	// Mutating the returned slices must not touch the matrix.
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row aliases the matrix")
	}
}

func TestSolveMat(t *testing.T) {
	a := FromRows([]float64{2, 0}, []float64{0, 4})
	b := FromRows([]float64{2, 4}, []float64{4, 8})
	x, err := a.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([]float64{1, 2}, []float64{1, 2})
	if !x.Equal(want, 1e-12) {
		t.Fatalf("SolveMat =\n%v", x)
	}
}

func TestScaleAndFrobNorm(t *testing.T) {
	m := FromRows([]float64{3, 0}, []float64{0, 4})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v", got)
	}
	if got := m.Scale(2).At(1, 1); got != 8 {
		t.Fatalf("Scale = %v", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	m := FromRows([]float64{1, 2})
	if s := m.String(); !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Fatalf("String = %q", s)
	}
	v := VecOf(1.5, -2)
	if s := v.String(); !strings.Contains(s, "1.5") {
		t.Fatalf("Vec.String = %q", s)
	}
}

func TestEqualShapes(t *testing.T) {
	if Identity(2).Equal(Identity(3), 1) {
		t.Fatal("different shapes reported equal")
	}
}

func TestInvQuadFormSingular(t *testing.T) {
	singular := FromRows([]float64{1, 1}, []float64{1, 1})
	if _, err := singular.InvQuadForm(VecOf(1, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInvQuadFormKnown(t *testing.T) {
	cov := Diag(4, 9)
	got, err := cov.InvQuadForm(VecOf(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 { // 4/4 + 9/9
		t.Fatalf("InvQuadForm = %v, want 2", got)
	}
}

func TestVStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched vstack accepted")
		}
	}()
	New(1, 2).VStack(New(1, 3))
}

func TestSetSubmatrixOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range block accepted")
		}
	}()
	New(2, 2).SetSubmatrix(1, 1, Identity(2))
}

func TestVecAsMatrixViews(t *testing.T) {
	v := VecOf(1, 2, 3)
	col := v.AsColumn()
	if col.Rows() != 3 || col.Cols() != 1 || col.At(2, 0) != 3 {
		t.Fatalf("AsColumn =\n%v", col)
	}
	row := v.AsRow()
	if row.Rows() != 1 || row.Cols() != 3 || row.At(0, 1) != 2 {
		t.Fatalf("AsRow =\n%v", row)
	}
}

func TestMatSubAndNewVec(t *testing.T) {
	a := FromRows([]float64{5, 6}, []float64{7, 8})
	b := Identity(2)
	got := a.Sub(b)
	if got.At(0, 0) != 4 || got.At(1, 1) != 7 || got.At(0, 1) != 6 {
		t.Fatalf("Sub =\n%v", got)
	}
	v := NewVec(3)
	if v.Len() != 3 || v.MaxAbs() != 0 {
		t.Fatalf("NewVec = %v", v)
	}
}
