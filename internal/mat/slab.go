package mat

import "fmt"

// Slab carves many small matrices and vectors out of a few large
// allocations. A batched engine step must hand each session's Result
// freshly allocated memory (outputs escape to the caller and may be
// retained — the fleet wire layer marshals them after the step
// returns), but paying one heap allocation per tiny matrix is exactly
// the overhead batching exists to remove. A Slab front-loads that cost:
// one float backing array plus one header array serve an entire step's
// worth of escaping values.
//
// Carved memory is never reclaimed or reused — Mat and Vec both return
// zeroed storage that the slab forgets about (beyond accounting), so
// the results own their memory just as if mat.New had produced them.
// When a backing array runs out a fresh one is allocated; previously
// carved values keep pointing at the old one. FloatsUsed/MatsUsed
// report totals so the next step's slab can be sized to carve without
// growing.
type Slab struct {
	data []float64
	hdrs []Mat

	floatsUsed, matsUsed int
}

// NewSlab returns a slab with capacity for the given number of floats
// and matrix headers.
func NewSlab(floats, mats int) *Slab {
	if floats < 0 || mats < 0 {
		panic(fmt.Errorf("%w: slab capacity %d floats, %d mats", ErrDimension, floats, mats))
	}
	return &Slab{data: make([]float64, floats), hdrs: make([]Mat, mats)}
}

// carve returns n zeroed floats from the backing array, growing it when
// exhausted.
func (s *Slab) carve(n int) []float64 {
	if n > len(s.data) {
		grow := 2 * s.floatsUsed
		if grow < n {
			grow = n
		}
		s.data = make([]float64, grow)
	}
	out := s.data[:n:n]
	s.data = s.data[n:]
	s.floatsUsed += n
	return out
}

// Mat carves a zero rows×cols matrix. The matrix owns its storage for
// good: the slab never hands the region out again.
func (s *Slab) Mat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("%w: negative shape %dx%d", ErrDimension, rows, cols))
	}
	if len(s.hdrs) == 0 {
		grow := 2 * s.matsUsed
		if grow < 1 {
			grow = 1
		}
		s.hdrs = make([]Mat, grow)
	}
	m := &s.hdrs[0]
	s.hdrs = s.hdrs[1:]
	s.matsUsed++
	m.rows, m.cols = rows, cols
	m.data = s.carve(rows * cols)
	return m
}

// Vec carves a zero vector of length n.
func (s *Slab) Vec(n int) Vec {
	if n < 0 {
		panic(fmt.Errorf("%w: negative length %d", ErrDimension, n))
	}
	return Vec(s.carve(n))
}

// FloatsUsed returns the total floats carved so far, including growth.
func (s *Slab) FloatsUsed() int { return s.floatsUsed }

// MatsUsed returns the total matrix headers carved so far.
func (s *Slab) MatsUsed() int { return s.matsUsed }
