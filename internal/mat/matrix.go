package mat

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a dense row-major matrix.
type Mat struct {
	rows, cols int
	data       []float64
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("%w: negative shape %dx%d", ErrDimension, rows, cols))
	}
	return &Mat{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows ...[]float64) *Mat {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimension, i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(values ...float64) *Mat {
	m := New(len(values), len(values))
	for i, v := range values {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i as a vector.
func (m *Mat) Row(i int) Vec {
	out := make(Vec, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j as a vector.
func (m *Mat) Col(j int) Vec {
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// DiagVec returns the main diagonal as a vector.
func (m *Mat) DiagVec() Vec {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make(Vec, n)
	for i := 0; i < n; i++ {
		out[i] = m.At(i, i)
	}
	return out
}

// Add returns m + b.
func (m *Mat) Add(b *Mat) *Mat {
	mustSameShape(m, b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Mat) Sub(b *Mat) *Mat {
	mustSameShape(m, b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Mat) Scale(s float64) *Mat {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.cols != b.rows {
		panic(fmt.Errorf("%w: %dx%d times %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.data[k*b.cols : (k+1)*b.cols]
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range rowB {
				rowOut[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Mat) MulVec(v Vec) Vec {
	if m.cols != len(v) {
		panic(fmt.Errorf("%w: %dx%d times vector of length %d", ErrDimension, m.rows, m.cols, len(v)))
	}
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var sum float64
		for j, a := range row {
			sum += a * v[j]
		}
		out[i] = sum
	}
	return out
}

// T returns the transpose of m.
func (m *Mat) T() *Mat {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Symmetrize returns (m + mᵀ)/2, forcing exact symmetry onto a nearly
// symmetric matrix (covariance propagation accumulates tiny asymmetries).
func (m *Mat) Symmetrize() *Mat {
	mustSquare(m)
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(i, j, 0.5*(m.At(i, j)+m.At(j, i)))
		}
	}
	return out
}

// VStack returns the vertical stack [m; b].
func (m *Mat) VStack(b *Mat) *Mat {
	if m.cols != b.cols {
		panic(fmt.Errorf("%w: vstack %dx%d with %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows+b.rows, m.cols)
	copy(out.data, m.data)
	copy(out.data[m.rows*m.cols:], b.data)
	return out
}

// Submatrix returns a copy of the block rows [r0,r1) × cols [c0,c1).
func (m *Mat) Submatrix(r0, r1, c0, c1 int) *Mat {
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			out.Set(i-r0, j-c0, m.At(i, j))
		}
	}
	return out
}

// SubmatrixInto copies the dst.rows×dst.cols block of m starting at
// (r0, c0) into dst and returns dst — Submatrix without the allocation.
func (m *Mat) SubmatrixInto(dst *Mat, r0, c0 int) *Mat {
	if r0 < 0 || c0 < 0 || r0+dst.rows > m.rows || c0+dst.cols > m.cols {
		panic(fmt.Errorf("%w: block %dx%d at (%d,%d) of %dx%d",
			ErrDimension, dst.rows, dst.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < dst.rows; i++ {
		src := m.data[(r0+i)*m.cols+c0:]
		copy(dst.data[i*dst.cols:(i+1)*dst.cols], src[:dst.cols])
	}
	return dst
}

// RowSpan returns a view of rows [r0,r1) sharing m's storage (rows are
// stored contiguously, so a row band needs no copying). Writes through
// the view write into m.
func (m *Mat) RowSpan(r0, r1 int) *Mat {
	if r0 < 0 || r1 < r0 || r1 > m.rows {
		panic(fmt.Errorf("%w: row span [%d,%d) of %dx%d", ErrDimension, r0, r1, m.rows, m.cols))
	}
	return &Mat{rows: r1 - r0, cols: m.cols, data: m.data[r0*m.cols : r1*m.cols]}
}

// Zero clears every entry in place and returns m.
func (m *Mat) Zero() *Mat {
	clear(m.data)
	return m
}

// SetSubmatrix copies b into m starting at (r0, c0), in place.
func (m *Mat) SetSubmatrix(r0, c0 int, b *Mat) {
	if r0+b.rows > m.rows || c0+b.cols > m.cols {
		panic(fmt.Errorf("%w: block %dx%d at (%d,%d) into %dx%d",
			ErrDimension, b.rows, b.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < b.rows; i++ {
		for j := 0; j < b.cols; j++ {
			m.Set(r0+i, c0+j, b.At(i, j))
		}
	}
}

// QuadForm returns vᵀ·m·v.
func (m *Mat) QuadForm(v Vec) float64 {
	return v.Dot(m.MulVec(v))
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Mat) MaxAbs() float64 {
	var out float64
	for _, x := range m.data {
		if a := math.Abs(x); a > out {
			out = a
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm.
func (m *Mat) FrobNorm() float64 {
	var sum float64
	for _, x := range m.data {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Equal reports whether m and b agree elementwise within tol.
func (m *Mat) Equal(b *Mat, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any entry is NaN or ±Inf.
func (m *Mat) HasNaN() bool {
	for _, x := range m.data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		parts := make([]string, m.cols)
		for j := 0; j < m.cols; j++ {
			parts[j] = fmt.Sprintf("%10.6g", m.At(i, j))
		}
		sb.WriteString("[" + strings.Join(parts, " ") + "]")
		if i != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func mustSameShape(a, b *Mat) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Errorf("%w: shapes %dx%d and %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
}

func mustSquare(a *Mat) {
	if a.rows != a.cols {
		panic(fmt.Errorf("%w: %dx%d matrix is not square", ErrDimension, a.rows, a.cols))
	}
}
