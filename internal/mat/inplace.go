package mat

import "fmt"

// Destination ("Into") variants of the core operations, for hot loops
// that reuse buffers instead of allocating (the NUISE step builds ~20
// matrix temporaries per call; see internal/core). Every variant writes
// its full result into dst and returns dst.
//
// Aliasing: the elementwise operations (AddInto, SubInto, ScaleInto,
// SymmetrizeInto) accept dst aliasing either operand. The product
// operations (MulInto, MulTInto, TMulInto, TInto, MulVecInto) do not —
// dst must be a distinct matrix, which they verify by identity.
//
// Bit-compatibility: each variant accumulates in the same element order
// as its allocating counterpart (Mul, Add, …, with explicit transposes),
// so results are bit-for-bit identical — a requirement of the engine's
// determinism guarantee.

// MulInto stores a·b into dst and returns dst.
func MulInto(dst, a, b *Mat) *Mat {
	if a.cols != b.rows {
		panic(fmt.Errorf("%w: %dx%d times %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustShape(dst, a.rows, b.cols)
	mustDistinct(dst, a, b)
	mulRaw(dst.data, a.data, b.data, a.rows, a.cols, b.cols)
	return dst
}

// mulRaw is MulInto's loop body on raw storage: a (ar×ac) times
// b (ac×bc) into dst. The batched kernels sweep it directly with the
// shape checks hoisted out of the per-block loop; keeping one body
// keeps the summation order — and therefore the bits — identical on
// both paths.
func mulRaw(dst, a, b []float64, ar, ac, bc int) {
	clear(dst)
	for i := 0; i < ar; i++ {
		rowOut := dst[i*bc : (i+1)*bc]
		rowA := a[i*ac : (i+1)*ac]
		for k, av := range rowA {
			if av == 0 {
				continue
			}
			rowB := b[k*bc : (k+1)*bc]
			for j, bv := range rowB {
				rowOut[j] += av * bv
			}
		}
	}
}

// MulTInto stores a·bᵀ into dst and returns dst.
func MulTInto(dst, a, b *Mat) *Mat {
	if a.cols != b.cols {
		panic(fmt.Errorf("%w: %dx%d times transpose of %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustShape(dst, a.rows, b.rows)
	mustDistinct(dst, a, b)
	mulTRaw(dst.data, a.data, b.data, a.rows, a.cols, b.rows)
	return dst
}

// mulTRaw is MulTInto's loop body on raw storage: a (ar×ac) times the
// transpose of b (br×ac) into dst (ar×br).
func mulTRaw(dst, a, b []float64, ar, ac, br int) {
	for i := 0; i < ar; i++ {
		rowA := a[i*ac : (i+1)*ac]
		rowOut := dst[i*br : (i+1)*br]
		for j := 0; j < br; j++ {
			rowB := b[j*ac : (j+1)*ac]
			var sum float64
			for k, av := range rowA {
				sum += av * rowB[k]
			}
			rowOut[j] = sum
		}
	}
}

// TMulInto stores aᵀ·b into dst and returns dst.
func TMulInto(dst, a, b *Mat) *Mat {
	if a.rows != b.rows {
		panic(fmt.Errorf("%w: transpose of %dx%d times %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols))
	}
	mustShape(dst, a.cols, b.cols)
	mustDistinct(dst, a, b)
	tMulRaw(dst.data, a.data, b.data, a.rows, a.cols, b.cols)
	return dst
}

// tMulRaw is TMulInto's loop body on raw storage: the transpose of
// a (ar×ac) times b (ar×bc) into dst (ac×bc).
func tMulRaw(dst, a, b []float64, ar, ac, bc int) {
	clear(dst)
	for k := 0; k < ar; k++ {
		rowB := b[k*bc : (k+1)*bc]
		rowA := a[k*ac : (k+1)*ac]
		for i, av := range rowA {
			if av == 0 {
				continue
			}
			rowOut := dst[i*bc : (i+1)*bc]
			for j, bv := range rowB {
				rowOut[j] += av * bv
			}
		}
	}
}

// TInto stores aᵀ into dst and returns dst.
func TInto(dst, a *Mat) *Mat {
	mustShape(dst, a.cols, a.rows)
	mustDistinct(dst, a, a)
	tRaw(dst.data, a.data, a.rows, a.cols)
	return dst
}

// tRaw is TInto's loop body on raw storage: the transpose of a (ar×ac)
// into dst (ac×ar).
func tRaw(dst, a []float64, ar, ac int) {
	for i := 0; i < ar; i++ {
		rowA := a[i*ac : (i+1)*ac]
		for j, v := range rowA {
			dst[j*ar+i] = v
		}
	}
}

// CopyInto copies src's values into the same-shaped dst and returns
// dst — Clone semantics without the allocation, for callers that own a
// stable destination buffer.
func CopyInto(dst, src *Mat) *Mat {
	mustShape(dst, src.rows, src.cols)
	copy(dst.data, src.data)
	return dst
}

// AddInto stores a + b into dst and returns dst. dst may alias a or b.
func AddInto(dst, a, b *Mat) *Mat {
	mustSameShape(a, b)
	mustShape(dst, a.rows, a.cols)
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return dst
}

// SubInto stores a − b into dst and returns dst. dst may alias a or b.
func SubInto(dst, a, b *Mat) *Mat {
	mustSameShape(a, b)
	mustShape(dst, a.rows, a.cols)
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return dst
}

// ScaleInto stores s·a into dst and returns dst. dst may alias a.
func ScaleInto(dst *Mat, s float64, a *Mat) *Mat {
	mustShape(dst, a.rows, a.cols)
	for i := range dst.data {
		dst.data[i] = s * a.data[i]
	}
	return dst
}

// SymmetrizeInto stores (a + aᵀ)/2 into dst and returns dst. dst may
// alias a.
func SymmetrizeInto(dst, a *Mat) *Mat {
	mustSquare(a)
	mustShape(dst, a.rows, a.cols)
	symRaw(dst.data, a.data, a.rows)
	return dst
}

// symRaw is SymmetrizeInto's loop body on raw storage (n×n blocks).
func symRaw(dst, a []float64, n int) {
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 0.5 * (a[i*n+j] + a[j*n+i])
			dst[i*n+j] = v
			dst[j*n+i] = v
		}
	}
}

// IdentityInto stores the identity into the square matrix dst and
// returns dst.
func IdentityInto(dst *Mat) *Mat {
	mustSquare(dst)
	idRaw(dst.data, dst.rows)
	return dst
}

// idRaw is IdentityInto's loop body on raw storage (n×n blocks).
func idRaw(dst []float64, n int) {
	clear(dst)
	for i := 0; i < n; i++ {
		dst[i*n+i] = 1
	}
}

// MulVecInto stores a·v into dst and returns dst. dst must not alias v.
func MulVecInto(dst Vec, a *Mat, v Vec) Vec {
	if a.cols != len(v) {
		panic(fmt.Errorf("%w: %dx%d times vector of length %d", ErrDimension, a.rows, a.cols, len(v)))
	}
	if len(dst) != a.rows {
		panic(fmt.Errorf("%w: destination length %d, want %d", ErrDimension, len(dst), a.rows))
	}
	mulVecRaw(dst, a.data, v, a.rows, a.cols)
	return dst
}

// mulVecRaw is MulVecInto's loop body on raw storage: a (ar×ac) times v
// into dst.
func mulVecRaw(dst, a []float64, v Vec, ar, ac int) {
	for i := 0; i < ar; i++ {
		row := a[i*ac : (i+1)*ac]
		var sum float64
		for j, av := range row {
			sum += av * v[j]
		}
		dst[i] = sum
	}
}

// AddVecInto stores a + b into dst and returns dst. dst may alias a or b.
func AddVecInto(dst, a, b Vec) Vec {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Errorf("%w: vector add %d + %d into %d", ErrDimension, len(a), len(b), len(dst)))
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// SubVecInto stores a − b into dst and returns dst. dst may alias a or b.
func SubVecInto(dst, a, b Vec) Vec {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Errorf("%w: vector sub %d - %d into %d", ErrDimension, len(a), len(b), len(dst)))
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return dst
}

func mustShape(m *Mat, rows, cols int) {
	if m.rows != rows || m.cols != cols {
		panic(fmt.Errorf("%w: destination is %dx%d, want %dx%d", ErrDimension, m.rows, m.cols, rows, cols))
	}
}

func mustDistinct(dst, a, b *Mat) {
	if dst == a || dst == b {
		panic(fmt.Errorf("%w: destination aliases an operand", ErrDimension))
	}
}

// Scratch is a reusable arena of matrices for allocation-free hot loops.
// Mat hands out zeroed matrices; Reset makes every matrix handed out so
// far reusable again. After one warm pass with a stable shape sequence,
// further passes allocate nothing. A Scratch is not safe for concurrent
// use; the engine keeps one per mode so each NUISE instance owns its
// arena (modes never run concurrently with themselves).
type Scratch struct {
	mats []*Mat
	next int

	vecs  []Vec
	vnext int
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// Reset recycles every matrix and vector handed out since the last
// Reset. Buffers obtained before the Reset must no longer be referenced.
func (s *Scratch) Reset() { s.next, s.vnext = 0, 0 }

// Mat returns a zeroed r×c matrix owned by the arena, reusing a
// previously allocated one of the same shape when available.
func (s *Scratch) Mat(r, c int) *Mat {
	for i := s.next; i < len(s.mats); i++ {
		if m := s.mats[i]; m.rows == r && m.cols == c {
			s.mats[i], s.mats[s.next] = s.mats[s.next], m
			s.next++
			clear(m.data)
			return m
		}
	}
	m := New(r, c)
	s.mats = append(s.mats, m)
	last := len(s.mats) - 1
	s.mats[s.next], s.mats[last] = s.mats[last], s.mats[s.next]
	s.next++
	return m
}

// Vec returns a zeroed length-n vector owned by the arena, reusing a
// previously allocated one of the same length when available.
func (s *Scratch) Vec(n int) Vec {
	for i := s.vnext; i < len(s.vecs); i++ {
		if v := s.vecs[i]; len(v) == n {
			s.vecs[i], s.vecs[s.vnext] = s.vecs[s.vnext], v
			s.vnext++
			clear(v)
			return v
		}
	}
	v := make(Vec, n)
	s.vecs = append(s.vecs, v)
	last := len(s.vecs) - 1
	s.vecs[s.vnext], s.vecs[last] = s.vecs[last], s.vecs[s.vnext]
	s.vnext++
	return v
}
