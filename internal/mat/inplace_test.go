package mat

import (
	"errors"
	"testing"
	"testing/quick"
)

func randomMat(rng func() float64, r, c int) *Mat {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng()
	}
	return m
}

// Every Into variant must be bit-for-bit identical to its allocating
// counterpart — the engine's determinism guarantee depends on it.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := randomMat(r, 3, 4)
		b := randomMat(r, 4, 5)
		sq := randomMat(r, 4, 4)
		sq2 := randomMat(r, 4, 4)
		v := Vec{r(), r(), r(), r()}

		if !bitEqual(MulInto(New(3, 5), a, b), a.Mul(b)) {
			return false
		}
		if !bitEqual(MulTInto(New(3, 3), a, a), a.Mul(a.T())) {
			return false
		}
		if !bitEqual(TMulInto(New(4, 4), a, a), a.T().Mul(a)) {
			return false
		}
		if !bitEqual(TInto(New(4, 3), a), a.T()) {
			return false
		}
		if !bitEqual(AddInto(New(4, 4), sq, sq2), sq.Add(sq2)) {
			return false
		}
		if !bitEqual(SubInto(New(4, 4), sq, sq2), sq.Sub(sq2)) {
			return false
		}
		if !bitEqual(ScaleInto(New(4, 4), -2.5, sq), sq.Scale(-2.5)) {
			return false
		}
		if !bitEqual(SymmetrizeInto(New(4, 4), sq), sq.Symmetrize()) {
			return false
		}
		got := MulVecInto(make(Vec, 3), a, v)
		want := a.MulVec(v)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// newQuickRNG returns a tiny deterministic float source (splitmix-style)
// so the property test does not depend on package stat.
func newQuickRNG(seed int64) func() float64 {
	state := uint64(seed) ^ 0x9e3779b97f4a7c15
	return func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(int64(z%2000)-1000) / 97.0
	}
}

func bitEqual(a, b *Mat) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

func TestIntoAliasingElementwise(t *testing.T) {
	a := FromRows([]float64{1, 2}, []float64{3, 4})
	b := FromRows([]float64{10, 20}, []float64{30, 40})
	want := a.Add(b)
	if got := AddInto(a, a, b); !bitEqual(got, want) {
		t.Fatalf("aliased AddInto = %v", got)
	}
	sq := FromRows([]float64{1, 5}, []float64{3, 2})
	want = sq.Symmetrize()
	if got := SymmetrizeInto(sq, sq); !bitEqual(got, want) {
		t.Fatalf("aliased SymmetrizeInto = %v", got)
	}
}

func TestMulIntoRejectsAliasedDestination(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("aliased MulInto destination accepted")
		} else if err, ok := r.(error); !ok || !errors.Is(err, ErrDimension) {
			t.Fatalf("panic = %v, want ErrDimension", r)
		}
	}()
	a := Identity(3)
	MulInto(a, a, Identity(3))
}

func TestIdentityInto(t *testing.T) {
	m := FromRows([]float64{5, 6}, []float64{7, 8})
	if got := IdentityInto(m); !bitEqual(got, Identity(2)) {
		t.Fatalf("IdentityInto = %v", got)
	}
}

func TestScratchReusesBuffers(t *testing.T) {
	s := NewScratch()
	a := s.Mat(3, 3)
	b := s.Mat(2, 4)
	a.Set(0, 0, 42)
	b.Set(1, 1, 7)
	s.Reset()
	a2 := s.Mat(3, 3)
	b2 := s.Mat(2, 4)
	if a2 != a || b2 != b {
		t.Fatal("scratch did not reuse same-shape buffers after Reset")
	}
	if a2.At(0, 0) != 0 || b2.At(1, 1) != 0 {
		t.Fatal("reused scratch matrix not zeroed")
	}
	// Two requests of the same shape within one pass must be distinct.
	s.Reset()
	if s.Mat(3, 3) == s.Mat(3, 3) {
		t.Fatal("scratch handed out the same matrix twice in one pass")
	}
}

// A shape sequence that diverges between passes (the NUISE daValid
// branch) must still reuse what it can and stay correct.
func TestScratchBranchDivergence(t *testing.T) {
	s := NewScratch()
	s.Mat(3, 3)
	s.Mat(2, 2)
	s.Reset()
	m := s.Mat(2, 2) // different order than the first pass
	if m.rows != 2 || m.cols != 2 {
		t.Fatalf("shape = %dx%d", m.rows, m.cols)
	}
	n := s.Mat(3, 3)
	if n.rows != 3 || n.cols != 3 {
		t.Fatalf("shape = %dx%d", n.rows, n.cols)
	}
	if m == n {
		t.Fatal("distinct shapes share a buffer")
	}
}
