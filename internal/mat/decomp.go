package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular indicates a matrix that cannot be inverted or solved against.
var ErrSingular = errors.New("mat: singular matrix")

// Solve returns x such that m·x = b, using LU decomposition with partial
// pivoting. m must be square and nonsingular.
func (m *Mat) Solve(b Vec) (Vec, error) {
	mustSquare(m)
	if len(b) != m.rows {
		panic(fmt.Errorf("%w: solve %dx%d against vector of length %d", ErrDimension, m.rows, m.cols, len(b)))
	}
	lu, perm, err := m.luDecompose()
	if err != nil {
		return nil, err
	}
	return lu.luSolveVec(perm, b), nil
}

// SolveMat returns X such that m·X = B.
func (m *Mat) SolveMat(b *Mat) (*Mat, error) {
	mustSquare(m)
	if b.rows != m.rows {
		panic(fmt.Errorf("%w: solve %dx%d against %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols))
	}
	lu, perm, err := m.luDecompose()
	if err != nil {
		return nil, err
	}
	out := New(m.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		col := lu.luSolveVec(perm, b.Col(j))
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Inverse returns m⁻¹ for a square nonsingular matrix.
func (m *Mat) Inverse() (*Mat, error) {
	return m.SolveMat(Identity(m.rows))
}

// Det returns the determinant via LU decomposition. A singular matrix
// yields 0 without error.
func (m *Mat) Det() float64 {
	mustSquare(m)
	lu, perm, err := m.luDecompose()
	if err != nil {
		return 0
	}
	det := 1.0
	for i := 0; i < lu.rows; i++ {
		det *= lu.At(i, i)
	}
	if permutationParityOdd(perm) {
		det = -det
	}
	return det
}

// luDecompose returns the packed LU factors and the pivot permutation.
// perm[i] records which original row supplied pivot row i.
func (m *Mat) luDecompose() (*Mat, []int, error) {
	n := m.rows
	lu := m.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting: largest |entry| in column at or below the diagonal.
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > best {
				best = a
				pivot = r
			}
		}
		if best == 0 {
			return nil, nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, col)
		}
		if pivot != col {
			lu.swapRows(pivot, col)
			perm[pivot], perm[col] = perm[col], perm[pivot]
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := lu.At(r, col) * inv
			lu.Set(r, col, factor)
			if factor == 0 {
				continue
			}
			for c := col + 1; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-factor*lu.At(col, c))
			}
		}
	}
	return lu, perm, nil
}

// permutationParityOdd reports whether perm decomposes into an odd number
// of transpositions (computed from its cycle structure).
func permutationParityOdd(perm []int) bool {
	seen := make([]bool, len(perm))
	odd := false
	for i := range perm {
		if seen[i] {
			continue
		}
		length := 0
		for j := i; !seen[j]; j = perm[j] {
			seen[j] = true
			length++
		}
		if length%2 == 0 {
			odd = !odd
		}
	}
	return odd
}

func (m *Mat) swapRows(a, b int) {
	for j := 0; j < m.cols; j++ {
		va, vb := m.At(a, j), m.At(b, j)
		m.Set(a, j, vb)
		m.Set(b, j, va)
	}
}

// luSolveVec solves using packed LU factors produced by luDecompose.
func (lu *Mat) luSolveVec(perm []int, b Vec) Vec {
	n := lu.rows
	x := make(Vec, n)
	// Apply the permutation, then forward-substitute L (unit diagonal).
	for i := 0; i < n; i++ {
		x[i] = b[perm[i]]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= lu.At(i, j) * x[j]
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= lu.At(i, j) * x[j]
		}
		x[i] /= lu.At(i, i)
	}
	return x
}

// InvQuadForm returns vᵀ·m⁻¹·v, the normalized (Mahalanobis-squared)
// statistic used by the chi-square hypothesis tests. It solves rather
// than inverting.
func (m *Mat) InvQuadForm(v Vec) (float64, error) {
	y, err := m.Solve(v)
	if err != nil {
		return 0, err
	}
	return v.Dot(y), nil
}

// Cholesky returns the lower-triangular L with m = L·Lᵀ. m must be
// symmetric positive definite.
func (m *Mat) Cholesky() (*Mat, error) {
	mustSquare(m)
	n := m.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("%w: not positive definite at row %d", ErrSingular, i)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues (descending by absolute
// value is NOT guaranteed; they are unsorted) and the matrix of
// corresponding eigenvectors as columns, so that m = V·diag(λ)·Vᵀ.
func (m *Mat) EigenSym() (Vec, *Mat, error) {
	mustSquare(m)
	n := m.rows
	a := m.Symmetrize()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Scale-relative sweep threshold: covariances in this codebase
		// live at scales like 1e-6, where an absolute 1e-14 cutoff would
		// leave eigenvalues with ~1e-7 relative error — visible in
		// likelihood ratios. Relative to the matrix's own magnitude the
		// iteration converges to working precision at any scale (and a
		// zero matrix terminates immediately).
		off := offDiagNorm(a)
		if off <= 1e-14*a.MaxAbs() {
			return a.DiagVec(), v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				jacobiRotate(a, v, p, q, c, s)
			}
		}
	}
	return nil, nil, errors.New("mat: Jacobi eigendecomposition did not converge")
}

func offDiagNorm(a *Mat) float64 {
	var sum float64
	for i := 0; i < a.rows; i++ {
		for j := i + 1; j < a.cols; j++ {
			x := a.At(i, j)
			sum += 2 * x * x
		}
	}
	return math.Sqrt(sum)
}

// jacobiRotate applies the rotation G(p,q,θ) as a ← GᵀaG and v ← vG.
func jacobiRotate(a, v *Mat, p, q int, c, s float64) {
	n := a.rows
	for i := 0; i < n; i++ {
		aip, aiq := a.At(i, p), a.At(i, q)
		a.Set(i, p, c*aip-s*aiq)
		a.Set(i, q, s*aip+c*aiq)
	}
	for j := 0; j < n; j++ {
		apj, aqj := a.At(p, j), a.At(q, j)
		a.Set(p, j, c*apj-s*aqj)
		a.Set(q, j, s*apj+c*aqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// PseudoInverseSym returns the Moore–Penrose pseudoinverse of a symmetric
// (typically covariance) matrix, along with its rank and
// pseudo-determinant (product of nonzero eigenvalues). Eigenvalues whose
// magnitude falls below tol·max|λ| are treated as zero; pass tol <= 0 for
// the default 1e-12. These are the |·|₊ and (·)† operators from the
// paper's likelihood formula (Algorithm 2, line 20).
func (m *Mat) PseudoInverseSym(tol float64) (pinv *Mat, rank int, pseudoDet float64, err error) {
	if tol <= 0 {
		tol = 1e-12
	}
	eig, v, err := m.EigenSym()
	if err != nil {
		return nil, 0, 0, err
	}
	cutoff := tol * eig.MaxAbs()
	n := m.rows
	invDiag := New(n, n)
	pseudoDet = 1 // empty product when rank is 0; callers check rank
	for i, lambda := range eig {
		if math.Abs(lambda) > cutoff {
			invDiag.Set(i, i, 1/lambda)
			pseudoDet *= lambda
			rank++
		}
	}
	pinv = v.Mul(invDiag).Mul(v.T())
	return pinv.Symmetrize(), rank, pseudoDet, nil
}

// IsPositiveSemiDefinite reports whether all eigenvalues of the symmetric
// matrix are ≥ −tol·max|λ|.
func (m *Mat) IsPositiveSemiDefinite(tol float64) bool {
	if tol <= 0 {
		tol = 1e-9
	}
	eig, _, err := m.EigenSym()
	if err != nil {
		return false
	}
	floor := -tol * (1 + eig.MaxAbs())
	for _, lambda := range eig {
		if lambda < floor {
			return false
		}
	}
	return true
}

// Rank returns the numerical rank of an arbitrary matrix, computed from the
// eigenvalues of mᵀm (squared singular values).
func (m *Mat) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	gram := m.T().Mul(m)
	eig, _, err := gram.EigenSym()
	if err != nil {
		return 0
	}
	maxAbs := eig.MaxAbs()
	if maxAbs == 0 {
		return 0
	}
	rank := 0
	for _, lambda := range eig {
		if lambda > tol*maxAbs {
			rank++
		}
	}
	return rank
}
