package mat

import (
	"fmt"
	"math"
)

// SPD fast path: Cholesky factor-and-solve kernels for the estimator hot
// loops. Every covariance the NUISE step inverts (R*, the Fisher
// information, the innovation covariance R̃2) is symmetric positive
// definite in the non-degenerate case, so the kernels here factor once
// (n³/6 flops) and solve by substitution instead of forming explicit
// inverses (LU at n³/3 plus n solves) or running the cyclic-Jacobi
// eigendecomposition behind PseudoInverseSym. Failure is reported by a
// bool, not an error allocation, so the hot loop can branch to the
// Jacobi fallback without garbage; all destinations are
// scratch-arena-compatible (see Scratch).

// cholPivotTol is the relative pivot floor of CholFactorInto: a pivot at
// or below cholPivotTol times the largest diagonal entry of the input is
// treated as a failed factorization. It mirrors PseudoInverseSym's
// default eigenvalue cutoff (1e-12) so that matrices the pseudo-inverse
// would rank-truncate are routed to that fallback rather than factored
// against a numerically meaningless pivot.
const cholPivotTol = 1e-12

// CholFactorInto writes the lower-triangular Cholesky factor L of the
// symmetric positive definite matrix m (m = L·Lᵀ, strict upper triangle
// of dst zeroed) and reports whether the factorization succeeded. It
// returns false — with dst contents unspecified — when m is not
// positive definite to working precision (any pivot ≤ cholPivotTol
// times the largest diagonal entry). dst may alias m; only the lower
// triangle of m is read.
func CholFactorInto(dst, m *Mat) bool {
	mustSquare(m)
	mustShape(dst, m.rows, m.cols)
	return cholFactorRaw(dst.data, m.data, m.rows)
}

// cholFactorRaw is CholFactorInto's loop body on raw storage; the
// batched kernels sweep it with the shape checks hoisted, so both
// paths share one body and one pivot tolerance.
func cholFactorRaw(dst, m []float64, n int) bool {
	var scale float64
	for i := 0; i < n; i++ {
		if d := m[i*n+i]; d > scale {
			scale = d
		}
	}
	floor := cholPivotTol * scale
	for i := 0; i < n; i++ {
		rowI := dst[i*n : i*n+i]
		for j := 0; j <= i; j++ {
			sum := m[i*n+j]
			rowJ := dst[j*n : j*n+j]
			for k, lik := range rowI[:j] {
				sum -= lik * rowJ[k]
			}
			if i == j {
				if sum <= floor || math.IsNaN(sum) {
					return false
				}
				dst[i*n+i] = math.Sqrt(sum)
			} else {
				dst[i*n+j] = sum / dst[j*n+j]
			}
		}
		for j := i + 1; j < n; j++ {
			dst[i*n+j] = 0
		}
	}
	return true
}

// CholSolveVecInto solves (L·Lᵀ)·x = b by forward and back substitution
// against the factor l produced by CholFactorInto, writing x into dst.
// dst may alias b; it must not alias a row of l.
func CholSolveVecInto(dst Vec, l *Mat, b Vec) Vec {
	n := l.rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Errorf("%w: chol solve %dx%d against b length %d into dst length %d",
			ErrDimension, n, n, len(b), len(dst)))
	}
	cholSolveVecRaw(dst, l.data, b, n)
	return dst
}

// cholSolveVecRaw is CholSolveVecInto's loop body on raw storage.
func cholSolveVecRaw(dst Vec, l []float64, b Vec, n int) {
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l[i*n : i*n+i]
		for k, lik := range row {
			sum -= lik * dst[k]
		}
		dst[i] = sum / l[i*n+i]
	}
	// Back: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		sum := dst[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * dst[k]
		}
		dst[i] = sum / l[i*n+i]
	}
}

// CholSolveMatInto solves (L·Lᵀ)·X = B for every column of B at once,
// writing X into dst and returning dst. dst may alias b; neither may
// alias l.
func CholSolveMatInto(dst, l, b *Mat) *Mat {
	n := l.rows
	if b.rows != n {
		panic(fmt.Errorf("%w: chol solve %dx%d against %dx%d", ErrDimension, n, n, b.rows, b.cols))
	}
	mustShape(dst, n, b.cols)
	if dst == l || b == l {
		panic(fmt.Errorf("%w: chol solve destination or rhs aliases the factor", ErrDimension))
	}
	c := dst.cols
	if dst != b {
		copy(dst.data, b.data)
	}
	cholSolveMatRaw(dst.data, l.data, n, c)
	return dst
}

// cholSolveMatRaw is CholSolveMatInto's loop body on raw storage; dst
// must already hold B on entry (the caller copies when they differ).
func cholSolveMatRaw(dst, l []float64, n, c int) {
	// Forward: L·Y = B, all columns in lockstep (row-major friendly).
	for i := 0; i < n; i++ {
		rowI := dst[i*c : (i+1)*c]
		for k := 0; k < i; k++ {
			lik := l[i*n+k]
			if lik == 0 {
				continue
			}
			rowK := dst[k*c : (k+1)*c]
			for j, yv := range rowK {
				rowI[j] -= lik * yv
			}
		}
		inv := 1 / l[i*n+i]
		for j := range rowI {
			rowI[j] *= inv
		}
	}
	// Back: Lᵀ·X = Y.
	for i := n - 1; i >= 0; i-- {
		rowI := dst[i*c : (i+1)*c]
		for k := i + 1; k < n; k++ {
			lki := l[k*n+i]
			if lki == 0 {
				continue
			}
			rowK := dst[k*c : (k+1)*c]
			for j, xv := range rowK {
				rowI[j] -= lki * xv
			}
		}
		inv := 1 / l[i*n+i]
		for j := range rowI {
			rowI[j] *= inv
		}
	}
}

// CholInvQuadForm returns the Mahalanobis statistic vᵀ·M⁻¹·v for
// M = L·Lᵀ via a single forward substitution: with L·y = v the
// statistic is yᵀ·y, which is also guaranteed non-negative (unlike the
// explicit pinv quad form, which can round below zero). work provides
// the substitution buffer; it must have length l.Rows() (pass
// Scratch.Vec in hot loops) or be nil to allocate.
func CholInvQuadForm(l *Mat, v, work Vec) float64 {
	n := l.rows
	if len(v) != n {
		panic(fmt.Errorf("%w: chol quad form %dx%d against vector of length %d", ErrDimension, n, n, len(v)))
	}
	if len(work) != n {
		work = make(Vec, n)
	}
	var quad float64
	for i := 0; i < n; i++ {
		sum := v[i]
		row := l.data[i*n : i*n+i]
		for k, lik := range row {
			sum -= lik * work[k]
		}
		y := sum / l.data[i*n+i]
		work[i] = y
		quad += y * y
	}
	return quad
}

// CholLogDet returns log det(M) for M = L·Lᵀ, read off the factor
// diagonal for free: log det = 2·Σ log L_ii. Working in log space keeps
// the Gaussian normalization finite where the explicit determinant
// product would under- or overflow.
func CholLogDet(l *Mat) float64 {
	var sum float64
	n := l.rows
	for i := 0; i < n; i++ {
		sum += math.Log(l.data[i*n+i])
	}
	return 2 * sum
}

// householderReflectors factors the p×q matrix stored in work into
// Householder QR form in place: after the call, column j of work holds
// the unit reflector vector v_j on rows j..p−1 (H_j = I − 2·v_j·v_jᵀ,
// Q = H_0·…·H_{q-1}). It reports false when a pivot column norm falls
// at or below cholPivotTol times the largest initial column norm — rank
// deficiency to working precision.
func householderReflectors(work *Mat) bool {
	p, q := work.rows, work.cols
	// Column scale for the rank test: the largest initial column norm.
	var scale float64
	for j := 0; j < q; j++ {
		var s float64
		for i := 0; i < p; i++ {
			v := work.data[i*q+j]
			s += v * v
		}
		if s > scale {
			scale = s
		}
	}
	floor := cholPivotTol * math.Sqrt(scale)
	for j := 0; j < q; j++ {
		var norm float64
		for i := j; i < p; i++ {
			v := work.data[i*q+j]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= floor || math.IsNaN(norm) {
			return false
		}
		// v = x + sign(x0)·‖x‖·e1, then normalized (cancellation-free).
		if work.data[j*q+j] < 0 {
			work.data[j*q+j] -= norm
		} else {
			work.data[j*q+j] += norm
		}
		var vnorm float64
		for i := j; i < p; i++ {
			v := work.data[i*q+j]
			vnorm += v * v
		}
		vnorm = math.Sqrt(vnorm)
		for i := j; i < p; i++ {
			work.data[i*q+j] /= vnorm
		}
		// Apply H_j to the remaining columns.
		for c := j + 1; c < q; c++ {
			var dot float64
			for i := j; i < p; i++ {
				dot += work.data[i*q+j] * work.data[i*q+c]
			}
			dot *= 2
			for i := j; i < p; i++ {
				work.data[i*q+c] -= dot * work.data[i*q+j]
			}
		}
	}
	return true
}

// applyQColumns writes dst = H_0·…·H_{q-1}·E, where the reflectors live
// in work (see householderReflectors) and E holds the dst.Cols()
// consecutive identity columns starting at column first. The result is
// the corresponding orthonormal column block of the implicit Q.
func applyQColumns(dst, work *Mat, first int) {
	p, q := work.rows, work.cols
	k := dst.cols
	clear(dst.data)
	for c := 0; c < k; c++ {
		dst.data[(first+c)*k+c] = 1
	}
	for j := q - 1; j >= 0; j-- {
		for c := 0; c < k; c++ {
			var dot float64
			for i := j; i < p; i++ {
				dot += work.data[i*q+j] * dst.data[i*k+c]
			}
			dot *= 2
			for i := j; i < p; i++ {
				dst.data[i*k+c] -= dot * work.data[i*q+j]
			}
		}
	}
}

// RangeComplementInto writes an orthonormal basis of the orthogonal
// complement of range(m) into dst and reports whether m has full column
// rank to working precision. m is p×q with p > q; dst is p×(p−q); work
// is p×q Householder storage (pass Scratch.Mat in hot loops). The
// returned basis Z satisfies Zᵀ·Z = I and Zᵀ·m = 0.
//
// This is the deflation kernel of the NUISE fast path: the innovation
// covariance R̃2 is structurally singular — the actuator anomaly
// estimate consumes q degrees of freedom of the reference innovation,
// the reason Algorithm 2 line 20 is stated with pseudo-inverse and
// pseudo-determinant. Note the null space of R̃2 is (R*)⁻¹·range(C2·G),
// not range(C2·G) itself: deflation must project onto an orthonormal
// basis of the *range* of R̃2, which is R*·range(Z) — see RangeBasisInto.
func RangeComplementInto(dst, m, work *Mat) bool {
	p, q := m.rows, m.cols
	if p <= q {
		panic(fmt.Errorf("%w: complement of %dx%d has no columns", ErrDimension, p, q))
	}
	mustShape(dst, p, p-q)
	mustShape(work, p, q)
	if dst == m || dst == work || m == work {
		panic(fmt.Errorf("%w: range complement operands must be distinct", ErrDimension))
	}
	copy(work.data, m.data)
	if !householderReflectors(work) {
		return false
	}
	// The trailing p−q columns of the implicit Q: orthonormal, ⊥ range(m).
	applyQColumns(dst, work, q)
	return true
}

// RangeBasisInto writes an orthonormal basis of range(m) into dst and
// reports whether m has full column rank to working precision. m is p×q
// with p ≥ q; dst and work are p×q (pass Scratch.Mat in hot loops); dst
// may alias m but not work. The returned basis U satisfies Uᵀ·U = I and
// U·Uᵀ·m = m.
//
// Together with RangeComplementInto this completes the deflation kernel:
// with U an orthonormal basis of range(M) of a symmetric PSD M, the
// Moore–Penrose quantities reduce to an ordinary SPD core,
// M† = U·(Uᵀ·M·U)⁻¹·Uᵀ and pdet(M) = det(Uᵀ·M·U). The basis matters:
// for any other full-rank reduction T the quad form νᵀ·M†·ν is
// preserved on ν ∈ range(M), but det(Tᵀ·M·T) = det(Tᵀ·U)²·pdet(M)
// under-counts the pseudo-determinant by the squared cosines of the
// principal angles between range(T) and range(M).
func RangeBasisInto(dst, m, work *Mat) bool {
	p, q := m.rows, m.cols
	if p < q {
		panic(fmt.Errorf("%w: range basis of %dx%d needs p ≥ q", ErrDimension, p, q))
	}
	mustShape(dst, p, q)
	mustShape(work, p, q)
	if dst == work || m == work {
		panic(fmt.Errorf("%w: range basis work must be distinct", ErrDimension))
	}
	copy(work.data, m.data)
	if !householderReflectors(work) {
		return false
	}
	// The leading q columns of the implicit Q span range(m).
	applyQColumns(dst, work, 0)
	return true
}

// CholCache memoizes Cholesky factors keyed by matrix identity, for
// decision layers that test the same covariance repeatedly within one
// control iteration (the engine's evidence terms and the decision
// maker's χ² tests share the per-sensor covariance blocks). Entries pin
// their keys, so Reset must be called once per iteration to keep the
// cache from growing without bound. Factor storage is recycled across
// Resets through a per-dimension free list — callers must not retain a
// returned factor past the next Reset. Not safe for concurrent use.
type CholCache struct {
	factors map[*Mat]cholEntry
	pool    map[int][]*Mat
	work    Vec
}

type cholEntry struct {
	l  *Mat
	ok bool
}

// NewCholCache returns an empty factor cache.
func NewCholCache() *CholCache {
	return &CholCache{
		factors: make(map[*Mat]cholEntry),
		pool:    make(map[int][]*Mat),
	}
}

// Reset drops every cached factor, recycling factor storage for the
// next iteration.
func (c *CholCache) Reset() {
	for _, e := range c.factors {
		if e.l != nil {
			c.pool[e.l.rows] = append(c.pool[e.l.rows], e.l)
		}
	}
	clear(c.factors)
}

// factorStorage returns an n×n matrix for a new factor, reusing
// recycled storage when available. CholFactorInto overwrites every
// entry, so recycled contents never leak.
func (c *CholCache) factorStorage(n int) *Mat {
	if free := c.pool[n]; len(free) > 0 {
		l := free[len(free)-1]
		c.pool[n] = free[:len(free)-1]
		return l
	}
	return New(n, n)
}

// Factor returns the cached Cholesky factor of m, computing and caching
// it (or its failure) on first sight.
func (c *CholCache) Factor(m *Mat) (*Mat, bool) {
	if e, hit := c.factors[m]; hit {
		return e.l, e.ok
	}
	l := c.factorStorage(m.rows)
	ok := CholFactorInto(l, m)
	if !ok {
		c.pool[l.rows] = append(c.pool[l.rows], l)
		l = nil
	}
	c.factors[m] = cholEntry{l: l, ok: ok}
	return l, ok
}

// InvQuadForm returns vᵀ·m⁻¹·v through the cached factor when m is
// positive definite, falling back to the LU-based Mat.InvQuadForm when
// it is not (preserving the caller's singular-covariance semantics).
func (c *CholCache) InvQuadForm(m *Mat, v Vec) (float64, error) {
	if l, ok := c.Factor(m); ok {
		if len(c.work) < l.rows {
			c.work = make(Vec, l.rows)
		}
		return CholInvQuadForm(l, v, c.work[:l.rows]), nil
	}
	return m.InvQuadForm(v)
}
