package mat

import (
	"testing"
	"testing/quick"
)

// Every batched kernel must be bit-for-bit identical, block by block, to
// the scalar kernel it sweeps — the batched engine's per-session
// determinism guarantee reduces to this property.
func TestBatchKernelsMatchScalar(t *testing.T) {
	const k = 5
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		mk := func(r, c int) (*Batch, []*Mat) {
			b := NewBatch(k, r, c)
			ms := make([]*Mat, k)
			for i := 0; i < k; i++ {
				ms[i] = randomMat(rng, r, c)
				// Sprinkle zeros so the a == 0 skip branch in the
				// multiply kernels is exercised on both paths.
				ms[i].data[0] = 0
				copy(b.Block(i).data, ms[i].data)
			}
			return b, ms
		}
		aB, a := mk(3, 4)
		bB, bs := mk(4, 5)
		sqB, sq := mk(4, 4)
		sq2B, sq2 := mk(4, 4)

		active := []bool{true, false, true, true, false}
		check := func(got *Batch, want func(i int) *Mat) bool {
			for i := 0; i < k; i++ {
				if !active[i] {
					// Masked blocks must stay untouched (zero).
					if got.Block(i).MaxAbs() != 0 {
						return false
					}
					continue
				}
				if !bitEqual(got.Block(i), want(i)) {
					return false
				}
			}
			return true
		}

		if !check(MulBatchInto(NewBatch(k, 3, 5), aB, bB, active), func(i int) *Mat { return a[i].Mul(bs[i]) }) {
			return false
		}
		if !check(MulTBatchInto(NewBatch(k, 3, 3), aB, aB, active), func(i int) *Mat { return a[i].Mul(a[i].T()) }) {
			return false
		}
		if !check(TMulBatchInto(NewBatch(k, 4, 4), aB, aB, active), func(i int) *Mat { return a[i].T().Mul(a[i]) }) {
			return false
		}
		if !check(TBatchInto(NewBatch(k, 4, 3), aB, active), func(i int) *Mat { return a[i].T() }) {
			return false
		}
		if !check(AddBatchInto(NewBatch(k, 4, 4), sqB, sq2B, active), func(i int) *Mat { return sq[i].Add(sq2[i]) }) {
			return false
		}
		if !check(SubBatchInto(NewBatch(k, 4, 4), sqB, sq2B, active), func(i int) *Mat { return sq[i].Sub(sq2[i]) }) {
			return false
		}
		if !check(ScaleBatchInto(NewBatch(k, 4, 4), -1, sqB, active), func(i int) *Mat { return sq[i].Scale(-1) }) {
			return false
		}
		if !check(SymmetrizeBatchInto(NewBatch(k, 4, 4), sqB, active), func(i int) *Mat { return sq[i].Symmetrize() }) {
			return false
		}
		if !check(IdentityBatchInto(NewBatch(k, 4, 4), active), func(i int) *Mat { return Identity(4) }) {
			return false
		}

		vB := NewVecBatch(k, 4)
		vs := make([]Vec, k)
		for i := 0; i < k; i++ {
			vs[i] = Vec{rng(), rng(), rng(), rng()}
			copy(vB.Block(i), vs[i])
		}
		got := MulVecBatchInto(NewVecBatch(k, 3), aB, vB, active)
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			want := a[i].MulVec(vs[i])
			for j := range want {
				if got.Block(i)[j] != want[j] {
					return false
				}
			}
		}
		sum := AddVecBatchInto(NewVecBatch(k, 4), vB, vB, active)
		diff := SubVecBatchInto(NewVecBatch(k, 4), vB, vB, active)
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			for j := range vs[i] {
				if sum.Block(i)[j] != vs[i][j]+vs[i][j] || diff.Block(i)[j] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The batched Cholesky kernels must reproduce the scalar factor, solve,
// and per-block failure verdicts exactly.
func TestCholBatchMatchesScalar(t *testing.T) {
	const k, n = 4, 4
	f := func(seed int64) bool {
		rng := newQuickRNG(seed)
		spdB := NewBatch(k, n, n)
		spds := make([]*Mat, k)
		for i := 0; i < k; i++ {
			spds[i] = randomSPD(rng, n)
			copy(spdB.Block(i).data, spds[i].data)
		}
		// Poison block 2 into an indefinite matrix: its ok flag must come
		// back false while the other blocks factor normally.
		spdB.Block(2).Set(0, 0, -1)
		spds[2].Set(0, 0, -1)

		ok := make([]bool, k)
		cholB := NewBatch(k, n, n)
		CholFactorBatchInto(cholB, spdB, nil, ok)
		active := make([]bool, k)
		for i := 0; i < k; i++ {
			wantL := New(n, n)
			wantOK := CholFactorInto(wantL, spds[i])
			if ok[i] != wantOK {
				return false
			}
			active[i] = ok[i]
			if ok[i] && !bitEqual(cholB.Block(i), wantL) {
				return false
			}
		}

		rhsB := NewBatch(k, n, 3)
		vB := NewVecBatch(k, n)
		for i := 0; i < k; i++ {
			copy(rhsB.Block(i).data, randomMat(rng, n, 3).data)
			for j := 0; j < n; j++ {
				vB.Block(i)[j] = rng()
			}
		}
		solB := CholSolveMatBatchInto(NewBatch(k, n, 3), cholB, rhsB, active)
		vecB := CholSolveVecBatchInto(NewVecBatch(k, n), cholB, vB, active)
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !bitEqual(solB.Block(i), CholSolveMatInto(New(n, 3), cholB.Block(i), rhsB.Block(i))) {
				return false
			}
			want := CholSolveVecInto(make(Vec, n), cholB.Block(i), vB.Block(i))
			for j := range want {
				if vecB.Block(i)[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// View batches bind external matrices without copying: kernels must read
// and write through the bound storage.
func TestViewBatchBindsExternalStorage(t *testing.T) {
	a := FromRows([]float64{1, 2}, []float64{3, 4})
	b := FromRows([]float64{5, 6}, []float64{7, 8})
	dst := New(2, 2)

	aB := NewViewBatch(1, 2, 2)
	aB.SetBlock(0, a)
	bB := NewViewBatch(1, 2, 2)
	bB.SetBlock(0, b)
	dstB := NewViewBatch(1, 2, 2)
	dstB.SetBlock(0, dst)

	MulBatchInto(dstB, aB, bB, nil)
	if !bitEqual(dst, a.Mul(b)) {
		t.Fatalf("view batch multiply wrote %v", dst)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched SetBlock accepted")
		}
	}()
	aB.SetBlock(0, New(3, 3))
}

// Slab-carved values must behave exactly like fresh mat.New/make
// allocations: zeroed, correctly shaped, and never overlapping — even
// across backing-array growth.
func TestSlabCarving(t *testing.T) {
	s := NewSlab(8, 1)
	m1 := s.Mat(2, 2)
	v1 := s.Vec(4)
	m2 := s.Mat(3, 3) // forces float and header growth
	v2 := s.Vec(2)

	if m1.Rows() != 2 || m1.Cols() != 2 || m2.Rows() != 3 || m2.Cols() != 3 {
		t.Fatalf("carved shapes %dx%d, %dx%d", m1.Rows(), m1.Cols(), m2.Rows(), m2.Cols())
	}
	for _, m := range []*Mat{m1, m2} {
		if m.MaxAbs() != 0 {
			t.Fatalf("carved matrix not zeroed: %v", m)
		}
	}
	m1.Set(0, 0, 1)
	m1.Set(1, 1, 2)
	m2.Set(0, 0, 3)
	v1[0], v2[0] = 4, 5
	if m1.At(0, 0) != 1 || m1.At(1, 1) != 2 || m2.At(0, 0) != 3 || v1[0] != 4 || v2[0] != 5 {
		t.Fatal("carved regions overlap")
	}
	if v1[1] != 0 || v1[2] != 0 || v1[3] != 0 {
		t.Fatalf("carved vector not zeroed: %v", v1)
	}
	if s.FloatsUsed() != 4+4+9+2 {
		t.Fatalf("FloatsUsed = %d", s.FloatsUsed())
	}
	if s.MatsUsed() != 2 {
		t.Fatalf("MatsUsed = %d", s.MatsUsed())
	}
}
