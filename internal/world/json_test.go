package world

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestMapJSONRoundTrip(t *testing.T) {
	m := LabArena()
	var buf bytes.Buffer
	if err := SaveMap(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bounds != m.Bounds {
		t.Fatalf("bounds = %+v, want %+v", loaded.Bounds, m.Bounds)
	}
	if len(loaded.Obstacles) != len(m.Obstacles) {
		t.Fatalf("obstacles = %d", len(loaded.Obstacles))
	}
	for i, o := range loaded.Obstacles {
		if o != m.Obstacles[i] {
			t.Fatalf("obstacle %d = %+v, want %+v", i, o, m.Obstacles[i])
		}
	}
}

func TestLoadMapValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":          "not json",
		"zero width":       `{"widthMeters":0,"heightMeters":4}`,
		"negative height":  `{"widthMeters":4,"heightMeters":-1}`,
		"degenerate rect":  `{"widthMeters":4,"heightMeters":4,"obstacles":[{"minX":1,"minY":1,"maxX":1,"maxY":2}]}`,
		"obstacle outside": `{"widthMeters":4,"heightMeters":4,"obstacles":[{"minX":3,"minY":3,"maxX":5,"maxY":5}]}`,
	}
	for name, payload := range cases {
		if _, err := LoadMap(strings.NewReader(payload)); !errors.Is(err, ErrInvalidMap) {
			t.Fatalf("%s: err = %v, want ErrInvalidMap", name, err)
		}
	}
}

func TestLoadMapEmptyArena(t *testing.T) {
	m, err := LoadMap(strings.NewReader(`{"widthMeters":2.5,"heightMeters":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Bounds.Max.X != 2.5 || m.Bounds.Max.Y != 3 || len(m.Obstacles) != 0 {
		t.Fatalf("map = %+v", m)
	}
	// The loaded map is fully functional.
	if d, ok := m.Raycast(Point{1, 1}, 0, 100); !ok || d != 1.5 {
		t.Fatalf("raycast on loaded map = %v ok=%v", d, ok)
	}
}
