package world

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// mapJSON is the serialized arena layout.
type mapJSON struct {
	// Width and Height are the arena dimensions in meters (origin at
	// the south-west corner).
	Width  float64 `json:"widthMeters"`
	Height float64 `json:"heightMeters"`
	// Obstacles are axis-aligned rectangles.
	Obstacles []rectJSON `json:"obstacles,omitempty"`
}

type rectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

// ErrInvalidMap indicates a serialized arena that fails validation.
var ErrInvalidMap = errors.New("world: invalid map")

// MarshalJSON implements json.Marshaler for arena layouts anchored at
// the origin.
func (m *Map) MarshalJSON() ([]byte, error) {
	out := mapJSON{
		Width:  m.Bounds.Max.X - m.Bounds.Min.X,
		Height: m.Bounds.Max.Y - m.Bounds.Min.Y,
	}
	for _, o := range m.Obstacles {
		out.Obstacles = append(out.Obstacles, rectJSON{
			MinX: o.Min.X, MinY: o.Min.Y, MaxX: o.Max.X, MaxY: o.Max.Y,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with validation: positive
// dimensions and obstacles contained in the arena.
func (m *Map) UnmarshalJSON(data []byte) error {
	var in mapJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidMap, err)
	}
	if in.Width <= 0 || in.Height <= 0 {
		return fmt.Errorf("%w: dimensions %.3f×%.3f", ErrInvalidMap, in.Width, in.Height)
	}
	loaded := NewArena(in.Width, in.Height)
	for i, o := range in.Obstacles {
		if o.MaxX <= o.MinX || o.MaxY <= o.MinY {
			return fmt.Errorf("%w: obstacle %d is degenerate", ErrInvalidMap, i)
		}
		rect := NewRect(o.MinX, o.MinY, o.MaxX, o.MaxY)
		if !loaded.Bounds.Contains(rect.Min) || !loaded.Bounds.Contains(rect.Max) {
			return fmt.Errorf("%w: obstacle %d outside arena", ErrInvalidMap, i)
		}
		loaded.AddObstacle(rect)
	}
	*m = *loaded
	return nil
}

// LoadMap reads a JSON arena layout.
func LoadMap(r io.Reader) (*Map, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("world: read map: %w", err)
	}
	m := &Map{}
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveMap writes the arena layout as JSON.
func SaveMap(w io.Writer, m *Map) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return fmt.Errorf("world: encode map: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
