package world

import (
	"math"
	"testing"
	"testing/quick"

	"roboads/internal/stat"
)

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dist(Point{4, 6}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Dist = %v", got)
	}
}

func TestRectNormalizationAndContains(t *testing.T) {
	r := NewRect(2, 3, 0, 1) // corners given out of order
	if r.Min != (Point{0, 1}) || r.Max != (Point{2, 3}) {
		t.Fatalf("NewRect = %+v", r)
	}
	if !r.Contains(Point{1, 2}) {
		t.Fatal("interior point rejected")
	}
	if !r.Contains(Point{0, 1}) {
		t.Fatal("boundary point rejected")
	}
	if r.Contains(Point{-0.1, 2}) {
		t.Fatal("exterior point accepted")
	}
}

func TestRectInflateAndEdges(t *testing.T) {
	r := NewRect(0, 0, 2, 2).Inflate(0.5)
	if r.Min != (Point{-0.5, -0.5}) || r.Max != (Point{2.5, 2.5}) {
		t.Fatalf("Inflate = %+v", r)
	}
	edges := NewRect(0, 0, 1, 1).Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	var perim float64
	for _, e := range edges {
		perim += e.Length()
	}
	if math.Abs(perim-4) > 1e-12 {
		t.Fatalf("perimeter = %v", perim)
	}
}

func TestMapFree(t *testing.T) {
	m := NewArena(4, 4)
	m.AddObstacle(NewRect(1, 1, 2, 2))
	if !m.Free(Point{0.5, 0.5}, 0.1) {
		t.Fatal("free point rejected")
	}
	if m.Free(Point{1.5, 1.5}, 0) {
		t.Fatal("obstacle interior accepted")
	}
	// Margin pushes the robot away from both walls and obstacles.
	if m.Free(Point{0.05, 0.5}, 0.1) {
		t.Fatal("point within wall margin accepted")
	}
	if m.Free(Point{0.95, 1.5}, 0.1) {
		t.Fatal("point within obstacle margin accepted")
	}
}

func TestSegmentFree(t *testing.T) {
	m := NewArena(4, 4)
	m.AddObstacle(NewRect(1.5, 0, 2.5, 3))
	clear := Segment{Point{0.5, 3.5}, Point{3.5, 3.5}}
	if !m.SegmentFree(clear, 0.1, 0.02) {
		t.Fatal("clear segment rejected")
	}
	blocked := Segment{Point{0.5, 1}, Point{3.5, 1}}
	if m.SegmentFree(blocked, 0.1, 0.02) {
		t.Fatal("blocked segment accepted")
	}
}

func TestRaycastAgainstWalls(t *testing.T) {
	m := NewArena(4, 4)
	origin := Point{1, 1}
	cases := []struct {
		theta float64
		want  float64
	}{
		{0, 3},                        // east wall at x=4
		{math.Pi, 1},                  // west wall at x=0
		{math.Pi / 2, 3},              // north wall at y=4
		{-math.Pi / 2, 1},             // south wall at y=0
		{math.Pi / 4, 3 * math.Sqrt2}, // corner-bound diagonal
	}
	for _, c := range cases {
		got, ok := m.Raycast(origin, c.theta, 100)
		if !ok {
			t.Fatalf("raycast θ=%v missed", c.theta)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("raycast θ=%v = %v, want %v", c.theta, got, c.want)
		}
	}
}

func TestRaycastHitsObstacleFirst(t *testing.T) {
	m := NewArena(4, 4)
	m.AddObstacle(NewRect(2, 0.5, 2.5, 1.5))
	got, ok := m.Raycast(Point{1, 1}, 0, 100)
	if !ok || math.Abs(got-1) > 1e-9 {
		t.Fatalf("raycast = %v ok=%v, want 1", got, ok)
	}
}

func TestRaycastMaxRange(t *testing.T) {
	m := NewArena(4, 4)
	got, ok := m.Raycast(Point{1, 1}, 0, 0.5)
	if ok || got != 0.5 {
		t.Fatalf("raycast clipped = %v ok=%v, want 0.5/false", got, ok)
	}
}

func TestLabArena(t *testing.T) {
	m := LabArena()
	if len(m.Obstacles) != 2 {
		t.Fatalf("obstacles = %d", len(m.Obstacles))
	}
	if !m.Free(Point{0.5, 0.5}, 0.07) {
		t.Fatal("start corner should be free")
	}
	if !m.Free(Point{3.5, 3.5}, 0.07) {
		t.Fatal("goal corner should be free")
	}
}

// Inside the arena, every ray must hit something, and the hit point must
// lie on the arena boundary or an obstacle edge.
func TestPropertyRaycastAlwaysHitsInsideArena(t *testing.T) {
	m := LabArena()
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		p := Point{0.1 + 3.8*r.Float64(), 0.1 + 3.8*r.Float64()}
		if !m.Free(p, 0.01) {
			return true // only consider free interior points
		}
		theta := (r.Float64() - 0.5) * 2 * math.Pi
		d, ok := m.Raycast(p, theta, 100)
		if !ok || d <= 0 {
			return false
		}
		hit := Point{p.X + d*math.Cos(theta), p.Y + d*math.Sin(theta)}
		// Hit point stays within (or on) the arena.
		return m.Bounds.Inflate(1e-9).Contains(hit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Raycast distance must be monotone under max-range truncation.
func TestPropertyRaycastTruncation(t *testing.T) {
	m := LabArena()
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		p := Point{0.2 + 3.6*r.Float64(), 0.2 + 3.6*r.Float64()}
		theta := (r.Float64() - 0.5) * 2 * math.Pi
		full, _ := m.Raycast(p, theta, 100)
		clipped, _ := m.Raycast(p, theta, full/2)
		return clipped <= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
