// Package world models the 2D environment the robots operate in: a walled
// arena (the Vicon lab of Fig. 5(b)) with rectangular obstacles. It
// provides the geometric primitives the LiDAR sensor (ray casting against
// walls), the RRT* planner (collision checking, free-space sampling), and
// the simulator (containment checks) build on.
package world

import (
	"errors"
	"fmt"
	"math"
)

// Point is a 2D position in meters.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Rect is an axis-aligned rectangle given by its min and max corners.
type Rect struct {
	Min, Max Point
}

// NewRect returns a rectangle, normalizing the corner order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	return Rect{
		Min: Point{math.Min(x0, x1), math.Min(y0, y1)},
		Max: Point{math.Max(x0, x1), math.Max(y0, y1)},
	}
}

// Contains reports whether p lies inside or on the rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Inflate returns the rectangle grown by margin on every side.
func (r Rect) Inflate(margin float64) Rect {
	return Rect{
		Min: Point{r.Min.X - margin, r.Min.Y - margin},
		Max: Point{r.Max.X + margin, r.Max.Y + margin},
	}
}

// Edges returns the four boundary segments.
func (r Rect) Edges() []Segment {
	a := r.Min
	b := Point{r.Max.X, r.Min.Y}
	c := r.Max
	d := Point{r.Min.X, r.Max.Y}
	return []Segment{{a, b}, {b, c}, {c, d}, {d, a}}
}

// Center returns the rectangle centroid.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Map is a rectangular arena with named walls and rectangular obstacles.
type Map struct {
	// Bounds is the arena rectangle; its edges are the walls the LiDAR
	// ranges against.
	Bounds Rect
	// Obstacles are solid regions the planner must avoid. LiDAR beams
	// also terminate on them.
	Obstacles []Rect
}

// ErrOutOfBounds indicates a query outside the arena.
var ErrOutOfBounds = errors.New("world: point outside arena")

// NewArena returns an empty arena of the given width and height with the
// origin at the south-west corner.
func NewArena(width, height float64) *Map {
	return &Map{Bounds: NewRect(0, 0, width, height)}
}

// AddObstacle appends a rectangular obstacle.
func (m *Map) AddObstacle(r Rect) { m.Obstacles = append(m.Obstacles, r) }

// InBounds reports whether p lies inside the arena.
func (m *Map) InBounds(p Point) bool { return m.Bounds.Contains(p) }

// Free reports whether p lies inside the arena and outside every obstacle
// inflated by margin (the robot radius).
func (m *Map) Free(p Point, margin float64) bool {
	if !m.Bounds.Inflate(-margin).Contains(p) {
		return false
	}
	for _, o := range m.Obstacles {
		if o.Inflate(margin).Contains(p) {
			return false
		}
	}
	return true
}

// SegmentFree reports whether the whole segment stays in free space with
// the given margin, checked by sampling at steps of at most step meters.
func (m *Map) SegmentFree(s Segment, margin, step float64) bool {
	if step <= 0 {
		step = 0.02
	}
	length := s.Length()
	n := int(math.Ceil(length/step)) + 1
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		p := Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
		if !m.Free(p, margin) {
			return false
		}
	}
	return true
}

// Raycast returns the distance from origin along the unit direction
// (cos θ, sin θ) to the nearest wall or obstacle edge, up to maxRange.
// If nothing is hit within maxRange (possible only when origin is outside
// the arena), it returns maxRange and ok = false.
func (m *Map) Raycast(origin Point, theta, maxRange float64) (dist float64, ok bool) {
	best, hit := m.RaycastWalls(origin, theta, maxRange)
	dir := Point{math.Cos(theta), math.Sin(theta)}
	for _, o := range m.Obstacles {
		for _, seg := range o.Edges() {
			if t, k := raySegment(origin, dir, seg); k && t < best {
				best = t
				hit = true
			}
		}
	}
	return best, hit
}

// RaycastWalls is Raycast restricted to the arena boundary. Because the
// arena is convex, the resulting range is a continuous function of the
// pose — the property the LiDAR measurement model relies on (the paper's
// workflow extracts "distances from surrounding walls").
func (m *Map) RaycastWalls(origin Point, theta, maxRange float64) (dist float64, ok bool) {
	dist, _, ok = m.RaycastWallsSeg(origin, theta, maxRange)
	return dist, ok
}

// RaycastWallsSeg is RaycastWalls returning also the wall segment the
// beam terminates on, so measurement models can differentiate the range
// in closed form (the range to a fixed wall line is smooth in the pose;
// only the beam→wall assignment is piecewise). When ok is false the
// segment is zero. The walls are visited in Rect.Edges order and no
// heap allocation is performed, making this the hot-loop form.
func (m *Map) RaycastWallsSeg(origin Point, theta, maxRange float64) (dist float64, wall Segment, ok bool) {
	sin, cos := math.Sincos(theta)
	dir := Point{cos, sin}
	r := m.Bounds
	a := r.Min
	b := Point{r.Max.X, r.Min.Y}
	c := r.Max
	d := Point{r.Min.X, r.Max.Y}
	segs := [4]Segment{{a, b}, {b, c}, {c, d}, {d, a}}
	best := maxRange
	hit := false
	for _, seg := range segs {
		if t, k := raySegment(origin, dir, seg); k && t < best {
			best = t
			wall = seg
			hit = true
		}
	}
	if !hit {
		wall = Segment{}
	}
	return best, wall, hit
}

// raySegment intersects the ray origin + t·dir (t ≥ 0) with a segment,
// returning the smallest nonnegative t.
func raySegment(origin, dir Point, seg Segment) (t float64, ok bool) {
	// Solve origin + t·dir = A + s·(B−A) with t ≥ 0, s ∈ [0, 1].
	e := seg.B.Sub(seg.A)
	denom := dir.X*e.Y - dir.Y*e.X
	if math.Abs(denom) < 1e-15 {
		return 0, false // parallel (collinear overlap treated as miss)
	}
	ao := seg.A.Sub(origin)
	t = (ao.X*e.Y - ao.Y*e.X) / denom
	s := (ao.X*dir.Y - ao.Y*dir.X) / denom
	if t < 0 || s < -1e-12 || s > 1+1e-12 {
		return 0, false
	}
	return t, true
}

// String describes the map for logs.
func (m *Map) String() string {
	return fmt.Sprintf("arena %.2fx%.2fm with %d obstacles",
		m.Bounds.Max.X-m.Bounds.Min.X, m.Bounds.Max.Y-m.Bounds.Min.Y, len(m.Obstacles))
}

// LabArena returns the default experiment environment: a 4×4 m arena with
// two rectangular obstacles, sized after the indoor Vicon space of
// Fig. 5(b).
func LabArena() *Map {
	m := NewArena(4, 4)
	m.AddObstacle(NewRect(1.2, 1.4, 1.8, 2.0))
	m.AddObstacle(NewRect(2.4, 2.6, 3.0, 3.2))
	return m
}

// WarehouseArena returns a larger 8×6 m environment with shelf-like
// obstacle rows, after the warehouse-robot application the paper's
// introduction motivates.
func WarehouseArena() *Map {
	m := NewArena(8, 6)
	for _, y := range []float64{1.2, 3.0, 4.8} {
		m.AddObstacle(NewRect(1.5, y, 4.0, y+0.4))
		m.AddObstacle(NewRect(5.0, y, 7.0, y+0.4))
	}
	return m
}
