// Package control implements the closed-loop path tracking from the
// paper's mission (§V-A): PID control that follows the RRT*-planned path
// using real-time positioning feedback, producing the planned control
// commands u_{k-1} that both the actuators and the RoboADS monitor
// receive.
package control

import "math"

// PID is a discrete PID controller with integral anti-windup and output
// saturation.
type PID struct {
	// Kp, Ki, Kd are the proportional, integral and derivative gains.
	Kp, Ki, Kd float64
	// IntegralLimit bounds |integral| for anti-windup; 0 disables the
	// integral clamp.
	IntegralLimit float64
	// OutputLimit bounds |output|; 0 disables output saturation.
	OutputLimit float64

	integral float64
	prevErr  float64
	primed   bool
}

// Update advances the controller by one period dt with the given error
// and returns the control output.
func (c *PID) Update(err, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	c.integral += err * dt
	if c.IntegralLimit > 0 {
		c.integral = clamp(c.integral, c.IntegralLimit)
	}
	var deriv float64
	if c.primed {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.primed = true

	out := c.Kp*err + c.Ki*c.integral + c.Kd*deriv
	if c.OutputLimit > 0 {
		out = clamp(out, c.OutputLimit)
	}
	return out
}

// Reset clears the integral and derivative history.
func (c *PID) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.primed = false
}

func clamp(v, limit float64) float64 {
	return math.Max(-limit, math.Min(limit, v))
}
