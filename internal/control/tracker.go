package control

import (
	"errors"
	"math"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/world"
)

// ErrEmptyPath indicates a tracker constructed without waypoints.
var ErrEmptyPath = errors.New("control: empty path")

// Tracker converts the current state estimate into the next planned
// control command, and reports when the mission is complete.
type Tracker interface {
	// Control returns the planned control command for state x and
	// whether the goal has been reached.
	Control(x mat.Vec) (u mat.Vec, done bool)
}

// lookaheadTarget returns the pure-pursuit target: pos is projected onto
// the path, then the target is the path point a distance lookahead ahead
// of that projection (interpolated along segments). *progress tracks the
// segment index of the projection and never regresses, so the tracker
// cannot be pulled back to an earlier path section it already passed.
func lookaheadTarget(path []world.Point, pos world.Point, lookahead float64, progress *int) world.Point {
	if len(path) == 1 {
		return path[0]
	}
	// Project pos onto the remaining segments.
	bestSeg, bestT, bestDist := *progress, 0.0, math.Inf(1)
	for i := *progress; i < len(path)-1; i++ {
		t, d := projectOnSegment(pos, path[i], path[i+1])
		if d < bestDist {
			bestSeg, bestT, bestDist = i, t, d
		}
	}
	*progress = bestSeg

	// Walk forward along the path from the projection point.
	remaining := lookahead
	cur := interpolate(path[bestSeg], path[bestSeg+1], bestT)
	for i := bestSeg; i < len(path)-1; i++ {
		end := path[i+1]
		segLen := cur.Dist(end)
		if segLen >= remaining {
			t := remaining / segLen
			return interpolate(cur, end, t)
		}
		remaining -= segLen
		cur = end
	}
	return path[len(path)-1]
}

// projectOnSegment returns the parameter t ∈ [0, 1] of the closest point
// to p on segment a→b, and the distance to it.
func projectOnSegment(p, a, b world.Point) (t, dist float64) {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return 0, p.Dist(a)
	}
	ap := p.Sub(a)
	t = (ap.X*ab.X + ap.Y*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	return t, p.Dist(interpolate(a, b, t))
}

func interpolate(a, b world.Point, t float64) world.Point {
	return world.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
}

// DiffDriveTracker follows a waypoint path with a differential drive
// robot: pure-pursuit target selection, PID on the heading error, and a
// speed profile that slows into the goal.
type DiffDriveTracker struct {
	model    *dynamics.DifferentialDrive
	path     []world.Point
	heading  PID
	progress int

	// Lookahead is the pure-pursuit distance in meters.
	Lookahead float64
	// CruiseSpeed is the nominal forward speed in m/s.
	CruiseSpeed float64
	// GoalTolerance ends the mission when within this distance of the
	// final waypoint.
	GoalTolerance float64
	// MaxWheelSpeed saturates each wheel command in m/s.
	MaxWheelSpeed float64
}

var _ Tracker = (*DiffDriveTracker)(nil)

// NewDiffDriveTracker returns a tracker for the given model and path with
// the experiment defaults.
func NewDiffDriveTracker(model *dynamics.DifferentialDrive, path []world.Point) (*DiffDriveTracker, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	t := &DiffDriveTracker{
		model:         model,
		path:          append([]world.Point(nil), path...),
		Lookahead:     0.25,
		CruiseSpeed:   0.15,
		GoalTolerance: 0.08,
		MaxWheelSpeed: 0.5,
	}
	t.heading = PID{Kp: 2.5, Ki: 0.0, Kd: 0.15, OutputLimit: 3.0}
	return t, nil
}

// Control implements Tracker.
func (t *DiffDriveTracker) Control(x mat.Vec) (mat.Vec, bool) {
	pos := world.Point{X: x[0], Y: x[1]}
	goal := t.path[len(t.path)-1]
	distGoal := pos.Dist(goal)
	if distGoal <= t.GoalTolerance {
		return mat.VecOf(0, 0), true
	}

	target := lookaheadTarget(t.path, pos, t.Lookahead, &t.progress)
	desired := math.Atan2(target.Y-pos.Y, target.X-pos.X)
	headingErr := dynamics.AngleDiff(desired, x[2])
	omega := t.heading.Update(headingErr, t.model.Dt)

	// Slow down for sharp turns and on final approach.
	speed := t.CruiseSpeed * math.Max(0.15, math.Cos(headingErr))
	if distGoal < 3*t.GoalTolerance {
		speed *= distGoal / (3 * t.GoalTolerance)
	}

	u := t.model.WheelSpeeds(speed, omega)
	u[0] = clamp(u[0], t.MaxWheelSpeed)
	u[1] = clamp(u[1], t.MaxWheelSpeed)
	return u, false
}

// BicycleTracker follows a waypoint path with the kinematic bicycle:
// pure-pursuit steering and PID speed control.
type BicycleTracker struct {
	model    *dynamics.Bicycle
	path     []world.Point
	speed    PID
	progress int

	// Lookahead is the pure-pursuit distance in meters.
	Lookahead float64
	// CruiseSpeed is the nominal forward speed in m/s.
	CruiseSpeed float64
	// GoalTolerance ends the mission when within this distance of the
	// final waypoint.
	GoalTolerance float64
	// MaxAccel saturates the acceleration command in m/s².
	MaxAccel float64
}

var _ Tracker = (*BicycleTracker)(nil)

// NewBicycleTracker returns a tracker for the given model and path with
// the experiment defaults.
func NewBicycleTracker(model *dynamics.Bicycle, path []world.Point) (*BicycleTracker, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	t := &BicycleTracker{
		model:         model,
		path:          append([]world.Point(nil), path...),
		Lookahead:     0.45,
		CruiseSpeed:   0.3,
		GoalTolerance: 0.12,
		MaxAccel:      1.0,
	}
	t.speed = PID{Kp: 2.0, Ki: 0.5, Kd: 0, IntegralLimit: 0.5, OutputLimit: t.MaxAccel}
	return t, nil
}

// Control implements Tracker.
func (t *BicycleTracker) Control(x mat.Vec) (mat.Vec, bool) {
	pos := world.Point{X: x[0], Y: x[1]}
	goal := t.path[len(t.path)-1]
	distGoal := pos.Dist(goal)
	v := x[3]
	if distGoal <= t.GoalTolerance && math.Abs(v) < 0.05 {
		return mat.VecOf(0, 0), true
	}

	target := lookaheadTarget(t.path, pos, t.Lookahead, &t.progress)
	desired := math.Atan2(target.Y-pos.Y, target.X-pos.X)
	alpha := dynamics.AngleDiff(desired, x[2])
	// Pure-pursuit steering: δ = atan(2·L·sin(α) / lookahead).
	delta := math.Atan2(2*t.model.WheelBase*math.Sin(alpha), t.Lookahead)
	delta = clamp(delta, t.model.MaxSteer)

	targetSpeed := t.CruiseSpeed * math.Max(0.2, math.Cos(alpha))
	if distGoal < 4*t.GoalTolerance {
		targetSpeed *= distGoal / (4 * t.GoalTolerance)
	}
	accel := t.speed.Update(targetSpeed-v, t.model.Dt)

	return mat.VecOf(accel, delta), false
}
