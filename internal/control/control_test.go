package control

import (
	"errors"
	"math"
	"testing"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/world"
)

func TestPIDProportional(t *testing.T) {
	c := PID{Kp: 2}
	if got := c.Update(1.5, 0.1); math.Abs(got-3) > 1e-9 {
		t.Fatalf("output = %v, want 3", got)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	c := PID{Ki: 1}
	c.Update(1, 0.5)
	got := c.Update(1, 0.5)
	if math.Abs(got-1) > 1e-9 { // integral = 1.0 after two 0.5s steps
		t.Fatalf("output = %v, want 1", got)
	}
}

func TestPIDDerivativeNotPrimedOnFirstStep(t *testing.T) {
	c := PID{Kd: 10}
	if got := c.Update(5, 0.1); got != 0 {
		t.Fatalf("first-step derivative kick: %v", got)
	}
	if got := c.Update(6, 0.1); math.Abs(got-100) > 1e-9 {
		t.Fatalf("derivative = %v, want 100", got)
	}
}

func TestPIDAntiWindupAndSaturation(t *testing.T) {
	c := PID{Ki: 1, IntegralLimit: 2, OutputLimit: 1.5}
	for i := 0; i < 100; i++ {
		c.Update(10, 0.1)
	}
	if got := c.Update(0, 0.1); math.Abs(got) > 1.5+1e-9 {
		t.Fatalf("output exceeds saturation: %v", got)
	}
	c.Reset()
	if got := c.Update(0, 0.1); got != 0 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestPIDZeroDt(t *testing.T) {
	c := PID{Kp: 1}
	if got := c.Update(1, 0); got != 0 {
		t.Fatalf("zero dt output = %v", got)
	}
}

func TestDiffDriveTrackerReachesGoal(t *testing.T) {
	model := dynamics.NewKhepera(0.1)
	path := []world.Point{{X: 0.5, Y: 0.5}, {X: 1.5, Y: 0.5}, {X: 1.5, Y: 1.5}, {X: 2.5, Y: 1.5}}
	tr, err := NewDiffDriveTracker(model, path)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.VecOf(0.5, 0.5, 0)
	done := false
	for i := 0; i < 2000 && !done; i++ {
		var u mat.Vec
		u, done = tr.Control(x)
		x = model.F(x, u)
	}
	if !done {
		t.Fatalf("never reached goal; final state %v", x)
	}
	goal := path[len(path)-1]
	if d := math.Hypot(x[0]-goal.X, x[1]-goal.Y); d > tr.GoalTolerance+0.02 {
		t.Fatalf("stopped %.3f m from goal", d)
	}
}

func TestDiffDriveTrackerRespectsWheelLimit(t *testing.T) {
	model := dynamics.NewKhepera(0.1)
	tr, err := NewDiffDriveTracker(model, []world.Point{{X: 0, Y: 0}, {X: 3, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Facing exactly away from the path: large heading correction.
	u, done := tr.Control(mat.VecOf(0, 0, math.Pi))
	if done {
		t.Fatal("done immediately")
	}
	if math.Abs(u[0]) > tr.MaxWheelSpeed+1e-9 || math.Abs(u[1]) > tr.MaxWheelSpeed+1e-9 {
		t.Fatalf("wheel command exceeds limit: %v", u)
	}
}

func TestDiffDriveTrackerDoneAtGoal(t *testing.T) {
	model := dynamics.NewKhepera(0.1)
	tr, err := NewDiffDriveTracker(model, []world.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	u, done := tr.Control(mat.VecOf(1, 0, 0))
	if !done {
		t.Fatal("not done at goal")
	}
	if u[0] != 0 || u[1] != 0 {
		t.Fatalf("nonzero command at goal: %v", u)
	}
}

func TestTrackerEmptyPath(t *testing.T) {
	if _, err := NewDiffDriveTracker(dynamics.NewKhepera(0.1), nil); !errors.Is(err, ErrEmptyPath) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewBicycleTracker(dynamics.NewTamiya(0.1), nil); !errors.Is(err, ErrEmptyPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestBicycleTrackerReachesGoal(t *testing.T) {
	model := dynamics.NewTamiya(0.05)
	path := []world.Point{{X: 0.5, Y: 0.5}, {X: 2, Y: 0.7}, {X: 3, Y: 2}, {X: 3.2, Y: 3.2}}
	tr, err := NewBicycleTracker(model, path)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.VecOf(0.5, 0.5, 0, 0)
	done := false
	for i := 0; i < 5000 && !done; i++ {
		var u mat.Vec
		u, done = tr.Control(x)
		x = model.F(x, u)
	}
	if !done {
		t.Fatalf("never reached goal; final state %v", x)
	}
}

func TestBicycleTrackerSteeringSaturated(t *testing.T) {
	model := dynamics.NewTamiya(0.05)
	tr, err := NewBicycleTracker(model, []world.Point{{X: 0, Y: 0}, {X: 3, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := tr.Control(mat.VecOf(0, 0, math.Pi, 0.3))
	if math.Abs(u[1]) > model.MaxSteer+1e-9 {
		t.Fatalf("steering exceeds saturation: %v", u[1])
	}
	if math.Abs(u[0]) > tr.MaxAccel+1e-9 {
		t.Fatalf("acceleration exceeds limit: %v", u[0])
	}
}

func TestLookaheadTargetNeverRegresses(t *testing.T) {
	path := []world.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	progress := 0
	// Standing near waypoint 2, the target must be ahead of it.
	got := lookaheadTarget(path, world.Point{X: 2, Y: 0.01}, 0.5, &progress)
	if got.X < 2.5 {
		t.Fatalf("target = %v, should be ahead", got)
	}
	// Even if the query point moves backwards, progress is monotone.
	before := progress
	lookaheadTarget(path, world.Point{X: 0, Y: 0}, 0.5, &progress)
	if progress < before {
		t.Fatal("progress regressed")
	}
}
