package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"roboads/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the wire golden file")

// wireSamples is one fully populated instance of every /v1 wire struct,
// in a fixed field order so the rendering is deterministic. The golden
// file pins the JSON names, the omitempty behavior (each pair below has
// a populated and a zero-heavy variant), and the base64 encoding of
// byte fields — any accidental rename or type change diffs loudly.
type wireSamples struct {
	WireReport      WireReport      `json:"wireReport"`
	WireReportQuiet WireReport      `json:"wireReportQuiet"`
	CreateRequest   CreateRequest   `json:"createRequest"`
	CreateMinimal   CreateRequest   `json:"createMinimal"`
	SessionInfo     SessionInfo     `json:"sessionInfo"`
	SessionStatus   SessionStatus   `json:"sessionStatus"`
	CheckpointInfo  CheckpointInfo  `json:"checkpointInfo"`
	ReplyOK         ReplyLine       `json:"replyOk"`
	ReplyError      ReplyLine       `json:"replyError"`
	MigrateRequest  MigrateRequest  `json:"migrateRequest"`
	MigrateResponse MigrateResponse `json:"migrateResponse"`
	ImportRequest   ImportRequest   `json:"importRequest"`
	ReplHello       ReplHello       `json:"replHello"`
	ReplSnapshot    ReplRecord      `json:"replSnapshot"`
	ReplFrame       ReplRecord      `json:"replFrame"`
	ReplSessions    ReplRecord      `json:"replSessions"`
	ReplPing        ReplRecord      `json:"replPing"`
	ReplAck         ReplAck         `json:"replAck"`
	ErrorFull       Error           `json:"errorFull"`
	ErrorBare       Error           `json:"errorBare"`
}

func sampleFrame() *trace.Frame {
	return &trace.Frame{
		K:        7,
		TNanos:   700_000_000,
		U:        []float64{0.25, -0.125},
		Readings: map[string][]float64{"ips": {1.5, 2.5, 0.0625}},
	}
}

func samples() wireSamples {
	report := WireReport{
		K: 7, Mode: "nominal", Condition: "S{ips}/A0",
		SensorStat: 3.25, SensorThreshold: 9.4877, SensorAlarm: true,
		ActuatorStat: 0.5, ActuatorThreshold: 6.25,
		X:       []float64{0.1, -0.2, 0.3},
		Weights: []float64{0.9, 0.0625, 0.0375},
		Da:      []float64{0.01, -0.02}, DaValid: true,
	}
	return wireSamples{
		WireReport: report,
		// Alarm-free frame: the omitempty booleans and Da must vanish.
		WireReportQuiet: WireReport{
			K: 8, Mode: "nominal", Condition: "nominal",
			SensorStat: 1.0, SensorThreshold: 9.4877,
			ActuatorStat: 0.25, ActuatorThreshold: 6.25,
			X: []float64{0.0}, Weights: []float64{1.0},
		},
		CreateRequest: CreateRequest{Robot: "khepera", Workers: 4, ID: "mn-0042"},
		CreateMinimal: CreateRequest{Restore: "s-000001"},
		SessionInfo:   SessionInfo{ID: "s-000001", Robot: "khepera", Sensors: []string{"ips", "imu"}, Dt: 0.1},
		SessionStatus: SessionStatus{
			SessionInfo:   SessionInfo{ID: "s-000001", Robot: "khepera", Sensors: []string{"ips"}, Dt: 0.1},
			QueueDepth:    3,
			IdleSeconds:   1.5,
			FramesApplied: 90,
			Node:          "http://127.0.0.1:8081",
		},
		CheckpointInfo:  CheckpointInfo{SessionID: "s-000001", FramesApplied: 90, SnapshotBytes: 4096},
		ReplyOK:         ReplyLine{K: 7, Report: &report},
		ReplyError:      ReplyLine{K: 8, Error: "queue full", Code: CodeBackpressure, Closed: true, RetryAfterMs: 25},
		MigrateRequest:  MigrateRequest{Target: "http://127.0.0.1:8082"},
		MigrateResponse: MigrateResponse{SessionID: "s-000001", Target: "http://127.0.0.1:8082", FramesApplied: 45},
		ImportRequest:   ImportRequest{Snapshot: []byte("snapshot-envelope"), Frames: []*trace.Frame{sampleFrame()}},
		ReplHello:       ReplHello{Cursors: map[string]int{"s-000001": 45}},
		ReplSnapshot:    ReplRecord{Type: "snapshot", Session: "s-000001", Seq: 32, Snapshot: []byte("snapshot-envelope")},
		ReplFrame:       ReplRecord{Type: "frame", Session: "s-000001", Seq: 33, Frame: sampleFrame()},
		ReplSessions:    ReplRecord{Type: "sessions", Sessions: []string{"s-000001", "mn-0042"}},
		ReplPing:        ReplRecord{Type: "ping"},
		ReplAck:         ReplAck{Session: "s-000001", Seq: 33},
		ErrorFull: Error{
			Message:      "fleet: session s-000001 moved",
			Code:         CodeMoved,
			RetryAfterMs: 50,
			Location:     "http://127.0.0.1:8082",
			Status:       410, // json:"-": must NOT appear in the golden file
		},
		ErrorBare: Error{Message: "fleet: unknown robot", Code: CodeBadRequest},
	}
}

// TestWireGolden pins the JSON rendering of every /v1 wire struct
// against testdata/wire.golden.json. A failure means the wire contract
// changed: if that is intentional and append-only, regenerate with
//
//	go test ./internal/api -run TestWireGolden -update
//
// and review the diff like any other contract change.
func TestWireGolden(t *testing.T) {
	got, err := json.MarshalIndent(samples(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "wire.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire rendering diverged from %s (regenerate with -update if intended)\ngot:\n%s", path, got)
	}
}

// TestWireRoundTrip guards the other direction: the golden bytes decode
// back into structurally identical values, so no field is write-only.
func TestWireRoundTrip(t *testing.T) {
	want := samples()
	want.ErrorFull.Status = 0 // json:"-" never round-trips
	data, err := json.Marshal(samples())
	if err != nil {
		t.Fatal(err)
	}
	var got wireSamples
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip diverged:\nwant %s\ngot  %s", a, b)
	}
}
