package api

import (
	"errors"
	"fmt"
)

// Error codes. Every non-2xx /v1 response body is an Error envelope
// carrying exactly one of these; clients dispatch on Code instead of
// string-matching messages. The set is append-only.
const (
	// CodeBadRequest: the request was malformed (bad JSON, unknown
	// robot, invalid parameters).
	CodeBadRequest = "bad_request"
	// CodeBackpressure: the session's queue is full; retry after
	// RetryAfterMs.
	CodeBackpressure = "backpressure"
	// CodeNotFound: no such session on this node.
	CodeNotFound = "not_found"
	// CodeClosed: the session was closed or evicted.
	CodeClosed = "closed"
	// CodeSessionCap: the node is at its session capacity.
	CodeSessionCap = "session_cap"
	// CodeSessionLive: the session already exists live (restore,
	// import, or proposed-ID collision).
	CodeSessionLive = "session_live"
	// CodeDurabilityDisabled: the node has no state directory.
	CodeDurabilityDisabled = "durability_disabled"
	// CodeMigrating: the session is mid-migration on this node; retry
	// after RetryAfterMs and re-resolve placement.
	CodeMigrating = "migrating"
	// CodeMoved: the session migrated away; Location is the base URL of
	// the node now hosting it.
	CodeMoved = "moved"
	// CodeNotReady: the node is up but not serving (still recovering,
	// following a primary, or shutting down).
	CodeNotReady = "not_ready"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is the versioned machine-readable /v1 error envelope:
//
//	{"error":"...", "code":"backpressure", "retryAfterMs":25}
//
// It implements error, so the typed client returns the decoded envelope
// directly and callers dispatch on Code (or errors.As).
type Error struct {
	// Message is the human-readable description (JSON name "error").
	Message string `json:"error"`
	// Code is the machine-readable cause, one of the Code* constants.
	Code string `json:"code"`
	// RetryAfterMs advises when to retry (backpressure, migrating).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
	// Location is the base URL now hosting the session (moved).
	Location string `json:"location,omitempty"`
	// Status is the HTTP status the envelope arrived with. It is not
	// part of the wire form — the client fills it in on decode.
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	if e.Code == "" {
		return e.Message
	}
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// IsCode reports whether err is (or wraps) an *Error with the given
// code.
func IsCode(err error, code string) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}
