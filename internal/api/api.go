// Package api holds the /v1 wire contract of the fleet session
// service: every request and response struct, the streaming reply line,
// the replication records, and the machine-readable error envelope.
// The fleet HTTP layer, the router, and the typed Go client all speak
// exactly these types — a golden-file test pins their JSON rendering so
// version skew between router, node, and client breaks loudly in CI
// rather than at proxy time.
//
// Floats cross the wire through encoding/json, whose shortest-exact
// rendering round-trips every float64 bit-for-bit, so two wire values
// are equal if and only if the underlying quantities agree exactly.
package api

import "roboads/internal/trace"

// Version is the wire contract version, served as the "v1" path prefix.
// The versioning policy is append-only: new optional JSON fields do not
// bump it; removed or re-interpreted fields do.
const Version = 1

// ContentTypeBinaryFrames selects the binary frame wire on
// POST /v1/sessions/{id}/frames: the request body is a stream of
// trace binary frame records (no stream prologue, no header record —
// exactly the record envelope trace.ReadFrameRecord consumes). Any
// other Content-Type means trace.Frame NDJSON. Replies are ReplyLine
// NDJSON either way.
const ContentTypeBinaryFrames = "application/x-roboads-frames"

// ContentTypeNDJSON is the NDJSON content type of frame and reply
// streams.
const ContentTypeNDJSON = "application/x-ndjson"

// WireReport is the serialized form of one frame's detector report — the
// decision-relevant subset of detect.Report, flat and JSON-stable.
type WireReport struct {
	// K is the control iteration index.
	K int `json:"k"`
	// Mode is the selected hypothesis mode's name.
	Mode string `json:"mode"`
	// Condition is the confirmed misbehavior condition, e.g. "S{ips}/A0".
	Condition string `json:"condition"`
	// SensorStat/SensorThreshold are the aggregate sensor test statistic
	// and its chi-square threshold; SensorAlarm is the window-confirmed
	// alarm.
	SensorStat      float64 `json:"sensorStat"`
	SensorThreshold float64 `json:"sensorThreshold"`
	SensorAlarm     bool    `json:"sensorAlarm,omitempty"`
	// ActuatorStat/ActuatorThreshold/ActuatorAlarm are the actuator-side
	// counterparts.
	ActuatorStat      float64 `json:"actuatorStat"`
	ActuatorThreshold float64 `json:"actuatorThreshold"`
	ActuatorAlarm     bool    `json:"actuatorAlarm,omitempty"`
	// X is the fused state estimate x̂_{k|k}.
	X []float64 `json:"x"`
	// Weights are the normalized mode weights μ_k.
	Weights []float64 `json:"weights"`
	// Da is the actuator anomaly estimate; omitted when the actuator
	// anomaly was unobservable this iteration (DaValid false).
	Da      []float64 `json:"da,omitempty"`
	DaValid bool      `json:"daValid,omitempty"`
}

// CreateRequest is the body of POST /v1/sessions.
type CreateRequest struct {
	// Robot names the platform profile to host.
	Robot string `json:"robot"`
	// Workers optionally overrides the session's mode-bank worker count.
	Workers int `json:"workers,omitempty"`
	// ID optionally proposes the session identifier instead of letting
	// the node assign one. The router places sessions by consistent hash
	// of the ID, so it generates the ID first and proposes it — then the
	// owner of an ID is a pure function of the node list. A proposed ID
	// that is already live answers ErrSessionLive (409).
	ID string `json:"id,omitempty"`
	// Restore, when set, revives the named persisted session (e.g. one
	// that was idle-evicted) under its original ID instead of creating
	// a new one; Robot and Workers are then ignored — the session's
	// recorded profile wins. Requires a durable node.
	Restore string `json:"restore,omitempty"`
}

// SessionInfo identifies a live session. Robot, Sensors, and Dt mirror
// the trace.Header fields (same JSON names), so a session advertises the
// exact wire contract a recorded trace carries.
type SessionInfo struct {
	// ID is the session identifier.
	ID string `json:"id"`
	// Robot names the hosted platform profile.
	Robot string `json:"robot"`
	// Sensors lists the expected sensing workflow names per frame.
	Sensors []string `json:"sensors"`
	// Dt is the control period in seconds.
	Dt float64 `json:"dtSeconds"`
}

// SessionStatus is SessionInfo plus live occupancy, as reported by
// GET /v1/sessions and GET /v1/sessions/{id}.
type SessionStatus struct {
	SessionInfo
	// QueueDepth is the session's current frame backlog.
	QueueDepth int `json:"queueDepth"`
	// IdleSeconds is the time since the session last accepted or
	// finished a frame.
	IdleSeconds float64 `json:"idleSeconds"`
	// FramesApplied is the number of frames folded into the detector
	// state — the index the next frame continues from.
	FramesApplied int `json:"framesApplied"`
	// Node is the base URL of the node hosting the session. Nodes leave
	// it empty; the router fills it in when merging per-node listings.
	Node string `json:"node,omitempty"`
}

// CheckpointInfo describes one completed checkpoint, returned by
// POST /v1/sessions/{id}/checkpoint.
type CheckpointInfo struct {
	// SessionID is the checkpointed session.
	SessionID string `json:"sessionId"`
	// FramesApplied is the absolute frame count folded into the
	// snapshot — the point recovery resumes from with an empty WAL.
	FramesApplied int `json:"framesApplied"`
	// SnapshotBytes is the encoded snapshot size on disk.
	SnapshotBytes int `json:"snapshotBytes"`
}

// ReplyLine is one NDJSON line streamed back per submitted frame, and
// the body of a single-frame /step response. Exactly one of Report and
// Error is set.
type ReplyLine struct {
	// K echoes the frame's iteration index.
	K int `json:"k"`
	// Report is the frame's detector report.
	Report *WireReport `json:"report,omitempty"`
	// Error describes why the frame produced no report.
	Error string `json:"error,omitempty"`
	// Code is the machine-readable error code of Error (the same
	// vocabulary as the Error envelope); empty on success.
	Code string `json:"code,omitempty"`
	// Closed marks errors that end the session (closed, evicted, moved,
	// or unknown); the client must stop streaming.
	Closed bool `json:"closed,omitempty"`
	// RetryAfterMs is the backpressure retry hint of a rejected frame
	// (single-frame /step only; the streaming endpoint retries
	// server-side).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// MigrateRequest is the body of POST /v1/sessions/{id}/migrate.
type MigrateRequest struct {
	// Target is the base URL of the node to move the session to, e.g.
	// "http://127.0.0.1:8081".
	Target string `json:"target"`
}

// MigrateResponse reports a completed live migration.
type MigrateResponse struct {
	// SessionID is the migrated session.
	SessionID string `json:"sessionId"`
	// Target is the node now hosting it.
	Target string `json:"target"`
	// FramesApplied is the frame count at the migration boundary; the
	// target resumes from exactly here, bit-for-bit.
	FramesApplied int `json:"framesApplied"`
}

// ImportRequest is the body of POST /v1/internal/sessions/import — the
// receiving half of a live migration. Snapshot is a complete store
// snapshot envelope (identity + state + FramesApplied); Frames is the
// WAL tail to replay on top of it. The session ID travels inside the
// snapshot.
type ImportRequest struct {
	// Snapshot is the versioned CRC-checked snapshot envelope
	// (base64-encoded by encoding/json).
	Snapshot []byte `json:"snapshot"`
	// Frames is the WAL tail: the frames applied after the snapshot, in
	// order, continuing at the snapshot's FramesApplied+1.
	Frames []*trace.Frame `json:"frames,omitempty"`
}

// Replication wire (POST /v1/internal/replicate): the follower opens a
// full-duplex request whose body starts with one ReplHello line and
// continues with ReplAck lines; the primary streams ReplRecord NDJSON
// back until the connection dies or a newer follower replaces this one.

// ReplHello is the first request-body line of a replication stream: the
// follower's durable cursor per session. A session absent from the map
// means the follower holds nothing for it and needs a snapshot.
type ReplHello struct {
	Cursors map[string]int `json:"cursors"`
}

// ReplRecord is one NDJSON line of the primary's replication stream.
type ReplRecord struct {
	// Type is "snapshot", "frame", "sessions", or "ping".
	Type string `json:"type"`
	// Session is the session the record belongs to (snapshot, frame).
	Session string `json:"session,omitempty"`
	// Seq is the absolute applied-frame index the record brings the
	// follower to: the snapshot's FramesApplied, or the frame's WAL
	// sequence number.
	Seq int `json:"seq,omitempty"`
	// Snapshot is the full snapshot envelope (type "snapshot").
	Snapshot []byte `json:"snapshot,omitempty"`
	// Frame is one WAL frame (type "frame").
	Frame *trace.Frame `json:"frame,omitempty"`
	// Sessions is the primary's full live-session list (type
	// "sessions"); the follower drops local sessions not in it.
	Sessions []string `json:"sessions,omitempty"`
}

// ReplAck is one request-body line after the hello: the follower has
// made session durable through seq on its own storage.
type ReplAck struct {
	Session string `json:"session"`
	Seq     int    `json:"seq"`
}
