package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"roboads/internal/mat"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDecorrelated(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d times", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Fork("sensors")
	c2 := r.Fork("process")
	if c1.Float64() == c2.Float64() {
		t.Fatal("forked streams identical")
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Gaussian(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %v, want ≈2", mean)
	}
	if math.Abs(variance-9) > 0.25 {
		t.Fatalf("variance = %v, want ≈9", variance)
	}
}

func TestGaussianVec(t *testing.T) {
	r := NewRNG(5)
	v := r.GaussianVec(mat.VecOf(0, 1, 2))
	if v[0] != 0 {
		t.Fatalf("zero stddev component = %v", v[0])
	}
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
}

func TestMVNCovariance(t *testing.T) {
	r := NewRNG(11)
	cov := mat.FromRows([]float64{2, 0.8}, []float64{0.8, 1})
	const n = 100000
	acc := mat.New(2, 2)
	for i := 0; i < n; i++ {
		x, err := r.MVN(cov)
		if err != nil {
			t.Fatal(err)
		}
		acc = acc.Add(x.Outer(x))
	}
	empirical := acc.Scale(1.0 / n)
	if !empirical.Equal(cov, 0.05) {
		t.Fatalf("empirical covariance:\n%v", empirical)
	}
}

func TestMVNRejectsIndefinite(t *testing.T) {
	r := NewRNG(1)
	if _, err := r.MVN(mat.Diag(1, -1)); err == nil {
		t.Fatal("expected error for indefinite covariance")
	}
}

func TestNormalPDFCDF(t *testing.T) {
	if got := NormalPDF(0, 0, 1); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("pdf(0) = %v", got)
	}
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cdf(0) = %v", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.975) > 1e-3 {
		t.Fatalf("cdf(1.96) = %v", got)
	}
}

// Reference chi-square quantiles (R: qchisq(1-alpha, df)).
func TestChiSquareQuantileReference(t *testing.T) {
	cases := []struct {
		alpha float64
		k     int
		want  float64
	}{
		{0.05, 1, 3.841459},
		{0.05, 2, 5.991465},
		{0.005, 3, 12.83816},
		{0.05, 3, 7.814728},
		{0.01, 10, 23.20925},
		{0.995, 2, 0.01002509},
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(c.alpha, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-4*c.want+1e-6 {
			t.Fatalf("quantile(%v, %d) = %v, want %v", c.alpha, c.k, got, c.want)
		}
	}
}

func TestChiSquareCDFReference(t *testing.T) {
	// R: pchisq(3.841459, 1) = 0.95
	got, err := ChiSquareCDF(3.841459, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.95) > 1e-6 {
		t.Fatalf("cdf = %v, want 0.95", got)
	}
	if got, _ := ChiSquareCDF(-1, 3); got != 0 {
		t.Fatalf("cdf(-1) = %v, want 0", got)
	}
}

func TestChiSquareInvalidParams(t *testing.T) {
	if _, err := ChiSquareCDF(1, 0); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ChiSquareQuantile(0, 2); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ChiSquareQuantile(1, 2); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("err = %v", err)
	}
}

func TestChiSquareSampleMean(t *testing.T) {
	r := NewRNG(9)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ChiSquareSample(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("sample mean = %v, want ≈4", mean)
	}
}

func TestChiSquareEmpiricalQuantile(t *testing.T) {
	// The fraction of chi-square samples above the (alpha, k) threshold
	// should be ≈ alpha — the exact property the decision maker relies on
	// for its false positive rate.
	r := NewRNG(13)
	threshold, err := ChiSquareQuantile(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	exceed := 0
	for i := 0; i < n; i++ {
		if r.ChiSquareSample(3) > threshold {
			exceed++
		}
	}
	rate := float64(exceed) / n
	if math.Abs(rate-0.05) > 0.005 {
		t.Fatalf("exceedance rate = %v, want ≈0.05", rate)
	}
}

// --- property-based tests -------------------------------------------------

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seedRaw int64) bool {
		r := NewRNG(seedRaw)
		k := 1 + r.IntN(12)
		x1 := r.Float64() * 30
		x2 := x1 + r.Float64()*10
		p1, err1 := ChiSquareCDF(x1, k)
		p2, err2 := ChiSquareCDF(x2, k)
		return err1 == nil && err2 == nil && p2 >= p1-1e-12 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileCDFRoundTrip(t *testing.T) {
	f := func(seedRaw int64) bool {
		r := NewRNG(seedRaw)
		k := 1 + r.IntN(12)
		alpha := 0.001 + 0.99*r.Float64()
		q, err := ChiSquareQuantile(alpha, k)
		if err != nil {
			return false
		}
		p, err := ChiSquareCDF(q, k)
		if err != nil {
			return false
		}
		return math.Abs((1-p)-alpha) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileMonotoneInAlpha(t *testing.T) {
	f := func(seedRaw int64) bool {
		r := NewRNG(seedRaw)
		k := 1 + r.IntN(8)
		a1 := 0.01 + 0.4*r.Float64()
		a2 := a1 + 0.1
		q1, err1 := ChiSquareQuantile(a1, k)
		q2, err2 := ChiSquareQuantile(a2, k)
		// Larger alpha (less confidence) → smaller threshold.
		return err1 == nil && err2 == nil && q2 < q1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKSUniform(t *testing.T) {
	r := NewRNG(17)
	uniform := make([]float64, 2000)
	for i := range uniform {
		uniform[i] = r.Float64()
	}
	stat, rejected, err := KSUniform(uniform, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Fatalf("uniform samples rejected (D=%.4f)", stat)
	}
	// Clearly non-uniform samples must be rejected.
	skewed := make([]float64, 2000)
	for i := range skewed {
		x := r.Float64()
		skewed[i] = x * x
	}
	if _, rejected, _ := KSUniform(skewed, 0.05); !rejected {
		t.Fatal("squared-uniform samples accepted")
	}
	if _, _, err := KSUniform(nil, 0.05); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := KSUniform([]float64{2}, 0.05); err == nil {
		t.Fatal("out-of-range sample accepted")
	}
}
