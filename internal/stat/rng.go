// Package stat provides the probability machinery used by RoboADS:
// deterministic random number generation, Gaussian and multivariate-normal
// sampling for the simulator, and the chi-square distribution used by the
// decision maker's hypothesis tests.
package stat

import (
	"fmt"
	"math"
	"math/rand"

	"roboads/internal/mat"
)

// RNG is a deterministic random source. All simulator randomness flows
// through explicitly seeded RNGs so that every experiment is reproducible.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(splitmix64(uint64(seed))))}
}

// splitmix64 scrambles a seed so that nearby seeds (0, 1, 2, ...) yield
// uncorrelated streams.
func splitmix64(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// Fork derives an independent child generator. Use it to give each
// subsystem (process noise, each sensor, the planner) its own stream so
// adding a consumer never perturbs the others.
func (r *RNG) Fork(label string) *RNG {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return &RNG{src: rand.New(rand.NewSource(splitmix64(h ^ uint64(r.src.Int63()))))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample in [0, n).
func (r *RNG) IntN(n int) int { return r.src.Intn(n) }

// Norm returns a standard normal sample.
func (r *RNG) Norm() float64 { return r.src.NormFloat64() }

// Gaussian returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// GaussianVec returns a vector of independent normal samples with the
// per-component standard deviations in stddev.
func (r *RNG) GaussianVec(stddev mat.Vec) mat.Vec {
	out := make(mat.Vec, stddev.Len())
	for i, s := range stddev {
		out[i] = s * r.src.NormFloat64()
	}
	return out
}

// MVN samples a zero-mean multivariate normal with covariance cov, via the
// Cholesky factor. cov must be symmetric positive definite; a
// positive-semi-definite covariance with zero diagonal entries can be
// handled by adding a tiny jitter before calling.
func (r *RNG) MVN(cov *mat.Mat) (mat.Vec, error) {
	l, err := cov.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("mvn sample: %w", err)
	}
	z := make(mat.Vec, cov.Rows())
	for i := range z {
		z[i] = r.src.NormFloat64()
	}
	return l.MulVec(z), nil
}

// NormalPDF evaluates the scalar normal density.
func NormalPDF(x, mean, stddev float64) float64 {
	d := (x - mean) / stddev
	return math.Exp(-0.5*d*d) / (stddev * math.Sqrt(2*math.Pi))
}

// NormalCDF evaluates the scalar normal cumulative distribution.
func NormalCDF(x, mean, stddev float64) float64 {
	return 0.5 * (1 + math.Erf((x-mean)/(stddev*math.Sqrt2)))
}
