package stat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalidParam indicates an out-of-domain distribution parameter.
var ErrInvalidParam = errors.New("stat: invalid parameter")

// regularizedGammaP computes P(s, x) = γ(s, x)/Γ(s), the lower regularized
// incomplete gamma function, using the series expansion for x < s+1 and
// the continued fraction for x ≥ s+1 (Numerical Recipes style).
func regularizedGammaP(s, x float64) (float64, error) {
	switch {
	case s <= 0:
		return 0, fmt.Errorf("%w: shape %v", ErrInvalidParam, s)
	case x < 0:
		return 0, fmt.Errorf("%w: x %v", ErrInvalidParam, x)
	case x == 0:
		return 0, nil
	}
	if x < s+1 {
		return gammaPSeries(s, x)
	}
	q, err := gammaQContinuedFraction(s, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

func gammaPSeries(s, x float64) (float64, error) {
	lg, _ := math.Lgamma(s)
	ap := s
	sum := 1 / s
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			return sum * math.Exp(-x+s*math.Log(x)-lg), nil
		}
	}
	return 0, errors.New("stat: incomplete gamma series did not converge")
}

func gammaQContinuedFraction(s, x float64) (float64, error) {
	lg, _ := math.Lgamma(s)
	const tiny = 1e-300
	b := x + 1 - s
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - s)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			return math.Exp(-x+s*math.Log(x)-lg) * h, nil
		}
	}
	return 0, errors.New("stat: incomplete gamma continued fraction did not converge")
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square variable with k degrees
// of freedom.
func ChiSquareCDF(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: degrees of freedom %d", ErrInvalidParam, k)
	}
	if x <= 0 {
		return 0, nil
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareQuantile returns the threshold t with P(X > t) = alpha for a
// chi-square variable with k degrees of freedom. This is the detection
// threshold used by the decision maker: a test statistic above t rejects
// the "no anomaly" hypothesis at confidence level alpha.
func ChiSquareQuantile(alpha float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: degrees of freedom %d", ErrInvalidParam, k)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("%w: alpha %v outside (0,1)", ErrInvalidParam, alpha)
	}
	target := 1 - alpha
	// Bracket the quantile, then bisect. The mean is k and the variance
	// 2k, so k + 20·sqrt(2k) + 50 comfortably covers any practical alpha.
	lo, hi := 0.0, float64(k)+20*math.Sqrt(2*float64(k))+50
	for p, _ := ChiSquareCDF(hi, k); p < target; p, _ = ChiSquareCDF(hi, k) {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("%w: alpha %v too small to bracket", ErrInvalidParam, alpha)
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		p, err := ChiSquareCDF(mid, k)
		if err != nil {
			return 0, err
		}
		if p < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return 0.5 * (lo + hi), nil
}

// ChiSquareSample draws a chi-square sample with k degrees of freedom as a
// sum of squared standard normals.
func (r *RNG) ChiSquareSample(k int) float64 {
	var sum float64
	for i := 0; i < k; i++ {
		z := r.Norm()
		sum += z * z
	}
	return sum
}

// KSUniform computes the one-sample Kolmogorov–Smirnov statistic of the
// samples against the U(0,1) distribution and reports whether uniformity
// is rejected at the given significance level (asymptotic critical
// value c(α)/√n with c ≈ 1.36 for α = 0.05, 1.63 for α = 0.01).
func KSUniform(samples []float64, alpha float64) (statistic float64, rejected bool, err error) {
	n := len(samples)
	if n == 0 {
		return 0, false, fmt.Errorf("%w: no samples", ErrInvalidParam)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		if x < 0 || x > 1 {
			return 0, false, fmt.Errorf("%w: sample %v outside [0,1]", ErrInvalidParam, x)
		}
		lo := x - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - x
		if lo > statistic {
			statistic = lo
		}
		if hi > statistic {
			statistic = hi
		}
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.63
	case alpha <= 0.05:
		c = 1.36
	default:
		c = 1.22 // α = 0.10
	}
	critical := c / math.Sqrt(float64(n))
	return statistic, statistic > critical, nil
}
