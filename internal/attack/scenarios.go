package attack

import (
	"fmt"
	"sort"

	"roboads/internal/mat"
)

// SpeedUnit converts Khepera "speed units" to m/s. The paper's §V-H
// calibrates it: 900 units = 0.006 m/s.
const SpeedUnit = 0.006 / 900

// TickMeters is the wheel travel per encoder tick, from the Khepera III
// encoder resolution (≈2764 ticks per 41 mm-diameter wheel revolution).
// 100 injected ticks (scenario #5) corrupt the left-wheel travel by
// ≈4.7 mm.
const TickMeters = 4.7e-5

// Truth is the ground-truth misbehavior condition at one control
// iteration, used for TP/FP/FN/TN accounting (§V, Metrics).
type Truth struct {
	// CorruptedSensors holds the names of sensing workflows with an
	// active attack.
	CorruptedSensors map[string]bool
	// ActuatorCorrupted reports whether any actuation workflow attack is
	// active.
	ActuatorCorrupted bool
}

// Scenario is one attack/failure experiment: a set of timed sensor and
// actuator corruptions on a mission, matching one row of Table II.
type Scenario struct {
	// ID is the Table II row number (1–11); extensions use higher IDs.
	ID int
	// Name is the Table II scenario name.
	Name string
	// Description summarizes what is corrupted and how (Table II
	// "Description"/"Detail" columns).
	Description string
	// Sensor attacks active during the mission.
	SensorAttacks []SensorAttack
	// Actuator attacks active during the mission.
	ActuatorAttacks []ActuatorAttack
}

// TruthAt returns the ground-truth condition at iteration k.
func (s *Scenario) TruthAt(k int) Truth {
	truth := Truth{CorruptedSensors: make(map[string]bool)}
	for _, a := range s.SensorAttacks {
		if a.Active(k) {
			truth.CorruptedSensors[a.Target()] = true
		}
	}
	for _, a := range s.ActuatorAttacks {
		if a.Active(k) {
			truth.ActuatorCorrupted = true
		}
	}
	return truth
}

// Clean reports whether no attack is ever active (the all-negative
// baseline scenario).
func (s *Scenario) Clean() bool {
	return len(s.SensorAttacks) == 0 && len(s.ActuatorAttacks) == 0
}

// OnsetIterations returns the sorted distinct iterations at which some
// attack becomes active — the reference points for detection delay.
func (s *Scenario) OnsetIterations() []int {
	set := make(map[int]bool)
	for _, a := range s.SensorAttacks {
		set[windowStart(a)] = true
	}
	for _, a := range s.ActuatorAttacks {
		set[windowStart(a)] = true
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func windowStart(a interface{ Active(int) bool }) int {
	// Attacks activate at their window start; scan forward from 0. All
	// scenario windows start within the first few hundred iterations.
	for k := 0; k < 1<<20; k++ {
		if a.Active(k) {
			return k
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (s *Scenario) String() string {
	return fmt.Sprintf("#%d %s", s.ID, s.Name)
}

// Khepera scenario timing (10 Hz control loop): attacks trigger a few
// seconds into the mission, sequential scenarios stagger onsets, and
// scenario #10's LiDAR DoS ends mid-mission to exercise mode recovery.
const (
	onsetA = 60  // 6 s
	onsetB = 120 // 12 s
	endB   = 200 // 20 s
)

// CleanScenario returns the no-attack mission used for false-positive
// profiling.
func CleanScenario() Scenario {
	return Scenario{ID: 0, Name: "clean", Description: "no attacks or failures"}
}

// KheperaScenarios returns the 11 attack/failure scenarios of Table II,
// with magnitudes taken from the paper's Detail column (speed units and
// encoder ticks converted via SpeedUnit and TickMeters).
func KheperaScenarios() []Scenario {
	return []Scenario{
		{
			ID:          1,
			Name:        "Wheel controller logic bomb",
			Description: "logic bomb in actuator utility lib alters planned control commands: -6000 speed units on vL, +6000 on vR (actuator/cyber)",
			ActuatorAttacks: []ActuatorAttack{
				&ActuatorBias{
					Offset: mat.VecOf(-6000*SpeedUnit, +6000*SpeedUnit),
					Win:    Window{Start: onsetA},
					Via:    Cyber,
				},
			},
		},
		{
			ID:          2,
			Name:        "Wheel jamming",
			Description: "left wheel is physically jammed: 0 speed units on vL (actuator/physical)",
			ActuatorAttacks: []ActuatorAttack{
				&ActuatorOverride{Index: 0, Value: 0, Win: Window{Start: onsetA}, Via: Physical},
			},
		},
		{
			ID:          3,
			Name:        "IPS logic bomb",
			Description: "logic bomb in IPS data processing lib shifts +0.07 m on X axis (sensor/cyber)",
			SensorAttacks: []SensorAttack{
				&Bias{Sensor: "ips", Offset: mat.VecOf(0.07, 0, 0), Win: Window{Start: onsetA}, Via: Cyber},
			},
		},
		{
			ID:          4,
			Name:        "IPS spoofing",
			Description: "fake IPS signal overpowers authentic source: shift -0.1 m on X axis (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Bias{Sensor: "ips", Offset: mat.VecOf(-0.1, 0, 0), Win: Window{Start: onsetA}, Via: Physical},
			},
		},
		{
			ID:          5,
			Name:        "Wheel encoder logic bomb",
			Description: "logic bomb in wheel encoder data processing lib: increment 100 steps on left wheel encoder (sensor/cyber)",
			SensorAttacks: []SensorAttack{
				&EncoderTicks{Wheel: 0, Ticks: 100, Win: Window{Start: onsetA}, Via: Cyber},
			},
		},
		{
			ID:          6,
			Name:        "LiDAR DoS",
			Description: "LiDAR sensor wire cut: received distance reading is 0 m in each direction (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Zero{Sensor: "lidar", Win: Window{Start: onsetA}, Via: Physical},
			},
		},
		{
			ID:          7,
			Name:        "LiDAR sensor blocking",
			Description: "laser ejection/reception blocked: distance reading to the left wall incorrect (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Override{Sensor: "lidar", Index: 0, Value: 0.05, Win: Window{Start: onsetA}, Via: Physical},
			},
		},
		{
			ID:          8,
			Name:        "Wheel controller & IPS logic bomb",
			Description: "∓6000 units on vL/vR and +0.07 m shift on IPS X axis (sensor&actuator/cyber)",
			SensorAttacks: []SensorAttack{
				&Bias{Sensor: "ips", Offset: mat.VecOf(0.07, 0, 0), Win: Window{Start: onsetA}, Via: Cyber},
			},
			ActuatorAttacks: []ActuatorAttack{
				&ActuatorBias{
					Offset: mat.VecOf(-6000*SpeedUnit, +6000*SpeedUnit),
					Win:    Window{Start: onsetB},
					Via:    Cyber,
				},
			},
		},
		{
			ID:          9,
			Name:        "LiDAR DoS & wheel encoder logic bomb",
			Description: "increment 100 steps on left wheel encoder, then 0 m LiDAR readings (sensor/cyber&physical)",
			SensorAttacks: []SensorAttack{
				&EncoderTicks{Wheel: 0, Ticks: 100, Win: Window{Start: onsetA}, Via: Cyber},
				&Zero{Sensor: "lidar", Win: Window{Start: onsetB}, Via: Physical},
			},
		},
		{
			ID:          10,
			Name:        "IPS spoofing & LiDAR DoS",
			Description: "0 m LiDAR readings, then +0.07 m IPS shift; LiDAR returns to normal mid-mission (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Zero{Sensor: "lidar", Win: Window{Start: onsetA, End: endB}, Via: Physical},
				&Bias{Sensor: "ips", Offset: mat.VecOf(0.07, 0, 0), Win: Window{Start: onsetB}, Via: Physical},
			},
		},
		{
			ID:          11,
			Name:        "IPS & wheel encoder logic bomb",
			Description: "increment 100 steps on left wheel encoder, then +0.1 m IPS shift on X axis (sensor/cyber)",
			SensorAttacks: []SensorAttack{
				&EncoderTicks{Wheel: 0, Ticks: 100, Win: Window{Start: onsetA}, Via: Cyber},
				&Bias{Sensor: "ips", Offset: mat.VecOf(0.1, 0, 0), Win: Window{Start: onsetB}, Via: Cyber},
			},
		},
	}
}

// TireBlowoutScenario returns the Table I tire-blowout failure as an
// extension scenario: the right tire loses half its effective speed to
// friction (actuator/physical) mid-mission.
func TireBlowoutScenario() Scenario {
	return Scenario{
		ID:          12,
		Name:        "Tire blowout",
		Description: "tire blows out and brings enormous tire friction: right wheel speed halved (actuator/physical)",
		ActuatorAttacks: []ActuatorAttack{
			&ActuatorScale{Index: 1, Factor: 0.5, Win: Window{Start: onsetA}, Via: Physical},
		},
	}
}

// TamiyaScenarios returns the §V-D suite: "similar attacks and failures"
// launched on the RC car's sensors (LiDAR, IPS, IMU) and actuators
// (steering/throttle).
func TamiyaScenarios() []Scenario {
	return []Scenario{
		{
			ID:          101,
			Name:        "Throttle logic bomb",
			Description: "logic bomb biases commanded acceleration by +0.6 m/s² (actuator/cyber)",
			ActuatorAttacks: []ActuatorAttack{
				&ActuatorBias{Offset: mat.VecOf(0.6, 0), Win: Window{Start: onsetA}, Via: Cyber},
			},
		},
		{
			ID:          102,
			Name:        "Steering takeover",
			Description: "injected packets bias the steering angle by +0.2 rad (actuator/cyber)",
			ActuatorAttacks: []ActuatorAttack{
				&ActuatorBias{Offset: mat.VecOf(0, 0.2), Win: Window{Start: onsetA}, Via: Cyber},
			},
		},
		{
			ID:          103,
			Name:        "IPS spoofing",
			Description: "fake IPS signal shifts -0.1 m on X axis (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Bias{Sensor: "ips", Offset: mat.VecOf(-0.1, 0, 0), Win: Window{Start: onsetA}, Via: Physical},
			},
		},
		{
			ID:          104,
			Name:        "LiDAR DoS",
			Description: "LiDAR wire cut: 0 m readings in each direction (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Zero{Sensor: "lidar", Win: Window{Start: onsetA}, Via: Physical},
			},
		},
		{
			ID:          105,
			Name:        "IMU bias",
			Description: "resonant-sound injection biases the IMU heading by +0.15 rad (sensor/physical)",
			SensorAttacks: []SensorAttack{
				&Bias{Sensor: "imu", Offset: mat.VecOf(0.15, 0), Win: Window{Start: onsetA}, Via: Physical},
			},
		},
	}
}
