// Package attack implements the misbehavior injection framework of §III-B
// and the concrete attack/failure scenarios of Table II. Misbehaviors are
// modeled exactly as the paper does: data corruptions applied inside
// sensing workflows (sensor anomaly vector ds_k) or actuation workflows
// (actuator anomaly vector da_{k-1}), regardless of whether the originating
// channel is physical (spoofing, jamming, wire cuts) or cyber (logic
// bombs, packet injection).
package attack

import (
	"fmt"

	"roboads/internal/mat"
)

// Channel identifies the originating channel of a misbehavior (Table I).
type Channel int

// Channel values.
const (
	// Physical covers signal spoofing, jamming, blocking, and mechanical
	// failures.
	Physical Channel = iota + 1
	// Cyber covers logic bombs, packet injection, and software defects.
	Cyber
	// Environment covers anomalies that originate in the world rather
	// than in an adversary's channel: occlusions blocking a ranging
	// sensor, wheel slip on a low-traction surface. The detector sees
	// them exactly like attacks — the distinction matters only for
	// ground-truth taxonomy (Ji et al. 2204.01146).
	Environment
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case Physical:
		return "physical"
	case Cyber:
		return "cyber"
	case Environment:
		return "environment"
	default:
		return fmt.Sprintf("channel(%d)", int(c))
	}
}

// Window is a half-open activation interval [Start, End) in control
// iterations. End ≤ 0 means the attack stays active forever.
type Window struct {
	Start, End int
}

// Contains reports whether iteration k falls inside the window.
func (w Window) Contains(k int) bool {
	return k >= w.Start && (w.End <= 0 || k < w.End)
}

// SensorAttack corrupts one sensing workflow's readings.
type SensorAttack interface {
	// Target names the sensing workflow being corrupted.
	Target() string
	// Active reports whether the attack corrupts iteration k.
	Active(k int) bool
	// Apply returns the corrupted reading for iteration k. It must not
	// modify its argument.
	Apply(k int, reading mat.Vec) mat.Vec
	// Channel reports the originating channel.
	Channel() Channel
	// Describe returns a human-readable summary.
	Describe() string
}

// ActuatorAttack corrupts the executed control commands.
type ActuatorAttack interface {
	// Active reports whether the attack corrupts iteration k.
	Active(k int) bool
	// Apply returns the executed command for iteration k given the
	// planned command. It must not modify its argument.
	Apply(k int, u mat.Vec) mat.Vec
	// Channel reports the originating channel.
	Channel() Channel
	// Describe returns a human-readable summary.
	Describe() string
}

// --- sensor attacks --------------------------------------------------------

// Bias adds a constant offset vector to a sensor's readings — the model
// behind IPS logic bombs (scenario #3), IPS spoofing (#4), and any other
// constant-shift corruption.
type Bias struct {
	// Sensor is the target workflow name.
	Sensor string
	// Offset is added to every reading component-wise.
	Offset mat.Vec
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ SensorAttack = (*Bias)(nil)

// Target implements SensorAttack.
func (a *Bias) Target() string { return a.Sensor }

// Active implements SensorAttack.
func (a *Bias) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements SensorAttack.
func (a *Bias) Apply(k int, reading mat.Vec) mat.Vec {
	if !a.Active(k) {
		return reading
	}
	return reading.Add(a.Offset)
}

// Channel implements SensorAttack.
func (a *Bias) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *Bias) Describe() string {
	return fmt.Sprintf("bias %v on %s (%s)", a.Offset, a.Sensor, a.Via)
}

// Zero forces a sensor's entire reading vector to zero — the LiDAR DoS of
// scenario #6 ("received distance reading is 0 m in each direction").
type Zero struct {
	// Sensor is the target workflow name.
	Sensor string
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ SensorAttack = (*Zero)(nil)

// Target implements SensorAttack.
func (a *Zero) Target() string { return a.Sensor }

// Active implements SensorAttack.
func (a *Zero) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements SensorAttack.
func (a *Zero) Apply(k int, reading mat.Vec) mat.Vec {
	if !a.Active(k) {
		return reading
	}
	return mat.NewVec(reading.Len())
}

// Channel implements SensorAttack.
func (a *Zero) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *Zero) Describe() string {
	return fmt.Sprintf("DoS (all-zero readings) on %s (%s)", a.Sensor, a.Via)
}

// Override forces one component of a sensor's reading to a fixed value —
// the LiDAR beam blocking of scenario #7 ("distance reading to the left
// wall is incorrect").
type Override struct {
	// Sensor is the target workflow name.
	Sensor string
	// Index is the reading component to override.
	Index int
	// Value replaces the component.
	Value float64
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ SensorAttack = (*Override)(nil)

// Target implements SensorAttack.
func (a *Override) Target() string { return a.Sensor }

// Active implements SensorAttack.
func (a *Override) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements SensorAttack.
func (a *Override) Apply(k int, reading mat.Vec) mat.Vec {
	if !a.Active(k) || a.Index >= reading.Len() {
		return reading
	}
	out := reading.Clone()
	out[a.Index] = a.Value
	return out
}

// Channel implements SensorAttack.
func (a *Override) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *Override) Describe() string {
	return fmt.Sprintf("override component %d of %s to %v (%s)", a.Index, a.Sensor, a.Value, a.Via)
}

// EncoderTicks injects counts into one wheel's encoder tick stream inside
// the odometry workflow — scenario #5's "increment 100 steps on left
// wheel encoder". The corrupted ticks are integrated by dead reckoning,
// so a one-shot injection becomes a persistent pose deviation. The
// simulator's encoder workflow recognizes this attack type and applies it
// at the tick level (see sim.EncoderWorkflow).
type EncoderTicks struct {
	// Wheel selects the wheel: 0 = left, 1 = right.
	Wheel int
	// Ticks is the injected tick count.
	Ticks float64
	// PerIteration repeats the injection every active iteration instead
	// of once at window start.
	PerIteration bool
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ SensorAttack = (*EncoderTicks)(nil)

// Target implements SensorAttack: encoder attacks always target the
// wheel-encoder workflow.
func (a *EncoderTicks) Target() string { return "wheel-encoder" }

// Active implements SensorAttack.
func (a *EncoderTicks) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements SensorAttack as the identity: the corruption happens
// at the tick level via CorruptTicks, before the reading is formed.
func (a *EncoderTicks) Apply(_ int, reading mat.Vec) mat.Vec { return reading }

// CorruptTicks returns the tick deltas to add to (left, right) wheel tick
// counts at iteration k.
func (a *EncoderTicks) CorruptTicks(k int) (left, right float64) {
	if !a.Active(k) {
		return 0, 0
	}
	if !a.PerIteration && k != a.Win.Start {
		return 0, 0
	}
	if a.Wheel == 0 {
		return a.Ticks, 0
	}
	return 0, a.Ticks
}

// Channel implements SensorAttack.
func (a *EncoderTicks) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *EncoderTicks) Describe() string {
	wheel := "left"
	if a.Wheel != 0 {
		wheel = "right"
	}
	return fmt.Sprintf("inject %+.0f ticks on %s wheel encoder (%s)", a.Ticks, wheel, a.Via)
}

// --- actuator attacks ------------------------------------------------------

// ActuatorBias adds a constant offset to the executed control command —
// the wheel controller logic bomb of scenario #1 ("−6000 speed units on
// vL, +6000 on vR") and the unintended-acceleration class of Table I.
type ActuatorBias struct {
	// Offset is added to the planned command component-wise.
	Offset mat.Vec
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ ActuatorAttack = (*ActuatorBias)(nil)

// Active implements ActuatorAttack.
func (a *ActuatorBias) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements ActuatorAttack.
func (a *ActuatorBias) Apply(k int, u mat.Vec) mat.Vec {
	if !a.Active(k) {
		return u
	}
	return u.Add(a.Offset)
}

// Channel implements ActuatorAttack.
func (a *ActuatorBias) Channel() Channel { return a.Via }

// Describe implements ActuatorAttack.
func (a *ActuatorBias) Describe() string {
	return fmt.Sprintf("actuator bias %v (%s)", a.Offset, a.Via)
}

// ActuatorScale multiplies one control component of the executed command
// — Table I's tire blowout, where "enormous tire friction" scales one
// wheel's effective surface speed down.
type ActuatorScale struct {
	// Index is the control component to scale.
	Index int
	// Factor multiplies the component.
	Factor float64
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ ActuatorAttack = (*ActuatorScale)(nil)

// Active implements ActuatorAttack.
func (a *ActuatorScale) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements ActuatorAttack.
func (a *ActuatorScale) Apply(k int, u mat.Vec) mat.Vec {
	if !a.Active(k) || a.Index >= u.Len() {
		return u
	}
	out := u.Clone()
	out[a.Index] *= a.Factor
	return out
}

// Channel implements ActuatorAttack.
func (a *ActuatorScale) Channel() Channel { return a.Via }

// Describe implements ActuatorAttack.
func (a *ActuatorScale) Describe() string {
	return fmt.Sprintf("actuator scale u[%d]×%v (%s)", a.Index, a.Factor, a.Via)
}

// ActuatorOverride forces one control component to a fixed executed value
// — the physical wheel jam of scenario #2 ("0 speed units on vL").
type ActuatorOverride struct {
	// Index is the control component to override.
	Index int
	// Value replaces the component.
	Value float64
	// Win is the activation window.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ ActuatorAttack = (*ActuatorOverride)(nil)

// Active implements ActuatorAttack.
func (a *ActuatorOverride) Active(k int) bool { return a.Win.Contains(k) }

// Apply implements ActuatorAttack.
func (a *ActuatorOverride) Apply(k int, u mat.Vec) mat.Vec {
	if !a.Active(k) || a.Index >= u.Len() {
		return u
	}
	out := u.Clone()
	out[a.Index] = a.Value
	return out
}

// Channel implements ActuatorAttack.
func (a *ActuatorOverride) Channel() Channel { return a.Via }

// Describe implements ActuatorAttack.
func (a *ActuatorOverride) Describe() string {
	return fmt.Sprintf("actuator override u[%d]=%v (%s)", a.Index, a.Value, a.Via)
}

// RampBias grows a sensor offset linearly from zero — the adaptive
// §V-H attacker who tries to stay under the alarm threshold by moving
// slowly. Against absolute-reference sensors the detector fires once the
// accumulated magnitude crosses its fixed envelope, so the slow ramp
// buys stealth time but not impact.
type RampBias struct {
	// Sensor is the target workflow name.
	Sensor string
	// RatePerIteration is the per-iteration offset increment vector.
	RatePerIteration mat.Vec
	// Win is the activation window; the ramp starts at Win.Start.
	Win Window
	// Via is the originating channel.
	Via Channel
}

var _ SensorAttack = (*RampBias)(nil)

// Target implements SensorAttack.
func (a *RampBias) Target() string { return a.Sensor }

// Active implements SensorAttack.
func (a *RampBias) Active(k int) bool { return a.Win.Contains(k) }

// OffsetAt returns the accumulated offset at iteration k.
func (a *RampBias) OffsetAt(k int) mat.Vec {
	if !a.Active(k) {
		return mat.NewVec(a.RatePerIteration.Len())
	}
	return a.RatePerIteration.Scale(float64(k - a.Win.Start + 1))
}

// Apply implements SensorAttack.
func (a *RampBias) Apply(k int, reading mat.Vec) mat.Vec {
	if !a.Active(k) {
		return reading
	}
	return reading.Add(a.OffsetAt(k))
}

// Channel implements SensorAttack.
func (a *RampBias) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *RampBias) Describe() string {
	return fmt.Sprintf("ramping bias %v/iteration on %s (%s)", a.RatePerIteration, a.Sensor, a.Via)
}
