// Composition property tests for scenario schedules: stacked and
// overlapping attacks apply in deterministic slice order, and a
// zero-magnitude schedule is a byte-identical no-op on the frame
// stream. External test package so the properties can be checked
// through the real simulator pipeline.
package attack_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/mat"
	"roboads/internal/sim"
)

// foldActuators replays the simulator's actuator-workflow fold: attacks
// apply to the planned command in slice order.
func foldActuators(attacks []attack.ActuatorAttack, k int, u mat.Vec) mat.Vec {
	for _, a := range attacks {
		u = a.Apply(k, u)
	}
	return u
}

// TestStackedActuatorOrderDeterministic pins that overlapping actuator
// schedules compose in slice order — scale-then-bias and bias-then-scale
// are different attacks, and each is reproducible.
func TestStackedActuatorOrderDeterministic(t *testing.T) {
	win := attack.Window{Start: 10, End: 50}
	scale := &attack.ActuatorScale{Index: 0, Factor: 0.5, Win: win, Via: attack.Physical}
	bias := &attack.ActuatorBias{Offset: mat.VecOf(1, 0), Win: win, Via: attack.Cyber}
	u := mat.VecOf(0.4, 0.4)

	scaleFirst := foldActuators([]attack.ActuatorAttack{scale, bias}, 20, u.Clone())
	biasFirst := foldActuators([]attack.ActuatorAttack{bias, scale}, 20, u.Clone())
	if want := mat.VecOf(0.4*0.5+1, 0.4); !reflect.DeepEqual(scaleFirst, want) {
		t.Fatalf("scale-then-bias = %v, want %v", scaleFirst, want)
	}
	if want := mat.VecOf((0.4+1)*0.5, 0.4); !reflect.DeepEqual(biasFirst, want) {
		t.Fatalf("bias-then-scale = %v, want %v", biasFirst, want)
	}
	if reflect.DeepEqual(scaleFirst, biasFirst) {
		t.Fatal("non-commuting stack collapsed: order is not being applied")
	}
	// Repeatability: the fold is a pure function of (slice order, k, u).
	for i := 0; i < 5; i++ {
		if again := foldActuators([]attack.ActuatorAttack{scale, bias}, 20, u.Clone()); !reflect.DeepEqual(again, scaleFirst) {
			t.Fatalf("fold not deterministic: %v vs %v", again, scaleFirst)
		}
	}
	// Outside the overlap window the stack is the identity.
	if got := foldActuators([]attack.ActuatorAttack{scale, bias}, 60, u.Clone()); !reflect.DeepEqual(got, u) {
		t.Fatalf("inactive stack altered command: %v", got)
	}
}

// TestStackedSensorOrderDeterministic pins the same property for sensor
// attacks attached to one workflow: bias-then-override pins the
// component to the override value; override-then-bias shifts it.
func TestStackedSensorOrderDeterministic(t *testing.T) {
	win := attack.Window{Start: 0, End: 100}
	bias := &attack.Bias{Sensor: "ips", Offset: mat.VecOf(0.1, 0, 0), Win: win, Via: attack.Cyber}
	override := &attack.Override{Sensor: "ips", Index: 0, Value: 9, Win: win, Via: attack.Cyber}
	reading := mat.VecOf(1, 2, 3)

	apply := func(order ...attack.SensorAttack) mat.Vec {
		r := reading.Clone()
		for _, a := range order {
			r = a.Apply(5, r)
		}
		return r
	}
	if got := apply(bias, override); got[0] != 9 {
		t.Fatalf("bias-then-override [0] = %v, want override value 9", got[0])
	}
	if got := apply(override, bias); got[0] != 9.1 {
		t.Fatalf("override-then-bias [0] = %v, want 9.1", got[0])
	}
}

// frameView is the frame stream minus ground-truth labels: a
// zero-magnitude schedule changes Truth (its windows are "active") but
// must not perturb a single bit of the physical rollout or the readings.
type frameView struct {
	K          int
	XTrue      mat.Vec
	UPlanned   mat.Vec
	UExecuted  mat.Vec
	Readings   map[string]mat.Vec
	Collided   bool
	Done       bool
	Collisions int
}

// runFrames executes a full Khepera lab mission for the scenario and
// returns the JSON-encoded frame stream.
func runFrames(t *testing.T, sc *attack.Scenario, seed int64, iters int) []byte {
	t.Helper()
	setup, err := sim.NewKhepera(sim.LabMission(), sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	var frames []frameView
	for k := 0; k < iters; k++ {
		rec, err := setup.Sim.Step()
		if errors.Is(err, sim.ErrMissionOver) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frameView{
			K: rec.K, XTrue: rec.XTrue, UPlanned: rec.UPlanned, UExecuted: rec.UExecuted,
			Readings: rec.Readings, Collided: rec.Collided, Done: rec.Done,
			Collisions: setup.Sim.Collisions(),
		})
		if rec.Done {
			break
		}
	}
	if len(frames) < 100 {
		t.Fatalf("mission too short: %d frames", len(frames))
	}
	data, err := json.Marshal(frames)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestZeroMagnitudeScheduleIsNoOp pins the no-op property: a schedule
// whose every attack has zero magnitude (zero bias, zero ticks, unit
// scale, zero slip, zero shaped bias) produces a frame stream
// byte-identical to the clean run at the same seed — windows alone
// must not touch the stream.
func TestZeroMagnitudeScheduleIsNoOp(t *testing.T) {
	win := attack.Window{Start: 30, End: 200}
	zero := &attack.Scenario{
		ID: 990, Name: "zero-magnitude stack",
		SensorAttacks: []attack.SensorAttack{
			&attack.Bias{Sensor: "ips", Offset: mat.VecOf(0, 0, 0), Win: win, Via: attack.Cyber},
			&attack.EncoderTicks{Wheel: 0, Ticks: 0, Win: win, Via: attack.Cyber},
			&attack.ShapedBias{Sensor: "lidar", Offset: mat.VecOf(0, 0, 0, 0),
				Env: attack.Envelope{Win: win, Ramp: 40}, Via: attack.Cyber},
		},
		ActuatorAttacks: []attack.ActuatorAttack{
			&attack.ActuatorBias{Offset: mat.VecOf(0, 0), Win: win, Via: attack.Cyber},
			&attack.ActuatorScale{Index: 0, Factor: 1, Win: win, Via: attack.Physical},
			&attack.WheelSlip{Slip: 0, Wheels: []int{0}, Env: attack.Envelope{Win: win}, Via: attack.Environment},
		},
	}
	const seed, iters = 17, 400
	clean := runFrames(t, &attack.Scenario{ID: 0, Name: "clean"}, seed, iters)
	got := runFrames(t, zero, seed, iters)
	if string(clean) != string(got) {
		t.Fatal("zero-magnitude schedule perturbed the frame stream")
	}
}

// TestOverlappingBiasesSumInOrder pins stream-level stacking: two bias
// schedules overlapping on the same workflow add exactly — during the
// overlap each reading equals the clean reading plus both offsets,
// applied in slice order.
func TestOverlappingBiasesSumInOrder(t *testing.T) {
	o1, o2 := mat.VecOf(0.05, 0, 0), mat.VecOf(0, -0.03, 0)
	stacked := &attack.Scenario{
		ID: 991, Name: "overlapping biases",
		SensorAttacks: []attack.SensorAttack{
			&attack.Bias{Sensor: "ips", Offset: o1, Win: attack.Window{Start: 40, End: 160}, Via: attack.Cyber},
			&attack.Bias{Sensor: "ips", Offset: o2, Win: attack.Window{Start: 100, End: 220}, Via: attack.Physical},
		},
	}
	const seed, iters = 23, 260
	var clean, got []frameView
	if err := json.Unmarshal(runFrames(t, &attack.Scenario{ID: 0, Name: "clean"}, seed, iters), &clean); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(runFrames(t, stacked, seed, iters), &got); err != nil {
		t.Fatal(err)
	}
	// The attacked run's planner reacts to corrupted readings, so truth
	// diverges — but the readings' attack layer itself is only checkable
	// while the rollouts still agree. Compare reading deltas over the
	// clean rollout's prefix: sensor attacks apply after noise, and the
	// noise streams are identical at the same seed until the controller
	// belief (driven by corrupted readings) changes the commands — which
	// happens from the first post-onset plan, so check the onset frame.
	if len(got) <= 100 {
		t.Fatalf("attacked run too short: %d frames", len(got))
	}
	readingAt := func(frames []frameView, k int) mat.Vec { return frames[k].Readings["ips"] }
	// Before any window: identical.
	if !reflect.DeepEqual(readingAt(clean, 20), readingAt(got, 20)) {
		t.Fatal("pre-onset readings diverged")
	}
	// At the first window's onset frame (40): exactly clean + o1.
	want := readingAt(clean, 40).Clone().Add(o1)
	if !reflect.DeepEqual(readingAt(got, 40), want) {
		t.Fatalf("single-schedule frame = %v, want %v", readingAt(got, 40), want)
	}
	// Determinism: the stacked run reproduces itself bit-for-bit.
	again := runFrames(t, stacked, seed, iters)
	data, _ := json.Marshal(got)
	if string(again) != string(data) {
		t.Fatal("stacked run not reproducible")
	}
}
