package attack

import (
	"fmt"

	"roboads/internal/mat"
)

// Envelope shapes an attack's magnitude over time on top of a plain
// activation window: a linear onset ramp (the §V-H adaptive attacker who
// approaches the chi-square threshold slowly, Guo et al. 1708.01834) and
// an intermittent duty cycle (an attacker who pulses the corruption to
// starve the decision layer's sliding window). Gain is 0 outside the
// window and in the off-phase of a duty cycle, ramps linearly to 1 over
// Ramp iterations from onset, and is exactly 1 once fully on — so an
// envelope with no ramp and no period reduces bit-for-bit to the plain
// windowed attack it wraps.
type Envelope struct {
	// Win is the activation window.
	Win Window
	// Ramp is the number of iterations over which the gain grows
	// linearly from onset to full magnitude; 0 or 1 means instant.
	Ramp int
	// Period, when > 1, cycles the attack: within each period the attack
	// is on for the first Duty fraction and off for the rest.
	Period int
	// Duty is the active fraction of each period, in (0, 1].
	Duty float64
}

// Gain returns the magnitude multiplier at iteration k: 0 when inactive,
// (0, 1] when ramping or pulsed on, exactly 1 at full magnitude.
func (e Envelope) Gain(k int) float64 {
	if !e.Win.Contains(k) {
		return 0
	}
	if e.Period > 1 {
		phase := (k - e.Win.Start) % e.Period
		if float64(phase) >= e.Duty*float64(e.Period) {
			return 0
		}
	}
	if e.Ramp > 1 {
		if g := float64(k-e.Win.Start+1) / float64(e.Ramp); g < 1 {
			return g
		}
	}
	return 1
}

// On reports whether the envelope contributes any corruption at k.
func (e Envelope) On(k int) bool { return e.Gain(k) > 0 }

func (e Envelope) describe() string {
	s := fmt.Sprintf("[%d,%d)", e.Win.Start, e.Win.End)
	if e.Ramp > 1 {
		s += fmt.Sprintf(" ramp=%d", e.Ramp)
	}
	if e.Period > 1 {
		s += fmt.Sprintf(" period=%d duty=%.2f", e.Period, e.Duty)
	}
	return s
}

// ShapedBias is Bias with an envelope-shaped magnitude: the offset is
// scaled by Env.Gain(k). With gain pinned at 1 it is bit-for-bit the
// plain Bias (x·1.0 is an IEEE-754 identity), so the DSL can compile
// every bias through this type without perturbing Table II results.
type ShapedBias struct {
	// Sensor is the target workflow name.
	Sensor string
	// Offset is the full-magnitude offset vector.
	Offset mat.Vec
	// Env shapes the magnitude over time.
	Env Envelope
	// Via is the originating channel.
	Via Channel
}

var _ SensorAttack = (*ShapedBias)(nil)

// Target implements SensorAttack.
func (a *ShapedBias) Target() string { return a.Sensor }

// Active implements SensorAttack.
func (a *ShapedBias) Active(k int) bool { return a.Env.On(k) }

// Apply implements SensorAttack.
func (a *ShapedBias) Apply(k int, reading mat.Vec) mat.Vec {
	g := a.Env.Gain(k)
	if g == 0 {
		return reading
	}
	return reading.Add(a.Offset.Scale(g))
}

// Channel implements SensorAttack.
func (a *ShapedBias) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *ShapedBias) Describe() string {
	return fmt.Sprintf("shaped bias %v on %s %s (%s)", a.Offset, a.Sensor, a.Env.describe(), a.Via)
}

// ShapedActuatorBias is ActuatorBias with an envelope-shaped magnitude —
// the actuator-side §V-H stealth attacker, and the ramp/intermittent
// actuator campaigns of the scenario engine.
type ShapedActuatorBias struct {
	// Offset is the full-magnitude command offset.
	Offset mat.Vec
	// Env shapes the magnitude over time.
	Env Envelope
	// Via is the originating channel.
	Via Channel
}

var _ ActuatorAttack = (*ShapedActuatorBias)(nil)

// Active implements ActuatorAttack.
func (a *ShapedActuatorBias) Active(k int) bool { return a.Env.On(k) }

// Apply implements ActuatorAttack.
func (a *ShapedActuatorBias) Apply(k int, u mat.Vec) mat.Vec {
	g := a.Env.Gain(k)
	if g == 0 {
		return u
	}
	return u.Add(a.Offset.Scale(g))
}

// Channel implements ActuatorAttack.
func (a *ShapedActuatorBias) Channel() Channel { return a.Via }

// Describe implements ActuatorAttack.
func (a *ShapedActuatorBias) Describe() string {
	return fmt.Sprintf("shaped actuator bias %v %s (%s)", a.Offset, a.Env.describe(), a.Via)
}

// Occlusion models an environmental occluder at Distance meters in front
// of the listed beams of a ranging sensor: any beam reading farther than
// the occluder is clamped to it. It corrupts readings rather than the
// world map because the simulator and the detector share sensor objects
// — a map mutation would silently update the detector's measurement
// model too, and the occluder would stop being an anomaly.
type Occlusion struct {
	// Sensor is the target workflow name (a ranging sensor).
	Sensor string
	// Beams indexes the reading components clamped by the occluder.
	Beams []int
	// Distance is the occluder's range in meters.
	Distance float64
	// Env gates the occlusion (a Period models objects passing through
	// the beams; Ramp is meaningless here and rejected by the DSL).
	Env Envelope
	// Via is the originating channel (normally Environment).
	Via Channel
}

var _ SensorAttack = (*Occlusion)(nil)

// Target implements SensorAttack.
func (a *Occlusion) Target() string { return a.Sensor }

// Active implements SensorAttack.
func (a *Occlusion) Active(k int) bool { return a.Env.On(k) }

// Apply implements SensorAttack.
func (a *Occlusion) Apply(k int, reading mat.Vec) mat.Vec {
	if !a.Env.On(k) {
		return reading
	}
	out := reading.Clone()
	for _, i := range a.Beams {
		if i >= 0 && i < out.Len() && out[i] > a.Distance {
			out[i] = a.Distance
		}
	}
	return out
}

// Channel implements SensorAttack.
func (a *Occlusion) Channel() Channel { return a.Via }

// Describe implements SensorAttack.
func (a *Occlusion) Describe() string {
	return fmt.Sprintf("occlusion at %.2fm on %s beams %v %s (%s)",
		a.Distance, a.Sensor, a.Beams, a.Env.describe(), a.Via)
}

// WheelSlip models traction loss: the executed surface speed of the
// listed control components is scaled down by Slip (0 = full grip,
// 1 = free-spinning wheel). The envelope's ramp models a gradually
// worsening surface. Slip is an actuator misbehavior in the paper's
// taxonomy — the command the controller planned is not the motion the
// wheel delivers — so the detector attributes it to da_{k-1}.
type WheelSlip struct {
	// Slip is the fractional speed loss at full envelope gain, in [0, 1].
	Slip float64
	// Wheels indexes the affected control components.
	Wheels []int
	// Env shapes the slip over time.
	Env Envelope
	// Via is the originating channel (normally Environment).
	Via Channel
}

var _ ActuatorAttack = (*WheelSlip)(nil)

// Active implements ActuatorAttack.
func (a *WheelSlip) Active(k int) bool { return a.Env.On(k) && a.Slip != 0 }

// Apply implements ActuatorAttack.
func (a *WheelSlip) Apply(k int, u mat.Vec) mat.Vec {
	g := a.Env.Gain(k)
	if g == 0 || a.Slip == 0 {
		return u
	}
	out := u.Clone()
	for _, i := range a.Wheels {
		if i >= 0 && i < out.Len() {
			out[i] *= 1 - g*a.Slip
		}
	}
	return out
}

// Channel implements ActuatorAttack.
func (a *WheelSlip) Channel() Channel { return a.Via }

// Describe implements ActuatorAttack.
func (a *WheelSlip) Describe() string {
	return fmt.Sprintf("wheel slip %.0f%% on u%v %s (%s)",
		a.Slip*100, a.Wheels, a.Env.describe(), a.Via)
}
