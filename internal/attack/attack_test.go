package attack

import (
	"math"
	"strings"
	"testing"

	"roboads/internal/mat"
)

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, End: 20}
	if w.Contains(9) || !w.Contains(10) || !w.Contains(19) || w.Contains(20) {
		t.Fatal("half-open window semantics violated")
	}
	open := Window{Start: 5}
	if !open.Contains(1_000_000) || open.Contains(4) {
		t.Fatal("open window semantics violated")
	}
}

func TestBias(t *testing.T) {
	a := &Bias{Sensor: "ips", Offset: mat.VecOf(0.07, 0, 0), Win: Window{Start: 5}, Via: Cyber}
	reading := mat.VecOf(1, 2, 3)
	if got := a.Apply(4, reading); got[0] != 1 {
		t.Fatalf("inactive bias applied: %v", got)
	}
	got := a.Apply(5, reading)
	if got[0] != 1.07 || got[1] != 2 {
		t.Fatalf("active bias = %v", got)
	}
	if reading[0] != 1 {
		t.Fatal("Apply mutated its argument")
	}
	if a.Target() != "ips" || a.Channel() != Cyber {
		t.Fatal("metadata wrong")
	}
}

func TestZero(t *testing.T) {
	a := &Zero{Sensor: "lidar", Win: Window{Start: 0}, Via: Physical}
	got := a.Apply(3, mat.VecOf(1, 2, 3, 4))
	if got.MaxAbs() != 0 || got.Len() != 4 {
		t.Fatalf("Zero = %v", got)
	}
}

func TestOverride(t *testing.T) {
	a := &Override{Sensor: "lidar", Index: 0, Value: 0.12, Win: Window{Start: 0}, Via: Physical}
	in := mat.VecOf(2, 3, 4, 0.5)
	got := a.Apply(1, in)
	if got[0] != 0.12 || got[1] != 3 {
		t.Fatalf("Override = %v", got)
	}
	if in[0] != 2 {
		t.Fatal("Apply mutated its argument")
	}
	// Out-of-range index degrades to identity.
	short := &Override{Sensor: "x", Index: 9, Value: 1, Win: Window{Start: 0}}
	if got := short.Apply(0, mat.VecOf(1)); got[0] != 1 {
		t.Fatal("out-of-range override should be identity")
	}
}

func TestEncoderTicksOneShot(t *testing.T) {
	a := &EncoderTicks{Wheel: 0, Ticks: 100, Win: Window{Start: 7}, Via: Cyber}
	if l, r := a.CorruptTicks(6); l != 0 || r != 0 {
		t.Fatal("ticks injected before window")
	}
	if l, r := a.CorruptTicks(7); l != 100 || r != 0 {
		t.Fatalf("onset injection = %v, %v", l, r)
	}
	if l, _ := a.CorruptTicks(8); l != 0 {
		t.Fatal("one-shot attack repeated")
	}
	// Reading passthrough: corruption happens at tick level only.
	if got := a.Apply(7, mat.VecOf(1, 2, 3)); got[0] != 1 {
		t.Fatal("Apply should be identity for tick attacks")
	}
}

func TestEncoderTicksPerIteration(t *testing.T) {
	a := &EncoderTicks{Wheel: 1, Ticks: 10, PerIteration: true, Win: Window{Start: 3, End: 5}}
	if _, r := a.CorruptTicks(3); r != 10 {
		t.Fatal("missing injection at 3")
	}
	if _, r := a.CorruptTicks(4); r != 10 {
		t.Fatal("missing injection at 4")
	}
	if _, r := a.CorruptTicks(5); r != 0 {
		t.Fatal("injection past window end")
	}
}

func TestActuatorBias(t *testing.T) {
	a := &ActuatorBias{Offset: mat.VecOf(-6000*SpeedUnit, 6000*SpeedUnit), Win: Window{Start: 2}, Via: Cyber}
	u := mat.VecOf(0.15, 0.15)
	got := a.Apply(2, u)
	if math.Abs(got[0]-(0.15-0.04)) > 1e-12 || math.Abs(got[1]-(0.15+0.04)) > 1e-12 {
		t.Fatalf("ActuatorBias = %v", got)
	}
	if u[0] != 0.15 {
		t.Fatal("Apply mutated its argument")
	}
}

func TestActuatorOverride(t *testing.T) {
	a := &ActuatorOverride{Index: 0, Value: 0, Win: Window{Start: 0}, Via: Physical}
	got := a.Apply(0, mat.VecOf(0.2, 0.3))
	if got[0] != 0 || got[1] != 0.3 {
		t.Fatalf("ActuatorOverride = %v", got)
	}
}

func TestSpeedUnitCalibration(t *testing.T) {
	// §V-H: 900 units = 0.006 m/s, so 6000 units = 0.04 m/s.
	if math.Abs(6000*SpeedUnit-0.04) > 1e-12 {
		t.Fatalf("6000 units = %v m/s, want 0.04", 6000*SpeedUnit)
	}
}

func TestScenarioTruth(t *testing.T) {
	scenarios := KheperaScenarios()
	if len(scenarios) != 11 {
		t.Fatalf("scenario count = %d, want 11", len(scenarios))
	}
	s8 := scenarios[7]
	if s8.ID != 8 {
		t.Fatalf("scenario at index 7 has ID %d", s8.ID)
	}
	pre := s8.TruthAt(0)
	if len(pre.CorruptedSensors) != 0 || pre.ActuatorCorrupted {
		t.Fatal("truth before onset should be clean")
	}
	mid := s8.TruthAt(onsetA)
	if !mid.CorruptedSensors["ips"] || mid.ActuatorCorrupted {
		t.Fatalf("truth at sensor onset = %+v", mid)
	}
	late := s8.TruthAt(onsetB)
	if !late.CorruptedSensors["ips"] || !late.ActuatorCorrupted {
		t.Fatalf("truth at actuator onset = %+v", late)
	}
}

func TestScenario10Recovery(t *testing.T) {
	s10 := KheperaScenarios()[9]
	during := s10.TruthAt(onsetA)
	if !during.CorruptedSensors["lidar"] {
		t.Fatal("lidar should be corrupted during its window")
	}
	after := s10.TruthAt(endB)
	if after.CorruptedSensors["lidar"] {
		t.Fatal("lidar should recover after its window (S0→3→5→1 path)")
	}
	if !after.CorruptedSensors["ips"] {
		t.Fatal("ips should remain corrupted")
	}
}

func TestOnsetIterations(t *testing.T) {
	s := KheperaScenarios()[8] // #9: two staggered sensor attacks
	got := s.OnsetIterations()
	if len(got) != 2 || got[0] != onsetA || got[1] != onsetB {
		t.Fatalf("onsets = %v", got)
	}
}

func TestCleanScenario(t *testing.T) {
	c := CleanScenario()
	if !c.Clean() {
		t.Fatal("clean scenario reports attacks")
	}
	truth := c.TruthAt(100)
	if len(truth.CorruptedSensors) != 0 || truth.ActuatorCorrupted {
		t.Fatal("clean scenario has nonclean truth")
	}
}

func TestTamiyaScenarios(t *testing.T) {
	ts := TamiyaScenarios()
	if len(ts) != 5 {
		t.Fatalf("Tamiya scenario count = %d", len(ts))
	}
	for _, s := range ts {
		if s.Clean() {
			t.Fatalf("scenario %v has no attacks", &s)
		}
	}
}

func TestChannelString(t *testing.T) {
	if Physical.String() != "physical" || Cyber.String() != "cyber" {
		t.Fatal("channel strings wrong")
	}
	if Channel(99).String() != "channel(99)" {
		t.Fatal("unknown channel string wrong")
	}
}

func TestActuatorScale(t *testing.T) {
	a := &ActuatorScale{Index: 1, Factor: 0.5, Win: Window{Start: 3}, Via: Physical}
	u := mat.VecOf(0.2, 0.2)
	if got := a.Apply(2, u); got[1] != 0.2 {
		t.Fatalf("inactive scale applied: %v", got)
	}
	got := a.Apply(3, u)
	if got[1] != 0.1 || got[0] != 0.2 {
		t.Fatalf("scale = %v", got)
	}
	if u[1] != 0.2 {
		t.Fatal("Apply mutated its argument")
	}
	if a.Channel() != Physical {
		t.Fatal("channel wrong")
	}
	// Out-of-range index degrades to identity.
	far := &ActuatorScale{Index: 7, Factor: 0, Win: Window{Start: 0}}
	if got := far.Apply(0, mat.VecOf(1)); got[0] != 1 {
		t.Fatal("out-of-range scale should be identity")
	}
}

func TestTireBlowoutScenario(t *testing.T) {
	s := TireBlowoutScenario()
	if s.Clean() {
		t.Fatal("tire blowout has no attacks")
	}
	truth := s.TruthAt(onsetA)
	if !truth.ActuatorCorrupted || len(truth.CorruptedSensors) != 0 {
		t.Fatalf("truth = %+v", truth)
	}
}

func TestDescribeStrings(t *testing.T) {
	descriptions := []string{
		(&Bias{Sensor: "ips", Offset: mat.VecOf(0.1), Via: Cyber}).Describe(),
		(&Zero{Sensor: "lidar", Via: Physical}).Describe(),
		(&Override{Sensor: "lidar", Index: 0, Value: 0.1, Via: Physical}).Describe(),
		(&EncoderTicks{Wheel: 0, Ticks: 100, Via: Cyber}).Describe(),
		(&EncoderTicks{Wheel: 1, Ticks: 10, Via: Cyber}).Describe(),
		(&ActuatorBias{Offset: mat.VecOf(0.1, 0), Via: Cyber}).Describe(),
		(&ActuatorOverride{Index: 0, Value: 0, Via: Physical}).Describe(),
		(&ActuatorScale{Index: 1, Factor: 0.5, Via: Physical}).Describe(),
	}
	for i, d := range descriptions {
		if d == "" {
			t.Fatalf("description %d empty", i)
		}
	}
	if got := (&EncoderTicks{Wheel: 1, Ticks: 10}).Describe(); !strings.Contains(got, "right") {
		t.Fatalf("wheel naming: %q", got)
	}
	if got := (&Scenario{ID: 3, Name: "x"}).String(); got != "#3 x" {
		t.Fatalf("scenario string: %q", got)
	}
}

func TestRampBias(t *testing.T) {
	a := &RampBias{
		Sensor:           "ips",
		RatePerIteration: mat.VecOf(0.001, 0, 0),
		Win:              Window{Start: 10},
		Via:              Physical,
	}
	if got := a.OffsetAt(9); got.MaxAbs() != 0 {
		t.Fatalf("offset before window = %v", got)
	}
	if got := a.OffsetAt(10); math.Abs(got[0]-0.001) > 1e-15 {
		t.Fatalf("offset at onset = %v", got)
	}
	if got := a.OffsetAt(59); math.Abs(got[0]-0.05) > 1e-12 {
		t.Fatalf("offset at k=59 = %v", got)
	}
	reading := mat.VecOf(1, 2, 3)
	got := a.Apply(19, reading)
	if math.Abs(got[0]-1.010) > 1e-12 {
		t.Fatalf("Apply = %v", got)
	}
	if reading[0] != 1 {
		t.Fatal("Apply mutated its argument")
	}
	if a.Describe() == "" || a.Target() != "ips" {
		t.Fatal("metadata wrong")
	}
}
