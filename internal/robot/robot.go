// Package robot holds the per-platform detector construction surface:
// Profile bundles the kinematic model, sensor suite, noise statistics,
// plausibility envelope, and mode-building strategy for one robot, and
// Profile.NewDetector assembles the full RoboADS pipeline from it.
//
// The package sits below eval so that both the evaluation harness and
// the scenario engine can build detectors without importing each other;
// eval re-exports Profile and the platform builders under their
// historical names (eval.Profile, eval.KheperaProfile, ...).
package robot

import (
	"fmt"

	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/sim"
)

// Profile is the one construction surface behind every robot-specific
// detector builder: it bundles the kinematic model, the sensor suite,
// the noise statistics, the plausibility envelope, and the mode-building
// strategy for one platform. KheperaDetector, TamiyaDetector, and the
// fleet session service all reduce to Profile.NewDetector, so a new
// robot is supported by writing one Profile function rather than a new
// builder per entry point.
type Profile struct {
	// Robot names the platform ("khepera", "tamiya"); it doubles as the
	// trace-header robot string and the fleet session robot model.
	Robot string
	// Model is the discrete-time kinematic model.
	Model dynamics.Model
	// Suite is the sensor suite in canonical order.
	Suite []sensors.Sensor
	// ProcessStd is the per-state process noise standard deviation.
	ProcessStd mat.Vec
	// X0 is the initial state belief mean.
	X0 mat.Vec
	// UMax bounds executed commands for the plausibility gate.
	UMax mat.Vec
	// AngleStates indexes the angular (wrap-around) state components.
	AngleStates []int
	// Dt is the control iteration period in seconds.
	Dt float64
	// ObsX0 and ObsU0 are the operating point for the §VI reference
	// observability check during mode construction. They default to X0
	// and the zero command; platforms whose observability degenerates at
	// standstill (the bicycle) set a moving point here.
	ObsX0, ObsU0 mat.Vec
	// LeaveOneOut selects grouped-reference modes (§VI grouping remedy)
	// instead of the paper-default single-reference set.
	LeaveOneOut bool
}

// SensorNames lists the suite's workflow names in canonical order — the
// wire-format sensor inventory of a trace header or a fleet session.
func (p *Profile) SensorNames() []string {
	names := make([]string, len(p.Suite))
	for i, s := range p.Suite {
		names[i] = s.Name()
	}
	return names
}

// NewDetector assembles the full RoboADS pipeline for the profile: the
// hypothesis mode set, the multi-mode engine, and the decision maker.
func (p *Profile) NewDetector(ecfg core.EngineConfig, dcfg detect.Config) (*detect.Detector, error) {
	plant := core.Plant{
		Model:       p.Model,
		Q:           diagFromStd(p.ProcessStd),
		AngleStates: append([]int(nil), p.AngleStates...),
		UMax:        p.UMax,
	}
	obsX0, obsU0 := p.ObsX0, p.ObsU0
	if obsX0 == nil {
		obsX0 = p.X0
	}
	if obsU0 == nil {
		obsU0 = make(mat.Vec, p.Model.ControlDim())
	}
	var modes []*core.Mode
	var err error
	if p.LeaveOneOut {
		modes, err = core.LeaveOneOutModes(p.Model, p.Suite, obsX0, obsU0)
	} else {
		modes, err = core.SingleReferenceModes(p.Model, p.Suite, obsX0, obsU0, false)
	}
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(plant, modes, p.X0, initialP(len(p.X0)), ecfg)
	if err != nil {
		return nil, err
	}
	return detect.NewDetector(eng, dcfg), nil
}

// Khepera is the differential-drive platform of §V-A as assembled by a
// simulator setup: single-reference modes over (IPS, encoder, LiDAR)
// with the simulator's noise levels and start state.
func Khepera(setup *sim.KheperaSetup) Profile {
	return Profile{
		Robot:       "khepera",
		Model:       setup.Model,
		Suite:       setup.Suite,
		ProcessStd:  setup.ProcessStd,
		X0:          setup.X0,
		UMax:        KheperaUMax(),
		AngleStates: []int{2},
		Dt:          sim.KheperaDt,
		ObsX0:       setup.X0,
		ObsU0:       setup.Model.WheelSpeeds(0.1, 0),
	}
}

// Tamiya is the RC-car platform of §V-D as assembled by a simulator
// setup. The bicycle needs the §VI grouping remedy twice over: the IMU
// alone cannot reconstruct the state (position unobservable), and
// pose-only sensors cannot observe the acceleration input within one
// step (only the IMU reads speed). Leave-one-out reference groups
// satisfy both; observability is checked at a moving operating point
// because at standstill the steering input is genuinely unobservable and
// NUISE degrades to its EKF fallback until the car moves.
func Tamiya(setup *sim.TamiyaSetup) Profile {
	obsX0 := setup.X0.Clone()
	obsX0[3] = 0.3
	return Profile{
		Robot:       "tamiya",
		Model:       setup.Model,
		Suite:       setup.Suite,
		ProcessStd:  setup.ProcessStd,
		X0:          setup.X0,
		UMax:        TamiyaUMax(),
		AngleStates: []int{2},
		Dt:          sim.TamiyaDt,
		ObsX0:       obsX0,
		ObsU0:       mat.VecOf(0.1, 0),
		LeaveOneOut: true,
	}
}

// Named builds a standalone profile for a named platform with no
// simulator attached — the construction path of a hosted fleet session,
// where frames arrive from an external robot and only the detector side
// of the setup exists. The sensor geometry (LiDAR arena) and the start
// state are the standard lab mission's, matching what `roboads record`
// captures and `roboads replay` rebuilds, so a recorded trace replays
// against a hosted session bit-for-bit.
func Named(robot string) (Profile, error) {
	mission := sim.LabMission()
	switch robot {
	case "khepera":
		model := dynamics.NewKhepera(sim.KheperaDt)
		p := Profile{
			Robot:       "khepera",
			Model:       model,
			Suite:       kheperaSuite(mission),
			ProcessStd:  sim.KheperaProcessStd(),
			X0:          mat.VecOf(mission.Start.X, mission.Start.Y, mission.StartHeading),
			UMax:        KheperaUMax(),
			AngleStates: []int{2},
			Dt:          sim.KheperaDt,
			ObsU0:       model.WheelSpeeds(0.1, 0),
		}
		p.ObsX0 = p.X0
		return p, nil
	case "tamiya":
		p := Profile{
			Robot:       "tamiya",
			Model:       dynamics.NewTamiya(sim.TamiyaDt),
			Suite:       tamiyaSuite(mission),
			ProcessStd:  sim.TamiyaProcessStd(),
			X0:          mat.VecOf(mission.Start.X, mission.Start.Y, mission.StartHeading, 0),
			UMax:        TamiyaUMax(),
			AngleStates: []int{2},
			Dt:          sim.TamiyaDt,
			ObsU0:       mat.VecOf(0.1, 0),
			LeaveOneOut: true,
		}
		obsX0 := p.X0.Clone()
		obsX0[3] = 0.3
		p.ObsX0 = obsX0
		return p, nil
	default:
		return Profile{}, fmt.Errorf("robot: unknown profile %q (want khepera or tamiya)", robot)
	}
}

// KheperaUMax bounds each wheel's executed surface speed: the Khepera
// III motors saturate near 0.8 m/s, and the tracker commands at most
// 0.5 m/s, so 0.8 is a safe physical envelope for the plausibility gate.
func KheperaUMax() mat.Vec { return mat.VecOf(0.8, 0.8) }

// TamiyaUMax bounds the executed (acceleration, steering) commands of
// the RC car.
func TamiyaUMax() mat.Vec { return mat.VecOf(3.0, 0.7) }

// kheperaSuite mirrors sim.NewKhepera's sensor construction (IPS, wheel
// encoder, LiDAR against the mission arena).
func kheperaSuite(mission sim.Mission) []sensors.Sensor {
	return []sensors.Sensor{
		sensors.NewIPS(3),
		sensors.NewWheelEncoder(3),
		sensors.NewLidar(mission.Map, 3),
	}
}

// tamiyaSuite mirrors sim.NewTamiya's sensor construction (IPS, LiDAR,
// IMU).
func tamiyaSuite(mission sim.Mission) []sensors.Sensor {
	return []sensors.Sensor{
		sensors.NewIPS(4),
		sensors.NewLidar(mission.Map, 4),
		sensors.NewIMU(),
	}
}

func diagFromStd(std mat.Vec) *mat.Mat {
	d := make([]float64, std.Len())
	for i, s := range std {
		d[i] = s * s
	}
	return mat.Diag(d...)
}

func initialP(n int) *mat.Mat {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1e-6
	}
	return mat.Diag(d...)
}
