package router

// Session-location cache: the router remembers which node last answered
// definitively for a session, so steady-state traffic skips the
// rendezvous scan and — after a failover or migration moved a session
// off its ranked owner — the not_found/moved probe walk that would
// otherwise repeat on every request. The cache is a hint, never an
// authority: a stale entry costs one extra probe (the miss paths below
// invalidate it), and entries are dropped eagerly when a node is
// demoted by the health loop.

// maxLocations bounds the cache; at the cap an arbitrary entry is
// evicted per insert (sessions are re-learned on the next request).
const maxLocations = 4096

// cachedNode returns the node last seen hosting the session.
func (rt *Router) cachedNode(id string) (string, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	node, ok := rt.loc[id]
	return node, ok
}

// noteLocation records node as the session's current host.
func (rt *Router) noteLocation(id, node string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.loc[id]; !ok && len(rt.loc) >= maxLocations {
		for evict := range rt.loc {
			delete(rt.loc, evict)
			break
		}
	}
	rt.loc[id] = node
}

// forgetLocation drops one session's cached location.
func (rt *Router) forgetLocation(id string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.loc, id)
}

// dropNodeLocked removes every cached location pointing at node. The
// caller holds rt.mu (the health loop invalidates inside its sweep).
func (rt *Router) dropNodeLocked(node string) {
	for id, n := range rt.loc {
		if n == node {
			delete(rt.loc, id)
		}
	}
}
