package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"roboads/internal/api"
)

// TestRankProperties pins the rendezvous-hash placement contract: Rank
// is deterministic, returns a permutation of the node list, and removing
// one node reassigns only that node's sessions — every other ID keeps
// its owner and its failover order (minus the removed node).
func TestRankProperties(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("sess-%04d", i)
		ranked := Rank(id, nodes)
		if !reflect.DeepEqual(ranked, Rank(id, nodes)) {
			t.Fatalf("Rank(%q) is not deterministic", id)
		}
		seen := make(map[string]bool)
		for _, n := range ranked {
			seen[n] = true
		}
		if len(ranked) != len(nodes) || len(seen) != len(nodes) {
			t.Fatalf("Rank(%q) = %v is not a permutation of %v", id, ranked, nodes)
		}
		// HRW stability: drop one node and the relative order of the
		// survivors must be unchanged.
		removed := nodes[i%len(nodes)]
		shrunk := make([]string, 0, len(nodes)-1)
		for _, n := range nodes {
			if n != removed {
				shrunk = append(shrunk, n)
			}
		}
		want := make([]string, 0, len(shrunk))
		for _, n := range ranked {
			if n != removed {
				want = append(want, n)
			}
		}
		if got := Rank(id, shrunk); !reflect.DeepEqual(got, want) {
			t.Fatalf("Rank(%q) order changed after removing %s: %v, want %v", id, removed, got, want)
		}
	}
	// Placement must not collapse onto few nodes: over many IDs every
	// node owns a non-trivial share. The bound guards against a starved
	// node, not an even split — plain fnv64a over four short names
	// legitimately skews (observed minimum share here: 12.5%).
	owners := make(map[string]int)
	const ids = 4000
	for i := 0; i < ids; i++ {
		owners[Rank(fmt.Sprintf("sess-%05d", i), nodes)[0]]++
	}
	for _, n := range nodes {
		if share := float64(owners[n]) / ids; share < 0.08 {
			t.Fatalf("node %s owns only %.1f%% of %d IDs: %v", n, 100*share, ids, owners)
		}
	}
}

// TestCandidatesHealthOrder pins failover ordering: candidates is Rank
// with unhealthy nodes moved to the back — demoted, never dropped, and
// rank order preserved within each group.
func TestCandidatesHealthOrder(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	rt := &Router{nodes: nodes, healthy: make(map[string]bool)}
	id := "sess-0007"
	ranked := Rank(id, nodes)

	for _, n := range nodes {
		rt.healthy[n] = true
	}
	if got := rt.candidates(id); !reflect.DeepEqual(got, ranked) {
		t.Fatalf("all-healthy candidates = %v, want rank order %v", got, ranked)
	}

	// The owner goes down: it must drop to the back, successors promote.
	rt.healthy[ranked[0]] = false
	want := append(append([]string{}, ranked[1:]...), ranked[0])
	if got := rt.candidates(id); !reflect.DeepEqual(got, want) {
		t.Fatalf("owner-down candidates = %v, want %v", got, want)
	}

	// Everything down: full rank order again (last resorts keep order).
	for _, n := range nodes {
		rt.healthy[n] = false
	}
	if got := rt.candidates(id); !reflect.DeepEqual(got, ranked) {
		t.Fatalf("all-down candidates = %v, want %v", got, ranked)
	}
}

// TestNewNormalizesNodes pins the node-list hygiene in New: scheme
// defaulting, trailing-slash trimming, and duplicate rejection.
func TestNewNormalizesNodes(t *testing.T) {
	rt, err := New(Config{Nodes: []string{"127.0.0.1:1", "http://127.0.0.1:2/"}, HealthInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	want := []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	if !reflect.DeepEqual(rt.nodes, want) {
		t.Fatalf("normalized nodes = %v, want %v", rt.nodes, want)
	}
	if _, err := New(Config{Nodes: []string{"http://a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate node (post-normalization) not rejected")
	}
	if _, err := New(Config{Nodes: nil}); err == nil {
		t.Fatal("empty node list not rejected")
	}
}

// fakeNode is a scripted fleet node: always ready, with per-route
// handlers for the /v1 surface under test.
func fakeNode(t *testing.T, mux *http.ServeMux) *httptest.Server {
	t.Helper()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// pickOwnedID returns an ID whose rendezvous owner is nodes[want].
func pickOwnedID(t *testing.T, nodes []string, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("pick-%04d", i)
		if Rank(id, nodes)[0] == nodes[want] {
			return id
		}
	}
	t.Fatal("no ID found for wanted owner")
	return ""
}

func newTestRouter(t *testing.T, nodes []string) *httptest.Server {
	t.Helper()
	rt, err := New(Config{Nodes: nodes, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterCreatePlacement pins that a create with a proposed ID lands
// on the ID's rendezvous owner, and that a session_cap answer advances
// to the successor instead of failing the create.
func TestRouterCreatePlacement(t *testing.T) {
	var gotCreate [2]int
	makeNode := func(i int, full bool) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
			gotCreate[i]++
			if full {
				writeJSON(w, http.StatusServiceUnavailable,
					api.Error{Message: "at capacity", Code: api.CodeSessionCap})
				return
			}
			var req api.CreateRequest
			json.NewDecoder(r.Body).Decode(&req)
			writeJSON(w, http.StatusCreated, api.SessionInfo{ID: req.ID, Robot: req.Robot})
		})
		return fakeNode(t, mux)
	}
	a, b := makeNode(0, false), makeNode(1, false)
	nodes := []string{a.URL, b.URL}
	front := newTestRouter(t, nodes)

	id := pickOwnedID(t, nodes, 0)
	body, _ := json.Marshal(api.CreateRequest{Robot: "khepera", ID: id})
	resp, err := http.Post(front.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var info api.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID != id {
		t.Fatalf("created ID = %q, want proposed %q", info.ID, id)
	}
	if gotCreate[0] != 1 || gotCreate[1] != 0 {
		t.Fatalf("create hit nodes %v, want owner only", gotCreate)
	}

	// A full owner is skipped: the successor takes the session.
	gotCreate = [2]int{}
	full := makeNode(0, true)
	ok := makeNode(1, false)
	nodes2 := []string{full.URL, ok.URL}
	front2 := newTestRouter(t, nodes2)
	id2 := pickOwnedID(t, nodes2, 0)
	body, _ = json.Marshal(api.CreateRequest{Robot: "khepera", ID: id2})
	resp2, err := http.Post(front2.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("capacity-failover create status = %d", resp2.StatusCode)
	}
	if gotCreate[0] != 1 || gotCreate[1] != 1 {
		t.Fatalf("create hit nodes %v, want owner then successor", gotCreate)
	}
}

// TestRouterForwardNotFoundAdvance pins post-failover lookup: when the
// ranked owner answers not_found, the router keeps probing successors
// before surfacing the 404.
func TestRouterForwardNotFoundAdvance(t *testing.T) {
	empty := http.NewServeMux()
	empty.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, api.Error{Message: "no such session", Code: api.CodeNotFound})
	})
	holder := http.NewServeMux()
	holder.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}, FramesApplied: 42})
	})
	a, b := fakeNode(t, empty), fakeNode(t, holder)
	nodes := []string{a.URL, b.URL}
	front := newTestRouter(t, nodes)

	id := pickOwnedID(t, nodes, 0) // owner answers not_found; holder is the successor
	resp, err := http.Get(front.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from successor", resp.StatusCode)
	}
	var st api.SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.FramesApplied != 42 {
		t.Fatalf("forwarded status = %+v", st)
	}
}

// TestRouterForwardMovedChase pins the tombstone chase: a moved answer
// with a location is followed transparently, and the client sees only
// the final node's response.
func TestRouterForwardMovedChase(t *testing.T) {
	target := http.NewServeMux()
	target.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}, FramesApplied: 7})
	})
	dst := fakeNode(t, target)

	tomb := http.NewServeMux()
	tomb.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusGone,
			api.Error{Message: "session moved", Code: api.CodeMoved, Location: dst.URL})
	})
	src := fakeNode(t, tomb)

	// Only the tombstone node is in the router's list: reaching the
	// target proves the redirect was chased, not ranked.
	front := newTestRouter(t, []string{src.URL})
	resp, err := http.Get(front.URL + "/v1/sessions/whatever")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after chasing moved", resp.StatusCode)
	}
	var st api.SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.FramesApplied != 7 {
		t.Fatalf("chased status = %+v", st)
	}
}

// TestRouterMigratingRetry pins the migrating hint: the router sleeps
// out the retryAfterMs and retries the same node instead of surfacing
// the transient 503.
func TestRouterMigratingRetry(t *testing.T) {
	calls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			writeJSON(w, http.StatusServiceUnavailable,
				api.Error{Message: "mid-migration", Code: api.CodeMigrating, RetryAfterMs: 10})
			return
		}
		writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}})
	})
	node := fakeNode(t, mux)
	front := newTestRouter(t, []string{node.URL})

	resp, err := http.Get(front.URL + "/v1/sessions/s1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || calls != 2 {
		t.Fatalf("status = %d after %d calls, want 200 after 2", resp.StatusCode, calls)
	}
}
