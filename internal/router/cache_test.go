package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"roboads/internal/api"
	"roboads/internal/telemetry"
)

// newCachingRouter builds a router whose internals the cache tests can
// inspect, fronted by an httptest server.
func newCachingRouter(t *testing.T, nodes []string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(Config{Nodes: nodes, HealthInterval: time.Hour, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

// TestForwardCacheHit pins the steady-state path: after a session is
// located off its ranked owner (post-failover), the next request goes
// straight to the cached holder — the owner is not probed again.
func TestForwardCacheHit(t *testing.T) {
	var emptyCalls, holderCalls atomic.Int64
	empty := http.NewServeMux()
	empty.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		emptyCalls.Add(1)
		writeJSON(w, http.StatusNotFound, api.Error{Message: "no such session", Code: api.CodeNotFound})
	})
	holder := http.NewServeMux()
	holder.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		holderCalls.Add(1)
		writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}})
	})
	a, b := fakeNode(t, empty), fakeNode(t, holder)
	nodes := []string{a.URL, b.URL}
	rt, front := newCachingRouter(t, nodes)

	id := pickOwnedID(t, nodes, 0) // ranked owner answers not_found
	get := func() {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}

	get() // cold: probes owner, finds holder, primes the cache
	if node, ok := rt.cachedNode(id); !ok || node != b.URL {
		t.Fatalf("cached = %q, %v; want holder %q", node, ok, b.URL)
	}
	if emptyCalls.Load() != 1 {
		t.Fatalf("owner probed %d times on cold lookup, want 1", emptyCalls.Load())
	}

	get() // warm: cached holder only
	if emptyCalls.Load() != 1 {
		t.Fatalf("owner probed again on warm lookup (%d calls)", emptyCalls.Load())
	}
	if holderCalls.Load() != 2 {
		t.Fatalf("holder calls = %d, want 2", holderCalls.Load())
	}
	if hits := rt.mLocHits.Value(); hits != 1 {
		t.Fatalf("cache-hit metric = %v, want 1", hits)
	}
}

// TestForwardCacheInvalidateOnNotFound pins miss recovery: when the
// cached node stops hosting the session, the entry is dropped and the
// request falls back to the candidate scan — the client never sees the
// stale 404.
func TestForwardCacheInvalidateOnNotFound(t *testing.T) {
	var aHosts atomic.Bool
	aHosts.Store(true)
	sessionNode := func(hosts *atomic.Bool) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
			if !hosts.Load() {
				writeJSON(w, http.StatusNotFound, api.Error{Message: "no such session", Code: api.CodeNotFound})
				return
			}
			writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}})
		})
		return fakeNode(t, mux)
	}
	var bHosts atomic.Bool
	a, b := sessionNode(&aHosts), sessionNode(&bHosts)
	nodes := []string{a.URL, b.URL}
	rt, front := newCachingRouter(t, nodes)

	id := pickOwnedID(t, nodes, 0)
	get := func() int {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get(); code != http.StatusOK {
		t.Fatalf("prime status = %d", code)
	}
	if node, _ := rt.cachedNode(id); node != a.URL {
		t.Fatalf("cached = %q, want %q", node, a.URL)
	}

	// The session "moves" without a tombstone (crash failover).
	aHosts.Store(false)
	bHosts.Store(true)
	if code := get(); code != http.StatusOK {
		t.Fatalf("post-move status = %d, want 200 via fallback scan", code)
	}
	if node, _ := rt.cachedNode(id); node != b.URL {
		t.Fatalf("cache not repointed: %q, want %q", node, b.URL)
	}
}

// TestForwardCacheInvalidateOnMoved pins the tombstone path: a 410
// moved answer from the cached node invalidates the entry and the chase
// re-primes it with the landing node.
func TestForwardCacheInvalidateOnMoved(t *testing.T) {
	target := http.NewServeMux()
	target.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}})
	})
	dst := fakeNode(t, target)

	var moved atomic.Bool
	tomb := http.NewServeMux()
	tomb.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if moved.Load() {
			writeJSON(w, http.StatusGone, api.Error{Message: "session moved", Code: api.CodeMoved, Location: dst.URL})
			return
		}
		writeJSON(w, http.StatusOK, api.SessionStatus{SessionInfo: api.SessionInfo{ID: r.PathValue("id")}})
	})
	src := fakeNode(t, tomb)
	rt, front := newCachingRouter(t, []string{src.URL})

	get := func() {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/sessions/s1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}

	get() // primes cache with src
	if node, _ := rt.cachedNode("s1"); node != src.URL {
		t.Fatalf("cached = %q, want %q", node, src.URL)
	}
	moved.Store(true)
	get() // tombstone chased; cache must repoint at the landing node
	if node, _ := rt.cachedNode("s1"); node != dst.URL {
		t.Fatalf("cache after moved = %q, want landing node %q", node, dst.URL)
	}
}

// TestCacheInvalidateOnHealthDemotion pins the health-loop hook: when a
// node is demoted by readiness probing, every cached location pointing
// at it is dropped.
func TestCacheInvalidateOnHealthDemotion(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	other := fakeNode(t, http.NewServeMux())

	rt, err := New(Config{Nodes: []string{srv.URL, other.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	rt.noteLocation("s1", srv.URL)
	rt.noteLocation("s2", other.URL)
	ready.Store(false)
	rt.checkHealth()
	if _, ok := rt.cachedNode("s1"); ok {
		t.Fatal("demoted node's cached session not invalidated")
	}
	if node, ok := rt.cachedNode("s2"); !ok || node != other.URL {
		t.Fatal("healthy node's cached session dropped too")
	}
}

// TestCreateAndDeletePrimeCache pins the lifecycle edges: a create
// primes the cache with the landing node, a delete evicts it.
func TestCreateAndDeletePrimeCache(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req api.CreateRequest
		json.NewDecoder(r.Body).Decode(&req)
		writeJSON(w, http.StatusCreated, api.SessionInfo{ID: req.ID, Robot: req.Robot})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct{}{})
	})
	node := fakeNode(t, mux)
	rt, front := newCachingRouter(t, []string{node.URL})

	body := []byte(`{"robot":"khepera","id":"s-life"}`)
	resp, err := http.Post(front.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if n, ok := rt.cachedNode("s-life"); !ok || n != node.URL {
		t.Fatalf("create did not prime cache: %q, %v", n, ok)
	}

	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/v1/sessions/s-life", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, ok := rt.cachedNode("s-life"); ok {
		t.Fatal("delete did not evict cached location")
	}
}

// TestCacheBounded pins the eviction cap.
func TestCacheBounded(t *testing.T) {
	rt := &Router{healthy: map[string]bool{}, loc: make(map[string]string)}
	for i := 0; i < maxLocations+100; i++ {
		rt.noteLocation(fmt.Sprintf("s-%05d", i), "http://a:1")
	}
	if len(rt.loc) > maxLocations {
		t.Fatalf("cache grew to %d entries, cap %d", len(rt.loc), maxLocations)
	}
	// Re-noting an existing ID must not evict anything.
	before := len(rt.loc)
	for id := range rt.loc {
		rt.noteLocation(id, "http://b:1")
		break
	}
	if len(rt.loc) != before {
		t.Fatalf("re-note changed size %d -> %d", before, len(rt.loc))
	}
}
