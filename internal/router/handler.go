package router

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"time"

	"roboads/client"
	"roboads/internal/api"
)

// retryBudget bounds the total time one proxied request may spend
// sleeping on "migrating" hints before giving up and passing the last
// response through.
const retryBudget = 2500 * time.Millisecond

// maxMovedHops bounds how many migration redirects one request chases.
const maxMovedHops = 4

// Handler returns the router's HTTP front: the full /v1 session surface
// proxied by session placement, plus the router's own health endpoints.
// The /v1/internal/* endpoints are deliberately absent — node-to-node
// traffic does not route through the front.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if len(rt.healthyNodes()) == 0 {
			writeJSON(w, http.StatusServiceUnavailable,
				api.Error{Message: "router: no ready nodes", Code: api.CodeNotReady, RetryAfterMs: 1000})
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/frames", rt.handleFrames)
	mux.HandleFunc("/v1/sessions/{id}", rt.handleForward)
	mux.HandleFunc("/v1/sessions/{id}/{verb}", rt.handleForward)
	mux.HandleFunc("GET /v1/debug/trace", rt.handleDebugTrace)
	return mux
}

// newSessionID draws a random router-assigned session ID. Random (not
// sequential) so N routers never collide; the ID, not the node, decides
// placement from here on.
func newSessionID() string {
	var b [6]byte
	rand.Read(b[:])
	return "r-" + hex.EncodeToString(b[:])
}

// handleCreate places a session: the ID (client-proposed, restore
// target, or freshly drawn) hashes to an owner, and the create lands on
// the first ready candidate in rank order.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	rt.mProxied.Inc()
	var req api.CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, api.Error{Message: "decode create request: " + err.Error(), Code: api.CodeBadRequest})
		return
	}
	placeID := req.ID
	if placeID == "" {
		if req.Restore != "" {
			placeID = req.Restore
		} else {
			placeID = newSessionID()
			req.ID = placeID
		}
	}
	var lastErr error
	for _, node := range rt.candidates(placeID) {
		info, err := client.New(node, client.WithHTTPClient(rt.hc)).Create(r.Context(), req)
		if err == nil {
			rt.noteLocation(placeID, node)
			writeJSON(w, http.StatusCreated, info)
			return
		}
		lastErr = err
		if advanceOnError(err) {
			rt.mRetries.Inc()
			continue
		}
		break
	}
	writeClientError(w, lastErr)
}

// handleList merges every ready node's session listing, annotating each
// session with the node that hosts it.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mProxied.Inc()
	nodes := rt.healthyNodes()
	lists := make([][]api.SessionStatus, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			out, err := client.New(node, client.WithHTTPClient(rt.hc)).List(r.Context())
			if err != nil {
				return // a node that just died drops out of the merge
			}
			for j := range out {
				out[j].Node = node
			}
			lists[i] = out
		}(i, node)
	}
	wg.Wait()
	merged := make([]api.SessionStatus, 0, 16)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	writeJSON(w, http.StatusOK, merged)
}

// handleForward proxies one buffered request (status, step, checkpoint,
// migrate, delete) to the session's node, advancing across candidates
// when a node is down or does not host the session, chasing "moved"
// redirects, and honoring "migrating" retry hints.
func (rt *Router) handleForward(w http.ResponseWriter, r *http.Request) {
	rt.mProxied.Inc()
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, api.Error{Message: "read request: " + err.Error(), Code: api.CodeBadRequest})
		return
	}
	deadline := time.Now().Add(retryBudget)
	// The cached node (when present) is probed first, alone; the full
	// rendezvous scan is computed lazily, only when the hint misses.
	cached, hit := rt.cachedNode(id)
	var queue []string
	ensured := false
	ensureFull := func() {
		if ensured {
			return
		}
		ensured = true
		for _, n := range rt.candidates(id) {
			if n != cached {
				queue = append(queue, n)
			}
		}
	}
	if hit {
		queue = []string{cached}
	} else {
		ensureFull()
	}
	hops := 0
	var last *proxiedResponse
	var lastErr error
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
	retrySameNode:
		resp, err := rt.roundTrip(r, node, body)
		if err != nil {
			lastErr = err
			if dialError(err) {
				// The connection never opened, so the request never ran —
				// safe to advance even for non-idempotent step calls.
				if node == cached {
					rt.forgetLocation(id)
				}
				rt.mRetries.Inc()
				ensureFull()
				continue
			}
			writeJSON(w, http.StatusBadGateway, api.Error{Message: fmt.Sprintf("router: %s: %v", node, err), Code: api.CodeInternal})
			return
		}
		last, lastErr = resp, nil
		switch {
		case resp.code == api.CodeNotFound:
			// Not on this node; after a failover the session lives on a
			// successor, so keep looking before answering 404.
			if node == cached {
				rt.forgetLocation(id)
			}
			rt.mRetries.Inc()
			ensureFull()
			continue
		case resp.code == api.CodeNotReady:
			rt.mRetries.Inc()
			ensureFull()
			continue
		case resp.code == api.CodeMoved && resp.envelope.Location != "" && hops < maxMovedHops:
			hops++
			rt.mMoved.Inc()
			if node == cached {
				// Tombstone (410) on the cached node: the entry is stale;
				// the chase's landing node re-primes it below.
				rt.forgetLocation(id)
			}
			node = resp.envelope.Location
			goto retrySameNode
		case resp.code == api.CodeMigrating && time.Now().Before(deadline):
			wait := time.Duration(resp.envelope.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(wait):
			}
			goto retrySameNode
		default:
			if resp.status < 400 {
				if r.Method == http.MethodDelete {
					rt.forgetLocation(id)
				} else {
					if hit && node == cached {
						rt.mLocHits.Inc()
					}
					rt.noteLocation(id, node)
				}
			}
			resp.writeTo(w)
			return
		}
	}
	if last != nil {
		last.writeTo(w)
		return
	}
	writeJSON(w, http.StatusBadGateway, api.Error{Message: fmt.Sprintf("router: no node answered for session %s: %v", id, lastErr), Code: api.CodeInternal})
}

// proxiedResponse is one upstream reply, fully buffered, with its error
// envelope (when any) pre-parsed for routing decisions.
type proxiedResponse struct {
	status   int
	header   http.Header
	body     []byte
	code     string
	envelope api.Error
}

func (p *proxiedResponse) writeTo(w http.ResponseWriter) {
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := p.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(p.status)
	w.Write(p.body)
}

// roundTrip replays the buffered request against one node.
func (rt *Router) roundTrip(r *http.Request, node string, body []byte) (*proxiedResponse, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, node+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	out := &proxiedResponse{status: resp.StatusCode, header: resp.Header, body: data}
	if resp.StatusCode >= 400 {
		if json.Unmarshal(data, &out.envelope) == nil {
			out.code = out.envelope.Code
		}
	}
	return out, nil
}

// handleFrames proxies the streaming ingest: the session's node is
// located first (cheap status probes across candidates, chasing moved
// redirects), then the stream reverse-proxies to it with flushing on
// every write so reply lines reach the client as they are produced.
func (rt *Router) handleFrames(w http.ResponseWriter, r *http.Request) {
	rt.mProxied.Inc()
	id := r.PathValue("id")
	owner, err := rt.locate(r.Context(), id)
	if err != nil {
		writeClientError(w, err)
		return
	}
	target, perr := url.Parse(owner)
	if perr != nil {
		writeJSON(w, http.StatusBadGateway, api.Error{Message: "router: bad node url " + owner, Code: api.CodeInternal})
		return
	}
	rc := http.NewResponseController(w)
	// The proxied request body (the client's frame stream) must stay
	// readable while reply lines flow back out — the same full-duplex
	// contract the node's own /frames handler declares.
	rc.EnableFullDuplex()
	proxy := &httputil.ReverseProxy{
		Rewrite:       func(pr *httputil.ProxyRequest) { pr.SetURL(target) },
		FlushInterval: -1, // reply lines stream: flush every write
		Transport:     rt.hc.Transport,
		ErrorLog:      nil,
	}
	proxy.ServeHTTP(&headerFlushingWriter{ResponseWriter: w, rc: rc}, r)
}

// headerFlushingWriter flushes the response headers to the wire the
// moment the proxy writes them. The node's 200 opens the stream before
// any body bytes exist, and the client will not send its first frame —
// so the node will not produce the first reply line, which would
// otherwise carry the flush — until it sees those headers; without this
// the status sits in the server's buffer and both sides wait forever.
type headerFlushingWriter struct {
	http.ResponseWriter
	rc *http.ResponseController
}

func (f *headerFlushingWriter) WriteHeader(code int) {
	f.ResponseWriter.WriteHeader(code)
	f.rc.Flush()
}

// Unwrap lets the proxy's own ResponseController reach the underlying
// writer's Flush for the per-write streaming flushes.
func (f *headerFlushingWriter) Unwrap() http.ResponseWriter { return f.ResponseWriter }

// locate finds the node currently hosting a session: the cached
// location first, then candidates in rank order, chasing migration
// redirects either way.
func (rt *Router) locate(ctx context.Context, id string) (string, error) {
	cached, hit := rt.cachedNode(id)
	probe := func(node string) (string, error) {
		target := node
		var lastErr error
		for hops := 0; hops <= maxMovedHops; hops++ {
			_, err := client.New(target, client.WithHTTPClient(rt.hc)).Status(ctx, id)
			if err == nil {
				return target, nil
			}
			lastErr = err
			var e *api.Error
			if errors.As(err, &e) && e.Code == api.CodeMoved && e.Location != "" {
				rt.mMoved.Inc()
				target = e.Location
				continue
			}
			break
		}
		return "", lastErr
	}
	if hit {
		if target, err := probe(cached); err == nil {
			if target == cached {
				rt.mLocHits.Inc()
			}
			rt.noteLocation(id, target)
			return target, nil
		}
		rt.forgetLocation(id)
	}
	var lastErr error
	for _, node := range rt.candidates(id) {
		if node == cached {
			continue // already probed and invalidated above
		}
		target, err := probe(node)
		if err == nil {
			rt.noteLocation(id, target)
			return target, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = &api.Error{Message: "router: session " + id + " not found on any node", Code: api.CodeNotFound, Status: http.StatusNotFound}
	}
	return "", lastErr
}

// handleDebugTrace forwards the trace snapshot request to the first
// ready node (every node serves its own snapshot; the router does not
// merge them).
func (rt *Router) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	rt.mProxied.Inc()
	for _, node := range rt.healthyNodes() {
		raw, err := client.New(node, client.WithHTTPClient(rt.hc)).DebugTrace(r.Context())
		if err != nil {
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, api.Error{Message: "router: no ready nodes", Code: api.CodeNotReady, RetryAfterMs: 1000})
}

// advanceOnError reports whether a typed client error means "try the
// next candidate" (node down or not taking work) rather than a
// definitive answer.
func advanceOnError(err error) bool {
	if dialError(err) {
		return true
	}
	var e *api.Error
	if errors.As(err, &e) {
		return e.Code == api.CodeNotReady || e.Code == api.CodeSessionCap
	}
	return false
}

// dialError reports whether err failed before the request was sent, so
// a retry elsewhere cannot double-apply anything.
func dialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// writeClientError renders a typed client error back onto the wire,
// preserving its status, envelope, and retry/redirect headers.
func writeClientError(w http.ResponseWriter, err error) {
	var e *api.Error
	if !errors.As(err, &e) {
		msg := "router: upstream unreachable"
		if err != nil {
			msg = "router: " + err.Error()
		}
		writeJSON(w, http.StatusBadGateway, api.Error{Message: msg, Code: api.CodeInternal})
		return
	}
	status := e.Status
	if status == 0 {
		status = http.StatusBadGateway
	}
	if e.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (e.RetryAfterMs+999)/1000))
	}
	if e.Location != "" {
		w.Header().Set("Location", e.Location)
	}
	writeJSON(w, status, *e)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
