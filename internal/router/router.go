// Package router fronts N roboads serve nodes as one logical fleet.
// Placement is rendezvous (highest-random-weight) hashing of the
// session ID over the static node list: every router instance computes
// the same owner for an ID with no coordination, and removing a node
// reassigns only that node's sessions. All /v1 traffic proxies through,
// including the streaming ingest; idempotent calls retry on the next
// ranked candidate when a node is down, "moved" redirects from live
// migration are chased transparently, and "migrating" retry hints are
// honored — a client of the router never sees the fleet's topology
// change underneath it.
package router

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"roboads/client"
	"roboads/internal/telemetry"
)

// Router metric names.
const (
	// MetricNodesHealthy gauges nodes currently passing /readyz.
	MetricNodesHealthy = "roboads_router_nodes_healthy"
	// MetricProxied counts proxied /v1 requests.
	MetricProxied = "roboads_router_proxied_total"
	// MetricRetries counts candidate-advance retries (dead or
	// not-ready node skipped, session found elsewhere).
	MetricRetries = "roboads_router_retries_total"
	// MetricMovedFollows counts chased migration redirects.
	MetricMovedFollows = "roboads_router_moved_follows_total"
	// MetricLocationHits counts requests answered by the session's
	// cached node without a candidate scan.
	MetricLocationHits = "roboads_router_location_cache_hits_total"
)

// Config parameterizes a Router.
type Config struct {
	// Nodes are the fleet nodes' base URLs, e.g. "http://127.0.0.1:8081".
	// Order is irrelevant to placement (the hash decides), but must be
	// the same list on every router for placement to agree.
	Nodes []string
	// HealthInterval is the /readyz poll cadence. Default 500ms.
	HealthInterval time.Duration
	// Metrics receives the router gauges/counters; nil keeps them private.
	Metrics *telemetry.Registry
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// HTTPClient overrides the proxy's outbound client.
	HTTPClient *http.Client
}

// Router is the consistent-hash fleet front. Construct with New; Close
// stops the health loop.
type Router struct {
	nodes []string
	hc    *http.Client
	logf  func(string, ...any)

	mu      sync.Mutex
	healthy map[string]bool
	// loc caches session ID → node last seen hosting it (see cache.go).
	loc map[string]string

	stop chan struct{}
	done chan struct{}

	interval time.Duration

	mHealthy *telemetry.Gauge
	mProxied *telemetry.Counter
	mRetries *telemetry.Counter
	mMoved   *telemetry.Counter
	mLocHits *telemetry.Counter
}

// New validates the node list, starts the health loop, and returns the
// router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("router: no nodes")
	}
	nodes := make([]string, len(cfg.Nodes))
	seen := make(map[string]bool)
	for i, n := range cfg.Nodes {
		n = strings.TrimSuffix(n, "/")
		if !strings.Contains(n, "://") {
			n = "http://" + n
		}
		if _, err := url.Parse(n); err != nil {
			return nil, fmt.Errorf("router: node %q: %w", cfg.Nodes[i], err)
		}
		if seen[n] {
			return nil, fmt.Errorf("router: duplicate node %s", n)
		}
		seen[n] = true
		nodes[i] = n
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	interval := cfg.HealthInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rt := &Router{
		nodes:    nodes,
		hc:       hc,
		logf:     logf,
		healthy:  make(map[string]bool, len(nodes)),
		loc:      make(map[string]string),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		interval: interval,
		mHealthy: reg.Gauge(MetricNodesHealthy, "Nodes currently passing readiness."),
		mProxied: reg.Counter(MetricProxied, "Proxied /v1 requests."),
		mRetries: reg.Counter(MetricRetries, "Candidate-advance retries."),
		mMoved:   reg.Counter(MetricMovedFollows, "Chased migration redirects."),
		mLocHits: reg.Counter(MetricLocationHits, "Requests served via the session-location cache."),
	}
	// Optimistic start: nodes count as healthy until the first probe says
	// otherwise, so a router started alongside its nodes serves at once.
	for _, n := range nodes {
		rt.healthy[n] = true
	}
	rt.checkHealth()
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop.
func (rt *Router) Close() {
	close(rt.stop)
	<-rt.done
}

func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.checkHealth()
		}
	}
}

// checkHealth probes every node's /readyz concurrently.
func (rt *Router) checkHealth() {
	results := make([]bool, len(rt.nodes))
	var wg sync.WaitGroup
	for i, n := range rt.nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.interval)
			defer cancel()
			results[i] = client.New(n, client.WithHTTPClient(rt.hc)).Ready(ctx) == nil
		}(i, n)
	}
	wg.Wait()
	up := 0
	rt.mu.Lock()
	for i, n := range rt.nodes {
		if rt.healthy[n] != results[i] {
			rt.logf("router: node %s ready=%v", n, results[i])
		}
		if rt.healthy[n] && !results[i] {
			// Demoted: its sessions will fail over, so cached locations
			// pointing at it are stale hints now.
			rt.dropNodeLocked(n)
		}
		rt.healthy[n] = results[i]
		if results[i] {
			up++
		}
	}
	rt.mu.Unlock()
	rt.mHealthy.Set(float64(up))
}

// Rank orders nodes by rendezvous (HRW) hash for one session ID,
// highest weight first: Rank(id, nodes)[0] is the ID's owner, the rest
// are successors in failover order. Every caller with the same node
// list computes the same order, which is the whole point — tests and
// operators can predict placement offline.
func Rank(id string, nodes []string) []string {
	type weighted struct {
		node string
		w    uint64
	}
	ws := make([]weighted, len(nodes))
	for i, n := range nodes {
		h := fnv.New64a()
		io.WriteString(h, n)
		h.Write([]byte{0})
		io.WriteString(h, id)
		ws[i] = weighted{n, h.Sum64()}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].node < ws[j].node
	})
	out := make([]string, len(nodes))
	for i, w := range ws {
		out[i] = w.node
	}
	return out
}

// candidates is Rank with unhealthy nodes moved to the back (not
// dropped: a health probe can lag reality, so a "down" node is still a
// last resort rather than invisible).
func (rt *Router) candidates(id string) []string {
	ranked := Rank(id, rt.nodes)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	up := make([]string, 0, len(ranked))
	var down []string
	for _, n := range ranked {
		if rt.healthy[n] {
			up = append(up, n)
		} else {
			down = append(down, n)
		}
	}
	return append(up, down...)
}

// healthyNodes lists nodes currently passing readiness, in list order.
func (rt *Router) healthyNodes() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		if rt.healthy[n] {
			out = append(out, n)
		}
	}
	return out
}
