// Package plan implements the motion planner from the paper's mission
// setup (§V-A): an optimal rapidly-exploring random tree (RRT*) that
// computes a collision-free path from the start to a goal region, which
// the PID tracker then follows.
package plan

import (
	"errors"
	"fmt"
	"math"

	"roboads/internal/stat"
	"roboads/internal/world"
)

// Config parameterizes the RRT* search.
type Config struct {
	// MaxIterations bounds the number of sampling iterations.
	MaxIterations int
	// StepSize is the steering extension length in meters.
	StepSize float64
	// GoalRadius is the goal region radius in meters.
	GoalRadius float64
	// GoalBias is the probability of sampling the goal directly.
	GoalBias float64
	// Margin is the clearance (robot radius) kept from obstacles.
	Margin float64
	// RewireRadius is the neighborhood radius for the rewiring step.
	RewireRadius float64
}

// DefaultConfig returns the planner configuration used by the
// experiments, tuned for the 4×4 m lab arena.
func DefaultConfig() Config {
	return Config{
		MaxIterations: 4000,
		StepSize:      0.25,
		GoalRadius:    0.15,
		GoalBias:      0.08,
		Margin:        0.07,
		RewireRadius:  0.5,
	}
}

// ErrNoPath indicates the planner exhausted its iteration budget without
// reaching the goal region.
var ErrNoPath = errors.New("plan: no path found")

type node struct {
	p      world.Point
	parent int
	cost   float64
}

// Plan runs RRT* on m from start to goal and returns the waypoint list
// (start first, a point inside the goal region last).
func Plan(m *world.Map, start, goal world.Point, cfg Config, rng *stat.RNG) ([]world.Point, error) {
	if !m.Free(start, cfg.Margin) {
		return nil, fmt.Errorf("plan: start %v not in free space", start)
	}
	if !m.Free(goal, cfg.Margin) {
		return nil, fmt.Errorf("plan: goal %v not in free space", goal)
	}

	nodes := []node{{p: start, parent: -1, cost: 0}}
	bestGoal := -1
	bestCost := math.Inf(1)

	width := m.Bounds.Max.X - m.Bounds.Min.X
	height := m.Bounds.Max.Y - m.Bounds.Min.Y

	for it := 0; it < cfg.MaxIterations; it++ {
		// Sample (goal-biased) a target point.
		var sample world.Point
		if rng.Float64() < cfg.GoalBias {
			sample = goal
		} else {
			sample = world.Point{
				X: m.Bounds.Min.X + rng.Float64()*width,
				Y: m.Bounds.Min.Y + rng.Float64()*height,
			}
		}

		// Steer from the nearest node toward the sample.
		nearest := nearestNode(nodes, sample)
		candidate := steer(nodes[nearest].p, sample, cfg.StepSize)
		if !m.Free(candidate, cfg.Margin) {
			continue
		}

		// Choose the lowest-cost collision-free parent in the
		// neighborhood (the RRT* "choose parent" step).
		neighbors := nearNodes(nodes, candidate, cfg.RewireRadius)
		parent, parentCost := nearest, nodes[nearest].cost+nodes[nearest].p.Dist(candidate)
		for _, ni := range neighbors {
			c := nodes[ni].cost + nodes[ni].p.Dist(candidate)
			if c < parentCost && m.SegmentFree(world.Segment{A: nodes[ni].p, B: candidate}, cfg.Margin, 0) {
				parent, parentCost = ni, c
			}
		}
		if !m.SegmentFree(world.Segment{A: nodes[parent].p, B: candidate}, cfg.Margin, 0) {
			continue
		}
		newIdx := len(nodes)
		nodes = append(nodes, node{p: candidate, parent: parent, cost: parentCost})

		// Rewire the neighborhood through the new node where cheaper.
		for _, ni := range neighbors {
			through := parentCost + candidate.Dist(nodes[ni].p)
			if through < nodes[ni].cost &&
				m.SegmentFree(world.Segment{A: candidate, B: nodes[ni].p}, cfg.Margin, 0) {
				nodes[ni].parent = newIdx
				nodes[ni].cost = through
			}
		}

		// Track the best goal-region entry.
		if candidate.Dist(goal) <= cfg.GoalRadius && parentCost < bestCost {
			bestGoal = newIdx
			bestCost = parentCost
		}
	}

	if bestGoal < 0 {
		return nil, ErrNoPath
	}
	return extractPath(nodes, bestGoal), nil
}

func nearestNode(nodes []node, p world.Point) int {
	best, bestDist := 0, math.Inf(1)
	for i, n := range nodes {
		if d := n.p.Dist(p); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func nearNodes(nodes []node, p world.Point, radius float64) []int {
	var out []int
	for i, n := range nodes {
		if n.p.Dist(p) <= radius {
			out = append(out, i)
		}
	}
	return out
}

func steer(from, toward world.Point, step float64) world.Point {
	d := from.Dist(toward)
	if d <= step {
		return toward
	}
	t := step / d
	return world.Point{X: from.X + t*(toward.X-from.X), Y: from.Y + t*(toward.Y-from.Y)}
}

func extractPath(nodes []node, goalIdx int) []world.Point {
	var rev []world.Point
	for i := goalIdx; i >= 0; i = nodes[i].parent {
		rev = append(rev, nodes[i].p)
	}
	out := make([]world.Point, len(rev))
	for i, p := range rev {
		out[len(rev)-1-i] = p
	}
	return out
}

// PathLength returns the total arc length of a waypoint path.
func PathLength(path []world.Point) float64 {
	var sum float64
	for i := 1; i < len(path); i++ {
		sum += path[i].Dist(path[i-1])
	}
	return sum
}

// Resample returns the path re-discretized at approximately the given
// spacing, preserving the endpoints. It makes tracker lookahead behavior
// independent of the planner's variable segment lengths.
func Resample(path []world.Point, spacing float64) []world.Point {
	if len(path) < 2 || spacing <= 0 {
		out := make([]world.Point, len(path))
		copy(out, path)
		return out
	}
	out := []world.Point{path[0]}
	carry := 0.0
	for i := 1; i < len(path); i++ {
		seg := world.Segment{A: path[i-1], B: path[i]}
		length := seg.Length()
		for carry+length >= spacing {
			t := (spacing - carry) / length
			p := world.Point{
				X: seg.A.X + t*(seg.B.X-seg.A.X),
				Y: seg.A.Y + t*(seg.B.Y-seg.A.Y),
			}
			out = append(out, p)
			seg.A = p
			length = seg.Length()
			carry = 0
		}
		carry += length
	}
	last := path[len(path)-1]
	if out[len(out)-1].Dist(last) > 1e-9 {
		out = append(out, last)
	}
	return out
}
