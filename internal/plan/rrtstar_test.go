package plan

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"roboads/internal/stat"
	"roboads/internal/world"
)

func labMission() (*world.Map, world.Point, world.Point) {
	return world.LabArena(), world.Point{X: 0.5, Y: 0.5}, world.Point{X: 3.5, Y: 3.5}
}

func TestPlanFindsCollisionFreePath(t *testing.T) {
	m, start, goal := labMission()
	cfg := DefaultConfig()
	path, err := Plan(m, start, goal, cfg, stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path too short: %d waypoints", len(path))
	}
	if path[0] != start {
		t.Fatalf("path starts at %v", path[0])
	}
	if path[len(path)-1].Dist(goal) > cfg.GoalRadius {
		t.Fatalf("path ends %.3f m from goal", path[len(path)-1].Dist(goal))
	}
	for i := 1; i < len(path); i++ {
		seg := world.Segment{A: path[i-1], B: path[i]}
		if !m.SegmentFree(seg, cfg.Margin, 0.01) {
			t.Fatalf("segment %d collides", i)
		}
	}
}

func TestPlanDeterministicPerSeed(t *testing.T) {
	m, start, goal := labMission()
	cfg := DefaultConfig()
	p1, err1 := Plan(m, start, goal, cfg, stat.NewRNG(7))
	p2, err2 := Plan(m, start, goal, cfg, stat.NewRNG(7))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(p1) != len(p2) {
		t.Fatalf("lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("waypoint %d differs", i)
		}
	}
}

func TestPlanRejectsBlockedEndpoints(t *testing.T) {
	m, start, goal := labMission()
	cfg := DefaultConfig()
	inObstacle := m.Obstacles[0].Center()
	if _, err := Plan(m, inObstacle, goal, cfg, stat.NewRNG(1)); err == nil {
		t.Fatal("expected error for blocked start")
	}
	if _, err := Plan(m, start, inObstacle, cfg, stat.NewRNG(1)); err == nil {
		t.Fatal("expected error for blocked goal")
	}
}

func TestPlanNoPath(t *testing.T) {
	// Wall off the arena's right half completely.
	m := world.NewArena(4, 4)
	m.AddObstacle(world.NewRect(1.9, 0, 2.1, 4))
	cfg := DefaultConfig()
	cfg.MaxIterations = 500
	_, err := Plan(m, world.Point{X: 0.5, Y: 0.5}, world.Point{X: 3.5, Y: 3.5}, cfg, stat.NewRNG(1))
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestRRTStarImprovesOverRRT(t *testing.T) {
	// With rewiring enabled the returned path should not be wildly longer
	// than the straight-line distance; this catches regressions where the
	// choose-parent/rewire steps stop working.
	m, start, goal := labMission()
	cfg := DefaultConfig()
	path, err := Plan(m, start, goal, cfg, stat.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	straight := start.Dist(goal)
	if got := PathLength(path); got > 1.6*straight {
		t.Fatalf("path length %.2f vs straight %.2f — rewiring ineffective?", got, straight)
	}
}

func TestPathLength(t *testing.T) {
	path := []world.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 4}}
	if got := PathLength(path); math.Abs(got-7) > 1e-12 {
		t.Fatalf("PathLength = %v", got)
	}
	if PathLength(nil) != 0 {
		t.Fatal("empty path should have zero length")
	}
}

func TestResampleSpacing(t *testing.T) {
	path := []world.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	out := Resample(path, 0.25)
	if len(out) != 5 {
		t.Fatalf("resampled to %d points: %v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		d := out[i].Dist(out[i-1])
		if d > 0.25+1e-9 {
			t.Fatalf("gap %d is %v", i, d)
		}
	}
	if out[len(out)-1] != path[1] {
		t.Fatal("endpoint dropped")
	}
}

func TestResampleDegenerate(t *testing.T) {
	single := []world.Point{{X: 1, Y: 1}}
	if got := Resample(single, 0.1); len(got) != 1 || got[0] != single[0] {
		t.Fatalf("Resample single = %v", got)
	}
	if got := Resample(nil, 0.1); len(got) != 0 {
		t.Fatalf("Resample nil = %v", got)
	}
}

// Resampling preserves total length (within discretization tolerance) and
// every resampled point stays near the original polyline.
func TestPropertyResamplePreservesLength(t *testing.T) {
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		n := 2 + r.IntN(5)
		path := make([]world.Point, n)
		for i := range path {
			path[i] = world.Point{X: r.Float64() * 4, Y: r.Float64() * 4}
		}
		out := Resample(path, 0.05)
		return math.Abs(PathLength(out)-PathLength(path)) < 0.06*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
