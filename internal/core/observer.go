package core

// StepStats is one Engine.Step's instrumentation record, delivered to
// the configured Observer after the weight update and mode selection.
// The struct (and its Weights slice) is owned by the engine and reused
// across iterations: observers must read synchronously and copy anything
// they retain.
type StepStats struct {
	// Iteration is the control iteration index k.
	Iteration int
	// WallNanos is the wall-clock duration of the whole Step.
	WallNanos int64
	// Selected is the selected mode index; SelectedName its name.
	Selected     int
	SelectedName string
	// Switched reports that the selected mode differs from the previous
	// iteration's (always false on iteration 0).
	Switched bool
	// FloorHits counts modes whose normalized weight was pinned at the
	// ε floor this iteration.
	FloorHits int
	// ModesFailed counts modes that produced no result this iteration
	// (missing reference reading or NUISE error).
	ModesFailed int
	// JacobiFallbacks is the number of NUISE steps in this iteration
	// that abandoned the Cholesky fast path for the Jacobi
	// PseudoInverseSym fallback. It is sampled from the process-wide
	// fallback counter around the mode bank, so engines stepping
	// concurrently in one process may attribute each other's fallbacks;
	// the sum over all engines is exact.
	JacobiFallbacks int64
	// Weights is the normalized mode weight vector (borrowed — do not
	// retain).
	Weights []float64
	// PValue and Likelihood are the selected mode's innovation
	// chi-square p-value and Gaussian density N_k.
	PValue, Likelihood float64
}

// Observer receives engine instrumentation events. All methods are
// called synchronously from Engine.Step; ModeStep and PoolWait are
// additionally called from worker-pool goroutines when the bank runs in
// parallel, so implementations must be safe for concurrent use.
// Implementations must not block and must not mutate any argument:
// observation is strictly read-only, which is what keeps engine output
// bit-for-bit identical with and without an observer attached (the
// determinism test pins this).
//
// A nil Observer in EngineConfig disables every hook; the disabled path
// costs one nil check per site and is guarded by the BenchmarkEngineStep
// regression gate.
type Observer interface {
	// EngineStep delivers the per-iteration record after mode selection.
	EngineStep(*StepStats)
	// ModeStep reports one mode's NUISE latency; ok is false when the
	// mode produced no result this iteration.
	ModeStep(mode int, name string, nanos int64, ok bool)
	// PoolWait reports the submit→start queue wait of one mode-bank job
	// (parallel engines only).
	PoolWait(nanos int64)
	// DroppedReading reports a sensing workflow expected by the mode set
	// but missing from this iteration's readings map.
	DroppedReading(sensor string)
}
