package core

import (
	"errors"
	"math"
	"testing"

	"roboads/internal/mat"
	"roboads/internal/sensors"
)

func buildEngine(t *testing.T, rig *testRig) *Engine {
	t.Helper()
	x0 := mat.VecOf(0.8, 0.8, 0.2)
	u0 := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(rig.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSingleReferenceModesLayout(t *testing.T) {
	rig := newTestRig(1)
	x0 := mat.VecOf(1, 1, 0)
	u0 := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 3 {
		t.Fatalf("mode count = %d, want 3 (linear in p)", len(modes))
	}
	for _, m := range modes {
		if len(m.Testing) != 2 {
			t.Fatalf("mode %s tests %d sensors", m.Name, len(m.Testing))
		}
	}
	if modes[0].Name != "ref=ips" {
		t.Fatalf("mode name = %q", modes[0].Name)
	}
	if !modes[0].HypothesizedCorrupted("lidar") || modes[0].HypothesizedCorrupted("ips") {
		t.Fatal("hypothesis membership wrong")
	}
}

func TestSingleReferenceModesRejectsUnobservable(t *testing.T) {
	rig := newTestRig(1)
	suite := append([]sensors.Sensor{}, rig.suite...)
	suite = append(suite, sensors.NewMagnetometer(3))
	x0 := mat.VecOf(1, 1, 0)
	u0 := rig.model.WheelSpeeds(0.1, 0)
	if _, err := SingleReferenceModes(rig.plant.Model, suite, x0, u0, false); err == nil {
		t.Fatal("unobservable reference accepted")
	}
	modes, err := SingleReferenceModes(rig.plant.Model, suite, x0, u0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 3 {
		t.Fatalf("skip mode dropped wrong count: %d", len(modes))
	}
}

func TestCompleteModes(t *testing.T) {
	rig := newTestRig(1)
	x0 := mat.VecOf(1, 1, 0)
	u0 := rig.model.WheelSpeeds(0.1, 0)
	modes, err := CompleteModes(rig.plant.Model, rig.suite, x0, u0)
	if err != nil {
		t.Fatal(err)
	}
	// 2^3 − 1 = 7 clean subsets, all observable for pose-type sensors.
	if len(modes) != 7 {
		t.Fatalf("mode count = %d, want 7", len(modes))
	}
}

func TestModeSplitDs(t *testing.T) {
	rig := newTestRig(1)
	m, err := NewMode([]sensors.Sensor{rig.ips}, []sensors.Sensor{rig.we, rig.lidar})
	if err != nil {
		t.Fatal(err)
	}
	ds := mat.VecOf(1, 2, 3, 4, 5, 6, 7) // WE(3) + LiDAR(4)
	ps := mat.Identity(7).Scale(2)
	split := m.SplitDs(ds, ps)
	if len(split) != 2 {
		t.Fatalf("split count = %d", len(split))
	}
	if split[0].Sensor != "wheel-encoder" || split[0].Ds.Len() != 3 || split[0].Ds[0] != 1 {
		t.Fatalf("split[0] = %+v", split[0])
	}
	if split[1].Sensor != "lidar" || split[1].Ds.Len() != 4 || split[1].Ds[3] != 7 {
		t.Fatalf("split[1] = %+v", split[1])
	}
	if split[1].Ps.Rows() != 4 || split[1].Ps.At(0, 0) != 2 {
		t.Fatalf("split[1].Ps =\n%v", split[1].Ps)
	}
}

func TestEngineCleanRunPrefersNoCorruption(t *testing.T) {
	rig := newTestRig(11)
	eng := buildEngine(t, rig)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.3)
	for k := 0; k < 60; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		out, err := eng.Step(u, rig.readings(xTrue))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if out.Iteration != k {
			t.Fatalf("iteration counter = %d, want %d", out.Iteration, k)
		}
		if len(out.SensorAnomalies) != 2 {
			t.Fatalf("k=%d: anomaly split = %d", k, len(out.SensorAnomalies))
		}
	}
	xEst, _ := eng.State()
	if d := xEst.Sub(xTrue); math.Hypot(d[0], d[1]) > 0.01 {
		t.Fatalf("fused estimate drifted: %v vs %v", xEst, xTrue)
	}
}

// When one sensor is corrupted, the engine must select a mode whose
// reference excludes it — even though 2 of 3 sensors stay clean, no
// majority vote is involved (§IV-B "not based on voting").
func TestEngineSelectsModeExcludingCorruptedSensor(t *testing.T) {
	rig := newTestRig(12)
	eng := buildEngine(t, rig)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.2)
	bias := mat.VecOf(0.07, 0, 0)

	var lastOut *Output
	for k := 0; k < 80; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		readings := rig.readings(xTrue)
		if k >= 30 {
			readings["ips"] = readings["ips"].Add(bias)
		}
		out, err := eng.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		lastOut = out
	}
	sel := lastOut.SelectedMode
	for _, name := range sel.ReferenceNames {
		if name == "ips" {
			t.Fatalf("engine kept corrupted ips as reference (mode %s, weights %v)",
				sel.Name, lastOut.Weights)
		}
	}
	// The corrupted sensor's anomaly estimate must reflect the bias.
	var ipsDs mat.Vec
	for _, sa := range lastOut.SensorAnomalies {
		if sa.Sensor == "ips" {
			ipsDs = sa.Ds
		}
	}
	if ipsDs == nil {
		t.Fatal("ips missing from anomaly split")
	}
	if math.Abs(ipsDs[0]-0.07) > 0.02 {
		t.Fatalf("d̂s(ips) = %v, want x-component ≈ 0.07", ipsDs)
	}
}

// Two of three sensors corrupted: the engine must still find the single
// clean reference — the paper's headline "no Byzantine threshold" result
// (scenarios #9–#11).
func TestEngineMajorityCorrupted(t *testing.T) {
	rig := newTestRig(13)
	eng := buildEngine(t, rig)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.2)

	var lastOut *Output
	for k := 0; k < 100; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		readings := rig.readings(xTrue)
		if k >= 30 {
			readings["ips"] = readings["ips"].Add(mat.VecOf(0.1, 0, 0))
		}
		if k >= 50 {
			readings["wheel-encoder"] = readings["wheel-encoder"].Add(mat.VecOf(0, 0.08, 0))
		}
		out, err := eng.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		lastOut = out
	}
	if got := lastOut.SelectedMode.ReferenceNames; len(got) != 1 || got[0] != "lidar" {
		t.Fatalf("selected reference = %v, want [lidar]; weights %v", got, lastOut.Weights)
	}
}

// After an attack ends, the ε floor lets the engine recover the clean
// hypothesis (scenario #10's S…→1 transition).
func TestEngineRecoversAfterAttackEnds(t *testing.T) {
	rig := newTestRig(14)
	eng := buildEngine(t, rig)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.1)

	refAt := func(k int) string {
		readings := rig.readings(xTrue)
		if k >= 20 && k < 60 {
			readings["lidar"] = mat.NewVec(4) // DoS window
		}
		out, err := eng.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		return out.SelectedMode.ReferenceNames[0]
	}

	var duringAttack, afterAttack string
	for k := 0; k < 120; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		ref := refAt(k)
		if k == 55 {
			duringAttack = ref
		}
		if k == 119 {
			afterAttack = ref
		}
	}
	if duringAttack == "lidar" {
		t.Fatal("lidar stayed reference during its DoS")
	}
	// After recovery every mode is plausible again; what matters is that
	// the lidar-reference mode is usable and the engine keeps running.
	if afterAttack == "" {
		t.Fatal("engine stopped after attack window")
	}
}

func TestEngineErrors(t *testing.T) {
	rig := newTestRig(15)
	x0 := mat.VecOf(0.8, 0.8, 0.2)
	p0 := mat.Diag(1e-6, 1e-6, 1e-6)

	if _, err := NewEngine(rig.plant, nil, x0, p0, DefaultEngineConfig()); !errors.Is(err, ErrNoModes) {
		t.Fatalf("err = %v, want ErrNoModes", err)
	}
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, rig.model.WheelSpeeds(0.1, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(rig.plant, modes, mat.VecOf(1, 2), p0, DefaultEngineConfig()); err == nil {
		t.Fatal("wrong-size x0 accepted")
	}

	eng, err := NewEngine(rig.plant, modes, x0, p0, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With every reading missing, every mode fails its iteration and the
	// bank has nothing to select (per-sensor drops degrade gracefully —
	// see TestEngineStepMissingReadingDegradesBank).
	if _, err := eng.Step(rig.model.WheelSpeeds(0.1, 0), map[string]mat.Vec{}); !errors.Is(err, ErrAllModesFailed) {
		t.Fatalf("err = %v, want ErrAllModesFailed", err)
	}
}

func TestEngineWeightsNormalized(t *testing.T) {
	rig := newTestRig(16)
	eng := buildEngine(t, rig)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.1, 0)
	for k := 0; k < 20; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		out, err := eng.Step(u, rig.readings(xTrue))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, w := range out.Weights {
			if w < 0 {
				t.Fatalf("negative weight %v", w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}
