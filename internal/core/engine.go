package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"roboads/internal/mat"
	"roboads/internal/stat"
)

// EngineConfig tunes the multi-mode estimation engine.
type EngineConfig struct {
	// Epsilon is the mode-weight floor of Algorithm 1 line 6
	// (μ ← max(N·μ, ε)). It keeps dismissed modes recoverable, enabling
	// transitions like scenario #10's S0→3→5→1 when an attack ends.
	Epsilon float64
	// WeightByDensity switches the weight update to the paper-literal
	// Gaussian density N_k instead of the innovation p-value. Raw
	// densities are not comparable across modes whose reference blocks
	// have different dimensions or noise scales (a fine-grained
	// reference dominates regardless of consistency), so the default is
	// the p-value; this flag exists for the ablation benchmark.
	WeightByDensity bool
	// AttackPrior folds testing-sensor evidence into the mode weight:
	// each testing sensor contributes max(pvalue(d̂s_t), AttackPrior).
	// Under a wrong hypothesis the corrupted reference drags the shared
	// state, so *several* testing sensors appear corrupted at once and
	// the mode pays the prior once per sensor; the true hypothesis pays
	// it only for sensors actually under attack. This encodes the
	// paper's §II-B assumption that simultaneous corruption of many
	// workflows is unlikely, and breaks the post-absorption symmetry
	// between hypotheses that the reference innovation alone cannot
	// distinguish. Zero disables the term (paper-literal weighting);
	// it is also skipped when WeightByDensity is set.
	AttackPrior float64
	// ActuatorPrior is the actuator-side analog: the mode weight is
	// multiplied by max(pvalue(d̂a), ActuatorPrior). A mode whose
	// reference sensor is corrupted along the control-Jacobian span
	// re-absorbs the corruption as a *persistent* phantom actuator
	// anomaly; charging that hypothesis the actuator prior each
	// iteration gives the true mode an exponential advantage. When a
	// real actuator attack is active every mode estimates it, so the
	// factor cancels across modes and costs nothing. Zero disables.
	ActuatorPrior float64
	// ResyncWeight is the normalized-weight level at or below which a
	// mode's private state is re-synchronized from the consensus each
	// iteration (see Engine.Step). It must sit above Epsilon so that
	// floor-pinned modes stay synced.
	ResyncWeight float64
	// Workers bounds the goroutines that fan the mode bank out each
	// Step. 0 (the default) resolves to runtime.GOMAXPROCS(0); 1 or any
	// negative value runs the bank on the calling goroutine (the
	// sequential path). The pool is created once per engine and reused
	// across iterations, and is capped at the mode count. Parallel
	// output is bit-for-bit identical to sequential: each mode's NUISE
	// depends only on that mode's own state, results are gathered by
	// mode index, and every downstream loop iterates in fixed mode
	// order, so scheduling cannot influence a single float.
	Workers int
	// Observer receives instrumentation events (per-Step wall time,
	// per-mode latency, pool queue wait, dropped readings, weight-floor
	// hits, mode switches). Nil disables instrumentation entirely: the
	// hot path then pays one nil check per site and takes no timestamps.
	// Observation is read-only and cannot perturb engine output; see the
	// Observer contract.
	Observer Observer
}

// DefaultEngineConfig returns the configuration used by the experiments.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Epsilon:       1e-9,
		AttackPrior:   0.05,
		ActuatorPrior: 0.05,
		ResyncWeight:  1e-6,
	}
}

// Engine is the multi-mode estimation engine of §IV-B: a bank of NUISE
// estimators, one per sensor-condition hypothesis, with likelihood-based
// mode selection (Algorithm 1 lines 4–9).
type Engine struct {
	plant   Plant
	modes   []*Mode
	weights []float64
	// x, px hold the consensus belief (the selected mode's posterior).
	x  mat.Vec
	px *mat.Mat
	// xm, pxm hold each mode's private belief. Running the bank on
	// per-mode states (rather than the paper's shared state) prevents a
	// corrupted-reference mode that happens to be selected at attack
	// onset from absorbing the corruption into everyone's prior and
	// permanently handicapping the clean hypotheses; see Step.
	xm  []mat.Vec
	pxm []*mat.Mat

	cfg      EngineConfig
	k        int
	selected int

	// pool fans Step's per-mode NUISE runs out when cfg.Workers resolves
	// to more than one; nil engines step sequentially. scratch holds one
	// matrix arena per mode — a mode is exactly one job per Step, so
	// per-mode ownership makes arena reuse race-free by construction and
	// keeps each arena's shape sequence stable across iterations.
	pool    *workerPool
	scratch []*mat.Scratch

	// spd caches Cholesky factors of the covariances tested during one
	// Step's weight update (per-sensor anomaly blocks, Pa), so the
	// decision layer — handed the same cache via Output.SPD — never
	// refactors a covariance the engine already factored. Reset at the
	// top of every Step; touched only on the calling goroutine (the
	// weight update runs after the bank gather), so the parallel bank
	// never sees it.
	spd *mat.CholCache

	// commitNext is commit's reused weight-update scratch (the
	// un-normalized next weights); evCovs holds one reusable d×d scratch
	// matrix per (mode, testing sensor) that the evidence terms factor
	// block copies through — distinct pointers per slot, so the per-step
	// SPD cache never confuses two blocks. Both are sized lazily on the
	// first Step.
	commitNext []float64
	evCovs     [][]*mat.Mat

	// obs is EngineConfig.Observer; nil when instrumentation is off.
	// sensorNames is the union of every mode's reference and testing
	// workflow names, precomputed so the dropped-reading check is one
	// map lookup per sensor per Step. stats is the reused StepStats
	// record handed to the observer (borrowed, never retained).
	obs         Observer
	sensorNames []string
	stats       StepStats
}

// Output is one control iteration's engine result.
type Output struct {
	// Iteration is the control iteration index k.
	Iteration int
	// Selected is the index of the highest-weight mode M_k.
	Selected int
	// SelectedMode is modes[Selected].
	SelectedMode *Mode
	// Weights are the normalized mode weights μ.
	Weights []float64
	// PerMode holds each mode's NUISE result (nil where the mode failed
	// this iteration, e.g. transient ill-conditioning).
	PerMode []*Result
	// Result is the selected mode's NUISE result.
	Result *Result
	// SensorAnomalies is the per-testing-sensor split of the selected
	// mode's d̂s.
	SensorAnomalies []SensorAnomaly
	// SPD caches Cholesky factorizations of the covariances in this
	// output (per-sensor Ps blocks, Pa). The decision layer reuses it so
	// each covariance is factored at most once per control iteration.
	// The cache is owned by the engine and reset on its next Step (stale
	// use is safe but recomputes); it is not safe for concurrent use.
	SPD *mat.CholCache
}

// NewEngine builds an engine with the given hypothesis set and initial
// state belief x0 ~ N(x0, p0). Mode weights start uniform.
func NewEngine(plant Plant, modes []*Mode, x0 mat.Vec, p0 *mat.Mat, cfg EngineConfig) (*Engine, error) {
	if err := plant.Validate(); err != nil {
		return nil, err
	}
	if len(modes) == 0 {
		return nil, ErrNoModes
	}
	n := plant.Model.StateDim()
	if len(x0) != n || p0.Rows() != n || p0.Cols() != n {
		return nil, fmt.Errorf("core: initial belief must be %d-dimensional", n)
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultEngineConfig().Epsilon
	}
	weights := make([]float64, len(modes))
	xm := make([]mat.Vec, len(modes))
	pxm := make([]*mat.Mat, len(modes))
	for i := range weights {
		weights[i] = 1 / float64(len(modes))
		xm[i] = x0.Clone()
		pxm[i] = p0.Clone()
	}
	scratch := make([]*mat.Scratch, len(modes))
	for i := range scratch {
		scratch[i] = mat.NewScratch()
	}
	e := &Engine{
		plant:   plant,
		modes:   append([]*Mode(nil), modes...),
		weights: weights,
		x:       x0.Clone(),
		px:      p0.Clone(),
		xm:      xm,
		pxm:     pxm,
		cfg:     cfg,
		scratch: scratch,
		spd:     mat.NewCholCache(),
		obs:     cfg.Observer,
	}
	seen := make(map[string]bool)
	for _, m := range modes {
		for _, name := range m.ReferenceNames {
			if !seen[name] {
				seen[name] = true
				e.sensorNames = append(e.sensorNames, name)
			}
		}
		for _, name := range m.testingNames {
			if !seen[name] {
				seen[name] = true
				e.sensorNames = append(e.sensorNames, name)
			}
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(modes) {
		workers = len(modes)
	}
	if workers > 1 {
		e.pool = newWorkerPool(workers)
		// Backstop for engines dropped without Close: the workers hold a
		// reference to the pool only, never the engine, so the engine
		// stays collectable and the finalizer releases the goroutines.
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Close releases the engine's worker-pool goroutines. It is safe to call
// more than once and on sequential engines, and the engine must not be
// stepped afterwards. Engines that are simply dropped are cleaned up by
// a finalizer, but deterministic shutdown should call Close.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		runtime.SetFinalizer(e, nil)
	}
}

// Modes returns the engine's hypothesis set.
func (e *Engine) Modes() []*Mode {
	return append([]*Mode(nil), e.modes...)
}

// State returns the current fused state estimate and covariance.
func (e *Engine) State() (mat.Vec, *mat.Mat) {
	return e.x.Clone(), e.px.Clone()
}

// ErrAllModesFailed indicates every NUISE instance errored in one
// iteration, leaving the engine without a state update.
var ErrAllModesFailed = errors.New("core: all modes failed")

// Step runs one control iteration (Algorithm 1 lines 2–9): the bank of
// per-mode NUISE runs — fanned out over the worker pool when
// EngineConfig.Workers resolves above one, on the calling goroutine
// otherwise — followed by the weight update with floor ε, normalization,
// and mode selection. readings maps each sensing workflow name to its
// (possibly corrupted) reading z_k. A reading missing from the map (a
// dropped sensor packet) degrades only the modes that depend on that
// sensor — a mode loses the iteration when its reference is incomplete,
// and runs reference-only (no d̂s) when only its testing block is — it
// never sinks the whole bank.
func (e *Engine) Step(u mat.Vec, readings map[string]mat.Vec) (*Output, error) {
	return e.StepContext(context.Background(), u, readings)
}

// StepContext is Step with cancellation: when ctx is cancelled the
// iteration is abandoned and ctx.Err() returned. Cancellation is
// all-or-nothing — per-mode results are gathered before any engine state
// is committed, so an aborted StepContext leaves the weights, the mode
// beliefs, and the iteration counter exactly as they were and the next
// (Step or StepContext) call continues the mission bit-for-bit as if the
// cancelled call never happened. A ctx without a Done channel
// (context.Background, context.TODO) takes the identical code path as
// Step, so the two entry points are pinned to the same outputs by the
// determinism tests.
func (e *Engine) StepContext(ctx context.Context, u mat.Vec, readings map[string]mat.Vec) (*Output, error) {
	// cancellable gates every ctx check: the Done channel is nil for
	// background contexts, keeping the plain-Step hot path free of
	// ctx.Err() calls (the BenchmarkEngineStep regression gate pins it).
	cancellable := ctx.Done() != nil
	if cancellable && ctx.Err() != nil {
		return nil, ctx.Err()
	}

	// Instrumentation preamble: only when an observer is attached does
	// the step take timestamps or sample the fallback counter. The
	// obs == nil path must stay branch-predictable and timestamp-free —
	// it is pinned by the BenchmarkEngineStep regression gate.
	obs := e.obs
	var stepStart time.Time
	var fallbacks0 int64
	if obs != nil {
		stepStart = time.Now()
		fallbacks0 = JacobiFallbacks()
		for _, name := range e.sensorNames {
			if _, ok := readings[name]; !ok {
				obs.DroppedReading(name)
			}
		}
	}

	perMode := make([]*Result, len(e.modes))
	if e.pool == nil {
		if obs == nil {
			for i := range e.modes {
				if cancellable && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				e.stepMode(i, u, readings, perMode)
			}
		} else {
			for i := range e.modes {
				if cancellable && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				modeStart := time.Now()
				e.stepMode(i, u, readings, perMode)
				obs.ModeStep(i, e.modes[i].Name, time.Since(modeStart).Nanoseconds(), perMode[i] != nil)
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(e.modes))
		for i := range e.modes {
			i := i
			if obs == nil {
				e.pool.submit(func() {
					defer wg.Done()
					// A cancelled fan-out still gathers every submitted
					// job (the WaitGroup below), but queued jobs observe
					// the cancellation here and skip their NUISE run, so
					// an expensive bank drains in microseconds.
					if cancellable && ctx.Err() != nil {
						return
					}
					e.stepMode(i, u, readings, perMode)
				})
			} else {
				submitted := time.Now()
				e.pool.submit(func() {
					defer wg.Done()
					if cancellable && ctx.Err() != nil {
						return
					}
					started := time.Now()
					obs.PoolWait(started.Sub(submitted).Nanoseconds())
					e.stepMode(i, u, readings, perMode)
					obs.ModeStep(i, e.modes[i].Name, time.Since(started).Nanoseconds(), perMode[i] != nil)
				})
			}
		}
		wg.Wait()
	}
	if cancellable && ctx.Err() != nil {
		// Nothing has been committed: perMode and the scratch arenas are
		// the only things touched, and both are per-call / shape-stable.
		return nil, ctx.Err()
	}

	return e.commit(perMode, stepStart, fallbacks0)
}

// commit is the serial tail of a step — belief commit, weight update,
// selection, resync, output assembly — shared verbatim by the scalar
// path above and the batched path (EngineBatch): both gather a full
// perMode slice and then run this identical code, which is half of the
// batched path's bit-for-bit guarantee. It runs after the gather (not
// inside stepMode) so that a cancelled StepContext aborts with no
// partial per-mode state written. stepStart and fallbacks0 carry the
// caller's instrumentation preamble and are read only when an observer
// is attached.
func (e *Engine) commit(perMode []*Result, stepStart time.Time, fallbacks0 int64) (*Output, error) {
	obs := e.obs

	// Commit each surviving mode's private belief. The belief buffers are
	// engine-private (the constructor clones them in, ExportState and
	// State clone them out), so the copies land in place — value-identical
	// to the Clones they replace, without the per-step allocations.
	for i, res := range perMode {
		if res != nil {
			copy(e.xm[i], res.X)
			mat.CopyInto(e.pxm[i], res.Px)
		}
	}

	// Weight update μ ← N·μ, normalize, then floor at ε and renormalize
	// (Algorithm 1 lines 6 and 8). Flooring after normalization keeps
	// the floor from erasing relative mode history: likelihood weights
	// below 1 (p-values always are) would otherwise drag every mode to
	// ε within tens of iterations and reset the bank each step.
	e.spd.Reset()
	if e.commitNext == nil {
		e.commitNext = make([]float64, len(e.weights))
		e.evCovs = make([][]*mat.Mat, len(e.modes))
		for i, m := range e.modes {
			for _, s := range m.Testing {
				e.evCovs[i] = append(e.evCovs[i], mat.New(s.Dim(), s.Dim()))
			}
		}
	}
	next := e.commitNext
	var sum float64
	for i := range e.weights {
		likelihood := 0.0
		if perMode[i] != nil && !perMode[i].Implausible {
			if e.cfg.WeightByDensity {
				likelihood = perMode[i].Likelihood
			} else {
				likelihood = perMode[i].PValue * e.testingEvidence(i, perMode[i])
			}
		}
		next[i] = e.weights[i] * likelihood
		sum += next[i]
	}
	floorHits := 0
	if sum > 0 {
		var floored float64
		for i := range next {
			next[i] /= sum
			if next[i] < e.cfg.Epsilon {
				next[i] = e.cfg.Epsilon
				floorHits++
			}
			floored += next[i]
		}
		for i := range next {
			next[i] /= floored
		}
		copy(e.weights, next)
	}
	// sum == 0 (every mode collapsed this iteration) carries the
	// previous weights forward unchanged: no information this round.

	// Mode selection: argmax normalized weight among surviving modes,
	// with hysteresis — ties keep the previously selected mode. Without
	// it, a transient that floors every weight (e.g. a LiDAR beam
	// crossing a wall-assignment discontinuity) would hand the engine to
	// an arbitrary mode, and a corrupted-reference mode picked that way
	// absorbs the corruption into the shared state and never loses again.
	usable := func(i int) bool { return perMode[i] != nil && !perMode[i].Implausible }
	selected := -1
	best := -1.0
	if e.selected < len(perMode) && usable(e.selected) {
		selected, best = e.selected, e.weights[e.selected]
	}
	for i, w := range e.weights {
		if usable(i) && w > best {
			selected, best = i, w
		}
	}
	if selected < 0 {
		// Every mode is implausible this iteration (e.g. a violent
		// transient): fall back to any mode that at least computed, so
		// the engine keeps a state estimate.
		for i, w := range e.weights {
			if perMode[i] != nil && w > best {
				selected, best = i, w
			}
		}
	}
	if selected < 0 {
		return nil, ErrAllModesFailed
	}
	switched := e.k > 0 && selected != e.selected
	e.selected = selected

	// The selected mode's posterior is the consensus estimate
	// (Algorithm 1 line 9).
	res := perMode[selected]
	copy(e.x, res.X)
	mat.CopyInto(e.px, res.Px)

	// Re-synchronize rejected hypotheses from the consensus: a mode whose
	// weight has collapsed (or whose step failed) restarts from the
	// selected mode's belief. A corrupted-reference mode therefore keeps
	// paying the corruption cost against the consensus frame every
	// iteration instead of drifting into a self-consistent biased frame,
	// and a mode whose sensor recovers from an attack (scenario #10's
	// S…→1 transition) re-enters from a sane state.
	for i := range e.modes {
		if i == selected {
			continue
		}
		if perMode[i] == nil || e.weights[i] <= e.cfg.ResyncWeight {
			copy(e.xm[i], e.x)
			mat.CopyInto(e.pxm[i], e.px)
		}
	}

	out := &Output{
		Iteration:    e.k,
		Selected:     selected,
		SelectedMode: e.modes[selected],
		Weights:      append([]float64(nil), e.weights...),
		PerMode:      perMode,
		Result:       res,
		SPD:          e.spd,
	}
	if res.Ds != nil {
		// Only the selected mode's split is materialized (it escapes into
		// the Output); the weight update's evidence terms factored scratch
		// copies of the same block values, so the decision layer's tests
		// on these fresh copies agree bit-for-bit — the factorization is a
		// pure function of the block values.
		out.SensorAnomalies = e.modes[selected].SplitDs(res.Ds, res.Ps)
	}
	if obs != nil {
		failed := 0
		for _, r := range perMode {
			if r == nil {
				failed++
			}
		}
		e.stats = StepStats{
			Iteration:       e.k,
			WallNanos:       time.Since(stepStart).Nanoseconds(),
			Selected:        selected,
			SelectedName:    e.modes[selected].Name,
			Switched:        switched,
			FloorHits:       floorHits,
			ModesFailed:     failed,
			JacobiFallbacks: JacobiFallbacks() - fallbacks0,
			Weights:         e.weights,
			PValue:          res.PValue,
			Likelihood:      res.Likelihood,
		}
		obs.EngineStep(&e.stats)
	}
	e.k++
	return out, nil
}

// stepMode runs mode i's NUISE for this iteration. It writes only index
// i of perMode — disjoint slots per mode — so the bank fans out without
// locks; the mode's private belief (e.xm, e.pxm) is read here but
// committed serially after the gather, so an aborted StepContext leaves
// it untouched. Failure semantics mirror the weight floor: a missing
// reference reading or a NUISE error leaves perMode[i] nil (the mode
// sits out this iteration and takes the floor), while a missing testing
// reading degrades the mode to a reference-only update (no d̂s) rather
// than failing it.
func (e *Engine) stepMode(i int, u mat.Vec, readings map[string]mat.Vec, perMode []*Result) {
	m := e.modes[i]
	z2, err := stackReadings(readings, m.ReferenceNames)
	if err != nil {
		return
	}
	testing := m.testingStacked
	var z1 mat.Vec
	if testing != nil {
		if z1, err = stackReadings(readings, m.testingNames); err != nil {
			testing, z1 = nil, nil
		}
	}
	res, err := NUISEScratch(e.plant, m.Reference, testing, u, e.xm[i], e.pxm[i], z1, z2, e.scratch[i])
	if err != nil {
		return
	}
	perMode[i] = res
}

// testingEvidence returns Π_t max(pvalue(d̂s_t), AttackPrior) over mode
// i's testing sensors, times max(pvalue(d̂a), ActuatorPrior) (see
// EngineConfig.AttackPrior and ActuatorPrior). Each per-sensor term
// factors a block copy of Ps held in the engine's per-slot scratch —
// value-identical to the Submatrix the decision layer tests, without
// materializing a SensorAnomaly split for modes that won't be selected.
func (e *Engine) testingEvidence(i int, res *Result) float64 {
	evidence := 1.0
	if e.cfg.AttackPrior > 0 && res.Ds != nil {
		off := 0
		for j, s := range e.modes[i].Testing {
			d := s.Dim()
			cov := res.Ps.SubmatrixInto(e.evCovs[i][j], off, off)
			evidence *= flooredPValue(e.spd, cov, res.Ds[off:off+d], e.cfg.AttackPrior)
			off += d
		}
	}
	if e.cfg.ActuatorPrior > 0 && res.Da != nil {
		evidence *= flooredPValue(e.spd, res.Pa, res.Da, e.cfg.ActuatorPrior)
	}
	return evidence
}

// flooredPValue returns max(P(χ²_n > vᵀcov⁻¹v), floor), degrading to the
// floor when the covariance is singular. The quad form goes through the
// SPD factor cache: covariances tested again later in the iteration
// (e.g. by the decision maker) reuse the factor.
func flooredPValue(spd *mat.CholCache, cov *mat.Mat, v mat.Vec, floor float64) float64 {
	pv := 0.0
	if quad, err := spd.InvQuadForm(cov, v); err == nil && quad >= 0 {
		if cdf, err := stat.ChiSquareCDF(quad, v.Len()); err == nil {
			pv = 1 - cdf
		}
	}
	if pv < floor {
		pv = floor
	}
	return pv
}

func stackReadings(readings map[string]mat.Vec, names []string) (mat.Vec, error) {
	var out mat.Vec
	for _, name := range names {
		z, ok := readings[name]
		if !ok {
			return nil, fmt.Errorf("core: missing reading for sensor %q", name)
		}
		out = append(out, z...)
	}
	return out, nil
}
