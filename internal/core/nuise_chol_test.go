package core

import (
	"math"
	"sync/atomic"
	"testing"

	"roboads/internal/mat"
	"roboads/internal/sensors"
)

// withJacobiLikelihood runs f with the Cholesky fast path disabled, so
// every NUISE step inside takes the historical PseudoInverseSym route.
func withJacobiLikelihood(f func()) {
	forceJacobiLikelihood = true
	defer func() { forceJacobiLikelihood = false }()
	f()
}

func relVecDiff(a, b mat.Vec) float64 {
	scale := math.Max(1, math.Max(a.MaxAbs(), b.MaxAbs()))
	return a.Sub(b).MaxAbs() / scale
}

func relMatDiff(a, b *mat.Mat) float64 {
	scale := math.Max(1, math.Max(a.MaxAbs(), b.MaxAbs()))
	return a.Sub(b).MaxAbs() / scale
}

// TestNUISECholAgreesWithJacobi proves the deflated Cholesky fast path
// and the historical PseudoInverseSym path compute the same step: state,
// anomaly estimates, and covariances to 1e-9 relative, and — what the
// engine's weight update actually consumes — the likelihood *ratios*
// across modes to the same tolerance.
func TestNUISECholAgreesWithJacobi(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rig := newTestRig(seed)
		xTrue := mat.VecOf(
			0.5+3*rig.rng.Float64(),
			0.5+3*rig.rng.Float64(),
			2*math.Pi*rig.rng.Float64()-math.Pi,
		)
		xEst := xTrue.Add(rig.rng.GaussianVec(mat.VecOf(0.01, 0.01, 0.02)))
		px := mat.Diag(1e-4, 1e-4, 1e-4)
		u := rig.model.WheelSpeeds(0.05+0.1*rig.rng.Float64(), 0.05+0.1*rig.rng.Float64())
		xNext := rig.plant.wrapState(rig.model.F(xTrue, u)).Add(rig.processNoise())

		// Two mode hypotheses: the likelihood ratio between them drives
		// the engine's weight update.
		type modeDef struct {
			ref     sensors.Sensor
			testing sensors.Sensor
		}
		testA, err := sensors.NewStacked(rig.we, rig.lidar)
		if err != nil {
			t.Fatal(err)
		}
		testB, err := sensors.NewStacked(rig.ips, rig.lidar)
		if err != nil {
			t.Fatal(err)
		}
		modes := []modeDef{{rig.ips, testA}, {rig.we, testB}}

		fast := make([]*Result, len(modes))
		slow := make([]*Result, len(modes))
		for i, m := range modes {
			z2 := rig.measure(m.ref, xNext)
			z1 := rig.measure(m.testing, xNext)
			r, err := NUISE(rig.plant, m.ref, m.testing, u, xEst, px, z1, z2)
			if err != nil {
				t.Fatalf("seed %d mode %d fast path: %v", seed, i, err)
			}
			fast[i] = r
			withJacobiLikelihood(func() {
				r, err = NUISE(rig.plant, m.ref, m.testing, u, xEst, px, z1, z2)
			})
			if err != nil {
				t.Fatalf("seed %d mode %d jacobi path: %v", seed, i, err)
			}
			slow[i] = r
		}

		const tol = 1e-9
		for i := range modes {
			f, s := fast[i], slow[i]
			if !f.DaValid || !s.DaValid {
				t.Fatalf("seed %d mode %d: DaValid fast=%v jacobi=%v", seed, i, f.DaValid, s.DaValid)
			}
			if d := relVecDiff(f.X, s.X); d > tol {
				t.Errorf("seed %d mode %d: state diff %g", seed, i, d)
			}
			if d := relVecDiff(f.Da, s.Da); d > tol {
				t.Errorf("seed %d mode %d: d̂a diff %g", seed, i, d)
			}
			if d := relVecDiff(f.Ds, s.Ds); d > tol {
				t.Errorf("seed %d mode %d: d̂s diff %g", seed, i, d)
			}
			if d := relMatDiff(f.Px, s.Px); d > tol {
				t.Errorf("seed %d mode %d: Px diff %g", seed, i, d)
			}
			if d := relMatDiff(f.Ps, s.Ps); d > tol {
				t.Errorf("seed %d mode %d: Ps diff %g", seed, i, d)
			}
			if math.Abs(f.PValue-s.PValue) > tol {
				t.Errorf("seed %d mode %d: p-value diff %g", seed, i, math.Abs(f.PValue-s.PValue))
			}
		}
		// Likelihood ratios across the two hypotheses.
		if slow[1].Likelihood > 0 && fast[1].Likelihood > 0 {
			rf := fast[0].Likelihood / fast[1].Likelihood
			rs := slow[0].Likelihood / slow[1].Likelihood
			if math.Abs(rf-rs) > tol*math.Max(1, math.Abs(rs)) {
				t.Errorf("seed %d: likelihood ratio fast=%g jacobi=%g", seed, rf, rs)
			}
		}
	}
}

// dupRefSensor is a reference whose fourth reading duplicates the first
// with configurable extra noise. Even at dupNoise = 0 its deflated
// innovation core stays positive definite: the projection step makes
// Zᵀ·R̃2·Z = Zᵀ·R*·Z for any Z spanning range(C2·G)ᗮ, and R* here is PD
// (the duplicated direction still carries the first row's own noise).
// It therefore exercises the deflated Cholesky path at the *structural*
// rank p2−q with no fallback — the control case below.
type dupRefSensor struct{ dupNoise float64 }

func (s *dupRefSensor) Name() string { return "dupref" }
func (s *dupRefSensor) Dim() int     { return 4 }
func (s *dupRefSensor) H(x mat.Vec) mat.Vec {
	return mat.VecOf(x[0], x[1], x[2], x[0])
}
func (s *dupRefSensor) C(x mat.Vec) *mat.Mat {
	c := mat.New(4, 3)
	c.Set(0, 0, 1)
	c.Set(1, 1, 1)
	c.Set(2, 2, 1)
	c.Set(3, 0, 1)
	return c
}
func (s *dupRefSensor) R() *mat.Mat {
	return mat.Diag(1e-4, 1e-4, 1e-4, s.dupNoise)
}
func (s *dupRefSensor) AngleIndices() []int { return []int{2} }

// xplusRefSensor reads exactly q = 2 components, (x+θ, y), chosen so
// C2·G is invertible (daValid) while p2 = q leaves the residual
// projector I − C2·G·M2 with nothing: R̃2 is structurally rank zero and
// the deflated subspace is empty, the one rank-deficiency class the
// Cholesky fast path cannot serve. NUISE must route such steps to the
// PseudoInverseSym fallback, deterministically.
type xplusRefSensor struct{}

func (xplusRefSensor) Name() string { return "xplus" }
func (xplusRefSensor) Dim() int     { return 2 }
func (xplusRefSensor) H(x mat.Vec) mat.Vec {
	return mat.VecOf(x[0]+x[2], x[1])
}
func (xplusRefSensor) C(x mat.Vec) *mat.Mat {
	c := mat.New(2, 3)
	c.Set(0, 0, 1)
	c.Set(0, 2, 1)
	c.Set(1, 1, 1)
	return c
}
func (xplusRefSensor) R() *mat.Mat         { return mat.Diag(1e-4, 1e-4) }
func (xplusRefSensor) AngleIndices() []int { return nil }

func TestNUISEJacobiFallbackEngagesOnRankDeficientR2(t *testing.T) {
	rig := newTestRig(7)
	x := mat.VecOf(1, 1, 0.3)
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	u := rig.model.WheelSpeeds(0.12, 0.1)
	xNext := rig.model.F(x, u)

	run := func(ref sensors.Sensor) (*Result, int64) {
		z2 := ref.H(xNext)
		before := atomic.LoadInt64(&nuiseJacobiFallbacks)
		res, err := NUISE(rig.plant, ref, nil, u, x, px, nil, z2)
		if err != nil {
			t.Fatal(err)
		}
		return res, atomic.LoadInt64(&nuiseJacobiFallbacks) - before
	}

	// p2 == q: the deflated subspace is empty, so the fallback must engage.
	res, fallbacks := run(xplusRefSensor{})
	if fallbacks != 1 {
		t.Fatalf("rank-zero R̃2 took the fast path (%d fallbacks)", fallbacks)
	}
	if !res.DaValid {
		t.Fatal("actuator anomaly should be observable from the x+θ reference")
	}
	// And it must produce exactly the historical result: same code path
	// as forcing the Jacobi route.
	var forced *Result
	withJacobiLikelihood(func() {
		forced, _ = run(xplusRefSensor{})
	})
	if relVecDiff(res.X, forced.X) != 0 || res.Likelihood != forced.Likelihood {
		t.Fatal("fallback result differs from the forced Jacobi result")
	}

	// Control: a structurally deficient R̃2 (rank p2−q = 1 of 4) whose
	// deflated core is PD — even with a zero-noise duplicated row — must
	// stay on the deflated Cholesky path.
	for _, dupNoise := range []float64{0, 1e-4} {
		if _, fallbacks := run(&dupRefSensor{dupNoise: dupNoise}); fallbacks != 0 {
			t.Fatalf("structural-rank R̃2 (dupNoise=%g) fell back %d times", dupNoise, fallbacks)
		}
	}
}
