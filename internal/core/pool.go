package core

import "sync"

// workerPool is a fixed set of goroutines draining a job channel. The
// engine creates one pool at construction and reuses it every Step, so
// fan-out costs one channel send per mode instead of one goroutine spawn.
// Closing the pool (Engine.Close) lets the workers exit; a pool is never
// reopened.
type workerPool struct {
	jobs      chan func()
	closeOnce sync.Once
}

// newWorkerPool starts workers goroutines waiting for jobs.
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{jobs: make(chan func())}
	for i := 0; i < workers; i++ {
		go func() {
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit hands a job to an idle worker, blocking until one picks it up.
// The caller is responsible for its own completion tracking (the engine
// uses a per-Step WaitGroup).
func (p *workerPool) submit(job func()) { p.jobs <- job }

// close releases the workers. Idempotent.
func (p *workerPool) close() { p.closeOnce.Do(func() { close(p.jobs) }) }
