package core

import (
	"math"
	"testing"

	"roboads/internal/mat"
	"roboads/internal/sensors"
)

// Engine configuration paths not covered by the behavioral tests.

func TestEngineWeightByDensity(t *testing.T) {
	rig := newTestRig(31)
	x0 := mat.VecOf(1, 1, 0.2)
	u := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEngineConfig()
	cfg.WeightByDensity = true
	eng, err := NewEngine(rig.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := x0.Clone()
	for k := 0; k < 20; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		out, err := eng.Step(u, rig.readings(xTrue))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var sum float64
		for _, w := range out.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum = %v", sum)
		}
	}
}

func TestEngineEpsilonDefaulting(t *testing.T) {
	rig := newTestRig(32)
	x0 := mat.VecOf(1, 1, 0.2)
	u := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u, false)
	if err != nil {
		t.Fatal(err)
	}
	// Zero epsilon must default rather than divide by zero later.
	eng, err := NewEngine(rig.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	xTrue := x0.Clone()
	for k := 0; k < 5; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		if _, err := eng.Step(u, rig.readings(xTrue)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineStateAndModesAccessors(t *testing.T) {
	rig := newTestRig(33)
	x0 := mat.VecOf(1, 1, 0.2)
	u := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(rig.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Modes()
	if len(got) != 3 {
		t.Fatalf("Modes = %d", len(got))
	}
	// Returned slice must be a copy.
	got[0] = nil
	if eng.Modes()[0] == nil {
		t.Fatal("Modes aliases internal slice")
	}
	x, px := eng.State()
	if x.Sub(x0).MaxAbs() != 0 {
		t.Fatalf("State = %v", x)
	}
	x[0] = 99
	px.Set(0, 0, 99)
	x2, px2 := eng.State()
	if x2[0] == 99 || px2.At(0, 0) == 99 {
		t.Fatal("State aliases internal belief")
	}
}

// UMax gating: a mode whose reference implies an impossible executed
// command must be reported Implausible and lose selection.
func TestEngineImplausibleModeGated(t *testing.T) {
	rig := newTestRig(34)
	rig.plant.UMax = mat.VecOf(0.8, 0.8)
	x0 := mat.VecOf(1, 1, 0.0)
	u := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(rig.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	xTrue := x0.Clone()
	// Warm up clean.
	for k := 0; k < 10; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		if _, err := eng.Step(u, rig.readings(xTrue)); err != nil {
			t.Fatal(err)
		}
	}
	// Inject a giant forward IPS jump: the ref=ips mode would need a
	// >1 m/s phantom wheel speed to absorb it → gated.
	xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
	readings := rig.readings(xTrue)
	readings["ips"] = readings["ips"].Add(mat.VecOf(0.15, 0, 0))
	out, err := eng.Step(u, readings)
	if err != nil {
		t.Fatal(err)
	}
	var ipsIdx = -1
	for i, m := range eng.Modes() {
		if len(m.ReferenceNames) == 1 && m.ReferenceNames[0] == "ips" {
			ipsIdx = i
		}
	}
	if ipsIdx < 0 {
		t.Fatal("no ips mode")
	}
	if res := out.PerMode[ipsIdx]; res == nil || !res.Implausible {
		t.Fatalf("ips mode not gated: %+v", res)
	}
	if out.Selected == ipsIdx {
		t.Fatal("implausible mode selected")
	}
}

func TestNewStackedModeNeedsReference(t *testing.T) {
	if _, err := NewMode(nil, nil); err == nil {
		t.Fatal("mode without reference accepted")
	}
}

func TestLeaveOneOutModesValidation(t *testing.T) {
	rig := newTestRig(35)
	x0 := mat.VecOf(1, 1, 0.2)
	u := rig.model.WheelSpeeds(0.1, 0)
	modes, err := LeaveOneOutModes(rig.plant.Model, rig.suite, x0, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 3 {
		t.Fatalf("modes = %d", len(modes))
	}
	for _, m := range modes {
		if len(m.ReferenceNames) != 2 || len(m.Testing) != 1 {
			t.Fatalf("mode %s shape wrong", m.Name)
		}
	}
	if _, err := LeaveOneOutModes(rig.plant.Model, rig.suite[:1], x0, u); err == nil {
		t.Fatal("single-sensor suite accepted")
	}
	// A pair that cannot reconstruct the state must be rejected.
	mags := []sensors.Sensor{
		sensors.NewMagnetometer(3),
		sensors.NewMagnetometer(3),
		rig.ips,
	}
	if _, err := LeaveOneOutModes(rig.plant.Model, mags, x0, u); err == nil {
		t.Fatal("unobservable reference group accepted")
	}
}
