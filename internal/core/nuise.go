// Package core implements the paper's primary contribution: the nonlinear
// unknown input and state estimation algorithm (NUISE, Algorithm 2) and
// the multi-mode estimation engine of §IV-B that runs one NUISE instance
// per sensor-condition hypothesis, selecting the most likely mode each
// control iteration.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
)

// Plant bundles the robot model and noise statistics that every NUISE
// instance linearizes against.
type Plant struct {
	// Model is the kinematic model f of equation (1).
	Model dynamics.Model
	// Q is the process noise covariance (assumed Gaussian, §III-A).
	Q *mat.Mat
	// AngleStates lists state components that are angles and must be
	// wrapped after additive updates (index 2 for both robot models).
	AngleStates []int
	// UMax optionally bounds |u + d̂a| per control component. Executed
	// commands are produced by physical actuators and therefore bounded;
	// a mode whose estimated executed command violates the bound is
	// physically impossible and is reported Implausible, which the
	// engine treats as zero likelihood. This closes the hijack where a
	// corrupted-reference mode absorbs a sensor bias aligned with the
	// direction of travel into an enormous phantom actuator anomaly.
	// Empty or zero entries disable the check.
	UMax mat.Vec
}

// Validate checks the plant dimensions.
func (p Plant) Validate() error {
	if p.Model == nil {
		return errors.New("core: plant has no model")
	}
	n := p.Model.StateDim()
	if p.Q == nil || p.Q.Rows() != n || p.Q.Cols() != n {
		return fmt.Errorf("core: Q must be %dx%d", n, n)
	}
	return nil
}

func (p Plant) wrapState(x mat.Vec) mat.Vec {
	for _, i := range p.AngleStates {
		x[i] = dynamics.NormalizeAngle(x[i])
	}
	return x
}

// Result is the output of one NUISE step for one mode (the per-mode
// quantities of Fig. 3).
type Result struct {
	// X is the state estimate x̂_{k|k}.
	X mat.Vec
	// Px is the state estimation error covariance.
	Px *mat.Mat
	// Da is the actuator anomaly vector estimate d̂a_{k-1}.
	Da mat.Vec
	// Pa is the covariance of Da.
	Pa *mat.Mat
	// Ds is the stacked testing-sensor anomaly vector estimate d̂s_k
	// (empty when the mode has no testing sensors).
	Ds mat.Vec
	// Ps is the covariance of Ds.
	Ps *mat.Mat
	// Likelihood is N_k, the Gaussian density of Algorithm 2 line 20.
	Likelihood float64
	// PValue is P(χ²_n > νᵀ·R̃2†·ν): the probability of an innovation at
	// least this surprising under the mode's hypothesis. Unlike the raw
	// density, it is comparable across modes with different measurement
	// dimensions and noise scales, so the engine weights modes by it
	// (see EngineConfig.WeightByDensity for the paper-literal variant).
	PValue float64
	// Innovation is ν_k = z2 − h2(x̂_{k|k-1}), kept for diagnostics.
	Innovation mat.Vec
	// Implausible reports that the estimated executed command u + d̂a
	// violates the plant's physical actuator bounds (Plant.UMax), so
	// this mode's hypothesis cannot be true this iteration.
	Implausible bool
	// DaValid reports whether the actuator anomaly could be estimated
	// this iteration. It is false when rank(C2·G) < dim(u) — e.g. a
	// bicycle at standstill, where steering has no observable effect —
	// in which case the step degrades to a standard EKF update with
	// d̂a = 0 and an uninformative Pa, and the decision maker skips the
	// actuator test.
	DaValid bool
}

// Estimation failure modes.
var (
	// ErrIllConditioned indicates a covariance inversion failed.
	ErrIllConditioned = errors.New("core: ill-conditioned covariance")
	// ErrDiverged indicates NaN/Inf contamination of the estimates.
	ErrDiverged = errors.New("core: estimator diverged")
)

// NUISE runs one step of Algorithm 2 for a single mode.
//
// Inputs: the planned command u_{k-1}, the previous estimate
// x̂_{k-1|k-1} with covariance Px_{k-1}, the testing-sensor readings z1
// (may be nil when the mode has no testing sensors), and the
// reference-sensor readings z2.
//
// A note on signs: the paper's printed Algorithm 2 is internally
// inconsistent about the cross-covariance between the compensated
// prediction error and the reference measurement noise (lines 11/12/14
// print +C2·G·M2·R2 terms where line 18 prints −). Deriving from
// x̃_{k|k-1} = (I − G·M2·C2)(A·x̃ + ζ) − G·M2·ξ2 gives
// S ≔ E[x̃_{k|k-1}·ξ2ᵀ] = −G·M2·R2; we implement that self-consistent
// version, which reduces to the standard Gillijns–De Moor filter in the
// linear case and matches the paper's line 18 likelihood covariance.
func NUISE(plant Plant, reference, testing sensors.Sensor, u, xPrev mat.Vec, pxPrev *mat.Mat, z1, z2 mat.Vec) (*Result, error) {
	return NUISEScratch(plant, reference, testing, u, xPrev, pxPrev, z1, z2, nil)
}

// NUISEScratch is NUISE with an explicit scratch arena for the ~20 matrix
// temporaries one step builds. Passing the same arena across iterations
// makes the step allocation-free apart from the Result itself (every
// matrix stored in the Result is freshly allocated, never arena-owned,
// so results stay valid after the arena is reused). A nil arena
// allocates a private one, which is equivalent to the plain NUISE call.
//
// Scratch reuse changes where intermediates live but not how they are
// computed: every destination-variant op accumulates in the same element
// order as its allocating counterpart (see internal/mat), so results are
// bit-for-bit identical to the historical allocating implementation.
func NUISEScratch(plant Plant, reference, testing sensors.Sensor, u, xPrev mat.Vec, pxPrev *mat.Mat, z1, z2 mat.Vec, sc *mat.Scratch) (*Result, error) {
	if sc == nil {
		sc = mat.NewScratch()
	}
	sc.Reset()

	model := plant.Model
	n := model.StateDim()
	q := model.ControlDim()

	// Linearize the kinematics at the previous estimate.
	a := model.A(xPrev, u)
	g := model.G(xPrev, u)

	// Uncompensated prediction, and the measurement linearization point.
	xPred0 := plant.wrapState(model.F(xPrev, u))
	c2 := reference.C(xPred0)
	r2 := reference.R()
	p2 := reference.Dim()

	// --- Step 1: actuator anomaly estimation (lines 2–6) ---
	// pTilde = A·Px·Aᵀ + Q
	pTilde := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), a, pxPrev), a)
	mat.AddInto(pTilde, pTilde, plant.Q)
	// rStar = C2·pTilde·C2ᵀ + R2
	rStar := mat.MulTInto(sc.Mat(p2, p2), mat.MulInto(sc.Mat(p2, n), c2, pTilde), c2)
	mat.SymmetrizeInto(rStar, mat.AddInto(rStar, rStar, r2))
	c2g := mat.MulInto(sc.Mat(p2, q), c2, g)
	// R* = C2·P̃·C2ᵀ + R2 is SPD whenever the reference noise is, so the
	// fast path factors it once and solves; never forms R*⁻¹. A
	// factorization failure (degenerate reference) falls back to an LU
	// solve with the historical error semantics.
	var rsInvC2g *mat.Mat // R*⁻¹·C2·G, shared by the Fisher matrix and M2
	rStarChol := sc.Mat(p2, p2)
	if mat.CholFactorInto(rStarChol, rStar) {
		rsInvC2g = mat.CholSolveMatInto(sc.Mat(p2, q), rStarChol, c2g)
	} else {
		solved, err := rStar.SolveMat(c2g)
		if err != nil {
			return nil, fmt.Errorf("%w: R* inversion: %v", ErrIllConditioned, err)
		}
		rsInvC2g = solved
	}
	// fisher = Gᵀ·C2ᵀ·R*⁻¹·C2·G
	fisher := mat.TMulInto(sc.Mat(q, q), c2g, rsInvC2g)
	daValid := fisherConditioned(fisher)
	var m2 *mat.Mat
	var da mat.Vec
	var pa *mat.Mat
	if daValid {
		// m2 = fisher⁻¹·Gᵀ·C2ᵀ·R*⁻¹ = fisher⁻¹·(R*⁻¹·C2·G)ᵀ (q×p2)
		rsInvC2gT := mat.TInto(sc.Mat(q, p2), rsInvC2g)
		fisherChol := sc.Mat(q, q)
		if mat.CholFactorInto(fisherChol, fisher) {
			m2 = mat.CholSolveMatInto(sc.Mat(q, p2), fisherChol, rsInvC2gT)
		} else if solved, err := fisher.SolveMat(rsInvC2gT); err == nil {
			m2 = solved
		} else {
			daValid = false
		}
	}
	if daValid {
		innov0 := sensors.WrapResidual(mat.SubVecInto(sc.Vec(p2), z2, reference.H(xPred0)), reference.AngleIndices())
		da = m2.MulVec(innov0)
		paAcc := mat.MulTInto(sc.Mat(q, q), mat.MulInto(sc.Mat(q, p2), m2, rStar), m2)
		pa = mat.SymmetrizeInto(mat.New(q, q), paAcc)
	} else {
		// rank(C2·G) < dim(u): the actuator anomaly is unobservable from
		// this reference (e.g. steering at standstill). Degrade to a
		// standard EKF step: no compensation, d̂a pinned at zero with an
		// uninformative covariance.
		m2 = sc.Mat(q, p2)
		da = mat.NewVec(q)
		pa = mat.New(q, q)
		for i := 0; i < q; i++ {
			pa.Set(i, i, 1e6)
		}
	}

	// --- Step 2: compensated state prediction (lines 7–10) ---
	uComp := mat.AddVecInto(sc.Vec(len(u)), u, da)
	implausible := false
	if daValid {
		for i, bound := range plant.UMax {
			if bound > 0 && i < uComp.Len() && math.Abs(uComp[i]) > bound {
				implausible = true
			}
		}
	}
	xPred := plant.wrapState(model.F(xPrev, uComp))
	gm2 := mat.MulInto(sc.Mat(n, p2), g, m2)
	// igm = I − G·M2·C2
	igm := mat.IdentityInto(sc.Mat(n, n))
	mat.SubInto(igm, igm, mat.MulInto(sc.Mat(n, n), gm2, c2))
	aBar := mat.MulInto(sc.Mat(n, n), igm, a)
	// qBar = igm·Q·igmᵀ + G·M2·R2·(G·M2)ᵀ
	qBar := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), igm, plant.Q), igm)
	gm2r2 := mat.MulInto(sc.Mat(n, p2), gm2, r2)
	mat.AddInto(qBar, qBar, mat.MulTInto(sc.Mat(n, n), gm2r2, gm2))
	pxPred := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), aBar, pxPrev), aBar)
	mat.SymmetrizeInto(pxPred, mat.AddInto(pxPred, pxPred, qBar))

	// --- Step 3: state estimation (lines 11–14) ---
	// Cross covariance S = E[x̃_{k|k-1}·ξ2ᵀ] = −G·M2·R2.
	s := mat.ScaleInto(sc.Mat(n, p2), -1, gm2r2)
	// r2Tilde = C2·pxPred·C2ᵀ + R2 + C2·S + Sᵀ·C2ᵀ
	r2Tilde := mat.MulTInto(sc.Mat(p2, p2), mat.MulInto(sc.Mat(p2, n), c2, pxPred), c2)
	mat.AddInto(r2Tilde, r2Tilde, r2)
	c2s := mat.MulInto(sc.Mat(p2, p2), c2, s)
	mat.AddInto(r2Tilde, r2Tilde, c2s)
	mat.AddInto(r2Tilde, r2Tilde, mat.TInto(sc.Mat(p2, p2), c2s))
	mat.SymmetrizeInto(r2Tilde, r2Tilde)
	nu := sensors.WrapResidual(z2.Sub(reference.H(xPred)), reference.AngleIndices())

	gainNumer := mat.MulTInto(sc.Mat(n, p2), pxPred, c2)
	mat.AddInto(gainNumer, gainNumer, s)
	// SPD fast path: factor the innovation covariance once; the factor's
	// diagonal yields the (pseudo-)log-determinant and its solves yield
	// both the gain L and the likelihood exponent — no explicit inverse,
	// no eigendecomposition. Which factorization applies depends on the
	// step's own structure:
	//
	//   - daValid=false: no actuator degrees of freedom were consumed, so
	//     R̃2 = C2·P̃·C2ᵀ + R2 is SPD outright and factors directly.
	//   - daValid=true: R̃2 is *structurally* rank p2−q. The deflation
	//     identity R̃2 = R* − C2·G·F⁻¹·(C2·G)ᵀ (F the Fisher matrix of
	//     step 1) gives R̃2·(R*)⁻¹·C2·G = 0, so null(R̃2) is the known
	//     q-dimensional space (R*)⁻¹·range(C2·G) — exactly why Algorithm 2
	//     line 20 is stated with pseudo-inverse and pseudo-determinant.
	//     Instead of discovering the null space eigenvalue by eigenvalue
	//     (the historical cyclic-Jacobi PseudoInverseSym), we deflate:
	//     with Z an orthonormal complement of range(C2·G), the range of
	//     R̃2 is R*·range(Z); orthonormalizing U = orth(R*·Z) and
	//     Cholesky-factoring the SPD core Uᵀ·R̃2·U yields the exact
	//     Moore–Penrose quantities R̃2† = U·(Uᵀ·R̃2·U)⁻¹·Uᵀ and
	//     pdet(R̃2) = det(Uᵀ·R̃2·U). (Using Z directly would preserve the
	//     quad form but bias the pseudo-determinant by the principal
	//     angles between range(Z) and range(R̃2) — see RangeBasisInto.)
	//
	// Any factorization failure (rank deficiency beyond the structural
	// one — e.g. a noise-free reference row duplicating another) falls
	// back to the Jacobi path, unchanged from the historical
	// implementation, so detection semantics on singular inputs hold.
	var l *mat.Mat
	var likelihood, pValue float64
	solved := false
	if !forceJacobiLikelihood {
		if !daValid {
			r2TildeChol := sc.Mat(p2, p2)
			if mat.CholFactorInto(r2TildeChol, r2Tilde) {
				// l = gainNumer·R̃2⁻¹ = (R̃2⁻¹·gainNumerᵀ)ᵀ
				lt := mat.CholSolveMatInto(sc.Mat(p2, n), r2TildeChol, mat.TInto(sc.Mat(p2, n), gainNumer))
				l = mat.TInto(sc.Mat(n, p2), lt)
				quad := mat.CholInvQuadForm(r2TildeChol, nu, sc.Vec(p2))
				likelihood, pValue = likelihoodFromLog(quad, p2, mat.CholLogDet(r2TildeChol))
				solved = true
			}
		} else if r := p2 - q; r > 0 {
			z := sc.Mat(p2, r)
			basis := sc.Mat(p2, r)
			if mat.RangeComplementInto(z, c2g, sc.Mat(p2, q)) &&
				mat.RangeBasisInto(basis, mat.MulInto(sc.Mat(p2, r), rStar, z), sc.Mat(p2, r)) {
				basisT := mat.TInto(sc.Mat(r, p2), basis)
				ru := mat.MulInto(sc.Mat(r, r), basisT, mat.MulInto(sc.Mat(p2, r), r2Tilde, basis))
				mat.SymmetrizeInto(ru, ru)
				ruChol := sc.Mat(r, r)
				if mat.CholFactorInto(ruChol, ru) {
					// l = gainNumer·R̃2† = (gainNumer·U)·Ru⁻¹·Uᵀ
					w := mat.MulInto(sc.Mat(n, r), gainNumer, basis)
					l = mat.MulInto(sc.Mat(n, p2), w, mat.CholSolveMatInto(sc.Mat(r, p2), ruChol, basisT))
					uNu := mat.MulVecInto(sc.Vec(r), basisT, nu)
					quad := mat.CholInvQuadForm(ruChol, uNu, sc.Vec(r))
					likelihood, pValue = likelihoodFromLog(quad, r, mat.CholLogDet(ruChol))
					solved = true
				}
			}
		}
	}
	if !solved {
		atomic.AddInt64(&nuiseJacobiFallbacks, 1)
		r2TildeInv, rank, pseudoDet, err := r2Tilde.PseudoInverseSym(0)
		if err != nil {
			return nil, fmt.Errorf("%w: innovation covariance: %v", ErrIllConditioned, err)
		}
		l = mat.MulInto(sc.Mat(n, p2), gainNumer, r2TildeInv)
		likelihood, pValue = likelihoodOf(nu, r2TildeInv, rank, pseudoDet)
	}

	// xPred came fresh from model.F (never arena-owned), so the update
	// can land in place and the sum double as the Result's state.
	x := plant.wrapState(mat.AddVecInto(xPred, xPred, mat.MulVecInto(sc.Vec(n), l, nu)))
	// ilc = I − L·C2
	ilc := mat.IdentityInto(sc.Mat(n, n))
	mat.SubInto(ilc, ilc, mat.MulInto(sc.Mat(n, n), l, c2))
	// Joseph form: px = ilc·pxPred·ilcᵀ + L·R2·Lᵀ − ilc·S·Lᵀ − L·Sᵀ·ilcᵀ
	pxAcc := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), ilc, pxPred), ilc)
	mat.AddInto(pxAcc, pxAcc, mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, p2), l, r2), l))
	mat.SubInto(pxAcc, pxAcc, mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, p2), ilc, s), l))
	mat.SubInto(pxAcc, pxAcc, mat.MulTInto(sc.Mat(n, n), mat.MulTInto(sc.Mat(n, n), l, s), ilc))
	// The Result owns its matrices (the arena is reused next iteration),
	// so the symmetrized covariances land in fresh allocations — but via
	// the Into variants, with all intermediates on scratch.
	px := mat.SymmetrizeInto(mat.New(n, n), pxAcc)

	// --- Step 4: testing-sensor anomaly estimation (lines 15–16) ---
	var ds mat.Vec
	ps := mat.New(0, 0)
	if testing != nil && testing.Dim() > 0 {
		ds = sensors.WrapResidual(z1.Sub(testing.H(x)), testing.AngleIndices())
		c1 := testing.C(x)
		p1 := testing.Dim()
		psAcc := mat.MulTInto(sc.Mat(p1, p1), mat.MulInto(sc.Mat(p1, n), c1, px), c1)
		mat.AddInto(psAcc, psAcc, testing.R())
		ps = mat.SymmetrizeInto(mat.New(p1, p1), psAcc)
	}

	res := &Result{
		X:           x,
		Px:          px,
		Da:          da,
		Pa:          pa,
		Ds:          ds,
		Ps:          ps,
		Likelihood:  likelihood,
		PValue:      pValue,
		Innovation:  nu,
		Implausible: implausible,
		DaValid:     daValid,
	}
	if res.X.HasNaN() || res.Px.HasNaN() || res.Da.HasNaN() || (ds != nil && ds.HasNaN()) {
		return nil, ErrDiverged
	}
	return res, nil
}

// fisherConditioned reports whether the q×q information matrix
// Gᵀ·C2ᵀ·R*⁻¹·C2·G is invertible with a usable condition number. The
// control dimension is 1 or 2 for every model in this repo, where the
// symmetric eigenvalues have a closed form; larger q falls back to the
// Jacobi eigendecomposition.
func fisherConditioned(fisher *mat.Mat) bool {
	var minEig, maxEig float64
	switch fisher.Rows() {
	case 1:
		minEig = math.Abs(fisher.At(0, 0))
		maxEig = minEig
	case 2:
		// Eigenvalues of [[a,b],[b,c]]: (a+c)/2 ± √(((a−c)/2)² + b²).
		a, b, c := fisher.At(0, 0), fisher.At(0, 1), fisher.At(1, 1)
		mean, root := (a+c)/2, math.Hypot((a-c)/2, b)
		minEig = math.Abs(mean - root)
		maxEig = math.Abs(mean + root)
		if minEig > maxEig {
			minEig, maxEig = maxEig, minEig
		}
	default:
		eig, _, err := fisher.EigenSym()
		if err != nil {
			return false
		}
		minEig = math.Inf(1)
		for _, lambda := range eig {
			l := math.Abs(lambda)
			if l < minEig {
				minEig = l
			}
			if l > maxEig {
				maxEig = l
			}
		}
	}
	if math.IsNaN(minEig) || math.IsNaN(maxEig) {
		return false
	}
	return maxEig > 0 && minEig > 1e-10*maxEig
}

// forceJacobiLikelihood is a test hook: when set, NUISE skips the
// Cholesky fast path for the innovation covariance and always runs the
// PseudoInverseSym fallback. The agreement property tests flip it to
// prove the two paths compute the same estimates and likelihood ratios.
var forceJacobiLikelihood bool

// nuiseJacobiFallbacks counts, race-safely, how many NUISE steps took
// the PseudoInverseSym fallback (including forced ones). Tests read it
// to prove the fallback engages on inputs rank-deficient beyond the
// structural p2−q deficiency; it is never read on the hot path.
var nuiseJacobiFallbacks int64

// JacobiFallbacks returns the process-wide count of NUISE steps that
// abandoned the Cholesky fast path for the Jacobi PseudoInverseSym
// fallback since process start. Silent fallback engagement is a
// performance regression (the Jacobi path is ~2× slower per step), so
// the engine samples this around every instrumented Step and surfaces
// the delta through Observer.EngineStep; a clean run must report zero.
func JacobiFallbacks() int64 { return atomic.LoadInt64(&nuiseJacobiFallbacks) }

// likelihoodOf evaluates the Gaussian likelihood of Algorithm 2 line 20
// with pseudo-inverse and pseudo-determinant,
//
//	N_k = exp(−νᵀ·(P_{k|k-1})†·ν / 2) / ((2π)^{n/2}·|P_{k|k-1}|₊^{1/2})
//
// together with the chi-square p-value of the same normalized
// innovation. It is the rank-deficient fallback of the NUISE step; the
// full-rank path computes the same quantities from the Cholesky factor.
func likelihoodOf(nu mat.Vec, pinv *mat.Mat, rank int, pseudoDet float64) (density, pValue float64) {
	if rank == 0 {
		return 0, 0
	}
	if pseudoDet < 0 {
		// The pseudo-determinant is a product of eigenvalues kept by the
		// PSD projection; a negative value means that projection failed
		// and neither the density nor the normalized innovation behind
		// the p-value can be trusted. Report zero so the engine floors
		// the mode instead of weighting it by a silently wrong density.
		return 0, 0
	}
	return likelihoodFromLog(pinv.QuadForm(nu), rank, math.Log(pseudoDet))
}

// likelihoodFromLog evaluates the Gaussian density and chi-square
// p-value from the Mahalanobis statistic, its rank, and the
// (pseudo-)log-determinant of the innovation covariance. The
// normalization is assembled entirely in log space and only the final
// density is exponentiated: the historical form
// (2π)^{rank/2}·√det over/underflowed for large rank or extreme
// determinants, silently zeroing (or NaN-ing) likelihoods that are
// perfectly representable.
func likelihoodFromLog(quad float64, rank int, logDet float64) (density, pValue float64) {
	if quad < 0 {
		quad = 0 // guard tiny negative round-off
	}
	if cdf, err := stat.ChiSquareCDF(quad, rank); err == nil {
		pValue = 1 - cdf
	}
	logDensity := -quad/2 - float64(rank)/2*math.Log(2*math.Pi) - logDet/2
	if math.IsNaN(logDensity) || math.IsInf(logDensity, 1) {
		// +Inf can only come from a zero (pseudo-)determinant: a
		// singular covariance has no density; keep the p-value.
		return 0, pValue
	}
	return math.Exp(logDensity), pValue
}
