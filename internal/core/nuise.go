// Package core implements the paper's primary contribution: the nonlinear
// unknown input and state estimation algorithm (NUISE, Algorithm 2) and
// the multi-mode estimation engine of §IV-B that runs one NUISE instance
// per sensor-condition hypothesis, selecting the most likely mode each
// control iteration.
package core

import (
	"errors"
	"fmt"
	"math"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
)

// Plant bundles the robot model and noise statistics that every NUISE
// instance linearizes against.
type Plant struct {
	// Model is the kinematic model f of equation (1).
	Model dynamics.Model
	// Q is the process noise covariance (assumed Gaussian, §III-A).
	Q *mat.Mat
	// AngleStates lists state components that are angles and must be
	// wrapped after additive updates (index 2 for both robot models).
	AngleStates []int
	// UMax optionally bounds |u + d̂a| per control component. Executed
	// commands are produced by physical actuators and therefore bounded;
	// a mode whose estimated executed command violates the bound is
	// physically impossible and is reported Implausible, which the
	// engine treats as zero likelihood. This closes the hijack where a
	// corrupted-reference mode absorbs a sensor bias aligned with the
	// direction of travel into an enormous phantom actuator anomaly.
	// Empty or zero entries disable the check.
	UMax mat.Vec
}

// Validate checks the plant dimensions.
func (p Plant) Validate() error {
	if p.Model == nil {
		return errors.New("core: plant has no model")
	}
	n := p.Model.StateDim()
	if p.Q == nil || p.Q.Rows() != n || p.Q.Cols() != n {
		return fmt.Errorf("core: Q must be %dx%d", n, n)
	}
	return nil
}

func (p Plant) wrapState(x mat.Vec) mat.Vec {
	for _, i := range p.AngleStates {
		x[i] = dynamics.NormalizeAngle(x[i])
	}
	return x
}

// Result is the output of one NUISE step for one mode (the per-mode
// quantities of Fig. 3).
type Result struct {
	// X is the state estimate x̂_{k|k}.
	X mat.Vec
	// Px is the state estimation error covariance.
	Px *mat.Mat
	// Da is the actuator anomaly vector estimate d̂a_{k-1}.
	Da mat.Vec
	// Pa is the covariance of Da.
	Pa *mat.Mat
	// Ds is the stacked testing-sensor anomaly vector estimate d̂s_k
	// (empty when the mode has no testing sensors).
	Ds mat.Vec
	// Ps is the covariance of Ds.
	Ps *mat.Mat
	// Likelihood is N_k, the Gaussian density of Algorithm 2 line 20.
	Likelihood float64
	// PValue is P(χ²_n > νᵀ·R̃2†·ν): the probability of an innovation at
	// least this surprising under the mode's hypothesis. Unlike the raw
	// density, it is comparable across modes with different measurement
	// dimensions and noise scales, so the engine weights modes by it
	// (see EngineConfig.WeightByDensity for the paper-literal variant).
	PValue float64
	// Innovation is ν_k = z2 − h2(x̂_{k|k-1}), kept for diagnostics.
	Innovation mat.Vec
	// Implausible reports that the estimated executed command u + d̂a
	// violates the plant's physical actuator bounds (Plant.UMax), so
	// this mode's hypothesis cannot be true this iteration.
	Implausible bool
	// DaValid reports whether the actuator anomaly could be estimated
	// this iteration. It is false when rank(C2·G) < dim(u) — e.g. a
	// bicycle at standstill, where steering has no observable effect —
	// in which case the step degrades to a standard EKF update with
	// d̂a = 0 and an uninformative Pa, and the decision maker skips the
	// actuator test.
	DaValid bool
}

// Estimation failure modes.
var (
	// ErrIllConditioned indicates a covariance inversion failed.
	ErrIllConditioned = errors.New("core: ill-conditioned covariance")
	// ErrDiverged indicates NaN/Inf contamination of the estimates.
	ErrDiverged = errors.New("core: estimator diverged")
)

// NUISE runs one step of Algorithm 2 for a single mode.
//
// Inputs: the planned command u_{k-1}, the previous estimate
// x̂_{k-1|k-1} with covariance Px_{k-1}, the testing-sensor readings z1
// (may be nil when the mode has no testing sensors), and the
// reference-sensor readings z2.
//
// A note on signs: the paper's printed Algorithm 2 is internally
// inconsistent about the cross-covariance between the compensated
// prediction error and the reference measurement noise (lines 11/12/14
// print +C2·G·M2·R2 terms where line 18 prints −). Deriving from
// x̃_{k|k-1} = (I − G·M2·C2)(A·x̃ + ζ) − G·M2·ξ2 gives
// S ≔ E[x̃_{k|k-1}·ξ2ᵀ] = −G·M2·R2; we implement that self-consistent
// version, which reduces to the standard Gillijns–De Moor filter in the
// linear case and matches the paper's line 18 likelihood covariance.
func NUISE(plant Plant, reference, testing sensors.Sensor, u, xPrev mat.Vec, pxPrev *mat.Mat, z1, z2 mat.Vec) (*Result, error) {
	return NUISEScratch(plant, reference, testing, u, xPrev, pxPrev, z1, z2, nil)
}

// NUISEScratch is NUISE with an explicit scratch arena for the ~20 matrix
// temporaries one step builds. Passing the same arena across iterations
// makes the step allocation-free apart from the Result itself (every
// matrix stored in the Result is freshly allocated, never arena-owned,
// so results stay valid after the arena is reused). A nil arena
// allocates a private one, which is equivalent to the plain NUISE call.
//
// Scratch reuse changes where intermediates live but not how they are
// computed: every destination-variant op accumulates in the same element
// order as its allocating counterpart (see internal/mat), so results are
// bit-for-bit identical to the historical allocating implementation.
func NUISEScratch(plant Plant, reference, testing sensors.Sensor, u, xPrev mat.Vec, pxPrev *mat.Mat, z1, z2 mat.Vec, sc *mat.Scratch) (*Result, error) {
	if sc == nil {
		sc = mat.NewScratch()
	}
	sc.Reset()

	model := plant.Model
	n := model.StateDim()
	q := model.ControlDim()

	// Linearize the kinematics at the previous estimate.
	a := model.A(xPrev, u)
	g := model.G(xPrev, u)

	// Uncompensated prediction, and the measurement linearization point.
	xPred0 := plant.wrapState(model.F(xPrev, u))
	c2 := reference.C(xPred0)
	r2 := reference.R()
	p2 := reference.Dim()

	// --- Step 1: actuator anomaly estimation (lines 2–6) ---
	// pTilde = A·Px·Aᵀ + Q
	pTilde := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), a, pxPrev), a)
	mat.AddInto(pTilde, pTilde, plant.Q)
	// rStar = C2·pTilde·C2ᵀ + R2
	rStar := mat.MulTInto(sc.Mat(p2, p2), mat.MulInto(sc.Mat(p2, n), c2, pTilde), c2)
	mat.SymmetrizeInto(rStar, mat.AddInto(rStar, rStar, r2))
	rStarInv, err := rStar.Inverse()
	if err != nil {
		return nil, fmt.Errorf("%w: R* inversion: %v", ErrIllConditioned, err)
	}
	c2g := mat.MulInto(sc.Mat(p2, q), c2, g)
	gtC2t := mat.TInto(sc.Mat(q, p2), c2g)
	fisher := mat.MulInto(sc.Mat(q, q), mat.MulInto(sc.Mat(q, p2), gtC2t, rStarInv), c2g)
	daValid := fisherConditioned(fisher)
	var m2 *mat.Mat
	var da mat.Vec
	var pa *mat.Mat
	if daValid {
		fisherInv, err := fisher.Inverse()
		if err != nil {
			daValid = false
		} else {
			// m2 = fisher⁻¹·Gᵀ·C2ᵀ·R*⁻¹ (q×p2)
			m2 = mat.MulInto(sc.Mat(q, p2), mat.MulInto(sc.Mat(q, p2), fisherInv, gtC2t), rStarInv)
			innov0 := sensors.WrapResidual(z2.Sub(reference.H(xPred0)), reference.AngleIndices())
			da = m2.MulVec(innov0)
			pa = mat.MulTInto(sc.Mat(q, q), mat.MulInto(sc.Mat(q, p2), m2, rStar), m2).Symmetrize()
		}
	}
	if !daValid {
		// rank(C2·G) < dim(u): the actuator anomaly is unobservable from
		// this reference (e.g. steering at standstill). Degrade to a
		// standard EKF step: no compensation, d̂a pinned at zero with an
		// uninformative covariance.
		m2 = sc.Mat(q, p2)
		da = mat.NewVec(q)
		pa = mat.Identity(q).Scale(1e6)
	}

	// --- Step 2: compensated state prediction (lines 7–10) ---
	uComp := u.Add(da)
	implausible := false
	if daValid {
		for i, bound := range plant.UMax {
			if bound > 0 && i < uComp.Len() && math.Abs(uComp[i]) > bound {
				implausible = true
			}
		}
	}
	xPred := plant.wrapState(model.F(xPrev, uComp))
	gm2 := mat.MulInto(sc.Mat(n, p2), g, m2)
	// igm = I − G·M2·C2
	igm := mat.IdentityInto(sc.Mat(n, n))
	mat.SubInto(igm, igm, mat.MulInto(sc.Mat(n, n), gm2, c2))
	aBar := mat.MulInto(sc.Mat(n, n), igm, a)
	// qBar = igm·Q·igmᵀ + G·M2·R2·(G·M2)ᵀ
	qBar := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), igm, plant.Q), igm)
	gm2r2 := mat.MulInto(sc.Mat(n, p2), gm2, r2)
	mat.AddInto(qBar, qBar, mat.MulTInto(sc.Mat(n, n), gm2r2, gm2))
	pxPred := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), aBar, pxPrev), aBar)
	mat.SymmetrizeInto(pxPred, mat.AddInto(pxPred, pxPred, qBar))

	// --- Step 3: state estimation (lines 11–14) ---
	// Cross covariance S = E[x̃_{k|k-1}·ξ2ᵀ] = −G·M2·R2.
	s := mat.ScaleInto(sc.Mat(n, p2), -1, gm2r2)
	// r2Tilde = C2·pxPred·C2ᵀ + R2 + C2·S + Sᵀ·C2ᵀ
	r2Tilde := mat.MulTInto(sc.Mat(p2, p2), mat.MulInto(sc.Mat(p2, n), c2, pxPred), c2)
	mat.AddInto(r2Tilde, r2Tilde, r2)
	c2s := mat.MulInto(sc.Mat(p2, p2), c2, s)
	mat.AddInto(r2Tilde, r2Tilde, c2s)
	mat.AddInto(r2Tilde, r2Tilde, mat.TInto(sc.Mat(p2, p2), c2s))
	mat.SymmetrizeInto(r2Tilde, r2Tilde)
	nu := sensors.WrapResidual(z2.Sub(reference.H(xPred)), reference.AngleIndices())

	gainNumer := mat.MulTInto(sc.Mat(n, p2), pxPred, c2)
	mat.AddInto(gainNumer, gainNumer, s)
	r2TildeInv, rank, pseudoDet, err := r2Tilde.PseudoInverseSym(0)
	if err != nil {
		return nil, fmt.Errorf("%w: innovation covariance: %v", ErrIllConditioned, err)
	}
	l := mat.MulInto(sc.Mat(n, p2), gainNumer, r2TildeInv)

	x := plant.wrapState(xPred.Add(l.MulVec(nu)))
	// ilc = I − L·C2
	ilc := mat.IdentityInto(sc.Mat(n, n))
	mat.SubInto(ilc, ilc, mat.MulInto(sc.Mat(n, n), l, c2))
	// Joseph form: px = ilc·pxPred·ilcᵀ + L·R2·Lᵀ − ilc·S·Lᵀ − L·Sᵀ·ilcᵀ
	pxAcc := mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, n), ilc, pxPred), ilc)
	mat.AddInto(pxAcc, pxAcc, mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, p2), l, r2), l))
	mat.SubInto(pxAcc, pxAcc, mat.MulTInto(sc.Mat(n, n), mat.MulInto(sc.Mat(n, p2), ilc, s), l))
	mat.SubInto(pxAcc, pxAcc, mat.MulTInto(sc.Mat(n, n), mat.MulTInto(sc.Mat(n, n), l, s), ilc))
	px := pxAcc.Symmetrize()

	// --- Step 4: testing-sensor anomaly estimation (lines 15–16) ---
	var ds mat.Vec
	ps := mat.New(0, 0)
	if testing != nil && testing.Dim() > 0 {
		ds = sensors.WrapResidual(z1.Sub(testing.H(x)), testing.AngleIndices())
		c1 := testing.C(x)
		p1 := testing.Dim()
		ps = mat.MulTInto(sc.Mat(p1, p1), mat.MulInto(sc.Mat(p1, n), c1, px), c1).
			Add(testing.R()).Symmetrize()
	}

	// --- Likelihood (lines 17–20) ---
	likelihood, pValue := likelihoodOf(nu, r2TildeInv, rank, pseudoDet)

	res := &Result{
		X:           x,
		Px:          px,
		Da:          da,
		Pa:          pa,
		Ds:          ds,
		Ps:          ps,
		Likelihood:  likelihood,
		PValue:      pValue,
		Innovation:  nu,
		Implausible: implausible,
		DaValid:     daValid,
	}
	if res.X.HasNaN() || res.Px.HasNaN() || res.Da.HasNaN() || (ds != nil && ds.HasNaN()) {
		return nil, ErrDiverged
	}
	return res, nil
}

// fisherConditioned reports whether the q×q information matrix
// Gᵀ·C2ᵀ·R*⁻¹·C2·G is invertible with a usable condition number.
func fisherConditioned(fisher *mat.Mat) bool {
	eig, _, err := fisher.EigenSym()
	if err != nil {
		return false
	}
	minEig, maxEig := math.Inf(1), 0.0
	for _, lambda := range eig {
		a := math.Abs(lambda)
		if a < minEig {
			minEig = a
		}
		if a > maxEig {
			maxEig = a
		}
	}
	return maxEig > 0 && minEig > 1e-10*maxEig
}

// likelihoodOf evaluates the Gaussian likelihood of Algorithm 2 line 20
// with pseudo-inverse and pseudo-determinant,
//
//	N_k = exp(−νᵀ·(P_{k|k-1})†·ν / 2) / ((2π)^{n/2}·|P_{k|k-1}|₊^{1/2})
//
// together with the chi-square p-value of the same normalized innovation.
func likelihoodOf(nu mat.Vec, pinv *mat.Mat, rank int, pseudoDet float64) (density, pValue float64) {
	if rank == 0 {
		return 0, 0
	}
	quad := pinv.QuadForm(nu)
	if quad < 0 {
		quad = 0 // guard tiny negative round-off
	}
	if pseudoDet < 0 {
		// The pseudo-determinant is a product of eigenvalues kept by the
		// PSD projection; a negative value means that projection failed
		// and neither the density nor the normalized innovation behind
		// the p-value can be trusted. Report zero so the engine floors
		// the mode instead of weighting it by a silently wrong density.
		return 0, 0
	}
	if cdf, err := stat.ChiSquareCDF(quad, rank); err == nil {
		pValue = 1 - cdf
	}
	norm := math.Pow(2*math.Pi, float64(rank)/2) * math.Sqrt(pseudoDet)
	if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return 0, pValue
	}
	return math.Exp(-quad/2) / norm, pValue
}
