// Package core implements the paper's primary contribution: the nonlinear
// unknown input and state estimation algorithm (NUISE, Algorithm 2) and
// the multi-mode estimation engine of §IV-B that runs one NUISE instance
// per sensor-condition hypothesis, selecting the most likely mode each
// control iteration.
package core

import (
	"errors"
	"fmt"
	"math"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
)

// Plant bundles the robot model and noise statistics that every NUISE
// instance linearizes against.
type Plant struct {
	// Model is the kinematic model f of equation (1).
	Model dynamics.Model
	// Q is the process noise covariance (assumed Gaussian, §III-A).
	Q *mat.Mat
	// AngleStates lists state components that are angles and must be
	// wrapped after additive updates (index 2 for both robot models).
	AngleStates []int
	// UMax optionally bounds |u + d̂a| per control component. Executed
	// commands are produced by physical actuators and therefore bounded;
	// a mode whose estimated executed command violates the bound is
	// physically impossible and is reported Implausible, which the
	// engine treats as zero likelihood. This closes the hijack where a
	// corrupted-reference mode absorbs a sensor bias aligned with the
	// direction of travel into an enormous phantom actuator anomaly.
	// Empty or zero entries disable the check.
	UMax mat.Vec
}

// Validate checks the plant dimensions.
func (p Plant) Validate() error {
	if p.Model == nil {
		return errors.New("core: plant has no model")
	}
	n := p.Model.StateDim()
	if p.Q == nil || p.Q.Rows() != n || p.Q.Cols() != n {
		return fmt.Errorf("core: Q must be %dx%d", n, n)
	}
	return nil
}

func (p Plant) wrapState(x mat.Vec) mat.Vec {
	for _, i := range p.AngleStates {
		x[i] = dynamics.NormalizeAngle(x[i])
	}
	return x
}

// Result is the output of one NUISE step for one mode (the per-mode
// quantities of Fig. 3).
type Result struct {
	// X is the state estimate x̂_{k|k}.
	X mat.Vec
	// Px is the state estimation error covariance.
	Px *mat.Mat
	// Da is the actuator anomaly vector estimate d̂a_{k-1}.
	Da mat.Vec
	// Pa is the covariance of Da.
	Pa *mat.Mat
	// Ds is the stacked testing-sensor anomaly vector estimate d̂s_k
	// (empty when the mode has no testing sensors).
	Ds mat.Vec
	// Ps is the covariance of Ds.
	Ps *mat.Mat
	// Likelihood is N_k, the Gaussian density of Algorithm 2 line 20.
	Likelihood float64
	// PValue is P(χ²_n > νᵀ·R̃2†·ν): the probability of an innovation at
	// least this surprising under the mode's hypothesis. Unlike the raw
	// density, it is comparable across modes with different measurement
	// dimensions and noise scales, so the engine weights modes by it
	// (see EngineConfig.WeightByDensity for the paper-literal variant).
	PValue float64
	// Innovation is ν_k = z2 − h2(x̂_{k|k-1}), kept for diagnostics.
	Innovation mat.Vec
	// Implausible reports that the estimated executed command u + d̂a
	// violates the plant's physical actuator bounds (Plant.UMax), so
	// this mode's hypothesis cannot be true this iteration.
	Implausible bool
	// DaValid reports whether the actuator anomaly could be estimated
	// this iteration. It is false when rank(C2·G) < dim(u) — e.g. a
	// bicycle at standstill, where steering has no observable effect —
	// in which case the step degrades to a standard EKF update with
	// d̂a = 0 and an uninformative Pa, and the decision maker skips the
	// actuator test.
	DaValid bool
}

// Estimation failure modes.
var (
	// ErrIllConditioned indicates a covariance inversion failed.
	ErrIllConditioned = errors.New("core: ill-conditioned covariance")
	// ErrDiverged indicates NaN/Inf contamination of the estimates.
	ErrDiverged = errors.New("core: estimator diverged")
)

// NUISE runs one step of Algorithm 2 for a single mode.
//
// Inputs: the planned command u_{k-1}, the previous estimate
// x̂_{k-1|k-1} with covariance Px_{k-1}, the testing-sensor readings z1
// (may be nil when the mode has no testing sensors), and the
// reference-sensor readings z2.
//
// A note on signs: the paper's printed Algorithm 2 is internally
// inconsistent about the cross-covariance between the compensated
// prediction error and the reference measurement noise (lines 11/12/14
// print +C2·G·M2·R2 terms where line 18 prints −). Deriving from
// x̃_{k|k-1} = (I − G·M2·C2)(A·x̃ + ζ) − G·M2·ξ2 gives
// S ≔ E[x̃_{k|k-1}·ξ2ᵀ] = −G·M2·R2; we implement that self-consistent
// version, which reduces to the standard Gillijns–De Moor filter in the
// linear case and matches the paper's line 18 likelihood covariance.
func NUISE(plant Plant, reference, testing sensors.Sensor, u, xPrev mat.Vec, pxPrev *mat.Mat, z1, z2 mat.Vec) (*Result, error) {
	model := plant.Model
	n := model.StateDim()
	q := model.ControlDim()

	// Linearize the kinematics at the previous estimate.
	a := model.A(xPrev, u)
	g := model.G(xPrev, u)

	// Uncompensated prediction, and the measurement linearization point.
	xPred0 := plant.wrapState(model.F(xPrev, u))
	c2 := reference.C(xPred0)
	r2 := reference.R()

	// --- Step 1: actuator anomaly estimation (lines 2–6) ---
	pTilde := a.Mul(pxPrev).Mul(a.T()).Add(plant.Q)
	rStar := c2.Mul(pTilde).Mul(c2.T()).Add(r2).Symmetrize()
	rStarInv, err := rStar.Inverse()
	if err != nil {
		return nil, fmt.Errorf("%w: R* inversion: %v", ErrIllConditioned, err)
	}
	gtC2t := g.T().Mul(c2.T())
	fisher := gtC2t.Mul(rStarInv).Mul(c2.Mul(g)) // q×q
	daValid := fisherConditioned(fisher)
	var m2 *mat.Mat
	var da mat.Vec
	var pa *mat.Mat
	if daValid {
		fisherInv, err := fisher.Inverse()
		if err != nil {
			daValid = false
		} else {
			m2 = fisherInv.Mul(gtC2t).Mul(rStarInv) // q×p2
			innov0 := sensors.WrapResidual(z2.Sub(reference.H(xPred0)), reference.AngleIndices())
			da = m2.MulVec(innov0)
			pa = m2.Mul(rStar).Mul(m2.T()).Symmetrize()
		}
	}
	if !daValid {
		// rank(C2·G) < dim(u): the actuator anomaly is unobservable from
		// this reference (e.g. steering at standstill). Degrade to a
		// standard EKF step: no compensation, d̂a pinned at zero with an
		// uninformative covariance.
		m2 = mat.New(q, reference.Dim())
		da = mat.NewVec(q)
		pa = mat.Identity(q).Scale(1e6)
	}

	// --- Step 2: compensated state prediction (lines 7–10) ---
	uComp := u.Add(da)
	implausible := false
	if daValid {
		for i, bound := range plant.UMax {
			if bound > 0 && i < uComp.Len() && math.Abs(uComp[i]) > bound {
				implausible = true
			}
		}
	}
	xPred := plant.wrapState(model.F(xPrev, uComp))
	gm2 := g.Mul(m2)
	igm := mat.Identity(n).Sub(gm2.Mul(c2))
	aBar := igm.Mul(a)
	qBar := igm.Mul(plant.Q).Mul(igm.T()).Add(gm2.Mul(r2).Mul(gm2.T()))
	pxPred := aBar.Mul(pxPrev).Mul(aBar.T()).Add(qBar).Symmetrize()

	// --- Step 3: state estimation (lines 11–14) ---
	// Cross covariance S = E[x̃_{k|k-1}·ξ2ᵀ] = −G·M2·R2.
	s := gm2.Mul(r2).Scale(-1)
	r2Tilde := c2.Mul(pxPred).Mul(c2.T()).Add(r2).
		Add(c2.Mul(s)).Add(s.T().Mul(c2.T())).Symmetrize()
	nu := sensors.WrapResidual(z2.Sub(reference.H(xPred)), reference.AngleIndices())

	gainNumer := pxPred.Mul(c2.T()).Add(s)
	r2TildeInv, rank, pseudoDet, err := r2Tilde.PseudoInverseSym(0)
	if err != nil {
		return nil, fmt.Errorf("%w: innovation covariance: %v", ErrIllConditioned, err)
	}
	l := gainNumer.Mul(r2TildeInv)

	x := plant.wrapState(xPred.Add(l.MulVec(nu)))
	ilc := mat.Identity(n).Sub(l.Mul(c2))
	px := ilc.Mul(pxPred).Mul(ilc.T()).
		Add(l.Mul(r2).Mul(l.T())).
		Sub(ilc.Mul(s).Mul(l.T())).
		Sub(l.Mul(s.T()).Mul(ilc.T())).Symmetrize()

	// --- Step 4: testing-sensor anomaly estimation (lines 15–16) ---
	var ds mat.Vec
	ps := mat.New(0, 0)
	if testing != nil && testing.Dim() > 0 {
		ds = sensors.WrapResidual(z1.Sub(testing.H(x)), testing.AngleIndices())
		c1 := testing.C(x)
		ps = c1.Mul(px).Mul(c1.T()).Add(testing.R()).Symmetrize()
	}

	// --- Likelihood (lines 17–20) ---
	likelihood, pValue := likelihoodOf(nu, r2TildeInv, rank, pseudoDet)

	res := &Result{
		X:           x,
		Px:          px,
		Da:          da,
		Pa:          pa,
		Ds:          ds,
		Ps:          ps,
		Likelihood:  likelihood,
		PValue:      pValue,
		Innovation:  nu,
		Implausible: implausible,
		DaValid:     daValid,
	}
	if res.X.HasNaN() || res.Px.HasNaN() || res.Da.HasNaN() || (ds != nil && ds.HasNaN()) {
		return nil, ErrDiverged
	}
	return res, nil
}

// fisherConditioned reports whether the q×q information matrix
// Gᵀ·C2ᵀ·R*⁻¹·C2·G is invertible with a usable condition number.
func fisherConditioned(fisher *mat.Mat) bool {
	eig, _, err := fisher.EigenSym()
	if err != nil {
		return false
	}
	minEig, maxEig := math.Inf(1), 0.0
	for _, lambda := range eig {
		a := math.Abs(lambda)
		if a < minEig {
			minEig = a
		}
		if a > maxEig {
			maxEig = a
		}
	}
	return maxEig > 0 && minEig > 1e-10*maxEig
}

// likelihoodOf evaluates the Gaussian likelihood of Algorithm 2 line 20
// with pseudo-inverse and pseudo-determinant,
//
//	N_k = exp(−νᵀ·(P_{k|k-1})†·ν / 2) / ((2π)^{n/2}·|P_{k|k-1}|₊^{1/2})
//
// together with the chi-square p-value of the same normalized innovation.
func likelihoodOf(nu mat.Vec, pinv *mat.Mat, rank int, pseudoDet float64) (density, pValue float64) {
	if rank == 0 {
		return 0, 0
	}
	quad := pinv.QuadForm(nu)
	if quad < 0 {
		quad = 0 // guard tiny negative round-off
	}
	if cdf, err := stat.ChiSquareCDF(quad, rank); err == nil {
		pValue = 1 - cdf
	}
	norm := math.Pow(2*math.Pi, float64(rank)/2) * math.Sqrt(math.Abs(pseudoDet))
	if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return 0, pValue
	}
	return math.Exp(-quad/2) / norm, pValue
}
