package core

import (
	"errors"
	"fmt"
	"strings"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
)

// Mode is one sensor-condition hypothesis of the multi-mode engine: the
// Reference sensors are hypothesized clean, every Testing sensor
// potentially misbehaving (§IV-B).
type Mode struct {
	// Name labels the hypothesis, e.g. "ref=ips".
	Name string
	// Reference is the stacked clean-sensor block supplying z2.
	Reference sensors.Sensor
	// ReferenceNames are the component workflow names of Reference.
	ReferenceNames []string
	// Testing are the potentially misbehaving sensors supplying z1, in
	// stacking order.
	Testing []sensors.Sensor

	testingStacked sensors.Sensor // nil when len(Testing) == 0
	testingNames   []string       // workflow names of Testing, in stacking order
}

// ErrNoModes indicates an engine constructed without modes.
var ErrNoModes = errors.New("core: no modes")

// NewMode builds a mode from reference and testing sensor sets.
func NewMode(reference []sensors.Sensor, testing []sensors.Sensor) (*Mode, error) {
	if len(reference) == 0 {
		return nil, errors.New("core: mode needs at least one reference sensor")
	}
	ref, err := sensors.NewStacked(reference...)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(reference))
	for i, s := range reference {
		names[i] = s.Name()
	}
	m := &Mode{
		Name:           "ref=" + strings.Join(names, "+"),
		Reference:      ref,
		ReferenceNames: names,
		Testing:        append([]sensors.Sensor(nil), testing...),
	}
	if len(testing) > 0 {
		stacked, err := sensors.NewStacked(testing...)
		if err != nil {
			return nil, err
		}
		m.testingStacked = stacked
		m.testingNames = make([]string, len(testing))
		for i, s := range testing {
			m.testingNames[i] = s.Name()
		}
	}
	return m, nil
}

// TestingStacked returns the stacked testing-sensor block, or nil when
// the mode tests nothing (e.g. the all-reference fusion mode of Table IV).
func (m *Mode) TestingStacked() sensors.Sensor { return m.testingStacked }

// SensorAnomaly is the per-workflow split of the stacked d̂s estimate,
// used by the decision maker's per-sensor identification tests
// (Algorithm 1 lines 13–18).
type SensorAnomaly struct {
	// Sensor is the workflow name.
	Sensor string
	// Ds is this sensor's slice of the anomaly estimate.
	Ds mat.Vec
	// Ps is the corresponding covariance block.
	Ps *mat.Mat
}

// SplitDs slices the stacked anomaly estimate and covariance back into
// per-sensor components.
func (m *Mode) SplitDs(ds mat.Vec, ps *mat.Mat) []SensorAnomaly {
	out := make([]SensorAnomaly, 0, len(m.Testing))
	off := 0
	for _, s := range m.Testing {
		d := s.Dim()
		out = append(out, SensorAnomaly{
			Sensor: s.Name(),
			Ds:     ds.Slice(off, off+d),
			Ps:     ps.Submatrix(off, off+d, off, off+d),
		})
		off += d
	}
	return out
}

// HypothesizedCorrupted reports whether the mode hypothesizes the named
// sensor as potentially misbehaving.
func (m *Mode) HypothesizedCorrupted(name string) bool {
	for _, s := range m.Testing {
		if s.Name() == name {
			return true
		}
	}
	return false
}

// SingleReferenceModes builds the paper's default mode set (§VI "Mode set
// selection"): one mode per sensor, with that sensor as the sole
// reference and all others testing. M grows linearly with the sensor
// count. Modes whose reference cannot reconstruct the state (the §VI
// observability requirement, checked at the nominal point (x0, u0)) are
// rejected with an error unless skipUnobservable is true, in which case
// they are silently dropped.
func SingleReferenceModes(model dynamics.Model, suite []sensors.Sensor, x0, u0 mat.Vec, skipUnobservable bool) ([]*Mode, error) {
	modes := make([]*Mode, 0, len(suite))
	for i, ref := range suite {
		if !sensors.Observable(model, ref, x0, u0) {
			if skipUnobservable {
				continue
			}
			return nil, fmt.Errorf("core: reference sensor %q cannot reconstruct the state (group it, §VI)", ref.Name())
		}
		testing := make([]sensors.Sensor, 0, len(suite)-1)
		for j, s := range suite {
			if j != i {
				testing = append(testing, s)
			}
		}
		m, err := NewMode([]sensors.Sensor{ref}, testing)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		return nil, ErrNoModes
	}
	return modes, nil
}

// LeaveOneOutModes builds one mode per sensor with all *other* sensors
// grouped as the reference and that sensor alone testing. This is the
// §VI grouping remedy for suites where a single sensor cannot provide
// actuator observability (the Tamiya's acceleration input is invisible
// to pose-only sensors within one step — only the IMU reads speed).
// It detects any single-sensor corruption; with two or more corrupted
// sensors every reference group is contaminated, a limitation the caller
// accepts by choosing this mode set.
func LeaveOneOutModes(model dynamics.Model, suite []sensors.Sensor, x0, u0 mat.Vec) ([]*Mode, error) {
	if len(suite) < 2 {
		return nil, ErrNoModes
	}
	modes := make([]*Mode, 0, len(suite))
	for i, testing := range suite {
		ref := make([]sensors.Sensor, 0, len(suite)-1)
		for j, s := range suite {
			if j != i {
				ref = append(ref, s)
			}
		}
		stacked, err := sensors.NewStacked(ref...)
		if err != nil {
			return nil, err
		}
		if !sensors.Observable(model, stacked, x0, u0) {
			return nil, fmt.Errorf("core: reference group %q cannot reconstruct the state", stacked.Name())
		}
		m, err := NewMode(ref, []sensors.Sensor{testing})
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// CompleteModes builds the full hypothesis set of §VI: one mode per
// nonempty clean subset (2^p − 1 modes, excluding all-corrupted),
// dropping subsets that fail the observability requirement. Exponential
// in the sensor count — the ablation benchmark quantifies the cost.
func CompleteModes(model dynamics.Model, suite []sensors.Sensor, x0, u0 mat.Vec) ([]*Mode, error) {
	p := len(suite)
	var modes []*Mode
	for mask := 1; mask < 1<<p; mask++ {
		var ref, testing []sensors.Sensor
		for i, s := range suite {
			if mask&(1<<i) != 0 {
				ref = append(ref, s)
			} else {
				testing = append(testing, s)
			}
		}
		stacked, err := sensors.NewStacked(ref...)
		if err != nil {
			return nil, err
		}
		if !sensors.Observable(model, stacked, x0, u0) {
			continue
		}
		m, err := NewMode(ref, testing)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		return nil, ErrNoModes
	}
	return modes, nil
}

// FusionMode builds a single mode with every sensor as reference and
// nothing testing — the "all sensors" sensor-fusion configuration of
// Table IV that minimizes the actuator anomaly estimate variance.
func FusionMode(suite []sensors.Sensor) (*Mode, error) {
	return NewMode(suite, nil)
}
