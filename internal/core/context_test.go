package core

import (
	"context"
	"errors"
	"testing"

	"roboads/internal/mat"
)

// StepContext under a background context is pinned to the exact Step
// outputs on both the sequential and the parallel path: the cancellation
// plumbing must not cost a single float of determinism.
func TestEngineStepContextMatchesStep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rig, us, readings := recordScenario(31, 60)
		plain := engineWithWorkers(t, rig, workers)
		withCtx := engineWithWorkers(t, rig, workers)
		defer plain.Close()
		defer withCtx.Close()

		for k := range us {
			outA, errA := plain.Step(us[k], readings[k])
			outB, errB := withCtx.StepContext(context.Background(), us[k], readings[k])
			if (errA == nil) != (errB == nil) {
				t.Fatalf("workers=%d k=%d: Step err %v, StepContext err %v", workers, k, errA, errB)
			}
			if errA != nil {
				continue
			}
			if outA.Selected != outB.Selected {
				t.Fatalf("workers=%d k=%d: selected %d vs %d", workers, k, outA.Selected, outB.Selected)
			}
			if !vecsEqual(mat.Vec(outA.Weights), mat.Vec(outB.Weights)) {
				t.Fatalf("workers=%d k=%d: weights diverged", workers, k)
			}
			if !vecsEqual(outA.Result.X, outB.Result.X) || !outA.Result.Px.Equal(outB.Result.Px, 0) {
				t.Fatalf("workers=%d k=%d: estimates diverged", workers, k)
			}
		}
	}
}

// A cancelled StepContext must abort all-or-nothing: it returns ctx.Err()
// and leaves the engine state exactly as it was, so the mission continues
// bit-for-bit as if the cancelled call never happened.
func TestEngineStepContextCancelIsAllOrNothing(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rig, us, readings := recordScenario(32, 50)
		eng := engineWithWorkers(t, rig, workers)
		twin := engineWithWorkers(t, rig, workers)
		defer eng.Close()
		defer twin.Close()

		cancelled, cancel := context.WithCancel(context.Background())
		cancel()

		for k := range us {
			// Halfway through the mission, inject a cancelled call before
			// the real one; it must not advance or perturb the engine.
			if k == 25 {
				out, err := eng.StepContext(cancelled, us[k], readings[k])
				if out != nil || !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: cancelled StepContext = (%v, %v), want (nil, context.Canceled)", workers, out, err)
				}
			}
			outA, errA := eng.StepContext(context.Background(), us[k], readings[k])
			outB, errB := twin.Step(us[k], readings[k])
			if (errA == nil) != (errB == nil) {
				t.Fatalf("workers=%d k=%d: errs %v vs %v", workers, k, errA, errB)
			}
			if errA != nil {
				continue
			}
			if outA.Iteration != outB.Iteration {
				t.Fatalf("workers=%d k=%d: iteration %d vs %d (cancelled call advanced the counter)",
					workers, k, outA.Iteration, outB.Iteration)
			}
			if outA.Selected != outB.Selected || !vecsEqual(mat.Vec(outA.Weights), mat.Vec(outB.Weights)) {
				t.Fatalf("workers=%d k=%d: cancelled call perturbed the bank", workers, k)
			}
			if !vecsEqual(outA.Result.X, outB.Result.X) {
				t.Fatalf("workers=%d k=%d: state estimates diverged after cancellation", workers, k)
			}
		}
	}
}
