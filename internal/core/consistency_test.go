package core

import (
	"math"
	"testing"

	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
)

// NEES (normalized estimation error squared) consistency tests: if the
// filter's covariances are correct, the normalized errors are chi-square
// with dof equal to the vector dimension, so their Monte Carlo mean must
// sit near that dof. These tests exercise every covariance propagation
// line of Algorithm 2 at once — a sign error anywhere shows up as a
// biased NEES.

// neesRun simulates `steps` iterations with the given actuator bias and
// returns the accumulated state/actuator NEES sums and sample count.
func neesRun(t *testing.T, seed int64, bias mat.Vec, steps int) (stateSum, daSum float64, n int) {
	t.Helper()
	rig := newTestRig(seed)
	ref, err := sensors.NewStacked(rig.ips, rig.we)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := mat.VecOf(1.0, 1.0, 0.2)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-6, 1e-6, 1e-6)
	u := rig.model.WheelSpeeds(0.12, 0.15)

	for k := 0; k < steps; k++ {
		uExec := u.Add(bias)
		xTrue = rig.model.F(xTrue, uExec).Add(rig.processNoise())
		z2 := rig.measure(rig.ips, xTrue).Concat(rig.measure(rig.we, xTrue))
		z1 := rig.measure(rig.lidar, xTrue)
		res, err := NUISE(rig.plant, ref, rig.lidar, u, xEst, px, z1, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px

		// Skip the initial transient.
		if k < 10 {
			continue
		}
		stateErr := xEst.Sub(xTrue)
		stateErr[2] = math.Atan2(math.Sin(stateErr[2]), math.Cos(stateErr[2]))
		quad, err := res.Px.InvQuadForm(stateErr)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		stateSum += quad

		daErr := res.Da.Sub(bias)
		quadDa, err := res.Pa.InvQuadForm(daErr)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		daSum += quadDa
		n++
	}
	return stateSum, daSum, n
}

func TestNEESConsistencyClean(t *testing.T) {
	var stateSum, daSum float64
	var n int
	for seed := int64(0); seed < 8; seed++ {
		s, d, c := neesRun(t, 100+seed, mat.NewVec(2), 120)
		stateSum += s
		daSum += d
		n += c
	}
	stateNEES := stateSum / float64(n)
	daNEES := daSum / float64(n)
	// State dim 3, control dim 2. Linearization bias and the shared
	// lidar-testing path justify a generous band.
	if stateNEES < 1.5 || stateNEES > 5.0 {
		t.Fatalf("state NEES = %.2f, want ≈ 3", stateNEES)
	}
	if daNEES < 1.0 || daNEES > 3.5 {
		t.Fatalf("actuator NEES = %.2f, want ≈ 2", daNEES)
	}
}

func TestNEESConsistencyUnderActuatorBias(t *testing.T) {
	// The unbiasedness claim (§IV-B): with the true anomaly subtracted,
	// the normalized d̂a error stays chi-square even while an attack is
	// active — the estimate tracks the bias without covariance
	// distortion.
	var daSum float64
	var n int
	for seed := int64(0); seed < 8; seed++ {
		_, d, c := neesRun(t, 200+seed, mat.VecOf(-0.04, 0.04), 120)
		daSum += d
		n += c
	}
	daNEES := daSum / float64(n)
	if daNEES < 1.0 || daNEES > 3.5 {
		t.Fatalf("actuator NEES under bias = %.2f, want ≈ 2", daNEES)
	}
}

// The sensor anomaly estimate must be unbiased with a covariance that
// matches its scatter: ds NEES ≈ testing dim.
func TestNEESSensorAnomaly(t *testing.T) {
	rig := newTestRig(300)
	testingStack, err := sensors.NewStacked(rig.ips)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sensors.NewStacked(rig.we, rig.lidar)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := mat.VecOf(1.0, 1.0, 0.2)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-6, 1e-6, 1e-6)
	u := rig.model.WheelSpeeds(0.12, 0.15)
	bias := mat.VecOf(0.07, 0, 0) // injected IPS anomaly

	var sum float64
	n := 0
	for k := 0; k < 200; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		z1 := rig.measure(rig.ips, xTrue).Add(bias)
		z2 := rig.measure(rig.we, xTrue).Concat(rig.measure(rig.lidar, xTrue))
		res, err := NUISE(rig.plant, ref, testingStack, u, xEst, px, z1, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px
		if k < 10 {
			continue
		}
		dsErr := res.Ds.Sub(bias)
		quad, err := res.Ps.InvQuadForm(dsErr)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		sum += quad
		n++
	}
	nees := sum / float64(n)
	if nees < 1.5 || nees > 5.0 {
		t.Fatalf("sensor anomaly NEES = %.2f, want ≈ 3", nees)
	}
}

// Innovation whiteness: consecutive innovations of a well-tuned filter
// are uncorrelated; a gross autocorrelation betrays covariance errors.
func TestInnovationWhiteness(t *testing.T) {
	rig := newTestRig(400)
	xTrue := mat.VecOf(1.0, 1.0, 0.2)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-6, 1e-6, 1e-6)
	u := rig.model.WheelSpeeds(0.12, 0.15)

	var prev mat.Vec
	var crossSum, varSum float64
	n := 0
	for k := 0; k < 300; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		z2 := rig.measure(rig.ips, xTrue)
		res, err := NUISE(rig.plant, rig.ips, nil, u, xEst, px, nil, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px
		if k >= 10 {
			if prev != nil {
				crossSum += res.Innovation.Dot(prev)
				varSum += res.Innovation.Dot(res.Innovation)
				n++
			}
			prev = res.Innovation.Clone()
		}
	}
	if n == 0 {
		t.Fatal("no samples")
	}
	autocorr := crossSum / varSum
	if math.Abs(autocorr) > 0.25 {
		t.Fatalf("innovation lag-1 autocorrelation = %.3f, want ≈ 0", autocorr)
	}
}

// End-to-end calibration: under the correct hypothesis, the innovation
// p-values the engine weights modes by must be (approximately) uniform
// on (0,1) — verified with a Kolmogorov–Smirnov test at a strict level.
// A bias anywhere in the covariance chain skews this distribution.
func TestPValueUniformityUnderNull(t *testing.T) {
	rig := newTestRig(500)
	xTrue := mat.VecOf(1.0, 1.0, 0.2)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-6, 1e-6, 1e-6)
	u := rig.model.WheelSpeeds(0.12, 0.15)

	var pvalues []float64
	for k := 0; k < 600; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		z2 := rig.measure(rig.ips, xTrue)
		res, err := NUISE(rig.plant, rig.ips, nil, u, xEst, px, nil, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px
		if k >= 20 {
			pvalues = append(pvalues, res.PValue)
		}
	}
	statVal, rejected, err := stat.KSUniform(pvalues, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Fatalf("p-values not uniform under the null: KS D = %.4f over %d samples", statVal, len(pvalues))
	}
}
