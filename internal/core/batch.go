package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
)

// ErrBatchShape indicates an engine handed to EngineBatch.Step whose
// mode-bank shapes do not match the batch prototype's. The session is
// not stepped; the caller routes it to the scalar path.
var ErrBatchShape = errors.New("core: engine shape incompatible with batch")

// EngineBatch steps K engines sharing one mode-bank geometry as blocked
// structure-of-arrays passes: every NUISE stage (predict, Cholesky
// factor-and-solve, innovation update) runs as one sweep over all K
// sessions per mode through the internal/mat batch kernels, instead of
// K independent engine steps each paying its own small-matrix dispatch,
// scratch management, and allocator traffic.
//
// Per-session outputs are bit-for-bit identical to Engine.Step:
//
//   - every batched kernel applies the scalar kernel block-by-block
//     (same loop structure, same summation order — see internal/mat),
//     and the stage sequence mirrors NUISEScratch operation for
//     operation, so each session's algebra is the scalar algebra;
//   - any (session, mode) the blocked happy path cannot carry — a
//     Cholesky or range-basis failure, an ill-conditioned Fisher matrix
//     (the EKF degrade), the forced-Jacobi test hook — is redone from
//     scratch through the engine's own scalar stepMode, which recomputes
//     the identical pure function of the identical inputs (batch staging
//     only copies; engine state commits strictly afterwards);
//   - the serial tail of the step (weight update, selection, resync,
//     output assembly) is Engine.commit, the very code the scalar path
//     runs.
//
// Result-escaping values (X, Px, Da, Pa, Ds, Ps, Innovation) are carved
// from a fresh per-session mat.Slab each step — callers may retain
// outputs indefinitely, exactly as with the scalar path.
//
// An EngineBatch is a workspace, not an owner: engines are passed per
// Step call and may differ call to call as long as their shapes match
// the prototype. The caller must guarantee the engines are not stepped
// concurrently elsewhere; the workspace itself must not be shared
// between concurrent Step calls.
type EngineBatch struct {
	capacity int
	nModes   int
	n, q     int
	banks    []*modeBank

	// Per-session linearization memo: modes re-synchronized to the
	// consensus share bit-identical x̂ₘ, so A, G, and the uncompensated
	// prediction F(x̂, u) — pure functions of (x̂, u) — are computed once
	// per distinct x̂ per session and reused across that session's modes,
	// into buffers the workspace owns (filled through the model's Into
	// fast paths; none of them escape into Results).
	memoValid []bool
	memoX     []mat.Vec
	memoA     []*mat.Mat
	memoG     []*mat.Mat
	memoXP    []mat.Vec

	// Slab-carved result matrices for the current mode pass. Result
	// must carry these headers — not Batch.Block pointers, whose slots
	// are rebound on the next pass — so retained outputs stay immutable.
	paM, pxM, psM []*mat.Mat

	// Per-call scratch reused across Steps: session masks, per-session
	// instrumentation preamble. (Everything that escapes into Outputs —
	// perMode, the Result array, the returned slices — is still allocated
	// fresh each call.)
	alive, live, redo       []bool
	hasTesting, implausible []bool
	okMask                  []bool
	stepStart               []time.Time
	fallbacks0              []int64

	// Per-session slab sizing carried across steps so the second step
	// onward carves without growing.
	slabFloats, slabMats int
}

// modeBank holds the blocked buffers for one mode's NUISE pass. Shapes:
// n states, q controls, p2 reference rows, p1 testing rows, r = p2−q
// deflated likelihood rows.
type modeBank struct {
	p2, p1, r int

	// Bound views of per-session inputs and constants. The Jacobian
	// banks c2 and c1 are contiguous (not views): they are filled
	// through the sensors' CInto fast paths, which for state-dependent
	// Jacobians (LiDAR) skips a per-session allocation per mode pass.
	xPred0, xPred, u           *mat.VecBatch
	pxPrev, a, g, qc, r2       *mat.Batch
	c2, c1, r1                 *mat.Batch
	hRef, hTest                *mat.VecBatch
	da, nu, ds                 *mat.VecBatch
	pa, px, ps                 *mat.Batch
	z2, z1, innov0             *mat.VecBatch
	uComp, lnu, uNu, quadWork  *mat.VecBatch
	pTilde, tmpNN, tmpNN2, igm *mat.Batch
	aBar, qBar, pxPred, ilc    *mat.Batch
	pxAcc, gm2, gm2r2, s       *mat.Batch
	tmpNP2, gainNumer, l       *mat.Batch
	rStar, rStarChol, r2Tilde  *mat.Batch
	c2s, tmpP2P2, tmpP2N       *mat.Batch
	c2g, rsInvC2g, rsInvC2gT   *mat.Batch
	fisher, fisherChol, m2     *mat.Batch
	paAcc, tmpQP2              *mat.Batch
	zc, rcWork, rsZ, basis     *mat.Batch
	rbWork, basisT, ru, tmpP2R *mat.Batch
	ruChol, w, sol, psAcc      *mat.Batch
	tmpP1N                     *mat.Batch
}

// NewEngineBatch returns a batch workspace shaped after proto with room
// for up to capacity sessions per Step call.
func NewEngineBatch(proto *Engine, capacity int) (*EngineBatch, error) {
	if proto == nil || capacity < 1 {
		return nil, fmt.Errorf("core: batch needs a prototype engine and capacity ≥ 1 (got %d)", capacity)
	}
	n := proto.plant.Model.StateDim()
	q := proto.plant.Model.ControlDim()
	b := &EngineBatch{
		capacity:  capacity,
		nModes:    len(proto.modes),
		n:         n,
		q:         q,
		banks:     make([]*modeBank, len(proto.modes)),
		memoValid: make([]bool, capacity),
		memoX:     make([]mat.Vec, capacity),
		memoA:     make([]*mat.Mat, capacity),
		memoG:     make([]*mat.Mat, capacity),
		memoXP:    make([]mat.Vec, capacity),
		paM:       make([]*mat.Mat, capacity),
		pxM:       make([]*mat.Mat, capacity),
		psM:       make([]*mat.Mat, capacity),

		alive:       make([]bool, capacity),
		live:        make([]bool, capacity),
		redo:        make([]bool, capacity),
		hasTesting:  make([]bool, capacity),
		implausible: make([]bool, capacity),
		okMask:      make([]bool, capacity),
		stepStart:   make([]time.Time, capacity),
		fallbacks0:  make([]int64, capacity),
	}
	for s := 0; s < capacity; s++ {
		b.memoA[s] = mat.New(n, n)
		b.memoG[s] = mat.New(n, q)
		b.memoXP[s] = make(mat.Vec, n)
	}
	for i, m := range proto.modes {
		p2 := m.Reference.Dim()
		p1 := 0
		if ts := m.TestingStacked(); ts != nil {
			p1 = ts.Dim()
		}
		r := p2 - q
		if r <= 0 {
			// No deflated likelihood rows: the scalar path itself takes
			// the Jacobi fallback here, so the mode is never batchable.
			b.banks[i] = &modeBank{p2: p2, p1: p1, r: r}
			continue
		}
		k := capacity
		b.banks[i] = &modeBank{
			p2: p2, p1: p1, r: r,
			xPred0:     mat.NewViewVecBatch(k, n),
			xPred:      mat.NewViewVecBatch(k, n),
			u:          mat.NewViewVecBatch(k, q),
			pxPrev:     mat.NewViewBatch(k, n, n),
			a:          mat.NewViewBatch(k, n, n),
			g:          mat.NewViewBatch(k, n, q),
			c2:         mat.NewBatch(k, p2, n),
			qc:         mat.NewViewBatch(k, n, n),
			r2:         mat.NewViewBatch(k, p2, p2),
			c1:         mat.NewBatch(k, p1, n),
			r1:         mat.NewViewBatch(k, p1, p1),
			hRef:       mat.NewVecBatch(k, p2),
			hTest:      mat.NewVecBatch(k, p1),
			da:         mat.NewViewVecBatch(k, q),
			nu:         mat.NewViewVecBatch(k, p2),
			ds:         mat.NewViewVecBatch(k, p1),
			pa:         mat.NewViewBatch(k, q, q),
			px:         mat.NewViewBatch(k, n, n),
			ps:         mat.NewViewBatch(k, p1, p1),
			z2:         mat.NewVecBatch(k, p2),
			z1:         mat.NewVecBatch(k, p1),
			innov0:     mat.NewVecBatch(k, p2),
			uComp:      mat.NewVecBatch(k, q),
			lnu:        mat.NewVecBatch(k, n),
			uNu:        mat.NewVecBatch(k, r),
			quadWork:   mat.NewVecBatch(k, r),
			pTilde:     mat.NewBatch(k, n, n),
			tmpNN:      mat.NewBatch(k, n, n),
			tmpNN2:     mat.NewBatch(k, n, n),
			igm:        mat.NewBatch(k, n, n),
			aBar:       mat.NewBatch(k, n, n),
			qBar:       mat.NewBatch(k, n, n),
			pxPred:     mat.NewBatch(k, n, n),
			ilc:        mat.NewBatch(k, n, n),
			pxAcc:      mat.NewBatch(k, n, n),
			gm2:        mat.NewBatch(k, n, p2),
			gm2r2:      mat.NewBatch(k, n, p2),
			s:          mat.NewBatch(k, n, p2),
			tmpNP2:     mat.NewBatch(k, n, p2),
			gainNumer:  mat.NewBatch(k, n, p2),
			l:          mat.NewBatch(k, n, p2),
			rStar:      mat.NewBatch(k, p2, p2),
			rStarChol:  mat.NewBatch(k, p2, p2),
			r2Tilde:    mat.NewBatch(k, p2, p2),
			c2s:        mat.NewBatch(k, p2, p2),
			tmpP2P2:    mat.NewBatch(k, p2, p2),
			tmpP2N:     mat.NewBatch(k, p2, n),
			c2g:        mat.NewBatch(k, p2, q),
			rsInvC2g:   mat.NewBatch(k, p2, q),
			rsInvC2gT:  mat.NewBatch(k, q, p2),
			fisher:     mat.NewBatch(k, q, q),
			fisherChol: mat.NewBatch(k, q, q),
			m2:         mat.NewBatch(k, q, p2),
			paAcc:      mat.NewBatch(k, q, q),
			tmpQP2:     mat.NewBatch(k, q, p2),
			zc:         mat.NewBatch(k, p2, r),
			rcWork:     mat.NewBatch(k, p2, q),
			rsZ:        mat.NewBatch(k, p2, r),
			basis:      mat.NewBatch(k, p2, r),
			rbWork:     mat.NewBatch(k, p2, r),
			basisT:     mat.NewBatch(k, r, p2),
			ru:         mat.NewBatch(k, r, r),
			tmpP2R:     mat.NewBatch(k, p2, r),
			ruChol:     mat.NewBatch(k, r, r),
			w:          mat.NewBatch(k, n, r),
			sol:        mat.NewBatch(k, r, p2),
			psAcc:      mat.NewBatch(k, p1, p1),
			tmpP1N:     mat.NewBatch(k, p1, n),
		}
	}
	return b, nil
}

// Capacity returns the maximum number of sessions per Step call.
func (b *EngineBatch) Capacity() int { return b.capacity }

// congruent reports whether e matches the batch's prototype geometry.
// The caller (the fleet scheduler) gates true profile identity by
// configuration fingerprint; this check only guards the buffer shapes.
func (b *EngineBatch) congruent(e *Engine) bool {
	if len(e.modes) != b.nModes ||
		e.plant.Model.StateDim() != b.n || e.plant.Model.ControlDim() != b.q {
		return false
	}
	for i, m := range e.modes {
		bank := b.banks[i]
		if m.Reference.Dim() != bank.p2 {
			return false
		}
		p1 := 0
		if ts := m.TestingStacked(); ts != nil {
			p1 = ts.Dim()
		}
		if p1 != bank.p1 {
			return false
		}
	}
	return true
}

// Step runs one control iteration for every engine, batched. The slices
// must be equal length and no longer than the batch capacity; entry k
// of the returned slices is exactly what engines[k].Step(us[k],
// readings[k]) would have returned. Engines whose shapes do not match
// the prototype get ErrBatchShape and are left unstepped.
func (b *EngineBatch) Step(engines []*Engine, us []mat.Vec, readings []map[string]mat.Vec) ([]*Output, []error) {
	k := len(engines)
	if k > b.capacity || len(us) != k || len(readings) != k {
		panic(fmt.Errorf("core: batch step with %d engines, %d commands, %d readings (capacity %d)",
			k, len(us), len(readings), b.capacity))
	}
	outs := make([]*Output, k)
	errs := make([]error, k)

	perMode := make([][]*Result, k)
	resArr := make([][]Result, k)
	// One escape-safe slab per Step: every Result-escaping value of every
	// session is carved from it, and the backing is never reused — the
	// next Step carves from a fresh one.
	slab := mat.NewSlab(b.slabFloats, b.slabMats)
	// The capacity-sized masks are workspace scratch: the batched kernels
	// sweep every block through them, so entries beyond k must read
	// false. (perMode, resArr, outs, errs escape into Outputs and stay
	// per-call.)
	stepStart, fallbacks0, alive := b.stepStart, b.fallbacks0, b.alive
	clear(alive)
	clear(b.live)
	clear(b.redo)
	clear(b.hasTesting)
	clear(b.implausible)
	clear(b.okMask)

	for s := 0; s < k; s++ {
		b.memoValid[s] = false
		e := engines[s]
		if e == nil || !b.congruent(e) {
			errs[s] = ErrBatchShape
			continue
		}
		alive[s] = true
		perMode[s] = make([]*Result, b.nModes)
		resArr[s] = make([]Result, b.nModes)
		// Instrumentation preamble, mirroring StepContext. The step wall
		// time an observer sees covers the whole batched pass — the cost
		// attribution is shared by construction (documented in DESIGN §13).
		if e.obs != nil {
			stepStart[s] = time.Now()
			fallbacks0[s] = JacobiFallbacks()
			for _, name := range e.sensorNames {
				if _, ok := readings[s][name]; !ok {
					e.obs.DroppedReading(name)
				}
			}
		}
	}

	for i := 0; i < b.nModes; i++ {
		b.stepModeBatch(i, engines, us, readings, perMode, resArr, slab,
			alive, b.live, b.redo, b.hasTesting, b.implausible, b.okMask)
	}

	if used := slab.FloatsUsed(); used > b.slabFloats {
		b.slabFloats = used
	}
	if used := slab.MatsUsed(); used > b.slabMats {
		b.slabMats = used
	}
	for s := 0; s < k; s++ {
		if alive[s] {
			outs[s], errs[s] = engines[s].commit(perMode[s], stepStart[s], fallbacks0[s])
		}
	}
	return outs, errs
}

// stepModeBatch runs mode i for every live session as blocked kernel
// sweeps, mirroring NUISEScratch operation for operation. Sessions the
// blocked path cannot carry are redone through the engine's own scalar
// stepMode at the end — identical inputs, identical pure function,
// identical bits.
func (b *EngineBatch) stepModeBatch(
	i int,
	engines []*Engine, us []mat.Vec, readings []map[string]mat.Vec,
	perMode [][]*Result, resArr [][]Result, slab *mat.Slab,
	alive, live, redo, hasTesting, implausible, ok []bool,
) {
	bank := b.banks[i]
	K := len(engines)
	n, q := b.n, b.q
	p2, p1, r := bank.p2, bank.p1, bank.r

	// The scalar path would take the Jacobi fallback (r ≤ 0) or is
	// forced onto it by the test hook: nothing to batch for this mode.
	if r <= 0 || forceJacobiLikelihood {
		for s := 0; s < K; s++ {
			if alive[s] {
				engines[s].stepMode(i, us[s], readings[s], perMode[s])
			}
		}
		return
	}

	// --- Gather: stack readings, bind per-session state and constants ---
	for s := 0; s < K; s++ {
		live[s], redo[s], hasTesting[s], implausible[s] = false, false, false, false
		if !alive[s] {
			continue
		}
		e := engines[s]
		m := e.modes[i]
		// A missing reference reading fails the mode for this iteration
		// (perMode stays nil), exactly as stepMode's stackReadings error.
		if !stackInto(bank.z2.Block(s), readings[s], m.ReferenceNames) {
			continue
		}
		if m.testingStacked != nil {
			// A missing testing reading degrades to a reference-only
			// update, exactly as stepMode's testing = nil.
			hasTesting[s] = stackInto(bank.z1.Block(s), readings[s], m.testingNames)
		}
		bank.pxPrev.SetBlock(s, e.pxm[i])
		bank.u.SetBlock(s, us[s])
		bank.qc.SetBlock(s, e.plant.Q)
		bank.r2.SetBlock(s, m.Reference.R())
		live[s] = true
	}

	// --- Linearize at the previous estimate (amortized per session) ---
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		e := engines[s]
		xPrev := e.xm[i]
		if !b.memoValid[s] || !vecBitsEqual(b.memoX[s], xPrev) {
			model := e.plant.Model
			dynamics.EvalAInto(model, b.memoA[s], xPrev, us[s])
			dynamics.EvalGInto(model, b.memoG[s], xPrev, us[s])
			e.plant.wrapState(dynamics.EvalFInto(model, b.memoXP[s], xPrev, us[s]))
			b.memoX[s] = xPrev
			b.memoValid[s] = true
		}
		bank.a.SetBlock(s, b.memoA[s])
		bank.g.SetBlock(s, b.memoG[s])
		bank.xPred0.SetBlock(s, b.memoXP[s])
		sensors.EvalCInto(e.modes[i].Reference, bank.c2.Block(s), b.memoXP[s])
	}

	// --- Step 1: actuator anomaly estimation (lines 2–6) ---
	// pTilde = A·Px·Aᵀ + Q
	mat.MulTBatchInto(bank.pTilde, mat.MulBatchInto(bank.tmpNN, bank.a, bank.pxPrev, live), bank.a, live)
	mat.AddBatchInto(bank.pTilde, bank.pTilde, bank.qc, live)
	// rStar = C2·pTilde·C2ᵀ + R2
	mat.MulTBatchInto(bank.rStar, mat.MulBatchInto(bank.tmpP2N, bank.c2, bank.pTilde, live), bank.c2, live)
	mat.SymmetrizeBatchInto(bank.rStar, mat.AddBatchInto(bank.rStar, bank.rStar, bank.r2, live), live)
	mat.MulBatchInto(bank.c2g, bank.c2, bank.g, live)
	// A factorization failure takes the scalar path's LU fallback — by
	// rerunning the whole scalar step for that session.
	mat.CholFactorBatchInto(bank.rStarChol, bank.rStar, live, ok)
	demote(live, redo, ok)
	mat.CholSolveMatBatchInto(bank.rsInvC2g, bank.rStarChol, bank.c2g, live)
	mat.TMulBatchInto(bank.fisher, bank.c2g, bank.rsInvC2g, live)
	for s := 0; s < K; s++ {
		// daValid=false (EKF degrade) and the fisher LU fallback are
		// scalar-path territory.
		if live[s] && !fisherConditioned(bank.fisher.Block(s)) {
			live[s], redo[s] = false, true
		}
	}
	mat.TBatchInto(bank.rsInvC2gT, bank.rsInvC2g, live)
	mat.CholFactorBatchInto(bank.fisherChol, bank.fisher, live, ok)
	demote(live, redo, ok)
	mat.CholSolveMatBatchInto(bank.m2, bank.fisherChol, bank.rsInvC2gT, live)
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		reference := engines[s].modes[i].Reference
		sensors.WrapResidual(
			mat.SubVecInto(bank.innov0.Block(s), bank.z2.Block(s),
				sensors.EvalHInto(reference, bank.hRef.Block(s), bank.xPred0.Block(s))),
			reference.AngleIndices())
		bank.da.SetBlock(s, slab.Vec(q))
		b.paM[s] = slab.Mat(q, q)
		bank.pa.SetBlock(s, b.paM[s])
	}
	mat.MulVecBatchInto(bank.da, bank.m2, bank.innov0, live)
	mat.MulTBatchInto(bank.paAcc, mat.MulBatchInto(bank.tmpQP2, bank.m2, bank.rStar, live), bank.m2, live)
	mat.SymmetrizeBatchInto(bank.pa, bank.paAcc, live)

	// --- Step 2: compensated state prediction (lines 7–10) ---
	mat.AddVecBatchInto(bank.uComp, bank.u, bank.da, live)
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		e := engines[s]
		uComp := bank.uComp.Block(s)
		for j, bound := range e.plant.UMax {
			if bound > 0 && j < uComp.Len() && math.Abs(uComp[j]) > bound {
				implausible[s] = true
			}
		}
		// The compensated prediction becomes the Result's state: carve it
		// from the slab so it may escape, exactly like the scalar step's
		// fresh model.F vector.
		xp := dynamics.EvalFInto(e.plant.Model, slab.Vec(n), e.xm[i], uComp)
		bank.xPred.SetBlock(s, e.plant.wrapState(xp))
	}
	mat.MulBatchInto(bank.gm2, bank.g, bank.m2, live)
	// igm = I − G·M2·C2
	mat.IdentityBatchInto(bank.igm, live)
	mat.SubBatchInto(bank.igm, bank.igm, mat.MulBatchInto(bank.tmpNN, bank.gm2, bank.c2, live), live)
	mat.MulBatchInto(bank.aBar, bank.igm, bank.a, live)
	// qBar = igm·Q·igmᵀ + G·M2·R2·(G·M2)ᵀ
	mat.MulTBatchInto(bank.qBar, mat.MulBatchInto(bank.tmpNN, bank.igm, bank.qc, live), bank.igm, live)
	mat.MulBatchInto(bank.gm2r2, bank.gm2, bank.r2, live)
	mat.AddBatchInto(bank.qBar, bank.qBar, mat.MulTBatchInto(bank.tmpNN, bank.gm2r2, bank.gm2, live), live)
	mat.MulTBatchInto(bank.pxPred, mat.MulBatchInto(bank.tmpNN, bank.aBar, bank.pxPrev, live), bank.aBar, live)
	mat.SymmetrizeBatchInto(bank.pxPred, mat.AddBatchInto(bank.pxPred, bank.pxPred, bank.qBar, live), live)

	// --- Step 3: state estimation (lines 11–14) ---
	// S = −G·M2·R2
	mat.ScaleBatchInto(bank.s, -1, bank.gm2r2, live)
	// r2Tilde = C2·pxPred·C2ᵀ + R2 + C2·S + Sᵀ·C2ᵀ
	mat.MulTBatchInto(bank.r2Tilde, mat.MulBatchInto(bank.tmpP2N, bank.c2, bank.pxPred, live), bank.c2, live)
	mat.AddBatchInto(bank.r2Tilde, bank.r2Tilde, bank.r2, live)
	mat.MulBatchInto(bank.c2s, bank.c2, bank.s, live)
	mat.AddBatchInto(bank.r2Tilde, bank.r2Tilde, bank.c2s, live)
	mat.AddBatchInto(bank.r2Tilde, bank.r2Tilde, mat.TBatchInto(bank.tmpP2P2, bank.c2s, live), live)
	mat.SymmetrizeBatchInto(bank.r2Tilde, bank.r2Tilde, live)
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		reference := engines[s].modes[i].Reference
		nu := slab.Vec(p2)
		sensors.WrapResidual(
			mat.SubVecInto(nu, bank.z2.Block(s),
				sensors.EvalHInto(reference, bank.hRef.Block(s), bank.xPred.Block(s))),
			reference.AngleIndices())
		bank.nu.SetBlock(s, nu)
	}
	mat.MulTBatchInto(bank.gainNumer, bank.pxPred, bank.c2, live)
	mat.AddBatchInto(bank.gainNumer, bank.gainNumer, bank.s, live)
	// Deflated SPD likelihood path (daValid=true, r = p2−q > 0): any
	// basis or factorization failure falls back per session to the
	// scalar step, which re-derives its own fallback semantics.
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		ok[s] = mat.RangeComplementInto(bank.zc.Block(s), bank.c2g.Block(s), bank.rcWork.Block(s))
	}
	demote(live, redo, ok)
	mat.MulBatchInto(bank.rsZ, bank.rStar, bank.zc, live)
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		ok[s] = mat.RangeBasisInto(bank.basis.Block(s), bank.rsZ.Block(s), bank.rbWork.Block(s))
	}
	demote(live, redo, ok)
	mat.TBatchInto(bank.basisT, bank.basis, live)
	mat.MulBatchInto(bank.ru, bank.basisT, mat.MulBatchInto(bank.tmpP2R, bank.r2Tilde, bank.basis, live), live)
	mat.SymmetrizeBatchInto(bank.ru, bank.ru, live)
	mat.CholFactorBatchInto(bank.ruChol, bank.ru, live, ok)
	demote(live, redo, ok)
	// l = gainNumer·R̃2† = (gainNumer·U)·Ru⁻¹·Uᵀ
	mat.MulBatchInto(bank.w, bank.gainNumer, bank.basis, live)
	mat.MulBatchInto(bank.l, bank.w, mat.CholSolveMatBatchInto(bank.sol, bank.ruChol, bank.basisT, live), live)
	mat.MulVecBatchInto(bank.uNu, bank.basisT, bank.nu, live)

	// x = wrap(xPred + L·ν), in place on the fresh model.F vector, which
	// doubles as the Result's state exactly as in the scalar step.
	mat.MulVecBatchInto(bank.lnu, bank.l, bank.nu, live)
	mat.AddVecBatchInto(bank.xPred, bank.xPred, bank.lnu, live)
	for s := 0; s < K; s++ {
		if live[s] {
			engines[s].plant.wrapState(bank.xPred.Block(s))
			b.pxM[s] = slab.Mat(n, n)
			bank.px.SetBlock(s, b.pxM[s])
		}
	}
	// ilc = I − L·C2
	mat.IdentityBatchInto(bank.ilc, live)
	mat.SubBatchInto(bank.ilc, bank.ilc, mat.MulBatchInto(bank.tmpNN, bank.l, bank.c2, live), live)
	// Joseph form: px = ilc·pxPred·ilcᵀ + L·R2·Lᵀ − ilc·S·Lᵀ − L·Sᵀ·ilcᵀ
	mat.MulTBatchInto(bank.pxAcc, mat.MulBatchInto(bank.tmpNN, bank.ilc, bank.pxPred, live), bank.ilc, live)
	mat.AddBatchInto(bank.pxAcc, bank.pxAcc,
		mat.MulTBatchInto(bank.tmpNN, mat.MulBatchInto(bank.tmpNP2, bank.l, bank.r2, live), bank.l, live), live)
	mat.SubBatchInto(bank.pxAcc, bank.pxAcc,
		mat.MulTBatchInto(bank.tmpNN, mat.MulBatchInto(bank.tmpNP2, bank.ilc, bank.s, live), bank.l, live), live)
	mat.SubBatchInto(bank.pxAcc, bank.pxAcc,
		mat.MulTBatchInto(bank.tmpNN, mat.MulTBatchInto(bank.tmpNN2, bank.l, bank.s, live), bank.ilc, live), live)
	mat.SymmetrizeBatchInto(bank.px, bank.pxAcc, live)

	// --- Step 4: testing-sensor anomaly estimation (lines 15–16) ---
	liveTesting := ok // reuse the scratch mask
	for s := 0; s < K; s++ {
		liveTesting[s] = live[s] && hasTesting[s] && p1 > 0
		if !liveTesting[s] {
			continue
		}
		testing := engines[s].modes[i].testingStacked
		ds := slab.Vec(p1)
		sensors.WrapResidual(
			mat.SubVecInto(ds, bank.z1.Block(s),
				sensors.EvalHInto(testing, bank.hTest.Block(s), bank.xPred.Block(s))),
			testing.AngleIndices())
		bank.ds.SetBlock(s, ds)
		sensors.EvalCInto(testing, bank.c1.Block(s), bank.xPred.Block(s))
		bank.r1.SetBlock(s, testing.R())
		b.psM[s] = slab.Mat(p1, p1)
		bank.ps.SetBlock(s, b.psM[s])
	}
	mat.MulTBatchInto(bank.psAcc, mat.MulBatchInto(bank.tmpP1N, bank.c1, bank.px, liveTesting), bank.c1, liveTesting)
	mat.AddBatchInto(bank.psAcc, bank.psAcc, bank.r1, liveTesting)
	mat.SymmetrizeBatchInto(bank.ps, bank.psAcc, liveTesting)

	// --- Assemble results, mirroring the scalar tail ---
	for s := 0; s < K; s++ {
		if !live[s] {
			continue
		}
		res := &resArr[s][i]
		*res = Result{
			X:           bank.xPred.Block(s),
			Px:          b.pxM[s],
			Da:          bank.da.Block(s),
			Pa:          b.paM[s],
			Ps:          slab.Mat(0, 0),
			Likelihood:  0,
			PValue:      0,
			Innovation:  bank.nu.Block(s),
			Implausible: implausible[s],
			DaValid:     true,
		}
		if liveTesting[s] {
			res.Ds = bank.ds.Block(s)
			res.Ps = b.psM[s]
		}
		quad := mat.CholInvQuadForm(bank.ruChol.Block(s), bank.uNu.Block(s), bank.quadWork.Block(s))
		res.Likelihood, res.PValue = likelihoodFromLog(quad, r, mat.CholLogDet(bank.ruChol.Block(s)))
		if res.X.HasNaN() || res.Px.HasNaN() || res.Da.HasNaN() || (res.Ds != nil && res.Ds.HasNaN()) {
			continue // ErrDiverged in the scalar step: the mode sits out
		}
		perMode[s][i] = res
	}

	// --- Scalar redo for everything the blocked path could not carry ---
	for s := 0; s < K; s++ {
		if redo[s] {
			engines[s].stepMode(i, us[s], readings[s], perMode[s])
		}
	}
}

// demote moves sessions whose per-block verdict came back false from
// the live mask to the redo set.
func demote(live, redo, ok []bool) {
	for s := range live {
		if live[s] && !ok[s] {
			live[s], redo[s] = false, true
		}
	}
}

// stackInto concatenates the named readings into dst, reporting false
// when any is missing or the total length mismatches. The values are
// exactly stackReadings' append-concatenation.
func stackInto(dst mat.Vec, readings map[string]mat.Vec, names []string) bool {
	off := 0
	for _, name := range names {
		z, okR := readings[name]
		if !okR || off+len(z) > len(dst) {
			return false
		}
		copy(dst[off:], z)
		off += len(z)
	}
	return off == len(dst)
}

// vecBitsEqual reports exact elementwise equality (NaN-free state
// vectors; a NaN simply forces a recompute).
func vecBitsEqual(a, b mat.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
