package core

import (
	"math"
	"testing"

	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
	"roboads/internal/world"
)

// testRig bundles a Khepera plant with the three-sensor suite from §V-A.
type testRig struct {
	plant Plant
	model *dynamics.DifferentialDrive
	ips   *sensors.IPS
	we    *sensors.WheelEncoder
	lidar *sensors.Lidar
	suite []sensors.Sensor
	rng   *stat.RNG
}

func newTestRig(seed int64) *testRig {
	model := dynamics.NewKhepera(0.1)
	// An empty arena keeps LiDAR beams free of obstacle-edge
	// discontinuities; obstacle interaction is exercised by the
	// mission-level simulator tests.
	arena := world.NewArena(4, 4)
	ips := sensors.NewIPS(3)
	we := sensors.NewWheelEncoder(3)
	lidar := sensors.NewLidar(arena, 3)
	return &testRig{
		plant: Plant{
			Model:       model,
			Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
			AngleStates: []int{2},
		},
		model: model,
		ips:   ips,
		we:    we,
		lidar: lidar,
		suite: []sensors.Sensor{ips, we, lidar},
		rng:   stat.NewRNG(seed),
	}
}

// processNoise draws one process noise sample matching plant.Q.
func (r *testRig) processNoise() mat.Vec {
	return r.rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3))
}

// measure returns a clean noisy reading for sensor s at true state x.
func (r *testRig) measure(s sensors.Sensor, x mat.Vec) mat.Vec {
	rMat := s.R()
	stds := make(mat.Vec, s.Dim())
	for i := range stds {
		stds[i] = math.Sqrt(rMat.At(i, i))
	}
	return s.H(x).Add(r.rng.GaussianVec(stds))
}

func (r *testRig) readings(x mat.Vec) map[string]mat.Vec {
	return map[string]mat.Vec{
		r.ips.Name():   r.measure(r.ips, x),
		r.we.Name():    r.measure(r.we, x),
		r.lidar.Name(): r.measure(r.lidar, x),
	}
}

func TestNUISECleanRunTracksState(t *testing.T) {
	rig := newTestRig(1)
	xTrue := mat.VecOf(0.8, 0.8, 0.3)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	ref := rig.ips
	testing, err := sensors.NewStacked(rig.we, rig.lidar)
	if err != nil {
		t.Fatal(err)
	}

	u := rig.model.WheelSpeeds(0.12, 0.4)
	daSum := mat.NewVec(2)
	const steps = 100
	for k := 0; k < steps; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		z1 := rig.measure(rig.we, xTrue).Concat(rig.measure(rig.lidar, xTrue))
		z2 := rig.measure(rig.ips, xTrue)
		res, err := NUISE(rig.plant, ref, testing, u, xEst, px, z1, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px
		daSum = daSum.Add(res.Da)

		// Per-iteration d̂a is noisy by construction (it inverts one
		// measurement); the normalized statistic must stay plausible.
		quad, err := res.Pa.InvQuadForm(res.Da)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if quad > 50 {
			t.Fatalf("k=%d: clean-run actuator statistic %.1f", k, quad)
		}
	}
	// Unbiasedness: the time-averaged estimate is near zero.
	daMean := daSum.Scale(1.0 / steps)
	if daMean.MaxAbs() > 0.004 {
		t.Fatalf("clean-run mean d̂a = %v, want ≈ 0", daMean)
	}
	if d := xEst.Sub(xTrue); math.Hypot(d[0], d[1]) > 0.01 {
		t.Fatalf("state estimate drifted: est %v true %v", xEst, xTrue)
	}
}

func TestNUISEEstimatesActuatorBias(t *testing.T) {
	rig := newTestRig(2)
	xTrue := mat.VecOf(1.0, 0.8, 0.2)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	ref, err := sensors.NewStacked(rig.ips, rig.we)
	if err != nil {
		t.Fatal(err)
	}

	bias := mat.VecOf(-0.04, 0.04) // scenario #1 magnitudes
	uPlanned := rig.model.WheelSpeeds(0.12, 0)
	var daSum mat.Vec = mat.NewVec(2)
	const steps = 150
	for k := 0; k < steps; k++ {
		uExec := uPlanned.Add(bias)
		xTrue = rig.model.F(xTrue, uExec).Add(rig.processNoise())
		z2 := rig.measure(rig.ips, xTrue).Concat(rig.measure(rig.we, xTrue))
		z1 := rig.measure(rig.lidar, xTrue)
		res, err := NUISE(rig.plant, ref, rig.lidar, uPlanned, xEst, px, z1, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px
		daSum = daSum.Add(res.Da)
	}
	daMean := daSum.Scale(1.0 / steps)
	// Unbiasedness: the mean actuator anomaly estimate recovers the
	// injected bias (§IV-B "minimum variance unbiased estimates").
	if math.Abs(daMean[0]-bias[0]) > 0.006 || math.Abs(daMean[1]-bias[1]) > 0.006 {
		t.Fatalf("mean d̂a = %v, want ≈ %v", daMean, bias)
	}
}

func TestNUISEEstimatesSensorBias(t *testing.T) {
	rig := newTestRig(3)
	xTrue := mat.VecOf(1.0, 1.0, 0.0)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	ref := rig.we
	testing, err := sensors.NewStacked(rig.ips, rig.lidar)
	if err != nil {
		t.Fatal(err)
	}

	ipsBias := mat.VecOf(0.07, 0, 0) // scenario #3 magnitude
	u := rig.model.WheelSpeeds(0.1, 0.2)
	var dsIPSSum mat.Vec = mat.NewVec(3)
	const steps = 120
	for k := 0; k < steps; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		z1 := rig.measure(rig.ips, xTrue).Add(ipsBias).Concat(rig.measure(rig.lidar, xTrue))
		z2 := rig.measure(rig.we, xTrue)
		res, err := NUISE(rig.plant, ref, testing, u, xEst, px, z1, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		xEst, px = res.X, res.Px
		dsIPSSum = dsIPSSum.Add(res.Ds.Slice(0, 3))
	}
	dsMean := dsIPSSum.Scale(1.0 / steps)
	if math.Abs(dsMean[0]-0.07) > 0.01 || math.Abs(dsMean[1]) > 0.01 {
		t.Fatalf("mean d̂s(ips) = %v, want ≈ (0.07, 0, 0)", dsMean)
	}
}

// M2·C2·G = I is the defining property of the unknown-input gain: it
// makes d̂a unbiased regardless of the true anomaly.
func TestNUISEGainIdentity(t *testing.T) {
	rig := newTestRig(4)
	x := mat.VecOf(1.2, 0.9, 0.7)
	u := rig.model.WheelSpeeds(0.1, -0.3)
	a := rig.model.A(x, u)
	g := rig.model.G(x, u)
	xPred := rig.model.F(x, u)
	c2 := rig.ips.C(xPred)
	r2 := rig.ips.R()
	px := mat.Diag(1e-4, 1e-4, 1e-4)

	pTilde := a.Mul(px).Mul(a.T()).Add(rig.plant.Q)
	rStar := c2.Mul(pTilde).Mul(c2.T()).Add(r2).Symmetrize()
	rStarInv, err := rStar.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	gtC2t := g.T().Mul(c2.T())
	fisher := gtC2t.Mul(rStarInv).Mul(c2.Mul(g))
	fisherInv, err := fisher.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	m2 := fisherInv.Mul(gtC2t).Mul(rStarInv)
	if !m2.Mul(c2).Mul(g).Equal(mat.Identity(2), 1e-8) {
		t.Fatalf("M2·C2·G ≠ I:\n%v", m2.Mul(c2).Mul(g))
	}
}

func TestNUISEActuatorUnobservable(t *testing.T) {
	rig := newTestRig(5)
	// A magnetometer (1-D reading) cannot distinguish two actuator
	// inputs: rank(C2·G) < 2, so the step degrades to a plain EKF
	// update with DaValid = false and an uninformative Pa.
	mag := sensors.NewMagnetometer(3)
	x := mat.VecOf(1, 1, 0)
	u := rig.model.WheelSpeeds(0.1, 0)
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	z2 := mag.H(x)
	res, err := NUISE(rig.plant, mag, nil, u, x, px, nil, z2)
	if err != nil {
		t.Fatal(err)
	}
	if res.DaValid {
		t.Fatal("DaValid should be false for a magnetometer reference")
	}
	if res.Da.MaxAbs() != 0 {
		t.Fatalf("fallback d̂a = %v, want zero", res.Da)
	}
	if res.Pa.At(0, 0) < 1e3 {
		t.Fatalf("fallback Pa not uninformative: %v", res.Pa.At(0, 0))
	}
	quad, err := res.Pa.InvQuadForm(res.Da)
	if err != nil || quad != 0 {
		t.Fatalf("fallback actuator statistic = %v (err %v), want 0", quad, err)
	}
}

func TestNUISEBicycleStandstill(t *testing.T) {
	// At v = 0 the steering column of G vanishes; NUISE must degrade
	// gracefully instead of failing (the Tamiya mission starts at rest).
	model := dynamics.NewTamiya(0.1)
	plant := Plant{Model: model, Q: mat.Diag(2.5e-7, 2.5e-7, 1e-6, 4e-6), AngleStates: []int{2}}
	ips := sensors.NewIPS(4)
	x := mat.VecOf(1, 1, 0, 0)
	u := mat.VecOf(0.2, 0.1)
	px := mat.Diag(1e-6, 1e-6, 1e-6, 1e-6)
	z2 := ips.H(model.F(x, u))
	res, err := NUISE(plant, ips, nil, u, x, px, nil, z2)
	if err != nil {
		t.Fatal(err)
	}
	if res.DaValid {
		t.Fatal("steering should be unobservable at standstill")
	}
	if res.X.HasNaN() {
		t.Fatal("fallback state update contaminated")
	}
}

func TestNUISEFusionModeNoTesting(t *testing.T) {
	rig := newTestRig(6)
	fusion, err := FusionMode(rig.suite)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := mat.VecOf(1, 1, 0.1)
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	u := rig.model.WheelSpeeds(0.1, 0.1)
	xNext := rig.model.F(xTrue, u).Add(rig.processNoise())
	z2 := rig.measure(rig.ips, xNext).
		Concat(rig.measure(rig.we, xNext)).
		Concat(rig.measure(rig.lidar, xNext))
	res, err := NUISE(rig.plant, fusion.Reference, fusion.TestingStacked(), u, xTrue, px, nil, z2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ds != nil {
		t.Fatal("fusion mode should have no sensor anomaly estimate")
	}
	if res.Da.MaxAbs() > 0.05 {
		t.Fatalf("clean fusion step d̂a = %v", res.Da)
	}
}

// Sensor fusion strictly reduces the actuator anomaly estimate variance
// (§V-E / Table IV): trace(Pa) with all sensors < with any single one.
func TestNUISEFusionReducesVariance(t *testing.T) {
	rig := newTestRig(7)
	xTrue := mat.VecOf(1, 1, 0.1)
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	u := rig.model.WheelSpeeds(0.1, 0.1)
	xNext := rig.model.F(xTrue, u)

	paTrace := func(ref sensors.Sensor) float64 {
		z2 := ref.H(xNext) // noise-free reading; Pa is what matters
		res, err := NUISE(rig.plant, ref, nil, u, xTrue, px, nil, z2)
		if err != nil {
			t.Fatal(err)
		}
		var tr float64
		for i := 0; i < res.Pa.Rows(); i++ {
			tr += res.Pa.At(i, i)
		}
		return tr
	}

	all, err := sensors.NewStacked(rig.suite...)
	if err != nil {
		t.Fatal(err)
	}
	trIPS := paTrace(rig.ips)
	trWE := paTrace(rig.we)
	trLidar := paTrace(rig.lidar)
	trAll := paTrace(all)

	if trAll >= trIPS || trAll >= trWE || trAll >= trLidar {
		t.Fatalf("fusion variance %.3g not below singles (ips %.3g, we %.3g, lidar %.3g)",
			trAll, trIPS, trWE, trLidar)
	}
	// LiDAR is the noisiest sensor; its single-reference variance should
	// dominate, matching Table IV's ordering.
	if trLidar <= trIPS || trLidar <= trWE {
		t.Fatalf("expected lidar variance (%.3g) above ips (%.3g) and we (%.3g)", trLidar, trIPS, trWE)
	}
}

func TestNUISECovariancesPSD(t *testing.T) {
	rig := newTestRig(8)
	xTrue := mat.VecOf(0.9, 1.1, -0.4)
	xEst := xTrue.Clone()
	px := mat.Diag(1e-4, 1e-4, 1e-4)
	testing, err := sensors.NewStacked(rig.we, rig.lidar)
	if err != nil {
		t.Fatal(err)
	}
	u := rig.model.WheelSpeeds(0.12, -0.2)
	for k := 0; k < 50; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		z1 := rig.measure(rig.we, xTrue).Concat(rig.measure(rig.lidar, xTrue))
		z2 := rig.measure(rig.ips, xTrue)
		res, err := NUISE(rig.plant, rig.ips, testing, u, xEst, px, z1, z2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for name, m := range map[string]*mat.Mat{"Px": res.Px, "Pa": res.Pa, "Ps": res.Ps} {
			if !m.IsPositiveSemiDefinite(1e-6) {
				t.Fatalf("k=%d: %s not PSD:\n%v", k, name, m)
			}
		}
		xEst, px = res.X, res.Px
	}
}

func TestPlantValidate(t *testing.T) {
	if err := (Plant{}).Validate(); err == nil {
		t.Fatal("empty plant accepted")
	}
	model := dynamics.NewKhepera(0.1)
	if err := (Plant{Model: model, Q: mat.Diag(1, 1)}).Validate(); err == nil {
		t.Fatal("wrong-size Q accepted")
	}
	if err := (Plant{Model: model, Q: mat.Diag(1, 1, 1)}).Validate(); err != nil {
		t.Fatalf("valid plant rejected: %v", err)
	}
}
