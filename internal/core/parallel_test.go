package core

import (
	"sync/atomic"
	"testing"

	"roboads/internal/mat"
)

// recordScenario pre-generates a full scenario (commands and readings,
// with an IPS bias window) so two engines can replay byte-identical
// inputs.
func recordScenario(seed int64, steps int) (*testRig, []mat.Vec, []map[string]mat.Vec) {
	rig := newTestRig(seed)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.2)
	us := make([]mat.Vec, 0, steps)
	readings := make([]map[string]mat.Vec, 0, steps)
	for k := 0; k < steps; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		r := rig.readings(xTrue)
		if k >= 30 && k < 70 {
			r["ips"] = r["ips"].Add(mat.VecOf(0.07, 0, 0))
		}
		us = append(us, u)
		readings = append(readings, r)
	}
	return rig, us, readings
}

func engineWithWorkers(t *testing.T, rig *testRig, workers int) *Engine {
	return engineWithObserver(t, rig, workers, nil)
}

func engineWithObserver(t *testing.T, rig *testRig, workers int, obs Observer) *Engine {
	t.Helper()
	x0 := mat.VecOf(0.8, 0.8, 0.2)
	u0 := rig.model.WheelSpeeds(0.1, 0)
	modes, err := SingleReferenceModes(rig.plant.Model, rig.suite, x0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEngineConfig()
	cfg.Workers = workers
	cfg.Observer = obs
	eng, err := NewEngine(rig.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// countingObserver is a race-safe Observer stub: it counts every hook
// invocation the way a real telemetry sink would, without perturbing
// the engine.
type countingObserver struct {
	steps, modeSteps, poolWaits, drops atomic.Int64
}

func (c *countingObserver) EngineStep(*StepStats)             { c.steps.Add(1) }
func (c *countingObserver) ModeStep(int, string, int64, bool) { c.modeSteps.Add(1) }
func (c *countingObserver) PoolWait(int64)                    { c.poolWaits.Add(1) }
func (c *countingObserver) DroppedReading(string)             { c.drops.Add(1) }

func vecsEqual(a, b mat.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The determinism guarantee: a parallel engine produces bit-for-bit the
// same weights, selection, and estimates as the sequential path over a
// full scenario, including an attack window that exercises the weight
// floor, hysteresis, and resync logic. Both engines run with an observer
// attached: telemetry is strictly read-only, so it must not perturb
// the output on either path.
func TestEngineParallelMatchesSequential(t *testing.T) {
	rig, us, readings := recordScenario(21, 100)
	seqObs, parObs := &countingObserver{}, &countingObserver{}
	seq := engineWithObserver(t, rig, 1, seqObs)
	par := engineWithObserver(t, rig, 4, parObs)
	defer par.Close()

	for k := range us {
		outS, errS := seq.Step(us[k], readings[k])
		outP, errP := par.Step(us[k], readings[k])
		if (errS == nil) != (errP == nil) {
			t.Fatalf("k=%d: sequential err %v, parallel err %v", k, errS, errP)
		}
		if errS != nil {
			continue
		}
		if outS.Selected != outP.Selected {
			t.Fatalf("k=%d: selected %d vs %d", k, outS.Selected, outP.Selected)
		}
		if !vecsEqual(mat.Vec(outS.Weights), mat.Vec(outP.Weights)) {
			t.Fatalf("k=%d: weights diverged\nseq %v\npar %v", k, outS.Weights, outP.Weights)
		}
		if !vecsEqual(outS.Result.X, outP.Result.X) {
			t.Fatalf("k=%d: state estimates diverged\nseq %v\npar %v", k, outS.Result.X, outP.Result.X)
		}
		if !outS.Result.Px.Equal(outP.Result.Px, 0) {
			t.Fatalf("k=%d: covariances diverged", k)
		}
		for i := range outS.PerMode {
			rs, rp := outS.PerMode[i], outP.PerMode[i]
			if (rs == nil) != (rp == nil) {
				t.Fatalf("k=%d mode %d: one path failed, the other didn't", k, i)
			}
			if rs == nil {
				continue
			}
			if !vecsEqual(rs.X, rp.X) || rs.Likelihood != rp.Likelihood || rs.PValue != rp.PValue {
				t.Fatalf("k=%d mode %d: per-mode results diverged", k, i)
			}
		}
	}

	xS, pxS := seq.State()
	xP, pxP := par.State()
	if !vecsEqual(xS, xP) || !pxS.Equal(pxP, 0) {
		t.Fatalf("final consensus diverged: %v vs %v", xS, xP)
	}

	// Both observers saw the full mission: one EngineStep per iteration,
	// one ModeStep per mode per iteration, and — parallel path only —
	// one PoolWait per submitted mode job.
	steps, modes := int64(len(us)), int64(3*len(us))
	if seqObs.steps.Load() != steps || parObs.steps.Load() != steps {
		t.Fatalf("EngineStep counts = %d/%d, want %d", seqObs.steps.Load(), parObs.steps.Load(), steps)
	}
	if seqObs.modeSteps.Load() != modes || parObs.modeSteps.Load() != modes {
		t.Fatalf("ModeStep counts = %d/%d, want %d", seqObs.modeSteps.Load(), parObs.modeSteps.Load(), modes)
	}
	if seqObs.poolWaits.Load() != 0 || parObs.poolWaits.Load() != modes {
		t.Fatalf("PoolWait counts = %d/%d, want 0/%d", seqObs.poolWaits.Load(), parObs.poolWaits.Load(), modes)
	}
}

// A dropped sensor packet (reading missing from the map) must degrade
// only the modes that depend on that sensor, not abort the bank: modes
// referencing it sit the iteration out, modes merely testing it run
// reference-only, and the next complete reading set restores everyone.
func TestEngineStepMissingReadingDegradesBank(t *testing.T) {
	rig := newTestRig(22)
	eng := buildEngine(t, rig)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.1)
	for k := 0; k < 10; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		if _, err := eng.Step(u, rig.readings(xTrue)); err != nil {
			t.Fatalf("warmup k=%d: %v", k, err)
		}
	}

	xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
	dropped := rig.readings(xTrue)
	delete(dropped, "ips")
	out, err := eng.Step(u, dropped)
	if err != nil {
		t.Fatalf("dropped packet sank the bank: %v", err)
	}
	modes := eng.Modes()
	for i, m := range modes {
		refUsesIPS := false
		for _, name := range m.ReferenceNames {
			if name == "ips" {
				refUsesIPS = true
			}
		}
		if refUsesIPS {
			if out.PerMode[i] != nil {
				t.Fatalf("mode %s ran without its reference reading", m.Name)
			}
			continue
		}
		if out.PerMode[i] == nil {
			t.Fatalf("mode %s failed although its reference was present", m.Name)
		}
		// ips sits in this mode's testing block; the testing stack is
		// incomplete, so the mode must have run reference-only.
		if out.PerMode[i].Ds != nil {
			t.Fatalf("mode %s produced d̂s from an incomplete testing stack", m.Name)
		}
	}
	for _, name := range out.SelectedMode.ReferenceNames {
		if name == "ips" {
			t.Fatalf("selected mode %s references the dropped sensor", out.SelectedMode.Name)
		}
	}

	// Full readings next iteration: every mode recovers.
	xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
	out, err = eng.Step(u, rig.readings(xTrue))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range modes {
		if out.PerMode[i] == nil {
			t.Fatalf("mode %s did not recover after the drop", m.Name)
		}
		if len(m.Testing) > 0 && out.PerMode[i].Ds == nil {
			t.Fatalf("mode %s missing d̂s after recovery", m.Name)
		}
	}
}

// A negative pseudo-determinant means the PSD projection failed; the
// density must be reported as zero (mode takes the floor), not computed
// from |det|.
func TestLikelihoodRejectsNegativePseudoDet(t *testing.T) {
	nu := mat.VecOf(0.1, 0.2)
	pinv := mat.Identity(2)
	if density, pv := likelihoodOf(nu, pinv, 2, -1e-6); density != 0 || pv != 0 {
		t.Fatalf("negative pseudo-det: density=%v p=%v, want 0, 0", density, pv)
	}
	if density, pv := likelihoodOf(nu, pinv, 2, 1.0); density <= 0 || pv <= 0 {
		t.Fatalf("positive pseudo-det: density=%v p=%v, want > 0", density, pv)
	}
}

func TestEngineCloseIdempotent(t *testing.T) {
	rig := newTestRig(23)
	eng := engineWithWorkers(t, rig, 4)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.1, 0)
	xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
	if _, err := eng.Step(u, rig.readings(xTrue)); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // second close must be a no-op

	seq := engineWithWorkers(t, rig, 1)
	seq.Close() // sequential engines have no pool; Close is still safe
}
