package core

import (
	"errors"
	"fmt"
	"testing"

	"roboads/internal/mat"
)

// batchScenario pre-generates per-session inputs: distinct seeds per
// session, an IPS bias window, and periodic dropped readings so the
// batched gather exercises the mode-sits-out and reference-only paths.
func batchScenario(seed int64, steps int) (*testRig, []mat.Vec, []map[string]mat.Vec) {
	rig := newTestRig(seed)
	xTrue := mat.VecOf(0.8, 0.8, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.2)
	us := make([]mat.Vec, 0, steps)
	readings := make([]map[string]mat.Vec, 0, steps)
	for k := 0; k < steps; k++ {
		xTrue = rig.model.F(xTrue, u).Add(rig.processNoise())
		r := rig.readings(xTrue)
		if k >= 20 && k < 45 {
			r["ips"] = r["ips"].Add(mat.VecOf(0.07, 0, 0))
		}
		if k%17 == 5 {
			delete(r, "ips")
		}
		if k%23 == 7 {
			delete(r, "lidar")
		}
		us = append(us, u)
		readings = append(readings, r)
	}
	return rig, us, readings
}

func requireOutputsEqual(t *testing.T, k, s int, want, got *Output) {
	t.Helper()
	if want.Iteration != got.Iteration || want.Selected != got.Selected {
		t.Fatalf("k=%d session=%d: iteration/selected %d/%d vs %d/%d",
			k, s, want.Iteration, want.Selected, got.Iteration, got.Selected)
	}
	if !vecsEqual(mat.Vec(want.Weights), mat.Vec(got.Weights)) {
		t.Fatalf("k=%d session=%d: weights\nscalar %v\nbatch  %v", k, s, want.Weights, got.Weights)
	}
	for i := range want.PerMode {
		rw, rg := want.PerMode[i], got.PerMode[i]
		if (rw == nil) != (rg == nil) {
			t.Fatalf("k=%d session=%d mode=%d: nil mismatch (scalar nil=%v)", k, s, i, rw == nil)
		}
		if rw == nil {
			continue
		}
		if !vecsEqual(rw.X, rg.X) || !rw.Px.Equal(rg.Px, 0) {
			t.Fatalf("k=%d session=%d mode=%d: state/covariance diverged", k, s, i)
		}
		if !vecsEqual(rw.Da, rg.Da) || !rw.Pa.Equal(rg.Pa, 0) {
			t.Fatalf("k=%d session=%d mode=%d: actuator estimate diverged", k, s, i)
		}
		if (rw.Ds == nil) != (rg.Ds == nil) || (rw.Ds != nil && !vecsEqual(rw.Ds, rg.Ds)) {
			t.Fatalf("k=%d session=%d mode=%d: Ds diverged", k, s, i)
		}
		if !rw.Ps.Equal(rg.Ps, 0) {
			t.Fatalf("k=%d session=%d mode=%d: Ps diverged", k, s, i)
		}
		if rw.Likelihood != rg.Likelihood || rw.PValue != rg.PValue {
			t.Fatalf("k=%d session=%d mode=%d: likelihood %v/%v vs %v/%v",
				k, s, i, rw.Likelihood, rw.PValue, rg.Likelihood, rg.PValue)
		}
		if !vecsEqual(rw.Innovation, rg.Innovation) {
			t.Fatalf("k=%d session=%d mode=%d: innovation diverged", k, s, i)
		}
		if rw.Implausible != rg.Implausible || rw.DaValid != rg.DaValid {
			t.Fatalf("k=%d session=%d mode=%d: flags diverged", k, s, i)
		}
	}
	if len(want.SensorAnomalies) != len(got.SensorAnomalies) {
		t.Fatalf("k=%d session=%d: anomaly split length %d vs %d",
			k, s, len(want.SensorAnomalies), len(got.SensorAnomalies))
	}
	for j := range want.SensorAnomalies {
		aw, ag := want.SensorAnomalies[j], got.SensorAnomalies[j]
		if aw.Sensor != ag.Sensor || !vecsEqual(aw.Ds, ag.Ds) || !aw.Ps.Equal(ag.Ps, 0) {
			t.Fatalf("k=%d session=%d: anomaly split %d diverged", k, s, j)
		}
	}
}

// The batched path must be bit-for-bit identical per session to the
// scalar path: same weights, selections, per-mode estimates,
// likelihoods, p-values, and anomaly splits, step for step, across
// sessions with divergent inputs (distinct seeds, bias windows,
// dropped readings).
func TestEngineBatchMatchesScalar(t *testing.T) {
	for _, K := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("K=%d", K), func(t *testing.T) {
			const steps = 60
			scalar := make([]*Engine, K)
			batched := make([]*Engine, K)
			us := make([][]mat.Vec, K)
			readings := make([][]map[string]mat.Vec, K)
			for s := 0; s < K; s++ {
				rig, u, r := batchScenario(int64(100+s), steps)
				us[s], readings[s] = u, r
				scalar[s] = engineWithWorkers(t, rig, 1)
				batched[s] = engineWithWorkers(t, rig, 1)
			}
			eb, err := NewEngineBatch(batched[0], K)
			if err != nil {
				t.Fatal(err)
			}

			stepUs := make([]mat.Vec, K)
			stepReadings := make([]map[string]mat.Vec, K)
			for k := 0; k < steps; k++ {
				for s := 0; s < K; s++ {
					stepUs[s] = us[s][k]
					stepReadings[s] = readings[s][k]
				}
				outs, errs := eb.Step(batched, stepUs, stepReadings)
				for s := 0; s < K; s++ {
					want, wantErr := scalar[s].Step(us[s][k], readings[s][k])
					if (wantErr == nil) != (errs[s] == nil) {
						t.Fatalf("k=%d session=%d: scalar err %v, batch err %v", k, s, wantErr, errs[s])
					}
					if wantErr != nil {
						continue
					}
					requireOutputsEqual(t, k, s, want, outs[s])
					xw, pw := scalar[s].State()
					xg, pg := batched[s].State()
					if !vecsEqual(xw, xg) || !pw.Equal(pg, 0) {
						t.Fatalf("k=%d session=%d: committed engine state diverged", k, s)
					}
				}
			}
		})
	}
}

// When the Cholesky happy path is disabled entirely (the forced-Jacobi
// test hook), every (session, mode) falls back to the scalar redo —
// and the outputs must still match the scalar engines exactly.
func TestEngineBatchForcedFallbackMatchesScalar(t *testing.T) {
	forceJacobiLikelihood = true
	defer func() { forceJacobiLikelihood = false }()

	const K, steps = 3, 25
	scalar := make([]*Engine, K)
	batched := make([]*Engine, K)
	us := make([][]mat.Vec, K)
	readings := make([][]map[string]mat.Vec, K)
	for s := 0; s < K; s++ {
		rig, u, r := batchScenario(int64(900+s), steps)
		us[s], readings[s] = u, r
		scalar[s] = engineWithWorkers(t, rig, 1)
		batched[s] = engineWithWorkers(t, rig, 1)
	}
	eb, err := NewEngineBatch(batched[0], K)
	if err != nil {
		t.Fatal(err)
	}
	stepUs := make([]mat.Vec, K)
	stepReadings := make([]map[string]mat.Vec, K)
	for k := 0; k < steps; k++ {
		for s := 0; s < K; s++ {
			stepUs[s] = us[s][k]
			stepReadings[s] = readings[s][k]
		}
		outs, errs := eb.Step(batched, stepUs, stepReadings)
		for s := 0; s < K; s++ {
			want, wantErr := scalar[s].Step(us[s][k], readings[s][k])
			if (wantErr == nil) != (errs[s] == nil) {
				t.Fatalf("k=%d session=%d: scalar err %v, batch err %v", k, s, wantErr, errs[s])
			}
			if wantErr == nil {
				requireOutputsEqual(t, k, s, want, outs[s])
			}
		}
	}
}

// Outputs must own their memory: retaining a step's results while the
// batch keeps stepping (reusing all its blocked buffers) must not
// mutate them — the contract the fleet wire layer depends on.
func TestEngineBatchOutputsOwnMemory(t *testing.T) {
	const K, steps = 2, 30
	batched := make([]*Engine, K)
	us := make([][]mat.Vec, K)
	readings := make([][]map[string]mat.Vec, K)
	for s := 0; s < K; s++ {
		_, u, r := batchScenario(int64(40+s), steps)
		us[s], readings[s] = u, r
		rig, _, _ := batchScenario(int64(40+s), steps)
		batched[s] = engineWithWorkers(t, rig, 1)
	}
	eb, err := NewEngineBatch(batched[0], K)
	if err != nil {
		t.Fatal(err)
	}
	stepUs := make([]mat.Vec, K)
	stepReadings := make([]map[string]mat.Vec, K)
	step := func(k int) []*Output {
		for s := 0; s < K; s++ {
			stepUs[s] = us[s][k]
			stepReadings[s] = readings[s][k]
		}
		outs, errs := eb.Step(batched, stepUs, stepReadings)
		for s, e := range errs {
			if e != nil {
				t.Fatalf("k=%d session=%d: %v", k, s, e)
			}
		}
		return outs
	}

	first := step(0)
	snapX := make([]mat.Vec, K)
	snapPx := make([]*mat.Mat, K)
	snapDa := make([]mat.Vec, K)
	for s, out := range first {
		snapX[s] = out.Result.X.Clone()
		snapPx[s] = out.Result.Px.Clone()
		snapDa[s] = append(mat.Vec(nil), out.Result.Da...)
	}
	for k := 1; k < steps; k++ {
		step(k)
	}
	for s, out := range first {
		if !vecsEqual(out.Result.X, snapX[s]) || !out.Result.Px.Equal(snapPx[s], 0) || !vecsEqual(out.Result.Da, snapDa[s]) {
			t.Fatalf("session %d: retained step-0 output mutated by later batched steps", s)
		}
	}
}

// Shape-incompatible engines are rejected per session with
// ErrBatchShape and left unstepped; compatible sessions in the same
// call still step normally.
func TestEngineBatchRejectsShapeMismatch(t *testing.T) {
	rig, us, readings := batchScenario(7, 3)
	good := engineWithWorkers(t, rig, 1)
	proto := engineWithWorkers(t, rig, 1)

	// An engine over a single fused mode: different mode-bank geometry.
	x0 := mat.VecOf(0.8, 0.8, 0.2)
	fused, err := FusionMode(rig.suite)
	if err != nil {
		t.Fatal(err)
	}
	odd, err := NewEngine(rig.plant, []*Mode{fused}, x0, mat.Diag(1e-6, 1e-6, 1e-6), DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}

	eb, err := NewEngineBatch(proto, 2)
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := eb.Step([]*Engine{good, odd},
		[]mat.Vec{us[0], us[0]}, []map[string]mat.Vec{readings[0], readings[0]})
	if !errors.Is(errs[1], ErrBatchShape) {
		t.Fatalf("mismatched engine error = %v, want ErrBatchShape", errs[1])
	}
	if outs[1] != nil {
		t.Fatal("mismatched engine produced an output")
	}
	if errs[0] != nil || outs[0] == nil {
		t.Fatalf("compatible session did not step: out=%v err=%v", outs[0], errs[0])
	}
}
