package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"roboads/internal/mat"
)

// EngineState is the complete cross-iteration state of an Engine: the
// portion of the recursive filter that must survive a process restart
// for the next Step to be bit-for-bit identical to an uninterrupted run.
// Everything else the engine holds (scratch arenas, the SPD factor
// cache, observer bookkeeping) is reconstructed within a single Step and
// is deliberately excluded. The field encoding is plain float64 slices,
// so any exact-float64 codec (encoding/json included) round-trips it
// without loss.
type EngineState struct {
	// K is the control iteration counter.
	K int `json:"k"`
	// Selected is the currently selected mode index (the hysteresis
	// anchor of the next Step's mode selection).
	Selected int `json:"selected"`
	// Weights are the normalized mode weights μ_k.
	Weights []float64 `json:"weights"`
	// X and Px are the consensus belief (row-major n×n covariance).
	X  []float64 `json:"x"`
	Px []float64 `json:"px"`
	// Modes holds each mode's private belief, indexed like the engine's
	// hypothesis set.
	Modes []ModeBelief `json:"modes"`
	// ConfigHash fingerprints the output-relevant EngineConfig scalars
	// (Epsilon, priors, resync level, density switch). Import refuses a
	// state recorded under a different configuration: restoring it would
	// silently continue the mission under different weighting dynamics.
	ConfigHash uint64 `json:"configHash"`
}

// ModeBelief is one mode's private state belief.
type ModeBelief struct {
	// Name is the mode's hypothesis label, validated on import so a
	// state cannot be restored into an engine with a different mode set.
	Name string `json:"name"`
	// X and Px are the mode's private posterior (row-major covariance).
	X  []float64 `json:"x"`
	Px []float64 `json:"px"`
}

// ErrStateMismatch indicates an exported pipeline state that does not
// fit the receiving pipeline: different mode set, state dimension,
// window shape, or configuration fingerprint.
var ErrStateMismatch = errors.New("core: state does not match pipeline configuration")

// configHash fingerprints the EngineConfig fields that influence engine
// output. Workers and Observer are excluded: both are contractually
// output-neutral, so a state may be restored into an engine with a
// different worker count or instrumentation attached.
func (cfg EngineConfig) configHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putF64 := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	putF64(cfg.Epsilon)
	putF64(cfg.AttackPrior)
	putF64(cfg.ActuatorPrior)
	putF64(cfg.ResyncWeight)
	if cfg.WeightByDensity {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Fingerprint identifies the engine's batchable profile: the plant
// model, the hypothesis mode structure (names, reference and testing
// sensor inventories with their dimensions), and the output-relevant
// configuration scalars (the same fields ConfigHash covers). Engines
// with equal fingerprints are congruent for EngineBatch purposes and
// run identical weighting dynamics, so a fleet scheduler may coalesce
// their sessions into one batched Step; engines built from the same
// robot profile under the same configuration always agree.
func (e *Engine) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	putStr := func(s string) {
		putU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	putStr(e.plant.Model.Name())
	putU64(uint64(e.plant.Model.StateDim()))
	putU64(uint64(e.plant.Model.ControlDim()))
	putU64(uint64(len(e.modes)))
	for _, m := range e.modes {
		putStr(m.Name)
		putU64(uint64(m.Reference.Dim()))
		putU64(uint64(len(m.ReferenceNames)))
		for _, name := range m.ReferenceNames {
			putStr(name)
		}
		putU64(uint64(len(m.Testing)))
		for _, s := range m.Testing {
			putStr(s.Name())
			putU64(uint64(s.Dim()))
		}
	}
	putU64(e.cfg.configHash())
	return h.Sum64()
}

// ExportState captures the engine's complete cross-iteration state. The
// returned value shares no memory with the engine and stays valid across
// further Steps. The engine must not be stepped concurrently.
func (e *Engine) ExportState() *EngineState {
	st := &EngineState{
		K:          e.k,
		Selected:   e.selected,
		Weights:    append([]float64(nil), e.weights...),
		X:          append([]float64(nil), e.x...),
		Px:         flattenMat(e.px),
		Modes:      make([]ModeBelief, len(e.modes)),
		ConfigHash: e.cfg.configHash(),
	}
	for i := range e.modes {
		st.Modes[i] = ModeBelief{
			Name: e.modes[i].Name,
			X:    append([]float64(nil), e.xm[i]...),
			Px:   flattenMat(e.pxm[i]),
		}
	}
	return st
}

// ImportState replaces the engine's cross-iteration state with st,
// validating that st fits this engine: same mode set (by name and
// order), same state dimension, same configuration fingerprint, and
// finite values throughout. On success the next Step continues the
// recorded mission bit-for-bit; on error the engine is unchanged. The
// SPD factor cache is reset rather than restored — it is rebuilt within
// one Step and holds pointers into the covariances being replaced, so
// dropping it preserves the CholCache invariant that cached factors only
// ever describe live matrices. The engine must not be stepped
// concurrently.
func (e *Engine) ImportState(st *EngineState) error {
	if st == nil {
		return fmt.Errorf("%w: nil engine state", ErrStateMismatch)
	}
	if st.ConfigHash != e.cfg.configHash() {
		return fmt.Errorf("%w: engine config hash %x (want %x)", ErrStateMismatch, st.ConfigHash, e.cfg.configHash())
	}
	if len(st.Modes) != len(e.modes) || len(st.Weights) != len(e.modes) {
		return fmt.Errorf("%w: %d modes / %d weights (engine has %d modes)", ErrStateMismatch, len(st.Modes), len(st.Weights), len(e.modes))
	}
	if st.Selected < 0 || st.Selected >= len(e.modes) || st.K < 0 {
		return fmt.Errorf("%w: selected=%d k=%d out of range", ErrStateMismatch, st.Selected, st.K)
	}
	n := len(e.x)
	x, px, err := beliefFromState(st.X, st.Px, n)
	if err != nil {
		return fmt.Errorf("%w: consensus belief: %v", ErrStateMismatch, err)
	}
	if err := allFinite(st.Weights); err != nil {
		return fmt.Errorf("%w: weights: %v", ErrStateMismatch, err)
	}
	type belief struct {
		x  mat.Vec
		px *mat.Mat
	}
	beliefs := make([]belief, len(st.Modes))
	for i, mb := range st.Modes {
		if mb.Name != e.modes[i].Name {
			return fmt.Errorf("%w: mode %d is %q (want %q)", ErrStateMismatch, i, mb.Name, e.modes[i].Name)
		}
		mx, mpx, err := beliefFromState(mb.X, mb.Px, n)
		if err != nil {
			return fmt.Errorf("%w: mode %q belief: %v", ErrStateMismatch, mb.Name, err)
		}
		beliefs[i] = belief{x: mx, px: mpx}
	}
	// All validation passed: commit atomically.
	e.k = st.K
	e.selected = st.Selected
	copy(e.weights, st.Weights)
	e.x = x
	e.px = px
	for i := range beliefs {
		e.xm[i] = beliefs[i].x
		e.pxm[i] = beliefs[i].px
	}
	e.spd.Reset()
	return nil
}

// flattenMat copies a matrix into a row-major slice.
func flattenMat(m *mat.Mat) []float64 {
	out := make([]float64, 0, m.Rows()*m.Cols())
	for i := 0; i < m.Rows(); i++ {
		out = append(out, m.Row(i)...)
	}
	return out
}

// beliefFromState validates and rebuilds one (x, Px) belief of state
// dimension n from its flat encoding.
func beliefFromState(x, px []float64, n int) (mat.Vec, *mat.Mat, error) {
	if len(x) != n || len(px) != n*n {
		return nil, nil, fmt.Errorf("dims %d/%d (want %d/%d)", len(x), len(px), n, n*n)
	}
	if err := allFinite(x); err != nil {
		return nil, nil, err
	}
	if err := allFinite(px); err != nil {
		return nil, nil, err
	}
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, px[i*n+j])
		}
	}
	return mat.Vec(append([]float64(nil), x...)), m, nil
}

// allFinite rejects NaN/Inf contamination before it enters the filter.
func allFinite(v []float64) error {
	for i, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("non-finite value %g at index %d", f, i)
		}
	}
	return nil
}
