// Package benchserve defines the BENCH_serve.json trajectory format —
// the serving-stack benchmark record cmd/loadgen appends and
// cmd/benchdiff gates. It is the fleet-level counterpart of
// BENCH_engine.json: where that file tracks engine-step ns/op, this one
// tracks end-to-end serving capacity (frames/s, sessions/core), client
// latency quantiles, backpressure, crash-recovery time, and the
// server's own per-stage latency attribution.
package benchserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Version is the current BENCH_serve.json format version.
const Version = 1

// File is the on-disk trajectory: one appended record per loadgen run.
type File struct {
	Version int       `json:"version"`
	Records []*Record `json:"records"`
}

// Record is one loadgen run: what was driven, where, and what came out.
type Record struct {
	Label      string  `json:"label,omitempty"`
	RecordedAt string  `json:"recordedAt"`
	Config     Config  `json:"config"`
	Env        Env     `json:"environment"`
	Results    Results `json:"results"`
}

// Config is the run's load shape. It is a comparable struct on
// purpose: benchdiff -serve only diffs records whose Config (and Label)
// are equal, so a 64-session run never masquerades as a baseline for an
// 8-session one.
type Config struct {
	Sessions        int     `json:"sessions"`
	RateHz          float64 `json:"rateHz"` // per session; 0 = closed loop
	Batch           int     `json:"batch"`
	Wire            string  `json:"wire"`
	Robot           string  `json:"robot"`
	DurationSeconds float64 `json:"durationSeconds"`
	FsyncEvery      int     `json:"fsyncEvery"`
	CommitWindowMs  float64 `json:"commitWindowMs"`
	Crash           bool    `json:"crash"`
	Spawned         bool    `json:"spawned"`
	// Nodes > 1 means a spawned multi-node cluster (that many serve
	// processes behind a router); 0/1 is the single-node harness.
	Nodes int `json:"nodes,omitempty"`
	// Migrate means half the sessions were live-migrated at half time.
	Migrate bool `json:"migrate,omitempty"`
}

// Env captures the machine, for cross-run comparability.
type Env struct {
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	NumCPU int    `json:"numcpu"`
}

// LatencyMs is a latency summary in milliseconds.
type LatencyMs struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Results are the run's measurements.
type Results struct {
	FramesSent  int `json:"framesSent"`
	FramesAcked int `json:"framesAcked"`
	// ClientRetries counts 429 resubmissions (client-observed
	// backpressure; the streaming endpoint absorbs its backpressure
	// server-side, visible in RejectsByCause instead).
	ClientRetries int `json:"clientRetries"`
	// SessionErrors counts sessions that ended their drive on an error.
	SessionErrors   int     `json:"sessionErrors"`
	FramesPerSecond float64 `json:"framesPerSecond"`
	// SessionsPerCore is acked frames/s per CPU — the capacity figure:
	// how many 1-frame/s robot sessions one core of this machine
	// sustains at this configuration.
	SessionsPerCore float64 `json:"sessionsPerCore"`
	// BackpressureRate is rejected submissions over all submissions,
	// combining client 429s and the server's cause-split counters.
	BackpressureRate float64          `json:"backpressureRate"`
	RejectsByCause   map[string]int64 `json:"rejectsByCause,omitempty"`
	// StepLatencyMs is client-observed: first submission to final ack.
	StepLatencyMs LatencyMs `json:"stepLatencyMs"`
	// Server-side frame-trace attribution (from /v1/debug/trace).
	ServerFrames     int64              `json:"serverFrames"`
	ServerE2EMs      LatencyMs          `json:"serverE2eMs"`
	ServerStageP50Ms map[string]float64 `json:"serverStageP50Ms,omitempty"`
	StageSumP50Ms    float64            `json:"stageSumP50Ms"`
	// AttributionError is |stage p50 sum − e2e p50| / e2e p50 — the
	// span self-validation figure (0 when the server traced nothing).
	AttributionError float64 `json:"attributionError"`
	// RecoverySeconds is kill -9 to all sessions live again (crash runs
	// only).
	RecoverySeconds float64 `json:"recoverySeconds,omitempty"`
}

// Load reads and parses a trajectory file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &f, nil
}

// Append adds r to the trajectory at path, creating the file on first
// use.
func Append(path string, r *Record) error {
	var file File
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		file.Version = Version
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if file.Version == 0 {
			file.Version = Version
		}
	}
	file.Records = append(file.Records, r)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
