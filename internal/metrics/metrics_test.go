package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionClassification(t *testing.T) {
	var c Confusion
	c.Add(true, true, true)    // TP
	c.Add(true, true, false)   // alarm, wrong identification → FP
	c.Add(false, true, false)  // alarm on clean → FP
	c.Add(true, false, false)  // missed → FN
	c.Add(false, false, false) // TN
	if c.TP != 1 || c.FP != 2 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 8, FP: 1, FN: 2, TN: 9}
	if got := c.FPR(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("FPR = %v", got)
	}
	if got := c.FNR(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("FNR = %v", got)
	}
	if got := c.TPR(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("TPR = %v", got)
	}
	if got := c.Precision(); math.Abs(got-8.0/9) > 1e-12 {
		t.Fatalf("Precision = %v", got)
	}
	wantF1 := 2 * (8.0 / 9) * 0.8 / (8.0/9 + 0.8)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", got, wantF1)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.FPR() != 0 || c.FNR() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion rates should be 0")
	}
	if c.HasPositives() {
		t.Fatal("empty confusion has positives")
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	a.Merge(Confusion{TP: 10, FP: 20, FN: 30, TN: 40})
	if a.TP != 11 || a.FP != 22 || a.FN != 33 || a.TN != 44 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestDelay(t *testing.T) {
	detected := make([]bool, 100)
	for i := 57; i < 100; i++ {
		detected[i] = true
	}
	d := FirstDetection(50, detected)
	if d.Iterations() != 7 {
		t.Fatalf("delay = %d iterations", d.Iterations())
	}
	if got := d.Seconds(0.1); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("delay = %vs", got)
	}
	miss := FirstDetection(99, []bool{false})
	if miss.Detected != -1 || miss.Iterations() != -1 || miss.Seconds(0.1) != -1 {
		t.Fatalf("missed detection = %+v", miss)
	}
}

func TestMeanDelaySeconds(t *testing.T) {
	delays := []Delay{
		{Onset: 10, Detected: 14},
		{Onset: 20, Detected: 26},
		{Onset: 30, Detected: -1}, // ignored
	}
	if got := MeanDelaySeconds(delays, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean delay = %v", got)
	}
	if got := MeanDelaySeconds([]Delay{{Onset: 1, Detected: -1}}, 0.1); got != -1 {
		t.Fatalf("all-missed mean = %v", got)
	}
}

func TestSortROCAndAUC(t *testing.T) {
	points := []ROCPoint{
		{Alpha: 0.5, FPR: 0.5, TPR: 0.9},
		{Alpha: 0.01, FPR: 0.1, TPR: 0.7},
	}
	sorted := SortROC(points)
	if sorted[0].FPR != 0.1 {
		t.Fatalf("sort order wrong: %+v", sorted)
	}
	auc := AUC(points)
	// Piecewise trapezoid through (0,0),(0.1,0.7),(0.5,0.9),(1,1).
	want := 0.1*0.7/2 + 0.4*(0.7+0.9)/2 + 0.5*(0.9+1)/2
	if math.Abs(auc-want) > 1e-12 {
		t.Fatalf("AUC = %v, want %v", auc, want)
	}
	// A perfect detector dominates a random one.
	perfect := AUC([]ROCPoint{{FPR: 0, TPR: 1}})
	if perfect != 1 {
		t.Fatalf("perfect AUC = %v", perfect)
	}
}

func TestConditionSequence(t *testing.T) {
	codes := []string{"S0", "S0", "S0", "S2", "S0", "S2", "S2", "S2", "S4", "S4", "S4"}
	// minRun 2 drops the one-iteration S0 blip and the first short S2.
	got := ConditionSequence(codes, 2)
	want := []string{"S0", "S2", "S4"}
	if len(got) != len(want) {
		t.Fatalf("sequence = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestConditionSequenceMergesAcrossTransients(t *testing.T) {
	codes := []string{"S0", "S0", "S1", "S0", "S0"}
	got := ConditionSequence(codes, 2)
	// The S1 blip is dropped and the surrounding S0 runs merge.
	if len(got) != 1 || got[0] != "S0" {
		t.Fatalf("sequence = %v", got)
	}
}

func TestConditionSequenceEmpty(t *testing.T) {
	if got := ConditionSequence(nil, 3); len(got) != 0 {
		t.Fatalf("sequence of nothing = %v", got)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	got := c.String()
	for _, want := range []string{"TP=1", "FP=2", "FN=3", "TN=4", "FPR", "FNR"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String = %q missing %q", got, want)
		}
	}
}
