// Package metrics implements the paper's evaluation measures (§V
// "Metrics"): per-iteration true/false positive/negative accounting with
// the paper's identification-aware definitions, detection delay, F1, and
// ROC curve assembly for the Fig. 7 parameter sweeps.
package metrics

import (
	"fmt"
	"sort"
)

// Confusion accumulates the paper's four event classes:
//
//   - TP: an alarm that correctly identifies the misbehaving condition.
//   - FP: any positive detection result that is not correct (an alarm on
//     a clean robot, or an alarm with a wrong identification).
//   - FN: no alarm while the robot is misbehaving.
//   - TN: no misbehavior and no alarm.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add records one iteration. truthPositive is the ground truth,
// detectedPositive the alarm, and correct whether the identified
// condition matches the truth (only consulted when both are true).
func (c *Confusion) Add(truthPositive, detectedPositive, correct bool) {
	switch {
	case detectedPositive && truthPositive && correct:
		c.TP++
	case detectedPositive:
		c.FP++
	case truthPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Merge adds another confusion's counts into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// FPR returns FP / (FP + TN), or 0 when undefined.
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// FNR returns FN / (FN + TP), or 0 when undefined.
func (c Confusion) FNR() float64 { return ratio(c.FN, c.FN+c.TP) }

// TPR returns TP / (TP + FN), or 0 when undefined.
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// Precision returns TP / (TP + FP), or 0 when undefined.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Recall is an alias for TPR.
func (c Confusion) Recall() float64 { return c.TPR() }

// F1 returns the harmonic mean of precision and recall, or 0 when
// undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// HasPositives reports whether any ground-truth-positive iteration was
// recorded.
func (c Confusion) HasPositives() bool { return c.TP+c.FN > 0 }

// String implements fmt.Stringer.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d (FPR %.2f%%, FNR %.2f%%)",
		c.TP, c.FP, c.FN, c.TN, 100*c.FPR(), 100*c.FNR())
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Delay measures the paper's detection delay: the period between the
// iteration a misbehavior is triggered and the iteration the system first
// correctly captures it.
type Delay struct {
	// Onset is the trigger iteration.
	Onset int
	// Detected is the first correct-detection iteration, or −1 if the
	// misbehavior was never captured.
	Detected int
}

// Iterations returns the delay in control iterations, or −1 when never
// detected.
func (d Delay) Iterations() int {
	if d.Detected < 0 {
		return -1
	}
	return d.Detected - d.Onset
}

// Seconds converts the delay at the given control period, or −1 when
// never detected.
func (d Delay) Seconds(dt float64) float64 {
	if d.Detected < 0 {
		return -1
	}
	return float64(d.Iterations()) * dt
}

// FirstDetection scans per-iteration detection flags for the first true
// value at or after onset and returns the resulting Delay.
func FirstDetection(onset int, detected []bool) Delay {
	for k := onset; k < len(detected); k++ {
		if detected[k] {
			return Delay{Onset: onset, Detected: k}
		}
	}
	return Delay{Onset: onset, Detected: -1}
}

// MeanDelaySeconds averages the delays that resulted in detection,
// ignoring missed ones; returns −1 when none detected.
func MeanDelaySeconds(delays []Delay, dt float64) float64 {
	var sum float64
	n := 0
	for _, d := range delays {
		if d.Detected >= 0 {
			sum += d.Seconds(dt)
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// ROCPoint is one (FPR, TPR) operating point of Fig. 7(a,b).
type ROCPoint struct {
	// Alpha is the confidence level that produced this point.
	Alpha float64
	// FPR and TPR are the coordinates.
	FPR, TPR float64
}

// SortROC orders points by FPR then TPR, ready for plotting or AUC
// computation.
func SortROC(points []ROCPoint) []ROCPoint {
	out := append([]ROCPoint(nil), points...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FPR != out[j].FPR {
			return out[i].FPR < out[j].FPR
		}
		return out[i].TPR < out[j].TPR
	})
	return out
}

// AUC computes the area under a sorted ROC curve by trapezoidal rule,
// anchored at (0,0) and (1,1).
func AUC(points []ROCPoint) float64 {
	pts := SortROC(points)
	xs := []float64{0}
	ys := []float64{0}
	for _, p := range pts {
		xs = append(xs, p.FPR)
		ys = append(ys, p.TPR)
	}
	xs = append(xs, 1)
	ys = append(ys, 1)
	var area float64
	for i := 1; i < len(xs); i++ {
		area += (xs[i] - xs[i-1]) * (ys[i] + ys[i-1]) / 2
	}
	return area
}

// ConditionSequence compresses a per-iteration condition-code series into
// the paper's transition notation (e.g. S0→2→4 in Table II): consecutive
// duplicates collapse, and runs shorter than minRun iterations are
// dropped as transients.
func ConditionSequence(codes []string, minRun int) []string {
	if minRun < 1 {
		minRun = 1
	}
	var out []string
	i := 0
	for i < len(codes) {
		j := i
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		if j-i >= minRun {
			if len(out) == 0 || out[len(out)-1] != codes[i] {
				out = append(out, codes[i])
			}
		}
		i = j
	}
	return out
}
