package detect

import (
	"math"
	"testing"
	"testing/quick"

	"roboads/internal/core"
	"roboads/internal/dynamics"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/stat"
	"roboads/internal/world"
)

func TestSlidingWindowBasic(t *testing.T) {
	w := NewSlidingWindow(3, 2)
	if w.Push(true) {
		t.Fatal("1 of 3 met criteria 2")
	}
	if !w.Push(true) {
		t.Fatal("2 of 3 should meet criteria 2")
	}
	if !w.Push(false) {
		t.Fatal("still 2 positives in window")
	}
	if w.Push(false) {
		t.Fatal("1 positive left, criteria not met")
	}
	if !w.Met() == true && w.Met() {
		t.Fatal("Met inconsistent")
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	w := NewSlidingWindow(2, 2)
	w.Push(true)
	if !w.Push(true) {
		t.Fatal("2/2 should fire")
	}
	if w.Push(false) {
		t.Fatal("eviction failed")
	}
	w.Reset()
	if w.Met() {
		t.Fatal("reset window still met")
	}
}

func TestSlidingWindowClamping(t *testing.T) {
	w := NewSlidingWindow(0, 9)
	// Clamped to 1-of-1.
	if !w.Push(true) {
		t.Fatal("clamped window should fire on a positive")
	}
	if w.Push(false) {
		t.Fatal("clamped window should clear on a negative")
	}
}

// The positive count tracked incrementally must always match a recount.
func TestPropertySlidingWindowCount(t *testing.T) {
	f := func(seed int64) bool {
		r := stat.NewRNG(seed)
		size := 1 + r.IntN(8)
		criteria := 1 + r.IntN(size)
		w := NewSlidingWindow(size, criteria)
		var history []bool
		for i := 0; i < 50; i++ {
			outcome := r.Float64() < 0.4
			history = append(history, outcome)
			got := w.Push(outcome)
			count := 0
			lo := len(history) - size
			if lo < 0 {
				lo = 0
			}
			for _, h := range history[lo:] {
				if h {
					count++
				}
			}
			if got != (count >= criteria) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{}
	if c.String() != "S0/A0" || !c.Clean() {
		t.Fatalf("clean condition = %q", c.String())
	}
	c = Condition{Sensors: []string{"ips"}, Actuator: true}
	if c.String() != "S{ips}/A1" || c.Clean() {
		t.Fatalf("condition = %q", c.String())
	}
	if !c.Equal(Condition{Sensors: []string{"ips"}, Actuator: true}) {
		t.Fatal("Equal failed on identical conditions")
	}
	if c.Equal(Condition{Sensors: []string{"lidar"}, Actuator: true}) {
		t.Fatal("Equal confused different sensors")
	}
}

func TestKheperaCodes(t *testing.T) {
	cases := []struct {
		sensors []string
		want    string
	}{
		{nil, "S0"},
		{[]string{SensorIPS}, "S1"},
		{[]string{SensorWheelEncoder}, "S2"},
		{[]string{SensorLidar}, "S3"},
		{[]string{SensorWheelEncoder, SensorLidar}, "S4"},
		{[]string{SensorIPS, SensorLidar}, "S5"},
		{[]string{SensorIPS, SensorWheelEncoder}, "S6"},
		{[]string{SensorIPS, SensorWheelEncoder, SensorLidar}, "S?"},
	}
	for _, c := range cases {
		if got := KheperaSensorCode(Condition{Sensors: c.sensors}); got != c.want {
			t.Fatalf("code(%v) = %s, want %s", c.sensors, got, c.want)
		}
	}
	if got := CodeString(Condition{Actuator: true}); got != "S0,A1" {
		t.Fatalf("CodeString = %q", got)
	}
}

// --- integration: detector over a simulated khepera -----------------------

type detRig struct {
	model *dynamics.DifferentialDrive
	plant core.Plant
	ips   *sensors.IPS
	we    *sensors.WheelEncoder
	lidar *sensors.Lidar
	rng   *stat.RNG
}

func newDetRig(seed int64) *detRig {
	model := dynamics.NewKhepera(0.1)
	arena := world.NewArena(4, 4)
	return &detRig{
		model: model,
		plant: core.Plant{
			Model:       model,
			Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
			AngleStates: []int{2},
		},
		ips:   sensors.NewIPS(3),
		we:    sensors.NewWheelEncoder(3),
		lidar: sensors.NewLidar(arena, 3),
		rng:   stat.NewRNG(seed),
	}
}

func (r *detRig) suite() []sensors.Sensor {
	return []sensors.Sensor{r.ips, r.we, r.lidar}
}

func (r *detRig) measure(s sensors.Sensor, x mat.Vec) mat.Vec {
	rm := s.R()
	stds := make(mat.Vec, s.Dim())
	for i := range stds {
		stds[i] = math.Sqrt(rm.At(i, i))
	}
	return s.H(x).Add(r.rng.GaussianVec(stds))
}

func (r *detRig) detector(t *testing.T, x0 mat.Vec) *Detector {
	t.Helper()
	u0 := r.model.WheelSpeeds(0.1, 0)
	modes, err := core.SingleReferenceModes(r.model, r.suite(), x0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(r.plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewDetector(eng, DefaultConfig())
}

func runDetection(t *testing.T, rig *detRig, det *Detector, steps int,
	corrupt func(k int, readings map[string]mat.Vec, u mat.Vec) mat.Vec) []*Report {
	t.Helper()
	xTrue := mat.VecOf(1.0, 1.0, 0.2)
	u := rig.model.WheelSpeeds(0.12, 0.15)
	reports := make([]*Report, 0, steps)
	for k := 0; k < steps; k++ {
		readings := map[string]mat.Vec{
			"ips":           rig.measure(rig.ips, xTrue),
			"wheel-encoder": rig.measure(rig.we, xTrue),
			"lidar":         rig.measure(rig.lidar, xTrue),
		}
		uExec := u
		if corrupt != nil {
			uExec = corrupt(k, readings, u)
		}
		rep, err := det.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		reports = append(reports, rep)
		xTrue = rig.model.F(xTrue, uExec).Add(rig.rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
	}
	return reports
}

func TestDetectorCleanRunLowFalsePositives(t *testing.T) {
	rig := newDetRig(21)
	det := rig.detector(t, mat.VecOf(1.0, 1.0, 0.2))
	reports := runDetection(t, rig, det, 300, nil)
	alarms := 0
	for _, rep := range reports {
		if rep.Decision.SensorAlarm && len(rep.Decision.Condition.Sensors) > 0 {
			alarms++
		}
		if rep.Decision.ActuatorAlarm {
			alarms++
		}
	}
	if rate := float64(alarms) / float64(len(reports)); rate > 0.03 {
		t.Fatalf("clean-run alarm rate %.3f exceeds 3%%", rate)
	}
}

func TestDetectorFlagsIPSBias(t *testing.T) {
	rig := newDetRig(22)
	det := rig.detector(t, mat.VecOf(1.0, 1.0, 0.2))
	const onset = 100
	reports := runDetection(t, rig, det, 200, func(k int, readings map[string]mat.Vec, u mat.Vec) mat.Vec {
		if k >= onset {
			readings["ips"] = readings["ips"].Add(mat.VecOf(0.07, 0, 0))
		}
		return u
	})

	// Find the first iteration where the detector confirms exactly the
	// IPS misbehavior.
	firstCorrect := -1
	for k := onset; k < len(reports); k++ {
		c := reports[k].Decision.Condition
		if len(c.Sensors) == 1 && c.Sensors[0] == "ips" {
			firstCorrect = k
			break
		}
	}
	if firstCorrect < 0 {
		t.Fatal("IPS misbehavior never identified")
	}
	if delay := firstCorrect - onset; delay > 10 {
		t.Fatalf("detection delay %d iterations (%.1fs)", delay, float64(delay)*0.1)
	}
	// Identification must stay mostly stable afterwards.
	correct := 0
	for k := firstCorrect; k < len(reports); k++ {
		c := reports[k].Decision.Condition
		if len(c.Sensors) == 1 && c.Sensors[0] == "ips" {
			correct++
		}
	}
	if rate := float64(correct) / float64(len(reports)-firstCorrect); rate < 0.9 {
		t.Fatalf("post-detection identification rate %.2f", rate)
	}
}

func TestDetectorFlagsActuatorBias(t *testing.T) {
	rig := newDetRig(23)
	det := rig.detector(t, mat.VecOf(1.0, 1.0, 0.2))
	const onset = 100
	bias := mat.VecOf(-0.04, 0.04)
	reports := runDetection(t, rig, det, 220, func(k int, readings map[string]mat.Vec, u mat.Vec) mat.Vec {
		if k >= onset {
			return u.Add(bias)
		}
		return u
	})

	firstAlarm := -1
	for k := onset; k < len(reports); k++ {
		if reports[k].Decision.ActuatorAlarm {
			firstAlarm = k
			break
		}
	}
	if firstAlarm < 0 {
		t.Fatal("actuator misbehavior never alarmed")
	}
	if delay := firstAlarm - onset; delay > 15 {
		t.Fatalf("actuator detection delay %d iterations", delay)
	}
	// No sensor should be blamed.
	blamed := 0
	for k := firstAlarm; k < len(reports); k++ {
		if len(reports[k].Decision.Condition.Sensors) > 0 {
			blamed++
		}
	}
	if rate := float64(blamed) / float64(len(reports)-firstAlarm); rate > 0.1 {
		t.Fatalf("sensors blamed for actuator attack %.2f of the time", rate)
	}
	// Quantification: the averaged d̂a recovers the bias (§V-C).
	var daSum mat.Vec = mat.NewVec(2)
	n := 0
	for k := firstAlarm + 10; k < len(reports); k++ {
		daSum = daSum.Add(reports[k].Decision.Da)
		n++
	}
	daMean := daSum.Scale(1 / float64(n))
	if math.Abs(daMean[0]-bias[0]) > 0.01 || math.Abs(daMean[1]-bias[1]) > 0.01 {
		t.Fatalf("mean d̂a = %v, want ≈ %v", daMean, bias)
	}
}

func TestDetectorTwoSensorsCorrupted(t *testing.T) {
	rig := newDetRig(24)
	det := rig.detector(t, mat.VecOf(1.0, 1.0, 0.2))
	reports := runDetection(t, rig, det, 260, func(k int, readings map[string]mat.Vec, u mat.Vec) mat.Vec {
		if k >= 80 {
			readings["ips"] = readings["ips"].Add(mat.VecOf(0.1, 0, 0))
		}
		if k >= 150 {
			readings["wheel-encoder"] = readings["wheel-encoder"].Add(mat.VecOf(0, 0.08, 0))
		}
		return u
	})
	// By the end, condition should be S6 = {ips, wheel-encoder}.
	last := reports[len(reports)-1].Decision.Condition
	if got := KheperaSensorCode(last); got != "S6" {
		t.Fatalf("final condition %v (code %s), want S6", last, got)
	}
}

func TestDeciderResetClearsState(t *testing.T) {
	d := NewDecider(DefaultConfig())
	// Pre-load windows through the exported surface by deciding on a
	// synthetic output with a huge anomaly.
	rig := newDetRig(25)
	det := rig.detector(t, mat.VecOf(1.0, 1.0, 0.2))
	_ = det // detector path covered elsewhere; here only window reset
	d.sensorWindow.Push(true)
	d.sensorWindow.Push(true)
	if !d.sensorWindow.Met() {
		t.Fatal("window should be met")
	}
	d.Reset()
	if d.sensorWindow.Met() {
		t.Fatal("reset did not clear windows")
	}
}

func TestDetectorStateAccessor(t *testing.T) {
	rig := newDetRig(41)
	det := rig.detector(t, mat.VecOf(1, 1, 0))
	x, px := det.State()
	if x.Len() != 3 || px.Rows() != 3 {
		t.Fatalf("State dims %d / %dx%d", x.Len(), px.Rows(), px.Cols())
	}
}
