// Package detect implements the RoboADS decision maker (§IV-D): chi-square
// hypothesis tests on the anomaly vector estimates, c-of-w sliding windows
// for transient-fault tolerance, per-sensor identification, and the
// Detector facade that chains monitor → multi-mode engine → mode selector
// → decision maker (Algorithm 1).
package detect

// SlidingWindow confirms an alarm when at least Criteria of the last Size
// raw test outcomes were positive (Algorithm 1 lines 12 and 20). The zero
// value is unusable; use NewSlidingWindow.
type SlidingWindow struct {
	size     int
	criteria int
	buf      []bool
	next     int
	filled   int
	positive int
}

// NewSlidingWindow returns a c-of-w window. Size and criteria are clamped
// to at least 1; criteria is clamped to at most size.
func NewSlidingWindow(size, criteria int) *SlidingWindow {
	if size < 1 {
		size = 1
	}
	if criteria < 1 {
		criteria = 1
	}
	if criteria > size {
		criteria = size
	}
	return &SlidingWindow{size: size, criteria: criteria, buf: make([]bool, size)}
}

// Push records one raw test outcome and reports whether the window
// condition is met.
func (w *SlidingWindow) Push(outcome bool) bool {
	if w.filled == w.size && w.buf[w.next] {
		w.positive--
	}
	w.buf[w.next] = outcome
	if outcome {
		w.positive++
	}
	w.next = (w.next + 1) % w.size
	if w.filled < w.size {
		w.filled++
	}
	return w.positive >= w.criteria
}

// Met reports whether the window condition currently holds.
func (w *SlidingWindow) Met() bool { return w.positive >= w.criteria }

// Fill returns the window fill level in [0,1]: how many of the Size
// slots hold a pushed outcome. Telemetry gauges report it so operators
// can see how far a window is from rendering confirmed decisions (e.g.
// right after a Reset or at mission start).
func (w *SlidingWindow) Fill() float64 { return float64(w.filled) / float64(w.size) }

// Size returns the configured window size w.
func (w *SlidingWindow) Size() int { return w.size }

// Criteria returns the configured confirmation criteria c.
func (w *SlidingWindow) Criteria() int { return w.criteria }

// History returns the pushed outcomes currently in the window, oldest
// first (length ≤ Size). Replaying the returned slice through
// SetHistory on a fresh window of the same shape reproduces the
// window's observable behavior exactly: Met, Fill, and every future
// Push result are identical, because the c-of-w condition depends only
// on the logical outcome order, not on the ring's physical offset.
func (w *SlidingWindow) History() []bool {
	out := make([]bool, 0, w.filled)
	if w.filled < w.size {
		// The ring has never wrapped: entries 0..filled-1 are already
		// chronological.
		return append(out, w.buf[:w.filled]...)
	}
	out = append(out, w.buf[w.next:]...)
	return append(out, w.buf[:w.next]...)
}

// SetHistory resets the window and replays outcomes oldest-first. More
// outcomes than Size keeps only the newest Size of them — exactly what
// pushing the full sequence would have retained.
func (w *SlidingWindow) SetHistory(outcomes []bool) {
	w.Reset()
	if len(outcomes) > w.size {
		outcomes = outcomes[len(outcomes)-w.size:]
	}
	for _, o := range outcomes {
		w.Push(o)
	}
}

// Reset clears the window history.
func (w *SlidingWindow) Reset() {
	for i := range w.buf {
		w.buf[i] = false
	}
	w.next, w.filled, w.positive = 0, 0, 0
}
